package netmodel

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Noise perturbs compute durations to model the system noise, OS
// interference and temperature-induced speed variance that the paper's
// decoupling strategy absorbs (Section I and II-B). Implementations must
// be deterministic functions of their inputs: per-rank state derives from
// (seed, rank) and per-operation state from the caller's rand source.
type Noise interface {
	// SpeedFactor returns a fixed multiplicative slowdown (>= ~1) for the
	// given rank, modelling static heterogeneity between processors.
	SpeedFactor(seed int64, rank int) float64
	// Jitter returns additional time for one compute operation of nominal
	// duration d, modelling per-operation interference.
	Jitter(rng *rand.Rand, d sim.Time) sim.Time
}

// None is a Noise that perturbs nothing; useful for correctness tests and
// for isolating the pipelining effect from the imbalance effect.
type None struct{}

// SpeedFactor returns 1 for every rank.
func (None) SpeedFactor(int64, int) float64 { return 1 }

// Jitter returns 0 for every operation.
func (None) Jitter(*rand.Rand, sim.Time) sim.Time { return 0 }

// Cluster models a production machine: a lognormal static per-rank speed
// spread, Gaussian per-operation jitter proportional to the operation
// length, and Poisson-arriving OS detours (daemon wakeups) that steal
// fixed-length slices.
type Cluster struct {
	// SpeedSigma is the sigma of the lognormal per-rank speed factor.
	// 0 disables static heterogeneity. Typical: 0.02-0.08.
	SpeedSigma float64
	// JitterFrac is the standard deviation of per-operation Gaussian
	// jitter, as a fraction of the operation duration. Typical: 0.01-0.1.
	JitterFrac float64
	// DetourEvery is the mean interval between OS detours experienced by
	// a busy process. 0 disables detours.
	DetourEvery sim.Time
	// DetourLen is the length of one OS detour.
	DetourLen sim.Time
}

// DefaultCluster returns noise levels shaped like the paper's testbed
// observations: a few percent static spread plus occasional OS detours.
func DefaultCluster() Cluster {
	return Cluster{
		SpeedSigma:  0.04,
		JitterFrac:  0.03,
		DetourEvery: 10 * sim.Millisecond,
		DetourLen:   50 * sim.Microsecond,
	}
}

// SpeedFactor draws a deterministic lognormal factor for rank. The factor
// is normalized to be >= 1 so noise never makes a rank faster than the
// nominal cost model (slowdowns only, as with real interference).
func (c Cluster) SpeedFactor(seed int64, rank int) float64 {
	if c.SpeedSigma <= 0 {
		return 1
	}
	rng := rand.New(sim.NewSplitMix(sim.Mix64(seed, int64(rank))))
	f := math.Exp(rng.NormFloat64() * c.SpeedSigma)
	if f < 1 {
		f = 1 / f
	}
	// Map the two-sided spread to a one-sided slowdown around 1.
	return 1 + (f-1)/2
}

// Jitter applies Gaussian jitter and Poisson OS detours to an operation of
// duration d.
func (c Cluster) Jitter(rng *rand.Rand, d sim.Time) sim.Time {
	if d <= 0 {
		return 0
	}
	var extra sim.Time
	if c.JitterFrac > 0 {
		j := sim.Time(rng.NormFloat64() * c.JitterFrac * float64(d))
		if j > 0 { // interference only ever slows an operation down
			extra += j
		}
	}
	if c.DetourEvery > 0 && c.DetourLen > 0 {
		n := poisson(rng, float64(d)/float64(c.DetourEvery))
		extra += sim.Time(n) * c.DetourLen
	}
	return extra
}

// poisson draws a Poisson(lambda) variate using Knuth's method for small
// lambda and a Gaussian approximation for large lambda.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 32 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-lambda)
	p := 1.0
	n := -1
	for p > limit {
		p *= rng.Float64()
		n++
	}
	return n
}
