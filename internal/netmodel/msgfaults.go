package netmodel

import (
	"fmt"

	"repro/internal/sim"
)

// MsgDropKey names one planned message loss: the first transmission of
// send sequence Seq on the Src -> Dst rank pair.
type MsgDropKey struct {
	Src, Dst int
	Seq      uint64
}

// MsgVerdict is the fate of one message transmission.
type MsgVerdict int

const (
	// VerdictDeliver delivers the transmission normally.
	VerdictDeliver MsgVerdict = iota
	// VerdictDrop loses the transmission in flight: it consumes the
	// sender's NIC but never arrives.
	VerdictDrop
	// VerdictDup delivers the transmission twice (one NIC injection,
	// two arrivals), exercising the receiver's duplicate suppression.
	VerdictDup
)

// MsgFaults decides, per message transmission, whether the fabric
// delivers, loses, or duplicates it. A nil *MsgFaults is the healthy
// fabric: every transmission delivers and the reliable-delivery
// protocol in internal/mpi stays disarmed.
//
// Verdicts are pure hashes of (seed, src, dst, sendSeq, attempt) — no
// generator state, no draw ordering — so a fixed table yields the same
// verdict for the same transmission regardless of how many other
// messages fly, in which order, or under which process representation.
// Retransmissions (attempt > 0) re-roll the hash, so a lossy fabric is
// lossy for retries too; planned Drops coupons match only the first
// attempt, guaranteeing the retry succeeds unless the rate kinds kill
// it again.
type MsgFaults struct {
	// DropRate loses each transmission independently with this
	// probability, hashed from DropSeed.
	DropSeed int64
	DropRate float64
	// DupRate duplicates each delivered transmission independently with
	// this probability, hashed from DupSeed.
	DupSeed int64
	DupRate float64
	// Drops lists planned single-transmission losses. The map is only
	// ever probed by key (never iterated), so map order cannot leak into
	// trajectories.
	Drops map[MsgDropKey]bool
}

// Empty reports whether the table perturbs nothing.
func (m *MsgFaults) Empty() bool {
	return m == nil || (m.DropRate == 0 && m.DupRate == 0 && len(m.Drops) == 0)
}

// Validate checks rates are probabilities and coupon keys are in range.
func (m *MsgFaults) Validate() error {
	if m == nil {
		return nil
	}
	if m.DropRate < 0 || m.DropRate > 1 {
		return fmt.Errorf("netmodel: message drop rate %v outside [0, 1]", m.DropRate)
	}
	if m.DupRate < 0 || m.DupRate > 1 {
		return fmt.Errorf("netmodel: message dup rate %v outside [0, 1]", m.DupRate)
	}
	for k := range m.Drops {
		if k.Src < 0 || k.Dst < 0 {
			return fmt.Errorf("netmodel: message drop coupon %+v has negative rank", k)
		}
	}
	return nil
}

// msgU01 maps a transmission identity to a uniform [0, 1) value by
// chaining sim.Mix64 — stateless, so verdicts commute with everything.
func msgU01(seed int64, src, dst int, seq uint64, attempt int) float64 {
	h := sim.Mix64(seed, int64(src)<<32|int64(uint32(dst)))
	h = sim.Mix64(h, int64(seq))
	h = sim.Mix64(h, int64(attempt))
	return float64(uint64(h)>>11) / (1 << 53)
}

// Verdict decides the fate of attempt number attempt (0 = first
// transmission) of send sequence seq from rank src to rank dst. Pure:
// equal arguments always yield equal verdicts.
func (m *MsgFaults) Verdict(src, dst int, seq uint64, attempt int) MsgVerdict {
	if m == nil {
		return VerdictDeliver
	}
	if attempt == 0 && m.Drops[MsgDropKey{Src: src, Dst: dst, Seq: seq}] {
		return VerdictDrop
	}
	if m.DropRate > 0 && msgU01(m.DropSeed, src, dst, seq, attempt) < m.DropRate {
		return VerdictDrop
	}
	if m.DupRate > 0 && msgU01(m.DupSeed, src, dst, seq, attempt) < m.DupRate {
		return VerdictDup
	}
	return VerdictDeliver
}
