package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestParamsValidate(t *testing.T) {
	if err := AriesLike().Validate(); err != nil {
		t.Fatalf("AriesLike invalid: %v", err)
	}
	if err := GigabitEthernetLike().Validate(); err != nil {
		t.Fatalf("GigabitEthernetLike invalid: %v", err)
	}
	bad := Params{BytesPerSecond: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	neg := AriesLike()
	neg.Latency = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestSerializationTimeScalesWithSize(t *testing.T) {
	p := AriesLike()
	small := p.SerializationTime(1000)
	large := p.SerializationTime(1000000)
	if large <= small {
		t.Fatalf("1MB (%v) not slower than 1KB (%v)", large, small)
	}
	// 10 GB/s: 1 MB should take ~100us plus the 50ns gap.
	want := sim.Time(100 * sim.Microsecond)
	if large < want || large > want+10*sim.Microsecond {
		t.Fatalf("1MB serialization = %v, want about %v", large, want)
	}
}

func TestSerializationTimeZeroBytes(t *testing.T) {
	p := AriesLike()
	if got := p.SerializationTime(0); got != p.MessageGap {
		t.Fatalf("zero-byte message = %v, want gap %v", got, p.MessageGap)
	}
}

func TestSerializationTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	AriesLike().SerializationTime(-1)
}

// Property: serialization time is monotone in message size.
func TestSerializationMonotoneProperty(t *testing.T) {
	p := AriesLike()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return p.SerializationTime(x) <= p.SerializationTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFSParamsValidate(t *testing.T) {
	if err := LustreLike().Validate(); err != nil {
		t.Fatalf("LustreLike invalid: %v", err)
	}
	bad := LustreLike()
	bad.Stripes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero stripes accepted")
	}
	bad = LustreLike()
	bad.StripeBandwidth = -5
	if err := bad.Validate(); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestFSWriteTime(t *testing.T) {
	f := LustreLike()
	// 1 GB at 1 GB/s per stripe = 1 s of stripe occupancy.
	got := f.WriteTime(1e9)
	if got < sim.FromSeconds(0.99) || got > sim.FromSeconds(1.01) {
		t.Fatalf("WriteTime(1GB) = %v, want ~1s", got)
	}
}

func TestNoneNoise(t *testing.T) {
	var n None
	if n.SpeedFactor(1, 5) != 1 {
		t.Fatal("None speed factor != 1")
	}
	rng := rand.New(rand.NewSource(1))
	if n.Jitter(rng, sim.Second) != 0 {
		t.Fatal("None jitter != 0")
	}
}

func TestClusterSpeedFactorDeterministicAndBounded(t *testing.T) {
	c := DefaultCluster()
	for rank := 0; rank < 200; rank++ {
		a := c.SpeedFactor(42, rank)
		b := c.SpeedFactor(42, rank)
		if a != b {
			t.Fatalf("rank %d nondeterministic: %v vs %v", rank, a, b)
		}
		if a < 1 {
			t.Fatalf("rank %d speed factor %v < 1 (noise must only slow down)", rank, a)
		}
		if a > 2 {
			t.Fatalf("rank %d speed factor %v implausibly large", rank, a)
		}
	}
}

func TestClusterSpeedFactorsVaryAcrossRanks(t *testing.T) {
	c := DefaultCluster()
	seen := map[float64]bool{}
	for rank := 0; rank < 50; rank++ {
		seen[c.SpeedFactor(7, rank)] = true
	}
	if len(seen) < 25 {
		t.Fatalf("only %d distinct speed factors across 50 ranks", len(seen))
	}
}

func TestClusterJitterNonNegative(t *testing.T) {
	c := DefaultCluster()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		j := c.Jitter(rng, 10*sim.Millisecond)
		if j < 0 {
			t.Fatalf("negative jitter %v", j)
		}
	}
}

func TestClusterJitterZeroForZeroDuration(t *testing.T) {
	c := DefaultCluster()
	rng := rand.New(rand.NewSource(3))
	if j := c.Jitter(rng, 0); j != 0 {
		t.Fatalf("jitter on zero-length op = %v", j)
	}
}

func TestClusterDetoursScaleWithDuration(t *testing.T) {
	c := Cluster{DetourEvery: sim.Millisecond, DetourLen: 10 * sim.Microsecond}
	rng := rand.New(rand.NewSource(9))
	var short, long sim.Time
	for i := 0; i < 300; i++ {
		short += c.Jitter(rng, sim.Millisecond)
		long += c.Jitter(rng, 100*sim.Millisecond)
	}
	if long < short*20 {
		t.Fatalf("detour time did not scale: short=%v long=%v", short, long)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, lambda := range []float64{0.5, 4, 40, 200} {
		n := 3000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		if mean < lambda*0.9 || mean > lambda*1.1 {
			t.Fatalf("poisson(%v) sample mean = %v", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("poisson of non-positive lambda should be 0")
	}
}

func TestZeroClusterIsQuiet(t *testing.T) {
	var c Cluster // all fields zero
	rng := rand.New(rand.NewSource(1))
	if c.SpeedFactor(1, 3) != 1 {
		t.Fatal("zero cluster speed factor != 1")
	}
	if c.Jitter(rng, sim.Second) != 0 {
		t.Fatal("zero cluster jitter != 0")
	}
}
