package netmodel

import "repro/internal/sim"

// LinkFaults schedules windowed degradation of the interconnect: latency
// windows multiply the wire latency of messages in flight during the
// window, bandwidth windows multiply the NIC serialization time of
// messages injected during the window. Both lists must be sorted and
// non-overlapping (sim.ValidateWindows); a nil *LinkFaults means a
// healthy network and every method returns its base cost unchanged.
//
// Like the compute and stripe injectors, link faults are pure window
// arithmetic — no draws, no events — so faulted runs stay bit-identical
// across process representations and repeated runs.
type LinkFaults struct {
	// Latency windows multiply Params.Latency for messages whose NIC
	// slot ends (i.e. whose flight starts) inside the window.
	Latency []sim.FaultWindow
	// Bandwidth windows multiply serialization time for messages whose
	// NIC slot is requested inside the window.
	Bandwidth []sim.FaultWindow
}

// Validate checks both window lists.
func (lf *LinkFaults) Validate() error {
	if lf == nil {
		return nil
	}
	if err := sim.ValidateWindows(lf.Latency); err != nil {
		return err
	}
	return sim.ValidateWindows(lf.Bandwidth)
}

// Empty reports whether the fault set schedules nothing.
func (lf *LinkFaults) Empty() bool {
	return lf == nil || (len(lf.Latency) == 0 && len(lf.Bandwidth) == 0)
}

// FactorAt reports the slowdown factor of the window covering at, or 1
// when no window does.
func FactorAt(ws []sim.FaultWindow, at sim.Time) float64 {
	for _, w := range ws {
		if w.Start > at {
			break // sorted by start: no later window can cover at
		}
		if at < w.End {
			return w.Factor
		}
	}
	return 1
}

// StretchLatency reports the wire latency of a message entering flight
// at the given instant: base multiplied by the covering latency window's
// factor, if any.
func (lf *LinkFaults) StretchLatency(base, at sim.Time) sim.Time {
	if lf == nil || len(lf.Latency) == 0 {
		return base
	}
	f := FactorAt(lf.Latency, at)
	if f == 1 {
		return base
	}
	return sim.Time(float64(base) * f)
}

// StretchSerialization reports the NIC occupancy of a message whose slot
// is requested at the given instant: base multiplied by the covering
// bandwidth window's factor, if any.
func (lf *LinkFaults) StretchSerialization(base, at sim.Time) sim.Time {
	if lf == nil || len(lf.Bandwidth) == 0 {
		return base
	}
	f := FactorAt(lf.Bandwidth, at)
	if f == 1 {
		return base
	}
	return sim.Time(float64(base) * f)
}
