// Package netmodel defines the cost models used by the simulated MPI
// runtime: a LogGP-style network parameterization, a striped-file-system
// parameterization, and injectable compute-noise models that stand in for
// the system noise and process imbalance of a production machine.
package netmodel

import (
	"fmt"

	"repro/internal/sim"
)

// Params is a LogGP-style point-to-point cost model.
//
// A message of n bytes sent from A to B costs:
//
//	sender CPU:   SendOverhead
//	sender NIC:   serialized slot of MessageGap + n/Bandwidth
//	wire:         Latency
//	receiver NIC: serialized slot of MessageGap + n/Bandwidth
//	receiver CPU: RecvOverhead (paid by the receiving process)
//
// Endpoint NIC serialization is what produces congestion at hot receivers
// (for example, the master process of a large reduce group), which the
// paper identifies as the reason decoupled MapReduce slows again at 4,096+
// processes.
type Params struct {
	// SendOverhead is the CPU time the sender spends initiating a message.
	SendOverhead sim.Time
	// RecvOverhead is the CPU time the receiver spends completing a message.
	RecvOverhead sim.Time
	// Latency is the end-to-end wire latency.
	Latency sim.Time
	// MessageGap is the fixed per-message occupancy of a NIC, independent
	// of size (the LogGP "g").
	MessageGap sim.Time
	// BytesPerSecond is the per-NIC injection bandwidth (the inverse of
	// the LogGP "G").
	BytesPerSecond float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.BytesPerSecond <= 0 {
		return fmt.Errorf("netmodel: BytesPerSecond must be positive, got %v", p.BytesPerSecond)
	}
	if p.Latency < 0 || p.SendOverhead < 0 || p.RecvOverhead < 0 || p.MessageGap < 0 {
		return fmt.Errorf("netmodel: negative time parameter")
	}
	return nil
}

// SerializationTime is the NIC occupancy of an n-byte message: the
// per-message gap plus the size-proportional term.
func (p Params) SerializationTime(bytes int64) sim.Time {
	if bytes < 0 {
		panic("netmodel: negative message size")
	}
	return p.MessageGap + sim.Time(float64(bytes)/p.BytesPerSecond*float64(sim.Second))
}

// AriesLike returns parameters shaped like a Cray Aries dragonfly NIC:
// microsecond-scale latency and ~10 GB/s injection bandwidth. The absolute
// values are representative, not calibrated; experiments depend on ratios
// and scaling, not on matching the testbed's absolute seconds.
func AriesLike() Params {
	return Params{
		SendOverhead:   300 * sim.Nanosecond,
		RecvOverhead:   300 * sim.Nanosecond,
		Latency:        1500 * sim.Nanosecond,
		MessageGap:     50 * sim.Nanosecond,
		BytesPerSecond: 10e9,
	}
}

// GigabitEthernetLike returns parameters shaped like commodity gigabit
// Ethernet, useful for contrast in examples and tests.
func GigabitEthernetLike() Params {
	return Params{
		SendOverhead:   5 * sim.Microsecond,
		RecvOverhead:   5 * sim.Microsecond,
		Latency:        30 * sim.Microsecond,
		MessageGap:     1 * sim.Microsecond,
		BytesPerSecond: 0.125e9,
	}
}

// FSParams parameterizes the striped parallel file system model.
//
// Independent writes pay PerOpLatency then occupy one stripe for
// size/StripeBandwidth. Shared-file-pointer writes additionally serialize
// on a global token whose hand-off costs SharedPointerLatency, modelling
// the consistency-semantics cost the paper attributes to
// MPI_File_write_shared.
type FSParams struct {
	// Stripes is the number of independent storage targets.
	Stripes int
	// StripeBandwidth is the bandwidth of one stripe in bytes per second.
	StripeBandwidth float64
	// PerOpLatency is the fixed cost of each write operation.
	PerOpLatency sim.Time
	// SharedPointerLatency is the token hand-off cost for shared-pointer
	// writes (lock traffic and pointer update).
	SharedPointerLatency sim.Time
	// CollInterleaveFactor inflates the stripe occupancy of collective
	// (two-phase) writes: aggregators write per-rank interleaved regions,
	// which defeats stripe sequentiality. 0 means 1 (no penalty); large
	// private buffered writes (the decoupled I/O group's pattern) are
	// unaffected.
	CollInterleaveFactor float64
}

// CollWriteTime is the stripe occupancy of an n-byte collective write,
// including the interleave penalty.
func (f FSParams) CollWriteTime(bytes int64) sim.Time {
	t := f.WriteTime(bytes)
	if f.CollInterleaveFactor > 1 {
		t = sim.Time(float64(t) * f.CollInterleaveFactor)
	}
	return t
}

// Validate reports whether the parameters are usable.
func (f FSParams) Validate() error {
	if f.Stripes <= 0 {
		return fmt.Errorf("netmodel: Stripes must be positive, got %d", f.Stripes)
	}
	if f.StripeBandwidth <= 0 {
		return fmt.Errorf("netmodel: StripeBandwidth must be positive")
	}
	if f.PerOpLatency < 0 || f.SharedPointerLatency < 0 {
		return fmt.Errorf("netmodel: negative time parameter")
	}
	return nil
}

// WriteTime is the stripe occupancy of an n-byte write.
func (f FSParams) WriteTime(bytes int64) sim.Time {
	if bytes < 0 {
		panic("netmodel: negative write size")
	}
	return sim.Time(float64(bytes) / f.StripeBandwidth * float64(sim.Second))
}

// LustreLike returns file-system parameters shaped like a mid-size Lustre
// installation: tens of stripes at ~1 GB/s each with millisecond-scale
// operation latency.
func LustreLike() FSParams {
	return FSParams{
		Stripes:              16,
		StripeBandwidth:      1e9,
		PerOpLatency:         500 * sim.Microsecond,
		SharedPointerLatency: 1200 * sim.Microsecond,
		CollInterleaveFactor: 4,
	}
}
