// Crash-stop failure and deterministic recovery.
//
// A crash campaign (Config.Crashes, compiled by internal/faults) kills
// rank bodies at fixed virtual-time instants and restarts them after a
// configured restart cost. The failure model is ULFM-flavoured and
// world-synchronous:
//
//   - A crash revokes the whole world at the kill instant: every pending
//     posted receive on every surviving rank completes immediately with a
//     *RankFailedError in its status, and every send or receive posted
//     while the world is revoked returns an already-failed request. The
//     error surfaces through the wait entry points — Wait/WaitAll/
//     WaitAny/Test panic with the *RankFailedError (collectives are built
//     on the same waits and fail the same way), and the fiber forms
//     divert to the continuation registered by FProtect — so no rank ever
//     deadlocks on a dead peer.
//   - Rank bodies run their failure-prone section under Protect (FProtect
//     for fibers), which converts the unwind into an error return, and
//     then rendezvous in Rebuild: once every rank — including the
//     restarted incarnation of the victim — has arrived, matching state
//     and collective tag counters reset, the revocation lifts, and all
//     ranks resume together. CheckFailed is the commit-protocol query: a
//     rank that passed its final barrier calls it before returning, so
//     either every rank commits the run or every rank observes the
//     failure. A crash event that fires after any rank body has finished
//     is dropped — completed output is never retroactively revoked.
//   - The victim is respawned through the same Spawn/SpawnFiber path as
//     the original body and draws the next engine-wide process id, so a
//     fixed campaign replays bit-for-bit across both process
//     representations and pooled-engine reuse (see the failure/recovery
//     determinism contract in internal/sim).
//
// Messages are stamped with the world's revocation epoch when sent and
// dropped at delivery when the epoch has moved on, so traffic from a
// pre-crash attempt can never match a post-rebuild receive.
//
// Limitations: crash campaigns do not compose with the legacy broadcast
// wake strategy (REPRO_WAKE=broadcast), with tracing, or with nonblocking
// collectives in flight at a crash instant (their helper processes are
// not enrolled in the kill); NewWorld rejects the first two.
package mpi

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// RankFailedError reports that an operation could not complete because a
// rank of the world crashed. It is the panic value of the goroutine wait
// paths under revocation (recovered by Protect) and the error delivered
// to FProtect's failure continuation.
type RankFailedError struct {
	// World is the world name (Config.Name), empty for anonymous worlds.
	World string
	// Rank is the world rank that crashed.
	Rank int
	// Epoch is the revocation epoch the crash opened; it distinguishes
	// successive failures of one run.
	Epoch int
}

func (e *RankFailedError) Error() string {
	if e.World != "" {
		return fmt.Sprintf("mpi: %s: rank %d failed (epoch %d)", e.World, e.Rank, e.Epoch)
	}
	return fmt.Sprintf("mpi: rank %d failed (epoch %d)", e.Rank, e.Epoch)
}

func (e *RankFailedError) rankFailure() {}

// failureError is the family of world-revoking failures: crash-stop
// rank deaths (*RankFailedError) and reliable-delivery give-ups
// (*RankUnreachableError). Both surface through the same wait entry
// points and are recovered by the same Protect/FProtect/Rebuild
// machinery.
type failureError interface {
	error
	rankFailure()
}

// scheduleCrashes installs the campaign's kill events. Called by Start
// and StartFibers once the rank bodies exist; with no crashes configured
// it schedules nothing and the run is byte-identical to a crash-free
// build.
func (w *World) scheduleCrashes() {
	for _, ce := range w.cfg.Crashes {
		ce := ce
		w.eng.At(ce.At, func() { w.killRank(ce.Target, ce.Restart) })
	}
}

// runnable returns the rank's main process under either representation.
func (rs *rankState) runnable() sim.Runnable {
	if rs.fib != nil {
		return rs.fib
	}
	return rs.proc
}

// finished reports whether the rank's main body has returned. A dead
// (killed, not yet restarted) rank does not count as finished.
func (rs *rankState) finished() bool {
	if rs.dead {
		return false
	}
	if rs.fib != nil {
		return rs.fib.Done()
	}
	return rs.proc != nil && rs.proc.Done()
}

// killRank is the crash event: it kills rank target at the current
// instant, revokes the world, fails every pending receive, and schedules
// the restart. Every step is ordered deterministically (sorted file
// keys, rank order, posting order), so a fixed campaign replays
// bit-for-bit.
func (w *World) killRank(target int, restart sim.Time) {
	// Commit protocol: once any rank body has returned, the run's output
	// is final and a late crash is dropped — otherwise a finished rank
	// could never rejoin the rebuild rendezvous.
	for _, rs := range w.ranks {
		if rs.finished() {
			return
		}
	}
	rs := w.ranks[target]
	if rs.dead {
		// The victim is already down (overlapping crash windows); the
		// earlier crash's restart stands.
		return
	}
	e := w.eng
	now := e.Now()
	rs.dead = true
	w.epoch++
	w.revoked = true
	w.failure = &RankFailedError{World: w.cfg.Name, Rank: target, Epoch: w.epoch}

	victim := rs.runnable()
	// Pull the victim out of every queue that could wake or wait on it
	// post-mortem: the rebuild rendezvous and the shared-file-pointer
	// tokens (file keys sorted so a token hand-off to the next waiter
	// fires at a deterministic position).
	if rs.inRebuild {
		rs.inRebuild = false
		w.rebuildArrived--
		w.rebuildQ.Remove(victim)
	}
	// A victim parked in WaitSendWindow waits on its own drainQ; pull it
	// out before the kill so relReset's wake never touches a dead body.
	rs.drainQ.Remove(victim)
	if len(w.files) > 0 {
		keys := make([]string, 0, len(w.files))
		for k := range w.files {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.files[k].token.Evict(victim, e)
		}
	}
	e.Kill(victim)
	// Balance the victim's open demand intervals so the bank's signal
	// never wedges on a dead rank.
	w.drainIO(rs)

	// Peer-failure notification: every pending posted receive on every
	// surviving rank completes now with the failure error, waking any
	// parked waiter. Posting order (seq) fixes the wake order within a
	// rank; rank order fixes it across ranks.
	for _, peer := range w.ranks {
		if peer == rs {
			continue
		}
		w.prScratch = peer.match.pendingPosted(w.prScratch[:0])
		for _, p := range w.prScratch {
			req := p.req
			req.done = true
			req.doneAt = now
			req.timed = false
			req.status = Status{Err: w.failure}
			if req.waiter != nil {
				e.WakeAt(now, req.waiter)
			} else if req.anyw != nil {
				req.anyw.WakeAt(now)
				req.anyw = nil
			}
		}
		peer.match.reset()
	}
	rs.match.reset()
	// A rank dying with unacked reliable sends (or held out-of-order
	// arrivals) must not leak them into the rebuilt world: sequence
	// counters, in-flight entries and reorder buffers all restart at
	// zero, and surviving send-window waiters wake to observe the
	// failure. Stale acks and timers retire on the epoch bump above.
	w.relReset()

	if restart < 0 {
		restart = 0
	}
	e.At(now+restart, func() { w.restartRank(target) })
}

// restartRank respawns the crashed rank's body as a fresh incarnation.
// The respawn draws the next engine-wide process id through the same
// Spawn/SpawnFiber path as the original body, so both representations
// assign the restarted rank identical ids and random streams.
func (w *World) restartRank(target int) {
	rs := w.ranks[target]
	if !rs.dead {
		return
	}
	rs.dead = false
	rs.incarnation++
	rank := &Rank{w: w, rs: rs}
	if w.mainFiber != nil {
		rank.fib = w.eng.SpawnFiber(w.rankName(target), func(f *sim.Fiber) sim.StepFunc {
			return w.mainFiber(rank, f)
		})
		rs.fib = rank.fib
		return
	}
	rs.proc = w.eng.Spawn(w.rankName(target), func(p *sim.Proc) {
		rank.proc = p
		w.mainBody(rank)
	})
}

// drainIO closes any demand intervals a rank left open when a failure
// unwound it mid-operation, keeping the shared bank's IOBegin/IOEnd
// signal balanced.
func (w *World) drainIO(rs *rankState) {
	for rs.ioDepth > 0 {
		rs.ioDepth--
		if w.signalDemand {
			w.fs.IOEnd(w.cfg.Job, w.eng.Now())
		}
	}
}

// failedRequest returns a request already completed with the world's
// pending failure: the result of posting any operation while the world
// is revoked.
func (w *World) failedRequest() *Request {
	req := w.newRequest()
	req.done = true
	req.doneAt = w.eng.Now()
	req.status = Status{Err: w.failure}
	return req
}

// Incarnation reports how many times this rank has been killed and
// restarted: 0 for the original body, 1 for the first respawn, and so
// on. Restarted bodies use it to rejoin the rebuild rendezvous and
// restore state from their last checkpoint.
func (r *Rank) Incarnation() int { return r.rs.incarnation }

// Failed reports whether the world is currently revoked by a crash. It
// is a pure query (no clock movement); CheckFailed is the panicking
// form used at commit points.
func (r *Rank) Failed() bool { return r.w.revoked }

// CheckFailed panics with the pending *RankFailedError if the world is
// revoked. Rank bodies call it inside Protect after their final
// synchronization, so a crash that slips in before the run commits sends
// every rank — not just the ones with operations in flight — back
// through recovery together.
func (r *Rank) CheckFailed() {
	if r.w.revoked {
		panic(r.w.failure)
	}
}

// FCheckFailed is CheckFailed for fiber-backed ranks: it diverts to the
// FProtect failure continuation when the world is revoked, else
// continues with next.
func (r *Rank) FCheckFailed(next sim.StepFunc) sim.StepFunc {
	if r.w.revoked {
		return r.failNow()
	}
	return next
}

// Protect runs fn, converting a rank-failure unwind into an error
// return: it recovers a world-revoking failure panic — *RankFailedError
// from a crash, *RankUnreachableError from the reliable protocol's
// retry cap — re-raising anything else, closes any demand intervals fn
// left open, and reports the failure. The caller then typically
// accounts its lost work and calls Rebuild.
func (r *Rank) Protect(fn func()) (err error) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		fe, ok := rec.(failureError)
		if !ok {
			panic(rec)
		}
		r.w.drainIO(r.rs)
		err = fe
	}()
	fn()
	return nil
}

// FProtect is Protect for fiber-backed ranks: it registers onFail as the
// continuation the wait primitives divert to when an operation fails,
// then starts attempt. The registration stays in place for the rank's
// lifetime (re-registered by each FProtect call), mirroring how a
// goroutine body re-enters Protect per attempt.
func (r *Rank) FProtect(attempt sim.StepFunc, onFail func(error) sim.StepFunc) sim.StepFunc {
	rs := r.rs
	rs.failStep = func(_ *sim.Fiber) sim.StepFunc {
		r.w.drainIO(rs)
		return onFail(r.w.failure)
	}
	return attempt
}

// failNow returns the rank's registered failure continuation, or panics
// with the pending failure when none is registered (a fiber body that
// hit a revoked world outside FProtect).
func (r *Rank) failNow() sim.StepFunc {
	if r.rs.failStep == nil {
		panic(r.w.failure)
	}
	return r.rs.failStep
}

// Rebuild is the world-level revoke-and-rebuild rendezvous: it blocks
// until every rank of the world — survivors and restarted incarnations
// alike — has arrived, then atomically resets all matching state, zeroes
// every communicator's collective tag counters, discards in-flight Split
// rendezvous, lifts the revocation, and releases all ranks together.
// Survivors call it after Protect reports a failure; restarted bodies
// call it first (Incarnation > 0).
func (r *Rank) Rebuild() {
	w, rs := r.w, r.rs
	r.proc.FlushDebt()
	rs.inRebuild = true
	w.rebuildArrived++
	if w.rebuildArrived == len(w.ranks) {
		w.completeRebuild()
		return
	}
	for rs.inRebuild {
		w.rebuildQ.Wait(r.proc, "mpi rebuild")
	}
}

// FRebuild is Rebuild for fiber-backed ranks, continuing with then once
// the rendezvous completes. It occupies the same queue positions and
// consumes the same events as the goroutine form.
func (r *Rank) FRebuild(then sim.StepFunc) sim.StepFunc {
	w, rs, f := r.w, r.rs, r.fib
	return f.FlushDebt(func(_ *sim.Fiber) sim.StepFunc {
		rs.inRebuild = true
		w.rebuildArrived++
		if w.rebuildArrived == len(w.ranks) {
			w.completeRebuild()
			return then
		}
		var loop sim.StepFunc
		loop = func(_ *sim.Fiber) sim.StepFunc {
			if rs.inRebuild {
				return w.rebuildQ.WaitFiber(f, "mpi rebuild", loop)
			}
			return then
		}
		return w.rebuildQ.WaitFiber(f, "mpi rebuild", loop)
	})
}

// completeRebuild finishes the rendezvous on the last arrival: pure
// state surgery (no clock movement), then one broadcast that wakes the
// parked ranks in arrival order.
func (w *World) completeRebuild() {
	for _, rs := range w.ranks {
		rs.inRebuild = false
		rs.match.reset()
	}
	for _, c := range w.allComms {
		for i := range c.collSeq {
			c.collSeq[i] = 0
		}
	}
	for k := range w.splits {
		delete(w.splits, k)
	}
	w.rebuildArrived = 0
	w.revoked = false
	w.rebuildQ.Broadcast(w.eng)
}
