package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// CollRequest is the handle of a nonblocking collective. The collective's
// algorithm runs on a helper process of the same rank (modelling
// asynchronous progress, as MPICH's progress threads do), so its message
// overheads do not occupy the rank's main process.
type CollRequest struct {
	done  bool
	value interface{}
	// waiter is the rank's main process or fiber parked in WaitColl on
	// this collective, if any: completion wakes it directly, the
	// per-collective counterpart of Request.waiter.
	waiter sim.Runnable
}

// Done reports whether the collective has completed on this rank.
func (cr *CollRequest) Done() bool { return cr.done }

// startColl spawns the helper process that runs body and completes cr.
func (c *Comm) startColl(r *Rank, kind string, cr *CollRequest, body func(proc *simProc)) {
	r.proc.Spawn(fmt.Sprintf("rank%d/%s", r.rs.rank, kind), func(p *sim.Proc) {
		body(p)
		c.completeColl(r, cr)
	})
	// Initiating a nonblocking collective costs one send overhead on the
	// main process (descriptor setup).
	r.proc.Advance(r.w.cfg.Net.SendOverhead)
}

// completeColl marks the collective done and wakes its waiter: directly
// when the rank's main process or fiber is parked in WaitColl on exactly
// this collective, via the rank-wide broadcast under the legacy strategy.
func (c *Comm) completeColl(r *Rank, cr *CollRequest) {
	cr.done = true
	if r.w.legacy {
		r.rs.progress.Broadcast(r.rs.eng)
		return
	}
	if cr.waiter != nil {
		r.rs.eng.WakeAt(r.rs.eng.Now(), cr.waiter)
		cr.waiter = nil
	}
}

// WaitColl blocks until cr completes and returns its result value:
//
//	Ibarrier   -> nil
//	Ireduce    -> Part (zero Part on non-root ranks)
//	Iallgatherv-> []Part
//	Ialltoallv -> []Part
func (c *Comm) WaitColl(r *Rank, cr *CollRequest) interface{} {
	r.proc.FlushDebt()
	start := r.rs.eng.Now()
	for !cr.done {
		if r.w.legacy {
			r.rs.progress.Wait(r.proc, "mpi waitcoll")
			continue
		}
		// Register on the collective so its completion wakes exactly this
		// process — the per-collective analogue of Request.waiter.
		cr.waiter = r.proc
		r.proc.Park("mpi waitcoll")
		cr.waiter = nil
	}
	if t := r.w.cfg.Tracer; t != nil && r.rs.eng.Now() > start {
		t.Span(r.rs.rank, "comm", "waitcoll", start, r.rs.eng.Now())
	}
	return cr.value
}

// TestColl reports whether cr has completed.
func (c *Comm) TestColl(r *Rank, cr *CollRequest) bool { return cr.done }

// Ibarrier starts a nonblocking barrier.
func (c *Comm) Ibarrier(r *Rank) *CollRequest {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	cr := &CollRequest{}
	c.startColl(r, "ibarrier", cr, func(p *simProc) {
		c.barrierOn(r, p, me, tag)
	})
	return cr
}

// Ireduce starts a nonblocking reduce toward root. The result value is a
// Part (meaningful at root only).
func (c *Comm) Ireduce(r *Rank, root int, part Part, op ReduceOp, cost CostFn) *CollRequest {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	cr := &CollRequest{}
	c.startColl(r, "ireduce", cr, func(p *simProc) {
		res, isRoot := c.reduceOn(r, p, me, root, part, op, cost, tag)
		if isRoot {
			cr.value = res
		} else {
			cr.value = Part{}
		}
	})
	return cr
}

// Iallgatherv starts a nonblocking allgatherv. The result value is []Part.
func (c *Comm) Iallgatherv(r *Rank, part Part) *CollRequest {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	cr := &CollRequest{}
	c.startColl(r, "iallgatherv", cr, func(p *simProc) {
		cr.value = c.allgathervOn(r, p, me, part, tag)
	})
	return cr
}

// Ialltoallv starts a nonblocking all-to-all exchange. The result value is
// []Part.
func (c *Comm) Ialltoallv(r *Rank, parts []Part) *CollRequest {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	cr := &CollRequest{}
	c.startColl(r, "ialltoallv", cr, func(p *simProc) {
		cr.value = c.alltoallvOn(r, p, me, parts, tag)
	})
	return cr
}

// Iallreduce starts a nonblocking allreduce. The result value is a Part.
func (c *Comm) Iallreduce(r *Rank, part Part, op ReduceOp, cost CostFn) *CollRequest {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	cr := &CollRequest{}
	c.startColl(r, "iallreduce", cr, func(p *simProc) {
		cr.value = c.allreduceOn(r, p, me, part, op, cost, tag)
	})
	return cr
}
