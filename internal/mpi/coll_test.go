package mpi

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// commSizes exercises power-of-two (recursive doubling) and non-power-of-
// two (fallback) code paths.
var commSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range commSizes {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			w := testWorld(t, p)
			exitTimes := make([]sim.Time, p)
			var latestEntry sim.Time
			mustRun(t, w, func(r *Rank) {
				// Stagger the entries.
				r.Idle(sim.Time(r.ID()) * sim.Millisecond)
				if e := r.Now(); e > latestEntry {
					latestEntry = e
				}
				r.World().Barrier(r)
				exitTimes[r.ID()] = r.Now()
			})
			for i, e := range exitTimes {
				if e < latestEntry {
					t.Fatalf("rank %d left barrier at %v before last entry %v", i, e, latestEntry)
				}
			}
		})
	}
}

func TestBcastDeliversRootValue(t *testing.T) {
	for _, p := range commSizes {
		for root := 0; root < p; root += 3 {
			w := testWorld(t, p)
			got := make([]interface{}, p)
			rootVal := fmt.Sprintf("payload-from-%d", root)
			root := root
			mustRun(t, w, func(r *Rank) {
				part := Part{}
				if r.ID() == root {
					part = Part{Bytes: 64, Data: rootVal}
				}
				res := r.World().Bcast(r, root, part)
				got[r.ID()] = res.Data
			})
			for i, g := range got {
				if g != rootVal {
					t.Fatalf("p=%d root=%d rank %d got %v", p, root, i, g)
				}
			}
		}
	}
}

func TestReduceSumsAtRoot(t *testing.T) {
	for _, p := range commSizes {
		w := testWorld(t, p)
		var rootSum int64
		mustRun(t, w, func(r *Rank) {
			part := Part{Bytes: 8, Data: int64(r.ID() + 1)}
			res, isRoot := r.World().Reduce(r, 0, part, SumInt64, nil)
			if isRoot {
				rootSum = res.Data.(int64)
			}
		})
		want := int64(p * (p + 1) / 2)
		if rootSum != want {
			t.Fatalf("p=%d reduce sum = %d, want %d", p, rootSum, want)
		}
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	w := testWorld(t, 6)
	var rootSum int64
	var rootRank int
	mustRun(t, w, func(r *Rank) {
		res, isRoot := r.World().Reduce(r, 4, Part{Bytes: 8, Data: int64(1)}, SumInt64, nil)
		if isRoot {
			rootSum = res.Data.(int64)
			rootRank = r.ID()
		}
	})
	if rootSum != 6 || rootRank != 4 {
		t.Fatalf("sum=%d at rank %d, want 6 at 4", rootSum, rootRank)
	}
}

func TestAllreduceAllRanksAgree(t *testing.T) {
	for _, p := range commSizes {
		w := testWorld(t, p)
		got := make([]int64, p)
		mustRun(t, w, func(r *Rank) {
			res := r.World().Allreduce(r, Part{Bytes: 8, Data: int64(r.ID() + 1)}, SumInt64, nil)
			got[r.ID()] = res.Data.(int64)
		})
		want := int64(p * (p + 1) / 2)
		for i, g := range got {
			if g != want {
				t.Fatalf("p=%d rank %d allreduce = %d, want %d", p, i, g, want)
			}
		}
	}
}

func TestAllreduceVector(t *testing.T) {
	w := testWorld(t, 8)
	got := make([][]float64, 8)
	mustRun(t, w, func(r *Rank) {
		vec := []float64{float64(r.ID()), 1}
		res := r.World().Allreduce(r, Part{Bytes: 16, Data: vec}, SumFloat64s, nil)
		got[r.ID()] = res.Data.([]float64)
	})
	for i, g := range got {
		if math.Abs(g[0]-28) > 1e-9 || math.Abs(g[1]-8) > 1e-9 {
			t.Fatalf("rank %d vector allreduce = %v", i, g)
		}
	}
}

func TestGathervCollectsInOrder(t *testing.T) {
	for _, p := range commSizes {
		w := testWorld(t, p)
		var rootParts []Part
		mustRun(t, w, func(r *Rank) {
			part := Part{Bytes: int64(r.ID() + 1), Data: r.ID() * 10}
			res := r.World().Gatherv(r, 0, part)
			if r.ID() == 0 {
				rootParts = res
			} else if res != nil {
				t.Errorf("non-root rank %d got non-nil gather result", r.ID())
			}
		})
		if len(rootParts) != p {
			t.Fatalf("p=%d gathered %d parts", p, len(rootParts))
		}
		for i, part := range rootParts {
			if part.Data.(int) != i*10 || part.Bytes != int64(i+1) {
				t.Fatalf("p=%d slot %d = %+v", p, i, part)
			}
		}
	}
}

func TestAllgathervAllRanksSeeAll(t *testing.T) {
	for _, p := range commSizes {
		w := testWorld(t, p)
		results := make([][]Part, p)
		mustRun(t, w, func(r *Rank) {
			part := Part{Bytes: 8, Data: fmt.Sprintf("v%d", r.ID())}
			results[r.ID()] = r.World().Allgatherv(r, part)
		})
		for rank, parts := range results {
			if len(parts) != p {
				t.Fatalf("p=%d rank %d has %d parts", p, rank, len(parts))
			}
			for i, part := range parts {
				if part.Data != fmt.Sprintf("v%d", i) {
					t.Fatalf("p=%d rank %d slot %d = %v", p, rank, i, part.Data)
				}
			}
		}
	}
}

func TestAlltoallvExchanges(t *testing.T) {
	for _, p := range commSizes {
		w := testWorld(t, p)
		results := make([][]Part, p)
		mustRun(t, w, func(r *Rank) {
			parts := make([]Part, p)
			for dst := 0; dst < p; dst++ {
				parts[dst] = Part{Bytes: 8, Data: r.ID()*100 + dst}
			}
			results[r.ID()] = r.World().Alltoallv(r, parts)
		})
		for rank, parts := range results {
			for src, part := range parts {
				if part.Data.(int) != src*100+rank {
					t.Fatalf("p=%d rank %d from %d = %v, want %d", p, rank, src, part.Data, src*100+rank)
				}
			}
		}
	}
}

func TestReduceCostChargesTime(t *testing.T) {
	run := func(cost CostFn) sim.Time {
		w := testWorld(t, 8)
		var end sim.Time
		mustRun(t, w, func(r *Rank) {
			r.World().Reduce(r, 0, Part{Bytes: 1 << 20, Data: nil}, SumInt64, cost)
			if r.ID() == 0 {
				end = r.Now()
			}
		})
		return end
	}
	free := run(nil)
	costed := run(LinearCost(sim.Nanosecond)) // 1 ns per combined byte
	if costed <= free {
		t.Fatalf("combine cost had no effect: free=%v costed=%v", free, costed)
	}
}

func TestCollectiveCostGrowsWithP(t *testing.T) {
	// A reduce on more ranks must take longer (the complexity-vs-P story
	// the decoupling strategy exploits).
	run := func(p int) sim.Time {
		w := testWorld(t, p)
		var end sim.Time
		mustRun(t, w, func(r *Rank) {
			r.World().Reduce(r, 0, Part{Bytes: 1 << 16}, SumInt64, nil)
			if r.ID() == 0 {
				end = r.Now()
			}
		})
		return end
	}
	if t64, t4 := run(64), run(4); t64 <= t4 {
		t.Fatalf("reduce on 64 ranks (%v) not slower than on 4 (%v)", t64, t4)
	}
}

func TestNonblockingCollectivesOverlapCompute(t *testing.T) {
	// Iallgatherv while computing: total time should be close to
	// max(compute, collective), not their sum.
	const compute = 50 * sim.Millisecond
	blocking := func() sim.Time {
		w := testWorld(t, 8)
		var end sim.Time
		mustRun(t, w, func(r *Rank) {
			r.World().Allgatherv(r, Part{Bytes: 50_000_000}) // ~5ms serialization each
			r.Compute(compute)
			if r.Now() > end {
				end = r.Now()
			}
		})
		return end
	}
	overlapped := func() sim.Time {
		w := testWorld(t, 8)
		var end sim.Time
		mustRun(t, w, func(r *Rank) {
			cr := r.World().Iallgatherv(r, Part{Bytes: 50_000_000})
			r.Compute(compute)
			r.World().WaitColl(r, cr)
			if r.Now() > end {
				end = r.Now()
			}
		})
		return end
	}
	tb, to := blocking(), overlapped()
	if to >= tb {
		t.Fatalf("nonblocking (%v) not faster than blocking (%v)", to, tb)
	}
}

func TestIreduceResultAtRoot(t *testing.T) {
	w := testWorld(t, 8)
	var got int64
	mustRun(t, w, func(r *Rank) {
		cr := r.World().Ireduce(r, 0, Part{Bytes: 8, Data: int64(2)}, SumInt64, nil)
		r.Compute(sim.Millisecond)
		res := r.World().WaitColl(r, cr).(Part)
		if r.ID() == 0 {
			got = res.Data.(int64)
		}
	})
	if got != 16 {
		t.Fatalf("ireduce sum = %d, want 16", got)
	}
}

func TestIalltoallvMatchesBlocking(t *testing.T) {
	w := testWorld(t, 5)
	results := make([][]Part, 5)
	mustRun(t, w, func(r *Rank) {
		parts := make([]Part, 5)
		for dst := 0; dst < 5; dst++ {
			parts[dst] = Part{Bytes: 8, Data: r.ID()*10 + dst}
		}
		cr := r.World().Ialltoallv(r, parts)
		results[r.ID()] = r.World().WaitColl(r, cr).([]Part)
	})
	for rank, parts := range results {
		for src, part := range parts {
			if part.Data.(int) != src*10+rank {
				t.Fatalf("rank %d from %d = %v", rank, src, part.Data)
			}
		}
	}
}

func TestIbarrierCompletes(t *testing.T) {
	w := testWorld(t, 6)
	mustRun(t, w, func(r *Rank) {
		cr := r.World().Ibarrier(r)
		r.Compute(sim.Millisecond)
		r.World().WaitColl(r, cr)
	})
}

func TestIallreduceAgrees(t *testing.T) {
	w := testWorld(t, 7) // non-power-of-two path
	got := make([]int64, 7)
	mustRun(t, w, func(r *Rank) {
		cr := r.World().Iallreduce(r, Part{Bytes: 8, Data: int64(r.ID())}, SumInt64, nil)
		got[r.ID()] = r.World().WaitColl(r, cr).(Part).Data.(int64)
	})
	for i, g := range got {
		if g != 21 {
			t.Fatalf("rank %d = %d, want 21", i, g)
		}
	}
}

func TestBackToBackCollectivesDoNotCrossTalk(t *testing.T) {
	// Two reduces in a row with different values must not mix messages.
	w := testWorld(t, 8)
	var first, second int64
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		a, isRoot := c.Reduce(r, 0, Part{Bytes: 8, Data: int64(1)}, SumInt64, nil)
		b, _ := c.Reduce(r, 0, Part{Bytes: 8, Data: int64(100)}, SumInt64, nil)
		if isRoot {
			first = a.Data.(int64)
			second = b.Data.(int64)
		}
	})
	if first != 8 || second != 800 {
		t.Fatalf("first=%d second=%d, want 8 and 800", first, second)
	}
}

// Property: allreduce of random int64 vectors equals the serial fold, for
// random communicator sizes.
func TestAllreduceMatchesSerialFoldProperty(t *testing.T) {
	f := func(vals []int16, psel uint8) bool {
		p := int(psel)%9 + 1
		if len(vals) < p {
			return true // not enough values to distribute
		}
		var want int64
		for i := 0; i < p; i++ {
			want += int64(vals[i])
		}
		w := NewWorld(Config{Procs: p, Seed: 3})
		ok := true
		_, err := w.Run(func(r *Rank) {
			res := r.World().Allreduce(r, Part{Bytes: 8, Data: int64(vals[r.ID()])}, SumInt64, nil)
			if res.Data.(int64) != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
