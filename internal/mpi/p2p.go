package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// simProc aliases the simulator's process type; operations may run on a
// rank's main process or on a helper process of the same rank.
type simProc = sim.Proc

// message is an in-flight or delivered point-to-point message. src is the
// sender's rank within the communicator identified by commID.
type message struct {
	commID int
	src    int
	tag    int
	bytes  int64
	data   interface{}
}

// postedRecv is a pending receive waiting for a matching message.
type postedRecv struct {
	commID int
	src    int // comm rank or AnySource
	tag    int // or AnyTag
	req    *Request
}

func (p *postedRecv) matches(m *message) bool {
	return p.commID == m.commID &&
		(p.src == AnySource || p.src == m.src) &&
		(p.tag == AnyTag || p.tag == m.tag)
}

// Status describes a completed receive.
type Status struct {
	// Source is the sender's rank in the receive's communicator.
	Source int
	// Tag is the message tag.
	Tag int
	// Bytes is the message payload size used for costing.
	Bytes int64
	// Data is the payload, passed by reference (zero copy). Receivers
	// must treat shared buffers as immutable.
	Data interface{}
}

// Request is the handle of a nonblocking operation. Wait, WaitAll, WaitAny
// and Test observe its completion.
//
// Send requests are "timed": their completion instant (the end of the
// sender's NIC slot) is known when the send is issued, so waiting on them
// advances the clock directly instead of sleeping on an event. Receive
// requests complete when a matching message is delivered.
type Request struct {
	done   bool
	timed  bool
	doneAt sim.Time
	isRecv bool
	status Status
}

// completedBy reports whether the request is complete as of virtual time
// now.
func (q *Request) completedBy(now sim.Time) bool {
	return q.done || (q.timed && now >= q.doneAt)
}

// Done reports whether the operation has completed; it is a pure query
// and consumes no overhead.
func (q *Request) Done(now sim.Time) bool { return q.completedBy(now) }

// Isend starts a nonblocking send of bytes payload bytes (and optional
// data) to dst with the given tag. The caller pays the configured send
// overhead immediately; the returned request completes when the message
// has been handed to the network (buffered-send semantics).
func (c *Comm) Isend(r *Rank, dst, tag int, bytes int64, data interface{}) *Request {
	return c.isendFrom(r, r.proc, dst, tag, bytes, data)
}

// isendFrom implements Isend on behalf of proc, which may be a helper
// process of the same rank (nonblocking collectives).
func (c *Comm) isendFrom(r *Rank, proc *simProc, dst, tag int, bytes int64, data interface{}) *Request {
	return c.isendOv(r, proc, dst, tag, bytes, data, r.w.cfg.Net.SendOverhead)
}

// isendOv is isendFrom with an explicit sender CPU overhead (persistent
// requests pay a reduced per-start cost).
func (c *Comm) isendOv(r *Rank, proc *simProc, dst, tag int, bytes int64, data interface{}, overhead sim.Time) *Request {
	if dst < 0 || dst >= len(c.members) {
		panic(fmt.Sprintf("mpi: Isend to rank %d of %d", dst, len(c.members)))
	}
	if bytes < 0 {
		panic("mpi: negative message size")
	}
	w := r.w
	net := w.cfg.Net
	me := c.RankOf(r)
	src := r.rs
	dstState := w.ranks[c.members[dst]]
	req := &Request{}

	// Sender CPU overhead (the LogGP "o"), accumulated as debt so that
	// bursts of sends cost one engine yield instead of one per message.
	proc.AddDebt(overhead)
	src.msgsSent++
	src.bytesSent += bytes

	e := w.eng
	msg := &message{commID: c.id, src: me, tag: tag, bytes: bytes, data: data}

	if dstState == src {
		// Self-send: no NIC or wire involvement.
		req.done = true
		req.status = Status{Source: me, Tag: tag, Bytes: bytes, Data: data}
		e.At(e.Now(), func() { w.deliver(dstState, msg) })
		return req
	}

	// Sender NIC serialization, starting after any CPU debt the sending
	// process has accumulated. The slot is granted now, so the send
	// request's completion instant is already known: no event needed.
	ser := net.SerializationTime(bytes)
	_, sendEnd := src.sendLink.Reserve(e.Now()+proc.Debt(), ser)
	req.timed = true
	req.doneAt = sendEnd
	req.status = Status{Source: me, Tag: tag, Bytes: bytes, Data: data}
	// Wire latency after the slot, then receiver NIC serialization at
	// arrival time (arrivals occur in sendEnd order, so receiver-side
	// reservations are made in arrival order).
	arrive := sendEnd + net.Latency
	e.At(arrive, func() {
		_, recvEnd := dstState.recvLink.Reserve(e.Now(), ser)
		e.At(recvEnd, func() { w.deliver(dstState, msg) })
	})
	return req
}

// deliver matches a message against posted receives or queues it.
func (w *World) deliver(dst *rankState, m *message) {
	for i, p := range dst.posted {
		if p.matches(m) {
			dst.posted = append(dst.posted[:i], dst.posted[i+1:]...)
			p.req.done = true
			p.req.status = Status{Source: m.src, Tag: m.tag, Bytes: m.bytes, Data: m.data}
			dst.progress.Broadcast(w.eng)
			return
		}
	}
	dst.unexpected = append(dst.unexpected, m)
	dst.progress.Broadcast(w.eng)
}

// Irecv posts a nonblocking receive from src (or AnySource) with the given
// tag (or AnyTag).
func (c *Comm) Irecv(r *Rank, src, tag int) *Request {
	return c.irecvFor(r, src, tag)
}

func (c *Comm) irecvFor(r *Rank, src, tag int) *Request {
	if src != AnySource && (src < 0 || src >= len(c.members)) {
		panic(fmt.Sprintf("mpi: Irecv from rank %d of %d", src, len(c.members)))
	}
	rs := r.rs
	req := &Request{isRecv: true}
	p := &postedRecv{commID: c.id, src: src, tag: tag, req: req}
	// Match against already-arrived messages first (FIFO arrival order
	// preserves MPI's non-overtaking guarantee per (source, tag)).
	for i, m := range rs.unexpected {
		if p.matches(m) {
			rs.unexpected = append(rs.unexpected[:i], rs.unexpected[i+1:]...)
			req.done = true
			req.status = Status{Source: m.src, Tag: m.tag, Bytes: m.bytes, Data: m.data}
			return req
		}
	}
	rs.posted = append(rs.posted, p)
	return req
}

// Send is a blocking send: Isend followed by Wait. With buffered-send
// semantics it returns once the message is handed to the network, so
// pairwise exchanges do not deadlock.
func (c *Comm) Send(r *Rank, dst, tag int, bytes int64, data interface{}) {
	req := c.Isend(r, dst, tag, bytes, data)
	c.Wait(r, req)
}

// Recv is a blocking receive.
func (c *Comm) Recv(r *Rank, src, tag int) Status {
	req := c.Irecv(r, src, tag)
	return c.Wait(r, req)
}

// Wait blocks until req completes and returns its status. Completed
// receives additionally charge the configured receive overhead to the
// calling process.
func (c *Comm) Wait(r *Rank, req *Request) Status {
	return c.waitOn(r, r.proc, req)
}

func (c *Comm) waitOn(r *Rank, proc *simProc, req *Request) Status {
	proc.FlushDebt()
	start := r.w.eng.Now()
	if req.timed && !req.done {
		proc.AdvanceTo(req.doneAt)
		req.done = true
	}
	for !req.done {
		r.rs.progress.Wait(proc, "mpi wait")
	}
	if req.isRecv {
		proc.Advance(r.w.cfg.Net.RecvOverhead)
	}
	if r.w.cfg.Tracer != nil && r.w.eng.Now() > start && proc == r.proc {
		r.w.cfg.Tracer.Span(r.rs.rank, "comm", "wait", start, r.w.eng.Now())
	}
	return req.status
}

// WaitAll waits for every request in order.
func (c *Comm) WaitAll(r *Rank, reqs ...*Request) []Status {
	out := make([]Status, len(reqs))
	for i, q := range reqs {
		out[i] = c.Wait(r, q)
	}
	return out
}

// WaitAny blocks until at least one request has completed and returns the
// lowest completed index with its status. The paper's imbalance-absorption
// mechanism ("process the first available data") is built on this.
func (c *Comm) WaitAny(r *Rank, reqs []*Request) (int, Status) {
	if len(reqs) == 0 {
		panic("mpi: WaitAny with no requests")
	}
	r.proc.FlushDebt()
	start := r.w.eng.Now()
	for {
		now := r.w.eng.Now()
		// Earliest pending timed (send) completion, if any.
		var minTimed sim.Time = -1
		for i, q := range reqs {
			if q == nil {
				continue
			}
			if q.completedBy(now) {
				q.done = true
				if q.isRecv {
					r.proc.Advance(r.w.cfg.Net.RecvOverhead)
				}
				if r.w.cfg.Tracer != nil && r.w.eng.Now() > start {
					r.w.cfg.Tracer.Span(r.rs.rank, "comm", "waitany", start, r.w.eng.Now())
				}
				return i, q.status
			}
			if q.timed && (minTimed < 0 || q.doneAt < minTimed) {
				minTimed = q.doneAt
			}
		}
		if minTimed >= 0 {
			// A send will complete at a known instant; a receive may
			// complete during the advance and wins the next scan.
			r.proc.AdvanceTo(minTimed)
			continue
		}
		r.rs.progress.Wait(r.proc, "mpi waitany")
	}
}

// Test reports whether req has completed, consuming receive overhead on
// the first successful test of a receive.
func (c *Comm) Test(r *Rank, req *Request) (bool, Status) {
	if !req.completedBy(r.w.eng.Now()) {
		return false, Status{}
	}
	req.done = true
	if req.isRecv {
		r.proc.Advance(r.w.cfg.Net.RecvOverhead)
		req.isRecv = false // charge overhead once
	}
	return true, req.status
}

// Probe reports whether a matching message has already arrived, without
// receiving it.
func (c *Comm) Probe(r *Rank, src, tag int) (bool, Status) {
	for _, m := range r.rs.unexpected {
		p := postedRecv{commID: c.id, src: src, tag: tag}
		if p.matches(m) {
			return true, Status{Source: m.src, Tag: m.tag, Bytes: m.bytes, Data: m.data}
		}
	}
	return false, Status{}
}
