package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// simProc aliases the simulator's process type; operations may run on a
// rank's main process or on a helper process of the same rank.
type simProc = sim.Proc

// exec is the execution-context subset shared by sim.Proc and sim.Fiber
// that the synchronous runtime paths need: overhead accounting for the
// send fast path. Blocking paths stay representation-specific (waitOn for
// processes, the fiber wait continuations in fiber.go).
type exec interface {
	AddDebt(sim.Time)
	Debt() sim.Time
}

// message is an in-flight or delivered point-to-point message. src is the
// sender's rank within the communicator identified by commID. readyAt is
// the end of the receiver-NIC serialization slot: the instant the payload
// is fully received. Messages are bound to receives at arrival time (one
// event earlier than readyAt), but completion is never observable before
// readyAt — see deliverAt. consumed marks messages already matched out of
// the unexpected queue (lazy deletion in the index's arrival list).
//
// Messages are pooled per world (see World.newMessage) and double as
// their own delivery events (sim.Action), so the steady-state send path
// allocates nothing but the Request.
type message struct {
	commID   int
	src      int
	tag      int
	bytes    int64
	data     interface{}
	readyAt  sim.Time
	consumed bool
	// epoch is the world's revocation epoch when the message was sent;
	// delivery drops messages from a superseded epoch (failure.go), so
	// traffic from a pre-crash attempt never matches a post-rebuild
	// receive. Always 0 on crash-free runs.
	epoch int

	// Delivery state for Fire.
	dst  *rankState
	ser  sim.Time
	self bool

	// Reliable-delivery fields (reliable.go), set only when the world's
	// message-fault campaign arms the protocol: seq is the per-(src, dst)
	// send sequence number, sender the acking target. Zero on lossless
	// worlds.
	rel    bool
	seq    uint64
	sender *rankState
}

// Fire delivers the message: self-sends deliver immediately; network
// messages fire at wire arrival, reserve the receiver NIC and become
// observable when its serialization slot ends.
func (m *message) Fire() {
	// Delivery events fire on the destination rank's engine (its shard's,
	// in parallel mode), so the receiver NIC and matching state are only
	// ever touched by that engine's thread of control.
	w := m.dst.world
	e := m.dst.eng
	if m.self {
		w.deliverAt(m.dst, m, e.Now())
		return
	}
	_, recvEnd := m.dst.recvLink.Reserve(e.Now(), m.ser)
	if m.rel {
		// Reliable transmission: ack, suppress duplicates, release to
		// matching in sequence order (reliable.go).
		w.relArrive(m, recvEnd)
		return
	}
	w.deliverAt(m.dst, m, recvEnd)
}

// postedRecv is a pending receive waiting for a matching message. seq is
// its posting order within the rank, assigned by the matching index.
type postedRecv struct {
	commID int
	src    int // comm rank or AnySource
	tag    int // or AnyTag
	seq    uint64
	req    *Request
}

// Status describes a completed receive.
type Status struct {
	// Source is the sender's rank in the receive's communicator.
	Source int
	// Tag is the message tag.
	Tag int
	// Bytes is the message payload size used for costing.
	Bytes int64
	// Data is the payload, passed by reference (zero copy). Receivers
	// must treat shared buffers as immutable.
	Data interface{}
	// Err is non-nil when the operation completed by failure instead of
	// delivery: a peer rank crashed and the world is revoked (ULFM-style
	// peer-failure notification, see failure.go). The wait entry points
	// surface it before any status reaches application code.
	Err error
}

// Request is the handle of a nonblocking operation. Wait, WaitAll, WaitAny
// and Test observe its completion.
//
// Send requests are "timed": their completion instant (the end of the
// sender's NIC slot) is known when the send is issued, so waiting on them
// advances the clock directly instead of sleeping on an event. Receive
// requests complete when a matching message is delivered.
//
// Requests are pooled per world: the wait that observes a request's
// completion (Wait, WaitAll, WaitAny and the F* forms) CONSUMES it — the
// handle recycles and must not be used again. Test does not consume (the
// documented Test-then-Wait sequence stays valid); a request completed
// only ever by Test is simply left to the GC.
type Request struct {
	done      bool
	timed     bool
	doneAt    sim.Time
	isRecv    bool
	ovCharged bool // receive overhead charged (exactly once per request)
	// waiter is the process or fiber parked in Wait on this request, if
	// any. Delivery wakes it directly at the completion instant — no
	// rank-wide broadcast event, no spurious wakeups of unrelated waiters.
	// Either representation consumes exactly one wake event, so the
	// trajectory is independent of which one waits.
	waiter sim.Runnable
	// anyw is the waker of a process or fiber parked in WaitAny with this
	// request in its set, if any: the multi-request counterpart of waiter.
	// Delivery wakes the waker's target once at the completion instant,
	// however many of its registered requests complete while it is parked
	// (sim.Waker dedupes); the resumed waiter deregisters the rest.
	anyw *sim.Waker
	// freed marks a request sitting in the world pool: every wait entry
	// point checks it, so a stale handle (used again after the consuming
	// wait) fails loudly instead of silently corrupting the pool.
	freed  bool
	status Status
}

// checkLive panics if q is a consumed (recycled) handle.
func (q *Request) checkLive() {
	if q.freed {
		panic("mpi: use of a Request already consumed by a wait")
	}
}

// completedBy reports whether the request is complete as of virtual time
// now.
func (q *Request) completedBy(now sim.Time) bool {
	return q.done || (q.timed && now >= q.doneAt)
}

// Done reports whether the operation has completed; it is a pure query
// and consumes no overhead.
func (q *Request) Done(now sim.Time) bool { return q.completedBy(now) }

// Isend starts a nonblocking send of bytes payload bytes (and optional
// data) to dst with the given tag. The caller pays the configured send
// overhead immediately; the returned request completes when the message
// has been handed to the network (buffered-send semantics). Isend never
// blocks, so it serves both process representations.
func (c *Comm) Isend(r *Rank, dst, tag int, bytes int64, data interface{}) *Request {
	return c.isendOv(r, r.ctx(), dst, tag, bytes, data, r.w.cfg.Net.SendOverhead)
}

// IsendAndFree is Isend followed by immediately releasing the request —
// the MPI_Request_free idiom for fire-and-forget sends under buffered
// semantics. Send completion is never observable through a request (send
// requests are timed at issue and referenced nowhere else), so recycling
// it at once is safe and the send costs no allocation. The stream
// library's element path and the apps' aggregate forwards use it.
func (c *Comm) IsendAndFree(r *Rank, dst, tag int, bytes int64, data interface{}) {
	req := c.Isend(r, dst, tag, bytes, data)
	r.rs.pool.freeRequest(req)
}

// isendFrom implements Isend on behalf of proc, which may be a helper
// process of the same rank (nonblocking collectives).
func (c *Comm) isendFrom(r *Rank, proc *simProc, dst, tag int, bytes int64, data interface{}) *Request {
	return c.isendOv(r, proc, dst, tag, bytes, data, r.w.cfg.Net.SendOverhead)
}

// isendOv is isendFrom with an explicit sender CPU overhead (persistent
// requests pay a reduced per-start cost). It accepts either process
// representation: the send path never blocks, so overhead accounting is
// all it needs from the caller's execution context.
func (c *Comm) isendOv(r *Rank, proc exec, dst, tag int, bytes int64, data interface{}, overhead sim.Time) *Request {
	if dst < 0 || dst >= len(c.members) {
		panic(fmt.Sprintf("mpi: Isend to rank %d of %d", dst, len(c.members)))
	}
	if bytes < 0 {
		panic("mpi: negative message size")
	}
	w := r.w
	if w.revoked {
		// The world is revoked by a crash: the send completes immediately
		// with failure — no overhead, no counters, no wire traffic.
		return w.failedRequest()
	}
	net := w.cfg.Net
	me := c.RankOf(r)
	src := r.rs
	dstState := w.ranks[c.members[dst]]
	req := src.pool.newRequest()

	// Sender CPU overhead (the LogGP "o"), accumulated as debt so that
	// bursts of sends cost one engine yield instead of one per message.
	proc.AddDebt(overhead)
	src.msgsSent++
	src.bytesSent += bytes

	e := src.eng
	msg := src.pool.newMessage()
	msg.commID, msg.src, msg.tag, msg.bytes, msg.data = c.id, me, tag, bytes, data
	msg.dst = dstState
	msg.epoch = w.epoch

	if dstState == src {
		// Self-send: no NIC or wire involvement.
		req.done = true
		req.status = Status{Source: me, Tag: tag, Bytes: bytes, Data: data}
		msg.self = true
		e.AtAction(e.Now(), msg)
		return req
	}

	// Sender NIC serialization, starting after any CPU debt the sending
	// process has accumulated. The slot is granted now, so the send
	// request's completion instant is already known: no event needed.
	// With link faults scheduled, the bandwidth window covering the slot
	// request inflates serialization and the latency window covering the
	// flight start inflates the wire hop; the guards keep the fault-free
	// hot path byte-identical.
	ser := net.SerializationTime(bytes)
	if lf := w.cfg.LinkFaults; lf != nil {
		ser = lf.StretchSerialization(ser, e.Now()+proc.Debt())
	}
	_, sendEnd := src.sendLink.Reserve(e.Now()+proc.Debt(), ser)
	req.timed = true
	req.doneAt = sendEnd
	req.status = Status{Source: me, Tag: tag, Bytes: bytes, Data: data}
	// Wire latency after the slot, then receiver NIC serialization at
	// arrival time (arrivals occur in sendEnd order, so receiver-side
	// reservations are made in arrival order). The message is bound to a
	// receive at arrival; completion becomes observable at recvEnd. This
	// needs one event per message instead of two, and the known completion
	// instant lets waiting receivers advance their clock instead of
	// parking.
	lat := net.Latency
	if lf := w.cfg.LinkFaults; lf != nil {
		lat = lf.StretchLatency(lat, sendEnd)
	}
	arrive := sendEnd + lat
	msg.ser = ser
	if w.reliable() {
		// Lossy fabric: the reliable protocol takes over delivery —
		// sequence number, attempt-0 verdict, retransmission timer. The
		// request's completion instant (the NIC slot) is already fixed
		// above, so buffered-send semantics and send-side cost are
		// unchanged. Incompatible with the sharded mode, so this branch
		// never races the Post path below.
		src.relSend(msg, sendEnd, arrive)
		return req
	}
	if w.group != nil {
		// Parallel mode: every cross-rank delivery is keyed by the sender's
		// program order (deliveryPri), even when both ranks share a shard —
		// the merge order at the receiver must not depend on placement.
		// Post routes same-engine deliveries through the priority heap and
		// cross-shard ones through the window outbox.
		e.Post(dstState.eng, arrive, src.deliveryPri(), msg)
	} else {
		e.AtAction(arrive, msg)
	}
	return req
}

// deliverAt matches a message against posted receives or queues it. The
// earliest-posted matching receive wins (see matchIndex.takePosted).
// ready is the instant the payload is fully received (the end of the
// receiver-NIC slot); a receive matched before then completes as a timed
// request at ready, which is exactly when the separate delivery event
// used to complete it.
//
// For network traffic, binding at arrival instead of ready changes no
// outcome: per-rank NIC reservations are made in arrival order, so ready
// instants are monotonic in arrival order and the match order is the same
// either way; receives posted between arrival and ready would have lost
// the match to any earlier-posted receive under either scheme, or else
// find the message in the unexpected queue (with its readiness instant)
// themselves.
//
// Self-sends are the one exception to that monotonicity: they are ready
// immediately and may deliver while an earlier-arrived network message is
// still on the NIC. A receive already posted when the network message
// arrived keeps its early binding even though strict delivery order would
// have handed it the self-send. That is a valid MPI outcome — matching
// order across different sources is unspecified, and non-overtaking only
// constrains one (source, tag) pair, which a self-send (src == me) and a
// network message (src != me) never share. Queue-side visibility IS kept
// delivery-faithful: Probe reports only fully-received messages and a
// receive posted over the queue prefers them in the same order
// (firstReadyIn), so probe-then-receive always agrees.
func (w *World) deliverAt(dst *rankState, m *message, ready sim.Time) {
	if m.epoch != w.epoch {
		// Traffic from a superseded epoch (sent before a crash revoked the
		// world): drop it so a pre-crash attempt's messages never match a
		// post-rebuild receive.
		dst.pool.freeMessage(m)
		return
	}
	e := dst.eng
	if p := dst.match.takePosted(m); p != nil {
		req := p.req
		req.status = Status{Source: m.src, Tag: m.tag, Bytes: m.bytes, Data: m.data}
		dst.pool.freePostedRecv(p)
		dst.pool.freeMessage(m)
		if ready > e.Now() {
			req.timed = true
			req.doneAt = ready
			// Nobody can act on the completion before ready; wake waiters
			// then, not now (a waiter woken early would only re-park or
			// burn a yield advancing to ready). A process parked in Wait
			// on this request resumes directly, as does a WaitAny waiter
			// registered on it; waiters that arrive after this instant see
			// the timed request directly. (Legacy strategy: rank-level
			// waiters get a deferred broadcast instead.)
			if req.waiter != nil {
				e.WakeAt(ready, req.waiter)
			} else if req.anyw != nil {
				req.anyw.WakeAt(ready)
				req.anyw = nil
			} else if w.legacy && dst.progress.Len() > 0 {
				e.AtAction(ready, dst)
			}
			return
		}
		req.done = true
		if req.waiter != nil {
			e.WakeAt(e.Now(), req.waiter)
		} else if req.anyw != nil {
			req.anyw.WakeAt(e.Now())
			req.anyw = nil
		} else if w.legacy {
			dst.progress.Broadcast(e)
		}
		return
	}
	m.readyAt = ready
	dst.match.addUnexpected(m)
	// An unmatched arrival completes no request, so under direct wake
	// nobody needs waking: a blocked WaitAny waiter's requests are all
	// posted receives, which this message just failed to match. The
	// legacy strategy broadcast here anyway — the two spurious events per
	// message this PR removes from the consumer-side stream path.
	if w.legacy {
		dst.progress.Broadcast(e)
	}
}

// Irecv posts a nonblocking receive from src (or AnySource) with the given
// tag (or AnyTag).
func (c *Comm) Irecv(r *Rank, src, tag int) *Request {
	return c.irecvFor(r, src, tag)
}

func (c *Comm) irecvFor(r *Rank, src, tag int) *Request {
	if src != AnySource && (src < 0 || src >= len(c.members)) {
		panic(fmt.Sprintf("mpi: Irecv from rank %d of %d", src, len(c.members)))
	}
	if r.w.revoked {
		// The world is revoked by a crash: the receive completes
		// immediately with failure instead of parking forever.
		return r.w.failedRequest()
	}
	rs := r.rs
	req := rs.pool.newRequest()
	req.isRecv = true
	// Match against already-arrived messages first (FIFO arrival order
	// preserves MPI's non-overtaking guarantee per (source, tag)). A
	// message still on the receiver NIC completes the request at its
	// readiness instant.
	if m := rs.match.takeQueued(c.id, src, tag, rs.eng.Now()); m != nil {
		req.status = Status{Source: m.src, Tag: m.tag, Bytes: m.bytes, Data: m.data}
		if m.readyAt > rs.eng.Now() {
			req.timed = true
			req.doneAt = m.readyAt
		} else {
			req.done = true
		}
		return req
	}
	p := rs.pool.newPostedRecv()
	p.commID, p.src, p.tag, p.req = c.id, src, tag, req
	rs.match.post(p)
	return req
}

// Send is a blocking send: Isend followed by Wait. With buffered-send
// semantics it returns once the message is handed to the network, so
// pairwise exchanges do not deadlock.
func (c *Comm) Send(r *Rank, dst, tag int, bytes int64, data interface{}) {
	req := c.Isend(r, dst, tag, bytes, data)
	c.Wait(r, req)
}

// Recv is a blocking receive.
func (c *Comm) Recv(r *Rank, src, tag int) Status {
	req := c.Irecv(r, src, tag)
	return c.Wait(r, req)
}

// Wait blocks until req completes and returns its status. Completed
// receives additionally charge the configured receive overhead to the
// calling process.
func (c *Comm) Wait(r *Rank, req *Request) Status {
	return c.waitOn(r, r.proc, req)
}

func (c *Comm) waitOn(r *Rank, proc *simProc, req *Request) Status {
	req.checkLive()
	if c.w.cfg.Tracer != nil {
		return c.waitOnTraced(r, proc, req)
	}
	e := r.rs.eng
	// floor is the earliest instant this process can observe anything:
	// entry time plus the CPU debt it owes. The debt rides through the
	// park (its busy window overlaps the blocked period) and is folded
	// into the single settling advance below — one engine yield for the
	// whole wait, however the request completes.
	floor := e.Now() + proc.Debt()
	for !req.done && !req.timed {
		// The park registers this process on the request, so delivery
		// wakes exactly this process at exactly the right instant.
		req.waiter = proc
		proc.ParkKeepingDebt("mpi wait")
		req.waiter = nil
	}
	target := e.Now()
	if floor > target {
		target = floor
	}
	if err := req.status.Err; err != nil {
		// Completed by peer failure: settle the clock (debt must not leak
		// into the recovery path) and surface the error. The request is
		// abandoned, not recycled — the panic unwinds past the caller.
		proc.SettleTo(target)
		panic(err)
	}
	if req.timed && req.doneAt > target {
		target = req.doneAt
	}
	req.done = true
	if req.isRecv && !req.ovCharged {
		req.ovCharged = true
		target += r.w.cfg.Net.RecvOverhead
	}
	proc.SettleTo(target)
	st := req.status
	r.rs.pool.freeRequest(req)
	return st
}

// waitOnTraced is the waitOn used when a Tracer is configured: it keeps
// the serial sequence of clock advances (flush debt, wait, then charge
// receive overhead) so emitted spans match the untuned path exactly.
func (c *Comm) waitOnTraced(r *Rank, proc *simProc, req *Request) Status {
	proc.FlushDebt()
	start := r.rs.eng.Now()
	for !req.done {
		if req.timed {
			proc.AdvanceTo(req.doneAt)
			req.done = true
			break
		}
		req.waiter = proc
		proc.Park("mpi wait")
		req.waiter = nil
	}
	if req.isRecv && !req.ovCharged {
		req.ovCharged = true
		proc.Advance(r.w.cfg.Net.RecvOverhead)
	}
	if r.rs.eng.Now() > start && proc == r.proc {
		r.w.cfg.Tracer.Span(r.rs.rank, "comm", "wait", start, r.rs.eng.Now())
	}
	st := req.status
	r.rs.pool.freeRequest(req)
	return st
}

// WaitAll waits for every request in order. Requests that are already
// complete when reached are settled without an engine yield, and their
// receive overheads accumulate as CPU debt (the way AddDebt coalesces
// send overhead) — one clock advance at the end instead of one per
// request. The virtual-time outcome is identical to waiting on each
// request in sequence.
//
// The returned slice is scratch storage owned by the rank and is reused
// by that rank's next WaitAll call; callers that need the statuses longer
// must copy them out.
func (c *Comm) WaitAll(r *Rank, reqs ...*Request) []Status {
	out := r.rs.statusScratch(len(reqs))
	if c.w.cfg.Tracer != nil {
		// Tracing runs keep the per-request path so emitted wait spans
		// match the serial semantics exactly.
		for i, q := range reqs {
			out[i] = c.Wait(r, q)
		}
		return out
	}
	proc := r.proc
	e := r.rs.eng
	ov := c.w.cfg.Net.RecvOverhead
	for i, q := range reqs {
		q.checkLive()
		// Fast path: complete as of now plus pending debt. (Timed send
		// completions compare against the post-flush clock, matching what
		// Wait's FlushDebt-then-AdvanceTo would observe.) Requests completed
		// by peer failure take the Wait path, which surfaces the error.
		if q.status.Err == nil && (q.done || (q.timed && q.doneAt <= e.Now()+proc.Debt())) {
			q.done = true
			if q.isRecv && !q.ovCharged {
				q.ovCharged = true
				proc.AddDebt(ov)
			}
			out[i] = q.status
			r.rs.pool.freeRequest(q)
			continue
		}
		out[i] = c.Wait(r, q)
	}
	proc.FlushDebt()
	return out
}

// WaitAny blocks until at least one request has completed and returns the
// lowest completed index with its status. The paper's imbalance-absorption
// mechanism ("process the first available data") is built on this.
//
// A blocked WaitAny registers one waker on every pending request, so the
// first completion resumes exactly this process at exactly the completion
// instant — no rank-wide broadcast, no wake per unrelated message. Because
// a wake implies a completed request, the process parks at most once per
// call and the post-wake scan doubles as deregistration.
func (c *Comm) WaitAny(r *Rank, reqs []*Request) (int, Status) {
	if len(reqs) == 0 {
		panic("mpi: WaitAny with no requests")
	}
	r.proc.FlushDebt()
	start := r.rs.eng.Now()
	var aw *sim.Waker
	for {
		now := r.rs.eng.Now()
		// Earliest pending timed completion (sends, and receives whose
		// message is already bound), if any.
		var minTimed sim.Time = -1
		won := -1
		for i, q := range reqs {
			if q == nil {
				continue
			}
			q.checkLive()
			if aw != nil && q.anyw == aw {
				q.anyw = nil
			}
			if won < 0 && q.completedBy(now) {
				won = i
				// Keep scanning: later requests may still hold the waker.
				continue
			}
			if q.timed && (minTimed < 0 || q.doneAt < minTimed) {
				minTimed = q.doneAt
			}
		}
		if won >= 0 {
			if aw != nil {
				aw.Disarm()
				r.rs.pool.freeWaker(aw)
			}
			q := reqs[won]
			if err := q.status.Err; err != nil {
				// Completed by peer failure (debt was flushed at entry, so
				// the clock is already settled). The request is abandoned.
				panic(err)
			}
			q.done = true
			if q.isRecv && !q.ovCharged {
				q.ovCharged = true
				r.proc.Advance(r.w.cfg.Net.RecvOverhead)
			}
			if r.w.cfg.Tracer != nil && r.rs.eng.Now() > start {
				r.w.cfg.Tracer.Span(r.rs.rank, "comm", "waitany", start, r.rs.eng.Now())
			}
			st := q.status
			r.rs.pool.freeRequest(q)
			return won, st
		}
		if minTimed >= 0 {
			// A send will complete at a known instant; a receive may
			// complete during the advance and wins the next scan.
			r.proc.AdvanceTo(minTimed)
			continue
		}
		if r.w.legacy {
			r.rs.progress.Wait(r.proc, "mpi waitany")
			continue
		}
		if aw == nil {
			aw = r.rs.pool.newWaker()
			aw.Arm(r.rs.eng, r.proc)
		}
		for _, q := range reqs {
			if q != nil && !q.done && !q.timed {
				q.anyw = aw
			}
		}
		r.proc.Park("mpi waitany")
	}
}

// Test reports whether req has completed, consuming receive overhead on
// the first successful test of a receive. The overhead is charged exactly
// once per request (ovCharged), so Test-then-Wait sequences neither
// double- nor under-charge.
func (c *Comm) Test(r *Rank, req *Request) (bool, Status) {
	req.checkLive()
	if !req.completedBy(r.rs.eng.Now()) {
		return false, Status{}
	}
	if err := req.status.Err; err != nil {
		panic(err)
	}
	req.done = true
	if req.isRecv && !req.ovCharged {
		req.ovCharged = true
		r.proc.Advance(r.w.cfg.Net.RecvOverhead)
	}
	return true, req.status
}

// Probe reports whether a matching message has already arrived, without
// receiving it. A message still being serialized by the receiver NIC is
// not yet visible.
func (c *Comm) Probe(r *Rank, src, tag int) (bool, Status) {
	if m := r.rs.match.findQueuedReady(c.id, src, tag, r.rs.eng.Now()); m != nil {
		return true, Status{Source: m.src, Tag: m.tag, Bytes: m.bytes, Data: m.data}
	}
	return false, Status{}
}
