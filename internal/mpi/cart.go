package mpi

import "fmt"

// Cart is a Cartesian process topology over a communicator, like
// MPI_Cart_create. Rank 0 owns coordinate (0,0,...,0); the last dimension
// varies fastest (row-major), matching MPI.
type Cart struct {
	Comm     *Comm
	Dims     []int
	Periodic bool

	// One-rank cache of unit shifts: Shift sits in halo-exchange inner
	// loops and is almost always asked about the caller's own rank with
	// displacement ±1. Layout: for each dim, [src(-1), dst(-1), src(+1),
	// dst(+1)].
	cachedRank int // -1 when empty
	unitShift  []int
}

// NewCart builds a Cartesian topology with the given dimensions over c.
// The product of dims must equal the communicator size.
func NewCart(c *Comm, dims []int, periodic bool) *Cart {
	prod := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("mpi: cart dimension %d", d))
		}
		prod *= d
	}
	if prod != c.Size() {
		panic(fmt.Sprintf("mpi: cart dims %v (=%d) do not cover comm size %d", dims, prod, c.Size()))
	}
	return &Cart{Comm: c, Dims: append([]int(nil), dims...), Periodic: periodic, cachedRank: -1}
}

// BalancedDims factors size into ndims factors as close to each other as
// possible (like MPI_Dims_create), largest first.
func BalancedDims(size, ndims int) []int {
	if size <= 0 || ndims <= 0 {
		panic("mpi: BalancedDims needs positive arguments")
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Prime-factorize size, then hand out factors largest-first to the
	// currently smallest dimension, which keeps dimensions near-equal.
	var factors []int
	remaining := size
	for f := 2; remaining > 1; {
		if remaining%f == 0 {
			factors = append(factors, f)
			remaining /= f
		} else {
			f++
			if f*f > remaining {
				f = remaining // remaining is prime
			}
		}
	}
	for i := len(factors) - 1; i >= 0; i-- {
		min := 0
		for j := 1; j < ndims; j++ {
			if dims[j] < dims[min] {
				min = j
			}
		}
		dims[min] *= factors[i]
	}
	// Largest first, for the conventional (DimX >= DimY >= DimZ) layout.
	for i := 0; i < ndims; i++ {
		for j := i + 1; j < ndims; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims
}

// Coords returns the Cartesian coordinates of a comm rank.
func (ct *Cart) Coords(rank int) []int {
	if rank < 0 || rank >= ct.Comm.Size() {
		panic(fmt.Sprintf("mpi: cart coords of rank %d", rank))
	}
	coords := make([]int, len(ct.Dims))
	for i := len(ct.Dims) - 1; i >= 0; i-- {
		coords[i] = rank % ct.Dims[i]
		rank /= ct.Dims[i]
	}
	return coords
}

// RankAt returns the comm rank at the given coordinates, applying periodic
// wraparound if the topology is periodic. For non-periodic topologies,
// out-of-range coordinates return -1 (no neighbour).
func (ct *Cart) RankAt(coords []int) int {
	if len(coords) != len(ct.Dims) {
		panic("mpi: cart coordinate arity mismatch")
	}
	rank := 0
	for i, c := range coords {
		d := ct.Dims[i]
		if c < 0 || c >= d {
			if !ct.Periodic {
				return -1
			}
			c = ((c % d) + d) % d
		}
		rank = rank*d + c
	}
	return rank
}

// Shift returns the (source, dest) comm ranks for a displacement along
// dim, like MPI_Cart_shift. Either may be -1 on non-periodic boundaries.
func (ct *Cart) Shift(rank, dim, disp int) (src, dst int) {
	if disp == 1 || disp == -1 {
		if rank != ct.cachedRank {
			ct.fillUnitShifts(rank)
		}
		base := dim * 4
		if disp == 1 {
			base += 2
		}
		return ct.unitShift[base], ct.unitShift[base+1]
	}
	return ct.shiftSlow(rank, dim, disp)
}

func (ct *Cart) shiftSlow(rank, dim, disp int) (src, dst int) {
	coords := ct.Coords(rank)
	up := append([]int(nil), coords...)
	up[dim] += disp
	down := append([]int(nil), coords...)
	down[dim] -= disp
	return ct.RankAt(down), ct.RankAt(up)
}

// fillUnitShifts computes every ±1 shift of rank into the one-rank cache.
func (ct *Cart) fillUnitShifts(rank int) {
	if ct.unitShift == nil {
		ct.unitShift = make([]int, 4*len(ct.Dims))
	}
	for dim := range ct.Dims {
		src, dst := ct.shiftSlow(rank, dim, -1)
		ct.unitShift[dim*4], ct.unitShift[dim*4+1] = src, dst
		src, dst = ct.shiftSlow(rank, dim, 1)
		ct.unitShift[dim*4+2], ct.unitShift[dim*4+3] = src, dst
	}
	ct.cachedRank = rank
}

// Neighbors returns the comm ranks of the 2*ndims face neighbours of
// rank, omitting missing neighbours on non-periodic boundaries. Order:
// (-dim0, +dim0, -dim1, +dim1, ...).
func (ct *Cart) Neighbors(rank int) []int {
	var out []int
	for dim := range ct.Dims {
		src, dst := ct.Shift(rank, dim, 1)
		if src >= 0 {
			out = append(out, src)
		}
		if dst >= 0 {
			out = append(out, dst)
		}
	}
	return out
}

// ForwardSteps reports the paper's bound on iterative neighbour forwarding
// for this topology: DimX + DimY + ... (Section IV-D1).
func (ct *Cart) ForwardSteps() int {
	total := 0
	for _, d := range ct.Dims {
		total += d
	}
	return total
}
