package mpi

// Common ReduceOp implementations. All of them treat a nil payload as the
// identity, so cost-only simulations (nil Data) can reuse the same
// collectives as payload-carrying code.

// SumFloat64s adds two []float64 payloads elementwise. Shorter inputs are
// treated as zero-padded.
func SumFloat64s(a, b interface{}) interface{} {
	av, _ := a.([]float64)
	bv, _ := b.([]float64)
	if av == nil {
		return bv
	}
	if bv == nil {
		return av
	}
	n := len(av)
	if len(bv) > n {
		n = len(bv)
	}
	out := make([]float64, n)
	copy(out, av)
	for i, v := range bv {
		out[i] += v
	}
	return out
}

// SumInt64 adds two int64 payloads.
func SumInt64(a, b interface{}) interface{} {
	av, _ := a.(int64)
	bv, _ := b.(int64)
	return av + bv
}

// MaxInt64 takes the maximum of two int64 payloads.
func MaxInt64(a, b interface{}) interface{} {
	av, _ := a.(int64)
	bv, _ := b.(int64)
	if av > bv {
		return av
	}
	return bv
}

// SumFloat64 adds two scalar float64 payloads.
func SumFloat64(a, b interface{}) interface{} {
	av, _ := a.(float64)
	bv, _ := b.(float64)
	return av + bv
}

// MergeCounts merges two map[string]int64 payloads (word-count
// histograms), allocating a fresh map so inputs stay untouched.
func MergeCounts(a, b interface{}) interface{} {
	am, _ := a.(map[string]int64)
	bm, _ := b.(map[string]int64)
	if am == nil {
		return bm
	}
	if bm == nil {
		return am
	}
	out := make(map[string]int64, len(am)+len(bm))
	for k, v := range am {
		out[k] = v
	}
	for k, v := range bm {
		out[k] += v
	}
	return out
}
