// Package mpi implements an MPI-like message-passing runtime on top of the
// discrete-event simulator in internal/sim.
//
// The package exists because the paper's proof-of-concept (MPIStream) is
// built atop MPI on a Cray XC40, and Go has no MPI ecosystem. Ranks are
// simulated processes; point-to-point messages follow the LogGP-style cost
// model in internal/netmodel, with per-endpoint NIC serialization so that
// congestion at hot receivers emerges naturally. Collectives are
// implemented with the standard distributed algorithms (binomial trees,
// recursive doubling, rings, pairwise exchange) over the point-to-point
// layer, so their cost — and its growth with the number of processes —
// emerges from message costs rather than being asserted.
//
// Messages carry real payloads, which makes the algorithms testable for
// correctness, not only for cost: the CG solver in internal/apps/cg
// converges through this runtime.
package mpi

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// legacyWake selects the pre-TrajectoryVersion-2 wake strategy: blocked
// WaitAny/WaitColl callers park on the rank-wide progress queue and every
// completion broadcasts to it, instead of the direct per-request wake
// (sim.Waker). It exists solely so the direct-wake win can be re-measured
// as a same-run paired A/B (decouplebench -wake, the CI smoke job); the
// two strategies produce different — individually deterministic —
// trajectories. Worlds capture the strategy when they are built, so it
// must only be flipped between simulations.
var legacyWake = os.Getenv("REPRO_WAKE") == "broadcast"

// SetLegacyWake overrides the REPRO_WAKE environment default process-wide
// and returns the previous setting. Benchmarks restore it when done.
func SetLegacyWake(v bool) bool {
	prev := legacyWake
	legacyWake = v
	return prev
}

// Reserved tag space: tags at or above collTagBase are used internally by
// collective operations; application code must use smaller tags.
const collTagBase = 1 << 24

// AnySource and AnyTag are wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Tracer receives execution spans (compute, communication wait, I/O) from
// the runtime. internal/trace provides an implementation; the interface
// lives here so the runtime does not depend on the trace package.
type Tracer interface {
	Span(rank int, category, label string, start, end sim.Time)
}

// Config describes a simulated machine and job.
type Config struct {
	// Procs is the total number of MPI processes (world size).
	Procs int
	// Net is the network cost model. Zero value is replaced by
	// netmodel.AriesLike.
	Net netmodel.Params
	// FS is the file-system cost model. Zero value is replaced by
	// netmodel.LustreLike.
	FS netmodel.FSParams
	// Noise perturbs compute operations. Nil means netmodel.None.
	Noise netmodel.Noise
	// Seed drives every random stream in the simulation.
	Seed int64
	// Tracer, if non-nil, receives execution spans.
	Tracer Tracer

	// RankFaults schedules compute slowdown bursts: RankFaults[i] holds
	// rank i's windows (sorted and non-overlapping per
	// sim.ValidateWindows), applied multiplicatively on top of the noise
	// model's speed factor and jitter by the compute-cost path of both
	// process representations. Ranks at or beyond len(RankFaults) are
	// fault-free; nil schedules nothing.
	RankFaults [][]sim.FaultWindow
	// StripeFaults schedules degradation windows on the world's private
	// file-system bank: StripeFaults[i] holds stripe i's outage/derate
	// windows (sim.ValidateStripeFaults). It is incompatible with a
	// shared Bank — the bank's owner (internal/cluster) installs faults
	// there — and panics when both are set.
	StripeFaults [][]sim.StripeFault
	// LinkFaults schedules windowed network degradation (latency and
	// bandwidth multipliers) applied to message cost. Nil means a
	// healthy network.
	LinkFaults *netmodel.LinkFaults
	// Crashes schedules crash-stop rank failures: each event kills rank
	// Target's body at virtual time At and respawns it Restart later (see
	// failure.go for the failure and recovery semantics). Events must be
	// sorted by (At, Target) — internal/faults compiles them that way —
	// so kill order is deterministic. Nil schedules nothing and leaves
	// trajectories byte-identical to a crash-free build. Crash campaigns
	// are incompatible with tracing and with the legacy broadcast wake
	// strategy.
	Crashes []sim.CrashEvent
	// MsgFaults makes the fabric lose or duplicate individual message
	// transmissions and arms the reliable-delivery protocol (sequence
	// numbers, acks, virtual-time retransmission timers — see
	// reliable.go). Nil means a lossless fabric with the protocol
	// disarmed, byte-identical to a build without it. Message-fault
	// campaigns are incompatible with tracing, the legacy broadcast wake
	// strategy, and the sharded parallel mode (Shards > 1).
	MsgFaults *netmodel.MsgFaults
	// AckTimeout is the reliable protocol's base retransmission slack:
	// attempt n retransmits AckTimeout << n after the expected ack
	// instant. Zero defaults to 8x the network latency. Ignored when
	// MsgFaults is nil.
	AckTimeout sim.Time
	// RetryLimit caps transmission attempts per message; exceeding it
	// revokes the world with *RankUnreachableError. Zero defaults to 8.
	// Ignored when MsgFaults is nil.
	RetryLimit int

	// Engine, if non-nil, attaches the world to an existing engine instead
	// of owning one: several worlds (jobs) spawned on the same engine run
	// as one co-scheduled simulation (see internal/cluster). The engine's
	// owner is responsible for resetting and running it; worlds with a
	// shared engine must be started with Start/StartFibers, not Run.
	Engine *sim.Engine
	// Bank, if non-nil, is a shared striped file-system bank: all of this
	// world's I/O reserves stripe time on it under the bank's inter-job
	// policy, contending with every other attached world. Nil means a
	// private single-job FCFS bank of FS.Stripes links (the historical
	// behavior, byte-identical trajectories).
	//
	// A world attached to a shared bank also signals its I/O demand to
	// it: every file operation (File.WriteAt/WriteShared/WriteAll and the
	// fiber forms) is bracketed with Bank.IOBegin/IOEnd, so the bank's
	// work-conserving policies can re-split idle jobs' entitlement over
	// the jobs that currently have queued writes. The signalling is pure
	// bookkeeping — no events, no clock movement — so the static policies
	// (fcfs, fair, priority) produce byte-identical trajectories whether
	// or not the hooks fire.
	Bank *sim.Bank
	// Job is this world's job index within a shared Bank (ignored for a
	// private bank, which has exactly one job).
	Job int
	// Name, if non-empty, prefixes rank names ("jobA/rank3") so that
	// deadlock reports and traces identify the world in multi-world runs.
	Name string

	// Shards, when > 1, runs the world in the conservative parallel mode:
	// ranks are partitioned across Shards engines (sim.ShardGroup) that
	// execute lookahead-bounded windows concurrently, with cross-rank
	// deliveries carrying canonical partition-independent priorities so
	// trajectories are byte-identical for every shard count and placement
	// (see the "Parallel mode" section of the sim package comment). The
	// lookahead is the network's minimum link latency, derated by any
	// latency-shrinking LinkFaults window. Sharded worlds are incompatible
	// with a shared Engine or Bank, with tracing, with crash campaigns and
	// with the legacy broadcast wake strategy, and are never pooled.
	// 0 or 1 means the classic single-engine mode.
	Shards int
	// Place maps a rank to its shard in [0, Shards); nil means contiguous
	// blocks (rank*Shards/Procs). Trajectories do not depend on the
	// placement — only wall-clock balance does. Ranks sharing simulated
	// files must share a shard (File.Open enforces this).
	Place func(rank int) int
	// Group, if non-nil, attaches the world to an existing shard group
	// instead of owning one: several worlds (co-scheduled jobs) place
	// their ranks across the same group's shard engines and run as one
	// sharded simulation (see internal/cluster). It is the parallel-mode
	// counterpart of a shared Engine, and like it marks the world
	// external: the group's owner runs it, so worlds with a shared group
	// must be started with Start/StartFibers, not Run. Requires a shared
	// Bank attached to the same group (sim.Bank.AttachGroup) — the bank
	// is the only cross-world state, and it must use the window-boundary
	// reservation protocol. Shards, if set, must equal the group's shard
	// count (zero adopts it); a shared group with one shard is still the
	// sharded trajectory family, which is what keeps co-scheduled rows
	// byte-identical for every worker count >= 1.
	Group *sim.ShardGroup
}

func (c Config) withDefaults() Config {
	if c.Net == (netmodel.Params{}) {
		c.Net = netmodel.AriesLike()
	}
	if c.FS == (netmodel.FSParams{}) {
		c.FS = netmodel.LustreLike()
	}
	if c.Noise == nil {
		c.Noise = netmodel.None{}
	}
	if c.Bank == nil {
		c.Job = 0 // a private bank has exactly one job
	}
	if c.Group != nil && c.Shards == 0 {
		c.Shards = c.Group.Shards()
	}
	if c.MsgFaults != nil {
		if c.AckTimeout <= 0 {
			c.AckTimeout = 8 * c.Net.Latency
		}
		if c.RetryLimit <= 0 {
			c.RetryLimit = 8
		}
	}
	return c
}

// lookahead computes the parallel mode's conservative window bound: a
// lower bound on the wire latency of every cross-rank delivery. The
// base latency is that bound — serialization and overheads only add to
// it — derated by the smallest latency-shrinking LinkFaults factor,
// computed with the same float arithmetic StretchLatency applies so the
// bound is never optimistic.
func (c Config) lookahead() sim.Time {
	la := c.Net.Latency
	if c.LinkFaults != nil {
		for _, w := range c.LinkFaults.Latency {
			if w.Factor < 1 {
				if cand := sim.Time(float64(c.Net.Latency) * w.Factor); cand < la {
					la = cand
				}
			}
		}
	}
	if la <= 0 {
		panic(fmt.Sprintf("mpi: Shards > 1 needs a positive minimum link latency for lookahead, got %v", la))
	}
	return la
}

// placeOf resolves a rank's shard: Config.Place if set (validated), else
// contiguous blocks.
func (c Config) placeOf(rank int) int {
	if c.Place != nil {
		s := c.Place(rank)
		if s < 0 || s >= c.Shards {
			panic(fmt.Sprintf("mpi: Place(%d) = %d outside [0, %d)", rank, s, c.Shards))
		}
		return s
	}
	return rank * c.Shards / c.Procs
}

// World is one simulated job: an engine, a set of ranks and the shared
// network and file-system state.
type World struct {
	cfg    Config
	eng    *sim.Engine
	ranks  []*rankState
	world  *Comm
	comms  int // next communicator id
	splits map[string]*splitState
	opens  map[string]*openState
	files  map[string]*File
	fs     *sim.Bank
	stash  map[string]interface{}
	// external marks a world attached to a shared engine or bank: its
	// lifecycle belongs to the owning cluster, so Release never returns it
	// to the process-wide pool.
	external bool
	// signalDemand marks a world whose file operations bracket themselves
	// with the bank's IOBegin/IOEnd demand hooks: set exactly when the
	// bank is shared (cfg.Bank != nil) — a private single-job bank has no
	// contenders to redistribute entitlement between.
	signalDemand bool

	// Conservative parallel mode (Config.Shards > 1): the shard group
	// whose engines host the ranks, and one pool set per shard so
	// concurrently executing shards never share freelists. Both are nil in
	// classic mode, where every rank's pool pointer aims at the embedded
	// pools below.
	group      *sim.ShardGroup
	shardPools []pools
	// priBase offsets this world's rank identities into the group-global
	// id and delivery-priority spaces when several worlds share one group
	// (allocated contiguously in job start order by AllocRanks, matching
	// the classic shared-engine spawn order). Zero for a world that owns
	// its group, preserving the single-world sharded family unchanged.
	priBase int
	// ioShard is the single shard allowed to touch the file-system bank in
	// parallel mode (-1 until the first Open): stripe reservations and
	// shared-pointer tokens are engine-local state, so every file-using
	// rank must be co-located (checkIOShard).
	ioShard int
	// mu guards the world-global registries (splits, opens, files, stash,
	// communicator ids) that rank code on concurrently executing shards
	// may touch at once. Registry contents stay deterministic — entries
	// are keyed, and orderings that reach the trajectory are re-sorted by
	// the consumers (splitRegister) — so the lock only serializes map
	// access, it never decides an outcome. Uncontended in classic mode.
	mu sync.Mutex

	// pools is the classic mode's freelist set, embedded so existing
	// w.msgFree-style accesses keep working; sharded worlds use one pools
	// value per shard instead (shardPools).
	pools

	// legacy selects the pre-version-2 broadcast wake strategy for this
	// world (see legacyWake), captured at build time.
	legacy bool

	// Crash-stop failure state (failure.go). epoch counts world
	// revocations: it bumps on every kill and stamps outgoing messages,
	// so traffic from a pre-crash attempt is dropped at delivery instead
	// of matching post-rebuild receives. revoked holds from a kill until
	// the rebuild rendezvous completes; while set, every newly posted
	// send or receive completes immediately with failure. mainBody and
	// mainFiber retain the rank body so restartRank can respawn the
	// victim; allComms tracks every communicator ever built on the world
	// so completeRebuild can zero their collective tag counters.
	revoked        bool
	epoch          int
	failure        failureError
	rebuildArrived int
	rebuildQ       sim.WaitQueue
	mainBody       func(r *Rank)
	mainFiber      FiberMain
	allComms       []*Comm
	prScratch      []*postedRecv // killRank's posted-receive sweep scratch
}

// ioBegin signals the start of one of rs's file operations to a shared
// bank: the world's job has queued I/O demand until the matching ioEnd.
// On worlds with a private bank the bank hook is a no-op. Pure
// bookkeeping — the hooks schedule no events and move no clocks, so
// firing them never perturbs a trajectory; only the bank's
// work-conserving policies read the signal. The per-rank depth counter
// lets failure handling close intervals a crash left open (drainIO).
func (w *World) ioBegin(rs *rankState) {
	rs.ioDepth++
	if !w.signalDemand {
		return
	}
	if w.fs.Sharded() {
		// Sharded shared bank: the demand edge travels to the owner shard
		// as a boundary event carrying this rank's delivery priority, so
		// the demand sequence the work-conserving policies read is
		// partition-independent (see the sharded-bank contract in the sim
		// package comment).
		w.fs.PostIOBegin(rs.eng, w.cfg.Job, rs.deliveryPri())
		return
	}
	w.fs.IOBegin(w.cfg.Job, rs.eng.Now())
}

// ioEnd closes the demand interval opened by the matching ioBegin.
func (w *World) ioEnd(rs *rankState) {
	rs.ioDepth--
	if !w.signalDemand {
		return
	}
	if w.fs.Sharded() {
		w.fs.PostIOEnd(rs.eng, w.cfg.Job, rs.deliveryPri())
		return
	}
	w.fs.IOEnd(w.cfg.Job, rs.eng.Now())
}

// pools is one shard's set of freelists for matching-path and wait-state
// objects (simulation code is single-threaded per shard, so plain slices
// suffice). Classic worlds have exactly one, embedded in World; sharded
// worlds keep one per shard so concurrent windows never contend. Messages
// matched straight against a posted receive and popped posted receives
// recycle here; messages that entered the unexpected queue are left to
// the GC (wildcard side-lists may still reference them). Requests recycle
// when a wait consumes them (see the contract on Request), so the
// steady-state message path allocates nothing at all.
type pools struct {
	msgFree []*message
	prFree  []*postedRecv
	reqFree []*Request

	// Freelists for the fiber wait-state structs (fiber.go): the hoisted
	// closure environments of the continuation wait primitives, recycled
	// so steady-state fiber waits allocate nothing.
	fwFree    []*fwait
	fwAllFree []*fwaitAll
	fwAnyFree []*fwaitAny

	// Freelist for the per-request wakers that WaitAny (goroutine
	// representation) registers on its pending requests; fiber WaitAny
	// embeds its waker in the pooled fwaitAny state instead.
	wkFree []*sim.Waker
}

// newWaker returns a recycled or fresh disarmed waker.
func (pl *pools) newWaker() *sim.Waker {
	if n := len(pl.wkFree); n > 0 {
		k := pl.wkFree[n-1]
		pl.wkFree = pl.wkFree[:n-1]
		return k
	}
	return &sim.Waker{}
}

// freeWaker recycles a disarmed waker.
func (pl *pools) freeWaker(k *sim.Waker) { pl.wkFree = append(pl.wkFree, k) }

// newMessage returns a recycled or fresh message. Callers must set all
// matching fields.
func (pl *pools) newMessage() *message {
	if n := len(pl.msgFree); n > 0 {
		m := pl.msgFree[n-1]
		pl.msgFree = pl.msgFree[:n-1]
		return m
	}
	return &message{}
}

// freeMessage recycles a message that no queue references.
func (pl *pools) freeMessage(m *message) {
	m.data = nil
	m.consumed = false
	m.readyAt = 0
	m.self = false
	m.rel = false
	m.seq = 0
	m.sender = nil
	pl.msgFree = append(pl.msgFree, m)
}

// newRequest returns a recycled or fresh zeroed request.
func (pl *pools) newRequest() *Request {
	if n := len(pl.reqFree); n > 0 {
		q := pl.reqFree[n-1]
		pl.reqFree = pl.reqFree[:n-1]
		q.freed = false
		return q
	}
	return &Request{}
}

// freeRequest recycles a request whose completion has been consumed by a
// wait. Callers must have copied the status out first. The pooled request
// is poisoned (freed flag) so stale handles fail loudly.
func (pl *pools) freeRequest(q *Request) {
	*q = Request{freed: true}
	pl.reqFree = append(pl.reqFree, q)
}

// newPostedRecv returns a recycled or fresh posted-receive entry.
func (pl *pools) newPostedRecv() *postedRecv {
	if n := len(pl.prFree); n > 0 {
		p := pl.prFree[n-1]
		pl.prFree = pl.prFree[:n-1]
		return p
	}
	return &postedRecv{}
}

// freePostedRecv recycles a posted-receive entry popped from its bucket.
func (pl *pools) freePostedRecv(p *postedRecv) {
	p.req = nil
	pl.prFree = append(pl.prFree, p)
}

// rankState is the per-rank runtime state shared by the main process and
// any helper processes (nonblocking collectives) of that rank.
type rankState struct {
	world *World
	rank  int
	// eng is the engine hosting this rank: the world engine in classic
	// mode, the rank's shard engine in parallel mode. Every per-rank
	// scheduling and clock read goes through it.
	eng *sim.Engine
	// pool is the freelist set of the rank's shard (the world's embedded
	// pools in classic mode).
	pool *pools
	// sendSeq counts this rank's cross-rank sends, in rank program order.
	// In parallel mode it forms the partition-independent delivery
	// priority (deliveryPri); unused in classic mode.
	sendSeq uint64
	// shard is the rank's shard index in parallel mode (0 in classic).
	shard    int
	proc     *sim.Proc
	fib      *sim.Fiber // set instead of proc under the fiber representation
	sendLink sim.Link
	recvLink sim.Link
	match    matchIndex // posted receives + unexpected messages (match.go)
	// progress is the rank-wide wait queue of the legacy broadcast wake
	// strategy (REPRO_WAKE=broadcast, kept for same-run A/B measurement).
	// Under the direct-wake strategy nothing ever parks on it: blocked
	// waits register on their requests instead.
	progress sim.WaitQueue
	speed    float64
	// faults holds this rank's compute slowdown windows
	// (Config.RankFaults), nil when the rank is fault-free.
	faults []sim.FaultWindow

	bytesSent int64
	msgsSent  int64

	// statuses is the rank-owned scratch backing for WaitAll results,
	// reused across calls so the collective hot path allocates nothing.
	statuses []Status

	// Crash-stop failure state (failure.go): dead marks a killed rank
	// awaiting restart, incarnation counts restarts, inRebuild marks a
	// rank parked in the rebuild rendezvous, ioDepth counts open
	// ioBegin/ioEnd demand intervals, and failStep is the fiber failure
	// continuation registered by FProtect.
	dead        bool
	incarnation int
	inRebuild   bool
	ioDepth     int
	failStep    sim.StepFunc

	// Reliable-delivery state (reliable.go), touched only when
	// Config.MsgFaults arms the protocol: relNextSeq assigns per-
	// destination send sequence numbers, relOut holds the unacked
	// in-flight entries, relIn the per-source reorder buffers,
	// retransmits counts timer-driven re-sends, and drainQ parks this
	// rank's body in WaitSendWindow until relOut drains to drainTarget.
	relNextSeq  map[int]uint64
	relOut      map[relKey]*relEntry
	relIn       map[int]*relRecvBuf
	retransmits int64
	drainQ      sim.WaitQueue
	drainTarget int
}

// statusScratch returns a length-n status slice backed by the rank's
// reusable scratch array.
func (rs *rankState) statusScratch(n int) []Status {
	if cap(rs.statuses) < n {
		rs.statuses = make([]Status, n)
	}
	s := rs.statuses[:n]
	for i := range s {
		s[i] = Status{}
	}
	return s
}

// reset returns the rank state to its initial condition for world reuse,
// keeping matching-index and scratch capacity.
func (rs *rankState) reset(speed float64) {
	rs.proc = nil
	rs.fib = nil
	rs.sendSeq = 0
	rs.sendLink = sim.Link{}
	rs.recvLink = sim.Link{}
	rs.match.reset()
	rs.speed = speed
	rs.bytesSent = 0
	rs.msgsSent = 0
	rs.dead = false
	rs.incarnation = 0
	rs.inRebuild = false
	rs.ioDepth = 0
	rs.failStep = nil
	clear(rs.relNextSeq)
	clear(rs.relOut)
	clear(rs.relIn)
	rs.retransmits = 0
	rs.drainQ = sim.WaitQueue{}
	rs.drainTarget = 0
}

// Fire wakes the rank's progress waiters; rankState doubles as a
// scheduling action so deferred wakeups need no closure.
func (rs *rankState) Fire() { rs.progress.Broadcast(rs.eng) }

// deliveryPri returns the canonical priority for this rank's next
// cross-rank delivery in parallel mode: the sending rank (offset into
// the group-global identity space when several worlds share the group)
// and its send counter, both functions of the simulated program alone,
// so same-instant delivery order at the receiver never depends on shard
// placement. The shift leaves room for 2^40 sends per rank before
// neighbouring ranks' key ranges could touch.
func (rs *rankState) deliveryPri() uint64 {
	pri := (uint64(rs.world.priBase+rs.rank)+1)<<40 | rs.sendSeq
	rs.sendSeq++
	return pri
}

// CannotShardError reports a feature that only runs in the classic
// single-engine mode: a run asking for both the conservative parallel
// mode and the feature is refused with this error rather than silently
// dropping either. Every classic-only rejection — crash campaigns,
// message-fault campaigns, tracing, the legacy broadcast wake strategy —
// uses this one type, at the app layer as a returned error and in
// NewWorld's last-resort guards as a panic value, so the message always
// names the feature and the flag to drop.
type CannotShardError struct {
	// Feature names the classic-only feature, e.g. "crash campaigns".
	Feature string
	// Flag is the flag whose removal resolves the conflict, e.g.
	// "-cores" (the feature usually being the deliberate half of the
	// request).
	Flag string
}

func (e *CannotShardError) Error() string {
	return fmt.Sprintf("%s cannot run in the conservative parallel mode; drop %s for this run", e.Feature, e.Flag)
}

// cannotShard builds the unified classic-only rejection.
func cannotShard(feature, flag string) *CannotShardError {
	return &CannotShardError{Feature: feature, Flag: flag}
}

// worldPool recycles released worlds so that sweeps reuse event-heap,
// matching-index and message-pool capacity across points instead of
// reallocating per simulation. sync.Pool handles cross-goroutine reuse;
// a reset world is behaviourally identical to a fresh one.
var worldPool sync.Pool

// NewWorld builds a world with cfg.Procs ranks (recycling a released world
// when one is available). Run starts them.
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("mpi: world size %d", cfg.Procs))
	}
	if err := cfg.Net.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.FS.Validate(); err != nil {
		panic(err)
	}
	if cfg.Bank != nil && (cfg.Job < 0 || cfg.Job >= cfg.Bank.Jobs()) {
		panic(fmt.Sprintf("mpi: job %d outside shared bank's %d jobs", cfg.Job, cfg.Bank.Jobs()))
	}
	if cfg.Bank != nil && cfg.Engine == nil && cfg.Group == nil {
		// A shared bank orders reservations by the shared engine's clock
		// (or, sharded, by the owner shard's); feeding it from worlds with
		// private engines would rewind its reservation instants between
		// runs and grant nonsense.
		panic("mpi: a shared Bank requires a shared Engine or a shared Group")
	}
	if cfg.Group != nil {
		if cfg.Engine != nil {
			panic("mpi: Group with a shared Engine; a sharded cluster shares the group, not an engine")
		}
		if cfg.Shards != cfg.Group.Shards() {
			panic(fmt.Sprintf("mpi: Shards %d differs from the shared group's %d", cfg.Shards, cfg.Group.Shards()))
		}
		if cfg.Bank == nil {
			panic("mpi: Group without a shared Bank; a lone sharded world owns its group (set Config.Shards instead)")
		}
		if cfg.Bank.Group() != cfg.Group {
			panic("mpi: shared Bank is not attached to this world's shard group (sim.Bank.AttachGroup)")
		}
	}
	if cfg.Bank != nil && cfg.StripeFaults != nil {
		panic("mpi: StripeFaults on a world with a shared Bank; install faults on the bank via its owner")
	}
	for i, ws := range cfg.RankFaults {
		if err := sim.ValidateWindows(ws); err != nil {
			panic(fmt.Sprintf("mpi: RankFaults[%d]: %v", i, err))
		}
	}
	for i, fs := range cfg.StripeFaults {
		if err := sim.ValidateStripeFaults(fs); err != nil {
			panic(fmt.Sprintf("mpi: StripeFaults[%d]: %v", i, err))
		}
	}
	if err := cfg.LinkFaults.Validate(); err != nil {
		panic(fmt.Sprintf("mpi: LinkFaults: %v", err))
	}
	if len(cfg.Crashes) > 0 {
		if cfg.Tracer != nil {
			panic("mpi: crash campaigns do not support tracing")
		}
		if legacyWake {
			panic("mpi: crash campaigns do not support the legacy broadcast wake strategy (REPRO_WAKE=broadcast)")
		}
		for i, ce := range cfg.Crashes {
			if ce.Target < 0 || ce.Target >= cfg.Procs {
				panic(fmt.Sprintf("mpi: Crashes[%d] targets rank %d of %d", i, ce.Target, cfg.Procs))
			}
			if ce.At < 0 || ce.Restart < 0 {
				panic(fmt.Sprintf("mpi: Crashes[%d] has negative time (at %v, restart %v)", i, ce.At, ce.Restart))
			}
		}
	}
	if cfg.MsgFaults != nil {
		if err := cfg.MsgFaults.Validate(); err != nil {
			panic(fmt.Sprintf("mpi: MsgFaults: %v", err))
		}
		if cfg.Tracer != nil {
			panic("mpi: message-fault campaigns do not support tracing")
		}
		if legacyWake {
			panic("mpi: message-fault campaigns do not support the legacy broadcast wake strategy (REPRO_WAKE=broadcast)")
		}
	}
	sharded := cfg.Shards > 1 || cfg.Group != nil
	if sharded {
		// The parallel mode partitions per-rank state across concurrently
		// executing shard engines; the features below all assume one
		// engine (a shared clock, a global kill/rebuild rendezvous, an
		// ordered trace stream, the broadcast wake chain), so they are
		// refused rather than silently misordered — with the one shared
		// rejection type so every layer reports the conflict the same way.
		if cfg.Engine != nil {
			panic("mpi: Shards > 1 with a shared Engine; co-scheduled sharded worlds share a Group instead")
		}
		if cfg.Bank != nil && cfg.Group == nil {
			panic("mpi: Shards > 1 with a shared Bank but no shared Group; attach the bank and the worlds to one sim.ShardGroup")
		}
		if cfg.Tracer != nil {
			panic(cannotShard("tracing", "-cores"))
		}
		if len(cfg.Crashes) > 0 {
			panic(cannotShard("crash campaigns", "-cores"))
		}
		if cfg.MsgFaults != nil {
			// The reliable protocol's acks, reorder buffers and timers are
			// engine-local sender/receiver state; the shard windows have no
			// reverse ack channel, so the family is refused loudly.
			panic(cannotShard("message-fault campaigns", "-cores"))
		}
		if legacyWake {
			panic(cannotShard("the legacy broadcast wake strategy (REPRO_WAKE=broadcast)", "-cores"))
		}
	}
	// External worlds (shared engine or bank) are never returned to the
	// pool, so drawing one out would permanently drain it and discard the
	// pooled world's capacity-warm engine; build them fresh instead.
	// Sharded worlds are external too: a pooled world's warm engine is the
	// classic single one.
	external := cfg.Engine != nil || sharded
	if !external {
		if v := worldPool.Get(); v != nil {
			w := v.(*World)
			w.reset(cfg)
			return w
		}
	}
	w := &World{
		cfg:    cfg,
		eng:    cfg.Engine,
		splits: make(map[string]*splitState),
		opens:  make(map[string]*openState),
		files:  make(map[string]*File),
		fs:     cfg.Bank,
		stash:  make(map[string]interface{}),
	}
	w.external = external
	w.signalDemand = cfg.Bank != nil
	w.legacy = legacyWake
	w.ioShard = -1
	if sharded {
		if cfg.Group != nil {
			// Attach to the shared group: tighten its lookahead with this
			// world's own cross-shard latency bound (commutative, so job
			// attachment order never matters) and draw a contiguous block
			// of engine-global rank identities, so spawn ids and delivery
			// priorities follow classic job start order.
			w.group = cfg.Group
			w.group.TightenLookahead(cfg.lookahead())
			w.priBase = w.group.AllocRanks(cfg.Procs)
		} else {
			w.group = sim.NewShardGroup(cfg.Seed, cfg.Shards, cfg.lookahead())
		}
		w.shardPools = make([]pools, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			// Ranks take their world rank as process id (SpawnID); helper
			// processes draw automatic ids from a per-shard base far above
			// any rank id, so the two ranges never collide whatever the
			// placement. Helper ids are placement-dependent, which is
			// harmless: helpers never draw from their id-seeded random
			// streams.
			w.group.Shard(i).SetIDBase(1<<30 + i<<20)
		}
	} else if w.eng == nil {
		w.eng = sim.NewEngine(cfg.Seed)
	}
	if w.fs == nil {
		w.fs = sim.NewBank(cfg.FS.Stripes, 1, sim.BankFCFS)
	}
	w.applyStripeFaults()
	w.buildRanks()
	return w
}

// applyStripeFaults installs cfg.StripeFaults on the world's private
// bank. Faults are per-run state (Bank.Reset drops them), so both the
// fresh-build and pool-reuse paths must call this after the bank is
// ready. Stripes beyond the bank width are ignored.
func (w *World) applyStripeFaults() {
	for i, fs := range w.cfg.StripeFaults {
		if i < w.fs.Width() {
			w.fs.SetStripeFaults(i, fs)
		}
	}
}

// buildRanks (re)creates the rank array and world communicator for the
// current configuration, reusing rankState objects where the slice
// already holds them.
func (w *World) buildRanks() {
	cfg := w.cfg
	if cap(w.ranks) >= cfg.Procs {
		w.ranks = w.ranks[:cfg.Procs]
	} else {
		w.ranks = make([]*rankState, cfg.Procs)
	}
	members := make([]int, cfg.Procs)
	for i := range w.ranks {
		speed := cfg.Noise.SpeedFactor(cfg.Seed, i)
		if rs := w.ranks[i]; rs != nil {
			rs.world = w
			rs.rank = i
			rs.reset(speed)
		} else {
			w.ranks[i] = &rankState{world: w, rank: i, speed: speed}
		}
		if w.group != nil {
			s := cfg.placeOf(i)
			w.ranks[i].shard = s
			w.ranks[i].eng = w.group.Shard(s)
			w.ranks[i].pool = &w.shardPools[s]
		} else {
			w.ranks[i].shard = 0
			w.ranks[i].eng = w.eng
			w.ranks[i].pool = &w.pools
		}
		if i < len(cfg.RankFaults) {
			w.ranks[i].faults = cfg.RankFaults[i]
		} else {
			w.ranks[i].faults = nil
		}
		members[i] = i
	}
	w.world = newComm(w, members, identityIndex(cfg.Procs))
}

// reset reinitializes a recycled world for cfg, retaining engine, ranks,
// matching-index and freelist capacity. The result is behaviourally
// indistinguishable from NewWorld building from scratch. Only worlds that
// own their engine and bank circulate through the pool (NewWorld builds
// external worlds fresh), so reset never sees a shared engine or bank.
func (w *World) reset(cfg Config) {
	w.cfg = cfg
	w.signalDemand = cfg.Bank != nil // always false: external worlds never pool
	w.legacy = legacyWake
	w.ioShard = -1
	w.priBase = 0 // always already 0: shared-group worlds never pool
	w.eng.Reset(cfg.Seed)
	w.comms = 0
	clear(w.splits)
	clear(w.opens)
	clear(w.files)
	clear(w.stash)
	w.revoked = false
	w.epoch = 0
	w.failure = nil
	w.rebuildArrived = 0
	w.rebuildQ = sim.WaitQueue{}
	w.mainBody = nil
	w.mainFiber = nil
	for i := range w.allComms {
		w.allComms[i] = nil
	}
	w.allComms = w.allComms[:0]
	if w.fs.Width() == cfg.FS.Stripes {
		w.fs.Reset()
	} else {
		w.fs = sim.NewBank(cfg.FS.Stripes, 1, sim.BankFCFS)
	}
	w.applyStripeFaults()
	w.buildRanks()
}

// Release returns the world to the process-wide pool for reuse by a later
// NewWorld. Only call it after Run returned cleanly, and do not touch the
// world (or any Rank, Comm or Request derived from it) afterwards. Sweeps
// that release worlds between points cut per-point allocation churn to
// near zero; forgetting to release is safe, just slower.
func (w *World) Release() {
	if w.eng == nil || w.external {
		return
	}
	worldPool.Put(w)
}

func (w *World) nextCommID() int {
	w.comms++
	return w.comms
}

// checkIOShard enforces the parallel-mode file-system constraint: every
// rank that opens simulated files must live on one shard, because the
// stripe bank and the shared-pointer tokens are engine-local state. The
// first Open fixes the I/O shard; later opens from another shard panic
// with placement advice instead of racing.
func (w *World) checkIOShard(c *Comm) {
	if w.group == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, wr := range c.members {
		s := w.ranks[wr].shard
		if w.ioShard == -1 {
			w.ioShard = s
		}
		if s != w.ioShard {
			panic(fmt.Sprintf("mpi: parallel mode needs every file-I/O rank on one shard: rank %d is on shard %d but the I/O shard is %d (adjust Config.Place)", wr, s, w.ioShard))
		}
	}
}

func identityIndex(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}

// Engine exposes the underlying simulation engine. It is nil for a world
// in the conservative parallel mode (Config.Shards > 1), which has one
// engine per shard rather than one per world.
func (w *World) Engine() *sim.Engine { return w.eng }

// Config returns the world configuration (after defaulting).
func (w *World) Config() Config { return w.cfg }

// Size reports the world size.
func (w *World) Size() int { return len(w.ranks) }

// BytesSent reports the total bytes injected into the network by all
// ranks, for utilization reporting.
func (w *World) BytesSent() int64 {
	var total int64
	for _, rs := range w.ranks {
		total += rs.bytesSent
	}
	return total
}

// MessagesSent reports the total number of point-to-point messages.
func (w *World) MessagesSent() int64 {
	var total int64
	for _, rs := range w.ranks {
		total += rs.msgsSent
	}
	return total
}

// rankName labels a rank's process for deadlock reports and traces,
// prefixed with the world name in multi-world runs ("jobA/rank3").
func (w *World) rankName(rank int) string {
	if w.cfg.Name != "" {
		return fmt.Sprintf("%s/rank%d", w.cfg.Name, rank)
	}
	return fmt.Sprintf("rank%d", rank)
}

// Start spawns one process per rank executing main without running the
// engine. Worlds sharing an engine are all started first, then the owner
// runs the engine once; single-world callers use Run, which is
// Start-then-run.
func (w *World) Start(main func(r *Rank)) {
	w.mainBody = main
	for i := range w.ranks {
		rs := w.ranks[i]
		rank := &Rank{w: w, rs: rs}
		body := func(p *sim.Proc) {
			rank.proc = p
			main(rank)
		}
		if w.group != nil {
			// Parallel mode pins the process id to the world rank (offset
			// by the world's block in a shared group) on whichever shard
			// hosts it, so the id-seeded random streams are
			// placement-independent.
			rs.proc = rs.eng.SpawnID(w.priBase+rs.rank, w.rankName(rs.rank), body)
		} else {
			rs.proc = w.eng.Spawn(w.rankName(rs.rank), body)
		}
	}
	w.scheduleCrashes()
}

// Run spawns one process per rank executing main and runs the simulation
// to completion, returning the final virtual time. Worlds attached to a
// shared engine must not Run it (the owning cluster does); use Start.
func (w *World) Run(main func(r *Rank)) (sim.Time, error) {
	if w.cfg.Engine != nil || w.cfg.Group != nil {
		panic("mpi: Run on a world with a shared engine or group; Start it and run from its owner")
	}
	w.Start(main)
	if w.group != nil {
		return w.group.Run()
	}
	return w.eng.Run()
}

// FiberMain is a fiber-backed rank body: called once when the rank's
// fiber first runs, it returns the body's first step. Blocking operations
// use the F-prefixed continuation variants (FCompute, Comm.FRecv,
// Comm.FBarrier, ...); the goroutine-style blocking calls panic on a
// fiber-backed rank.
type FiberMain func(r *Rank, f *sim.Fiber) sim.StepFunc

// RunFibers is Run with the step-function process representation: one
// fiber per rank instead of one goroutine per rank, so a cross-rank
// dispatch costs a method call instead of a goroutine switch. A fiber
// body that performs the same sequence of runtime operations as its
// goroutine counterpart produces a bit-identical trajectory (the two
// representations share the engine's (t, seq) determinism contract).
//
// Tracing is not supported in fiber mode: callers gate on Config.Tracer
// and fall back to Run when one is configured.
func (w *World) RunFibers(main FiberMain) (sim.Time, error) {
	if w.cfg.Engine != nil || w.cfg.Group != nil {
		panic("mpi: RunFibers on a world with a shared engine or group; StartFibers it and run from its owner")
	}
	w.StartFibers(main)
	if w.group != nil {
		return w.group.Run()
	}
	return w.eng.Run()
}

// StartFibers is Start with the step-function process representation: it
// spawns the rank fibers without running the engine, for worlds attached
// to a shared engine.
func (w *World) StartFibers(main FiberMain) {
	if w.cfg.Tracer != nil {
		panic("mpi: RunFibers does not support tracing; use Run when a Tracer is configured")
	}
	w.mainFiber = main
	for i := range w.ranks {
		rs := w.ranks[i]
		rank := &Rank{w: w, rs: rs}
		start := func(f *sim.Fiber) sim.StepFunc {
			return main(rank, f)
		}
		if w.group != nil {
			rank.fib = rs.eng.SpawnFiberID(w.priBase+rs.rank, w.rankName(rs.rank), start)
		} else {
			rank.fib = w.eng.SpawnFiber(w.rankName(rs.rank), start)
		}
		rs.fib = rank.fib
	}
	w.scheduleCrashes()
}

// Makespan reports the latest virtual time at which one of the world's
// rank bodies finished — the job's completion time in a multi-world run,
// where the engine's final time covers every job. It is meaningful only
// after the engine has run to completion.
func (w *World) Makespan() sim.Time {
	var t sim.Time
	for _, rs := range w.ranks {
		if rs.proc != nil {
			if d := rs.proc.FinishedAt(); d > t {
				t = d
			}
		}
		if rs.fib != nil {
			if d := rs.fib.FinishedAt(); d > t {
				t = d
			}
		}
	}
	return t
}

// Rank is the handle a rank's code uses to compute and communicate. It is
// valid only inside the function passed to Run (or RunFibers), on that
// rank's process. Exactly one of proc and fib is set, depending on the
// representation the world was run with.
type Rank struct {
	w    *World
	rs   *rankState
	proc *sim.Proc
	fib  *sim.Fiber
}

// ID reports this process's rank in the world communicator.
func (r *Rank) ID() int { return r.rs.rank }

// Size reports the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.w.world }

// Now reports the current virtual time (of the rank's engine — in
// parallel mode each shard's clock advances within its own window).
func (r *Rank) Now() sim.Time { return r.rs.eng.Now() }

// SpeedFactor reports the static noise-model slowdown of this rank.
func (r *Rank) SpeedFactor() float64 { return r.rs.speed }

// Compute consumes d of virtual time scaled by this rank's speed factor
// and perturbed by the configured noise model. All application computation
// must go through Compute (or ComputeLabeled) so that imbalance injection
// applies uniformly.
func (r *Rank) Compute(d sim.Time) { r.ComputeLabeled(d, "comp") }

// ComputeLabeled is Compute with an explicit trace label.
func (r *Rank) ComputeLabeled(d sim.Time, label string) {
	if d <= 0 {
		return
	}
	scaled := sim.Time(float64(d) * r.rs.speed)
	// The zero noise model ignores its random source and adds nothing;
	// skipping it avoids materializing a per-process generator at all.
	if _, zero := r.w.cfg.Noise.(netmodel.None); !zero {
		scaled += r.w.cfg.Noise.Jitter(r.proc.Rand(), scaled)
	}
	// Fault bursts layer on top of speed and jitter: the noise-perturbed
	// duration is integrated through the rank's slowdown windows from the
	// current instant. Pure window arithmetic — FComputeLabeled mirrors
	// it exactly, so faulted trajectories stay representation-neutral.
	if len(r.rs.faults) > 0 {
		scaled = sim.StretchThrough(r.proc.Now(), scaled, r.rs.faults)
	}
	start := r.proc.Now()
	r.proc.Advance(scaled)
	r.trace("comp", label, start)
}

// Idle consumes d of virtual time without noise scaling, modelling
// deliberate waiting.
func (r *Rank) Idle(d sim.Time) {
	if d > 0 {
		r.proc.Advance(d)
	}
}

// trace emits a span if a tracer is configured.
func (r *Rank) trace(category, label string, start sim.Time) {
	if t := r.w.cfg.Tracer; t != nil {
		t.Span(r.rs.rank, category, label, start, r.proc.Now())
	}
}

// ctx returns the rank's execution context — its proc or its fiber —
// for representation-neutral overhead accounting.
func (r *Rank) ctx() exec {
	if r.proc != nil {
		return r.proc
	}
	return r.fib
}

// AddDebt records d of CPU overhead on the rank's execution context
// without yielding, whichever representation backs the rank. Libraries
// layered on the runtime (for example, the stream library's per-element
// injection overhead) use it to stay representation-neutral.
func (r *Rank) AddDebt(d sim.Time) { r.ctx().AddDebt(d) }

// FCompute is Compute for fiber-backed ranks: it consumes d of scaled,
// noise-perturbed virtual time and continues with next.
func (r *Rank) FCompute(d sim.Time, next sim.StepFunc) sim.StepFunc {
	return r.FComputeLabeled(d, "comp", next)
}

// FComputeLabeled is FCompute with an explicit label, mirroring
// ComputeLabeled's cost arithmetic exactly (labels only matter under a
// tracer, which fiber mode does not support).
func (r *Rank) FComputeLabeled(d sim.Time, label string, next sim.StepFunc) sim.StepFunc {
	_ = label
	if d <= 0 {
		return next
	}
	scaled := sim.Time(float64(d) * r.rs.speed)
	if _, zero := r.w.cfg.Noise.(netmodel.None); !zero {
		scaled += r.w.cfg.Noise.Jitter(r.fib.Rand(), scaled)
	}
	if len(r.rs.faults) > 0 {
		scaled = sim.StretchThrough(r.fib.Now(), scaled, r.rs.faults)
	}
	return r.fib.Advance(scaled, next)
}

// FIdle is Idle for fiber-backed ranks.
func (r *Rank) FIdle(d sim.Time, next sim.StepFunc) sim.StepFunc {
	if d > 0 {
		return r.fib.Advance(d, next)
	}
	return next
}

// Proc exposes the underlying simulated process (for advanced callers such
// as the stream library). It is nil on fiber-backed ranks.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Fiber exposes the underlying fiber on fiber-backed ranks, nil otherwise.
func (r *Rank) Fiber() *sim.Fiber { return r.fib }

// Stash is a world-wide scratch space for libraries built on the runtime
// (for example, the stream library's channel registry). Classic-mode
// simulation code runs single-threaded, so direct map access is safe; in
// parallel mode ranks on different shards may run concurrently, so
// libraries must use StashLocked instead.
func (r *Rank) Stash() map[string]interface{} { return r.w.stash }

// StashLocked runs fn with exclusive access to the world stash, the
// parallel-mode-safe form of Stash. Updates keyed (directly or in nested
// maps) by the calling rank stay deterministic under concurrency; fn must
// not block or touch simulation time.
func (r *Rank) StashLocked(fn func(stash map[string]interface{})) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	fn(r.w.stash)
}
