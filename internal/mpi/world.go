// Package mpi implements an MPI-like message-passing runtime on top of the
// discrete-event simulator in internal/sim.
//
// The package exists because the paper's proof-of-concept (MPIStream) is
// built atop MPI on a Cray XC40, and Go has no MPI ecosystem. Ranks are
// simulated processes; point-to-point messages follow the LogGP-style cost
// model in internal/netmodel, with per-endpoint NIC serialization so that
// congestion at hot receivers emerges naturally. Collectives are
// implemented with the standard distributed algorithms (binomial trees,
// recursive doubling, rings, pairwise exchange) over the point-to-point
// layer, so their cost — and its growth with the number of processes —
// emerges from message costs rather than being asserted.
//
// Messages carry real payloads, which makes the algorithms testable for
// correctness, not only for cost: the CG solver in internal/apps/cg
// converges through this runtime.
package mpi

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Reserved tag space: tags at or above collTagBase are used internally by
// collective operations; application code must use smaller tags.
const collTagBase = 1 << 24

// AnySource and AnyTag are wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Tracer receives execution spans (compute, communication wait, I/O) from
// the runtime. internal/trace provides an implementation; the interface
// lives here so the runtime does not depend on the trace package.
type Tracer interface {
	Span(rank int, category, label string, start, end sim.Time)
}

// Config describes a simulated machine and job.
type Config struct {
	// Procs is the total number of MPI processes (world size).
	Procs int
	// Net is the network cost model. Zero value is replaced by
	// netmodel.AriesLike.
	Net netmodel.Params
	// FS is the file-system cost model. Zero value is replaced by
	// netmodel.LustreLike.
	FS netmodel.FSParams
	// Noise perturbs compute operations. Nil means netmodel.None.
	Noise netmodel.Noise
	// Seed drives every random stream in the simulation.
	Seed int64
	// Tracer, if non-nil, receives execution spans.
	Tracer Tracer
}

func (c Config) withDefaults() Config {
	if c.Net == (netmodel.Params{}) {
		c.Net = netmodel.AriesLike()
	}
	if c.FS == (netmodel.FSParams{}) {
		c.FS = netmodel.LustreLike()
	}
	if c.Noise == nil {
		c.Noise = netmodel.None{}
	}
	return c
}

// World is one simulated job: an engine, a set of ranks and the shared
// network and file-system state.
type World struct {
	cfg    Config
	eng    *sim.Engine
	ranks  []*rankState
	world  *Comm
	comms  int // next communicator id
	splits map[string]*splitState
	opens  map[string]*openState
	files  map[string]*File
	fs     *sim.Striped
	stash  map[string]interface{}

	// Freelists for matching-path objects (simulation code is single-
	// threaded per world, so plain slices suffice). Messages matched
	// straight against a posted receive and popped posted receives recycle
	// here; messages that entered the unexpected queue are left to the GC
	// (wildcard side-lists may still reference them).
	msgFree []*message
	prFree  []*postedRecv
}

// newMessage returns a recycled or fresh message. Callers must set all
// matching fields.
func (w *World) newMessage() *message {
	if n := len(w.msgFree); n > 0 {
		m := w.msgFree[n-1]
		w.msgFree = w.msgFree[:n-1]
		return m
	}
	return &message{}
}

// freeMessage recycles a message that no queue references.
func (w *World) freeMessage(m *message) {
	m.data = nil
	m.consumed = false
	m.readyAt = 0
	m.self = false
	w.msgFree = append(w.msgFree, m)
}

// newPostedRecv returns a recycled or fresh posted-receive entry.
func (w *World) newPostedRecv() *postedRecv {
	if n := len(w.prFree); n > 0 {
		p := w.prFree[n-1]
		w.prFree = w.prFree[:n-1]
		return p
	}
	return &postedRecv{}
}

// freePostedRecv recycles a posted-receive entry popped from its bucket.
func (w *World) freePostedRecv(p *postedRecv) {
	p.req = nil
	w.prFree = append(w.prFree, p)
}

// rankState is the per-rank runtime state shared by the main process and
// any helper processes (nonblocking collectives) of that rank.
type rankState struct {
	world    *World
	rank     int
	proc     *sim.Proc
	sendLink sim.Link
	recvLink sim.Link
	match    matchIndex // posted receives + unexpected messages (match.go)
	progress sim.WaitQueue
	speed    float64

	bytesSent int64
	msgsSent  int64
}

// Fire wakes the rank's progress waiters; rankState doubles as a
// scheduling action so deferred wakeups need no closure.
func (rs *rankState) Fire() { rs.progress.Broadcast(rs.world.eng) }

// NewWorld builds a world with cfg.Procs ranks. Run starts them.
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("mpi: world size %d", cfg.Procs))
	}
	if err := cfg.Net.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.FS.Validate(); err != nil {
		panic(err)
	}
	w := &World{
		cfg:    cfg,
		eng:    sim.NewEngine(cfg.Seed),
		splits: make(map[string]*splitState),
		opens:  make(map[string]*openState),
		files:  make(map[string]*File),
		fs:     sim.NewStriped(cfg.FS.Stripes),
		stash:  make(map[string]interface{}),
	}
	w.ranks = make([]*rankState, cfg.Procs)
	members := make([]int, cfg.Procs)
	for i := range w.ranks {
		w.ranks[i] = &rankState{
			world: w,
			rank:  i,
			speed: cfg.Noise.SpeedFactor(cfg.Seed, i),
		}
		members[i] = i
	}
	w.world = newComm(w, members, identityIndex(cfg.Procs))
	return w
}

func (w *World) nextCommID() int {
	w.comms++
	return w.comms
}

func identityIndex(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}

// Engine exposes the underlying simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Config returns the world configuration (after defaulting).
func (w *World) Config() Config { return w.cfg }

// Size reports the world size.
func (w *World) Size() int { return len(w.ranks) }

// BytesSent reports the total bytes injected into the network by all
// ranks, for utilization reporting.
func (w *World) BytesSent() int64 {
	var total int64
	for _, rs := range w.ranks {
		total += rs.bytesSent
	}
	return total
}

// MessagesSent reports the total number of point-to-point messages.
func (w *World) MessagesSent() int64 {
	var total int64
	for _, rs := range w.ranks {
		total += rs.msgsSent
	}
	return total
}

// Run spawns one process per rank executing main and runs the simulation
// to completion, returning the final virtual time.
func (w *World) Run(main func(r *Rank)) (sim.Time, error) {
	for i := range w.ranks {
		rs := w.ranks[i]
		rank := &Rank{w: w, rs: rs}
		rs.proc = w.eng.Spawn(fmt.Sprintf("rank%d", rs.rank), func(p *sim.Proc) {
			rank.proc = p
			main(rank)
		})
	}
	return w.eng.Run()
}

// Rank is the handle a rank's code uses to compute and communicate. It is
// valid only inside the function passed to Run, on that rank's process.
type Rank struct {
	w    *World
	rs   *rankState
	proc *sim.Proc
}

// ID reports this process's rank in the world communicator.
func (r *Rank) ID() int { return r.rs.rank }

// Size reports the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.w.world }

// Now reports the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// SpeedFactor reports the static noise-model slowdown of this rank.
func (r *Rank) SpeedFactor() float64 { return r.rs.speed }

// Compute consumes d of virtual time scaled by this rank's speed factor
// and perturbed by the configured noise model. All application computation
// must go through Compute (or ComputeLabeled) so that imbalance injection
// applies uniformly.
func (r *Rank) Compute(d sim.Time) { r.ComputeLabeled(d, "comp") }

// ComputeLabeled is Compute with an explicit trace label.
func (r *Rank) ComputeLabeled(d sim.Time, label string) {
	if d <= 0 {
		return
	}
	scaled := sim.Time(float64(d) * r.rs.speed)
	// The zero noise model ignores its random source and adds nothing;
	// skipping it avoids materializing a per-process generator at all.
	if _, zero := r.w.cfg.Noise.(netmodel.None); !zero {
		scaled += r.w.cfg.Noise.Jitter(r.proc.Rand(), scaled)
	}
	start := r.proc.Now()
	r.proc.Advance(scaled)
	r.trace("comp", label, start)
}

// Idle consumes d of virtual time without noise scaling, modelling
// deliberate waiting.
func (r *Rank) Idle(d sim.Time) {
	if d > 0 {
		r.proc.Advance(d)
	}
}

// trace emits a span if a tracer is configured.
func (r *Rank) trace(category, label string, start sim.Time) {
	if t := r.w.cfg.Tracer; t != nil {
		t.Span(r.rs.rank, category, label, start, r.proc.Now())
	}
}

// Proc exposes the underlying simulated process (for advanced callers such
// as the stream library).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Stash is a world-wide scratch space for libraries built on the runtime
// (for example, the stream library's channel registry). Simulation code
// runs single-threaded, so no locking is needed.
func (r *Rank) Stash() map[string]interface{} { return r.w.stash }
