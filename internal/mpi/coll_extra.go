package mpi

// Additional collectives beyond what the paper's applications strictly
// need, rounding the runtime out to a usable MPI subset.

// Sendrecv performs a simultaneous send to dst and receive from src, like
// MPI_Sendrecv: both transfers are posted before either is waited on, so
// pairwise exchanges complete in one round trip.
func (c *Comm) Sendrecv(r *Rank, dst, dtag int, bytes int64, data interface{}, src, stag int) Status {
	sreq := c.Isend(r, dst, dtag, bytes, data)
	rreq := c.Irecv(r, src, stag)
	st := c.Wait(r, rreq)
	c.Wait(r, sreq)
	return st
}

// Scan computes the inclusive prefix reduction over comm ranks: rank i
// receives op(part_0, ..., part_i). Linear-chain algorithm, like small
// MPI implementations use.
func (c *Comm) Scan(r *Rank, part Part, op ReduceOp, cost CostFn) Part {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	acc := part
	if me > 0 {
		st := c.waitOn(r, r.proc, c.irecvFor(r, me-1, tag))
		if cost != nil {
			r.proc.Advance(cost(acc.Bytes + st.Bytes))
		}
		acc = Part{Bytes: maxI64(acc.Bytes, st.Bytes), Data: op(st.Data, acc.Data)}
	}
	if me < len(c.members)-1 {
		c.waitOn(r, r.proc, c.isendFrom(r, r.proc, me+1, tag, acc.Bytes, acc.Data))
	}
	return acc
}

// ReduceScatterBlock combines every rank's vector of parts elementwise and
// scatters the result: rank i ends up with the combined parts[i]. Each
// rank must pass exactly Size parts. Implemented as reduce-to-root plus
// scatter (pairwise algorithms matter only for very large payloads).
func (c *Comm) ReduceScatterBlock(r *Rank, parts []Part, op ReduceOp, cost CostFn) Part {
	p := len(c.members)
	if len(parts) != p {
		panic("mpi: ReduceScatterBlock needs one part per rank")
	}
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	// Reduce the whole vector to rank 0.
	var total int64
	for _, pt := range parts {
		total += pt.Bytes
	}
	vec := Part{Bytes: total, Data: parts}
	combined, isRoot := c.reduceOn(r, r.proc, me, 0, vec, func(a, b interface{}) interface{} {
		av, _ := a.([]Part)
		bv, _ := b.([]Part)
		if av == nil {
			return bv
		}
		if bv == nil {
			return av
		}
		out := make([]Part, len(av))
		for i := range av {
			out[i] = Part{
				Bytes: maxI64(av[i].Bytes, bv[i].Bytes),
				Data:  op(av[i].Data, bv[i].Data),
			}
		}
		return out
	}, cost, tag)
	// Scatter the slots.
	stag := c.nextCollTag(me)
	if isRoot {
		cv := combined.Data.([]Part)
		var reqs []*Request
		for dst := 1; dst < p; dst++ {
			reqs = append(reqs, c.isendFrom(r, r.proc, dst, stag, cv[dst].Bytes, cv[dst].Data))
		}
		for _, q := range reqs {
			c.waitOn(r, r.proc, q)
		}
		return cv[0]
	}
	st := c.waitOn(r, r.proc, c.irecvFor(r, 0, stag))
	return Part{Bytes: st.Bytes, Data: st.Data}
}

// Gather is Gatherv with uniform part sizes; kept for API symmetry.
func (c *Comm) Gather(r *Rank, root int, part Part) []Part {
	return c.Gatherv(r, root, part)
}

// Scatter distributes root's parts: rank i receives parts[i]. Only root's
// parts argument is consulted.
func (c *Comm) Scatter(r *Rank, root int, parts []Part) Part {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	p := len(c.members)
	if me == root {
		if len(parts) != p {
			panic("mpi: Scatter needs one part per rank at root")
		}
		var reqs []*Request
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			reqs = append(reqs, c.isendFrom(r, r.proc, dst, tag, parts[dst].Bytes, parts[dst].Data))
		}
		for _, q := range reqs {
			c.waitOn(r, r.proc, q)
		}
		return parts[root]
	}
	st := c.waitOn(r, r.proc, c.irecvFor(r, root, tag))
	return Part{Bytes: st.Bytes, Data: st.Data}
}
