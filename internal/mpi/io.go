package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// File models a shared file on the striped parallel file system. All
// write paths consume virtual time on the world's shared stripe bank, so
// concurrent jobs of I/O contend with each other as on a real machine.
//
// Three write paths mirror the paper's Section IV-D2:
//
//   - WriteAt: independent write at an explicit offset.
//   - WriteShared: shared-file-pointer write (MPI_File_write_shared);
//     pointer updates serialize on a global token.
//   - WriteAll: collective two-phase write (MPI_File_write_all); sizes are
//     allgathered (the per-iteration file-view recalculation), data is
//     shipped to aggregator ranks, and aggregators issue large writes.
type File struct {
	w     *World
	comm  *Comm
	name  string
	token sim.Token
	size  int64

	ops          int64
	bytesWritten int64
}

// openState tracks a collective Open rendezvous (unused fields reserved
// for multi-communicator opens).
type openState struct {
	file *File
}

// Open opens (creating if needed) the named shared file, collectively over
// c. Every member must call it.
func (c *Comm) Open(r *Rank, name string) *File {
	w := c.w
	if w.revoked {
		panic(w.failure)
	}
	w.checkIOShard(c)
	key := fmt.Sprintf("%d:%s", c.id, name)
	w.mu.Lock()
	st, ok := w.opens[key]
	if !ok {
		st = &openState{file: &File{w: w, comm: c, name: name}}
		w.opens[key] = st
		w.files[key] = st.file
	}
	w.mu.Unlock()
	c.Barrier(r)
	return st.file
}

// Name reports the file name.
func (f *File) Name() string { return f.name }

// Size reports the current file size (bytes appended so far).
func (f *File) Size() int64 { return f.size }

// Ops reports the number of write operations issued.
func (f *File) Ops() int64 { return f.ops }

// BytesWritten reports the total bytes written.
func (f *File) BytesWritten() int64 { return f.bytesWritten }

// reserveEnd books dur of stripe time for the world's job at the rank's
// current instant and returns the granted slot's end, which the caller
// advances to. It is the single reservation seam of every blocking write
// path. On a classic (or single-world sharded) bank the grant is the
// synchronous Reserve call, byte-identical to the historical inline
// form. On a bank attached to a shard group the reservation is the
// two-phase window-boundary protocol: the request travels to the owner
// shard carrying this rank's delivery priority, the rank parks (keeping
// any accumulated debt — AdvanceTo folds it after the wake, identically
// in both representations), and the grant wakes it two lookaheads later
// with the slot.
func (f *File) reserveEnd(r *Rank, dur sim.Time) sim.Time {
	w := f.w
	if !w.fs.Sharded() {
		_, end := w.fs.Reserve(w.cfg.Job, r.proc.Now(), dur)
		return end
	}
	req := w.fs.PostReserve(r.rs.eng, w.cfg.Job, dur, r.rs.deliveryPri(), r.proc)
	r.proc.ParkKeepingDebt("bank reservation")
	return req.End
}

// WriteAt writes bytes at an explicit offset: a per-operation latency,
// then occupancy of one stripe.
func (f *File) WriteAt(r *Rank, bytes int64) {
	f.transfer(r, bytes, "write")
}

// ReadAt reads bytes from the file, with the same cost shape as WriteAt.
func (f *File) ReadAt(r *Rank, bytes int64) {
	f.transfer(r, bytes, "read")
}

func (f *File) transfer(r *Rank, bytes int64, label string) {
	if bytes < 0 {
		panic("mpi: negative I/O size")
	}
	if f.w.revoked {
		panic(f.w.failure)
	}
	fs := f.w.cfg.FS
	start := r.proc.Now()
	f.w.ioBegin(r.rs)
	r.proc.Advance(fs.PerOpLatency)
	end := f.reserveEnd(r, fs.WriteTime(bytes))
	r.proc.AdvanceTo(end)
	f.w.ioEnd(r.rs)
	f.ops++
	if label == "write" {
		f.size += bytes
		f.bytesWritten += bytes
	}
	r.trace("io", label, start)
}

// WriteShared appends bytes through the shared file pointer. The pointer
// update serializes globally on the file's token (the consistency
// semantics the MPI library must maintain), then the data occupies a
// stripe. At large process counts the token hand-off dominates — the
// paper's reason MPI_File_write_shared scales worst.
func (f *File) WriteShared(r *Rank, bytes int64) {
	if bytes < 0 {
		panic("mpi: negative I/O size")
	}
	if f.w.revoked {
		panic(f.w.failure)
	}
	fs := f.w.cfg.FS
	start := r.proc.Now()
	// Demand spans the whole operation, including the queue for the
	// shared-pointer token: a rank serialized behind the pointer has
	// queued I/O the bank should count.
	f.w.ioBegin(r.rs)
	f.token.Acquire(r.proc, "shared file pointer")
	r.proc.Advance(fs.SharedPointerLatency + fs.PerOpLatency)
	f.size += bytes
	f.bytesWritten += bytes
	f.ops++
	end := f.reserveEnd(r, fs.WriteTime(bytes))
	f.token.Release(r.proc)
	r.proc.AdvanceTo(end)
	f.w.ioEnd(r.rs)
	r.trace("io", "write_shared", start)
}

// WriteAll performs a collective two-phase write: every member of the
// file's communicator contributes bytes. Sizes are allgathered to compute
// the file view, data moves to aggregator ranks over the network, and the
// aggregators issue one large write each.
func (f *File) WriteAll(r *Rank, bytes int64) {
	if bytes < 0 {
		panic("mpi: negative I/O size")
	}
	if f.w.revoked {
		panic(f.w.failure)
	}
	c := f.comm
	me := c.RankOf(r)
	p := c.Size()
	fs := f.w.cfg.FS
	start := r.proc.Now()
	// Every member is I/O-active for the duration of the collective: the
	// view exchange and the shipping to aggregators are part of the
	// file operation even for ranks that never touch a stripe.
	f.w.ioBegin(r.rs)

	// Phase 0: file-view recalculation. Every rank learns every size.
	sizes := c.Allgatherv(r, Part{Bytes: 8, Data: bytes})

	// Phase 1: ship data to aggregators (one per stripe, at most P).
	na := fs.Stripes
	if na > p {
		na = p
	}
	agg := me * na / p
	// The aggregator of group g is the first rank whose group is g.
	aggRank := (agg*p + na - 1) / na
	tag := c.nextCollTag(me)
	var myReqs []*Request
	if me != aggRank {
		myReqs = append(myReqs, c.Isend(r, aggRank, tag, bytes, nil))
	}
	if me == aggRank {
		// Collect from all ranks whose aggregator is me.
		var total int64
		var reqs []*Request
		for other := 0; other < p; other++ {
			if other == me {
				total += bytes
				continue
			}
			if other*na/p == agg {
				reqs = append(reqs, c.Irecv(r, other, tag))
			}
		}
		for _, q := range reqs {
			st := c.Wait(r, q)
			sz, _ := sizes[st.Source].Data.(int64)
			total += sz
		}
		// Phase 2: one large write per aggregator. Interleaved per-rank
		// regions defeat stripe sequentiality (CollInterleaveFactor).
		r.proc.Advance(fs.PerOpLatency)
		end := f.reserveEnd(r, fs.CollWriteTime(total))
		r.proc.AdvanceTo(end)
		f.ops++
		f.size += total
		f.bytesWritten += total
	}
	c.WaitAll(r, myReqs...)
	// The collective completes together.
	c.Barrier(r)
	f.w.ioEnd(r.rs)
	r.trace("io", "write_all", start)
}
