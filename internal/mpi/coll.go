package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Part is a per-rank contribution to (or result of) a collective: a byte
// count for costing plus an optional real payload.
type Part struct {
	Bytes int64
	Data  interface{}
}

// ReduceOp combines two payloads into one. Implementations must be
// associative and must not mutate their arguments (payloads are shared
// zero-copy across ranks).
type ReduceOp func(a, b interface{}) interface{}

// CostFn models the CPU cost of combining payloads during a reduction, as
// a function of the combined byte count. A nil CostFn means free combines.
type CostFn func(bytes int64) sim.Time

// LinearCost returns a CostFn charging perByte for every combined byte.
func LinearCost(perByte sim.Time) CostFn {
	return func(bytes int64) sim.Time { return sim.Time(bytes) * perByte }
}

// nextCollTag reserves a collective tag for the calling rank. Collectives
// must be invoked in the same order by every member (the usual MPI rule),
// which keeps the per-rank counters in lockstep.
func (c *Comm) nextCollTag(me int) int {
	t := collTagBase + c.collSeq[me]
	c.collSeq[me]++
	return t
}

// Barrier blocks until all members have entered it (dissemination
// algorithm: ceil(log2 P) rounds of zero-byte messages).
func (c *Comm) Barrier(r *Rank) {
	me := c.RankOf(r)
	c.barrierOn(r, r.proc, me, c.nextCollTag(me))
}

func (c *Comm) barrierOn(r *Rank, proc *simProc, me, tag int) {
	p := len(c.members)
	for k := 1; k < p; k <<= 1 {
		dst := (me + k) % p
		src := (me - k + p) % p
		req := c.isendFrom(r, proc, dst, tag, 0, nil)
		rreq := c.irecvFor(r, src, tag)
		c.waitOn(r, proc, req)
		c.waitOn(r, proc, rreq)
	}
}

// Bcast distributes root's part to all members (binomial tree) and returns
// it on every rank.
func (c *Comm) Bcast(r *Rank, root int, part Part) Part {
	me := c.RankOf(r)
	return c.bcastOn(r, r.proc, me, root, part, c.nextCollTag(me))
}

func (c *Comm) bcastOn(r *Rank, proc *simProc, me, root int, part Part, tag int) Part {
	p := len(c.members)
	if p == 1 {
		return part
	}
	vr := (me - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			st := c.waitOn(r, proc, c.irecvFor(r, src, tag))
			part = Part{Bytes: st.Bytes, Data: st.Data}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr&mask == 0 && vr+mask < p {
			dst := (vr + mask + root) % p
			c.waitOn(r, proc, c.isendFrom(r, proc, dst, tag, part.Bytes, part.Data))
		}
		mask >>= 1
	}
	return part
}

// Reduce combines every member's part at root (binomial tree). The
// combined part and true are returned at root; other ranks get a zero Part
// and false. cost, if non-nil, charges combine CPU time at each tree node.
func (c *Comm) Reduce(r *Rank, root int, part Part, op ReduceOp, cost CostFn) (Part, bool) {
	me := c.RankOf(r)
	return c.reduceOn(r, r.proc, me, root, part, op, cost, c.nextCollTag(me))
}

func (c *Comm) reduceOn(r *Rank, proc *simProc, me, root int, part Part, op ReduceOp, cost CostFn, tag int) (Part, bool) {
	p := len(c.members)
	if p == 1 {
		return part, true
	}
	vr := (me - root + p) % p
	acc := part
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			dst := (vr - mask + root) % p
			c.waitOn(r, proc, c.isendFrom(r, proc, dst, tag, acc.Bytes, acc.Data))
			return Part{}, false
		}
		peer := vr | mask
		if peer < p {
			st := c.waitOn(r, proc, c.irecvFor(r, (peer+root)%p, tag))
			if cost != nil {
				proc.Advance(cost(acc.Bytes + st.Bytes))
			}
			acc = Part{Bytes: maxI64(acc.Bytes, st.Bytes), Data: op(acc.Data, st.Data)}
		}
	}
	return acc, true
}

// Allreduce combines every member's part and returns the result on all
// ranks. Power-of-two sizes use recursive doubling; other sizes reduce to
// rank 0 and broadcast.
func (c *Comm) Allreduce(r *Rank, part Part, op ReduceOp, cost CostFn) Part {
	me := c.RankOf(r)
	return c.allreduceOn(r, r.proc, me, part, op, cost, c.nextCollTag(me))
}

func (c *Comm) allreduceOn(r *Rank, proc *simProc, me int, part Part, op ReduceOp, cost CostFn, tag int) Part {
	p := len(c.members)
	if p == 1 {
		return part
	}
	if p&(p-1) == 0 {
		acc := part
		for mask := 1; mask < p; mask <<= 1 {
			peer := me ^ mask
			sreq := c.isendFrom(r, proc, peer, tag, acc.Bytes, acc.Data)
			st := c.waitOn(r, proc, c.irecvFor(r, peer, tag))
			c.waitOn(r, proc, sreq)
			if cost != nil {
				proc.Advance(cost(acc.Bytes + st.Bytes))
			}
			// Combine in rank order for cross-rank determinism.
			if peer < me {
				acc = Part{Bytes: maxI64(acc.Bytes, st.Bytes), Data: op(st.Data, acc.Data)}
			} else {
				acc = Part{Bytes: maxI64(acc.Bytes, st.Bytes), Data: op(acc.Data, st.Data)}
			}
		}
		return acc
	}
	res, isRoot := c.reduceOn(r, proc, me, 0, part, op, cost, tag)
	if !isRoot {
		res = Part{}
	}
	return c.bcastOn(r, proc, me, 0, res, tag)
}

// Gatherv collects every member's part at root in comm-rank order. Only
// root receives a non-nil slice.
func (c *Comm) Gatherv(r *Rank, root int, part Part) []Part {
	me := c.RankOf(r)
	return c.gathervOn(r, r.proc, me, root, part, c.nextCollTag(me))
}

func (c *Comm) gathervOn(r *Rank, proc *simProc, me, root int, part Part, tag int) []Part {
	p := len(c.members)
	if me != root {
		c.waitOn(r, proc, c.isendFrom(r, proc, root, tag, part.Bytes, part.Data))
		return nil
	}
	out := make([]Part, p)
	out[me] = part
	reqs := make([]*Request, 0, p-1)
	srcs := make([]int, 0, p-1)
	for src := 0; src < p; src++ {
		if src == me {
			continue
		}
		reqs = append(reqs, c.irecvFor(r, src, tag))
		srcs = append(srcs, src)
	}
	for i, q := range reqs {
		st := c.waitOn(r, proc, q)
		out[srcs[i]] = Part{Bytes: st.Bytes, Data: st.Data}
	}
	return out
}

// Allgatherv collects every member's part on every rank, in comm-rank
// order. Power-of-two sizes use recursive doubling (log P rounds with
// doubling volumes); other sizes use a ring (P-1 rounds).
func (c *Comm) Allgatherv(r *Rank, part Part) []Part {
	me := c.RankOf(r)
	return c.allgathervOn(r, r.proc, me, part, c.nextCollTag(me))
}

// gatherBundle is the wire format for allgatherv rounds: a contiguous run
// of parts with their owner ranks.
type gatherBundle struct {
	owners []int
	parts  []Part
}

// newGatherBundle seeds a rank's bundle with its own part, preallocating
// for the p entries the recursive-doubling rounds will accumulate so the
// per-round appends never reallocate (channel setup allgathers over the
// full world; the growth churn was visible in stream-experiment
// profiles).
func newGatherBundle(me int, part Part, p int) gatherBundle {
	owners := make([]int, 1, p)
	parts := make([]Part, 1, p)
	owners[0], parts[0] = me, part
	return gatherBundle{owners: owners, parts: parts}
}

func bundleBytes(b gatherBundle) int64 {
	var total int64
	for _, p := range b.parts {
		total += p.Bytes
	}
	return total
}

func (c *Comm) allgathervOn(r *Rank, proc *simProc, me int, part Part, tag int) []Part {
	p := len(c.members)
	out := make([]Part, p)
	out[me] = part
	if p == 1 {
		return out
	}
	if p&(p-1) == 0 {
		have := newGatherBundle(me, part, p)
		for mask := 1; mask < p; mask <<= 1 {
			peer := me ^ mask
			sreq := c.isendFrom(r, proc, peer, tag, bundleBytes(have), have)
			st := c.waitOn(r, proc, c.irecvFor(r, peer, tag))
			c.waitOn(r, proc, sreq)
			got := st.Data.(gatherBundle)
			have.owners = append(have.owners, got.owners...)
			have.parts = append(have.parts, got.parts...)
		}
		for i, owner := range have.owners {
			out[owner] = have.parts[i]
		}
		return out
	}
	// Ring: pass the neighbour's latest part around, P-1 steps.
	cur := newGatherBundle(me, part, p)
	right := (me + 1) % p
	left := (me - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sreq := c.isendFrom(r, proc, right, tag, bundleBytes(cur), cur)
		st := c.waitOn(r, proc, c.irecvFor(r, left, tag))
		c.waitOn(r, proc, sreq)
		cur = st.Data.(gatherBundle)
		out[cur.owners[0]] = cur.parts[0]
	}
	return out
}

// Alltoallv sends parts[i] to comm rank i and returns the parts received
// from every rank (pairwise exchange, P-1 rounds).
func (c *Comm) Alltoallv(r *Rank, parts []Part) []Part {
	me := c.RankOf(r)
	return c.alltoallvOn(r, r.proc, me, parts, c.nextCollTag(me))
}

func (c *Comm) alltoallvOn(r *Rank, proc *simProc, me int, parts []Part, tag int) []Part {
	p := len(c.members)
	if len(parts) != p {
		panic(fmt.Sprintf("mpi: Alltoallv with %d parts on comm of size %d", len(parts), p))
	}
	out := make([]Part, p)
	out[me] = parts[me]
	for round := 1; round < p; round++ {
		dst := (me + round) % p
		src := (me - round + p) % p
		sreq := c.isendFrom(r, proc, dst, tag, parts[dst].Bytes, parts[dst].Data)
		st := c.waitOn(r, proc, c.irecvFor(r, src, tag))
		c.waitOn(r, proc, sreq)
		out[src] = Part{Bytes: st.Bytes, Data: st.Data}
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
