// Fiber-backed file I/O: continuation forms of the blocking write paths
// in io.go, mirroring them operation for operation (same token FIFO
// positions, same stripe reservations, same collective structure) so
// fiber and goroutine ranks produce bit-identical I/O trajectories.
package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// FTest is Test for fiber-backed ranks: the completion check is free, but
// the first successful test of a receive charges the receive overhead,
// which may advance the clock. then receives (ok, status).
func (c *Comm) FTest(r *Rank, req *Request, then func(bool, Status) sim.StepFunc) sim.StepFunc {
	req.checkLive()
	if !req.completedBy(r.rs.eng.Now()) {
		return then(false, Status{})
	}
	if req.status.Err != nil {
		return r.failNow()
	}
	req.done = true
	if req.isRecv && !req.ovCharged {
		req.ovCharged = true
		return r.fib.Advance(r.w.cfg.Net.RecvOverhead, func(_ *sim.Fiber) sim.StepFunc {
			return then(true, req.status)
		})
	}
	return then(true, req.status)
}

// FOpen is Open for fiber-backed ranks: the same rendezvous bookkeeping,
// closed by the barrier in continuation form. The file is delivered to
// then.
func (c *Comm) FOpen(r *Rank, name string, then func(*File) sim.StepFunc) sim.StepFunc {
	w := c.w
	if w.revoked {
		return r.failNow()
	}
	w.checkIOShard(c)
	key := fmt.Sprintf("%d:%s", c.id, name)
	w.mu.Lock()
	st, ok := w.opens[key]
	if !ok {
		st = &openState{file: &File{w: w, comm: c, name: name}}
		w.opens[key] = st
		w.files[key] = st.file
	}
	w.mu.Unlock()
	return c.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
		return then(st.file)
	})
}

// fReserveEnd is reserveEnd for fiber-backed ranks: the same reservation
// seam in continuation form. then receives the granted slot's end. On a
// sharded bank the fiber parks keeping its debt while the two-phase
// request round-trips through the owner shard, exactly as the goroutine
// form parks its proc.
func (f *File) fReserveEnd(r *Rank, dur sim.Time, then func(end sim.Time) sim.StepFunc) sim.StepFunc {
	w := f.w
	fib := r.fib
	if !w.fs.Sharded() {
		_, end := w.fs.Reserve(w.cfg.Job, fib.Now(), dur)
		return then(end)
	}
	req := w.fs.PostReserve(r.rs.eng, w.cfg.Job, dur, r.rs.deliveryPri(), fib)
	return fib.ParkKeepingDebt("bank reservation", func(_ *sim.Fiber) sim.StepFunc {
		return then(req.End)
	})
}

// FWriteShared is WriteShared for fiber-backed ranks: token-serialized
// shared-pointer append, then stripe occupancy.
func (f *File) FWriteShared(r *Rank, bytes int64, then sim.StepFunc) sim.StepFunc {
	if bytes < 0 {
		panic("mpi: negative I/O size")
	}
	if f.w.revoked {
		return r.failNow()
	}
	fs := f.w.cfg.FS
	fib := r.fib
	// Demand hooks at the same sequence positions as WriteShared: begin
	// before queueing on the shared-pointer token, end once the rank's
	// clock has passed the write — so fiber and goroutine ranks present
	// identical demand signals to a shared bank.
	f.w.ioBegin(r.rs)
	return f.token.FAcquire(fib, "shared file pointer", func(_ *sim.Fiber) sim.StepFunc {
		return fib.Advance(fs.SharedPointerLatency+fs.PerOpLatency, func(_ *sim.Fiber) sim.StepFunc {
			f.size += bytes
			f.bytesWritten += bytes
			f.ops++
			return f.fReserveEnd(r, fs.WriteTime(bytes), func(end sim.Time) sim.StepFunc {
				f.token.Release(fib)
				return fib.AdvanceTo(end, func(f2 *sim.Fiber) sim.StepFunc {
					f.w.ioEnd(r.rs)
					return then(f2)
				})
			})
		})
	})
}

// FWriteAll is WriteAll for fiber-backed ranks: allgather the sizes, ship
// data to aggregators, aggregators issue one large write, all close with
// a barrier.
func (f *File) FWriteAll(r *Rank, bytes int64, then sim.StepFunc) sim.StepFunc {
	if bytes < 0 {
		panic("mpi: negative I/O size")
	}
	if f.w.revoked {
		return r.failNow()
	}
	c := f.comm
	me := c.RankOf(r)
	p := c.Size()
	fs := f.w.cfg.FS
	fib := r.fib
	// Demand spans the whole collective, as in WriteAll.
	f.w.ioBegin(r.rs)

	// Phase 0: file-view recalculation. Every rank learns every size.
	return c.FAllgatherv(r, Part{Bytes: 8, Data: bytes}, func(sizes []Part) sim.StepFunc {
		// Phase 1: ship data to aggregators (one per stripe, at most P).
		na := fs.Stripes
		if na > p {
			na = p
		}
		agg := me * na / p
		aggRank := (agg*p + na - 1) / na
		tag := c.nextCollTag(me)
		var myReqs []*Request
		if me != aggRank {
			myReqs = append(myReqs, c.Isend(r, aggRank, tag, bytes, nil))
		}
		finish := func(_ *sim.Fiber) sim.StepFunc {
			return c.FWaitAll(r, myReqs, func([]Status) sim.StepFunc {
				// The collective completes together.
				return c.FBarrier(r, func(f2 *sim.Fiber) sim.StepFunc {
					f.w.ioEnd(r.rs)
					return then(f2)
				})
			})
		}
		if me != aggRank {
			return finish
		}
		// Collect from all ranks whose aggregator is me.
		var total int64
		var reqs []*Request
		for other := 0; other < p; other++ {
			if other == me {
				total += bytes
				continue
			}
			if other*na/p == agg {
				reqs = append(reqs, c.irecvFor(r, other, tag))
			}
		}
		i := 0
		var collect sim.StepFunc
		// Hoisted out of the collect loop: one closure per WriteAll, not
		// one per collected contribution.
		onCollected := func(st Status) sim.StepFunc {
			sz, _ := sizes[st.Source].Data.(int64)
			total += sz
			return collect
		}
		collect = func(_ *sim.Fiber) sim.StepFunc {
			if i < len(reqs) {
				q := reqs[i]
				i++
				return c.fwaitOn(r, fib, q, onCollected)
			}
			// Phase 2: one large write per aggregator.
			return fib.Advance(fs.PerOpLatency, func(_ *sim.Fiber) sim.StepFunc {
				return f.fReserveEnd(r, fs.CollWriteTime(total), func(end sim.Time) sim.StepFunc {
					f.ops++
					f.size += total
					f.bytesWritten += total
					return fib.AdvanceTo(end, finish)
				})
			})
		}
		return collect
	})
}
