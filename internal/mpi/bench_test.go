package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkPingPong measures one blocking message round trip between two
// ranks, the runtime's end-to-end point-to-point cost.
func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(Config{Procs: 2, Seed: 1})
	if _, err := w.Run(func(r *Rank) {
		c := r.World()
		for i := 0; i < b.N; i++ {
			if r.ID() == 0 {
				c.Send(r, 1, 0, 64, nil)
				c.Recv(r, 1, 0)
			} else {
				c.Recv(r, 0, 0)
				c.Send(r, 0, 0, 64, nil)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures dissemination barriers at several scales.
func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{16, 128, 1024} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			w := NewWorld(Config{Procs: p, Seed: 1})
			if _, err := w.Run(func(r *Rank) {
				for i := 0; i < b.N; i++ {
					r.World().Barrier(r)
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduce measures the recursive-doubling allreduce with real
// scalar payloads.
func BenchmarkAllreduce(b *testing.B) {
	w := NewWorld(Config{Procs: 64, Seed: 1})
	if _, err := w.Run(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			r.World().Allreduce(r, Part{Bytes: 8, Data: int64(1)}, SumInt64, nil)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFiberPingPong is BenchmarkPingPong with fiber rank bodies: the
// same blocking round trip with zero goroutine switches per message.
func BenchmarkFiberPingPong(b *testing.B) {
	w := NewWorld(Config{Procs: 2, Seed: 1})
	if _, err := w.RunFibers(func(r *Rank, f *simFiber) simStep {
		c := r.World()
		i := 0
		var loop simStep
		loop = func(_ *simFiber) simStep {
			if i >= b.N {
				return nil
			}
			i++
			if r.ID() == 0 {
				return c.FSend(r, 1, 0, 64, nil, func(_ *simFiber) simStep {
					return c.FRecv(r, 1, 0, func(Status) simStep { return loop })
				})
			}
			return c.FRecv(r, 0, 0, func(Status) simStep {
				return c.FSend(r, 0, 0, 64, nil, loop)
			})
		}
		return loop
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFiberBarrier measures fiber dissemination barriers at several
// scales.
func BenchmarkFiberBarrier(b *testing.B) {
	for _, p := range []int{16, 128, 1024} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			w := NewWorld(Config{Procs: p, Seed: 1})
			if _, err := w.RunFibers(func(r *Rank, f *simFiber) simStep {
				i := 0
				var loop simStep
				loop = func(_ *simFiber) simStep {
					if i >= b.N {
						return nil
					}
					i++
					return r.World().FBarrier(r, loop)
				}
				return loop
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWaitAllAllocs guards the coalescing WaitAll fast path: with
// the rank-owned status scratch, waiting on a batch of already-complete
// requests must not allocate per call (the requests themselves are the
// only per-operation allocation on this path).
func BenchmarkWaitAllAllocs(b *testing.B) {
	w := NewWorld(Config{Procs: 2, Seed: 1})
	b.ReportAllocs()
	if _, err := w.Run(func(r *Rank) {
		c := r.World()
		reqs := make([]*Request, 4)
		for i := 0; i < b.N; i++ {
			if r.ID() == 0 {
				for j := range reqs {
					reqs[j] = c.Isend(r, 1, j, 64, nil)
				}
				c.WaitAll(r, reqs...)
			} else {
				for j := range reqs {
					reqs[j] = c.Irecv(r, 0, j)
				}
				c.WaitAll(r, reqs...)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}
