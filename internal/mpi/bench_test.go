package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkPingPong measures one blocking message round trip between two
// ranks, the runtime's end-to-end point-to-point cost.
func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(Config{Procs: 2, Seed: 1})
	if _, err := w.Run(func(r *Rank) {
		c := r.World()
		for i := 0; i < b.N; i++ {
			if r.ID() == 0 {
				c.Send(r, 1, 0, 64, nil)
				c.Recv(r, 1, 0)
			} else {
				c.Recv(r, 0, 0)
				c.Send(r, 0, 0, 64, nil)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures dissemination barriers at several scales.
func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{16, 128, 1024} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			w := NewWorld(Config{Procs: p, Seed: 1})
			if _, err := w.Run(func(r *Rank) {
				for i := 0; i < b.N; i++ {
					r.World().Barrier(r)
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduce measures the recursive-doubling allreduce with real
// scalar payloads.
func BenchmarkAllreduce(b *testing.B) {
	w := NewWorld(Config{Procs: 64, Seed: 1})
	if _, err := w.Run(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			r.World().Allreduce(r, Part{Bytes: 8, Data: int64(1)}, SumInt64, nil)
		}
	}); err != nil {
		b.Fatal(err)
	}
}
