package mpi

import (
	"fmt"
	"testing"
)

// TestNonOvertakingPerSourceAndTag: messages between one (source, tag)
// pair must be received in send order, whatever mix of tags is in flight
// and whether the receives are posted before or after arrival.
func TestNonOvertakingPerSourceAndTag(t *testing.T) {
	cases := []struct {
		name      string
		preload   bool // let all messages arrive before the first receive
		sendTags  []int
		recvTag   int
		wantOrder []int64 // payload order among messages with recvTag
	}{
		{"same-tag-posted-late", true, []int{5, 5, 5, 5}, 5, []int64{0, 1, 2, 3}},
		{"interleaved-tags", true, []int{5, 9, 5, 9, 5}, 5, []int64{0, 2, 4}},
		{"other-tag-first", true, []int{9, 5, 5}, 5, []int64{1, 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w := testWorld(t, 2)
			var got []int64
			mustRun(t, w, func(r *Rank) {
				c := r.World()
				if r.ID() == 0 {
					for i, tag := range tc.sendTags {
						c.Send(r, 1, tag, 64, int64(i))
					}
					return
				}
				if tc.preload {
					r.Idle(1e9) // all sends arrive before any receive posts
				}
				for range tc.wantOrder {
					st := c.Recv(r, 0, tc.recvTag)
					got = append(got, st.Data.(int64))
				}
				// Drain the rest so the run ends cleanly.
				for i, tag := range tc.sendTags {
					if tag != tc.recvTag {
						_ = i
						c.Recv(r, 0, tag)
					}
				}
			})
			if len(got) != len(tc.wantOrder) {
				t.Fatalf("received %v, want %v", got, tc.wantOrder)
			}
			for i := range got {
				if got[i] != tc.wantOrder[i] {
					t.Fatalf("order %v, want %v (non-overtaking violated)", got, tc.wantOrder)
				}
			}
		})
	}
}

// TestWildcardFIFOFairness: AnySource and AnyTag receives must match the
// earliest-arrived message among all that qualify, in arrival order, even
// when concrete-keyed traffic interleaves.
func TestWildcardFIFOFairness(t *testing.T) {
	cases := []struct {
		name     string
		src, tag int // receive selector on rank 2 (AnySource/AnyTag ok)
		want     []string
	}{
		// Rank 0 sends "a0"(tag 1), "a1"(tag 2); rank 1 sends "b0"(tag 1),
		// "b1"(tag 2); arrival order a0, b0, a1, b1 (staggered below).
		{"any-source-tag1", AnySource, 1, []string{"a0", "b0"}},
		{"any-source-tag2", AnySource, 2, []string{"a1", "b1"}},
		{"src0-any-tag", 0, AnyTag, []string{"a0", "a1"}},
		{"src1-any-tag", 1, AnyTag, []string{"b0", "b1"}},
		{"any-any", AnySource, AnyTag, []string{"a0", "b0", "a1", "b1"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w := testWorld(t, 3)
			var got []string
			mustRun(t, w, func(r *Rank) {
				c := r.World()
				switch r.ID() {
				case 0:
					c.Send(r, 2, 1, 64, "a0")
					r.Idle(2e6)
					c.Send(r, 2, 2, 64, "a1")
				case 1:
					r.Idle(1e6)
					c.Send(r, 2, 1, 64, "b0")
					r.Idle(2e6)
					c.Send(r, 2, 2, 64, "b1")
				case 2:
					r.Idle(1e9) // everything arrives first
					for range tc.want {
						st := c.Recv(r, tc.src, tc.tag)
						got = append(got, st.Data.(string))
					}
					// Drain whatever the selector did not cover.
					for len(got) < 4 {
						st := c.Recv(r, AnySource, AnyTag)
						got = append(got, st.Data.(string))
					}
				}
			})
			for i, want := range tc.want {
				if got[i] != want {
					t.Fatalf("selector (%d,%d) received %v, want prefix %v", tc.src, tc.tag, got, tc.want)
				}
			}
		})
	}
}

// TestWildcardVsConcretePostingOrder: an arriving message must match the
// earliest-posted receive that accepts it, across wildcard and concrete
// selectors.
func TestWildcardVsConcretePostingOrder(t *testing.T) {
	for _, wildcardFirst := range []bool{true, false} {
		wildcardFirst := wildcardFirst
		t.Run(fmt.Sprintf("wildcardFirst=%v", wildcardFirst), func(t *testing.T) {
			w := testWorld(t, 2)
			mustRun(t, w, func(r *Rank) {
				c := r.World()
				if r.ID() == 0 {
					r.Idle(1e6)
					c.Send(r, 1, 7, 64, "only")
					return
				}
				var first, second *Request
				if wildcardFirst {
					first = c.Irecv(r, AnySource, AnyTag)
					second = c.Irecv(r, 0, 7)
				} else {
					first = c.Irecv(r, 0, 7)
					second = c.Irecv(r, AnySource, AnyTag)
				}
				st := c.Wait(r, first)
				if st.Data.(string) != "only" {
					t.Errorf("first-posted receive did not win: %+v", st)
				}
				if ok, _ := c.Test(r, second); ok {
					t.Error("second-posted receive completed without a message")
				}
				_ = second
			})
		})
	}
}

// TestProbeDoesNotConsume: Probe must report a queued message without
// removing it, repeatedly, and a later Recv still gets it in order.
func TestProbeDoesNotConsume(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 4, 64, "m0")
			c.Send(r, 1, 4, 64, "m1")
			return
		}
		r.Idle(1e9)
		for _, selector := range [][2]int{{0, 4}, {AnySource, 4}, {0, AnyTag}, {AnySource, AnyTag}} {
			for rep := 0; rep < 2; rep++ {
				ok, st := c.Probe(r, selector[0], selector[1])
				if !ok {
					t.Fatalf("Probe(%v) found nothing", selector)
				}
				if st.Data.(string) != "m0" {
					t.Fatalf("Probe(%v) = %+v, want earliest message m0", selector, st)
				}
			}
		}
		if st := c.Recv(r, 0, 4); st.Data.(string) != "m0" {
			t.Fatalf("Recv after Probe = %+v, want m0 (Probe consumed it?)", st)
		}
		if st := c.Recv(r, 0, 4); st.Data.(string) != "m1" {
			t.Fatalf("second Recv = %+v, want m1", st)
		}
		if ok, _ := c.Probe(r, AnySource, AnyTag); ok {
			t.Fatal("Probe found a message after both were received")
		}
	})
}

// TestProbeSeesSelfSendBehindInFlightMessage: a delivered self-send must
// be visible to Probe even while an earlier-arrived network message is
// still being serialized by the receiver NIC (ready instants are not
// monotonic across self-sends).
func TestProbeSeesSelfSendBehindInFlightMessage(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 1 {
			// Big message: arrives quickly, serializes for a long time.
			c.Isend(r, 0, 3, 100<<20, "big")
			return
		}
		// Let the big message reach rank 0's NIC, then self-send while it
		// is still serializing.
		r.Idle(5e6)
		c.Isend(r, 0, 3, 8, "self")
		r.Idle(1e3) // let the self-send delivery event fire
		ok, st := c.Probe(r, AnySource, 3)
		if !ok {
			t.Fatal("Probe missed the delivered self-send behind the in-flight message")
		}
		if st.Data.(string) != "self" {
			t.Fatalf("Probe = %+v, want the ready self-send", st)
		}
		// MPI's probe-then-receive guarantee: the next matching receive
		// must return the probed message, not the in-flight one.
		if got := c.Recv(r, AnySource, 3); got.Data.(string) != "self" {
			t.Fatalf("Recv after Probe = %+v, want the probed self-send", got)
		}
		if got := c.Recv(r, AnySource, 3); got.Data.(string) != "big" {
			t.Fatalf("second Recv = %+v, want the network message", got)
		}
	})
}

// TestTestThenWaitChargesOverheadOnce: a successful Test charges the
// receive overhead; a following Wait on the same request must not charge
// it again (regression test for the old isRecv-mutation hack).
func TestTestThenWaitChargesOverheadOnce(t *testing.T) {
	cfg := Config{Procs: 2, Seed: 1}
	w := NewWorld(cfg)
	ov := w.Config().Net.RecvOverhead
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 2, 64, nil)
			return
		}
		r.Idle(1e9)
		req := c.Irecv(r, 0, 2)
		before := r.Now()
		ok, _ := c.Test(r, req)
		if !ok {
			t.Fatal("Test found the queued message incomplete")
		}
		afterTest := r.Now()
		if afterTest-before != ov {
			t.Fatalf("Test charged %v, want RecvOverhead %v", afterTest-before, ov)
		}
		if !req.isRecv {
			t.Fatal("Test mutated isRecv")
		}
		// Wait consumes (recycles) the request; it must not be inspected
		// afterwards.
		c.Wait(r, req)
		if r.Now() != afterTest {
			t.Fatalf("Wait after Test charged %v more (double charge)", r.Now()-afterTest)
		}
	})
}
