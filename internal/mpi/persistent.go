package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// simTimeT aliases sim.Time for the conversion helper.
type simTimeT = sim.Time

// PersistentRequest is a reusable communication request, like
// MPI_Send_init / MPI_Recv_init. The paper's MPIStream library is built on
// persistent communication (Section III-A); the stream package uses these
// for its element channels when batching is disabled.
//
// A persistent request is created once, then cycled through
// Start -> Wait -> Start -> ... The setup cost (argument validation,
// matching-entry construction) is paid once at init time instead of per
// message, which the runtime models by charging a reduced per-start
// overhead.
type PersistentRequest struct {
	comm   *Comm
	isRecv bool
	// send parameters
	dst, tag int
	bytes    int64
	// recv parameters
	src int
	// active is the in-flight request of the current cycle, nil between
	// Wait and Start.
	active *Request
	starts int64
}

// persistentStartOverheadFraction is the share of the full send overhead
// paid per Start (the rest was paid at init).
const persistentStartOverheadFraction = 0.5

// SendInit creates a persistent send request to dst with a fixed tag and
// message size. The payload may vary per Start.
func (c *Comm) SendInit(r *Rank, dst, tag int, bytes int64) *PersistentRequest {
	if dst < 0 || dst >= len(c.members) {
		panic(fmt.Sprintf("mpi: SendInit to rank %d of %d", dst, len(c.members)))
	}
	if bytes < 0 {
		panic("mpi: negative message size")
	}
	// Init pays one full send overhead for the descriptor setup.
	r.proc.AddDebt(c.w.cfg.Net.SendOverhead)
	return &PersistentRequest{comm: c, dst: dst, tag: tag, bytes: bytes}
}

// RecvInit creates a persistent receive request from src (or AnySource)
// with the given tag.
func (c *Comm) RecvInit(r *Rank, src, tag int) *PersistentRequest {
	if src != AnySource && (src < 0 || src >= len(c.members)) {
		panic(fmt.Sprintf("mpi: RecvInit from rank %d of %d", src, len(c.members)))
	}
	r.proc.AddDebt(c.w.cfg.Net.RecvOverhead)
	return &PersistentRequest{comm: c, isRecv: true, src: src, tag: tag}
}

// Start activates the request for one communication cycle. Starting an
// already-active request is a programming error.
func (p *PersistentRequest) Start(r *Rank, data interface{}) {
	if p.active != nil {
		panic("mpi: Start on an active persistent request")
	}
	p.starts++
	if p.isRecv {
		p.active = p.comm.irecvFor(r, p.src, p.tag)
		return
	}
	// Persistent sends pay a reduced per-start overhead: the descriptor
	// work was done at init.
	net := r.w.cfg.Net
	overhead := simTime(float64(net.SendOverhead) * persistentStartOverheadFraction)
	p.active = p.comm.isendOv(r, r.proc, p.dst, p.tag, p.bytes, data, overhead)
}

// Wait blocks until the active cycle completes and deactivates the
// request, returning the cycle's status.
func (p *PersistentRequest) Wait(r *Rank) Status {
	if p.active == nil {
		panic("mpi: Wait on an inactive persistent request")
	}
	st := p.comm.Wait(r, p.active)
	p.active = nil
	return st
}

// Test reports whether the active cycle has completed; on completion the
// request deactivates.
func (p *PersistentRequest) Test(r *Rank) (bool, Status) {
	if p.active == nil {
		panic("mpi: Test on an inactive persistent request")
	}
	ok, st := p.comm.Test(r, p.active)
	if ok {
		p.active = nil
	}
	return ok, st
}

// Starts reports how many cycles the request has run.
func (p *PersistentRequest) Starts() int64 { return p.starts }

// Active reports whether a cycle is in flight.
func (p *PersistentRequest) Active() bool { return p.active != nil }

// simTime converts a float nanosecond count to the simulator time type.
func simTime(f float64) (t simTimeT) { return simTimeT(f) }
