package mpi

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// shardTrace is everything observable a rank records during the sharded
// workloads below. The parallel-mode determinism contract says every
// field must be byte-identical whatever the shard count or placement.
type shardTrace struct {
	Finish sim.Time
	Sum    int64
	Events []string
}

// shardWorkloadMain exercises the cross-shard seams: ring exchanges
// (send/recv interleaved with skewed compute), WaitAny over two
// neighbours, blocking and nonblocking collectives, and a closing
// barrier.
func shardWorkloadMain(traces []shardTrace) func(*Rank) {
	return func(r *Rank) {
		c := r.World()
		me, p := r.ID(), r.Size()
		tr := &traces[me]
		right, left := (me+1)%p, (me-1+p)%p
		for round := 0; round < 4; round++ {
			r.Compute(sim.Time((me*37+round*11)%97) * sim.Microsecond)
			sreq := c.Isend(r, right, 10+round, int64(64+me), fmt.Sprintf("r%d.%d", me, round))
			st := c.Recv(r, left, 10+round)
			c.Wait(r, sreq)
			tr.Events = append(tr.Events, fmt.Sprintf("ring%d %v %v", round, r.Now(), st.Data))
		}
		// Both neighbours race into a WaitAny; the winning order must not
		// depend on which shards host them.
		a := c.Irecv(r, left, 99)
		b := c.Irecv(r, right, 99)
		r.Compute(sim.Time(me%3) * sim.Microsecond)
		c.IsendAndFree(r, left, 99, 32+int64(me), nil)
		c.IsendAndFree(r, right, 99, 48+int64(me), nil)
		reqs := []*Request{a, b}
		for done := 0; done < 2; done++ {
			i, st := c.WaitAny(r, reqs)
			reqs[i] = nil
			tr.Events = append(tr.Events, fmt.Sprintf("any%d src%d %v", i, st.Source, r.Now()))
		}
		sum := c.Allreduce(r, Part{Bytes: 8, Data: int64(me)}, SumInt64, nil)
		tr.Sum = sum.Data.(int64)
		// Nonblocking collective: the helper process runs on the rank's own
		// shard, overlapping the compute below.
		cr := c.Iallgatherv(r, Part{Bytes: 16, Data: int64(me * me)})
		r.Compute(2 * sim.Microsecond)
		for _, pt := range c.WaitColl(r, cr).([]Part) {
			tr.Sum += pt.Data.(int64)
		}
		c.Barrier(r)
		tr.Finish = r.Now()
	}
}

func runShardWorkload(t *testing.T, shards int, place func(rank int) int) []shardTrace {
	t.Helper()
	const procs = 8
	traces := make([]shardTrace, procs)
	w := NewWorld(Config{Procs: procs, Seed: 7, Shards: shards, Place: place})
	if _, err := w.Run(shardWorkloadMain(traces)); err != nil {
		t.Fatalf("shards=%d: Run: %v", shards, err)
	}
	return traces
}

// TestShardedWorldDeterminism pins the tentpole contract at the mpi
// layer: the same workload over 1, 2 and 4 shards — blocked and strided
// placements — produces identical per-rank trajectories.
func TestShardedWorldDeterminism(t *testing.T) {

	ref := runShardWorkload(t, 1, nil)
	for _, tc := range []struct {
		name   string
		shards int
		place  func(rank int) int
	}{
		{"2-blocked", 2, nil},
		{"2-strided", 2, func(rank int) int { return rank % 2 }},
		{"4-blocked", 4, nil},
		{"4-strided", 4, func(rank int) int { return rank % 4 }},
	} {
		got := runShardWorkload(t, tc.shards, tc.place)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: trajectory diverged from 1-shard reference", tc.name)
			for i := range ref {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Errorf("  rank %d:\n    ref %+v\n    got %+v", i, ref[i], got[i])
				}
			}
		}
	}
}

// shardSimpleEvents is the shared observable record of the simple
// workload run by both process representations.
func shardSimpleBody(tr *shardTrace, r *Rank, round int, st Status) {
	tr.Events = append(tr.Events, fmt.Sprintf("ring%d %v %v", round, r.Now(), st.Data))
}

func runShardWorkloadFibers(t *testing.T, shards int) []shardTrace {
	t.Helper()
	const procs = 8
	traces := make([]shardTrace, procs)
	w := NewWorld(Config{Procs: procs, Seed: 7, Shards: shards})
	_, err := w.RunFibers(func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		me, p := r.ID(), r.Size()
		tr := &traces[me]
		right, left := (me+1)%p, (me-1+p)%p
		round := 0
		var loop sim.StepFunc
		loop = func(_ *sim.Fiber) sim.StepFunc {
			if round >= 3 {
				return c.FAllreduce(r, Part{Bytes: 8, Data: int64(me)}, SumInt64, nil, func(sum Part) sim.StepFunc {
					tr.Sum = sum.Data.(int64)
					return c.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
						tr.Finish = r.Now()
						return nil
					})
				})
			}
			rd := round
			round++
			return r.FCompute(sim.Time((me*37+rd*11)%97)*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
				return c.FSend(r, right, 10+rd, int64(64+me), fmt.Sprintf("r%d.%d", me, rd), func(_ *sim.Fiber) sim.StepFunc {
					return c.FRecv(r, left, 10+rd, func(st Status) sim.StepFunc {
						shardSimpleBody(tr, r, rd, st)
						return loop
					})
				})
			})
		}
		return loop
	})
	if err != nil {
		t.Fatalf("shards=%d: RunFibers: %v", shards, err)
	}
	return traces
}

func runShardWorkloadSimple(t *testing.T, shards int) []shardTrace {
	t.Helper()
	const procs = 8
	traces := make([]shardTrace, procs)
	w := NewWorld(Config{Procs: procs, Seed: 7, Shards: shards})
	if _, err := w.Run(func(r *Rank) {
		c := r.World()
		me, p := r.ID(), r.Size()
		tr := &traces[me]
		right, left := (me+1)%p, (me-1+p)%p
		for rd := 0; rd < 3; rd++ {
			r.Compute(sim.Time((me*37+rd*11)%97) * sim.Microsecond)
			c.Send(r, right, 10+rd, int64(64+me), fmt.Sprintf("r%d.%d", me, rd))
			st := c.Recv(r, left, 10+rd)
			shardSimpleBody(tr, r, rd, st)
		}
		sum := c.Allreduce(r, Part{Bytes: 8, Data: int64(me)}, SumInt64, nil)
		tr.Sum = sum.Data.(int64)
		c.Barrier(r)
		tr.Finish = r.Now()
	}); err != nil {
		t.Fatalf("shards=%d: Run: %v", shards, err)
	}
	return traces
}

// TestShardedWorldFiberEquivalence checks the representation half of the
// contract under sharding: fiber-backed ranks produce the same trajectory
// as goroutine-backed ranks at every shard count, and fiber trajectories
// agree across shard counts.
func TestShardedWorldFiberEquivalence(t *testing.T) {
	ref := runShardWorkloadSimple(t, 1)
	for _, shards := range []int{1, 2, 4} {
		if got := runShardWorkloadSimple(t, shards); !reflect.DeepEqual(got, ref) {
			t.Errorf("goroutine shards=%d diverged from shards=1: %+v vs %+v", shards, got, ref)
		}
		if got := runShardWorkloadFibers(t, shards); !reflect.DeepEqual(got, ref) {
			t.Errorf("fiber shards=%d diverged from goroutine reference: %+v vs %+v", shards, got, ref)
		}
	}
}

// TestShardedWorldGuards pins the configurations parallel mode refuses.
func TestShardedWorldGuards(t *testing.T) {
	expectPanicMsg := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanicMsg("shared engine", func() {
		NewWorld(Config{Procs: 2, Shards: 2, Engine: sim.NewEngine(1)})
	})
	expectPanicMsg("crashes", func() {
		NewWorld(Config{Procs: 2, Shards: 2, Crashes: []sim.CrashEvent{{Target: 0, At: 1}}})
	})
}
