// Fiber-backed runtime entry points.
//
// This file is the continuation-passing counterpart of the blocking calls
// in p2p.go and coll.go, for ranks run with World.RunFibers. Every
// primitive mirrors its goroutine twin decision for decision — the same
// debt floors, the same settle targets, the same order of request posting
// and waiting — so a fiber port of a rank body produces a bit-identical
// virtual-time trajectory (the engine's (t, seq) contract; asserted by
// the differential tests in internal/experiments).
//
// The only structural difference is control flow: a wait that would park
// a goroutine instead stores its continuation on the request (the same
// Request.waiter slot delivery already wakes) and returns, unwinding to
// the engine loop. Delivery then resumes the fiber with a plain function
// call on the current token holder — no goroutine switch anywhere on a
// fiber-to-fiber message path.
package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// FIsend is Isend for fiber-backed ranks. Isend itself is representation-
// neutral; the alias keeps fiber bodies visually uniform.
func (c *Comm) FIsend(r *Rank, dst, tag int, bytes int64, data interface{}) *Request {
	return c.Isend(r, dst, tag, bytes, data)
}

// FWait is Wait for fiber-backed ranks: it completes req, charges receive
// overhead exactly as Wait does, and continues with then(status).
func (c *Comm) FWait(r *Rank, req *Request, then func(Status) sim.StepFunc) sim.StepFunc {
	return c.fwaitOn(r, r.fib, req, then)
}

// fwait is the pooled state of one fiber wait: the closure environment of
// fwaitOn hand-hoisted into a struct so the steady-state wait path
// allocates nothing. The step fields hold bound-method values created
// once per struct lifetime; the struct recycles through the world's
// single-threaded freelist when the wait settles.
type fwait struct {
	r        *Rank
	f        *sim.Fiber
	req      *Request
	floor    sim.Time
	then     func(Status) sim.StepFunc // exactly one of then/thenStep is set
	thenStep sim.StepFunc
	ov       sim.Time

	check  sim.StepFunc // bound s.checkStep
	wake   sim.StepFunc // bound s.wakeStep
	settle sim.StepFunc // bound s.settleStep
}

// newFwait readies a pooled (or fresh) wait state.
func (w *World) newFwait(r *Rank, f *sim.Fiber, req *Request, then func(Status) sim.StepFunc, thenStep sim.StepFunc) *fwait {
	pl := r.rs.pool
	var s *fwait
	if n := len(pl.fwFree); n > 0 {
		s = pl.fwFree[n-1]
		pl.fwFree = pl.fwFree[:n-1]
	} else {
		s = &fwait{}
		s.check = s.checkStep
		s.wake = s.wakeStep
		s.settle = s.settleStep
	}
	s.r, s.f, s.req, s.then, s.thenStep = r, f, req, then, thenStep
	s.floor = r.rs.eng.Now() + f.Debt()
	s.ov = w.cfg.Net.RecvOverhead
	return s
}

// checkStep mirrors waitOn's loop body: park on the request if it is
// still pending, else fold floor, completion instant and receive overhead
// into one settling advance.
func (s *fwait) checkStep(_ *sim.Fiber) sim.StepFunc {
	req := s.req
	req.checkLive()
	if !req.done && !req.timed {
		// The park registers this fiber on the request, so delivery
		// wakes exactly this fiber at exactly the right instant.
		req.waiter = s.f
		return s.f.ParkKeepingDebt("mpi wait", s.wake)
	}
	e := s.r.rs.eng
	target := e.Now()
	if s.floor > target {
		target = s.floor
	}
	if req.status.Err != nil {
		// Completed by peer failure: settle the clock (mirroring waitOn's
		// settle-then-panic), recycle the wait state — the request itself
		// is abandoned, not recycled — and surface the failure through the
		// rank's registered fail step (FProtect) or a panic.
		r, f := s.r, s.f
		s.r, s.f, s.req, s.then, s.thenStep = nil, nil, nil, nil, nil
		r.rs.pool.fwFree = append(r.rs.pool.fwFree, s)
		return f.SettleTo(target, r.failNow())
	}
	if req.timed && req.doneAt > target {
		target = req.doneAt
	}
	req.done = true
	if req.isRecv && !req.ovCharged {
		req.ovCharged = true
		target += s.ov
	}
	return s.f.SettleTo(target, s.settle)
}

func (s *fwait) wakeStep(_ *sim.Fiber) sim.StepFunc {
	s.req.waiter = nil
	return s.check
}

// settleStep finishes the wait: recycle the state and the consumed
// request, then run the caller's continuation.
func (s *fwait) settleStep(_ *sim.Fiber) sim.StepFunc {
	then, thenStep, st, pl := s.then, s.thenStep, s.req.status, s.r.rs.pool
	pl.freeRequest(s.req)
	s.r, s.f, s.req, s.then, s.thenStep = nil, nil, nil, nil, nil
	pl.fwFree = append(pl.fwFree, s)
	if then != nil {
		return then(st)
	}
	return thenStep
}

// fwaitOn mirrors waitOn: floor is entry time plus pending debt, the debt
// rides through the park, and a single settling advance folds floor,
// completion instant and receive overhead together.
func (c *Comm) fwaitOn(r *Rank, f *sim.Fiber, req *Request, then func(Status) sim.StepFunc) sim.StepFunc {
	return c.w.newFwait(r, f, req, then, nil).check
}

// fwaitOnStep is fwaitOn for continuations that ignore the status,
// avoiding a wrapper closure on the hot send-wait path.
func (c *Comm) fwaitOnStep(r *Rank, f *sim.Fiber, req *Request, then sim.StepFunc) sim.StepFunc {
	return c.w.newFwait(r, f, req, nil, then).check
}

// FSend is the blocking send for fiber-backed ranks: FIsend then FWait.
func (c *Comm) FSend(r *Rank, dst, tag int, bytes int64, data interface{}, then sim.StepFunc) sim.StepFunc {
	req := c.FIsend(r, dst, tag, bytes, data)
	return c.fwaitOnStep(r, r.fib, req, then)
}

// FRecv is the blocking receive for fiber-backed ranks: Irecv then FWait.
// (Irecv itself never blocks and is shared between representations.)
func (c *Comm) FRecv(r *Rank, src, tag int, then func(Status) sim.StepFunc) sim.StepFunc {
	req := c.irecvFor(r, src, tag)
	return c.fwaitOn(r, r.fib, req, then)
}

// fwaitAll is the pooled closure environment of FWaitAll.
type fwaitAll struct {
	c    *Comm
	r    *Rank
	f    *sim.Fiber
	reqs []*Request
	out  []Status
	then func([]Status) sim.StepFunc
	i    int
	cur  int // slot index of the wait in flight

	loop sim.StepFunc              // bound s.loopStep
	slot func(Status) sim.StepFunc // bound s.slotStep
	fin  sim.StepFunc              // bound s.finStep
}

func (s *fwaitAll) loopStep(_ *sim.Fiber) sim.StepFunc {
	e := s.r.rs.eng
	ov := s.c.w.cfg.Net.RecvOverhead
	for s.i < len(s.reqs) {
		q := s.reqs[s.i]
		q.checkLive()
		// Fast path: complete as of now plus pending debt; coalesce the
		// receive overhead as debt, exactly as WaitAll does. Requests
		// completed by peer failure take the full wait, which surfaces
		// the error.
		if q.status.Err == nil && (q.done || (q.timed && q.doneAt <= e.Now()+s.f.Debt())) {
			q.done = true
			if q.isRecv && !q.ovCharged {
				q.ovCharged = true
				s.f.AddDebt(ov)
			}
			s.out[s.i] = q.status
			s.r.rs.pool.freeRequest(q)
			s.i++
			continue
		}
		s.cur = s.i
		s.i++
		return s.c.fwaitOn(s.r, s.f, q, s.slot)
	}
	return s.f.FlushDebt(s.fin)
}

func (s *fwaitAll) slotStep(st Status) sim.StepFunc {
	s.out[s.cur] = st
	return s.loop
}

func (s *fwaitAll) finStep(_ *sim.Fiber) sim.StepFunc {
	then, out, pl := s.then, s.out, s.r.rs.pool
	s.c, s.r, s.f, s.reqs, s.out, s.then = nil, nil, nil, nil, nil, nil
	pl.fwAllFree = append(pl.fwAllFree, s)
	return then(out)
}

// FWaitAll mirrors WaitAll: already-complete requests settle without an
// engine yield and coalesce their receive overheads as debt; pending ones
// get a full wait in order. Statuses land in the rank's reusable scratch
// slice (same ownership rule as WaitAll's return value).
func (c *Comm) FWaitAll(r *Rank, reqs []*Request, then func([]Status) sim.StepFunc) sim.StepFunc {
	pl := r.rs.pool
	var s *fwaitAll
	if n := len(pl.fwAllFree); n > 0 {
		s = pl.fwAllFree[n-1]
		pl.fwAllFree = pl.fwAllFree[:n-1]
	} else {
		s = &fwaitAll{}
		s.loop = s.loopStep
		s.slot = s.slotStep
		s.fin = s.finStep
	}
	s.c, s.r, s.f, s.reqs, s.then = c, r, r.fib, reqs, then
	s.out = r.rs.statusScratch(len(reqs))
	s.i = 0
	return s.loop
}

// fwaitAny is the pooled closure environment of FWaitAny. Its embedded
// waker is what the pending requests register (the fiber counterpart of
// WaitAny's pooled waker): one resume event per wake, identical (t, seq)
// to the goroutine representation.
type fwaitAny struct {
	c     *Comm
	r     *Rank
	f     *sim.Fiber
	reqs  []*Request
	then  func(int, Status) sim.StepFunc
	won   int  // index whose receive overhead is being charged
	armed bool // wk is armed and may be registered on requests
	wk    sim.Waker

	loop    sim.StepFunc // bound s.loopStep
	charged sim.StepFunc // bound s.chargedStep
}

func (s *fwaitAny) loopStep(_ *sim.Fiber) sim.StepFunc {
	e := s.r.rs.eng
	now := e.Now()
	var minTimed sim.Time = -1
	won := -1
	for i, q := range s.reqs {
		if q == nil {
			continue
		}
		q.checkLive()
		if s.armed && q.anyw == &s.wk {
			q.anyw = nil
		}
		if won < 0 && q.completedBy(now) {
			won = i
			// Keep scanning: later requests may still hold the waker.
			continue
		}
		if q.timed && (minTimed < 0 || q.doneAt < minTimed) {
			minTimed = q.doneAt
		}
	}
	if won >= 0 {
		q := s.reqs[won]
		if q.status.Err != nil {
			// Completed by peer failure (debt was flushed at entry, so the
			// clock is settled). Recycle the wait state, abandon the
			// request, surface the failure — mirroring WaitAny's panic.
			if s.armed {
				s.armed = false
				s.wk.Disarm()
			}
			r := s.r
			s.c, s.r, s.f, s.reqs, s.then = nil, nil, nil, nil, nil
			r.rs.pool.fwAnyFree = append(r.rs.pool.fwAnyFree, s)
			return r.failNow()
		}
		q.done = true
		if q.isRecv && !q.ovCharged {
			q.ovCharged = true
			s.won = won
			return s.f.Advance(s.c.w.cfg.Net.RecvOverhead, s.charged)
		}
		return s.finish(won)
	}
	if minTimed >= 0 {
		// A send will complete at a known instant; a receive may
		// complete during the advance and wins the next scan.
		return s.f.AdvanceTo(minTimed, s.loop)
	}
	if s.c.w.legacy {
		return s.r.rs.progress.WaitFiber(s.f, "mpi waitany", s.loop)
	}
	if !s.armed {
		s.armed = true
		s.wk.Arm(e, s.f)
	}
	for _, q := range s.reqs {
		if q != nil && !q.done && !q.timed {
			q.anyw = &s.wk
		}
	}
	return s.f.Park("mpi waitany", s.loop)
}

func (s *fwaitAny) chargedStep(_ *sim.Fiber) sim.StepFunc {
	return s.finish(s.won)
}

// finish recycles the state and the consumed winning request, then runs
// the caller's continuation with the winning index and status. The
// post-wake scan in loopStep already deregistered the waker from every
// surviving request.
func (s *fwaitAny) finish(i int) sim.StepFunc {
	if s.armed {
		s.armed = false
		s.wk.Disarm()
	}
	then, st, pl := s.then, s.reqs[i].status, s.r.rs.pool
	pl.freeRequest(s.reqs[i])
	s.c, s.r, s.f, s.reqs, s.then = nil, nil, nil, nil, nil
	pl.fwAnyFree = append(pl.fwAnyFree, s)
	return then(i, st)
}

// FWaitAny mirrors WaitAny: flush debt, then repeatedly scan for the
// lowest completed index, advancing to the earliest pending timed
// completion or registering the pooled waker on every pending request
// when nothing is in sight. Completed receives charge the receive
// overhead exactly once.
func (c *Comm) FWaitAny(r *Rank, reqs []*Request, then func(int, Status) sim.StepFunc) sim.StepFunc {
	if len(reqs) == 0 {
		panic("mpi: FWaitAny with no requests")
	}
	pl := r.rs.pool
	var s *fwaitAny
	if n := len(pl.fwAnyFree); n > 0 {
		s = pl.fwAnyFree[n-1]
		pl.fwAnyFree = pl.fwAnyFree[:n-1]
	} else {
		s = &fwaitAny{}
		s.loop = s.loopStep
		s.charged = s.chargedStep
	}
	s.c, s.r, s.f, s.reqs, s.then = c, r, r.fib, reqs, then
	return s.f.FlushDebt(s.loop)
}

// FBarrier is Barrier for fiber-backed ranks (same dissemination rounds,
// same tag counters — fiber and goroutine ranks of one world could even
// interleave, though the runners keep worlds homogeneous).
func (c *Comm) FBarrier(r *Rank, then sim.StepFunc) sim.StepFunc {
	me := c.RankOf(r)
	return c.fbarrierOn(r, r.fib, me, c.nextCollTag(me), then)
}

func (c *Comm) fbarrierOn(r *Rank, f *sim.Fiber, me, tag int, then sim.StepFunc) sim.StepFunc {
	p := len(c.members)
	k := 1
	var round sim.StepFunc
	round = func(_ *sim.Fiber) sim.StepFunc {
		if k >= p {
			return then
		}
		dst := (me + k) % p
		src := (me - k + p) % p
		k <<= 1
		req := c.isendOv(r, f, dst, tag, 0, nil, r.w.cfg.Net.SendOverhead)
		rreq := c.irecvFor(r, src, tag)
		return c.fwaitOn(r, f, req, func(Status) sim.StepFunc {
			return c.fwaitOn(r, f, rreq, func(Status) sim.StepFunc { return round })
		})
	}
	return round
}

// FBcast is Bcast for fiber-backed ranks: binomial tree, identical
// message pattern, result delivered to then.
func (c *Comm) FBcast(r *Rank, root int, part Part, then func(Part) sim.StepFunc) sim.StepFunc {
	me := c.RankOf(r)
	return c.fbcastOn(r, r.fib, me, root, part, c.nextCollTag(me), then)
}

func (c *Comm) fbcastOn(r *Rank, f *sim.Fiber, me, root int, part Part, tag int, then func(Part) sim.StepFunc) sim.StepFunc {
	p := len(c.members)
	if p == 1 {
		return then(part)
	}
	vr := (me - root + p) % p
	// Receive phase: find the mask at which this rank receives, if any.
	recvMask := 0
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			recvMask = mask
			break
		}
	}
	sendPhase := func(topMask int) sim.StepFunc {
		mask := topMask
		var send sim.StepFunc
		send = func(_ *sim.Fiber) sim.StepFunc {
			for mask > 0 {
				if vr&mask == 0 && vr+mask < p {
					dst := (vr + mask + root) % p
					req := c.isendOv(r, f, dst, tag, part.Bytes, part.Data, r.w.cfg.Net.SendOverhead)
					mask >>= 1
					return c.fwaitOn(r, f, req, func(Status) sim.StepFunc { return send })
				}
				mask >>= 1
			}
			return then(part)
		}
		return send
	}
	if recvMask != 0 {
		src := (vr - recvMask + root) % p
		rreq := c.irecvFor(r, src, tag)
		return c.fwaitOn(r, f, rreq, func(st Status) sim.StepFunc {
			part = Part{Bytes: st.Bytes, Data: st.Data}
			return sendPhase(recvMask >> 1)
		})
	}
	topMask := 1
	for topMask < p {
		topMask <<= 1
	}
	return sendPhase(topMask >> 1)
}

// FReduce is Reduce for fiber-backed ranks: binomial tree toward root,
// delivering (part, isRoot) to then.
func (c *Comm) FReduce(r *Rank, root int, part Part, op ReduceOp, cost CostFn, then func(Part, bool) sim.StepFunc) sim.StepFunc {
	me := c.RankOf(r)
	return c.freduceOn(r, r.fib, me, root, part, op, cost, c.nextCollTag(me), then)
}

func (c *Comm) freduceOn(r *Rank, f *sim.Fiber, me, root int, part Part, op ReduceOp, cost CostFn, tag int, then func(Part, bool) sim.StepFunc) sim.StepFunc {
	p := len(c.members)
	if p == 1 {
		return then(part, true)
	}
	vr := (me - root + p) % p
	acc := part
	mask := 1
	var round sim.StepFunc
	round = func(fb *sim.Fiber) sim.StepFunc {
		for mask < p {
			if vr&mask != 0 {
				dst := (vr - mask + root) % p
				req := c.isendOv(r, f, dst, tag, acc.Bytes, acc.Data, r.w.cfg.Net.SendOverhead)
				return c.fwaitOn(r, f, req, func(Status) sim.StepFunc {
					return then(Part{}, false)
				})
			}
			peer := vr | mask
			if peer < p {
				rreq := c.irecvFor(r, (peer+root)%p, tag)
				return c.fwaitOn(r, f, rreq, func(st Status) sim.StepFunc {
					combine := func(_ *sim.Fiber) sim.StepFunc {
						acc = Part{Bytes: maxI64(acc.Bytes, st.Bytes), Data: op(acc.Data, st.Data)}
						mask <<= 1
						return round
					}
					if cost != nil {
						return f.Advance(cost(acc.Bytes+st.Bytes), combine)
					}
					return combine
				})
			}
			mask <<= 1
		}
		return then(acc, true)
	}
	return round
}

// FAllreduce is Allreduce for fiber-backed ranks: recursive doubling for
// power-of-two sizes, reduce-to-0 plus broadcast otherwise, with the same
// rank-ordered combines as the goroutine version.
func (c *Comm) FAllreduce(r *Rank, part Part, op ReduceOp, cost CostFn, then func(Part) sim.StepFunc) sim.StepFunc {
	me := c.RankOf(r)
	return c.fallreduceOn(r, r.fib, me, part, op, cost, c.nextCollTag(me), then)
}

func (c *Comm) fallreduceOn(r *Rank, f *sim.Fiber, me int, part Part, op ReduceOp, cost CostFn, tag int, then func(Part) sim.StepFunc) sim.StepFunc {
	p := len(c.members)
	if p == 1 {
		return then(part)
	}
	if p&(p-1) == 0 {
		acc := part
		mask := 1
		var round sim.StepFunc
		round = func(_ *sim.Fiber) sim.StepFunc {
			if mask >= p {
				return then(acc)
			}
			peer := me ^ mask
			sreq := c.isendOv(r, f, peer, tag, acc.Bytes, acc.Data, r.w.cfg.Net.SendOverhead)
			rreq := c.irecvFor(r, peer, tag)
			return c.fwaitOn(r, f, rreq, func(st Status) sim.StepFunc {
				return c.fwaitOn(r, f, sreq, func(Status) sim.StepFunc {
					combine := func(_ *sim.Fiber) sim.StepFunc {
						// Combine in rank order for cross-rank determinism.
						if peer < me {
							acc = Part{Bytes: maxI64(acc.Bytes, st.Bytes), Data: op(st.Data, acc.Data)}
						} else {
							acc = Part{Bytes: maxI64(acc.Bytes, st.Bytes), Data: op(acc.Data, st.Data)}
						}
						mask <<= 1
						return round
					}
					if cost != nil {
						return f.Advance(cost(acc.Bytes+st.Bytes), combine)
					}
					return combine
				})
			})
		}
		return round
	}
	return c.freduceOn(r, f, me, 0, part, op, cost, tag, func(res Part, isRoot bool) sim.StepFunc {
		if !isRoot {
			res = Part{}
		}
		return c.fbcastOn(r, f, me, 0, res, tag, then)
	})
}

// FAllgatherv is Allgatherv for fiber-backed ranks: recursive doubling
// for power-of-two sizes, a ring otherwise, identical wire traffic.
func (c *Comm) FAllgatherv(r *Rank, part Part, then func([]Part) sim.StepFunc) sim.StepFunc {
	me := c.RankOf(r)
	return c.fallgathervOn(r, r.fib, me, part, c.nextCollTag(me), then)
}

func (c *Comm) fallgathervOn(r *Rank, f *sim.Fiber, me int, part Part, tag int, then func([]Part) sim.StepFunc) sim.StepFunc {
	p := len(c.members)
	out := make([]Part, p)
	out[me] = part
	if p == 1 {
		return then(out)
	}
	ov := r.w.cfg.Net.SendOverhead
	if p&(p-1) == 0 {
		have := newGatherBundle(me, part, p)
		mask := 1
		var round sim.StepFunc
		round = func(_ *sim.Fiber) sim.StepFunc {
			if mask >= p {
				for i, owner := range have.owners {
					out[owner] = have.parts[i]
				}
				return then(out)
			}
			peer := me ^ mask
			sreq := c.isendOv(r, f, peer, tag, bundleBytes(have), have, ov)
			rreq := c.irecvFor(r, peer, tag)
			return c.fwaitOn(r, f, rreq, func(st Status) sim.StepFunc {
				return c.fwaitOn(r, f, sreq, func(Status) sim.StepFunc {
					got := st.Data.(gatherBundle)
					have.owners = append(have.owners, got.owners...)
					have.parts = append(have.parts, got.parts...)
					mask <<= 1
					return round
				})
			})
		}
		return round
	}
	// Ring: pass the neighbour's latest part around, P-1 steps.
	cur := newGatherBundle(me, part, p)
	right := (me + 1) % p
	left := (me - 1 + p) % p
	step := 0
	var round sim.StepFunc
	round = func(_ *sim.Fiber) sim.StepFunc {
		if step >= p-1 {
			return then(out)
		}
		step++
		sreq := c.isendOv(r, f, right, tag, bundleBytes(cur), cur, ov)
		rreq := c.irecvFor(r, left, tag)
		return c.fwaitOn(r, f, rreq, func(st Status) sim.StepFunc {
			return c.fwaitOn(r, f, sreq, func(Status) sim.StepFunc {
				cur = st.Data.(gatherBundle)
				out[cur.owners[0]] = cur.parts[0]
				return round
			})
		})
	}
	return round
}

// FSplit is Split for fiber-backed ranks: identical membership
// bookkeeping, with the closing rendezvous barrier in continuation form.
// The child communicator (nil for color < 0) is delivered to then.
func (c *Comm) FSplit(r *Rank, color, key int, then func(*Comm) sim.StepFunc) sim.StepFunc {
	st := c.splitRegister(r, color, key)
	me := c.RankOf(r)
	return c.fbarrierOn(r, r.fib, me, c.nextCollTag(me), func(_ *sim.Fiber) sim.StepFunc {
		if color < 0 {
			return then(nil)
		}
		return then(st.result[color])
	})
}

// FIreduce is Ireduce for fiber-backed ranks: the collective's algorithm
// runs on a helper fiber (the goroutine-free analogue of the progress
// helper process), and the initiating rank pays one send overhead before
// continuing with then(cr).
func (c *Comm) FIreduce(r *Rank, root int, part Part, op ReduceOp, cost CostFn, then func(*CollRequest) sim.StepFunc) sim.StepFunc {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	cr := &CollRequest{}
	r.rs.eng.SpawnFiber(fmt.Sprintf("rank%d/ireduce", r.rs.rank), func(hf *sim.Fiber) sim.StepFunc {
		return c.freduceOn(r, hf, me, root, part, op, cost, tag, func(res Part, isRoot bool) sim.StepFunc {
			if isRoot {
				cr.value = res
			} else {
				cr.value = Part{}
			}
			return c.finishColl(r, cr)
		})
	})
	return r.fib.Advance(r.w.cfg.Net.SendOverhead, func(_ *sim.Fiber) sim.StepFunc { return then(cr) })
}

// FIallgatherv is Iallgatherv for fiber-backed ranks.
func (c *Comm) FIallgatherv(r *Rank, part Part, then func(*CollRequest) sim.StepFunc) sim.StepFunc {
	me := c.RankOf(r)
	tag := c.nextCollTag(me)
	cr := &CollRequest{}
	r.rs.eng.SpawnFiber(fmt.Sprintf("rank%d/iallgatherv", r.rs.rank), func(hf *sim.Fiber) sim.StepFunc {
		return c.fallgathervOn(r, hf, me, part, tag, func(parts []Part) sim.StepFunc {
			cr.value = parts
			return c.finishColl(r, cr)
		})
	})
	return r.fib.Advance(r.w.cfg.Net.SendOverhead, func(_ *sim.Fiber) sim.StepFunc { return then(cr) })
}

// finishColl completes a helper-fiber collective: mark done and wake the
// parked waiter (or, under the legacy strategy, broadcast to the rank's
// progress queue), exactly as the helper process does.
func (c *Comm) finishColl(r *Rank, cr *CollRequest) sim.StepFunc {
	c.completeColl(r, cr)
	return nil
}

// FWaitColl is WaitColl for fiber-backed ranks, delivering the
// collective's result value to then.
func (c *Comm) FWaitColl(r *Rank, cr *CollRequest, then func(interface{}) sim.StepFunc) sim.StepFunc {
	f := r.fib
	var loop sim.StepFunc
	loop = func(_ *sim.Fiber) sim.StepFunc {
		if !cr.done {
			if r.w.legacy {
				return r.rs.progress.WaitFiber(f, "mpi waitcoll", loop)
			}
			// completeColl clears the registration when it wakes us.
			cr.waiter = f
			return f.Park("mpi waitcoll", loop)
		}
		return then(cr.value)
	}
	return f.FlushDebt(loop)
}
