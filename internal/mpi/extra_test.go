package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestSendrecvExchanges(t *testing.T) {
	w := testWorld(t, 4)
	got := make([]int, 4)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		right := (r.ID() + 1) % 4
		left := (r.ID() + 3) % 4
		st := c.Sendrecv(r, right, 5, 8, r.ID()*7, left, 5)
		got[r.ID()] = st.Data.(int)
	})
	for i := 0; i < 4; i++ {
		if want := ((i + 3) % 4) * 7; got[i] != want {
			t.Fatalf("rank %d got %d, want %d", i, got[i], want)
		}
	}
}

func TestScanPrefixSums(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w := testWorld(t, p)
		got := make([]int64, p)
		mustRun(t, w, func(r *Rank) {
			res := r.World().Scan(r, Part{Bytes: 8, Data: int64(r.ID() + 1)}, SumInt64, nil)
			got[r.ID()] = res.Data.(int64)
		})
		for i := 0; i < p; i++ {
			want := int64((i + 1) * (i + 2) / 2)
			if got[i] != want {
				t.Fatalf("p=%d rank %d scan = %d, want %d", p, i, got[i], want)
			}
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	const p = 6
	w := testWorld(t, p)
	got := make([]int64, p)
	mustRun(t, w, func(r *Rank) {
		parts := make([]Part, p)
		for i := range parts {
			parts[i] = Part{Bytes: 8, Data: int64(i + r.ID())}
		}
		res := r.World().ReduceScatterBlock(r, parts, SumInt64, nil)
		got[r.ID()] = res.Data.(int64)
	})
	// Slot i combined over ranks: sum_r (i + r) = p*i + p(p-1)/2.
	for i := 0; i < p; i++ {
		want := int64(p*i + p*(p-1)/2)
		if got[i] != want {
			t.Fatalf("slot %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	const p = 5
	w := testWorld(t, p)
	got := make([]string, p)
	mustRun(t, w, func(r *Rank) {
		var parts []Part
		if r.ID() == 2 {
			for i := 0; i < p; i++ {
				parts = append(parts, Part{Bytes: 8, Data: string(rune('a' + i))})
			}
		}
		res := r.World().Scatter(r, 2, parts)
		got[r.ID()] = res.Data.(string)
	})
	for i := 0; i < p; i++ {
		if got[i] != string(rune('a'+i)) {
			t.Fatalf("rank %d got %q", i, got[i])
		}
	}
}

func TestPersistentSendRecvCycles(t *testing.T) {
	w := testWorld(t, 2)
	var got []int
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			ps := c.SendInit(r, 1, 9, 64)
			for i := 0; i < 5; i++ {
				ps.Start(r, i*i)
				ps.Wait(r)
			}
			if ps.Starts() != 5 {
				t.Errorf("starts = %d", ps.Starts())
			}
		} else {
			pr := c.RecvInit(r, 0, 9)
			for i := 0; i < 5; i++ {
				pr.Start(r, nil)
				st := pr.Wait(r)
				got = append(got, st.Data.(int))
			}
		}
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("cycle %d got %d", i, v)
		}
	}
}

func TestPersistentCheaperThanIsendBursts(t *testing.T) {
	const msgs = 2000
	run := func(persistent bool) sim.Time {
		w := NewWorld(Config{Procs: 2, Seed: 1})
		var end sim.Time
		if _, err := w.Run(func(r *Rank) {
			c := r.World()
			if r.ID() == 0 {
				if persistent {
					ps := c.SendInit(r, 1, 0, 8)
					for i := 0; i < msgs; i++ {
						ps.Start(r, nil)
						ps.Wait(r)
					}
				} else {
					for i := 0; i < msgs; i++ {
						c.Wait(r, c.Isend(r, 1, 0, 8, nil))
					}
				}
			} else {
				for i := 0; i < msgs; i++ {
					c.Recv(r, 0, 0)
				}
				end = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	plain, pers := run(false), run(true)
	if pers >= plain {
		t.Fatalf("persistent (%v) not cheaper than plain Isend (%v)", pers, plain)
	}
}

func TestPersistentMisusePanics(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() != 0 {
			c.Recv(r, 0, 1)
			return
		}
		ps := c.SendInit(r, 1, 1, 8)
		ps.Start(r, nil)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double Start did not panic")
				}
			}()
			ps.Start(r, nil)
		}()
		ps.Wait(r)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Wait on inactive did not panic")
				}
			}()
			ps.Wait(r)
		}()
	})
}

func TestPersistentTest(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			r.Idle(sim.Millisecond)
			c.Send(r, 1, 2, 8, "x")
		} else {
			pr := c.RecvInit(r, 0, 2)
			pr.Start(r, nil)
			if ok, _ := pr.Test(r); ok {
				t.Error("Test true before send")
			}
			if !pr.Active() {
				t.Error("request should be active")
			}
			r.Idle(10 * sim.Millisecond)
			ok, st := pr.Test(r)
			if !ok || st.Data.(string) != "x" {
				t.Errorf("Test after arrival: ok=%v st=%+v", ok, st)
			}
			if pr.Active() {
				t.Error("request should deactivate after successful Test")
			}
		}
	})
}
