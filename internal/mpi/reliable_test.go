package mpi

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// TestReliableDropRetransmit loses one named transmission (a planned
// coupon on the first message of the 0->1 pair) and checks the
// retransmission delivers it: the receive completes with the right
// payload and exactly one timer-driven re-send fired.
func TestReliableDropRetransmit(t *testing.T) {
	mf := &netmodel.MsgFaults{
		Drops: map[netmodel.MsgDropKey]bool{{Src: 0, Dst: 1, Seq: 0}: true},
	}
	w := NewWorld(Config{Procs: 2, Seed: 3, MsgFaults: mf})
	var got int64 = -1
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 7, 64, int64(42))
			return
		}
		st := c.Recv(r, 0, 7)
		got = st.Data.(int64)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 42 {
		t.Errorf("payload %d, want 42", got)
	}
	if n := w.Retransmits(); n != 1 {
		t.Errorf("retransmits %d, want 1 (the dropped first attempt)", n)
	}
}

// TestReliableDupSuppression duplicates every transmission and checks
// each message is still released to matching exactly once: a fixed
// number of receives completes and a probe afterwards finds nothing
// extra queued.
func TestReliableDupSuppression(t *testing.T) {
	const msgs = 8
	mf := &netmodel.MsgFaults{DupSeed: 5, DupRate: 1}
	w := NewWorld(Config{Procs: 2, Seed: 3, MsgFaults: mf})
	var sum int64
	var extra bool
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(r, 1, 7, 64, int64(i))
			}
			return
		}
		for i := 0; i < msgs; i++ {
			sum += c.Recv(r, 0, 7).Data.(int64)
		}
		r.Idle(sim.Second) // let any stray duplicate arrive
		extra, _ = c.Probe(r, 0, 7)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := int64(msgs * (msgs - 1) / 2); sum != want {
		t.Errorf("payload sum %d, want %d", sum, want)
	}
	if extra {
		t.Errorf("a duplicate leaked past suppression into the unexpected queue")
	}
}

// TestReliableOrderingUnderLoss streams sequence-stamped payloads
// through a 30%-lossy fabric and checks the receiver sees them in
// order: the protocol's per-source in-order release preserves MPI's
// non-overtaking guarantee however the retransmissions interleave.
func TestReliableOrderingUnderLoss(t *testing.T) {
	const msgs = 64
	mf := &netmodel.MsgFaults{DropSeed: 9, DropRate: 0.3}
	w := NewWorld(Config{Procs: 2, Seed: 3, MsgFaults: mf})
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(r, 1, 7, 64, int64(i))
			}
			return
		}
		for i := 0; i < msgs; i++ {
			if got := c.Recv(r, 0, 7).Data.(int64); got != int64(i) {
				t.Errorf("receive %d got payload %d", i, got)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.Retransmits() == 0 {
		t.Errorf("a 30%% loss rate over %d messages retransmitted nothing", msgs)
	}
}

// TestReliableUnreachable drops every transmission: the retry cap must
// revoke the world with *RankUnreachableError, surfacing through
// Protect on every blocked rank instead of deadlocking.
func TestReliableUnreachable(t *testing.T) {
	mf := &netmodel.MsgFaults{DropSeed: 1, DropRate: 1}
	w := NewWorld(Config{Procs: 2, Seed: 3, MsgFaults: mf, RetryLimit: 3})
	errs := make([]error, 2)
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		errs[r.ID()] = r.Protect(func() {
			if r.ID() == 0 {
				c.Send(r, 1, 7, 64, nil) // buffered: completes locally
				c.Recv(r, 1, 8)          // blocks until the revocation
				return
			}
			c.Recv(r, 0, 7)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for rank, e := range errs {
		ue, ok := e.(*RankUnreachableError)
		if !ok {
			t.Fatalf("rank %d: error %v (%T), want *RankUnreachableError", rank, e, e)
		}
		if ue.Src != 0 || ue.Dst != 1 || ue.Attempts != 4 {
			t.Errorf("rank %d: %+v, want src 0 dst 1 after 4 attempts", rank, ue)
		}
	}
}

// TestWaitSendWindow checks the ack'd sliding window bounds in-flight
// state under loss: after each WaitSendWindow(2) at most two sends are
// unacked, so the backlog never exceeds three, and on a lossless world
// the call is a no-op returning a zero backlog.
func TestWaitSendWindow(t *testing.T) {
	const msgs, window = 32, 2
	mf := &netmodel.MsgFaults{DropSeed: 4, DropRate: 0.3}
	w := NewWorld(Config{Procs: 2, Seed: 3, MsgFaults: mf})
	maxSeen := 0
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				c.IsendAndFree(r, 1, 7, 64, int64(i))
				if n := r.UnackedSends(); n > maxSeen {
					maxSeen = n
				}
				r.WaitSendWindow(window)
				if n := r.UnackedSends(); n > window {
					t.Fatalf("backlog %d after WaitSendWindow(%d)", n, window)
				}
			}
			return
		}
		for i := 0; i < msgs; i++ {
			c.Recv(r, 0, 7)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxSeen > window+1 {
		t.Errorf("max backlog %d, want <= %d", maxSeen, window+1)
	}

	// Lossless world: the call must return instantly with nothing queued.
	w2 := NewWorld(Config{Procs: 2, Seed: 3})
	_, err = w2.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.World().IsendAndFree(r, 1, 7, 64, nil)
			r.WaitSendWindow(0)
			if r.UnackedSends() != 0 {
				t.Errorf("lossless world reports unacked sends")
			}
		} else {
			r.World().Recv(r, 0, 7)
		}
	})
	if err != nil {
		t.Fatalf("Run (lossless): %v", err)
	}
}

// lossyOutcome is the comparable fingerprint of a lossy run used by the
// replay tests.
type lossyOutcome struct {
	end         sim.Time
	committed   int
	retransmits int64
}

// runLossy executes the checkpoint-aware collective body (shared with
// the crash tests) under cfg with either representation and fingerprints
// the run.
func runLossy(t *testing.T, cfg Config, iters int, fibers bool) lossyOutcome {
	t.Helper()
	st := newRecShared(iters, cfg.Procs)
	w := NewWorld(cfg)
	var end sim.Time
	if fibers {
		var err error
		end, err = w.RunFibers(recFiberBody(st))
		if err != nil {
			t.Fatalf("RunFibers: %v", err)
		}
	} else {
		end = mustRun(t, w, recProcBody(st))
	}
	allFinished(t, w)
	o := lossyOutcome{end: end, committed: st.committed, retransmits: w.Retransmits()}
	w.Release()
	return o
}

// TestLossyReplayDeterministic pins the tentpole's replay contract: a
// fixed lossy campaign (drop and duplication rates compiled through the
// faults pipeline) yields bit-identical outcomes across the goroutine
// and fiber representations and across pooled-world reuse.
func TestLossyReplayDeterministic(t *testing.T) {
	const procs, iters = 4, 16
	spec := faults.Spec{Seed: 5, Horizon: 4 * sim.Second, DropRate: 0.25, DupRate: 0.1, Drops: 3}
	inj, err := spec.Plan(procs, 4).Compile(procs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Msg == nil {
		t.Fatal("campaign compiled no message faults")
	}
	cfg := Config{Procs: procs, Seed: 11, MsgFaults: inj.Msg}

	first := runLossy(t, cfg, iters, false)
	if first.committed != iters {
		t.Fatalf("committed %d of %d", first.committed, iters)
	}
	if first.retransmits == 0 {
		t.Fatalf("a 25%% loss campaign retransmitted nothing")
	}
	if got := runLossy(t, cfg, iters, false); got != first {
		t.Errorf("pooled-reuse replay diverged: %+v vs %+v", got, first)
	}
	if got := runLossy(t, cfg, iters, true); got != first {
		t.Errorf("fiber replay diverged: %+v vs %+v", got, first)
	}
	if got := runLossy(t, cfg, iters, true); got != first {
		t.Errorf("pooled fiber replay diverged: %+v vs %+v", got, first)
	}
}

// TestCrashDuringRetransmitReplay composes the crash and message-fault
// families: a rank dies mid-run while the lossy fabric keeps sends
// unacked, recovery rebuilds, and the whole dance replays bit-for-bit
// across representations and pooled reuse.
func TestCrashDuringRetransmitReplay(t *testing.T) {
	const procs, iters = 4, 16
	base := baselineMakespan(t, procs, iters)
	cfg := Config{
		Procs: procs, Seed: 11,
		MsgFaults: &netmodel.MsgFaults{DropSeed: 21, DropRate: 0.2},
		Crashes: []sim.CrashEvent{
			{At: base / 3, Target: 2, Restart: 100 * sim.Microsecond},
		},
	}
	first := runLossy(t, cfg, iters, false)
	if first.committed != iters {
		t.Fatalf("committed %d of %d", first.committed, iters)
	}
	if got := runLossy(t, cfg, iters, false); got != first {
		t.Errorf("pooled-reuse replay diverged: %+v vs %+v", got, first)
	}
	if got := runLossy(t, cfg, iters, true); got != first {
		t.Errorf("fiber replay diverged: %+v vs %+v", got, first)
	}
	if got := runLossy(t, cfg, iters, true); got != first {
		t.Errorf("pooled fiber replay diverged: %+v vs %+v", got, first)
	}
}

// TestLossUnderLinkFlapReplay composes message faults with link
// latency/bandwidth flaps: retransmission timers and stretched wire
// costs interact, and the trajectory still replays bit-for-bit.
func TestLossUnderLinkFlapReplay(t *testing.T) {
	const procs, iters = 4, 12
	cfg := Config{
		Procs: procs, Seed: 11,
		MsgFaults: &netmodel.MsgFaults{DropSeed: 31, DropRate: 0.25},
		LinkFaults: &netmodel.LinkFaults{
			Latency:   []sim.FaultWindow{{Start: 0, End: 2 * sim.Second, Factor: 6}},
			Bandwidth: []sim.FaultWindow{{Start: sim.Second / 2, End: sim.Second, Factor: 4}},
		},
	}
	first := runLossy(t, cfg, iters, false)
	if first.committed != iters {
		t.Fatalf("committed %d of %d", first.committed, iters)
	}
	if got := runLossy(t, cfg, iters, false); got != first {
		t.Errorf("pooled-reuse replay diverged: %+v vs %+v", got, first)
	}
	if got := runLossy(t, cfg, iters, true); got != first {
		t.Errorf("fiber replay diverged: %+v vs %+v", got, first)
	}
}

// TestKillWithUnackedSends extends the kill-collective leak test to the
// reliable protocol: rank 0 dies holding a window's worth of unacked
// sends (its peer never posts the receives), the failure surfaces, the
// world rebuilds, and every body finishes with no rank left parked and
// no reliable state leaking across the rebuild.
func TestKillWithUnackedSends(t *testing.T) {
	const procs = 4
	mf := &netmodel.MsgFaults{DropSeed: 7, DropRate: 0.5}
	body := func(st *recShared) func(r *Rank) {
		return func(r *Rank) {
			c := r.World()
			if r.Incarnation() > 0 {
				st.restarts[r.ID()]++
				r.Rebuild()
			}
			for {
				err := r.Protect(func() {
					if st.committed == 0 && r.Incarnation() == 0 && r.ID() == 0 {
						// Fire-and-forget sends nobody receives: they sit
						// unacked (half the transmissions drop) until the
						// crash below kills this rank mid-window.
						for i := 0; i < 8; i++ {
							c.IsendAndFree(r, 1, 99, 1<<16, nil)
						}
						r.WaitSendWindow(0) // parked here at the kill instant
					}
					c.Barrier(r)
					r.CheckFailed()
					st.committed++
				})
				if err == nil {
					return
				}
				st.fails[r.ID()]++
				r.Rebuild()
			}
		}
	}
	st := newRecShared(1, procs)
	cfg := Config{
		Procs: procs, Seed: 11, MsgFaults: mf,
		Crashes: []sim.CrashEvent{{At: 50 * sim.Microsecond, Target: 0, Restart: 100 * sim.Microsecond}},
	}
	w := NewWorld(cfg)
	mustRun(t, w, body(st))
	allFinished(t, w)
	if st.restarts[0] != 1 {
		t.Errorf("rank 0 restarts %d, want 1", st.restarts[0])
	}
	for i, rs := range w.ranks {
		if n := len(rs.relOut); n != 0 {
			t.Errorf("rank %d leaked %d unacked entries across the rebuild", i, n)
		}
		for src, rb := range rs.relIn {
			if len(rb.held) != 0 {
				t.Errorf("rank %d leaked %d held messages from source %d", i, len(rb.held), src)
			}
		}
		if rs.ioDepth != 0 {
			t.Errorf("rank %d leaked ioDepth %d", i, rs.ioDepth)
		}
	}
	w.Release()
}

// TestMsgFaultConfigValidation checks the loud guards: message-fault
// campaigns refuse the sharded mode, tracing, the legacy wake strategy,
// and malformed tables, each with an error naming the family.
func TestMsgFaultConfigValidation(t *testing.T) {
	mf := &netmodel.MsgFaults{DropSeed: 1, DropRate: 0.1}
	mustPanicLike := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			rec := recover()
			if rec == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if !contains(fmt.Sprint(rec), want) {
				t.Errorf("%s: panic %v, want mention of %q", name, rec, want)
			}
		}()
		fn()
	}
	mustPanicLike("sharded", "message-fault", func() {
		NewWorld(Config{Procs: 4, Seed: 1, Shards: 2, MsgFaults: mf})
	})
	mustPanicLike("tracer", "tracing", func() {
		NewWorld(Config{Procs: 2, Seed: 1, MsgFaults: mf, Tracer: nopTracer{}})
	})
	mustPanicLike("bad rate", "drop rate", func() {
		NewWorld(Config{Procs: 2, Seed: 1, MsgFaults: &netmodel.MsgFaults{DropRate: 1.5}})
	})
	prev := SetLegacyWake(true)
	mustPanicLike("legacy wake", "broadcast wake", func() {
		NewWorld(Config{Procs: 2, Seed: 1, MsgFaults: mf})
	})
	SetLegacyWake(prev)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
