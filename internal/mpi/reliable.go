// Reliable delivery over a lossy fabric.
//
// A message-fault campaign (Config.MsgFaults, compiled by
// internal/faults) makes the network lose or duplicate individual
// message transmissions. Arming it switches every cross-rank send —
// point-to-point, collective internals, and file-I/O token traffic
// alike, in both process representations — onto a deterministic
// reliable-delivery protocol:
//
//   - Each (src, dst) rank pair carries a send sequence number. Every
//     transmission attempt consults netmodel.MsgFaults.Verdict, a pure
//     hash of (seed, src, dst, seq, attempt): delivered, dropped in
//     flight, or duplicated. No generator state is involved, so verdicts
//     are independent of traffic interleaving and representation.
//   - The receiver acks every arrival (including duplicates — the
//     sender may be retransmitting because an earlier ack was slow) and
//     releases messages to matching strictly in sequence order per
//     source, suppressing duplicates and holding out-of-order arrivals
//     in a reorder buffer.
//   - The sender keeps an in-flight entry per unacked message and
//     retransmits on a virtual-time timer with exponential backoff:
//     attempt n fires Config.AckTimeout << n after the expected ack
//     instant. After Config.RetryLimit failed attempts the destination
//     is declared unreachable: the world is revoked exactly as a crash
//     would revoke it (failure.go), surfacing *RankUnreachableError
//     through the same Protect/CheckFailed/Rebuild machinery.
//
// Acks are modeled as reliable zero-byte control messages: they bypass
// NIC serialization and pay one (fault-stretched) wire latency. Loss is
// a payload phenomenon here; an unreliable ack channel would only cause
// extra retransmissions the duplicate suppression already absorbs.
//
// Determinism: with Config.MsgFaults nil nothing in this file runs — no
// sequence numbers, no acks, no timers — so zero-loss campaigns are
// byte-identical to an unfaulted build (TrajectoryVersion stays 2). A
// non-nil table is its own trajectory family (the protocol's acks and
// timer events are part of the schedule), deterministic for a fixed
// (table, seed): replays are bit-for-bit across representations and
// pooled reuse. See the lossy-delivery contract in the internal/sim
// package comment.
package mpi

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// RankUnreachableError reports that the reliable-delivery protocol gave
// up on a destination: RetryLimit retransmissions of one message all
// went unacknowledged. It revokes the world like a crash does and
// surfaces through the same wait entry points and Protect/FProtect
// recovery paths as *RankFailedError.
type RankUnreachableError struct {
	// World is the world name (Config.Name), empty for anonymous worlds.
	World string
	// Src and Dst are the sender and the unreachable destination rank.
	Src, Dst int
	// Seq is the send sequence number of the message that gave up.
	Seq uint64
	// Attempts is the number of transmissions tried.
	Attempts int
	// Epoch is the revocation epoch the failure opened.
	Epoch int
}

func (e *RankUnreachableError) Error() string {
	if e.World != "" {
		return fmt.Sprintf("mpi: %s: rank %d unreachable from rank %d (seq %d, %d attempts, epoch %d)",
			e.World, e.Dst, e.Src, e.Seq, e.Attempts, e.Epoch)
	}
	return fmt.Sprintf("mpi: rank %d unreachable from rank %d (seq %d, %d attempts, epoch %d)",
		e.Dst, e.Src, e.Seq, e.Attempts, e.Epoch)
}

func (e *RankUnreachableError) rankFailure() {}

// relKey identifies one unacked in-flight message on its sender.
type relKey struct {
	dst int
	seq uint64
}

// relEntry is the sender-side in-flight record of one reliably-sent
// message. It doubles as its own retransmission timer (sim.Action): the
// pending timer event keeps it alive until the ack (or the retry cap)
// retires it.
type relEntry struct {
	sender *rankState
	dst    *rankState
	commID int
	src    int // sender's rank within commID
	tag    int
	bytes  int64
	data   interface{}
	ser    sim.Time // unstretched payload serialization time
	seq    uint64
	epoch  int
	// attempt counts transmissions so far (1 after the initial send).
	attempt int
	acked   bool
}

// heldMsg is an out-of-order arrival parked in the reorder buffer with
// the instant its receiver-NIC slot completed.
type heldMsg struct {
	m     *message
	ready sim.Time
}

// relRecvBuf is the receiver's per-source reorder state: next is the
// sequence number owed to matching, held parks later arrivals.
type relRecvBuf struct {
	next uint64
	held map[uint64]heldMsg
}

// reliable reports whether the world runs the reliable-delivery
// protocol.
func (w *World) reliable() bool { return w.cfg.MsgFaults != nil }

// Reliable reports whether the world runs the reliable-delivery
// protocol (Config.MsgFaults armed). Rank bodies use it to gate
// protocol-aware behavior such as send-window pacing.
func (r *Rank) Reliable() bool { return r.w.reliable() }

// UnackedSends reports how many of this rank's reliably-sent messages
// are still awaiting acknowledgement. Always 0 on a lossless world.
func (r *Rank) UnackedSends() int { return len(r.rs.relOut) }

// Retransmits reports the total number of timer-driven retransmissions
// across all ranks. Always 0 on a lossless world.
func (w *World) Retransmits() int64 {
	var total int64
	for _, rs := range w.ranks {
		total += rs.retransmits
	}
	return total
}

// relTimerAt computes the retransmission deadline for a transmission
// whose NIC slot ends at sendEnd: the expected ack instant (wire hop,
// receiver serialization, ack hop back, all at base latency — an
// estimate; only determinism matters, not tightness) plus the
// exponentially backed-off slack for this attempt.
func (w *World) relTimerAt(sendEnd, ser sim.Time, attempt int) sim.Time {
	slack := w.cfg.AckTimeout
	if attempt > 0 {
		shift := attempt
		if shift > 20 {
			shift = 20 // backoff saturates; virtual-time overflow guard
		}
		slack <<= uint(shift)
	}
	return sendEnd + 2*w.cfg.Net.Latency + ser + slack
}

// relSend runs the sender half of the protocol for a freshly issued
// cross-rank message: assigns its sequence number, registers the
// in-flight entry, applies the attempt-0 verdict, and arms the
// retransmission timer. Called from isendOv in place of scheduling the
// delivery directly; the NIC slot and the request's completion instant
// are already fixed, so the send-side cost model is untouched.
func (src *rankState) relSend(m *message, sendEnd, arrive sim.Time) {
	w := src.world
	e := src.eng
	if src.relNextSeq == nil {
		src.relNextSeq = make(map[int]uint64)
		src.relOut = make(map[relKey]*relEntry)
	}
	seq := src.relNextSeq[m.dst.rank]
	src.relNextSeq[m.dst.rank] = seq + 1
	m.rel = true
	m.seq = seq
	m.sender = src

	en := &relEntry{
		sender: src, dst: m.dst,
		commID: m.commID, src: m.src, tag: m.tag, bytes: m.bytes, data: m.data,
		ser: w.cfg.Net.SerializationTime(m.bytes),
		seq: seq, epoch: m.epoch, attempt: 1,
	}
	src.relOut[relKey{dst: m.dst.rank, seq: seq}] = en

	switch w.cfg.MsgFaults.Verdict(src.rank, m.dst.rank, seq, 0) {
	case netmodel.VerdictDrop:
		src.pool.freeMessage(m)
	case netmodel.VerdictDup:
		d := src.pool.newMessage()
		*d = *m
		e.AtAction(arrive, m)
		e.AtAction(arrive, d)
	default:
		e.AtAction(arrive, m)
	}
	e.AtAction(w.relTimerAt(sendEnd, m.ser, 0), en)
}

// Fire is the retransmission timer: a no-op for acked or superseded
// entries, a world revocation at the retry cap, and otherwise a fresh
// transmission of the payload with the next attempt's verdict and a
// backed-off follow-up timer.
func (en *relEntry) Fire() {
	src := en.sender
	w := src.world
	if en.acked || en.epoch != w.epoch {
		return
	}
	if en.attempt > w.cfg.RetryLimit {
		w.unreachable(en)
		return
	}
	e := src.eng
	now := e.Now()
	attempt := en.attempt
	en.attempt++
	src.retransmits++

	// The retransmission pays the same wire costs as the original send,
	// stretched through any link-fault windows covering this instant.
	ser := en.ser
	if lf := w.cfg.LinkFaults; lf != nil {
		ser = lf.StretchSerialization(ser, now)
	}
	_, sendEnd := src.sendLink.Reserve(now, ser)
	lat := w.cfg.Net.Latency
	if lf := w.cfg.LinkFaults; lf != nil {
		lat = lf.StretchLatency(lat, sendEnd)
	}
	arrive := sendEnd + lat

	switch w.cfg.MsgFaults.Verdict(src.rank, en.dst.rank, en.seq, attempt) {
	case netmodel.VerdictDrop:
	case netmodel.VerdictDup:
		e.AtAction(arrive, en.remsg(ser))
		e.AtAction(arrive, en.remsg(ser))
	default:
		e.AtAction(arrive, en.remsg(ser))
	}
	e.AtAction(w.relTimerAt(sendEnd, ser, attempt), en)
}

// remsg builds a pool message carrying the entry's payload for one
// retransmission.
func (en *relEntry) remsg(ser sim.Time) *message {
	m := en.sender.pool.newMessage()
	m.commID, m.src, m.tag, m.bytes, m.data = en.commID, en.src, en.tag, en.bytes, en.data
	m.dst = en.dst
	m.epoch = en.epoch
	m.ser = ser
	m.rel = true
	m.seq = en.seq
	m.sender = en.sender
	return m
}

// relArrive runs the receiver half of the protocol when a reliable
// message's receiver-NIC slot is reserved: ack the transmission, then
// release it to matching in sequence order, suppressing duplicates and
// parking out-of-order arrivals.
func (w *World) relArrive(m *message, ready sim.Time) {
	dst := m.dst
	e := dst.eng
	if m.epoch != w.epoch {
		// Superseded traffic: no ack (the sender-side entry is equally
		// stale and its timer will retire it).
		dst.pool.freeMessage(m)
		return
	}
	// Ack at the instant the payload is fully received plus one wire hop
	// back. Epoch and identity are captured now; the closure survives the
	// message's recycling.
	ackLat := w.cfg.Net.Latency
	if lf := w.cfg.LinkFaults; lf != nil {
		ackLat = lf.StretchLatency(ackLat, ready)
	}
	sender, dstRank, seq, epoch := m.sender, dst.rank, m.seq, m.epoch
	e.At(ready+ackLat, func() { w.relAck(sender, dstRank, seq, epoch) })

	if dst.relIn == nil {
		dst.relIn = make(map[int]*relRecvBuf)
	}
	// The buffer is keyed by the sender's WORLD rank, matching the seq
	// counter's (world src, world dst) pair — m.src is comm-relative, and
	// one pair's stream spans every communicator the two ranks share.
	rb := dst.relIn[m.sender.rank]
	if rb == nil {
		rb = &relRecvBuf{}
		dst.relIn[m.sender.rank] = rb
	}
	switch {
	case m.seq < rb.next:
		// Duplicate of an already-released message (a retransmission that
		// crossed its ack, or a VerdictDup copy): acked above, dropped here.
		dst.pool.freeMessage(m)
	case m.seq == rb.next:
		rb.next++
		w.deliverAt(dst, m, ready)
		// Drain any directly following held arrivals. Their NIC slots
		// completed earlier (reservations are made in arrival order), but
		// in-order release means none is observable before its
		// predecessor: readiness is the running maximum.
		relready := ready
		for {
			h, ok := rb.held[rb.next]
			if !ok {
				break
			}
			delete(rb.held, rb.next)
			rb.next++
			if h.ready > relready {
				relready = h.ready
			}
			w.deliverAt(dst, h.m, relready)
		}
	default:
		if _, dup := rb.held[m.seq]; dup {
			dst.pool.freeMessage(m)
			return
		}
		if rb.held == nil {
			rb.held = make(map[uint64]heldMsg)
		}
		rb.held[m.seq] = heldMsg{m: m, ready: ready}
	}
}

// relAck retires the sender-side entry for an acknowledged message and
// wakes the sender's send-window waiter when the backlog has drained to
// its target.
func (w *World) relAck(sender *rankState, dstRank int, seq uint64, epoch int) {
	if epoch != w.epoch {
		return
	}
	key := relKey{dst: dstRank, seq: seq}
	en := sender.relOut[key]
	if en == nil {
		return // duplicate ack; the entry is already retired
	}
	en.acked = true
	delete(sender.relOut, key)
	if sender.drainQ.Len() > 0 && len(sender.relOut) <= sender.drainTarget {
		sender.drainQ.Broadcast(sender.eng)
	}
}

// unreachable is the retry-cap failure: it revokes the world exactly as
// killRank does — same commit-protocol check, same epoch bump, same
// posted-receive sweep in rank/posting order — but kills and restarts
// nobody; recovery is the application's Protect/Rebuild round trip.
func (w *World) unreachable(en *relEntry) {
	// Commit protocol: once any rank body has returned, the run's output
	// is final and a late failure is dropped (mirrors killRank).
	for _, rs := range w.ranks {
		if rs.finished() {
			return
		}
	}
	e := w.eng
	now := e.Now()
	w.epoch++
	w.revoked = true
	w.failure = &RankUnreachableError{
		World: w.cfg.Name, Src: en.sender.rank, Dst: en.dst.rank,
		Seq: en.seq, Attempts: en.attempt, Epoch: w.epoch,
	}
	for _, peer := range w.ranks {
		w.prScratch = peer.match.pendingPosted(w.prScratch[:0])
		for _, p := range w.prScratch {
			req := p.req
			req.done = true
			req.doneAt = now
			req.timed = false
			req.status = Status{Err: w.failure}
			if req.waiter != nil {
				e.WakeAt(now, req.waiter)
			} else if req.anyw != nil {
				req.anyw.WakeAt(now)
				req.anyw = nil
			}
		}
		peer.match.reset()
	}
	w.relReset()
}

// relReset clears every rank's reliable-delivery state after a
// revocation (crash or unreachability): in-flight entries and sequence
// counters drop so both sides of every pair restart at sequence 0 after
// the rebuild, reorder buffers release their held messages, and parked
// send-window waiters wake to observe the failure. Stale timers and
// acks retire themselves on the epoch check. Pool free order for held
// messages follows map iteration, which is unobservable: recycled
// message objects are fully re-initialized on reuse.
func (w *World) relReset() {
	if !w.reliable() {
		return
	}
	for _, rs := range w.ranks {
		clear(rs.relNextSeq)
		clear(rs.relOut)
		for _, rb := range rs.relIn {
			for _, h := range rb.held {
				rs.pool.freeMessage(h.m)
			}
			clear(rb.held)
			rb.next = 0
		}
		if rs.drainQ.Len() > 0 {
			rs.drainQ.Broadcast(rs.eng)
		}
	}
}

// WaitSendWindow blocks until at most max of this rank's reliable sends
// remain unacknowledged — the ack'd sliding window that bounds a
// fire-and-forget producer's in-flight state. On a lossless world (or a
// backlog already within the window) it returns immediately without
// flushing debt or yielding, so window-paced bodies are byte-identical
// to unpaced ones when the campaign is empty. If the world is revoked
// while waiting, the pending failure surfaces as a panic for Protect,
// like every other blocking operation.
func (r *Rank) WaitSendWindow(max int) {
	rs := r.rs
	if len(rs.relOut) <= max {
		return
	}
	r.proc.FlushDebt()
	rs.drainTarget = max
	for len(rs.relOut) > max {
		if r.w.revoked {
			panic(r.w.failure)
		}
		rs.drainQ.Wait(r.proc, "mpi send-window")
	}
	if r.w.revoked {
		panic(r.w.failure)
	}
}

// FWaitSendWindow is WaitSendWindow for fiber-backed ranks, continuing
// with next once the backlog is within the window. It occupies the same
// queue positions and consumes the same events as the goroutine form,
// and diverts to the FProtect failure continuation on revocation.
func (r *Rank) FWaitSendWindow(max int, next sim.StepFunc) sim.StepFunc {
	rs := r.rs
	if len(rs.relOut) <= max {
		return next
	}
	f := r.fib
	return f.FlushDebt(func(_ *sim.Fiber) sim.StepFunc {
		rs.drainTarget = max
		var loop sim.StepFunc
		loop = func(_ *sim.Fiber) sim.StepFunc {
			if len(rs.relOut) > max {
				if r.w.revoked {
					return r.failNow()
				}
				return rs.drainQ.WaitFiber(f, "mpi send-window", loop)
			}
			if r.w.revoked {
				return r.failNow()
			}
			return next
		}
		return loop(nil)
	})
}
