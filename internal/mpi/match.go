package mpi

import "sort"

// Message-matching index.
//
// The runtime used to match messages against posted receives (and receives
// against queued unexpected messages) with linear scans and O(n) slice
// deletions, which dominated profiles at scale: a consumer that falls
// behind its producers accumulates thousands of unexpected messages, and
// every match memmoved the whole tail. The matchIndex replaces both scans
// with hash buckets keyed by (communicator, source, tag):
//
//   - Posted receives are bucketed by their selector verbatim, wildcards
//     included, so a (comm, AnySource, tag) receive lives in its own
//     bucket. An arriving message can only be claimed by one of four
//     selector keys — (src,tag), (Any,tag), (src,Any), (Any,Any) — and the
//     earliest-posted among those four bucket heads wins, which is exactly
//     the posting-order scan the linear version performed.
//   - Unexpected messages are bucketed by their concrete (comm, src, tag)
//     key in arrival order, so a concrete receive pops its bucket head in
//     O(1). For wildcard receives the index additionally keeps a global
//     arrival list; the earliest live arrival that matches the selector is
//     necessarily the head of its own bucket (any earlier message in that
//     bucket would match too), so removal is still a bucket pop-front.
//
// Both directions preserve MPI's non-overtaking guarantee per (source,
// tag) and reproduce the linear scans' match order exactly: the same
// simulation produces bit-identical virtual-time trajectories.
//
// Bucket queues use head indices instead of slice deletions, and the
// arrival list uses lazy deletion (consumed flags) with periodic
// compaction, so steady-state matching allocates nothing.

// matchKey identifies a matching bucket: communicator context plus source
// and tag selectors. Posted receives use their selector values verbatim
// (AnySource/AnyTag included); message keys are always concrete.
type matchKey struct {
	comm, src, tag int
}

func (m *message) key() matchKey { return matchKey{m.commID, m.src, m.tag} }

// recvFIFO is a posting-ordered queue of pending receives with O(1)
// pop-front via a head index.
type recvFIFO struct {
	items []*postedRecv
	head  int
}

func (q *recvFIFO) empty() bool       { return q.head >= len(q.items) }
func (q *recvFIFO) peek() *postedRecv { return q.items[q.head] }

func (q *recvFIFO) push(p *postedRecv) { q.items = append(q.items, p) }

func (q *recvFIFO) pop() *postedRecv {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return p
}

// msgFIFO is an arrival-ordered queue of unexpected messages with O(1)
// pop-front. A message can sit in several queues at once (its concrete
// bucket plus any wildcard side-lists), so consumption is recorded on the
// message and queues skip consumed entries lazily when their head is
// inspected.
type msgFIFO struct {
	items []*message
	head  int
}

func (q *msgFIFO) push(m *message) { q.items = append(q.items, m) }

// first returns the earliest live (unconsumed) message, trimming consumed
// entries off the front, or nil if none remain.
func (q *msgFIFO) first() *message {
	for q.head < len(q.items) && q.items[q.head].consumed {
		q.items[q.head] = nil
		q.head++
	}
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return nil
	}
	return q.items[q.head]
}

// popHead removes the current head. Callers must have established it via
// first.
func (q *msgFIFO) popHead() {
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
}

// firstReady returns the earliest live message that is fully received as
// of now (readyAt <= now), or nil. Unlike first it does not assume ready
// instants are monotonic in arrival order (self-sends are ready
// immediately and may sit behind in-flight network messages), so it scans
// live entries.
func (q *msgFIFO) firstReady(now simTimeT) *message {
	for _, m := range q.items[q.head:] {
		if m != nil && !m.consumed && m.readyAt <= now {
			return m
		}
	}
	return nil
}

// maybeCompact drops consumed entries when they dominate the queue.
// liveBound is an upper bound on the queue's live entries (the rank's
// total live count works); keeping the queue within a factor of it bounds
// memory by the live backlog, not by total traffic.
func (q *msgFIFO) maybeCompact(liveBound int) {
	if n := len(q.items) - q.head; n >= 64 && n > 4*liveBound {
		out := q.items[:0]
		for _, m := range q.items[q.head:] {
			if m != nil && !m.consumed {
				out = append(out, m)
			}
		}
		tail := q.items[len(out):]
		for i := range tail {
			tail[i] = nil
		}
		q.items = out
		q.head = 0
	}
}

// matchIndex is one rank's matching state: posted receives and unexpected
// messages, both indexed for O(1) matching on the concrete paths.
type matchIndex struct {
	postSeq uint64
	posted  map[matchKey]*recvFIFO
	// shapes counts posted receives by selector shape (see shapeOf), so
	// message delivery probes only the selector keys that can exist —
	// usually one — instead of all four.
	shapes [4]int
	// sideShapes records which wildcard side-list shapes have ever been
	// built, gating the extra pushes in addUnexpected.
	sideShapes [4]bool

	queued map[matchKey]*msgFIFO // concrete (comm, src, tag) buckets
	// side holds wildcard-selector views of the unexpected queue — keys
	// are (comm, AnySource, tag), (comm, src, AnyTag) or (comm,
	// AnySource, AnyTag) — in arrival order. Each is built on first use
	// from the arrival list and maintained incrementally afterwards, so
	// repeated wildcard receives (the stream library posts AnySource
	// receives continuously) match in O(1) instead of rescanning.
	side       map[matchKey]*msgFIFO
	arrivals   []*message // arrival order, lazily deleted via m.consumed
	arrHead    int
	live       int // unconsumed messages in arrivals
	selfQueued int // live queued self-sends (always ready; break readyAt monotonicity)

	// One-entry caches in front of the bucket maps: steady-state traffic
	// reuses one selector per rank (a consumer reposting the same
	// receive, a neighbour exchange on one tag), and buckets are never
	// removed from the maps, so cached pointers stay valid.
	lastPostKey matchKey
	lastPostQ   *recvFIFO
	lastSelKey  matchKey
	lastSelQ    *msgFIFO
}

// reset returns the index to its initial state for world reuse, keeping
// bucket-map and queue capacity. Entries still referenced (receives posted
// but never matched at the end of a run) are dropped for the GC; pooled
// recycling only ever happens on the matched paths.
func (x *matchIndex) reset() {
	x.postSeq = 0
	for _, q := range x.posted {
		for i := range q.items {
			q.items[i] = nil
		}
		q.items = q.items[:0]
		q.head = 0
	}
	for _, q := range x.queued {
		for i := range q.items {
			q.items[i] = nil
		}
		q.items = q.items[:0]
		q.head = 0
	}
	// Side lists are views rebuilt on demand; drop them wholesale.
	x.side = nil
	x.shapes = [4]int{}
	x.sideShapes = [4]bool{}
	for i := range x.arrivals {
		x.arrivals[i] = nil
	}
	x.arrivals = x.arrivals[:0]
	x.arrHead = 0
	x.live = 0
	x.selfQueued = 0
	x.lastPostKey, x.lastPostQ = matchKey{}, nil
	x.lastSelKey, x.lastSelQ = matchKey{}, nil
}

// wildcard reports whether the selector uses AnySource or AnyTag.
func wildcard(src, tag int) bool { return src == AnySource || tag == AnyTag }

// shapeOf maps a selector to its shape index: bit 0 set for AnySource,
// bit 1 for AnyTag.
func shapeOf(src, tag int) int {
	s := 0
	if src == AnySource {
		s |= 1
	}
	if tag == AnyTag {
		s |= 2
	}
	return s
}

// selectorMatches reports whether a (src, tag) selector accepts m within
// commID's context.
func selectorMatches(commID, src, tag int, m *message) bool {
	return commID == m.commID &&
		(src == AnySource || src == m.src) &&
		(tag == AnyTag || tag == m.tag)
}

// post registers a pending receive, stamping it with posting order.
func (x *matchIndex) post(p *postedRecv) {
	x.postSeq++
	p.seq = x.postSeq
	k := matchKey{p.commID, p.src, p.tag}
	q := x.lastPostQ
	if q == nil || k != x.lastPostKey {
		if x.posted == nil {
			x.posted = make(map[matchKey]*recvFIFO)
		}
		q = x.posted[k]
		if q == nil {
			q = &recvFIFO{}
			x.posted[k] = q
		}
		x.lastPostKey, x.lastPostQ = k, q
	}
	q.push(p)
	x.shapes[shapeOf(p.src, p.tag)]++
}

// takePosted removes and returns the earliest-posted receive whose
// selector accepts m, or nil. Only four selector keys can accept a
// concrete message, so the search is four bucket-head peeks.
func (x *matchIndex) takePosted(m *message) *postedRecv {
	if len(x.posted) == 0 {
		return nil
	}
	var best *recvFIFO
	candidates := [4]matchKey{
		{m.commID, m.src, m.tag},
		{m.commID, AnySource, m.tag},
		{m.commID, m.src, AnyTag},
		{m.commID, AnySource, AnyTag},
	}
	for shape, k := range candidates {
		if x.shapes[shape] == 0 {
			continue
		}
		q := x.lastPostQ
		if q == nil || k != x.lastPostKey {
			q = x.posted[k]
		}
		if q != nil && !q.empty() {
			if best == nil || q.peek().seq < best.peek().seq {
				best = q
			}
		}
	}
	if best == nil {
		return nil
	}
	p := best.pop()
	x.shapes[shapeOf(p.src, p.tag)]--
	return p
}

// addUnexpected queues a message that found no posted receive.
func (x *matchIndex) addUnexpected(m *message) {
	if x.queued == nil {
		x.queued = make(map[matchKey]*msgFIFO)
	}
	k := m.key()
	q := x.queued[k]
	if q == nil {
		q = &msgFIFO{}
		x.queued[k] = q
	}
	q.push(m)
	q.maybeCompact(x.live + 1)
	if x.sideShapes[1] {
		if s := x.side[matchKey{m.commID, AnySource, m.tag}]; s != nil {
			s.push(m)
			s.maybeCompact(x.live + 1)
		}
	}
	if x.sideShapes[2] {
		if s := x.side[matchKey{m.commID, m.src, AnyTag}]; s != nil {
			s.push(m)
			s.maybeCompact(x.live + 1)
		}
	}
	if x.sideShapes[3] {
		if s := x.side[matchKey{m.commID, AnySource, AnyTag}]; s != nil {
			s.push(m)
			s.maybeCompact(x.live + 1)
		}
	}
	x.arrivals = append(x.arrivals, m)
	x.live++
	if m.self {
		x.selfQueued++
	}
}

// consume marks m matched. Queues it still sits in skip it lazily.
func (x *matchIndex) consume(m *message) {
	m.consumed = true
	x.live--
	if m.self {
		x.selfQueued--
	}
	x.advanceArrHead()
	// Compact the arrival list when lazy deletions dominate it, so a
	// long-running rank's memory stays proportional to its live backlog.
	if len(x.arrivals) >= 64 && x.live*4 < len(x.arrivals)-x.arrHead {
		x.compact()
	}
}

// sideList returns (building on first use) the arrival-ordered view of
// the unexpected queue for a wildcard selector key.
func (x *matchIndex) sideList(k matchKey) *msgFIFO {
	if q := x.side[k]; q != nil {
		return q
	}
	q := &msgFIFO{}
	for _, m := range x.arrivals[x.arrHead:] {
		if m != nil && !m.consumed && selectorMatches(k.comm, k.src, k.tag, m) {
			q.push(m)
		}
	}
	if x.side == nil {
		x.side = make(map[matchKey]*msgFIFO)
	}
	x.side[k] = q
	x.sideShapes[shapeOf(k.src, k.tag)] = true
	return q
}

// advanceArrHead skips consumed entries at the front of the arrival list,
// recycling the backing array once drained.
func (x *matchIndex) advanceArrHead() {
	for x.arrHead < len(x.arrivals) && x.arrivals[x.arrHead].consumed {
		x.arrivals[x.arrHead] = nil
		x.arrHead++
	}
	if x.arrHead == len(x.arrivals) {
		x.arrivals = x.arrivals[:0]
		x.arrHead = 0
	}
}

// compact rewrites the arrival list to hold only live messages.
func (x *matchIndex) compact() {
	out := x.arrivals[:0]
	for _, m := range x.arrivals[x.arrHead:] {
		if m != nil && !m.consumed {
			out = append(out, m)
		}
	}
	tail := x.arrivals[len(out):]
	for i := range tail {
		tail[i] = nil
	}
	x.arrivals = out
	x.arrHead = 0
}

// selectorQueue returns the arrival-ordered queue the (src, tag) selector
// reads from: the concrete bucket, or a wildcard side-list.
func (x *matchIndex) selectorQueue(commID, src, tag int) *msgFIFO {
	k := matchKey{commID, src, tag}
	if x.lastSelQ != nil && k == x.lastSelKey {
		return x.lastSelQ
	}
	var q *msgFIFO
	if !wildcard(src, tag) {
		q = x.queued[k]
	} else {
		q = x.sideList(k)
	}
	if q != nil {
		x.lastSelKey, x.lastSelQ = k, q
	}
	return q
}

// firstReadyIn returns the earliest live message in q that is fully
// received as of now, or nil. With no self-sends queued, readiness is
// monotonic in arrival order, so only the head needs checking; queued
// self-sends are always ready but may sit behind in-flight network
// messages, forcing a scan.
func (x *matchIndex) firstReadyIn(q *msgFIFO, now simTimeT) *message {
	if x.selfQueued == 0 {
		if m := q.first(); m != nil && m.readyAt <= now {
			return m
		}
		return nil
	}
	return q.firstReady(now)
}

// takeQueued removes and returns the unexpected message the (src, tag)
// selector matches in commID's context, or nil: the earliest-arrived
// fully-received message if one exists (so a receive always takes the
// message a Probe just reported), else the earliest-arrived in-flight
// message, which the caller completes at its readiness instant.
func (x *matchIndex) takeQueued(commID, src, tag int, now simTimeT) *message {
	if x.live == 0 {
		return nil
	}
	q := x.selectorQueue(commID, src, tag)
	if q == nil {
		return nil
	}
	m := x.firstReadyIn(q, now)
	if m == nil {
		m = q.first()
	}
	if m == nil {
		return nil
	}
	if m == q.first() {
		q.popHead()
	}
	x.consume(m)
	return m
}

// pendingPosted appends every pending posted receive to buf in posting
// (seq) order and returns it. Bucket-map iteration order is
// nondeterministic, so the collected entries are sorted by seq before
// returning — the failure path (killRank) fails them in that order, which
// keeps peer-notification wake events at deterministic (t, seq) positions.
func (x *matchIndex) pendingPosted(buf []*postedRecv) []*postedRecv {
	for _, q := range x.posted {
		for _, p := range q.items[q.head:] {
			if p != nil {
				buf = append(buf, p)
			}
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	return buf
}

// findQueued returns the earliest-arrived live message accepted by the
// selector without removing it, or nil.
func (x *matchIndex) findQueued(commID, src, tag int) *message {
	if x.live == 0 {
		return nil
	}
	q := x.selectorQueue(commID, src, tag)
	if q == nil {
		return nil
	}
	return q.first()
}

// findQueuedReady returns the earliest-arrived live message accepted by
// the selector that is fully received as of now, without removing it, or
// nil. Used by Probe, which must see a delivered self-send even when an
// earlier-arrived network message is still on the receiver NIC; a
// receive posted after the Probe takes the same message (takeQueued
// prefers ready messages with the same scan order).
func (x *matchIndex) findQueuedReady(commID, src, tag int, now simTimeT) *message {
	if x.live == 0 {
		return nil
	}
	q := x.selectorQueue(commID, src, tag)
	if q == nil {
		return nil
	}
	return x.firstReadyIn(q, now)
}
