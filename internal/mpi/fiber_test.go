package mpi

import (
	"testing"

	"repro/internal/sim"
)

// runBothWays runs the same logical program once with goroutine rank
// bodies and once with fiber rank bodies and asserts identical final
// virtual time and identical engine event counts — the representation-
// equivalence contract at the runtime level.
func runBothWays(t *testing.T, procs int, procBody func(*Rank), fibBody FiberMain) sim.Time {
	t.Helper()
	wp := NewWorld(Config{Procs: procs, Seed: 42})
	pEnd, err := wp.Run(procBody)
	if err != nil {
		t.Fatalf("proc run: %v", err)
	}
	pEvents := wp.Engine().Events()

	wf := NewWorld(Config{Procs: procs, Seed: 42})
	fEnd, err := wf.RunFibers(fibBody)
	if err != nil {
		t.Fatalf("fiber run: %v", err)
	}
	fEvents := wf.Engine().Events()

	if pEnd != fEnd {
		t.Fatalf("final time: procs %v, fibers %v", pEnd, fEnd)
	}
	if pEvents != fEvents {
		t.Fatalf("event count: procs %d, fibers %d", pEvents, fEvents)
	}
	return fEnd
}

// TestFiberPingPongMatchesProcs exercises FSend/FRecv against Send/Recv:
// a two-rank request-reply loop with interleaved compute must produce a
// bit-identical trajectory under both representations.
func TestFiberPingPongMatchesProcs(t *testing.T) {
	const rounds = 20
	procBody := func(r *Rank) {
		c := r.World()
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				r.Compute(3 * sim.Microsecond)
				c.Send(r, 1, 7, 1024, i)
				c.Recv(r, 1, 8)
			} else {
				c.Recv(r, 0, 7)
				r.Compute(5 * sim.Microsecond)
				c.Send(r, 0, 8, 512, i)
			}
		}
	}
	fibBody := func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		i := 0
		var loop sim.StepFunc
		loop = func(_ *sim.Fiber) sim.StepFunc {
			if i >= rounds {
				return nil
			}
			n := i
			i++
			if r.ID() == 0 {
				return r.FCompute(3*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
					return c.FSend(r, 1, 7, 1024, n, func(_ *sim.Fiber) sim.StepFunc {
						return c.FRecv(r, 1, 8, func(Status) sim.StepFunc { return loop })
					})
				})
			}
			return c.FRecv(r, 0, 7, func(Status) sim.StepFunc {
				return r.FCompute(5*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
					return c.FSend(r, 0, 8, 512, n, func(_ *sim.Fiber) sim.StepFunc { return loop })
				})
			})
		}
		return loop
	}
	runBothWays(t, 2, procBody, fibBody)
}

// TestFiberCollectivesMatchProcs drives barrier, allreduce and allgatherv
// through both representations at a non-power-of-two size (covering the
// reduce+bcast fallback) and checks payload correctness on the fiber side.
func TestFiberCollectivesMatchProcs(t *testing.T) {
	const procs = 6
	procBody := func(r *Rank) {
		c := r.World()
		c.Barrier(r)
		r.Compute(sim.Time(r.ID()+1) * sim.Microsecond)
		sum := c.Allreduce(r, Part{Bytes: 8, Data: float64(r.ID())}, SumFloat64, nil)
		if got := sum.Data.(float64); got != 15 {
			t.Errorf("proc allreduce sum %v, want 15", got)
		}
		parts := c.Allgatherv(r, Part{Bytes: 8, Data: r.ID() * 10})
		for i, p := range parts {
			if p.Data.(int) != i*10 {
				t.Errorf("proc allgather[%d] = %v", i, p.Data)
			}
		}
		c.Barrier(r)
	}
	fibBody := func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		return c.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
			return r.FCompute(sim.Time(r.ID()+1)*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
				return c.FAllreduce(r, Part{Bytes: 8, Data: float64(r.ID())}, SumFloat64, nil, func(sum Part) sim.StepFunc {
					if got := sum.Data.(float64); got != 15 {
						t.Errorf("fiber allreduce sum %v, want 15", got)
					}
					return c.FAllgatherv(r, Part{Bytes: 8, Data: r.ID() * 10}, func(parts []Part) sim.StepFunc {
						for i, p := range parts {
							if p.Data.(int) != i*10 {
								t.Errorf("fiber allgather[%d] = %v", i, p.Data)
							}
						}
						return c.FBarrier(r, nil)
					})
				})
			})
		})
	}
	runBothWays(t, procs, procBody, fibBody)
}

// TestFiberWaitAllMatchesProcs exercises the coalescing FWaitAll against
// WaitAll with a mix of sends and receives.
func TestFiberWaitAllMatchesProcs(t *testing.T) {
	const procs = 4
	procBody := func(r *Rank) {
		c := r.World()
		next := (r.ID() + 1) % procs
		prev := (r.ID() - 1 + procs) % procs
		for it := 0; it < 5; it++ {
			reqs := []*Request{
				c.Isend(r, next, 1, 2048, nil),
				c.Isend(r, prev, 2, 2048, nil),
				c.Irecv(r, prev, 1),
				c.Irecv(r, next, 2),
			}
			r.Compute(2 * sim.Microsecond)
			c.WaitAll(r, reqs...)
		}
	}
	fibBody := func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		next := (r.ID() + 1) % procs
		prev := (r.ID() - 1 + procs) % procs
		it := 0
		var loop sim.StepFunc
		loop = func(_ *sim.Fiber) sim.StepFunc {
			if it >= 5 {
				return nil
			}
			it++
			reqs := []*Request{
				c.FIsend(r, next, 1, 2048, nil),
				c.FIsend(r, prev, 2, 2048, nil),
				c.Irecv(r, prev, 1),
				c.Irecv(r, next, 2),
			}
			return r.FCompute(2*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
				return c.FWaitAll(r, reqs, func([]Status) sim.StepFunc { return loop })
			})
		}
		return loop
	}
	runBothWays(t, procs, procBody, fibBody)
}

// TestFiberWaitAnyMatchesProcs exercises FWaitAny ordering against
// WaitAny: a consumer draining two producers first-come-first-served.
func TestFiberWaitAnyMatchesProcs(t *testing.T) {
	const msgs = 8
	procBody := func(r *Rank) {
		c := r.World()
		switch r.ID() {
		case 0, 1:
			for i := 0; i < msgs; i++ {
				r.Compute(sim.Time(1+r.ID()*3) * sim.Microsecond)
				c.Send(r, 2, r.ID(), 4096, nil)
			}
		case 2:
			reqs := []*Request{c.Irecv(r, 0, 0), c.Irecv(r, 1, 1)}
			for got := 0; got < 2*msgs; got++ {
				idx, _ := c.WaitAny(r, reqs)
				r.Compute(2 * sim.Microsecond)
				reqs[idx] = c.Irecv(r, idx, idx)
				if rem := 2*msgs - got - 1; rem < 2 {
					reqs[1-idx] = nil
				}
			}
		}
	}
	fibBody := func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		switch r.ID() {
		case 0, 1:
			i := 0
			var loop sim.StepFunc
			loop = func(_ *sim.Fiber) sim.StepFunc {
				if i >= msgs {
					return nil
				}
				i++
				return r.FCompute(sim.Time(1+r.ID()*3)*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
					return c.FSend(r, 2, r.ID(), 4096, nil, loop)
				})
			}
			return loop
		default:
			reqs := []*Request{c.Irecv(r, 0, 0), c.Irecv(r, 1, 1)}
			got := 0
			var loop sim.StepFunc
			loop = func(_ *sim.Fiber) sim.StepFunc {
				if got >= 2*msgs {
					return nil
				}
				return c.FWaitAny(r, reqs, func(idx int, _ Status) sim.StepFunc {
					got++
					return r.FCompute(2*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
						reqs[idx] = c.Irecv(r, idx, idx)
						if rem := 2*msgs - got; rem < 2 {
							reqs[1-idx] = nil
						}
						return loop
					})
				})
			}
			return loop
		}
	}
	runBothWays(t, 3, procBody, fibBody)
}

// TestWorldPoolReuseDeterminism checks that a world recycled through
// Release/NewWorld reproduces a fresh world's trajectory exactly, across
// different sizes and both representations.
func TestWorldPoolReuseDeterminism(t *testing.T) {
	body := func(r *Rank) {
		c := r.World()
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() - 1 + r.Size()) % r.Size()
		for i := 0; i < 4; i++ {
			c.Send(r, next, 0, 8192, nil)
			c.Recv(r, prev, 0)
			c.Allreduce(r, Part{Bytes: 8, Data: 1.0}, SumFloat64, nil)
		}
	}
	run := func(procs int) sim.Time {
		w := NewWorld(Config{Procs: procs, Seed: 9})
		end, err := w.Run(body)
		if err != nil {
			t.Fatal(err)
		}
		w.Release()
		return end
	}
	first8 := run(8)
	run(16) // force a differently-sized reset in between
	run(3)
	if again := run(8); again != first8 {
		t.Fatalf("recycled world diverged: %v vs %v", again, first8)
	}
}

// Aliases keeping the fiber benchmarks readable.
type (
	simFiber = sim.Fiber
	simStep  = sim.StepFunc
)

// TestStatusScratchAllocFree guards WaitAll's status-slice reuse: once
// warmed to a size, the rank scratch must hand out slices without
// allocating.
func TestStatusScratchAllocFree(t *testing.T) {
	rs := &rankState{}
	rs.statusScratch(8)
	if a := testing.AllocsPerRun(200, func() { rs.statusScratch(8) }); a != 0 {
		t.Errorf("statusScratch allocates %.0f allocs/op after warm-up, want 0", a)
	}
}

// TestFiberWaitAllocFree guards the pooled fiber wait states: a warmed
// world must serve fwait/fwaitAny/fwaitAll cycles from its freelists.
func TestFiberWaitAllocFree(t *testing.T) {
	w := NewWorld(Config{Procs: 2, Seed: 3})
	body := func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		i := 0
		var loop sim.StepFunc
		loop = func(_ *sim.Fiber) sim.StepFunc {
			if i >= 50 {
				return nil
			}
			i++
			if r.ID() == 0 {
				return c.FSend(r, 1, 0, 64, nil, func(_ *sim.Fiber) sim.StepFunc {
					return c.FRecv(r, 1, 0, func(Status) sim.StepFunc { return loop })
				})
			}
			return c.FRecv(r, 0, 0, func(Status) sim.StepFunc {
				return c.FSend(r, 0, 0, 64, nil, loop)
			})
		}
		return loop
	}
	if _, err := w.RunFibers(body); err != nil {
		t.Fatal(err)
	}
	if len(w.fwFree) == 0 {
		t.Fatal("no pooled fwait states after a fiber run")
	}
	free := len(w.fwFree)
	w.Release()
	w2 := NewWorld(Config{Procs: 2, Seed: 3})
	if _, err := w2.RunFibers(body); err != nil {
		t.Fatal(err)
	}
	if got := len(w2.fwFree); got > free {
		t.Errorf("recycled world grew its fwait pool to %d (was %d): waits are allocating new states", got, free)
	}
}
