package mpi

import (
	"testing"
	"testing/quick"
)

func cartWorld(t *testing.T, p int) *Comm {
	t.Helper()
	return NewWorld(Config{Procs: p, Seed: 1}).world
}

func TestBalancedDims(t *testing.T) {
	cases := []struct {
		size, ndims int
		want        []int
	}{
		{8, 3, []int{2, 2, 2}},
		{64, 3, []int{4, 4, 4}},
		{32, 3, []int{4, 4, 2}},
		{8192, 3, []int{32, 16, 16}},
		{7, 3, []int{7, 1, 1}},
		{12, 2, []int{4, 3}},
		{1, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got := BalancedDims(c.size, c.ndims)
		prod := 1
		for _, d := range got {
			prod *= d
		}
		if prod != c.size {
			t.Fatalf("BalancedDims(%d,%d) = %v does not multiply to size", c.size, c.ndims, got)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("BalancedDims(%d,%d) = %v, want %v", c.size, c.ndims, got, c.want)
				break
			}
		}
	}
}

// Property: BalancedDims always covers the size exactly and is sorted
// descending.
func TestBalancedDimsProperty(t *testing.T) {
	f := func(sz uint16, nd uint8) bool {
		size := int(sz)%4096 + 1
		ndims := int(nd)%4 + 1
		dims := BalancedDims(size, ndims)
		prod := 1
		for i, d := range dims {
			if d <= 0 {
				return false
			}
			if i > 0 && dims[i] > dims[i-1] {
				return false
			}
			prod *= d
		}
		return prod == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	c := cartWorld(t, 24)
	ct := NewCart(c, []int{4, 3, 2}, false)
	for rank := 0; rank < 24; rank++ {
		coords := ct.Coords(rank)
		if got := ct.RankAt(coords); got != rank {
			t.Fatalf("rank %d -> %v -> %d", rank, coords, got)
		}
	}
}

func TestCartRowMajorLayout(t *testing.T) {
	c := cartWorld(t, 12)
	ct := NewCart(c, []int{2, 3, 2}, false)
	// Last dimension varies fastest: rank 1 should be (0,0,1).
	coords := ct.Coords(1)
	if coords[0] != 0 || coords[1] != 0 || coords[2] != 1 {
		t.Fatalf("coords(1) = %v, want [0 0 1]", coords)
	}
	coords = ct.Coords(2)
	if coords[0] != 0 || coords[1] != 1 || coords[2] != 0 {
		t.Fatalf("coords(2) = %v, want [0 1 0]", coords)
	}
}

func TestCartShiftNonPeriodic(t *testing.T) {
	c := cartWorld(t, 8)
	ct := NewCart(c, []int{2, 2, 2}, false)
	// Rank 0 = (0,0,0): negative neighbours are missing.
	src, dst := ct.Shift(0, 0, 1)
	if src != -1 {
		t.Errorf("rank 0 dim 0 source = %d, want -1 (boundary)", src)
	}
	if dst != 4 { // (1,0,0)
		t.Errorf("rank 0 dim 0 dest = %d, want 4", dst)
	}
}

func TestCartShiftPeriodic(t *testing.T) {
	c := cartWorld(t, 8)
	ct := NewCart(c, []int{2, 2, 2}, true)
	src, dst := ct.Shift(0, 0, 1)
	if src != 4 || dst != 4 {
		t.Errorf("periodic shift of rank 0 = (%d,%d), want (4,4)", src, dst)
	}
}

func TestCartNeighborsCountInterior(t *testing.T) {
	c := cartWorld(t, 27)
	ct := NewCart(c, []int{3, 3, 3}, false)
	center := ct.RankAt([]int{1, 1, 1})
	nb := ct.Neighbors(center)
	if len(nb) != 6 {
		t.Fatalf("interior rank has %d neighbours, want 6", len(nb))
	}
	corner := ct.RankAt([]int{0, 0, 0})
	nb = ct.Neighbors(corner)
	if len(nb) != 3 {
		t.Fatalf("corner rank has %d neighbours, want 3", len(nb))
	}
}

func TestCartNeighborsPeriodicAlwaysSix(t *testing.T) {
	c := cartWorld(t, 27)
	ct := NewCart(c, []int{3, 3, 3}, true)
	for rank := 0; rank < 27; rank++ {
		if nb := ct.Neighbors(rank); len(nb) != 6 {
			t.Fatalf("periodic rank %d has %d neighbours", rank, len(nb))
		}
	}
}

func TestCartForwardSteps(t *testing.T) {
	c := cartWorld(t, 1000)
	ct := NewCart(c, []int{10, 10, 10}, true)
	if got := ct.ForwardSteps(); got != 30 {
		t.Fatalf("ForwardSteps = %d, want 30 (paper's 10x10x10 example)", got)
	}
}

func TestCartSizeMismatchPanics(t *testing.T) {
	c := cartWorld(t, 8)
	defer func() {
		if recover() == nil {
			t.Error("dims mismatch did not panic")
		}
	}()
	NewCart(c, []int{3, 3}, false)
}
