package mpi

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// Property/fuzz coverage for the matching index: random send/recv
// programs — wildcard selectors, mixed tags and communicators, self-sends
// and in-flight network messages — are executed against both the
// matchIndex and a naive linear-scan reference that implements the
// documented semantics directly (earliest-posted receive wins a message;
// a receive takes the earliest-arrived ready message, else the
// earliest-arrived in-flight one; FIFO per arrival order throughout).
// Every decision the two matchers make must be identical.
//
// The program generator respects the runtime's invariants, because the
// index's fast paths assume them: virtual time never goes backwards,
// non-self messages become ready in arrival order (receiver-NIC
// reservations are made in arrival order), and self-sends are ready at
// delivery.

// refMatcher is the linear-scan reference.
type refMatcher struct {
	posted []*postedRecv // posting order
	queued []*message    // arrival order
}

func (rm *refMatcher) post(p *postedRecv) { rm.posted = append(rm.posted, p) }

func (rm *refMatcher) takePosted(m *message) *postedRecv {
	for i, p := range rm.posted {
		if selectorMatches(p.commID, p.src, p.tag, m) {
			rm.posted = append(rm.posted[:i], rm.posted[i+1:]...)
			return p
		}
	}
	return nil
}

func (rm *refMatcher) addUnexpected(m *message) { rm.queued = append(rm.queued, m) }

func (rm *refMatcher) findQueued(commID, src, tag int) (int, *message) {
	for i, m := range rm.queued {
		if selectorMatches(commID, src, tag, m) {
			return i, m
		}
	}
	return -1, nil
}

func (rm *refMatcher) findQueuedReady(commID, src, tag int, now sim.Time) (int, *message) {
	for i, m := range rm.queued {
		if m.readyAt <= now && selectorMatches(commID, src, tag, m) {
			return i, m
		}
	}
	return -1, nil
}

func (rm *refMatcher) takeQueued(commID, src, tag int, now sim.Time) *message {
	i, m := rm.findQueuedReady(commID, src, tag, now)
	if m == nil {
		i, m = rm.findQueued(commID, src, tag)
	}
	if m == nil {
		return nil
	}
	rm.queued = append(rm.queued[:i], rm.queued[i+1:]...)
	return m
}

// matchProgram drives both matchers through one operation stream. next
// yields pseudo-random bytes (from a seeded rand or the fuzz corpus).
func matchProgram(t *testing.T, next func() byte, ops int) {
	t.Helper()
	var idx matchIndex
	var ref refMatcher

	var now, lastReady sim.Time
	msgID := make(map[*message]int)
	recvID := make(map[*postedRecv]int)
	nextID := 0

	pick := func(n int) int { return int(next()) % n }
	srcSel := func() int {
		if pick(4) == 3 {
			return AnySource
		}
		return pick(3)
	}
	tagSel := func() int {
		if pick(4) == 3 {
			return AnyTag
		}
		return pick(3)
	}

	id := func(m *message, p *postedRecv) int {
		switch {
		case m != nil:
			return msgID[m]
		case p != nil:
			return recvID[p]
		default:
			return -1
		}
	}

	// deliver runs one message through the deliverAt flow of both
	// matchers; post posts one receive through the Irecv flow (taking a
	// queued message when one matches). They are shared by the single-op
	// cases and the WaitAny-shaped burst op.
	deliver := func(op int) {
		m := &message{commID: pick(2), src: pick(3), tag: pick(3)}
		nextID++
		msgID[m] = nextID
		if pick(4) == 0 {
			m.self = true
			m.readyAt = now
		} else {
			// Receiver-NIC slots are granted in arrival order, so
			// ready instants are monotonic for network messages.
			r := lastReady
			if now > r {
				r = now
			}
			m.readyAt = r + sim.Time(pick(8))
			lastReady = m.readyAt
		}
		rc := &message{commID: m.commID, src: m.src, tag: m.tag, readyAt: m.readyAt, self: m.self}
		msgID[rc] = msgID[m]
		gp := idx.takePosted(m)
		wp := ref.takePosted(rc)
		if id(nil, gp) != id(nil, wp) {
			t.Fatalf("op %d: delivery of msg %d matched posted recv %d, reference says %d",
				op, msgID[m], id(nil, gp), id(nil, wp))
		}
		if gp == nil {
			idx.addUnexpected(m)
			ref.addUnexpected(rc)
		}
	}
	post := func(op int) {
		commID, src, tag := pick(2), srcSel(), tagSel()
		gm := idx.takeQueued(commID, src, tag, now)
		wm := ref.takeQueued(commID, src, tag, now)
		if id(gm, nil) != id(wm, nil) {
			t.Fatalf("op %d: recv (comm=%d src=%d tag=%d now=%v) took msg %d, reference says %d",
				op, commID, src, tag, now, id(gm, nil), id(wm, nil))
		}
		if gm != nil {
			if gm.readyAt != wm.readyAt || gm.src != wm.src || gm.tag != wm.tag {
				t.Fatalf("op %d: matched msg %d disagrees on fields", op, msgID[gm])
			}
			return
		}
		p := &postedRecv{commID: commID, src: src, tag: tag}
		rp := &postedRecv{commID: commID, src: src, tag: tag}
		nextID++
		recvID[p] = nextID
		recvID[rp] = nextID
		idx.post(p)
		ref.post(rp)
	}

	for op := 0; op < ops; op++ {
		switch pick(6) {
		case 0: // time passes
			now += sim.Time(pick(16))
		case 1, 2: // a message is delivered (the deliverAt flow)
			deliver(op)
		case 3: // a receive is posted (the Irecv flow)
			post(op)
		case 5: // a WaitAny/Test-then-Wait burst
			// The shape the per-request waiter lists produce: a consumer
			// pre-posts a handful of receives (its WaitAny set), arrivals
			// stream in against them, and Test-then-Wait polls interleave
			// further posts before the backlog readies (now does not
			// advance within the burst, so in-flight messages are taken as
			// timed completions). Exercises many-posted-buckets matching
			// and in-flight takeQueued against the linear reference.
			posts := 2 + pick(3)
			for i := 0; i < posts; i++ {
				post(op)
			}
			arrivals := 1 + pick(4)
			for i := 0; i < arrivals; i++ {
				deliver(op)
				if pick(3) == 0 {
					post(op) // the Test-then-Wait style repost
				}
			}
		case 4: // probes (Probe and the in-flight variant)
			commID, src, tag := pick(2), srcSel(), tagSel()
			gm := idx.findQueuedReady(commID, src, tag, now)
			_, wm := ref.findQueuedReady(commID, src, tag, now)
			if id(gm, nil) != id(wm, nil) {
				t.Fatalf("op %d: probe-ready (comm=%d src=%d tag=%d now=%v) saw msg %d, reference says %d",
					op, commID, src, tag, now, id(gm, nil), id(wm, nil))
			}
			gm = idx.findQueued(commID, src, tag)
			_, wm = ref.findQueued(commID, src, tag)
			if id(gm, nil) != id(wm, nil) {
				t.Fatalf("op %d: probe-any (comm=%d src=%d tag=%d) saw msg %d, reference says %d",
					op, commID, src, tag, id(gm, nil), id(wm, nil))
			}
		}
	}
}

// TestMatchIndexAgainstLinearReference runs many seeded random programs.
func TestMatchIndexAgainstLinearReference(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		matchProgram(t, func() byte { return byte(rng.Intn(256)) }, 400)
	}
}

// FuzzMatchIndex lets the fuzzer drive the operation stream directly.
func FuzzMatchIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{3, 3, 3, 1, 1, 1, 4, 4, 2, 2, 3, 3, 0, 0, 1, 3})
	// WaitAny-shaped bursts (op 5 = 5 mod 6): pre-posted receive sets
	// with streams of arrivals and Test-then-Wait reposts, the pattern
	// the per-request waiter lists put through the index. The selector
	// bytes mix wildcards (3 -> AnySource/AnyTag) with concrete keys.
	f.Add([]byte{5, 1, 0, 0, 3, 1, 1, 2, 0, 2, 1, 0, 3, 2, 5, 2, 3, 3, 3, 1, 1, 0, 0, 2})
	f.Add([]byte{5, 2, 1, 3, 0, 0, 3, 1, 3, 0, 5, 0, 0, 1, 1, 2, 2, 0, 1, 0, 0, 3, 3, 5})
	f.Add([]byte{5, 0, 3, 3, 0, 5, 1, 1, 2, 0, 0, 5, 2, 3, 0, 1, 5, 3, 2, 2, 1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) == 0 {
			return
		}
		i := 0
		next := func() byte {
			b := program[i%len(program)]
			i++
			return b
		}
		matchProgram(t, next, len(program))
	})
}
