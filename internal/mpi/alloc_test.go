package mpi

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/sim"
)

// mallocsDuring reports the heap allocations performed by f, with the GC
// disabled so pool contents survive the measurement.
func mallocsDuring(f func()) uint64 {
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// perRound measures the steady-state allocation cost of one round of a
// parameterized simulation by differencing two run lengths: fixed set-up
// costs (world construction, goroutine spawning, lazily-built wait-state
// pools) cancel, leaving only the per-round cost. run must build, run and
// Release a world performing `rounds` rounds.
func perRound(t *testing.T, run func(rounds int)) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation guards are meaningless under the race detector")
	}
	const short, long = 200, 600
	// Warm every pool past the long run's high-water mark.
	run(long)
	run(long)
	mShort := mallocsDuring(func() { run(short) })
	mLong := mallocsDuring(func() { run(long) })
	if mLong < mShort {
		return 0
	}
	return float64(mLong-mShort) / float64(long-short)
}

// TestWaitHotPathZeroAlloc pins the goroutine-representation send/recv
// round trip — Isend, Irecv, Wait with the direct-wake completion path —
// at zero allocations per round: requests, messages, posted receives and
// wakers all recycle through the world pools.
func TestWaitHotPathZeroAlloc(t *testing.T) {
	run := func(rounds int) {
		w := NewWorld(Config{Procs: 2, Seed: 5})
		_, err := w.Run(func(r *Rank) {
			c := r.World()
			for i := 0; i < rounds; i++ {
				if r.ID() == 0 {
					c.Send(r, 1, 0, 1024, nil)
					c.Recv(r, 1, 1)
				} else {
					c.Recv(r, 0, 0)
					c.Send(r, 0, 1, 512, nil)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Release()
	}
	if got := perRound(t, run); got != 0 {
		t.Errorf("proc ping-pong allocates %.2f allocs/round in steady state, want 0", got)
	}
}

// TestFiberP2PHotPathZeroAlloc pins the fiber-representation FSend/FRecv
// round trip at zero allocations per round (pooled fwait states plus the
// pooled requests/messages).
func TestFiberP2PHotPathZeroAlloc(t *testing.T) {
	run := func(rounds int) {
		w := NewWorld(Config{Procs: 2, Seed: 5})
		_, err := w.RunFibers(func(r *Rank, f *sim.Fiber) sim.StepFunc {
			c := r.World()
			i := 0
			var loop sim.StepFunc
			var afterSend, afterRecv func(Status) sim.StepFunc
			afterSend = func(Status) sim.StepFunc { return loop }
			sendBack := func(_ *sim.Fiber) sim.StepFunc {
				return c.FSend(r, 0, 1, 512, nil, loop)
			}
			afterRecv = func(Status) sim.StepFunc { return sendBack }
			recvReply := func(_ *sim.Fiber) sim.StepFunc {
				return c.FRecv(r, 1, 1, afterSend)
			}
			loop = func(_ *sim.Fiber) sim.StepFunc {
				if i >= rounds {
					return nil
				}
				i++
				if r.ID() == 0 {
					return c.FSend(r, 1, 0, 1024, nil, recvReply)
				}
				return c.FRecv(r, 0, 0, afterRecv)
			}
			return loop
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Release()
	}
	if got := perRound(t, run); got != 0 {
		t.Errorf("fiber ping-pong allocates %.2f allocs/round in steady state, want 0", got)
	}
}

// TestFWaitAnyHotPathZeroAlloc pins the FWaitAny consumer loop — the
// Fig. 8 stream shape: a fan-in consumer parked on per-request waiters,
// reposting after every message — at zero allocations per message.
func TestFWaitAnyHotPathZeroAlloc(t *testing.T) {
	const producers = 2
	run := func(rounds int) {
		w := NewWorld(Config{Procs: producers + 1, Seed: 5})
		_, err := w.RunFibers(func(r *Rank, f *sim.Fiber) sim.StepFunc {
			c := r.World()
			if r.ID() < producers {
				i := 0
				var loop sim.StepFunc
				send := func(_ *sim.Fiber) sim.StepFunc {
					return c.FSend(r, producers, r.ID(), 2048, nil, loop)
				}
				loop = func(_ *sim.Fiber) sim.StepFunc {
					if i >= rounds {
						return nil
					}
					i++
					return r.FCompute(sim.Time(1+r.ID())*sim.Microsecond, send)
				}
				return loop
			}
			reqs := make([]*Request, producers)
			left := make([]int, producers)
			for i := range reqs {
				reqs[i] = c.Irecv(r, i, i)
				left[i] = rounds
			}
			got := 0
			var loop sim.StepFunc
			var onMsg func(int, Status) sim.StepFunc
			onMsg = func(idx int, _ Status) sim.StepFunc {
				got++
				left[idx]--
				if left[idx] > 0 {
					reqs[idx] = c.Irecv(r, idx, idx)
				} else {
					reqs[idx] = nil
				}
				return loop
			}
			loop = func(_ *sim.Fiber) sim.StepFunc {
				if got >= producers*rounds {
					return nil
				}
				return c.FWaitAny(r, reqs, onMsg)
			}
			return loop
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Release()
	}
	if got := perRound(t, run); got != 0 {
		t.Errorf("FWaitAny fan-in allocates %.2f allocs/message in steady state, want 0", got)
	}
}

// TestProcWaitAnyHotPathZeroAlloc is TestFWaitAnyHotPathZeroAlloc for the
// goroutine representation: the pooled per-request wakers must make the
// blocking WaitAny loop allocation-free too.
func TestProcWaitAnyHotPathZeroAlloc(t *testing.T) {
	const producers = 2
	run := func(rounds int) {
		w := NewWorld(Config{Procs: producers + 1, Seed: 5})
		_, err := w.Run(func(r *Rank) {
			c := r.World()
			if r.ID() < producers {
				for i := 0; i < rounds; i++ {
					r.Compute(sim.Time(1+r.ID()) * sim.Microsecond)
					c.Send(r, producers, r.ID(), 2048, nil)
				}
				return
			}
			reqs := make([]*Request, producers)
			left := make([]int, producers)
			for i := range reqs {
				reqs[i] = c.Irecv(r, i, i)
				left[i] = rounds
			}
			for got := 0; got < producers*rounds; got++ {
				idx, _ := c.WaitAny(r, reqs)
				left[idx]--
				if left[idx] > 0 {
					reqs[idx] = c.Irecv(r, idx, idx)
				} else {
					reqs[idx] = nil
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Release()
	}
	if got := perRound(t, run); got != 0 {
		t.Errorf("WaitAny fan-in allocates %.2f allocs/message in steady state, want 0", got)
	}
}
