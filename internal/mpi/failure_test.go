package mpi

import (
	"testing"

	"repro/internal/sim"
)

// recShared is the test bodies' "stable storage": committed is the
// globally committed iteration (every rank writes the same value after
// the commit barrier), the counters record per-rank recovery activity.
type recShared struct {
	iters     int
	committed int
	restarts  []int
	fails     []int
}

func newRecShared(iters, procs int) *recShared {
	return &recShared{iters: iters, restarts: make([]int, procs), fails: make([]int, procs)}
}

func sumI64(a, b interface{}) interface{} { return a.(int64) + b.(int64) }

// recProcBody is a checkpoint-aware iterative body: compute, allreduce,
// then a commit barrier; a crash anywhere sends every rank through
// Protect/Rebuild and replay resumes from the last committed iteration.
func recProcBody(st *recShared) func(r *Rank) {
	return func(r *Rank) {
		c := r.World()
		if r.Incarnation() > 0 {
			st.restarts[r.ID()]++
			r.Rebuild()
		}
		for {
			err := r.Protect(func() {
				for st.committed < st.iters {
					i := st.committed
					r.Compute(40 * sim.Microsecond)
					c.Allreduce(r, Part{Bytes: 8, Data: int64(1)}, sumI64, nil)
					c.Barrier(r)
					r.CheckFailed()
					st.committed = i + 1
				}
			})
			if err == nil {
				return
			}
			if _, ok := err.(*RankFailedError); !ok {
				panic(err)
			}
			st.fails[r.ID()]++
			r.Rebuild()
		}
	}
}

// recFiberBody is recProcBody ported to the continuation representation,
// operation for operation.
func recFiberBody(st *recShared) FiberMain {
	return func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		var step sim.StepFunc
		step = func(_ *sim.Fiber) sim.StepFunc {
			if st.committed >= st.iters {
				return nil
			}
			i := st.committed
			return r.FCompute(40*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
				return c.FAllreduce(r, Part{Bytes: 8, Data: int64(1)}, sumI64, nil, func(Part) sim.StepFunc {
					return c.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
						return r.FCheckFailed(func(_ *sim.Fiber) sim.StepFunc {
							st.committed = i + 1
							return step
						})
					})
				})
			})
		}
		var onFail func(error) sim.StepFunc
		onFail = func(error) sim.StepFunc {
			st.fails[r.ID()]++
			return r.FRebuild(r.FProtect(step, onFail))
		}
		start := r.FProtect(step, onFail)
		if r.Incarnation() > 0 {
			st.restarts[r.ID()]++
			return r.FRebuild(start)
		}
		return start
	}
}

func allFinished(t *testing.T, w *World) {
	t.Helper()
	for i, rs := range w.ranks {
		if !rs.finished() {
			t.Errorf("rank %d body never finished", i)
		}
	}
}

// baselineMakespan runs the body crash-free to size crash instants.
func baselineMakespan(t *testing.T, procs, iters int) sim.Time {
	t.Helper()
	st := newRecShared(iters, procs)
	w := NewWorld(Config{Procs: procs, Seed: 11})
	end := mustRun(t, w, recProcBody(st))
	if st.committed != iters {
		t.Fatalf("crash-free run committed %d of %d", st.committed, iters)
	}
	return end
}

func TestCrashRecoveryCompletes(t *testing.T) {
	const procs, iters = 4, 16
	base := baselineMakespan(t, procs, iters)
	crashes := []sim.CrashEvent{{At: base / 3, Target: 2, Restart: 100 * sim.Microsecond}}

	st := newRecShared(iters, procs)
	w := NewWorld(Config{Procs: procs, Seed: 11, Crashes: crashes})
	end := mustRun(t, w, recProcBody(st))
	allFinished(t, w)
	if st.committed != iters {
		t.Fatalf("committed %d of %d after recovery", st.committed, iters)
	}
	if st.restarts[2] != 1 {
		t.Errorf("victim restarts = %d, want 1", st.restarts[2])
	}
	if end <= base {
		t.Errorf("crashed makespan %v not above crash-free %v", end, base)
	}
	for i, rs := range w.ranks {
		if rs.ioDepth != 0 {
			t.Errorf("rank %d leaks ioDepth %d", i, rs.ioDepth)
		}
	}
}

// TestCrashReplayDeterministic asserts the tentpole's replay contract: a
// fixed crash campaign produces the identical trajectory across repeated
// runs, pooled-world reuse, and both process representations.
func TestCrashReplayDeterministic(t *testing.T) {
	const procs, iters = 4, 16
	base := baselineMakespan(t, procs, iters)
	crashes := []sim.CrashEvent{
		{At: base / 4, Target: 1, Restart: 80 * sim.Microsecond},
		{At: base / 2, Target: 3, Restart: 120 * sim.Microsecond},
	}
	cfg := Config{Procs: procs, Seed: 11, Crashes: crashes}

	type outcome struct {
		end       sim.Time
		committed int
		restarts  [4]int
		fails     [4]int
	}
	runProc := func() outcome {
		st := newRecShared(iters, procs)
		w := NewWorld(cfg)
		end := mustRun(t, w, recProcBody(st))
		allFinished(t, w)
		w.Release()
		var o outcome
		o.end, o.committed = end, st.committed
		copy(o.restarts[:], st.restarts)
		copy(o.fails[:], st.fails)
		return o
	}
	runFiber := func() outcome {
		st := newRecShared(iters, procs)
		w := NewWorld(cfg)
		end, err := w.RunFibers(recFiberBody(st))
		if err != nil {
			t.Fatalf("RunFibers: %v", err)
		}
		allFinished(t, w)
		w.Release()
		var o outcome
		o.end, o.committed = end, st.committed
		copy(o.restarts[:], st.restarts)
		copy(o.fails[:], st.fails)
		return o
	}

	first := runProc()
	if first.committed != iters {
		t.Fatalf("committed %d of %d", first.committed, iters)
	}
	if got := runProc(); got != first {
		t.Errorf("pooled-reuse replay diverged: %+v vs %+v", got, first)
	}
	if got := runFiber(); got != first {
		t.Errorf("fiber replay diverged: %+v vs %+v", got, first)
	}
	if got := runFiber(); got != first {
		t.Errorf("pooled fiber replay diverged: %+v vs %+v", got, first)
	}
}

// TestCrashMidCollectiveNoLeak kills a rank while the world is deep in a
// barrier storm: every survivor is parked mid-collective at the kill
// instant. The run must complete with no deadlock and no rank left
// parked, under both representations.
func TestCrashMidCollectiveNoLeak(t *testing.T) {
	const procs, iters = 6, 60
	// Barrier-only body: almost all virtual time is spent inside
	// collectives, so a mid-run crash lands mid-barrier.
	procBody := func(st *recShared) func(r *Rank) {
		return func(r *Rank) {
			c := r.World()
			if r.Incarnation() > 0 {
				st.restarts[r.ID()]++
				r.Rebuild()
			}
			for {
				err := r.Protect(func() {
					for st.committed < st.iters {
						i := st.committed
						c.Barrier(r)
						c.Barrier(r)
						r.CheckFailed()
						st.committed = i + 1
					}
				})
				if err == nil {
					return
				}
				st.fails[r.ID()]++
				r.Rebuild()
			}
		}
	}
	fiberBody := func(st *recShared) FiberMain {
		return func(r *Rank, f *sim.Fiber) sim.StepFunc {
			c := r.World()
			var step sim.StepFunc
			step = func(_ *sim.Fiber) sim.StepFunc {
				if st.committed >= st.iters {
					return nil
				}
				i := st.committed
				return c.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
					return c.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
						return r.FCheckFailed(func(_ *sim.Fiber) sim.StepFunc {
							st.committed = i + 1
							return step
						})
					})
				})
			}
			var onFail func(error) sim.StepFunc
			onFail = func(error) sim.StepFunc {
				st.fails[r.ID()]++
				return r.FRebuild(r.FProtect(step, onFail))
			}
			start := r.FProtect(step, onFail)
			if r.Incarnation() > 0 {
				st.restarts[r.ID()]++
				return r.FRebuild(start)
			}
			return start
		}
	}

	st0 := newRecShared(iters, procs)
	w0 := NewWorld(Config{Procs: procs, Seed: 3})
	base := mustRun(t, w0, procBody(st0))
	crashes := []sim.CrashEvent{{At: base / 2, Target: 4, Restart: 60 * sim.Microsecond}}

	t.Run("proc", func(t *testing.T) {
		st := newRecShared(iters, procs)
		w := NewWorld(Config{Procs: procs, Seed: 3, Crashes: crashes})
		mustRun(t, w, procBody(st))
		allFinished(t, w)
		if st.committed != iters {
			t.Fatalf("committed %d of %d", st.committed, iters)
		}
		if st.restarts[4] != 1 {
			t.Errorf("victim restarts = %d, want 1", st.restarts[4])
		}
	})
	t.Run("fiber", func(t *testing.T) {
		st := newRecShared(iters, procs)
		w := NewWorld(Config{Procs: procs, Seed: 3, Crashes: crashes})
		if _, err := w.RunFibers(fiberBody(st)); err != nil {
			t.Fatalf("RunFibers: %v", err)
		}
		allFinished(t, w)
		if st.committed != iters {
			t.Fatalf("committed %d of %d", st.committed, iters)
		}
	})
}

// TestCrashSharedPointerFailover kills a rank during a shared-file-pointer
// write phase, exercising the token eviction path: the dead rank must not
// wedge the pointer token, and the world must recover and finish.
func TestCrashSharedPointerFailover(t *testing.T) {
	const procs, iters = 4, 12
	var file *File
	body := func(st *recShared) func(r *Rank) {
		return func(r *Rank) {
			c := r.World()
			if r.Incarnation() > 0 {
				st.restarts[r.ID()]++
				r.Rebuild()
			} else {
				f := c.Open(r, "ckpt")
				file = f
			}
			for {
				err := r.Protect(func() {
					for st.committed < st.iters {
						i := st.committed
						file.WriteShared(r, 1<<16)
						c.Barrier(r)
						r.CheckFailed()
						st.committed = i + 1
					}
				})
				if err == nil {
					return
				}
				st.fails[r.ID()]++
				r.Rebuild()
			}
		}
	}

	st0 := newRecShared(iters, procs)
	w0 := NewWorld(Config{Procs: procs, Seed: 21})
	file = nil
	base := mustRun(t, w0, body(st0))
	crashes := []sim.CrashEvent{{At: base / 2, Target: 1, Restart: 90 * sim.Microsecond}}

	st := newRecShared(iters, procs)
	w := NewWorld(Config{Procs: procs, Seed: 21, Crashes: crashes})
	file = nil
	mustRun(t, w, body(st))
	allFinished(t, w)
	if st.committed != iters {
		t.Fatalf("committed %d of %d", st.committed, iters)
	}
	for i, rs := range w.ranks {
		if rs.ioDepth != 0 {
			t.Errorf("rank %d leaks ioDepth %d", i, rs.ioDepth)
		}
	}
}

// TestCrashCoScheduledNeighborUntouched runs two worlds on one engine and
// crashes a rank of the first: the neighbor job's trajectory must be
// bit-identical to the crash-free co-schedule.
func TestCrashCoScheduledNeighborUntouched(t *testing.T) {
	const procs, iters = 4, 10
	neighbor := func(r *Rank) {
		c := r.World()
		for i := 0; i < 8; i++ {
			r.Compute(30 * sim.Microsecond)
			c.Allreduce(r, Part{Bytes: 8, Data: int64(1)}, sumI64, nil)
		}
	}
	run := func(crashes []sim.CrashEvent) (aEnd, bEnd sim.Time, st *recShared) {
		e := sim.NewEngine(77)
		st = newRecShared(iters, procs)
		wA := NewWorld(Config{Procs: procs, Seed: 5, Engine: e, Name: "jobA", Crashes: crashes})
		wB := NewWorld(Config{Procs: procs, Seed: 9, Engine: e, Name: "jobB"})
		wA.Start(recProcBody(st))
		wB.Start(neighbor)
		if _, err := e.Run(); err != nil {
			t.Fatalf("engine run: %v", err)
		}
		allFinished(t, wA)
		allFinished(t, wB)
		return wA.Makespan(), wB.Makespan(), st
	}

	aClean, bClean, _ := run(nil)
	crashes := []sim.CrashEvent{{At: aClean / 3, Target: 0, Restart: 70 * sim.Microsecond}}
	aCrash, bCrash, st := run(crashes)
	if st.committed != iters {
		t.Fatalf("job A committed %d of %d", st.committed, iters)
	}
	if st.restarts[0] != 1 {
		t.Errorf("victim restarts = %d, want 1", st.restarts[0])
	}
	if aCrash <= aClean {
		t.Errorf("job A makespan %v not above crash-free %v", aCrash, aClean)
	}
	if bCrash != bClean {
		t.Errorf("neighbor job perturbed by foreign crash: %v vs %v", bCrash, bClean)
	}
}

// TestCrashAfterCompletionDropped schedules a crash beyond the job's end:
// committed output is never revoked, so the run must be identical to a
// crash-free one.
func TestCrashAfterCompletionDropped(t *testing.T) {
	const procs, iters = 4, 8
	base := baselineMakespan(t, procs, iters)

	st := newRecShared(iters, procs)
	w := NewWorld(Config{Procs: procs, Seed: 11, Crashes: []sim.CrashEvent{
		{At: base + sim.Millisecond, Target: 0, Restart: 50 * sim.Microsecond},
	}})
	mustRun(t, w, recProcBody(st))
	allFinished(t, w)
	if st.restarts[0] != 0 || st.fails[0] != 0 {
		t.Errorf("late crash not dropped: restarts=%v fails=%v", st.restarts, st.fails)
	}
	if st.committed != iters {
		t.Fatalf("committed %d of %d", st.committed, iters)
	}
}

// TestCrashConfigValidation covers NewWorld's campaign checks.
func TestCrashConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewWorld did not panic", name)
			}
		}()
		NewWorld(cfg)
	}
	mustPanic("target out of range", Config{Procs: 2, Crashes: []sim.CrashEvent{{At: 1, Target: 2}}})
	mustPanic("negative time", Config{Procs: 2, Crashes: []sim.CrashEvent{{At: -1, Target: 0}}})
	mustPanic("tracing", Config{Procs: 2, Tracer: nopTracer{}, Crashes: []sim.CrashEvent{{At: 1, Target: 0}}})
}

type nopTracer struct{}

func (nopTracer) Span(rank int, category, label string, start, end sim.Time) {}
