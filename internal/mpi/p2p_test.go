package mpi

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func testWorld(t *testing.T, procs int) *World {
	t.Helper()
	return NewWorld(Config{Procs: procs, Seed: 42})
}

func mustRun(t *testing.T, w *World, main func(r *Rank)) sim.Time {
	t.Helper()
	end, err := w.Run(main)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return end
}

func TestSendRecvDeliversPayload(t *testing.T) {
	w := testWorld(t, 2)
	var got string
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 7, 128, "hello")
		} else {
			st := c.Recv(r, 0, 7)
			got = st.Data.(string)
			if st.Source != 0 || st.Tag != 7 || st.Bytes != 128 {
				t.Errorf("status = %+v", st)
			}
		}
	})
	if got != "hello" {
		t.Fatalf("payload = %q", got)
	}
}

func TestMessageCostMatchesModel(t *testing.T) {
	cfg := Config{Procs: 2, Seed: 1}
	w := NewWorld(cfg)
	net := w.Config().Net
	var recvAt sim.Time
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 0, 1000, nil)
		} else {
			c.Recv(r, 0, 0)
			recvAt = r.Now()
		}
	})
	// Expected: send overhead + sender NIC + latency + receiver NIC +
	// receive overhead.
	want := net.SendOverhead + 2*net.SerializationTime(1000) + net.Latency + net.RecvOverhead
	if recvAt != want {
		t.Fatalf("recv completed at %v, want %v", recvAt, want)
	}
}

func TestRecvBeforeSendBlocks(t *testing.T) {
	w := testWorld(t, 2)
	var recvAt sim.Time
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			r.Idle(1 * sim.Millisecond)
			c.Send(r, 1, 0, 8, nil)
		} else {
			c.Recv(r, 0, 0)
			recvAt = r.Now()
		}
	})
	if recvAt < sim.Millisecond {
		t.Fatalf("receiver completed at %v, before the send at 1ms", recvAt)
	}
}

func TestNonOvertakingSameSourceAndTag(t *testing.T) {
	w := testWorld(t, 2)
	var order []int
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(r, 1, 3, 64, i)
			}
		} else {
			for i := 0; i < 5; i++ {
				st := c.Recv(r, 0, 3)
				order = append(order, st.Data.(int))
			}
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("messages overtook: %v", order)
		}
	}
}

func TestTagSelectivity(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 1, 8, "one")
			c.Send(r, 1, 2, 8, "two")
		} else {
			// Receive tag 2 first even though tag 1 arrives first.
			st2 := c.Recv(r, 0, 2)
			st1 := c.Recv(r, 0, 1)
			if st2.Data.(string) != "two" || st1.Data.(string) != "one" {
				t.Errorf("tag matching broken: %v %v", st1.Data, st2.Data)
			}
		}
	})
}

func TestAnySourceAndAnyTag(t *testing.T) {
	w := testWorld(t, 3)
	var got []string
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		switch r.ID() {
		case 0:
			c.Send(r, 2, 5, 8, "from0")
		case 1:
			r.Idle(sim.Millisecond)
			c.Send(r, 2, 9, 8, "from1")
		case 2:
			for i := 0; i < 2; i++ {
				st := c.Recv(r, AnySource, AnyTag)
				got = append(got, st.Data.(string))
			}
		}
	})
	if len(got) != 2 || got[0] != "from0" || got[1] != "from1" {
		t.Fatalf("got %v", got)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			reqs := []*Request{
				c.Isend(r, 1, 0, 8, 10),
				c.Isend(r, 1, 1, 8, 20),
			}
			c.WaitAll(r, reqs...)
		} else {
			a := c.Irecv(r, 0, 0)
			b := c.Irecv(r, 0, 1)
			sts := c.WaitAll(r, a, b)
			if sts[0].Data.(int) != 10 || sts[1].Data.(int) != 20 {
				t.Errorf("payloads %v %v", sts[0].Data, sts[1].Data)
			}
		}
	})
}

func TestWaitAnyReturnsFirstAvailable(t *testing.T) {
	w := testWorld(t, 3)
	var first int
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		switch r.ID() {
		case 0:
			r.Idle(10 * sim.Millisecond) // deliberately slow
			c.Send(r, 2, 0, 8, nil)
		case 1:
			c.Send(r, 2, 1, 8, nil) // fast
		case 2:
			reqs := []*Request{c.Irecv(r, 0, 0), c.Irecv(r, 1, 1)}
			idx, _ := c.WaitAny(r, reqs)
			first = idx
			// Drain the other.
			c.Wait(r, reqs[1-idx])
		}
	})
	if first != 1 {
		t.Fatalf("WaitAny returned %d, want the fast sender 1", first)
	}
}

func TestTestReturnsFalseThenTrue(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			r.Idle(sim.Millisecond)
			c.Send(r, 1, 0, 8, nil)
		} else {
			req := c.Irecv(r, 0, 0)
			if ok, _ := c.Test(r, req); ok {
				t.Error("Test true before message sent")
			}
			r.Idle(10 * sim.Millisecond)
			if ok, _ := c.Test(r, req); !ok {
				t.Error("Test false after message should have arrived")
			}
		}
	})
}

func TestProbeSeesArrivedMessage(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 4, 16, "x")
		} else {
			r.Idle(10 * sim.Millisecond)
			ok, st := c.Probe(r, 0, 4)
			if !ok || st.Bytes != 16 {
				t.Errorf("Probe = %v %+v", ok, st)
			}
			c.Recv(r, 0, 4)
		}
	})
}

func TestSelfSend(t *testing.T) {
	w := testWorld(t, 1)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		req := c.Isend(r, 0, 0, 8, "self")
		st := c.Recv(r, 0, 0)
		c.Wait(r, req)
		if st.Data.(string) != "self" {
			t.Errorf("self-send payload %v", st.Data)
		}
	})
}

func TestSendLinkSerializesBackToBackMessages(t *testing.T) {
	// Two large messages from the same sender must serialize on its NIC;
	// two large messages from different senders to different receivers
	// must not.
	cfg := Config{Procs: 4, Seed: 1}
	const bytes = 10_000_000 // 1ms at 10 GB/s
	w := NewWorld(cfg)
	var sameEnd sim.Time
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		switch r.ID() {
		case 0:
			c.Isend(r, 1, 0, bytes, nil)
			c.Isend(r, 1, 1, bytes, nil)
		case 1:
			c.Recv(r, 0, 0)
			c.Recv(r, 0, 1)
			sameEnd = r.Now()
		}
	})
	w2 := NewWorld(cfg)
	var crossEnd sim.Time
	mustRun(t, w2, func(r *Rank) {
		c := r.World()
		switch r.ID() {
		case 0:
			c.Isend(r, 1, 0, bytes, nil)
		case 2:
			c.Isend(r, 3, 0, bytes, nil)
		case 1:
			c.Recv(r, 0, 0)
			crossEnd = r.Now()
		case 3:
			c.Recv(r, 2, 0)
			if e := r.Now(); e > crossEnd {
				crossEnd = e
			}
		}
	})
	if sameEnd < crossEnd+sim.Time(float64(sim.Millisecond)*0.8) {
		t.Fatalf("same-sender pair (%v) should be ~1ms slower than disjoint pairs (%v)", sameEnd, crossEnd)
	}
}

func TestHotReceiverCongestion(t *testing.T) {
	// Many senders to one receiver serialize on the receiver NIC: total
	// time grows linearly with sender count.
	run := func(senders int) sim.Time {
		w := NewWorld(Config{Procs: senders + 1, Seed: 1})
		const bytes = 1_000_000 // 100us at 10 GB/s
		end := sim.Time(0)
		mustRun(t, w, func(r *Rank) {
			c := r.World()
			if r.ID() == 0 {
				for i := 0; i < senders; i++ {
					c.Recv(r, AnySource, 0)
				}
				end = r.Now()
			} else {
				c.Send(r, 0, 0, bytes, nil)
			}
		})
		return end
	}
	t4, t16 := run(4), run(16)
	if t16 < 3*t4 {
		t.Fatalf("16 senders (%v) not ~4x slower than 4 senders (%v)", t16, t4)
	}
}

func TestNoiseSlowsComputeDeterministically(t *testing.T) {
	cfg := Config{Procs: 4, Seed: 5, Noise: netmodel.DefaultCluster()}
	run := func() []sim.Time {
		w := NewWorld(cfg)
		times := make([]sim.Time, 4)
		mustRun(t, w, func(r *Rank) {
			r.Compute(10 * sim.Millisecond)
			times[r.ID()] = r.Now()
		})
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic noise: %v vs %v", a, b)
		}
		if a[i] < 10*sim.Millisecond {
			t.Fatalf("noise sped rank %d up: %v", i, a[i])
		}
	}
	distinct := map[sim.Time]bool{}
	for _, v := range a {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("noise produced identical times across ranks: %v", a)
	}
}

func TestTrafficCounters(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 0, 100, nil)
			c.Send(r, 1, 0, 200, nil)
		} else {
			c.Recv(r, 0, 0)
			c.Recv(r, 0, 0)
		}
	})
	if w.BytesSent() != 300 || w.MessagesSent() != 2 {
		t.Fatalf("bytes=%d msgs=%d", w.BytesSent(), w.MessagesSent())
	}
}

func TestDeadlockDetectedAcrossRanks(t *testing.T) {
	w := testWorld(t, 2)
	_, err := w.Run(func(r *Rank) {
		// Both ranks receive; nobody sends.
		r.World().Recv(r, 1-r.ID(), 0)
	})
	if err == nil {
		t.Fatal("mutual recv did not deadlock")
	}
}

func TestBadArgumentsPanic(t *testing.T) {
	w := testWorld(t, 2)
	mustRun(t, w, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		c := r.World()
		for _, fn := range []func(){
			func() { c.Isend(r, 5, 0, 8, nil) },
			func() { c.Isend(r, 1, 0, -1, nil) },
			func() { c.Irecv(r, 17, 0) },
			func() { c.WaitAny(r, nil) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("bad argument did not panic")
					}
				}()
				fn()
			}()
		}
	})
}
