package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestSplitByParity(t *testing.T) {
	w := testWorld(t, 8)
	sizes := make([]int, 8)
	ranks := make([]int, 8)
	mustRun(t, w, func(r *Rank) {
		sub := r.World().Split(r, r.ID()%2, r.ID())
		sizes[r.ID()] = sub.Size()
		ranks[r.ID()] = sub.RankOf(r)
	})
	for i := 0; i < 8; i++ {
		if sizes[i] != 4 {
			t.Fatalf("rank %d subcomm size = %d, want 4", i, sizes[i])
		}
		if want := i / 2; ranks[i] != want {
			t.Fatalf("rank %d subcomm rank = %d, want %d", i, ranks[i], want)
		}
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	w := testWorld(t, 4)
	mustRun(t, w, func(r *Rank) {
		var sub *Comm
		if r.ID() == 3 {
			sub = r.World().Split(r, -1, 0)
			if sub != nil {
				t.Errorf("undefined color returned a communicator")
			}
		} else {
			sub = r.World().Split(r, 0, r.ID())
			if sub.Size() != 3 {
				t.Errorf("subcomm size = %d, want 3", sub.Size())
			}
		}
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	w := testWorld(t, 4)
	subRanks := make([]int, 4)
	mustRun(t, w, func(r *Rank) {
		// Reverse order keys: world rank 3 becomes sub rank 0.
		sub := r.World().Split(r, 0, -r.ID())
		subRanks[r.ID()] = sub.RankOf(r)
	})
	for i := 0; i < 4; i++ {
		if want := 3 - i; subRanks[i] != want {
			t.Fatalf("world rank %d got sub rank %d, want %d", i, subRanks[i], want)
		}
	}
}

func TestSplitCommsCommunicateIndependently(t *testing.T) {
	w := testWorld(t, 4)
	got := make([]int, 4)
	mustRun(t, w, func(r *Rank) {
		sub := r.World().Split(r, r.ID()%2, r.ID())
		// Within each subcomm: rank 0 sends to rank 1.
		if sub.RankOf(r) == 0 {
			sub.Send(r, 1, 0, 8, r.ID()*11)
		} else {
			st := sub.Recv(r, 0, 0)
			got[r.ID()] = st.Data.(int)
		}
	})
	if got[2] != 0 || got[3] != 11 {
		t.Fatalf("got = %v, want value 0 at rank 2 and 11 at rank 3", got)
	}
}

func TestTranslate(t *testing.T) {
	w := testWorld(t, 6)
	mustRun(t, w, func(r *Rank) {
		world := r.World()
		sub := world.Split(r, r.ID()%2, r.ID())
		if r.ID() == 0 {
			// Sub rank 1 of the even comm is world rank 2.
			if wr := sub.Translate(1, world); wr != 2 {
				t.Errorf("Translate(1, world) = %d, want 2", wr)
			}
		}
		if r.ID() == 1 {
			// World rank 0 is not in the odd comm.
			if or := world.Translate(0, sub); or != -1 {
				t.Errorf("Translate(0, odd) = %d, want -1", or)
			}
		}
	})
}

func TestWriteSharedSerializes(t *testing.T) {
	run := func(p int) sim.Time {
		w := NewWorld(Config{Procs: p, Seed: 1})
		var end sim.Time
		if _, err := w.Run(func(r *Rank) {
			f := r.World().Open(r, "out.dat")
			f.WriteShared(r, 1<<20)
			if r.Now() > end {
				end = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	t4, t32 := run(4), run(32)
	if t32 < 4*t4 {
		t.Fatalf("shared writes did not serialize: 32 procs %v vs 4 procs %v", t32, t4)
	}
}

func TestWriteAllFasterThanSharedAtScale(t *testing.T) {
	const p = 64
	const bytes = 1 << 20
	shared := func() sim.Time {
		w := NewWorld(Config{Procs: p, Seed: 1})
		var end sim.Time
		if _, err := w.Run(func(r *Rank) {
			f := r.World().Open(r, "s.dat")
			f.WriteShared(r, bytes)
			if r.Now() > end {
				end = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}()
	coll := func() sim.Time {
		w := NewWorld(Config{Procs: p, Seed: 1})
		var end sim.Time
		if _, err := w.Run(func(r *Rank) {
			f := r.World().Open(r, "c.dat")
			f.WriteAll(r, bytes)
			if r.Now() > end {
				end = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}()
	if coll >= shared {
		t.Fatalf("collective write (%v) not faster than shared write (%v) on %d procs", coll, shared, p)
	}
}

func TestWriteAllAccountsAllBytes(t *testing.T) {
	const p = 10
	w := NewWorld(Config{Procs: p, Seed: 1})
	var file *File
	if _, err := w.Run(func(r *Rank) {
		f := r.World().Open(r, "acc.dat")
		file = f
		f.WriteAll(r, int64(1000*(r.ID()+1)))
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(1000 * p * (p + 1) / 2)
	if file.BytesWritten() != want {
		t.Fatalf("BytesWritten = %d, want %d", file.BytesWritten(), want)
	}
}

func TestWriteAtIndependent(t *testing.T) {
	w := NewWorld(Config{Procs: 4, Seed: 1})
	var file *File
	if _, err := w.Run(func(r *Rank) {
		f := r.World().Open(r, "ind.dat")
		file = f
		f.WriteAt(r, 500)
	}); err != nil {
		t.Fatal(err)
	}
	if file.Ops() != 4 || file.BytesWritten() != 2000 {
		t.Fatalf("ops=%d bytes=%d", file.Ops(), file.BytesWritten())
	}
}

func TestReadAtConsumesTime(t *testing.T) {
	w := NewWorld(Config{Procs: 1, Seed: 1})
	var end sim.Time
	if _, err := w.Run(func(r *Rank) {
		f := r.World().Open(r, "in.dat")
		f.ReadAt(r, 100<<20) // 100 MB at 1 GB/s stripe = 100ms
		end = r.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if end < 90*sim.Millisecond {
		t.Fatalf("100MB read took only %v", end)
	}
}

func TestOpenReturnsSharedHandle(t *testing.T) {
	w := NewWorld(Config{Procs: 3, Seed: 1})
	handles := make([]*File, 3)
	if _, err := w.Run(func(r *Rank) {
		handles[r.ID()] = r.World().Open(r, "same.dat")
	}); err != nil {
		t.Fatal(err)
	}
	if handles[0] != handles[1] || handles[1] != handles[2] {
		t.Fatal("Open returned different handles for the same file")
	}
}

func TestBiggerWritesFewerOpsCheaper(t *testing.T) {
	// Writing the same volume in fewer, larger shared writes must be
	// cheaper — the buffering optimization the decoupled I/O group uses.
	run := func(writes int, each int64) sim.Time {
		w := NewWorld(Config{Procs: 8, Seed: 1})
		var end sim.Time
		if _, err := w.Run(func(r *Rank) {
			f := r.World().Open(r, "buf.dat")
			for i := 0; i < writes; i++ {
				f.WriteShared(r, each)
			}
			if r.Now() > end {
				end = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	many := run(64, 1<<16)
	few := run(1, 64<<16)
	if few >= many {
		t.Fatalf("1 big write (%v) not cheaper than 64 small writes (%v)", few, many)
	}
}
