package mpi

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered group of ranks with a private message
// context. The same *Comm descriptor is shared by all member ranks.
type Comm struct {
	w       *World
	id      int
	members []int       // comm rank -> world rank
	index   map[int]int // world rank -> comm rank
	collSeq []int       // per-member collective tag counters (lockstep)
}

// newComm builds a communicator descriptor over the given world ranks.
// Every communicator is registered with its world so a post-crash rebuild
// can reset collective state world-wide (see completeRebuild).
func newComm(w *World, members []int, index map[int]int) *Comm {
	c := &Comm{
		w:       w,
		id:      w.nextCommID(),
		members: members,
		index:   index,
		collSeq: make([]int, len(members)),
	}
	w.allComms = append(w.allComms, c)
	return c
}

// Size reports the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// ID reports the communicator's context id.
func (c *Comm) ID() int { return c.id }

// RankOf reports r's rank within this communicator. It panics if r is not
// a member.
func (c *Comm) RankOf(r *Rank) int {
	cr, ok := c.index[r.rs.rank]
	if !ok {
		panic(fmt.Sprintf("mpi: world rank %d is not a member of comm %d", r.rs.rank, c.id))
	}
	return cr
}

// Member reports whether r belongs to this communicator.
func (c *Comm) Member(r *Rank) bool {
	_, ok := c.index[r.rs.rank]
	return ok
}

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.members[commRank] }

// splitState accumulates one collective Split call over a parent comm.
type splitState struct {
	want    int
	entries []splitEntry
	result  map[int]*Comm // color -> child comm
}

type splitEntry struct {
	color, key, worldRank int
}

// Split partitions the communicator by color, ordering ranks within each
// child by (key, parent rank), like MPI_Comm_split. It is collective over
// the communicator: every member must call it with the same generation of
// arguments. A color of -1 (like MPI_UNDEFINED) returns nil for that rank.
//
// Membership metadata is exchanged through shared simulator state; the
// network cost of the operation is modelled by the barrier that closes the
// rendezvous.
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	st := c.splitRegister(r, color, key)
	// The rendezvous costs a barrier on the parent communicator, which is
	// roughly what MPI_Comm_split costs (an allgather of (color, key)).
	c.Barrier(r)
	if color < 0 {
		return nil
	}
	// After the barrier, st.result is materialized (the barrier cannot
	// complete before every member has registered its entry above).
	return st.result[color]
}

// splitRegister records one member's (color, key) for the current Split
// generation; the last arrival materializes the child communicators. The
// membership bookkeeping is shared by Split and FSplit.
func (c *Comm) splitRegister(r *Rank, color, key int) *splitState {
	w := c.w
	// Shards may register concurrently in parallel mode; the materialized
	// result is order-independent (entries are re-sorted by (key, world
	// rank) and colors by value), so the lock only protects the maps.
	// Child comm ids can vary with arrival order, which is harmless: ids
	// are opaque registry keys, and collective tags derive from collSeq,
	// not from ids.
	w.mu.Lock()
	defer w.mu.Unlock()
	skey := fmt.Sprintf("split:%d", c.id)
	st, ok := w.splits[skey]
	if !ok {
		st = &splitState{want: len(c.members)}
		w.splits[skey] = st
	}
	st.entries = append(st.entries, splitEntry{color: color, key: key, worldRank: r.rs.rank})
	if len(st.entries) == st.want {
		// Last arrival materializes the child communicators.
		st.result = make(map[int]*Comm)
		byColor := make(map[int][]splitEntry)
		for _, en := range st.entries {
			if en.color >= 0 {
				byColor[en.color] = append(byColor[en.color], en)
			}
		}
		colors := make([]int, 0, len(byColor))
		for col := range byColor {
			colors = append(colors, col)
		}
		sort.Ints(colors) // deterministic comm id assignment
		for _, col := range colors {
			ens := byColor[col]
			sort.Slice(ens, func(i, j int) bool {
				if ens[i].key != ens[j].key {
					return ens[i].key < ens[j].key
				}
				return ens[i].worldRank < ens[j].worldRank
			})
			members := make([]int, len(ens))
			index := make(map[int]int, len(ens))
			for i, en := range ens {
				members[i] = en.worldRank
				index[en.worldRank] = i
			}
			st.result[col] = newComm(w, members, index)
		}
		delete(w.splits, skey)
	}
	return st
}

// Translate returns the rank in other of the process that is commRank in
// c, or -1 if it is not a member of other.
func (c *Comm) Translate(commRank int, other *Comm) int {
	wr := c.members[commRank]
	if or, ok := other.index[wr]; ok {
		return or
	}
	return -1
}
