package mpi

import (
	"testing"

	"repro/internal/sim"
)

// runWakeModes runs the same program under both wake strategies and
// returns (directEnd, directEvents, legacyEnd, legacyEvents). Both runs
// must complete; the strategies are allowed to produce different
// trajectories (that difference is exactly the TrajectoryVersion 2 bump),
// but direct wake must never fire more events than the broadcast
// strategy on the same program.
func runWakeModes(t *testing.T, procs int, body func(*Rank)) (sim.Time, uint64, sim.Time, uint64) {
	t.Helper()
	run := func(legacy bool) (sim.Time, uint64) {
		prev := SetLegacyWake(legacy)
		defer SetLegacyWake(prev)
		w := NewWorld(Config{Procs: procs, Seed: 11})
		end, err := w.Run(body)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		return end, w.Engine().Events()
	}
	dEnd, dEvents := run(false)
	lEnd, lEvents := run(true)
	if dEvents > lEvents {
		t.Errorf("direct wake fired %d events, legacy broadcast %d: direct must not add events", dEvents, lEvents)
	}
	return dEnd, dEvents, lEnd, lEvents
}

// TestDirectWakeWaitAny drives a fan-in consumer (the Fig. 8 shape: many
// producers, one WaitAny loop) under both wake strategies: both must
// drain every message, and the direct strategy must remove the
// per-message broadcast events.
func TestDirectWakeWaitAny(t *testing.T) {
	const producers, msgs = 3, 16
	total := 0
	body := func(r *Rank) {
		c := r.World()
		if r.ID() < producers {
			for i := 0; i < msgs; i++ {
				r.Compute(sim.Time(1+r.ID()) * sim.Microsecond)
				c.Send(r, producers, r.ID(), 2048, nil)
			}
			return
		}
		reqs := make([]*Request, producers)
		left := make([]int, producers)
		for i := range reqs {
			reqs[i] = c.Irecv(r, i, i)
			left[i] = msgs
		}
		for got := 0; got < producers*msgs; got++ {
			idx, _ := c.WaitAny(r, reqs)
			total++
			left[idx]--
			if left[idx] > 0 {
				reqs[idx] = c.Irecv(r, idx, idx)
			} else {
				reqs[idx] = nil
			}
		}
	}
	total = 0
	dEnd, dEvents, lEnd, lEvents := runWakeModes(t, producers+1, body)
	if total != 2*producers*msgs { // body ran once per strategy
		t.Fatalf("consumer drained %d messages, want %d", total, 2*producers*msgs)
	}
	if dEvents >= lEvents {
		t.Errorf("direct wake should remove broadcast events: direct %d, legacy %d", dEvents, lEvents)
	}
	if dEnd <= 0 || lEnd <= 0 {
		t.Fatalf("degenerate end times %v / %v", dEnd, lEnd)
	}
}

// TestDirectWakeWaitColl checks the per-collective waiter: ranks park in
// WaitColl while unrelated point-to-point traffic flows through the same
// ranks, which under the broadcast strategy woke the collective waiters
// spuriously on every delivery.
func TestDirectWakeWaitColl(t *testing.T) {
	body := func(r *Rank) {
		c := r.World()
		cr := c.Iallreduce(r, Part{Bytes: 8, Data: float64(r.ID())}, SumFloat64, nil)
		// Unrelated traffic while the collective is in flight.
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() - 1 + r.Size()) % r.Size()
		for i := 0; i < 4; i++ {
			c.Send(r, next, 5, 4096, nil)
			c.Recv(r, prev, 5)
		}
		v := c.WaitColl(r, cr).(Part)
		want := float64(r.Size()*(r.Size()-1)) / 2
		if got := v.Data.(float64); got != want {
			panic("bad allreduce value")
		}
	}
	runWakeModes(t, 6, body)
}

// TestConsumedRequestPanics pins the pooled-request poison: a handle
// already consumed by a wait must fail loudly on any further use (the
// silent alternative is pool corruption — a stale slot aliasing another
// rank's live request, as the stream consumer loop once risked with its
// final termination request).
func TestConsumedRequestPanics(t *testing.T) {
	w := NewWorld(Config{Procs: 2, Seed: 3})
	_, err := w.Run(func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 0, 64, nil)
			return
		}
		req := c.Irecv(r, 0, 0)
		c.Wait(r, req)
		defer func() {
			if recover() == nil {
				t.Error("Test on a consumed request did not panic")
			}
		}()
		c.Test(r, req)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitAnyTestThenWaitBitIdentical drives WaitAny/Test-then-Wait
// interleavings — the pattern that exercises the per-request waiter lists
// — through both process representations and asserts bit-identical
// trajectories (final time and event count).
func TestWaitAnyTestThenWaitBitIdentical(t *testing.T) {
	const msgs = 10
	procBody := func(r *Rank) {
		c := r.World()
		switch r.ID() {
		case 0, 1:
			for i := 0; i < msgs; i++ {
				r.Compute(sim.Time(2+3*r.ID()) * sim.Microsecond)
				c.Send(r, 2, r.ID(), 1024*int64(1+i%3), i)
			}
		case 2:
			reqs := []*Request{c.Irecv(r, 0, 0), c.Irecv(r, 1, 1)}
			left := []int{msgs, msgs}
			got := 0
			consume := func(idx int) {
				got++
				left[idx]--
				if left[idx] > 0 {
					reqs[idx] = c.Irecv(r, idx, idx)
				} else {
					reqs[idx] = nil
				}
				r.Compute(1 * sim.Microsecond)
			}
			for got < 2*msgs {
				if reqs[0] != nil {
					// Test-then-Wait: poll the first request, then block
					// in WaitAny over both.
					if ok, _ := c.Test(r, reqs[0]); ok {
						consume(0)
						continue
					}
					idx, _ := c.WaitAny(r, reqs)
					consume(idx)
					continue
				}
				idx, _ := c.WaitAny(r, reqs[1:])
				consume(idx + 1)
			}
		}
	}
	fibBody := func(r *Rank, f *sim.Fiber) sim.StepFunc {
		c := r.World()
		switch r.ID() {
		case 0, 1:
			i := 0
			var loop sim.StepFunc
			loop = func(_ *sim.Fiber) sim.StepFunc {
				if i >= msgs {
					return nil
				}
				n := i
				i++
				return r.FCompute(sim.Time(2+3*r.ID())*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc {
					return c.FSend(r, 2, r.ID(), 1024*int64(1+n%3), n, loop)
				})
			}
			return loop
		default:
			reqs := []*Request{c.Irecv(r, 0, 0), c.Irecv(r, 1, 1)}
			left := []int{msgs, msgs}
			got := 0
			var loop sim.StepFunc
			consume := func(idx int) sim.StepFunc {
				got++
				left[idx]--
				if left[idx] > 0 {
					reqs[idx] = c.Irecv(r, idx, idx)
				} else {
					reqs[idx] = nil
				}
				return r.FCompute(1*sim.Microsecond, func(_ *sim.Fiber) sim.StepFunc { return loop })
			}
			loop = func(_ *sim.Fiber) sim.StepFunc {
				if got >= 2*msgs {
					return nil
				}
				if reqs[0] != nil {
					return c.FTest(r, reqs[0], func(ok bool, _ Status) sim.StepFunc {
						if ok {
							return consume(0)
						}
						return c.FWaitAny(r, reqs, func(idx int, _ Status) sim.StepFunc {
							return consume(idx)
						})
					})
				}
				return c.FWaitAny(r, reqs[1:], func(idx int, _ Status) sim.StepFunc {
					return consume(idx + 1)
				})
			}
			return loop
		}
	}
	runBothWays(t, 3, procBody, fibBody)
}
