package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/ipic3d"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// decJob builds a decoupled iPIC3D particle-I/O job (Fig. 8's Decoupling
// variant) for co-scheduling tests. heavy inflates the job's output
// volume so it hogs the shared bank.
func decJob(procs int, seed int64, fibers, heavy bool) Job {
	c := ipic3d.DefaultConfig(procs)
	c.Seed = seed
	c.Fibers = fibers
	if heavy {
		c.SaveFraction = 0.5
	}
	return Job{Start: func(base mpi.Config) (*mpi.World, error) {
		j, err := ipic3d.StartIO(c, ipic3d.IODecoupled, base)
		if err != nil {
			return nil, err
		}
		return j.World(), nil
	}}
}

// TestSingleJobClusterMatchesStandalone: a one-job FCFS cluster is the
// same simulation as the standalone single-world run — same engine seed,
// same bank behavior — so the job's completion time must be identical.
func TestSingleJobClusterMatchesStandalone(t *testing.T) {
	for _, fibers := range []bool{false, true} {
		c := ipic3d.DefaultConfig(16)
		c.Seed = 3
		c.Fibers = fibers
		want, err := ipic3d.RunIO(c, ipic3d.IODecoupled)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Seed: c.Seed, Jobs: []Job{decJob(16, 3, fibers, false)}})
		if err != nil {
			t.Fatal(err)
		}
		if res.JobTimes[0] != want.Time {
			t.Errorf("fibers=%v: cluster job time %v != standalone %v", fibers, res.JobTimes[0], want.Time)
		}
		if res.Makespan != want.Time {
			t.Errorf("fibers=%v: cluster makespan %v != standalone %v", fibers, res.Makespan, want.Time)
		}
	}
}

// TestClusterDeterministicAcrossRunsAndRepresentations: repeated runs of
// the same configuration — including engine-pool reuse and the fiber
// representation — produce identical per-job trajectories.
func TestClusterDeterministicAcrossRunsAndRepresentations(t *testing.T) {
	build := func(fibers bool) Config {
		return Config{
			Seed:    7,
			Stripes: 2,
			Policy:  sim.BankFair,
			Jobs: []Job{
				decJob(16, 11, fibers, true),
				decJob(16, 12, fibers, false),
				decJob(8, 13, fibers, false),
			},
		}
	}
	first, err := Run(build(false))
	if err != nil {
		t.Fatal(err)
	}
	// A different-shaped run in between exercises engine Reset reuse.
	if _, err := Run(Config{Seed: 1, Jobs: []Job{decJob(8, 5, false, false)}}); err != nil {
		t.Fatal(err)
	}
	again, err := Run(build(false))
	if err != nil {
		t.Fatal(err)
	}
	if first.Makespan != again.Makespan {
		t.Errorf("makespan drifted across pooled reruns: %v != %v", first.Makespan, again.Makespan)
	}
	for i := range first.JobTimes {
		if first.JobTimes[i] != again.JobTimes[i] {
			t.Errorf("job %d time drifted across pooled reruns: %v != %v", i, first.JobTimes[i], again.JobTimes[i])
		}
	}
	fib, err := Run(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if fib.Makespan != first.Makespan {
		t.Errorf("fiber makespan %v != goroutine %v", fib.Makespan, first.Makespan)
	}
	for i := range first.JobTimes {
		if fib.JobTimes[i] != first.JobTimes[i] {
			t.Errorf("job %d: fiber time %v != goroutine %v", i, fib.JobTimes[i], first.JobTimes[i])
		}
	}
}

// writerJob is a minimal I/O-bound job for policy tests: procs ranks
// each issue writes independent writes of bytes, separated by gap of
// compute — sustained bank pressure whose contention window is easy to
// control.
func writerJob(procs, writes int, bytes int64, gap sim.Time, seed int64) Job {
	return Job{Start: func(base mpi.Config) (*mpi.World, error) {
		base.Procs = procs
		base.Seed = seed
		w := mpi.NewWorld(base)
		w.Start(func(r *mpi.Rank) {
			f := r.World().Open(r, "out.dat")
			for i := 0; i < writes; i++ {
				if gap > 0 {
					r.Compute(gap)
				}
				f.WriteAt(r, bytes)
			}
		})
		return w, nil
	}}
}

// TestFairShareProtectsLightJob: a multi-writer hog books the single
// stripe's timeline well ahead; under FCFS a light job queues behind that
// backlog, under fair-share the hog's bookings are paced with holes the
// light job's writes slot into, so the light job finishes strictly
// earlier (and the hog, being throttled only while contended, no earlier
// than before).
func TestFairShareProtectsLightJob(t *testing.T) {
	run := func(policy sim.BankPolicy) Result {
		res, err := Run(Config{
			Seed:    5,
			Stripes: 1,
			Policy:  policy,
			Jobs: []Job{
				writerJob(4, 100, 64<<20, 0, 21),                 // hog: ~4 writes always in flight
				writerJob(1, 20, 8<<20, 100*sim.Millisecond, 22), // light
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fcfs := run(sim.BankFCFS)
	fair := run(sim.BankFair)
	if fair.JobTimes[1] >= fcfs.JobTimes[1] {
		t.Errorf("fair-share did not protect the light job: fair %v, fcfs %v", fair.JobTimes[1], fcfs.JobTimes[1])
	}
	if fair.JobTimes[0] < fcfs.JobTimes[0] {
		t.Errorf("fair-share sped up the hog: fair %v, fcfs %v", fair.JobTimes[0], fcfs.JobTimes[0])
	}
}

// TestPriorityWeightsShiftService: two identical I/O-bound jobs on a
// narrow bank; under the priority policy the heavily-weighted job must
// finish first, and earlier than it does under equal shares.
func TestPriorityWeightsShiftService(t *testing.T) {
	jobs := func() []Job {
		a := writerJob(2, 60, 32<<20, 0, 31)
		b := writerJob(2, 60, 32<<20, 0, 31)
		a.Weight = 8
		a.Name = "gold"
		b.Name = "best-effort"
		return []Job{a, b}
	}
	prio, err := Run(Config{Seed: 9, Stripes: 1, Policy: sim.BankWeighted, Jobs: jobs()})
	if err != nil {
		t.Fatal(err)
	}
	if prio.JobTimes[0] >= prio.JobTimes[1] {
		t.Errorf("weight-8 job finished at %v, not before its weight-1 twin at %v", prio.JobTimes[0], prio.JobTimes[1])
	}
	fair, err := Run(Config{Seed: 9, Stripes: 1, Policy: sim.BankFair, Jobs: jobs()})
	if err != nil {
		t.Fatal(err)
	}
	if prio.JobTimes[0] >= fair.JobTimes[0] {
		t.Errorf("priority weight did not help: %v under priority vs %v under fair", prio.JobTimes[0], fair.JobTimes[0])
	}
}

// TestDeadlockNamesWorld: a blocked rank in a co-scheduled job shows up
// in the deadlock report under its world-prefixed name.
func TestDeadlockNamesWorld(t *testing.T) {
	stuck := Job{Name: "stuck", Start: func(base mpi.Config) (*mpi.World, error) {
		base.Procs = 2
		base.Seed = 1
		w := mpi.NewWorld(base)
		w.Start(func(r *mpi.Rank) {
			if r.ID() == 0 {
				r.World().Recv(r, 1, 7) // never sent
			}
		})
		return w, nil
	}}
	_, err := Run(Config{Seed: 2, Jobs: []Job{decJob(8, 4, false, false), stuck}})
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected a deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "stuck/rank0") {
		t.Errorf("deadlock report does not name the world: %v", err)
	}
}

// TestStartFailureUnwinds: a job failing to start must not poison the
// engine or leak the already-spawned jobs' goroutines; the next run on a
// fresh engine must still work.
func TestStartFailureUnwinds(t *testing.T) {
	boom := Job{Start: func(base mpi.Config) (*mpi.World, error) {
		return nil, errors.New("boom")
	}}
	_, err := Run(Config{Seed: 3, Jobs: []Job{decJob(8, 6, false, false), boom}})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected the job error, got %v", err)
	}
	if _, err := Run(Config{Seed: 3, Jobs: []Job{decJob(8, 6, false, false)}}); err != nil {
		t.Fatalf("cluster unusable after start failure: %v", err)
	}
}

// TestParsePolicyNames: every CLI policy name round-trips onto its bank
// policy, including the work-conserving variants.
func TestParsePolicyNames(t *testing.T) {
	want := map[string]sim.BankPolicy{
		"fcfs":        sim.BankFCFS,
		"fair":        sim.BankFair,
		"priority":    sim.BankWeighted,
		"fair-wc":     sim.BankFairWC,
		"priority-wc": sim.BankWeightedWC,
	}
	for name, policy := range want {
		got, err := ParsePolicy(name)
		if err != nil || got != policy {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, policy)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q, want %q", policy, got.String(), name)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (plus slack for the test runtime's own helpers).
func settleGoroutines(t *testing.T, baseline int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) && n > baseline+2 {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// stuckJob is a job whose ranks all block on receives nobody sends.
func stuckJob(name string, procs int, seed int64) Job {
	return Job{Name: name, Start: func(base mpi.Config) (*mpi.World, error) {
		base.Procs = procs
		base.Seed = seed
		w := mpi.NewWorld(base)
		w.Start(func(r *mpi.Rank) {
			r.World().Recv(r, (r.ID()+1)%procs, 7) // never sent
		})
		return w, nil
	}}
}

// TestRunErrorUnwindsAndReuses: a deliberately deadlocking job pair must
// not leak its parked rank goroutines, and the engine (aborted and
// repooled on the error path) must serve a following healthy run.
func TestRunErrorUnwindsAndReuses(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		_, err := Run(Config{Seed: int64(i), Jobs: []Job{stuckJob("a", 4, 1), stuckJob("b", 4, 2)}})
		var dl *sim.DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("run %d: expected a deadlock error, got %v", i, err)
		}
	}
	if n := settleGoroutines(t, baseline); n > baseline+2 {
		t.Errorf("deadlocked runs leaked goroutines: %d before, %d after", baseline, n)
	}
	res, err := Run(Config{Seed: 3, Jobs: []Job{decJob(8, 6, false, false)}})
	if err != nil {
		t.Fatalf("healthy run after deadlocked runs failed: %v", err)
	}
	if res.Makespan <= 0 {
		t.Errorf("healthy run after deadlocked runs reported makespan %v", res.Makespan)
	}
}

// TestPanickingJobUnwindsOthers: a panicking rank body in one job must
// not leak the other jobs' still-parked rank goroutines — the engine
// unwinds them before re-raising. Before the fix every parked rank of
// every co-scheduled neighbor leaked on this path.
func TestPanickingJobUnwindsOthers(t *testing.T) {
	boom := Job{Name: "boom", Start: func(base mpi.Config) (*mpi.World, error) {
		base.Procs = 2
		base.Seed = 9
		w := mpi.NewWorld(base)
		w.Start(func(r *mpi.Rank) {
			r.Compute(100)
			panic("deliberate test panic")
		})
		return w, nil
	}}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("expected the job panic to propagate")
				} else if !strings.Contains(fmt.Sprint(r), "deliberate test panic") {
					t.Fatalf("unexpected panic: %v", r)
				}
			}()
			Run(Config{Seed: int64(i), Jobs: []Job{stuckJob("parked", 8, 1), boom}})
		}()
	}
	if n := settleGoroutines(t, baseline); n > baseline+2 {
		t.Errorf("panicking job leaked neighbors' goroutines: %d before, %d after", baseline, n)
	}
}

// TestWorkConservingReleasesHog: a hog contending with a short-lived,
// intermittently-demanding light job stays throttled forever under the
// static policies but runs at full bank rate whenever the light job's
// demand is absent under the work-conserving variants — its completion
// time must drop strictly. The light job's protection follows the
// classic work-conserving bound: each of its requests can queue behind
// at most the hog's in-flight writes (the quanta already booked when it
// arrived), never behind pre-reserved future headroom — so it is never
// worse off than under FCFS, the no-isolation baseline. (A light job
// with *continuous* demand keeps its full static protection; that case
// is asserted against the cosched scenario in internal/experiments.)
func TestWorkConservingReleasesHog(t *testing.T) {
	jobs := func() []Job {
		hog := writerJob(2, 80, 32<<20, 0, 41)
		hog.Name = "hog"
		light := writerJob(1, 6, 8<<20, 50*sim.Millisecond, 42)
		light.Name = "light"
		light.Weight = 4
		return []Job{hog, light}
	}
	run := func(policy sim.BankPolicy) Result {
		res, err := Run(Config{Seed: 13, Stripes: 1, Policy: policy, Jobs: jobs()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fcfs := run(sim.BankFCFS)
	for _, pair := range []struct{ static, wc sim.BankPolicy }{
		{sim.BankFair, sim.BankFairWC},
		{sim.BankWeighted, sim.BankWeightedWC},
	} {
		st := run(pair.static)
		wc := run(pair.wc)
		if wc.JobTimes[0] >= st.JobTimes[0] {
			t.Errorf("%v did not shorten the hog's tail: %v vs %v under %v",
				pair.wc, wc.JobTimes[0], st.JobTimes[0], pair.static)
		}
		// Work conservation: the hog must come out at (or better than)
		// the unthrottled FCFS rate within a small placement tolerance —
		// nothing holds stripes idle for the mostly-absent light job.
		if limit := fcfs.JobTimes[0] + fcfs.JobTimes[0]/20; wc.JobTimes[0] > limit {
			t.Errorf("%v left the hog throttled without contending demand: %v vs %v under fcfs",
				pair.wc, wc.JobTimes[0], fcfs.JobTimes[0])
		}
		// The light job never does worse than the no-isolation baseline.
		if wc.JobTimes[1] > fcfs.JobTimes[1] {
			t.Errorf("%v left the light job worse than FCFS: %v vs %v",
				pair.wc, wc.JobTimes[1], fcfs.JobTimes[1])
		}
		// Demand accounting: the hog spends less time demand-active when
		// served faster, and per-job busy time is policy-independent
		// (the same bytes cross the bank either way).
		if wc.JobDemand[0] >= st.JobDemand[0] {
			t.Errorf("%v: hog demand time %v did not drop vs %v", pair.wc, wc.JobDemand[0], st.JobDemand[0])
		}
		if wc.JobBusy[0] != st.JobBusy[0] || wc.JobBusy[1] != st.JobBusy[1] {
			t.Errorf("%v: per-job busy time moved: %v/%v vs %v/%v",
				pair.wc, wc.JobBusy[0], wc.JobBusy[1], st.JobBusy[0], st.JobBusy[1])
		}
	}
}
