// Package cluster co-schedules several independent jobs — each an
// mpi.World running a decoupled compute+I/O application — on one
// simulation engine, contending for a shared striped-file-system bank.
//
// The paper's decoupling strategy isolates compute and I/O groups inside
// one job; its end state (burst-buffer-style data staging at exascale) is
// only stressed when several jobs' decoupled groups contend for the same
// storage stripes. A Cluster models exactly that regime: every job keeps
// its private network, matching state and files, while stripe time is
// arbitrated between jobs by a pluggable inter-job policy (FCFS,
// fair-share, priority, and their work-conserving demand-signalled
// variants fair-wc/priority-wc — sim.BankPolicy) layered over the
// per-stripe least-loaded placement each job already used alone. Worlds
// attached to the shared bank bracket every file operation with the
// bank's demand hooks, so the work-conserving policies re-split idle
// jobs' entitlement over the jobs that currently have queued writes.
//
// # Determinism
//
// A cluster run is one simulation: every world's events schedule through
// the shared engine's (t, seq) order, so the trajectory — and therefore
// every per-job time — is a pure function of (sim.TrajectoryVersion, the
// cluster seed, the ordered job list with each job's configuration, and
// the bank policy). Job spawn order fixes global process identifiers;
// representation (goroutine or fiber rank bodies) does not change the
// trajectory, exactly as for single-world runs.
//
// With Config.Cores >= 1 the cluster runs in the conservative parallel
// mode instead: every job's ranks are spread across one shared
// sim.ShardGroup and the bank arbitrates stripe time through its
// window-boundary reservation protocol. That family's trajectory is
// byte-identical for every Cores >= 1 (the shard count only picks the
// worker parallelism) but distinct from the classic Cores == 0 family,
// because reservations ride boundary events. Both families share the
// purity guarantee above.
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// ParsePolicy maps the cosched CLI names onto bank policies: "fcfs",
// "fair", "priority" and the work-conserving variants "fair-wc" and
// "priority-wc".
func ParsePolicy(s string) (sim.BankPolicy, error) {
	switch s {
	case "fcfs":
		return sim.BankFCFS, nil
	case "fair":
		return sim.BankFair, nil
	case "priority":
		return sim.BankWeighted, nil
	case "fair-wc":
		return sim.BankFairWC, nil
	case "priority-wc":
		return sim.BankWeightedWC, nil
	default:
		return 0, fmt.Errorf("cluster: unknown policy %q (want fcfs, fair, priority, fair-wc or priority-wc)", s)
	}
}

// Job is one co-scheduled job.
type Job struct {
	// Name labels the job's ranks in deadlock reports ("name/rank3").
	// Empty means "job<i>".
	Name string
	// Weight is the job's bank share weight under the priority policy
	// (sim.BankWeighted): a weight-4 job may consume four times the
	// stripe time of a weight-1 job before the bank pushes it back.
	// Zero means 1; other policies ignore it.
	Weight float64
	// Start builds the job's world from base — which carries the shared
	// Engine, Bank, Job index, Name and cluster-wide FS cost model — and
	// spawns its rank bodies without running the engine (World.Start /
	// World.StartFibers, or an app-level starter such as ipic3d.StartIO).
	// It returns the started world, whose Makespan becomes the job's
	// completion time.
	Start func(base mpi.Config) (*mpi.World, error)
}

// Config describes one co-scheduled run.
type Config struct {
	// Jobs are started in order; order is part of the trajectory.
	Jobs []Job
	// Policy arbitrates stripe time between jobs.
	Policy sim.BankPolicy
	// FS is the shared file-system cost model. The zero value is replaced
	// by netmodel.LustreLike.
	FS netmodel.FSParams
	// Stripes overrides FS.Stripes when positive.
	Stripes int
	// Seed seeds the shared engine (per-process random streams). Each
	// job's application seed travels in its own configuration.
	Seed int64
	// StripeFaults schedules degradation windows on the shared bank's
	// stripes: StripeFaults[i] holds stripe i's outage/derate windows
	// (sim.ValidateStripeFaults). The bank is built per run, so faults
	// are installed fresh each Run; nil schedules nothing and keeps
	// trajectories byte-identical to the fault-free build.
	StripeFaults [][]sim.StripeFault
	// Cores >= 1 runs the cluster in the conservative parallel mode:
	// every job's ranks are spread across Cores shard engines sharing
	// one group, and the bank arbitrates stripe time through its
	// window-boundary reservation protocol (sim.Bank.AttachGroup). The
	// sharded trajectory family is byte-identical for every Cores >= 1 —
	// Cores only picks the worker count — but differs from the classic
	// family, because cross-shard reservations ride window-boundary
	// events: Cores == 0 keeps the classic shared-engine run unchanged.
	Cores int
}

// Result is one co-scheduled run's outcome.
type Result struct {
	// Makespan is the completion time of the whole cluster (the engine's
	// final virtual time).
	Makespan sim.Time
	// JobTimes is each job's own completion time (the latest finish of
	// its rank bodies), in job order.
	JobTimes []sim.Time
	// JobBusy is each job's total reserved stripe time, in job order.
	JobBusy []sim.Time
	// JobDemand is each job's cumulative I/O-active time — virtual time
	// during which at least one of its ranks was inside a file operation
	// (the bank's IOBegin/IOEnd demand signal) — in job order. It is the
	// denominator that makes stripe-time numbers comparable: a job with
	// high demand and low busy time was starved, one with busy close to
	// demand was served at full rate.
	JobDemand []sim.Time
	// BankBusy is the total reserved stripe time across all jobs.
	BankBusy sim.Time
}

// enginePool recycles engines across cluster runs, so co-scheduling
// sweeps reuse event-heap and ring capacity the way single-world sweeps
// reuse pooled worlds. A reset engine is behaviourally identical to a
// fresh one.
var enginePool sync.Pool

func getEngine(seed int64) *sim.Engine {
	if v := enginePool.Get(); v != nil {
		e := v.(*sim.Engine)
		e.Reset(seed)
		return e
	}
	return sim.NewEngine(seed)
}

// Run starts every job on one shared engine (or, with Cores >= 1, one
// shared shard group) and bank and runs the simulation to completion.
// Worlds created by the jobs are externally owned (never pooled);
// classic engines are recycled across Run calls, shard groups are built
// per run.
func Run(cfg Config) (Result, error) {
	n := len(cfg.Jobs)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster: no jobs")
	}
	fs := cfg.FS
	if fs == (netmodel.FSParams{}) {
		fs = netmodel.LustreLike()
	}
	if cfg.Stripes > 0 {
		fs.Stripes = cfg.Stripes
	}
	if err := fs.Validate(); err != nil {
		return Result{}, err
	}
	sharded := cfg.Cores >= 1
	var eng *sim.Engine
	var group *sim.ShardGroup
	if sharded {
		// The group's lookahead is deferred: each job's world tightens it
		// with its own network's minimum cross-shard latency at Start.
		group = sim.NewShardGroupDeferred(cfg.Seed, cfg.Cores)
	} else {
		eng = getEngine(cfg.Seed)
	}
	bank := sim.NewBank(fs.Stripes, n, cfg.Policy)
	if sharded {
		bank.AttachGroup(group, 0)
	}
	for i, sf := range cfg.StripeFaults {
		if i < bank.Width() {
			bank.SetStripeFaults(i, sf)
		}
	}
	// abort unwinds whatever processes have been spawned so their
	// goroutines do not leak. Classic engines are repooled (getEngine
	// resets them); shard groups are built per run and simply dropped.
	abort := func() {
		if sharded {
			group.Abort()
			return
		}
		eng.Abort()
		enginePool.Put(eng)
	}
	worlds := make([]*mpi.World, n)
	for i, job := range cfg.Jobs {
		if w := job.Weight; w > 0 {
			bank.SetWeight(i, w)
		}
		name := job.Name
		if name == "" {
			name = fmt.Sprintf("job%d", i)
		}
		base := mpi.Config{Bank: bank, Job: i, Name: name, FS: fs}
		if sharded {
			base.Group = group
		} else {
			base.Engine = eng
		}
		w, err := job.Start(base)
		if err != nil {
			abort()
			return Result{}, fmt.Errorf("cluster: job %d (%s): %w", i, name, err)
		}
		worlds[i] = w
	}
	var makespan sim.Time
	var err error
	if sharded {
		makespan, err = group.Run()
	} else {
		makespan, err = eng.Run()
	}
	if err != nil {
		// A failed run unwinds like a failed start. Run itself unwinds
		// parked goroutines before returning a deadlock error, so the
		// Abort is defensive belt-and-braces (idempotent: its unwind is
		// a no-op when nothing is parked); the load-bearing half for the
		// classic path is repooling — getEngine resets the engine, and a
		// reset engine is behaviourally identical to a fresh one, so the
		// error path no longer drops the warmed heap/ring capacity.
		abort()
		return Result{}, err
	}
	res := Result{
		Makespan:  makespan,
		JobTimes:  make([]sim.Time, n),
		JobBusy:   make([]sim.Time, n),
		JobDemand: make([]sim.Time, n),
		BankBusy:  bank.Busy(),
	}
	for i, w := range worlds {
		res.JobTimes[i] = w.Makespan()
		res.JobBusy[i] = bank.JobBusy(i)
		res.JobDemand[i] = bank.JobDemand(i)
	}
	if !sharded {
		enginePool.Put(eng)
	}
	return res, nil
}
