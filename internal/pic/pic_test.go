package pic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec3Algebra(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("add/sub broken")
	}
	if a.Dot(b) != 32 {
		t.Fatal("dot broken")
	}
	if a.Cross(b) != (Vec3{-3, 6, -3}) {
		t.Fatal("cross broken")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-12 {
		t.Fatal("norm broken")
	}
}

func TestBorisConservesEnergyInPureB(t *testing.T) {
	// With E = 0 the Boris rotation conserves kinetic energy exactly
	// (up to floating point), no matter how many steps.
	p := Particle{Vel: Vec3{1, 0.5, -0.25}, QoverM: -1}
	f := UniformField{B: Vec3{0, 0, 2}}
	e0 := KineticEnergy(p)
	for i := 0; i < 10_000; i++ {
		BorisPush(&p, f, 0.05)
	}
	e1 := KineticEnergy(p)
	if rel := math.Abs(e1-e0) / e0; rel > 1e-9 {
		t.Fatalf("energy drifted by %v in pure B field", rel)
	}
}

func TestBorisGyroRadius(t *testing.T) {
	// A particle with speed v perpendicular to B gyrates on a circle of
	// radius r = v / (|q/m| B).
	v, b := 1.0, 2.0
	p := Particle{Pos: Vec3{}, Vel: Vec3{X: v}, QoverM: -1}
	f := UniformField{B: Vec3{Z: b}}
	dt := 0.001
	minX, maxX := 0.0, 0.0
	for i := 0; i < 100_000; i++ {
		BorisPush(&p, f, dt)
		minX = math.Min(minX, p.Pos.X)
		maxX = math.Max(maxX, p.Pos.X)
	}
	diameter := maxX - minX
	want := 2 * v / b
	if math.Abs(diameter-want)/want > 0.01 {
		t.Fatalf("gyro diameter = %v, want %v", diameter, want)
	}
}

func TestBorisEAcceleration(t *testing.T) {
	// Pure E field: dv/dt = (q/m) E.
	p := Particle{QoverM: 2}
	f := UniformField{E: Vec3{X: 3}}
	for i := 0; i < 1000; i++ {
		BorisPush(&p, f, 0.001)
	}
	// After t=1: v = q/m * E * t = 6.
	if math.Abs(p.Vel.X-6) > 1e-9 {
		t.Fatalf("vx = %v, want 6", p.Vel.X)
	}
}

func TestBorisExBDrift(t *testing.T) {
	// Crossed fields: guiding center drifts at v_d = E x B / B^2,
	// independent of charge sign.
	f := UniformField{E: Vec3{Y: 0.2}, B: Vec3{Z: 1}}
	wantVx := 0.2 // (E x B)/B^2 = (0.2*1)/1 in +x
	for _, qm := range []float64{-1, 1} {
		p := Particle{Vel: Vec3{}, QoverM: qm}
		steps := 200_000
		dt := 0.005
		for i := 0; i < steps; i++ {
			BorisPush(&p, f, dt)
		}
		avgVx := p.Pos.X / (float64(steps) * dt)
		if math.Abs(avgVx-wantVx) > 0.01 {
			t.Fatalf("q/m=%v drift vx = %v, want %v", qm, avgVx, wantVx)
		}
	}
}

func TestHarrisFieldReverses(t *testing.T) {
	f := HarrisField{B0: 1, Y0: 0.5, W: 0.1}
	_, bLow := f.EB(Vec3{Y: 0.1})
	_, bMid := f.EB(Vec3{Y: 0.5})
	_, bHigh := f.EB(Vec3{Y: 0.9})
	if bLow.X >= 0 || bHigh.X <= 0 {
		t.Fatalf("field does not reverse: %v .. %v", bLow.X, bHigh.X)
	}
	if math.Abs(bMid.X) > 1e-12 {
		t.Fatalf("field not zero at sheet center: %v", bMid.X)
	}
}

func TestDomainContainsAndExit(t *testing.T) {
	d := Domain{Lo: Vec3{0, 0, 0}, Hi: Vec3{1, 1, 1}}
	if !d.Contains(Vec3{0.5, 0.5, 0.5}) || d.Contains(Vec3{1, 0.5, 0.5}) {
		t.Fatal("Contains broken")
	}
	if dir := d.ExitDirection(Vec3{-0.1, 0.5, 1.2}); dir != [3]int{-1, 0, 1} {
		t.Fatalf("ExitDirection = %v", dir)
	}
	if dir := d.ExitDirection(Vec3{0.5, 0.5, 0.5}); dir != [3]int{0, 0, 0} {
		t.Fatalf("inside point exit = %v", dir)
	}
}

func TestDepositConservesCharge(t *testing.T) {
	d := Domain{Lo: Vec3{0, 0, 0}, Hi: Vec3{2, 2, 2}}
	g := NewGrid(d, [3]int{8, 8, 8})
	total := 0.0
	parts := LoadHarris(d, 500, 0.12, 0.2, 0.1, 3)
	for _, p := range parts {
		g.Deposit(p.Pos, 1.0)
		total += 1.0
	}
	if math.Abs(g.TotalCharge()-total)/total > 1e-9 {
		t.Fatalf("deposited %v, want %v", g.TotalCharge(), total)
	}
}

func TestDepositLocality(t *testing.T) {
	d := Domain{Lo: Vec3{0, 0, 0}, Hi: Vec3{1, 1, 1}}
	g := NewGrid(d, [3]int{4, 4, 4})
	// Deposit exactly at the center of cell (1,1,1).
	g.Deposit(Vec3{0.375, 0.375, 0.375}, 8)
	if got := g.Rho(1, 1, 1); math.Abs(got-8) > 1e-9 {
		t.Fatalf("cell-centered deposit spread out: rho=%v", got)
	}
}

func TestGridReset(t *testing.T) {
	d := Domain{Lo: Vec3{}, Hi: Vec3{1, 1, 1}}
	g := NewGrid(d, [3]int{2, 2, 2})
	g.Deposit(Vec3{0.5, 0.5, 0.5}, 1)
	g.Reset()
	if g.TotalCharge() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestLoadHarrisConcentratesInSheet(t *testing.T) {
	d := Domain{Lo: Vec3{0, 0, 0}, Hi: Vec3{1, 1, 1}}
	parts := LoadHarris(d, 4000, 0.12, 0.2, 0.05, 7)
	if len(parts) != 4000 {
		t.Fatalf("loaded %d particles", len(parts))
	}
	center, edge := 0, 0
	for _, p := range parts {
		switch {
		case p.Pos.Y > 0.4 && p.Pos.Y < 0.6:
			center++
		case p.Pos.Y < 0.2 || p.Pos.Y > 0.8:
			edge++
		}
	}
	if center < edge {
		t.Fatalf("no sheet concentration: center band %d vs edges %d", center, edge)
	}
	for _, p := range parts {
		if !d.Contains(p.Pos) {
			t.Fatalf("particle loaded outside domain: %+v", p.Pos)
		}
	}
}

func TestLoadHarrisDeterministic(t *testing.T) {
	d := Domain{Lo: Vec3{}, Hi: Vec3{1, 1, 1}}
	a := LoadHarris(d, 50, 0.12, 0.2, 0.05, 11)
	b := LoadHarris(d, 50, 0.12, 0.2, 0.05, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("LoadHarris nondeterministic")
		}
	}
}

func TestMoveAllPartitions(t *testing.T) {
	d := Domain{Lo: Vec3{0, 0, 0}, Hi: Vec3{1, 1, 1}}
	parts := []Particle{
		{Pos: Vec3{0.5, 0.5, 0.5}, Vel: Vec3{X: 100}, QoverM: -1}, // will exit
		{Pos: Vec3{0.5, 0.5, 0.5}, Vel: Vec3{X: 0.001}, QoverM: -1},
	}
	stay, leave := MoveAll(parts, UniformField{}, 0.01, d)
	if len(stay) != 1 || len(leave) != 1 {
		t.Fatalf("stay=%d leave=%d", len(stay), len(leave))
	}
	if !d.Contains(stay[0].Pos) {
		t.Fatal("stayer outside domain")
	}
	if d.Contains(leave[0].Pos) {
		t.Fatal("leaver inside domain")
	}
}

// Property: Boris push with zero fields is ballistic motion.
func TestBallisticProperty(t *testing.T) {
	f := func(vx, vy, vz int8, steps uint8) bool {
		v := Vec3{float64(vx), float64(vy), float64(vz)}
		p := Particle{Vel: v, QoverM: -1}
		n := int(steps)%50 + 1
		dt := 0.01
		for i := 0; i < n; i++ {
			BorisPush(&p, UniformField{}, dt)
		}
		want := v.Scale(float64(n) * dt)
		return p.Pos.Sub(want).Norm() < 1e-9 && p.Vel == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
