// Package pic is a real (miniature) particle-in-cell substrate standing in
// for iPIC3D (paper Section IV-D): particles with positions and
// velocities, the Boris pusher for trajectories in electromagnetic fields,
// charge deposition onto a grid, and subdomain-exit detection. The
// at-scale experiments cost these kernels through the simulator; the tests
// here verify the physics (energy conservation, gyro motion, deposition
// conservation) for real.
package pic

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Cross returns a × b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Dot returns a · b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Particle is one computational particle.
type Particle struct {
	Pos Vec3
	Vel Vec3
	// QoverM is the charge-to-mass ratio.
	QoverM float64
}

// Field samples the electromagnetic field at a position.
type Field interface {
	// EB returns the electric and magnetic field at pos.
	EB(pos Vec3) (e Vec3, b Vec3)
}

// UniformField is a constant E and B field.
type UniformField struct{ E, B Vec3 }

// EB returns the uniform field values.
func (f UniformField) EB(Vec3) (Vec3, Vec3) { return f.E, f.B }

// HarrisField is the GEM-challenge magnetic configuration: Bx reverses
// across a current sheet at y = Y0 with half-width W, i.e.
// Bx(y) = B0 * tanh((y-Y0)/W).
type HarrisField struct {
	B0 float64
	Y0 float64
	W  float64
}

// EB evaluates the Harris-sheet field (E = 0).
func (f HarrisField) EB(pos Vec3) (Vec3, Vec3) {
	return Vec3{}, Vec3{X: f.B0 * math.Tanh((pos.Y-f.Y0)/f.W)}
}

// BorisPush advances one particle by dt using the Boris rotation scheme —
// the standard, energy-conserving PIC mover that iPIC3D's particle mover
// is built around. It mutates p in place.
func BorisPush(p *Particle, f Field, dt float64) {
	e, b := f.EB(p.Pos)
	qmdt2 := p.QoverM * dt / 2

	// Half electric acceleration.
	vMinus := p.Vel.Add(e.Scale(qmdt2))
	// Magnetic rotation.
	t := b.Scale(qmdt2)
	t2 := t.Dot(t)
	s := t.Scale(2 / (1 + t2))
	vPrime := vMinus.Add(vMinus.Cross(t))
	vPlus := vMinus.Add(vPrime.Cross(s))
	// Second half electric acceleration.
	p.Vel = vPlus.Add(e.Scale(qmdt2))
	// Position update.
	p.Pos = p.Pos.Add(p.Vel.Scale(dt))
}

// KineticEnergy returns m/2 * v^2 per unit mass (QoverM carries the charge
// scaling, so this is v^2/2).
func KineticEnergy(p Particle) float64 { return 0.5 * p.Vel.Dot(p.Vel) }

// Domain is an axis-aligned box, used as one process's subdomain.
type Domain struct {
	Lo, Hi Vec3
}

// Contains reports whether pos is inside the half-open box [Lo, Hi).
func (d Domain) Contains(pos Vec3) bool {
	return pos.X >= d.Lo.X && pos.X < d.Hi.X &&
		pos.Y >= d.Lo.Y && pos.Y < d.Hi.Y &&
		pos.Z >= d.Lo.Z && pos.Z < d.Hi.Z
}

// ExitDirection classifies where pos left the box: for each axis -1, 0 or
// +1. The zero vector means the position is still inside.
func (d Domain) ExitDirection(pos Vec3) [3]int {
	var dir [3]int
	switch {
	case pos.X < d.Lo.X:
		dir[0] = -1
	case pos.X >= d.Hi.X:
		dir[0] = 1
	}
	switch {
	case pos.Y < d.Lo.Y:
		dir[1] = -1
	case pos.Y >= d.Hi.Y:
		dir[1] = 1
	}
	switch {
	case pos.Z < d.Lo.Z:
		dir[2] = -1
	case pos.Z >= d.Hi.Z:
		dir[2] = 1
	}
	return dir
}

// Grid is a uniform 3-D charge-deposition grid over a domain.
type Grid struct {
	Domain Domain
	N      [3]int
	rho    []float64
}

// NewGrid builds an n[0] x n[1] x n[2] grid over dom.
func NewGrid(dom Domain, n [3]int) *Grid {
	for _, d := range n {
		if d <= 0 {
			panic(fmt.Sprintf("pic: grid dims %v", n))
		}
	}
	return &Grid{Domain: dom, N: n, rho: make([]float64, n[0]*n[1]*n[2])}
}

// Rho returns the deposited density at cell (i, j, k).
func (g *Grid) Rho(i, j, k int) float64 {
	return g.rho[(i*g.N[1]+j)*g.N[2]+k]
}

// TotalCharge sums the deposited density over all cells.
func (g *Grid) TotalCharge() float64 {
	var total float64
	for _, v := range g.rho {
		total += v
	}
	return total
}

// Reset clears the deposition.
func (g *Grid) Reset() {
	for i := range g.rho {
		g.rho[i] = 0
	}
}

// Deposit adds charge q at pos using cloud-in-cell (trilinear) weighting,
// the deposition scheme of PIC moment gathering. Positions outside the
// domain are clamped to the boundary cell.
func (g *Grid) Deposit(pos Vec3, q float64) {
	ext := g.Domain.Hi.Sub(g.Domain.Lo)
	fx := (pos.X - g.Domain.Lo.X) / ext.X * float64(g.N[0])
	fy := (pos.Y - g.Domain.Lo.Y) / ext.Y * float64(g.N[1])
	fz := (pos.Z - g.Domain.Lo.Z) / ext.Z * float64(g.N[2])
	// Cell-centered weighting: shift to cell centers.
	fx -= 0.5
	fy -= 0.5
	fz -= 0.5
	i0, wx := splitWeight(fx, g.N[0])
	j0, wy := splitWeight(fy, g.N[1])
	k0, wz := splitWeight(fz, g.N[2])
	for di := 0; di < 2; di++ {
		for dj := 0; dj < 2; dj++ {
			for dk := 0; dk < 2; dk++ {
				i, j, k := clampIdx(i0+di, g.N[0]), clampIdx(j0+dj, g.N[1]), clampIdx(k0+dk, g.N[2])
				w := weight(wx, di) * weight(wy, dj) * weight(wz, dk)
				g.rho[(i*g.N[1]+j)*g.N[2]+k] += q * w
			}
		}
	}
}

func splitWeight(f float64, n int) (int, float64) {
	i := int(math.Floor(f))
	return i, f - float64(i)
}

func weight(w float64, d int) float64 {
	if d == 0 {
		return 1 - w
	}
	return w
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// LoadHarris samples n particles over dom with a Harris-sheet density
// profile across Y (matching workload.ParticleField) and a thermal
// velocity spread vth. Deterministic in seed.
func LoadHarris(dom Domain, n int, sheetWidth, background, vth float64, seed int64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	ext := dom.Hi.Sub(dom.Lo)
	out := make([]Particle, 0, n)
	maxDensity := 1.0
	for len(out) < n {
		// Rejection-sample y against the Harris profile.
		y := rng.Float64()
		s := 1 / math.Cosh((y-0.5)/sheetWidth)
		density := background + (1-background)*s*s
		if rng.Float64()*maxDensity > density {
			continue
		}
		out = append(out, Particle{
			Pos: Vec3{
				X: dom.Lo.X + rng.Float64()*ext.X,
				Y: dom.Lo.Y + y*ext.Y,
				Z: dom.Lo.Z + rng.Float64()*ext.Z,
			},
			Vel: Vec3{
				X: rng.NormFloat64() * vth,
				Y: rng.NormFloat64() * vth,
				Z: rng.NormFloat64() * vth,
			},
			QoverM: -1,
		})
	}
	return out
}

// MoveAll pushes every particle and partitions them into stayers and
// leavers relative to dom — the per-step kernel whose leavers feed the
// particle-communication operation.
func MoveAll(parts []Particle, f Field, dt float64, dom Domain) (stay, leave []Particle) {
	stay = parts[:0]
	for i := range parts {
		BorisPush(&parts[i], f, dt)
		if dom.Contains(parts[i].Pos) {
			stay = append(stay, parts[i])
		} else {
			leave = append(leave, parts[i])
		}
	}
	return stay, leave
}
