package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecorderCollectsAndDropsEmpty(t *testing.T) {
	var rec Recorder
	rec.Span(0, "comp", "mover", 0, 100)
	rec.Span(0, "comm", "wait", 100, 100) // zero-length: dropped
	rec.Span(1, "io", "write", 50, 150)
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
}

func TestBusyAggregation(t *testing.T) {
	var rec Recorder
	rec.Span(0, "comp", "a", 0, 100)
	rec.Span(0, "comp", "b", 100, 250)
	rec.Span(0, "comm", "w", 250, 300)
	rec.Span(1, "comp", "c", 0, 999)
	busy := rec.Busy(0)
	if busy["comp"] != 250 || busy["comm"] != 50 {
		t.Fatalf("Busy(0) = %v", busy)
	}
}

func TestWindow(t *testing.T) {
	var rec Recorder
	if lo, hi := rec.Window(); lo != 0 || hi != 0 {
		t.Fatalf("empty window = %v..%v", lo, hi)
	}
	rec.Span(0, "comp", "", 200, 300)
	rec.Span(1, "comp", "", 100, 250)
	lo, hi := rec.Window()
	if lo != 100 || hi != 300 {
		t.Fatalf("window = %v..%v, want 100..300", lo, hi)
	}
}

func TestTimelineShape(t *testing.T) {
	var rec Recorder
	// Rank 0: compute then comm; rank 1: all compute.
	rec.Span(0, "comp", "", 0, 50*sim.Millisecond)
	rec.Span(0, "comm", "", 50*sim.Millisecond, 100*sim.Millisecond)
	rec.Span(1, "comp", "", 0, 100*sim.Millisecond)
	var buf bytes.Buffer
	if err := rec.Timeline(&buf, TimelineOptions{Width: 20}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "P0") || !strings.HasPrefix(lines[1], "P1") {
		t.Fatalf("unexpected rows:\n%s", out)
	}
	row0 := lines[0][strings.Index(lines[0], "|")+1:]
	if !strings.HasPrefix(row0, "##########") || !strings.Contains(row0, "..........") {
		t.Fatalf("rank 0 row %q does not show half compute half comm", row0)
	}
	row1 := lines[1][strings.Index(lines[1], "|")+1:]
	if strings.ContainsAny(row1, ".~ ") {
		t.Fatalf("rank 1 row %q should be all compute", row1)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var rec Recorder
	var buf bytes.Buffer
	if err := rec.Timeline(&buf, TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("empty trace output: %q", buf.String())
	}
}

func TestTimelineRankFilter(t *testing.T) {
	var rec Recorder
	rec.Span(0, "comp", "", 0, 100)
	rec.Span(5, "comp", "", 0, 100)
	var buf bytes.Buffer
	if err := rec.Timeline(&buf, TimelineOptions{Width: 10, Ranks: []int{5}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "P0 ") {
		t.Fatal("rank filter ignored")
	}
	if !strings.Contains(buf.String(), "P5") {
		t.Fatal("requested rank missing")
	}
}

func TestCSVFormat(t *testing.T) {
	var rec Recorder
	rec.Span(3, "io", "write_shared", 10, 20)
	var buf bytes.Buffer
	if err := rec.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "rank,category,label,start_ns,end_ns\n3,io,write_shared,10,20\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestReset(t *testing.T) {
	var rec Recorder
	rec.Span(0, "comp", "", 0, 10)
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset did not clear spans")
	}
}
