package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Utilization is one rank's activity breakdown over the trace window.
type Utilization struct {
	Rank int
	// Busy is time per category.
	Busy map[string]sim.Time
	// Total is the trace window length.
	Total sim.Time
	// Fraction returns the share of the window spent in a category.
}

// Fraction reports the share of the window spent in category.
func (u Utilization) Fraction(category string) float64 {
	if u.Total <= 0 {
		return 0
	}
	return float64(u.Busy[category]) / float64(u.Total)
}

// Idle reports the share of the window covered by no recorded span.
func (u Utilization) Idle() float64 {
	if u.Total <= 0 {
		return 0
	}
	var busy sim.Time
	for _, t := range u.Busy {
		busy += t
	}
	f := 1 - float64(busy)/float64(u.Total)
	if f < 0 {
		return 0
	}
	return f
}

// Utilizations computes per-rank activity breakdowns over the full trace
// window. Ranks appear in ascending order.
func (rec *Recorder) Utilizations() []Utilization {
	lo, hi := rec.Window()
	total := hi - lo
	byRank := map[int]map[string]sim.Time{}
	for _, s := range rec.spans {
		m := byRank[s.Rank]
		if m == nil {
			m = map[string]sim.Time{}
			byRank[s.Rank] = m
		}
		m[s.Category] += s.End - s.Start
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	out := make([]Utilization, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, Utilization{Rank: r, Busy: byRank[r], Total: total})
	}
	return out
}

// Summary writes a per-rank utilization table: the quantitative companion
// to the Fig. 2 timelines (how much of each rank's time is computation vs
// communication wait vs I/O).
func (rec *Recorder) Summary(w io.Writer) error {
	utils := rec.Utilizations()
	if len(utils) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	if _, err := fmt.Fprintf(w, "rank  compute  comm-wait  io     idle\n"); err != nil {
		return err
	}
	for _, u := range utils {
		if _, err := fmt.Fprintf(w, "P%-4d %6.1f%%  %8.1f%%  %5.1f%%  %5.1f%%\n",
			u.Rank, 100*u.Fraction("comp"), 100*u.Fraction("comm"),
			100*u.Fraction("io"), 100*u.Idle()); err != nil {
			return err
		}
	}
	return nil
}
