// Package trace records per-rank execution spans from the simulated
// runtime and renders them as timelines, reproducing the HPCToolkit-style
// views of the paper's Fig. 2 and the schematic schedules of Fig. 3.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Span is one contiguous activity interval on one rank.
type Span struct {
	Rank     int
	Category string // "comp", "comm", "io"
	Label    string
	Start    sim.Time
	End      sim.Time
}

// Recorder collects spans; it implements the runtime's Tracer interface.
// The zero value is ready to use.
type Recorder struct {
	spans []Span
}

// Span records one interval. Zero-length spans are dropped.
func (rec *Recorder) Span(rank int, category, label string, start, end sim.Time) {
	if end <= start {
		return
	}
	rec.spans = append(rec.spans, Span{Rank: rank, Category: category, Label: label, Start: start, End: end})
}

// Spans returns the recorded spans in recording order.
func (rec *Recorder) Spans() []Span { return rec.spans }

// Reset discards all recorded spans.
func (rec *Recorder) Reset() { rec.spans = rec.spans[:0] }

// Len reports the number of recorded spans.
func (rec *Recorder) Len() int { return len(rec.spans) }

// Busy sums the recorded time per category for one rank.
func (rec *Recorder) Busy(rank int) map[string]sim.Time {
	out := make(map[string]sim.Time)
	for _, s := range rec.spans {
		if s.Rank == rank {
			out[s.Category] += s.End - s.Start
		}
	}
	return out
}

// Window reports the [min start, max end] covered by the recording.
func (rec *Recorder) Window() (sim.Time, sim.Time) {
	if len(rec.spans) == 0 {
		return 0, 0
	}
	lo, hi := sim.MaxTime, sim.Time(0)
	for _, s := range rec.spans {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return lo, hi
}

// categoryRunes maps span categories to timeline glyphs. Unknown
// categories render as '?'.
var categoryRunes = map[string]rune{
	"comp": '#', // computation (grey in the paper's Fig. 2)
	"comm": '.', // communication wait (blue)
	"io":   '~', // file I/O
}

// TimelineOptions configures ASCII rendering.
type TimelineOptions struct {
	// Width is the number of time buckets (columns). Default 100.
	Width int
	// Ranks restricts the rendering to these ranks (nil = all seen).
	Ranks []int
	// From/To crop the time window (zero values = full window).
	From, To sim.Time
}

// Timeline renders the recording as one text row per rank, bucketing time
// into columns and showing each bucket's dominant category:
//
//	rank 0 |####..####..####|
//	rank 1 |######....######|
//
// '#' is computation, '.' is communication wait, '~' is I/O, ' ' is idle.
func (rec *Recorder) Timeline(w io.Writer, opts TimelineOptions) error {
	width := opts.Width
	if width <= 0 {
		width = 100
	}
	lo, hi := rec.Window()
	if opts.To > 0 {
		hi = opts.To
	}
	if opts.From > 0 || opts.From > lo {
		lo = opts.From
	}
	if hi <= lo {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	ranks := opts.Ranks
	if ranks == nil {
		seen := map[int]bool{}
		for _, s := range rec.spans {
			seen[s.Rank] = true
		}
		for r := range seen {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
	}
	span := hi - lo
	bucket := func(t sim.Time) int {
		b := int(int64(t-lo) * int64(width) / int64(span))
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	// Per rank, per bucket, time per category.
	for _, rank := range ranks {
		occupancy := make([]map[rune]sim.Time, width)
		for _, s := range rec.spans {
			if s.Rank != rank || s.End <= lo || s.Start >= hi {
				continue
			}
			glyph, ok := categoryRunes[s.Category]
			if !ok {
				glyph = '?'
			}
			start, end := sim.Max(s.Start, lo), sim.Min(s.End, hi)
			b0, b1 := bucket(start), bucket(end-1)
			for b := b0; b <= b1; b++ {
				bLo := lo + sim.Time(int64(span)*int64(b)/int64(width))
				bHi := lo + sim.Time(int64(span)*int64(b+1)/int64(width))
				overlap := sim.Min(end, bHi) - sim.Max(start, bLo)
				if overlap <= 0 {
					continue
				}
				if occupancy[b] == nil {
					occupancy[b] = make(map[rune]sim.Time)
				}
				occupancy[b][glyph] += overlap
			}
		}
		var row strings.Builder
		for b := 0; b < width; b++ {
			best, bestT := ' ', sim.Time(0)
			// Deterministic tie-break: iterate glyphs in fixed order.
			for _, g := range []rune{'#', '.', '~', '?'} {
				if tt := occupancy[b][g]; tt > bestT {
					best, bestT = g, tt
				}
			}
			row.WriteRune(best)
		}
		if _, err := fmt.Fprintf(w, "P%-3d |%s|\n", rank, row.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      %s\n      legend: #=compute .=comm-wait ~=I/O  window %v .. %v\n",
		strings.Repeat("-", width+2), lo, hi)
	return err
}

// CSV writes the spans as "rank,category,label,start_ns,end_ns" rows for
// external plotting.
func (rec *Recorder) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rank,category,label,start_ns,end_ns"); err != nil {
		return err
	}
	for _, s := range rec.spans {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d\n",
			s.Rank, s.Category, s.Label, int64(s.Start), int64(s.End)); err != nil {
			return err
		}
	}
	return nil
}
