package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestUtilizations(t *testing.T) {
	var rec Recorder
	rec.Span(0, "comp", "", 0, 600)
	rec.Span(0, "comm", "", 600, 800)
	rec.Span(1, "comp", "", 0, 1000)
	utils := rec.Utilizations()
	if len(utils) != 2 {
		t.Fatalf("got %d utilizations", len(utils))
	}
	u0 := utils[0]
	if u0.Rank != 0 || math.Abs(u0.Fraction("comp")-0.6) > 1e-9 || math.Abs(u0.Fraction("comm")-0.2) > 1e-9 {
		t.Fatalf("rank 0 utilization %+v", u0)
	}
	if math.Abs(u0.Idle()-0.2) > 1e-9 {
		t.Fatalf("rank 0 idle = %v", u0.Idle())
	}
	if utils[1].Idle() != 0 {
		t.Fatalf("rank 1 idle = %v", utils[1].Idle())
	}
}

func TestUtilizationEmpty(t *testing.T) {
	var u Utilization
	if u.Fraction("comp") != 0 || u.Idle() != 0 {
		t.Fatal("zero utilization should report zeros")
	}
}

func TestSummaryFormat(t *testing.T) {
	var rec Recorder
	rec.Span(3, "comp", "", 0, 500)
	rec.Span(3, "io", "", 500, 1000)
	var buf bytes.Buffer
	if err := rec.Summary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "P3") || !strings.Contains(out, "50.0%") {
		t.Fatalf("summary = %q", out)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var rec Recorder
	var buf bytes.Buffer
	if err := rec.Summary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("summary = %q", buf.String())
	}
}
