// Package model implements the paper's analytic performance model
// (Section II-D, Eqs. 1-4) for an application with two operations Op0 and
// Op1, where Op1 is decoupled onto a fraction α of the processes.
package model

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Params are the quantities of Eqs. 1-4.
type Params struct {
	// TW0 is the per-process time of the retained operation Op0 when all
	// P processes participate.
	TW0 sim.Time
	// TW1 is the per-process time of the decoupled operation Op1 in the
	// conventional model (all P processes participate).
	TW1 sim.Time
	// TSigma is the expected time lost to process imbalance per stage.
	TSigma sim.Time
	// Alpha is the fraction of processes dedicated to Op1 (0 < α < 1).
	Alpha float64
	// Beta is the non-overlapped fraction of Op0 as a function of the
	// stream granularity S (β(S) in Eq. 4). Nil means BetaOf is used
	// with DefaultBeta.
	Beta func(S int64) float64
	// DecoupledTW1 is T'W1: the per-process time of Op1 once it runs on
	// the decoupled group (after optimization / complexity reduction).
	// Nil means Op1 keeps its conventional per-process time.
	DecoupledTW1 func(alpha float64) sim.Time
	// D is the total volume streamed between the groups, in bytes.
	D int64
	// S is the stream element granularity, in bytes.
	S int64
	// Overhead is o: the per-element cost of building and injecting one
	// stream element.
	Overhead sim.Time
}

// Validate reports whether the parameters are in the model's domain.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("model: alpha %v outside (0,1)", p.Alpha)
	}
	if p.TW0 < 0 || p.TW1 < 0 || p.TSigma < 0 || p.Overhead < 0 {
		return fmt.Errorf("model: negative time parameter")
	}
	if p.D < 0 || p.S < 0 {
		return fmt.Errorf("model: negative volume")
	}
	if p.S > 0 && p.D > 0 && p.S > p.D {
		return fmt.Errorf("model: granularity S=%d exceeds total volume D=%d", p.S, p.D)
	}
	return nil
}

// tw1Decoupled resolves T'W1.
func (p Params) tw1Decoupled() sim.Time {
	if p.DecoupledTW1 != nil {
		return p.DecoupledTW1(p.Alpha)
	}
	return p.TW1
}

// beta resolves β(S).
func (p Params) beta() float64 {
	if p.Beta != nil {
		return clamp01(p.Beta(p.S))
	}
	return DefaultBeta.Of(p.S)
}

// Conventional is Eq. 1: Tc = TW0 + Tσ + TW1.
func Conventional(p Params) sim.Time {
	return p.TW0 + p.TSigma + p.TW1
}

// DecoupledIdeal is Eq. 2: the two operations progress fully in parallel,
// Td = max(TW0/(1-α) + Tσ, T'W1/α).
func DecoupledIdeal(p Params) sim.Time {
	op0 := scale(p.TW0, 1/(1-p.Alpha)) + p.TSigma
	op1 := scale(p.tw1Decoupled(), 1/p.Alpha)
	return sim.Max(op0, op1)
}

// DecoupledPipelined is Eq. 3: only a β fraction of Op0 fails to overlap,
// Td = β·[TW0/(1-α) + Tσ] + T'W1/α (pessimistic assumption that Op1
// finishes after Op0).
func DecoupledPipelined(p Params) sim.Time {
	op0 := scale(p.TW0, 1/(1-p.Alpha)) + p.TSigma
	op1 := scale(p.tw1Decoupled(), 1/p.Alpha)
	return scale(op0, p.beta()) + op1
}

// Decoupled is Eq. 4: Eq. 3 plus the streaming overhead (D/S)·o, with β a
// function of the granularity S.
func Decoupled(p Params) sim.Time {
	overhead := sim.Time(0)
	if p.S > 0 {
		elements := float64(p.D) / float64(p.S)
		overhead = scale(p.Overhead, elements)
	}
	op0 := scale(p.TW0, 1/(1-p.Alpha)) + p.TSigma + overhead
	op1 := scale(p.tw1Decoupled(), 1/p.Alpha)
	return scale(op0, p.beta()) + op1
}

// Speedup is Tc / Td under Eq. 4.
func Speedup(p Params) float64 {
	td := Decoupled(p)
	if td <= 0 {
		return math.Inf(1)
	}
	return float64(Conventional(p)) / float64(td)
}

// MemoryBound reports the paper's Section II-D memory argument: the
// consumer-side memory needed by the decoupled approach. Processed-and-
// discarded streams need only S; fully buffered streams need D.
func MemoryBound(p Params, buffered bool) int64 {
	if buffered {
		return p.D
	}
	return p.S
}

// OptimalAlpha searches candidate fractions and returns the α minimizing
// Eq. 4, with its predicted time.
func OptimalAlpha(p Params, candidates []float64) (float64, sim.Time) {
	best, bestT := 0.0, sim.MaxTime
	for _, a := range candidates {
		if a <= 0 || a >= 1 {
			continue
		}
		q := p
		q.Alpha = a
		if t := Decoupled(q); t < bestT {
			best, bestT = a, t
		}
	}
	return best, bestT
}

// OptimalGranularity searches candidate element sizes and returns the S
// minimizing Eq. 4, with its predicted time. This is the paper's
// granularity trade-off: small S pipelines better (smaller β) but pays
// more per-element overhead.
func OptimalGranularity(p Params, candidates []int64) (int64, sim.Time) {
	best, bestT := int64(0), sim.MaxTime
	for _, s := range candidates {
		if s <= 0 {
			continue
		}
		q := p
		q.S = s
		if t := Decoupled(q); t < bestT {
			best, bestT = s, t
		}
	}
	return best, bestT
}

// BetaModel maps stream granularity to the non-overlapped fraction β(S):
// β falls toward Min as elements shrink (finer-grained flow pipelines
// better) and approaches 1 as one element grows to cover the whole
// transfer.
type BetaModel struct {
	// Min is the best achievable non-overlapped fraction (β at S -> 0).
	Min float64
	// Half is the granularity at which β is halfway between Min and 1.
	Half int64
}

// DefaultBeta is a moderate pipelining model: 10% of Op0 cannot overlap
// even with the finest stream, and pipelining degrades around 1 MiB
// elements.
var DefaultBeta = BetaModel{Min: 0.1, Half: 1 << 20}

// Of evaluates β(S).
func (b BetaModel) Of(S int64) float64 {
	if S <= 0 {
		return clamp01(b.Min)
	}
	frac := float64(S) / (float64(S) + float64(b.Half))
	return clamp01(b.Min + (1-b.Min)*frac)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func scale(t sim.Time, f float64) sim.Time {
	return sim.Time(float64(t) * f)
}
