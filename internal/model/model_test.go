package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func base() Params {
	return Params{
		TW0:      100 * sim.Millisecond,
		TW1:      50 * sim.Millisecond,
		TSigma:   5 * sim.Millisecond,
		Alpha:    0.0625,
		D:        1 << 30,
		S:        64 << 10,
		Overhead: 200 * sim.Nanosecond,
	}
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	bad := base()
	bad.Alpha = 0
	if bad.Validate() == nil {
		t.Error("alpha=0 accepted")
	}
	bad = base()
	bad.Alpha = 1
	if bad.Validate() == nil {
		t.Error("alpha=1 accepted")
	}
	bad = base()
	bad.S = bad.D + 1
	if bad.Validate() == nil {
		t.Error("S > D accepted")
	}
	bad = base()
	bad.TW0 = -1
	if bad.Validate() == nil {
		t.Error("negative time accepted")
	}
}

func TestConventionalIsSum(t *testing.T) {
	p := base()
	if got := Conventional(p); got != p.TW0+p.TSigma+p.TW1 {
		t.Fatalf("Tc = %v", got)
	}
}

func TestEq3LimitsMatchPaper(t *testing.T) {
	// Paper: β=1 (no pipelining) gives the sum of the two operations;
	// β=0 (perfect pipelining) leaves only the decoupled operation.
	p := base()
	p.Beta = func(int64) float64 { return 1 }
	op0 := sim.Time(float64(p.TW0)/(1-p.Alpha)) + p.TSigma
	op1 := sim.Time(float64(p.TW1) / p.Alpha)
	if got := DecoupledPipelined(p); got != op0+op1 {
		t.Fatalf("beta=1: got %v, want %v", got, op0+op1)
	}
	p.Beta = func(int64) float64 { return 0 }
	if got := DecoupledPipelined(p); got != op1 {
		t.Fatalf("beta=0: got %v, want %v", got, op1)
	}
}

func TestEq2MaxSemantics(t *testing.T) {
	p := base()
	// Make Op1 dominate.
	p.DecoupledTW1 = func(alpha float64) sim.Time { return 500 * sim.Millisecond }
	want := sim.Time(float64(500*sim.Millisecond) / p.Alpha)
	if got := DecoupledIdeal(p); got != want {
		t.Fatalf("op1-dominated ideal = %v, want %v", got, want)
	}
	// Make Op0 dominate.
	p.DecoupledTW1 = func(alpha float64) sim.Time { return 0 }
	want = sim.Time(float64(p.TW0)/(1-p.Alpha)) + p.TSigma
	if got := DecoupledIdeal(p); got != want {
		t.Fatalf("op0-dominated ideal = %v, want %v", got, want)
	}
}

func TestOverheadGrowsAsGranularityShrinks(t *testing.T) {
	p := base()
	p.Beta = func(int64) float64 { return 0.5 } // isolate the overhead term
	p.S = 1 << 20
	coarse := Decoupled(p)
	p.S = 1 << 10
	fine := Decoupled(p)
	if fine <= coarse {
		t.Fatalf("finer granularity did not increase overhead: fine=%v coarse=%v", fine, coarse)
	}
}

func TestGranularityTradeoffHasInteriorOptimum(t *testing.T) {
	p := base()
	candidates := []int64{1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 28}
	s, _ := OptimalGranularity(p, candidates)
	if s == candidates[0] || s == candidates[len(candidates)-1] {
		t.Fatalf("optimal S = %d is at the boundary; expected interior optimum", s)
	}
}

func TestOptimalAlphaPrefersSmallGroupForCheapOp(t *testing.T) {
	p := base()
	// The decoupled op gets dramatically cheaper on a small group
	// (complexity reduction), mimicking the MapReduce reduce op.
	p.DecoupledTW1 = func(alpha float64) sim.Time {
		return sim.Time(float64(p.TW1) * alpha * 2)
	}
	a, _ := OptimalAlpha(p, []float64{0.03125, 0.0625, 0.125, 0.25, 0.5})
	if a > 0.125 {
		t.Fatalf("optimal alpha = %v, expected a small consumer group", a)
	}
}

func TestSpeedupPositiveWorkload(t *testing.T) {
	p := base()
	p.DecoupledTW1 = func(alpha float64) sim.Time { return sim.Time(float64(p.TW1) * alpha) }
	s := Speedup(p)
	if s <= 0 || math.IsNaN(s) {
		t.Fatalf("speedup = %v", s)
	}
}

func TestMemoryBound(t *testing.T) {
	p := base()
	if MemoryBound(p, false) != p.S {
		t.Error("streaming memory bound should be S")
	}
	if MemoryBound(p, true) != p.D {
		t.Error("buffered memory bound should be D")
	}
}

func TestBetaModelMonotone(t *testing.T) {
	b := DefaultBeta
	prev := -1.0
	for _, s := range []int64{0, 1, 1 << 10, 1 << 20, 1 << 30, 1 << 40} {
		v := b.Of(s)
		if v < prev {
			t.Fatalf("beta not monotone at S=%d: %v < %v", s, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("beta out of range at S=%d: %v", s, v)
		}
		prev = v
	}
	if b.Of(0) != b.Min {
		t.Fatalf("beta(0) = %v, want Min %v", b.Of(0), b.Min)
	}
}

// Property: Eq. 3 is bounded by the Eq. 2 ideal below (same β-free op1
// term) and by the no-pipelining sum above.
func TestEq3BoundsProperty(t *testing.T) {
	f := func(w0, w1, sig uint32, arate uint8, brate uint8) bool {
		alpha := (float64(arate%98) + 1) / 100
		beta := float64(brate%101) / 100
		p := Params{
			TW0:    sim.Time(w0),
			TW1:    sim.Time(w1),
			TSigma: sim.Time(sig),
			Alpha:  alpha,
			Beta:   func(int64) float64 { return beta },
		}
		got := DecoupledPipelined(p)
		op0 := sim.Time(float64(p.TW0)/(1-alpha)) + p.TSigma
		op1 := sim.Time(float64(p.TW1) / alpha)
		return got >= op1-1 && got <= op0+op1+1 // ±1ns rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoupled time (Eq. 4) decreases or stays equal when the
// per-element overhead decreases.
func TestOverheadMonotoneProperty(t *testing.T) {
	f := func(o1, o2 uint16) bool {
		a, b := sim.Time(o1), sim.Time(o2)
		if a > b {
			a, b = b, a
		}
		p := base()
		p.Overhead = a
		ta := Decoupled(p)
		p.Overhead = b
		tb := Decoupled(p)
		return ta <= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
