// Fiber-backed stream entry points.
//
// Producer-side calls (Isend, IsendTo, Flush, Terminate) never block and
// are representation-neutral already; this file adds the continuation
// forms of the operations that do block — channel setup, the consumer
// loop and channel teardown — for ranks run with mpi.World.RunFibers.
// Each mirrors its goroutine twin operation for operation, preserving the
// engine's (t, seq) determinism contract across representations.
package stream

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// FOperator is the fiber form of Operator: it processes one arrived
// element and continues with then. Operators that only do bookkeeping
// (no virtual-time consumption) return then directly; operators that
// compute per element return r.FCompute(..., then).
type FOperator func(r *mpi.Rank, elem Element, src int, then sim.StepFunc) sim.StepFunc

// FCreateChannel is CreateChannel for fiber-backed ranks, delivering the
// established channel to then.
func FCreateChannel(r *mpi.Rank, parent *mpi.Comm, role Role, then func(*Channel) sim.StepFunc) sim.StepFunc {
	me := parent.RankOf(r)
	return parent.FAllgatherv(r, mpi.Part{Bytes: 4, Data: role}, func(roles []mpi.Part) sim.StepFunc {
		ch := &Channel{
			parent:    parent,
			role:      role,
			attachSeq: make(map[int]int),
			freeSeq:   make(map[int]int),
		}
		for rank, part := range roles {
			switch part.Data.(Role) {
			case Producer:
				ch.producers = append(ch.producers, rank)
			case Consumer:
				ch.consumers = append(ch.consumers, rank)
			}
		}
		if len(ch.producers) == 0 || len(ch.consumers) == 0 {
			panic("stream: channel needs at least one producer and one consumer")
		}
		prodColor, consColor := -1, -1
		if role == Producer {
			prodColor = 1
		}
		if role == Consumer {
			consColor = 1
		}
		return parent.FSplit(r, prodColor, me, func(pc *mpi.Comm) sim.StepFunc {
			ch.prodComm = pc
			return parent.FSplit(r, consColor, me, func(cc *mpi.Comm) sim.StepFunc {
				ch.consComm = cc
				key := fmt.Sprintf("stream:chanseq:%d", parent.ID())
				r.StashLocked(func(stash map[string]interface{}) {
					seqs, _ := stash[key].(map[int]int)
					if seqs == nil {
						seqs = make(map[int]int)
						stash[key] = seqs
					}
					seqs[me]++
					ch.seq = seqs[me]
				})
				return then(ch)
			})
		})
	})
}

// FFree is Channel.Free for fiber-backed ranks.
func (ch *Channel) FFree(r *mpi.Rank, then sim.StepFunc) sim.StepFunc {
	me := ch.parent.RankOf(r)
	ch.freeSeq[me]++
	if ch.freeSeq[me] > 1 {
		panic("stream: channel freed twice")
	}
	return ch.parent.FBarrier(r, then)
}

// fexchangeTotals is exchangeTotals in continuation form.
func (s *Stream) fexchangeTotals(r *mpi.Rank, totals []int64, then func(int64) sim.StepFunc) sim.StepFunc {
	return s.ch.consComm.FAllgatherv(r, mpi.Part{
		Bytes: int64(8 * len(totals)),
		Data:  totals,
	}, func(parts []mpi.Part) sim.StepFunc {
		var expected int64
		for _, part := range parts {
			expected += part.Data.([]int64)[s.consIdx]
		}
		return then(expected)
	})
}

// FOperate is Operate for fiber-backed ranks: the same first-come-first-
// served consumer loop and termination detection, with the operator and
// all waits in continuation form. The final statistics are delivered to
// then.
func (s *Stream) FOperate(r *mpi.Rank, op FOperator, then func(Stats) sim.StepFunc) sim.StepFunc {
	if s.consIdx < 0 {
		panic("stream: FOperate called on a non-consumer rank")
	}
	if s.opts.FixedOrder {
		return s.foperateFixed(r, op, then)
	}
	c := s.ch.parent
	homeTerms := s.ch.homeProducerCount(s.consIdx)
	expected := int64(-1)
	var received int64
	totals := make([]int64, len(s.ch.consumers))

	elemReq := c.Irecv(r, mpi.AnySource, s.elemTag)
	termReq := c.Irecv(r, mpi.AnySource, s.termTag)
	reqs := make([]*mpi.Request, 2)
	// Every continuation of the consumer loop is built here, once: the
	// loop is the per-message hot path of the decoupled experiments, and a
	// closure built inside it would allocate per message (per element, for
	// the batch walker). State the hoisted steps need per message lives in
	// the captured variables (b, ei, waitStart).
	var loop, elems sim.StepFunc
	var onAny func(int, mpi.Status) sim.StepFunc
	var exchanged func(int64) sim.StepFunc
	var b batch
	var ei int
	var waitStart sim.Time
	elems = func(_ *sim.Fiber) sim.StepFunc {
		if ei >= len(b.elems) {
			s.stats.Messages++
			b = batch{}
			elemReq = c.Irecv(r, mpi.AnySource, s.elemTag)
			return loop
		}
		elem := b.elems[ei]
		ei++
		received++
		s.stats.ElementsReceived++
		s.stats.Bytes += elem.Bytes
		if s.stats.FirstAt == 0 {
			s.stats.FirstAt = r.Now()
		}
		s.stats.LastAt = r.Now()
		return op(r, elem, b.src, elems)
	}
	onAny = func(idx int, st mpi.Status) sim.StepFunc {
		s.stats.WaitTime += r.Now() - waitStart
		if idx == 0 {
			b = st.Data.(batch)
			ei = 0
			return elems
		}
		tm := st.Data.(termMsg)
		for ci, n := range tm.sentTo {
			totals[ci] += n
		}
		homeTerms--
		if homeTerms > 0 {
			termReq = c.Irecv(r, mpi.AnySource, s.termTag)
			return loop
		}
		// All home producers terminated: agree on global totals. The
		// winning wait consumed (recycled) termReq, so drop the handle —
		// later loop passes must not offer the stale pointer to FWaitAny
		// (nil entries are skipped).
		termReq = nil
		return s.fexchangeTotals(r, totals, exchanged)
	}
	exchanged = func(exp int64) sim.StepFunc {
		expected = exp
		return loop
	}
	loop = func(_ *sim.Fiber) sim.StepFunc {
		if expected >= 0 && received >= expected {
			return then(s.stats)
		}
		waitStart = r.Now()
		reqs[0], reqs[1] = elemReq, termReq
		return c.FWaitAny(r, reqs, onAny)
	}
	if homeTerms == 0 {
		// No producer terminates through this consumer: join the
		// termination exchange immediately, as Operate does.
		return s.fexchangeTotals(r, totals, exchanged)
	}
	return loop
}

// foperateFixed is operateFixed in continuation form: home producers are
// drained in a fixed round-robin order, so a slow producer stalls
// consumption of already-arrived data from the others.
func (s *Stream) foperateFixed(r *mpi.Rank, op FOperator, then func(Stats) sim.StepFunc) sim.StepFunc {
	c := s.ch.parent
	type srcState struct {
		pi       int
		elemReq  *mpi.Request
		termReq  *mpi.Request
		finished bool
	}
	var states []*srcState
	for pi := range s.ch.producers {
		if s.ch.HomeConsumer(pi) == s.consIdx {
			states = append(states, &srcState{pi: pi})
		}
	}
	remaining := len(states)
	reqs := make([]*mpi.Request, 2)
	si := 0
	// As in FOperate, every continuation is built once, ahead of the
	// loop; the current source (st) and batch (b, ei) live in captured
	// variables since only one wait is ever in flight.
	var pass, elems sim.StepFunc
	var onAny func(int, mpi.Status) sim.StepFunc
	var cur *srcState
	var b batch
	var ei int
	var waitStart sim.Time
	elems = func(_ *sim.Fiber) sim.StepFunc {
		if ei >= len(b.elems) {
			s.stats.Messages++
			b = batch{}
			cur.elemReq = nil
			si++
			return pass
		}
		elem := b.elems[ei]
		ei++
		s.stats.ElementsReceived++
		s.stats.Bytes += elem.Bytes
		if s.stats.FirstAt == 0 {
			s.stats.FirstAt = r.Now()
		}
		s.stats.LastAt = r.Now()
		return op(r, elem, b.src, elems)
	}
	onAny = func(idx int, status mpi.Status) sim.StepFunc {
		s.stats.WaitTime += r.Now() - waitStart
		if idx == 1 {
			// Non-overtaking per (source, tag) plus issue order on
			// the producer guarantee no element follows the term.
			cur.finished = true
			remaining--
			si++
			return pass
		}
		b = status.Data.(batch)
		ei = 0
		return elems
	}
	pass = func(_ *sim.Fiber) sim.StepFunc {
		if remaining == 0 {
			return then(s.stats)
		}
		if si >= len(states) {
			si = 0
			return pass
		}
		st := states[si]
		if st.finished {
			si++
			return pass
		}
		src := s.ch.producers[st.pi]
		// Posted requests persist across passes; never double-post.
		if st.elemReq == nil {
			st.elemReq = c.Irecv(r, src, s.elemTag)
		}
		if st.termReq == nil {
			st.termReq = c.Irecv(r, src, s.termTag)
		}
		cur = st
		waitStart = r.Now()
		reqs[0], reqs[1] = st.elemReq, st.termReq
		return c.FWaitAny(r, reqs, onAny)
	}
	return pass
}
