// Package stream implements the paper's MPIStream library: asynchronous,
// fine-grained data flows between disjoint groups of processes, which is
// the mechanism the decoupling strategy uses to link operation groups
// (Section III of the paper).
//
// The API mirrors the paper's C interface:
//
//	MPIStream_CreateChannel -> CreateChannel
//	MPIStream_Attach        -> Channel.Attach
//	MPIStream_Isend         -> Stream.Isend / Stream.IsendTo
//	MPIStream_Operate       -> Stream.Operate
//	MPIStream_Terminate     -> Stream.Terminate
//	MPIStream_FreeChannel   -> Channel.Free
//
// Producers inject stream elements as soon as they are ready; consumers
// process arrived elements first-come-first-served, which is what absorbs
// process imbalance (Section II-B). Each injected element costs the
// configured per-element overhead — the "o" of the paper's Eq. 4.
package stream

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Tag space: application tags must stay below streamTagBase; collective
// tags live above 1<<24 (see internal/mpi).
const streamTagBase = 1 << 20

// Role declares a rank's part in a channel.
type Role int

// Channel roles. A rank that is neither producer nor consumer passes None
// (it participates in channel setup but carries no data).
const (
	None Role = iota
	Producer
	Consumer
)

// Channel is a communication channel between a producer group and a
// consumer group, created collectively over a parent communicator.
type Channel struct {
	parent    *mpi.Comm
	producers []int // parent comm ranks, in rank order
	consumers []int // parent comm ranks, in rank order
	prodComm  *mpi.Comm
	consComm  *mpi.Comm
	role      Role
	seq       int         // channel sequence number on the parent comm
	attachSeq map[int]int // per-rank stream attach counters (lockstep)
	freeSeq   map[int]int // per-rank Free counters
}

// CreateChannel establishes a channel over parent. Collective: every
// member of parent must call it with its role. The group from which data
// originates is the producer group; the group to which data flows is the
// consumer group (paper Section III-A, step 1).
func CreateChannel(r *mpi.Rank, parent *mpi.Comm, role Role) *Channel {
	me := parent.RankOf(r)
	roles := parent.Allgatherv(r, mpi.Part{Bytes: 4, Data: role})
	ch := &Channel{
		parent:    parent,
		role:      role,
		attachSeq: make(map[int]int),
		freeSeq:   make(map[int]int),
	}
	for rank, part := range roles {
		switch part.Data.(Role) {
		case Producer:
			ch.producers = append(ch.producers, rank)
		case Consumer:
			ch.consumers = append(ch.consumers, rank)
		}
	}
	if len(ch.producers) == 0 || len(ch.consumers) == 0 {
		panic("stream: channel needs at least one producer and one consumer")
	}
	// Sub-communicators for group-internal coordination (consumers use
	// theirs for termination detection).
	prodColor, consColor := -1, -1
	if role == Producer {
		prodColor = 1
	}
	if role == Consumer {
		consColor = 1
	}
	ch.prodComm = parent.Split(r, prodColor, me)
	ch.consComm = parent.Split(r, consColor, me)

	// Deterministic channel sequence number, shared via the world stash
	// (channel creation is collective, so all ranks observe the same
	// counter state).
	key := fmt.Sprintf("stream:chanseq:%d", parent.ID())
	r.StashLocked(func(stash map[string]interface{}) {
		seqs, _ := stash[key].(map[int]int)
		if seqs == nil {
			seqs = make(map[int]int)
			stash[key] = seqs
		}
		seqs[me]++
		ch.seq = seqs[me]
	})
	return ch
}

// Role reports this rank's role in the channel.
func (ch *Channel) Role() Role { return ch.role }

// ProducerComm returns the producer group's own communicator (nil on
// ranks outside the producer group).
func (ch *Channel) ProducerComm() *mpi.Comm { return ch.prodComm }

// ConsumerComm returns the consumer group's own communicator (nil on
// ranks outside the consumer group).
func (ch *Channel) ConsumerComm() *mpi.Comm { return ch.consComm }

// ParentComm returns the communicator the channel was created over.
func (ch *Channel) ParentComm() *mpi.Comm { return ch.parent }

// Producers reports the number of producer ranks.
func (ch *Channel) Producers() int { return len(ch.producers) }

// Consumers reports the number of consumer ranks.
func (ch *Channel) Consumers() int { return len(ch.consumers) }

// Alpha reports the fraction of channel ranks dedicated to consumption —
// the α of the paper's Eq. 2-4.
func (ch *Channel) Alpha() float64 {
	return float64(len(ch.consumers)) / float64(len(ch.producers)+len(ch.consumers))
}

// ProducerIndex translates r into its index within the producer group, or
// -1 if r is not a producer.
func (ch *Channel) ProducerIndex(r *mpi.Rank) int {
	me := ch.parent.RankOf(r)
	for i, p := range ch.producers {
		if p == me {
			return i
		}
	}
	return -1
}

// ConsumerIndex translates r into its index within the consumer group, or
// -1 if r is not a consumer.
func (ch *Channel) ConsumerIndex(r *mpi.Rank) int {
	me := ch.parent.RankOf(r)
	for i, c := range ch.consumers {
		if c == me {
			return i
		}
	}
	return -1
}

// HomeConsumer reports the consumer index that producer index pi streams
// to by default (block mapping, so consecutive producers share a home
// consumer).
func (ch *Channel) HomeConsumer(pi int) int {
	return pi * len(ch.consumers) / len(ch.producers)
}

// homeProducerCount reports how many producers have consumer index ci as
// their home.
func (ch *Channel) homeProducerCount(ci int) int {
	n := 0
	for pi := range ch.producers {
		if ch.HomeConsumer(pi) == ci {
			n++
		}
	}
	return n
}

// Free releases the channel. Collective over the parent communicator
// (paper step 5: MPIStream_FreeChannel). Freeing the channel more than
// once on the same rank is a programming error.
func (ch *Channel) Free(r *mpi.Rank) {
	me := ch.parent.RankOf(r)
	ch.freeSeq[me]++
	if ch.freeSeq[me] > 1 {
		panic("stream: channel freed twice")
	}
	ch.parent.Barrier(r)
}

// Options configures a stream attached to a channel.
type Options struct {
	// ElementBytes is the stream granularity S: the default payload size
	// of one element. Elements may override it individually.
	ElementBytes int64
	// InjectOverhead is the per-element producer-side overhead o of
	// Eq. 4: building the element and calling the injection function.
	InjectOverhead sim.Time
	// BatchElements, when > 1, aggregates this many elements into one
	// message (the "data aggregation scheme" optimization the paper
	// applies to communication-intensive decoupled operations).
	BatchElements int
	// FixedOrder disables first-come-first-served consumption: the
	// consumer drains its home producers in a fixed round-robin order.
	// It exists to ablate the imbalance-absorption mechanism and only
	// supports default (home) routing.
	FixedOrder bool
}

func (o Options) withDefaults() Options {
	if o.ElementBytes <= 0 {
		o.ElementBytes = 1024
	}
	if o.InjectOverhead <= 0 {
		o.InjectOverhead = 200 * sim.Nanosecond
	}
	if o.BatchElements <= 0 {
		o.BatchElements = 1
	}
	return o
}

// Attach creates a stream on the channel (paper step 3: the operator is
// supplied to Operate on the consumer side). Collective over the parent
// communicator in the sense that producers and consumers must attach
// streams in the same order.
func (ch *Channel) Attach(r *mpi.Rank, opts Options) *Stream {
	me := ch.parent.RankOf(r)
	ch.attachSeq[me]++
	base := streamTagBase + ch.seq*4096 + ch.attachSeq[me]*4
	s := &Stream{
		ch:      ch,
		opts:    opts.withDefaults(),
		elemTag: base,
		termTag: base + 1,
		sent:    make(map[int]int64),
	}
	if pi := ch.ProducerIndex(r); pi >= 0 {
		s.prodIdx = pi
	} else {
		s.prodIdx = -1
	}
	s.consIdx = ch.ConsumerIndex(r)
	return s
}
