package stream

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Element is the basic unit of a data stream (paper Section III-A). Bytes
// defaults to the stream's configured granularity when zero.
type Element struct {
	Bytes int64
	Data  interface{}
}

// Operator processes one arrived stream element on the consumer
// (MPIStream's operator attached to the data stream). src is the producer
// index the element came from.
type Operator func(r *mpi.Rank, elem Element, src int)

// Stats summarizes a stream endpoint's activity.
type Stats struct {
	// ElementsSent / ElementsReceived count stream elements.
	ElementsSent     int64
	ElementsReceived int64
	// Bytes counts element payload bytes at this endpoint.
	Bytes int64
	// Messages counts network messages (smaller than elements when
	// batching is enabled).
	Messages int64
	// FirstAt / LastAt bracket element arrival times on the consumer.
	FirstAt, LastAt sim.Time
	// WaitTime is the total time the consumer spent blocked waiting for
	// data.
	WaitTime sim.Time
}

// batch is the wire format of one stream message: elements plus their
// producer index.
type batch struct {
	src   int
	elems []Element
}

// termMsg closes a producer's stream: sentTo[ci] is how many elements this
// producer sent to consumer index ci over the stream's lifetime.
type termMsg struct {
	src    int
	sentTo map[int]int64
}

// Stream is one directed data flow over a channel. Producer ranks inject
// elements with Isend and close with Terminate; consumer ranks run
// Operate.
type Stream struct {
	ch      *Channel
	opts    Options
	elemTag int
	termTag int

	prodIdx int // -1 on non-producers
	consIdx int // -1 on non-consumers

	// Producer state.
	sent       map[int]int64 // consumer index -> elements sent
	pending    []Element     // batch under construction
	pendingDst int
	terminated bool

	stats Stats
}

// Options reports the stream's effective (defaulted) options.
func (s *Stream) Options() Options { return s.opts }

// Stats reports endpoint statistics gathered so far.
func (s *Stream) Stats() Stats { return s.stats }

// Isend injects one element toward the producer's home consumer, as soon
// as the data for the element is ready (paper step 4). It never blocks:
// the element is handed to the network asynchronously.
func (s *Stream) Isend(r *mpi.Rank, elem Element) {
	if s.prodIdx < 0 {
		panic("stream: Isend called on a non-producer rank")
	}
	s.IsendTo(r, elem, s.ch.HomeConsumer(s.prodIdx))
}

// IsendTo injects one element toward an explicit consumer index. Explicit
// routing lets applications key elements (for example, hashing reduce keys
// over the consumer group).
func (s *Stream) IsendTo(r *mpi.Rank, elem Element, consumer int) {
	if s.prodIdx < 0 {
		panic("stream: IsendTo called on a non-producer rank")
	}
	if s.terminated {
		panic("stream: Isend after Terminate")
	}
	if consumer < 0 || consumer >= len(s.ch.consumers) {
		panic(fmt.Sprintf("stream: consumer index %d of %d", consumer, len(s.ch.consumers)))
	}
	if s.opts.FixedOrder && consumer != s.ch.HomeConsumer(s.prodIdx) {
		panic("stream: explicit routing is incompatible with FixedOrder consumption")
	}
	if elem.Bytes <= 0 {
		elem.Bytes = s.opts.ElementBytes
	}
	// Element construction + injection-call overhead: the o of Eq. 4.
	r.AddDebt(s.opts.InjectOverhead)
	s.stats.ElementsSent++
	s.stats.Bytes += elem.Bytes
	s.sent[consumer]++

	if s.opts.BatchElements > 1 {
		if len(s.pending) > 0 && s.pendingDst != consumer {
			s.flush(r)
		}
		s.pending = append(s.pending, elem)
		s.pendingDst = consumer
		if len(s.pending) >= s.opts.BatchElements {
			s.flush(r)
		}
		return
	}
	s.send(r, consumer, []Element{elem})
}

// Flush sends any batched elements immediately.
func (s *Stream) Flush(r *mpi.Rank) {
	if len(s.pending) > 0 {
		s.flush(r)
	}
}

func (s *Stream) flush(r *mpi.Rank) {
	elems := s.pending
	s.pending = nil
	s.send(r, s.pendingDst, elems)
}

func (s *Stream) send(r *mpi.Rank, consumer int, elems []Element) {
	var bytes int64
	for _, e := range elems {
		bytes += e.Bytes
	}
	dst := s.ch.consumers[consumer]
	s.ch.parent.IsendAndFree(r, dst, s.elemTag, bytes, batch{src: s.prodIdx, elems: elems})
	s.stats.Messages++
}

// Terminate closes the producer's side of the stream (paper step 5:
// MPIStream_Terminate). Any batched elements are flushed first, then a
// termination record carrying the producer's per-consumer element counts
// goes to its home consumer.
func (s *Stream) Terminate(r *mpi.Rank) {
	if s.prodIdx < 0 {
		panic("stream: Terminate called on a non-producer rank")
	}
	if s.terminated {
		panic("stream: Terminate called twice")
	}
	s.Flush(r)
	s.terminated = true
	counts := make(map[int]int64, len(s.sent))
	for ci, n := range s.sent {
		counts[ci] = n
	}
	home := s.ch.HomeConsumer(s.prodIdx)
	dst := s.ch.consumers[home]
	s.ch.parent.IsendAndFree(r, dst, s.termTag, 64, termMsg{src: s.prodIdx, sentTo: counts})
}

// Operate runs the consumer loop (paper step 4: MPIStream_Operate):
// elements are processed first-come-first-served as they arrive, applying
// op on the fly, until every producer has terminated and every element
// addressed to this consumer has been processed. It returns the consumer's
// statistics.
//
// Termination detection: each producer's termination record reaches its
// home consumer; once a consumer holds all its home producers' records,
// the consumer group allgathers the per-consumer totals, after which each
// consumer knows exactly how many elements it still owes processing.
func (s *Stream) Operate(r *mpi.Rank, op Operator) Stats {
	if s.consIdx < 0 {
		panic("stream: Operate called on a non-consumer rank")
	}
	if s.opts.FixedOrder {
		return s.operateFixed(r, op)
	}
	c := s.ch.parent
	homeTerms := s.ch.homeProducerCount(s.consIdx)
	expected := int64(-1)
	var received int64
	// Accumulated per-consumer totals from my home producers' records.
	totals := make([]int64, len(s.ch.consumers))

	elemReq := c.Irecv(r, mpi.AnySource, s.elemTag)
	termReq := c.Irecv(r, mpi.AnySource, s.termTag)
	if homeTerms == 0 {
		// No producer terminates through this consumer: join the
		// termination exchange immediately (contributing zeros) so the
		// consumer group agrees on per-consumer totals.
		expected = s.exchangeTotals(r, totals)
	}
	reqs := make([]*mpi.Request, 2)
	for expected < 0 || received < expected {
		waitStart := r.Now()
		reqs[0], reqs[1] = elemReq, termReq
		idx, st := c.WaitAny(r, reqs)
		s.stats.WaitTime += r.Now() - waitStart
		if idx == 0 {
			b := st.Data.(batch)
			for _, elem := range b.elems {
				received++
				s.stats.ElementsReceived++
				s.stats.Bytes += elem.Bytes
				if s.stats.FirstAt == 0 {
					s.stats.FirstAt = r.Now()
				}
				s.stats.LastAt = r.Now()
				op(r, elem, b.src)
			}
			s.stats.Messages++
			elemReq = c.Irecv(r, mpi.AnySource, s.elemTag)
			continue
		}
		tm := st.Data.(termMsg)
		for ci, n := range tm.sentTo {
			totals[ci] += n
		}
		homeTerms--
		if homeTerms > 0 {
			termReq = c.Irecv(r, mpi.AnySource, s.termTag)
			continue
		}
		// All home producers terminated: agree on global totals. The
		// winning wait consumed (recycled) termReq, so drop the handle —
		// later loop passes must not offer the stale pointer to WaitAny
		// (nil entries are skipped).
		termReq = nil
		expected = s.exchangeTotals(r, totals)
	}
	return s.stats
}

// exchangeTotals allgathers the per-consumer element totals over the
// consumer group and returns how many elements this consumer owes.
func (s *Stream) exchangeTotals(r *mpi.Rank, totals []int64) int64 {
	parts := s.ch.consComm.Allgatherv(r, mpi.Part{
		Bytes: int64(8 * len(totals)),
		Data:  totals,
	})
	var expected int64
	for _, part := range parts {
		expected += part.Data.([]int64)[s.consIdx]
	}
	return expected
}

// operateFixed is the ablation consumer: it drains home producers in a
// fixed round-robin order instead of first-come-first-served, so a slow
// producer stalls consumption of already-arrived data from others.
func (s *Stream) operateFixed(r *mpi.Rank, op Operator) Stats {
	c := s.ch.parent
	type srcState struct {
		pi       int
		elemReq  *mpi.Request
		termReq  *mpi.Request
		finished bool
	}
	var states []*srcState
	for pi := range s.ch.producers {
		if s.ch.HomeConsumer(pi) == s.consIdx {
			states = append(states, &srcState{pi: pi})
		}
	}
	remaining := len(states)
	reqs := make([]*mpi.Request, 2)
	for remaining > 0 {
		for _, st := range states {
			if st.finished {
				continue
			}
			src := s.ch.producers[st.pi]
			// Posted requests persist across passes; never double-post.
			if st.elemReq == nil {
				st.elemReq = c.Irecv(r, src, s.elemTag)
			}
			if st.termReq == nil {
				st.termReq = c.Irecv(r, src, s.termTag)
			}
			waitStart := r.Now()
			reqs[0], reqs[1] = st.elemReq, st.termReq
			idx, status := c.WaitAny(r, reqs)
			s.stats.WaitTime += r.Now() - waitStart
			if idx == 1 {
				// Non-overtaking per (source, tag) plus issue order on
				// the producer guarantee no element follows the term.
				st.finished = true
				remaining--
				continue
			}
			b := status.Data.(batch)
			for _, elem := range b.elems {
				s.stats.ElementsReceived++
				s.stats.Bytes += elem.Bytes
				if s.stats.FirstAt == 0 {
					s.stats.FirstAt = r.Now()
				}
				s.stats.LastAt = r.Now()
				op(r, elem, b.src)
			}
			s.stats.Messages++
			st.elemReq = nil
		}
	}
	return s.stats
}
