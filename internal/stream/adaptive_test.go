package stream

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestAdaptiveDefaults(t *testing.T) {
	a := AdaptiveOptions{}.withDefaults()
	if a.MinBatch != 1 || a.MaxBatch != 64 || a.Window != 32 || a.TargetMessageEvery <= 0 {
		t.Fatalf("defaults = %+v", a)
	}
}

func TestAdaptiveGrowsBatchUnderFastProduction(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Procs: 2, Seed: 3})
	var finalBatch, adjustments int
	var msgs int64
	if _, err := w.Run(func(r *mpi.Rank) {
		role := Consumer
		if r.ID() == 0 {
			role = Producer
		}
		ch := CreateChannel(r, r.World(), role)
		if role == Producer {
			s := ch.AttachAdaptive(r, Options{}, AdaptiveOptions{
				TargetMessageEvery: 100 * sim.Microsecond,
				Window:             16,
				MaxBatch:           128,
			})
			// Elements produced every microsecond: far faster than the
			// target message spacing, so batches must grow.
			for i := 0; i < 600; i++ {
				r.Compute(sim.Microsecond)
				s.Isend(r, Element{})
			}
			s.Terminate(r)
			finalBatch = s.Batch()
			adjustments = s.Adjustments()
		} else {
			st := ch.Attach(r, Options{})
			stats := st.Operate(r, func(*mpi.Rank, Element, int) {})
			msgs = stats.Messages
		}
		ch.Free(r)
	}); err != nil {
		t.Fatal(err)
	}
	if finalBatch <= 1 {
		t.Fatalf("batch did not grow: %d", finalBatch)
	}
	if adjustments == 0 {
		t.Fatal("controller never adjusted")
	}
	if msgs >= 600 {
		t.Fatalf("aggregation had no effect: %d messages for 600 elements", msgs)
	}
}

func TestAdaptiveShrinksBatchUnderSlowProduction(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Procs: 2, Seed: 3})
	var finalBatch int
	if _, err := w.Run(func(r *mpi.Rank) {
		role := Consumer
		if r.ID() == 0 {
			role = Producer
		}
		ch := CreateChannel(r, r.World(), role)
		if role == Producer {
			s := ch.AttachAdaptive(r, Options{BatchElements: 64}, AdaptiveOptions{
				TargetMessageEvery: 10 * sim.Microsecond,
				Window:             16,
				MaxBatch:           128,
			})
			// Slow production: a 64-element batch takes ~6.4ms per
			// message, far above the 10us target, so batches shrink.
			for i := 0; i < 200; i++ {
				r.Compute(100 * sim.Microsecond)
				s.Isend(r, Element{})
			}
			s.Terminate(r)
			finalBatch = s.Batch()
		} else {
			st := ch.Attach(r, Options{})
			st.Operate(r, func(*mpi.Rank, Element, int) {})
		}
		ch.Free(r)
	}); err != nil {
		t.Fatal(err)
	}
	if finalBatch >= 64 {
		t.Fatalf("batch did not shrink: %d", finalBatch)
	}
}

func TestAdaptiveDeliversEverything(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Procs: 3, Seed: 5})
	var received int64
	if _, err := w.Run(func(r *mpi.Rank) {
		role := Consumer
		if r.ID() < 2 {
			role = Producer
		}
		ch := CreateChannel(r, r.World(), role)
		if role == Producer {
			s := ch.AttachAdaptive(r, Options{}, AdaptiveOptions{Window: 8})
			for i := 0; i < 100; i++ {
				r.Compute(sim.Microsecond * 3)
				s.Isend(r, Element{})
			}
			s.Terminate(r)
		} else {
			st := ch.Attach(r, Options{})
			stats := st.Operate(r, func(*mpi.Rank, Element, int) {})
			received = stats.ElementsReceived
		}
		ch.Free(r)
	}); err != nil {
		t.Fatal(err)
	}
	if received != 200 {
		t.Fatalf("received %d elements, want 200", received)
	}
}
