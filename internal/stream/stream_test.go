package stream

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// runChannel spawns a world of p ranks where ranks with id < producers are
// producers and the rest are consumers, then runs body.
func runChannel(t *testing.T, procs, producers int, noise netmodel.Noise,
	body func(r *mpi.Rank, ch *Channel)) {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Procs: procs, Seed: 11, Noise: noise})
	if _, err := w.Run(func(r *mpi.Rank) {
		role := Consumer
		if r.ID() < producers {
			role = Producer
		}
		ch := CreateChannel(r, r.World(), role)
		body(r, ch)
		ch.Free(r)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChannelGroups(t *testing.T) {
	runChannel(t, 6, 4, nil, func(r *mpi.Rank, ch *Channel) {
		if ch.Producers() != 4 || ch.Consumers() != 2 {
			t.Errorf("groups = %d/%d, want 4/2", ch.Producers(), ch.Consumers())
		}
		if a := ch.Alpha(); a < 0.33 || a > 0.34 {
			t.Errorf("alpha = %v, want 1/3", a)
		}
		switch {
		case r.ID() < 4:
			if ch.ProducerIndex(r) != r.ID() || ch.ConsumerIndex(r) != -1 {
				t.Errorf("rank %d indices wrong", r.ID())
			}
		default:
			if ch.ConsumerIndex(r) != r.ID()-4 || ch.ProducerIndex(r) != -1 {
				t.Errorf("rank %d indices wrong", r.ID())
			}
		}
	})
}

func TestHomeConsumerBlockMapping(t *testing.T) {
	runChannel(t, 6, 4, nil, func(r *mpi.Rank, ch *Channel) {
		if r.ID() != 0 {
			return
		}
		// 4 producers onto 2 consumers: 0,1 -> 0 and 2,3 -> 1.
		for pi, want := range []int{0, 0, 1, 1} {
			if got := ch.HomeConsumer(pi); got != want {
				t.Errorf("HomeConsumer(%d) = %d, want %d", pi, got, want)
			}
		}
	})
}

func TestStreamDeliversAllElementsExactlyOnce(t *testing.T) {
	const producers, consumers, perProducer = 6, 2, 25
	seen := map[string]int{}
	runChannel(t, producers+consumers, producers, nil, func(r *mpi.Rank, ch *Channel) {
		s := ch.Attach(r, Options{ElementBytes: 512})
		switch ch.Role() {
		case Producer:
			for i := 0; i < perProducer; i++ {
				s.Isend(r, Element{Data: fmt.Sprintf("p%d-e%d", ch.ProducerIndex(r), i)})
			}
			s.Terminate(r)
		case Consumer:
			s.Operate(r, func(r *mpi.Rank, e Element, src int) {
				seen[e.Data.(string)]++
			})
		}
	})
	if len(seen) != producers*perProducer {
		t.Fatalf("saw %d distinct elements, want %d", len(seen), producers*perProducer)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("element %s delivered %d times", k, n)
		}
	}
}

func TestPerProducerOrderPreserved(t *testing.T) {
	const producers, perProducer = 4, 30
	lastSeen := map[int]int{}
	violations := 0
	runChannel(t, producers+1, producers, nil, func(r *mpi.Rank, ch *Channel) {
		s := ch.Attach(r, Options{})
		if ch.Role() == Producer {
			for i := 0; i < perProducer; i++ {
				s.Isend(r, Element{Data: i})
			}
			s.Terminate(r)
			return
		}
		s.Operate(r, func(r *mpi.Rank, e Element, src int) {
			seq := e.Data.(int)
			if last, ok := lastSeen[src]; ok && seq != last+1 {
				violations++
			}
			lastSeen[src] = seq
		})
	})
	if violations != 0 {
		t.Fatalf("%d per-producer order violations", violations)
	}
}

func TestExplicitRoutingByKey(t *testing.T) {
	const producers, consumers = 4, 3
	received := make([]map[int]bool, consumers)
	for i := range received {
		received[i] = map[int]bool{}
	}
	runChannel(t, producers+consumers, producers, nil, func(r *mpi.Rank, ch *Channel) {
		s := ch.Attach(r, Options{})
		if ch.Role() == Producer {
			for key := 0; key < 30; key++ {
				s.IsendTo(r, Element{Data: key}, key%consumers)
			}
			s.Terminate(r)
			return
		}
		ci := ch.ConsumerIndex(r)
		s.Operate(r, func(r *mpi.Rank, e Element, src int) {
			received[ci][e.Data.(int)] = true
		})
	})
	for ci, keys := range received {
		for key := range keys {
			if key%consumers != ci {
				t.Fatalf("consumer %d received key %d (wrong shard)", ci, key)
			}
		}
		if len(keys) != 10 {
			t.Fatalf("consumer %d saw %d keys, want 10", ci, len(keys))
		}
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	count := func(batch int) (msgs int64) {
		runChannel(t, 3, 2, nil, func(r *mpi.Rank, ch *Channel) {
			s := ch.Attach(r, Options{BatchElements: batch})
			if ch.Role() == Producer {
				for i := 0; i < 64; i++ {
					s.Isend(r, Element{})
				}
				s.Terminate(r)
				return
			}
			st := s.Operate(r, func(*mpi.Rank, Element, int) {})
			msgs = st.Messages
			if st.ElementsReceived != 128 {
				t.Fatalf("received %d elements, want 128", st.ElementsReceived)
			}
		})
		return msgs
	}
	unbatched, batched := count(1), count(16)
	if batched >= unbatched/8 {
		t.Fatalf("batching did not reduce messages: %d vs %d", batched, unbatched)
	}
}

func TestInjectOverheadCharged(t *testing.T) {
	elapsed := func(overhead sim.Time) sim.Time {
		var end sim.Time
		runChannel(t, 2, 1, nil, func(r *mpi.Rank, ch *Channel) {
			s := ch.Attach(r, Options{InjectOverhead: overhead})
			if ch.Role() == Producer {
				for i := 0; i < 1000; i++ {
					s.Isend(r, Element{})
				}
				s.Terminate(r)
				r.Compute(sim.Microsecond) // flush debt into the clock
				end = r.Now()
				return
			}
			s.Operate(r, func(*mpi.Rank, Element, int) {})
		})
		return end
	}
	cheap := elapsed(100 * sim.Nanosecond)
	costly := elapsed(10 * sim.Microsecond)
	if costly < cheap+9*sim.Millisecond {
		t.Fatalf("inject overhead not charged: cheap=%v costly=%v", cheap, costly)
	}
}

func TestFCFSAbsorbsImbalance(t *testing.T) {
	// One slow producer out of four. FCFS consumption should let the
	// consumer process the three fast producers' elements while the slow
	// one trickles; fixed-order consumption stalls on the slow producer.
	run := func(fixed bool) sim.Time {
		var end sim.Time
		w := mpi.NewWorld(mpi.Config{Procs: 5, Seed: 7})
		if _, err := w.Run(func(r *mpi.Rank) {
			role := Consumer
			if r.ID() < 4 {
				role = Producer
			}
			ch := CreateChannel(r, r.World(), role)
			s := ch.Attach(r, Options{FixedOrder: fixed})
			if role == Producer {
				slow := r.ID() == 0
				for i := 0; i < 20; i++ {
					if slow {
						r.Idle(2 * sim.Millisecond) // imbalanced producer
					}
					s.Isend(r, Element{})
				}
				s.Terminate(r)
				return
			}
			s.Operate(r, func(rr *mpi.Rank, e Element, src int) {
				rr.Compute(500 * sim.Microsecond) // processing cost per element
			})
			end = r.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	fcfs, fixed := run(false), run(true)
	if fcfs > fixed {
		t.Fatalf("FCFS (%v) slower than fixed order (%v)", fcfs, fixed)
	}
}

func TestConsumerStatsTimeline(t *testing.T) {
	runChannel(t, 2, 1, nil, func(r *mpi.Rank, ch *Channel) {
		s := ch.Attach(r, Options{})
		if ch.Role() == Producer {
			for i := 0; i < 10; i++ {
				r.Compute(sim.Millisecond)
				s.Isend(r, Element{Bytes: 2048})
			}
			s.Terminate(r)
			return
		}
		st := s.Operate(r, func(*mpi.Rank, Element, int) {})
		if st.ElementsReceived != 10 || st.Bytes != 20480 {
			t.Errorf("stats = %+v", st)
		}
		if st.FirstAt >= st.LastAt {
			t.Errorf("FirstAt %v not before LastAt %v", st.FirstAt, st.LastAt)
		}
		if st.WaitTime <= 0 {
			t.Errorf("consumer never waited: %+v", st)
		}
	})
}

func TestTwoStreamsOnOneChannelDoNotMix(t *testing.T) {
	countA, countB := 0, 0
	runChannel(t, 3, 2, nil, func(r *mpi.Rank, ch *Channel) {
		a := ch.Attach(r, Options{})
		b := ch.Attach(r, Options{})
		if ch.Role() == Producer {
			for i := 0; i < 5; i++ {
				a.Isend(r, Element{Data: "A"})
				b.Isend(r, Element{Data: "B"})
			}
			a.Terminate(r)
			b.Terminate(r)
			return
		}
		a.Operate(r, func(r *mpi.Rank, e Element, src int) {
			if e.Data.(string) != "A" {
				t.Errorf("stream A saw %v", e.Data)
			}
			countA++
		})
		b.Operate(r, func(r *mpi.Rank, e Element, src int) {
			if e.Data.(string) != "B" {
				t.Errorf("stream B saw %v", e.Data)
			}
			countB++
		})
	})
	if countA != 10 || countB != 10 {
		t.Fatalf("countA=%d countB=%d, want 10/10", countA, countB)
	}
}

func TestProducerAPIOnConsumerPanics(t *testing.T) {
	runChannel(t, 2, 1, nil, func(r *mpi.Rank, ch *Channel) {
		s := ch.Attach(r, Options{})
		if ch.Role() == Consumer {
			for _, fn := range []func(){
				func() { s.Isend(r, Element{}) },
				func() { s.Terminate(r) },
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Error("producer API on consumer did not panic")
						}
					}()
					fn()
				}()
			}
			// Drain the producer's stream so the world terminates.
			s.Operate(r, func(*mpi.Rank, Element, int) {})
			return
		}
		s.Isend(r, Element{})
		s.Terminate(r)
	})
}

func TestIsendAfterTerminatePanics(t *testing.T) {
	runChannel(t, 2, 1, nil, func(r *mpi.Rank, ch *Channel) {
		s := ch.Attach(r, Options{})
		if ch.Role() == Producer {
			s.Terminate(r)
			defer func() {
				if recover() == nil {
					t.Error("Isend after Terminate did not panic")
				}
			}()
			s.Isend(r, Element{})
			return
		}
		s.Operate(r, func(*mpi.Rank, Element, int) {})
	})
}

func TestDefaultOptions(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ElementBytes != 1024 || o.InjectOverhead != 200*sim.Nanosecond || o.BatchElements != 1 {
		t.Fatalf("defaults = %+v", o)
	}
}

// Property: for arbitrary per-producer element counts, every element is
// delivered exactly once and totals match.
func TestDeliveryCountProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) == 0 {
			return true
		}
		if len(counts) > 6 {
			counts = counts[:6]
		}
		producers := len(counts)
		var want int64
		for _, c := range counts {
			want += int64(c % 40)
		}
		var got int64
		w := mpi.NewWorld(mpi.Config{Procs: producers + 2, Seed: 13})
		_, err := w.Run(func(r *mpi.Rank) {
			role := Consumer
			if r.ID() < producers {
				role = Producer
			}
			ch := CreateChannel(r, r.World(), role)
			s := ch.Attach(r, Options{})
			if role == Producer {
				n := int(counts[r.ID()] % 40)
				for i := 0; i < n; i++ {
					s.Isend(r, Element{})
				}
				s.Terminate(r)
				return
			}
			st := s.Operate(r, func(*mpi.Rank, Element, int) {})
			got += st.ElementsReceived
		})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
