package stream

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// AdaptiveOptions configures the adaptive batching controller. The paper
// notes that "the optimal setup could change dynamically at runtime.
// Currently, the library only supports static configuration of these
// values. An extension to support adaptive changes of the configuration is
// subject of a current work" (Section III-A). This is that extension: the
// producer adjusts its aggregation factor from observed injection rate, so
// the effective granularity S tracks Eq. 4's trade-off at runtime.
type AdaptiveOptions struct {
	// MinBatch and MaxBatch bound the aggregation factor.
	MinBatch, MaxBatch int
	// TargetMessageEvery is the desired spacing of network messages. If
	// elements arrive faster, batches grow; slower, they shrink.
	TargetMessageEvery sim.Time
	// Window is how many elements between controller updates.
	Window int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.MinBatch <= 0 {
		o.MinBatch = 1
	}
	if o.MaxBatch < o.MinBatch {
		o.MaxBatch = o.MinBatch * 64
	}
	if o.TargetMessageEvery <= 0 {
		o.TargetMessageEvery = 50 * sim.Microsecond
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	return o
}

// AdaptiveStream wraps a Stream with a producer-side controller that tunes
// the batch size to the observed element rate.
type AdaptiveStream struct {
	*Stream
	opts AdaptiveOptions

	windowStart sim.Time
	windowCount int
	batch       int
	adjustments int
}

// AttachAdaptive creates a stream whose aggregation adapts at runtime.
// The static Options' BatchElements is used as the starting point.
func (ch *Channel) AttachAdaptive(r *mpi.Rank, opts Options, a AdaptiveOptions) *AdaptiveStream {
	a = a.withDefaults()
	if opts.BatchElements <= 0 {
		opts.BatchElements = a.MinBatch
	}
	s := ch.Attach(r, opts)
	return &AdaptiveStream{
		Stream: s,
		opts:   a,
		batch:  s.opts.BatchElements,
	}
}

// Batch reports the current aggregation factor.
func (s *AdaptiveStream) Batch() int { return s.batch }

// Adjustments reports how many times the controller changed the batch
// size.
func (s *AdaptiveStream) Adjustments() int { return s.adjustments }

// Isend injects one element, updating the controller every Window
// elements: if the window produced messages faster than
// TargetMessageEvery, the batch grows (coarser granularity, less
// overhead); if slower, it shrinks (finer granularity, better
// pipelining).
func (s *AdaptiveStream) Isend(r *mpi.Rank, elem Element) {
	if s.windowCount == 0 {
		s.windowStart = r.Now()
	}
	s.windowCount++
	s.Stream.Isend(r, elem)
	if s.windowCount < s.opts.Window {
		return
	}
	elapsed := r.Now() - s.windowStart
	msgs := (s.windowCount + s.batch - 1) / s.batch
	if msgs > 0 {
		perMsg := elapsed / sim.Time(msgs)
		newBatch := s.batch
		switch {
		case perMsg < s.opts.TargetMessageEvery/2 && s.batch < s.opts.MaxBatch:
			newBatch = s.batch * 2
			if newBatch > s.opts.MaxBatch {
				newBatch = s.opts.MaxBatch
			}
		case perMsg > s.opts.TargetMessageEvery*2 && s.batch > s.opts.MinBatch:
			newBatch = s.batch / 2
			if newBatch < s.opts.MinBatch {
				newBatch = s.opts.MinBatch
			}
		}
		if newBatch != s.batch {
			// Flush the partial batch before changing granularity.
			s.Stream.Flush(r)
			s.batch = newBatch
			s.Stream.opts.BatchElements = newBatch
			s.adjustments++
		}
	}
	s.windowCount = 0
}
