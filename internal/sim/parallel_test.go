package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// The parallel-mode unit tests drive ShardGroup directly with a small
// message-passing workload: a same-instant fan-in (every rank reports to
// rank 0 at one instant, from different shards) followed by a token ring.
// The fan-in is the sharp part — eight deliveries land on rank 0 at the
// same virtual instant from senders on different shards, so their firing
// order is decided purely by the (t, pri, seq) heap key, never by which
// shard ran first.

const testLat = Time(100)

type testNode struct {
	id      int
	eng     *Engine
	nodes   []*testNode
	sendSeq uint64
	reports int
	trace   []string
}

type testMsg struct {
	dst     *testNode
	payload int
}

func (m *testMsg) Fire() { m.dst.recv(m.payload) }

// send posts a delivery to dst with the canonical parallel-mode priority:
// the sender's id and per-sender send counter, a partition-independent
// key.
func (n *testNode) send(dst *testNode, payload int) {
	pri := (uint64(n.id)+1)<<40 | n.sendSeq
	n.sendSeq++
	n.eng.Post(dst.eng, n.eng.Now()+testLat, pri, &testMsg{dst: dst, payload: payload})
}

func (n *testNode) recv(payload int) {
	n.trace = append(n.trace, fmt.Sprintf("%d@%d", payload, n.eng.Now()))
	if payload < 1000 {
		// A fan-in report. Once all have arrived, rank 0 starts the ring.
		n.reports++
		if n.reports == len(n.nodes) {
			n.send(n.nodes[1%len(n.nodes)], 1000+4*len(n.nodes))
		}
		return
	}
	if ttl := payload - 1000; ttl > 0 {
		n.send(n.nodes[(n.id+1)%len(n.nodes)], 1000+ttl-1)
	}
}

// runParallelWorkload runs the fan-in + ring workload over ranks placed
// on shards by place, returning every rank's receive trace.
func runParallelWorkload(t *testing.T, ranks, shards int, place func(rank int) int) [][]string {
	t.Helper()
	g := NewShardGroup(1, shards, testLat)
	nodes := make([]*testNode, ranks)
	for r := range nodes {
		nodes[r] = &testNode{id: r, eng: g.Shard(place(r))}
	}
	for _, n := range nodes {
		n.nodes = nodes
		n := n
		n.eng.At(0, func() { n.send(nodes[0], n.id) })
	}
	if _, err := g.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	traces := make([][]string, ranks)
	for r, n := range nodes {
		traces[r] = n.trace
	}
	return traces
}

// TestShardGroupDeterminism checks the tentpole invariant at the engine
// level: the same workload produces identical traces for every shard
// count and every placement of ranks onto shards.
func TestShardGroupDeterminism(t *testing.T) {
	const ranks = 8
	ref := runParallelWorkload(t, ranks, 1, func(int) int { return 0 })

	// The same-instant fan-in at rank 0 must fire in sender-pri order.
	for i := 0; i < ranks; i++ {
		want := fmt.Sprintf("%d@%d", i, testLat)
		if ref[0][i] != want {
			t.Fatalf("fan-in delivery %d fired as %s, want %s", i, ref[0][i], want)
		}
	}

	cases := []struct {
		name   string
		shards int
		place  func(rank int) int
	}{
		{"2-blocked", 2, func(r int) int { return r / 4 }},
		{"2-strided", 2, func(r int) int { return r % 2 }},
		{"4-blocked", 4, func(r int) int { return r / 2 }},
		{"4-strided", 4, func(r int) int { return r % 4 }},
		{"8", 8, func(r int) int { return r }},
	}
	for _, tc := range cases {
		got := runParallelWorkload(t, ranks, tc.shards, tc.place)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: traces diverge from single-shard reference\ngot  %v\nwant %v", tc.name, got, ref)
		}
	}
}

// TestShardGroupProcHandoff exercises the goroutine-backed process path
// across concurrently running shards: parked rank procs on every shard
// are woken by cross-shard deliveries, window after window. Run under
// -race in CI, this is the handoff-path race test.
func TestShardGroupProcHandoff(t *testing.T) {
	const ranks, rounds = 8, 16
	run := func(shards int, place func(int) int) []Time {
		g := NewShardGroup(7, shards, testLat)
		type mailbox struct {
			proc  *Proc
			ready bool
		}
		boxes := make([]*mailbox, ranks)
		engs := make([]*Engine, ranks)
		finished := make([]Time, ranks)
		for r := 0; r < ranks; r++ {
			boxes[r] = &mailbox{}
			engs[r] = g.Shard(place(r))
		}
		deliver := func(dst int) Action {
			return funcAction(func() {
				b := boxes[dst]
				b.ready = true
				if b.proc != nil {
					engs[dst].WakeAt(engs[dst].Now(), b.proc)
					b.proc = nil
				}
			})
		}
		for r := 0; r < ranks; r++ {
			r := r
			engs[r].SpawnID(r, fmt.Sprintf("rank%d", r), func(p *Proc) {
				var sendSeq uint64
				for i := 0; i < rounds; i++ {
					if r != 0 || i != 0 {
						for !boxes[r].ready {
							boxes[r].proc = p
							p.Park("token")
						}
						boxes[r].ready = false
					}
					p.Advance(Time(10 + r))
					dst := (r + 1) % ranks
					pri := (uint64(r)+1)<<40 | sendSeq
					sendSeq++
					engs[r].Post(engs[dst], p.Now()+testLat, pri, deliver(dst))
				}
				finished[r] = p.Now()
			})
		}
		if _, err := g.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return finished
	}
	ref := run(1, func(int) int { return 0 })
	for _, shards := range []int{2, 4, 8} {
		got := run(shards, func(r int) int { return r % shards })
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: finish times diverge\ngot  %v\nwant %v", shards, got, ref)
		}
	}
}

// TestShardGroupDeadlockAggregates checks that a cross-shard deadlock
// reports the blocked set of every shard in one error.
func TestShardGroupDeadlockAggregates(t *testing.T) {
	g := NewShardGroup(1, 2, testLat)
	for s := 0; s < 2; s++ {
		s := s
		g.Shard(s).Spawn(fmt.Sprintf("stuck%d", s), func(p *Proc) {
			p.Park("waiting forever")
		})
	}
	_, err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked set %v, want both shards' procs", de.Blocked)
	}
}

// TestAfterValidation pins the Engine.After contract: negative durations
// and overflowing durations panic with messages naming the duration.
func TestAfterValidation(t *testing.T) {
	expectPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Errorf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		fn()
	}
	e := NewEngine(1)
	expectPanic("negative", "negative duration -5", func() { e.After(-5, func() {}) })
	eo := NewEngine(1)
	eo.At(1, func() { eo.After(MaxTime, func() {}) })
	expectPanic("overflow", "overflows virtual time", func() { eo.Run() })
	// A valid After still works.
	fired := false
	e.After(3, func() { fired = true })
	if _, err := e.Run(); err != nil || !fired {
		t.Fatalf("valid After: fired=%v err=%v", fired, err)
	}
}

// TestAtActionPriOrdersBeforeSeq pins the heap key extension: at one
// instant, pri orders before seq, and pri-0 events fire before any
// pri-carrying event regardless of scheduling order.
func TestAtActionPriOrdersBeforeSeq(t *testing.T) {
	e := NewEngine(1)
	var order []int
	rec := func(i int) func() { return func() { order = append(order, i) } }
	e.AtActionPri(10, 5, funcAction(rec(5)))
	e.AtActionPri(10, 2, funcAction(rec(2)))
	e.At(10, rec(0))
	e.AtActionPri(10, 1, funcAction(rec(1)))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 5}; !reflect.DeepEqual(order, want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
}
