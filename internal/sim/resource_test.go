package sim

import (
	"testing"
	"testing/quick"
)

func TestLinkReserveSequential(t *testing.T) {
	var l Link
	s1, e1 := l.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first slot [%v,%v], want [0,100]", s1, e1)
	}
	// Request at time 50 while busy until 100: queued behind.
	s2, e2 := l.Reserve(50, 30)
	if s2 != 100 || e2 != 130 {
		t.Fatalf("second slot [%v,%v], want [100,130]", s2, e2)
	}
	// Request after idle period: starts immediately.
	s3, e3 := l.Reserve(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third slot [%v,%v], want [500,510]", s3, e3)
	}
	if l.Busy() != 140 {
		t.Fatalf("Busy = %v, want 140", l.Busy())
	}
}

// Property: link reservations never overlap and never start before
// requested.
func TestLinkNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct{ At, Dur uint16 }) bool {
		var l Link
		var lastEnd Time
		for _, r := range reqs {
			s, e := l.Reserve(Time(r.At), Time(r.Dur))
			if s < Time(r.At) || s < lastEnd || e != s+Time(r.Dur) {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStripedSpreadsLoad(t *testing.T) {
	s := NewStriped(4)
	// Four simultaneous requests: all should start at 0 on distinct links.
	for i := 0; i < 4; i++ {
		st, _ := s.Reserve(0, 100)
		if st != 0 {
			t.Fatalf("request %d started at %v, want 0", i, st)
		}
	}
	// Fifth queues behind the earliest.
	st, _ := s.Reserve(0, 100)
	if st != 100 {
		t.Fatalf("fifth request started at %v, want 100", st)
	}
	if s.Width() != 4 {
		t.Fatalf("Width = %d", s.Width())
	}
	if s.Busy() != 500 {
		t.Fatalf("Busy = %v, want 500", s.Busy())
	}
}

func TestStripedSingleDegeneratesToLink(t *testing.T) {
	s := NewStriped(1)
	s.Reserve(0, 50)
	st, _ := s.Reserve(0, 50)
	if st != 50 {
		t.Fatalf("second request started at %v, want 50", st)
	}
}

func TestStripedZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStriped(0) did not panic")
		}
	}()
	NewStriped(0)
}

func TestTokenMutualExclusion(t *testing.T) {
	e := NewEngine(1)
	var tok Token
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		e.Spawn("p", func(p *Proc) {
			tok.Acquire(p, "cs")
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Advance(100)
			inside--
			tok.Release(p)
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if end != 500 {
		t.Fatalf("end = %v, want fully serialized 500", end)
	}
	if tok.Grants() != 5 {
		t.Fatalf("grants = %d, want 5", tok.Grants())
	}
}

func TestTokenReleaseByNonHolderPanics(t *testing.T) {
	e := NewEngine(1)
	var tok Token
	e.Spawn("holder", func(p *Proc) {
		tok.Acquire(p, "cs")
		p.Advance(100)
		tok.Release(p)
	})
	e.Spawn("thief", func(p *Proc) {
		p.Advance(10)
		defer func() {
			if recover() == nil {
				t.Error("Release by non-holder did not panic")
			}
		}()
		tok.Release(p)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
