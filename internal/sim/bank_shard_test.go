package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestShardedBankReservationHandoff drives the cross-shard reservation
// protocol directly: ranks spread over concurrently running shards
// alternate compute bursts with PostReserve grants against a bank owned
// by shard 0, bracketing each operation with PostIOBegin/PostIOEnd so
// the work-conserving demand path crosses shards too. The granted slots
// and final clocks must be identical for every shard count and
// placement; run under -race in CI this is the cross-shard bank handoff
// race test.
func TestShardedBankReservationHandoff(t *testing.T) {
	const ranks, rounds, jobs = 8, 10, 2
	type grant struct{ start, end Time }
	for _, policy := range []BankPolicy{BankFCFS, BankFair, BankFairWC} {
		policy := policy
		run := func(shards int, place func(int) int) ([][]grant, []Time) {
			g := NewShardGroup(3, shards, testLat)
			b := NewBank(2, jobs, policy)
			b.AttachGroup(g, 0)
			grants := make([][]grant, ranks)
			finished := make([]Time, ranks)
			for r := 0; r < ranks; r++ {
				r := r
				eng := g.Shard(place(r))
				job := r % jobs
				eng.SpawnID(r, fmt.Sprintf("rank%d", r), func(p *Proc) {
					var seq uint64
					pri := func() uint64 {
						k := (uint64(r)+1)<<40 | seq
						seq++
						return k
					}
					for i := 0; i < rounds; i++ {
						p.Advance(Time(17 + 3*r))
						b.PostIOBegin(eng, job, pri())
						req := b.PostReserve(eng, job, Time(40+5*r), pri(), p)
						p.ParkKeepingDebt("bank grant")
						grants[r] = append(grants[r], grant{req.Start, req.End})
						p.AdvanceTo(req.End)
						b.PostIOEnd(eng, job, pri())
					}
					finished[r] = p.Now()
				})
			}
			if _, err := g.Run(); err != nil {
				t.Fatalf("%v shards=%d: %v", policy, shards, err)
			}
			return grants, finished
		}
		refGrants, refFinished := run(1, func(int) int { return 0 })
		cases := []struct {
			name   string
			shards int
			place  func(rank int) int
		}{
			{"2-blocked", 2, func(r int) int { return r / 4 }},
			{"2-strided", 2, func(r int) int { return r % 2 }},
			{"4-strided", 4, func(r int) int { return r % 4 }},
			{"8", 8, func(r int) int { return r }},
		}
		for _, tc := range cases {
			grants, finished := run(tc.shards, tc.place)
			if !reflect.DeepEqual(grants, refGrants) {
				t.Errorf("%v %s: granted slots diverge from single-shard reference\ngot  %v\nwant %v",
					policy, tc.name, grants, refGrants)
			}
			if !reflect.DeepEqual(finished, refFinished) {
				t.Errorf("%v %s: finish times diverge\ngot  %v\nwant %v",
					policy, tc.name, finished, refFinished)
			}
		}
	}
}

// TestBankResetDetachesGroup pins the pooled-reuse guard: Reset must drop
// the sharded attachment along with the rest of the per-run state, so a
// bank reused across runs never reaches into a dead run's shard group.
func TestBankResetDetachesGroup(t *testing.T) {
	g := NewShardGroup(1, 2, testLat)
	b := NewBank(1, 1, BankFCFS)
	b.AttachGroup(g, 1)
	if !b.Sharded() || b.Group() != g {
		t.Fatalf("attachment did not take: sharded=%v group=%p", b.Sharded(), b.Group())
	}
	b.Reset()
	if b.Sharded() || b.Group() != nil {
		t.Errorf("Reset left the bank attached: sharded=%v group=%p", b.Sharded(), b.Group())
	}
}
