package sim

import (
	"fmt"
	"sort"
	"sync"
)

// post is one buffered cross-shard event delivery: an action to schedule
// on the destination shard at (t, pri) once the running window's barrier
// has been crossed.
type post struct {
	t   Time
	pri uint64
	act Action
}

// ShardGroup runs several engines as one conservative parallel
// simulation. Ranks (and any other simulated state) are partitioned
// across the group's shard engines; each window, every shard executes
// independently up to a barrier that the group's lookahead proves safe,
// and cross-shard event deliveries buffered during the window are merged
// into the destination heaps between windows.
//
// The protocol is classic conservative (CMB-style) windowing:
//
//  1. Apply every buffered cross-shard post to its destination engine
//     via AtActionPri.
//  2. G = min over shards of the earliest pending event time. G == MaxTime
//     means global termination (all heaps empty, no posts in flight).
//  3. W = G + lookahead. Every cross-shard delivery created while a shard
//     executes events at instants >= G arrives at or after W (the
//     lookahead is a lower bound on cross-shard latency), so events
//     strictly before W are safe to execute without further
//     coordination: shards run RunUntil(W-1) concurrently.
//  4. Collect the window's outboxes and loop.
//
// Determinism does not depend on the barrier's goroutine interleaving:
// shards only touch their own state during a window, each (src, dst)
// outbox row is written by src's goroutine alone, and merged deliveries
// are ordered by the (t, pri, seq) heap key in which pri is a canonical
// partition-independent value supplied by the sender (see
// Engine.AtActionPri). The group's trajectory is therefore a pure
// function of the simulated program, byte-identical for every shard
// count.
type ShardGroup struct {
	engines   []*Engine
	lookahead Time
	// outbox[src][dst] buffers the posts shard src created for shard dst
	// during the running window. Only src's goroutine appends to row src,
	// so no locking is needed while a window executes.
	outbox [][][]post
	// windowEnd is the exclusive upper bound of the running window; posts
	// below it would violate the lookahead guarantee and panic.
	windowEnd Time
	// deferred marks a group built by NewShardGroupDeferred whose
	// lookahead has not been tightened yet; Run refuses to start one.
	deferred bool
	// rankBase is the next engine-global rank identity handed out by
	// AllocRanks, for multi-world (co-scheduled) sharded runs.
	rankBase int
}

// NewShardGroup builds n engines sharing one seed and one conservative
// lookahead. All engines see the same seed so id-seeded random streams
// are placement-independent; lookahead must be a positive lower bound on
// the virtual-time latency of every cross-shard interaction.
func NewShardGroup(seed int64, n int, lookahead Time) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewShardGroup with %d shards", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewShardGroup with non-positive lookahead %v", lookahead))
	}
	g := &ShardGroup{
		engines:   make([]*Engine, n),
		lookahead: lookahead,
		outbox:    make([][][]post, n),
	}
	for i := range g.engines {
		e := NewEngine(seed)
		e.group = g
		e.shard = i
		g.engines[i] = e
		g.outbox[i] = make([][]post, n)
	}
	return g
}

// NewShardGroupDeferred builds n engines whose conservative lookahead is
// not yet known: the layers attaching simulated state to the group each
// call TightenLookahead with their own lower bound before Run. Several
// worlds of a co-scheduled cluster attach to one group this way — each
// knows only its own network's minimum cross-shard latency, and the
// group's lookahead is the minimum over all of them.
func NewShardGroupDeferred(seed int64, n int) *ShardGroup {
	g := NewShardGroup(seed, n, MaxTime)
	g.deferred = true
	return g
}

// TightenLookahead lowers the group's lookahead to la if la is smaller.
// Tightening is commutative (a running minimum), so attachment order
// never matters; la must be a positive lower bound on the attaching
// layer's cross-shard latency.
func (g *ShardGroup) TightenLookahead(la Time) {
	if la <= 0 {
		panic(fmt.Sprintf("sim: TightenLookahead with non-positive lookahead %v", la))
	}
	if la < g.lookahead {
		g.lookahead = la
	}
	g.deferred = false
}

// AllocRanks reserves a contiguous block of n engine-global rank
// identities and returns its base. Worlds sharing one group (co-scheduled
// jobs) draw their blocks in job start order, so process ids — and every
// id-seeded random stream and delivery priority — match the classic
// shared-engine spawn order regardless of how ranks are sharded.
func (g *ShardGroup) AllocRanks(n int) int {
	base := g.rankBase
	g.rankBase += n
	return base
}

// Abort unwinds every shard engine without running the group, releasing
// any process goroutines spawned onto the shards. It is the group
// counterpart of Engine.Abort, for error paths between attachment and
// Run.
func (g *ShardGroup) Abort() { g.unwindAll() }

// Shards reports the number of shard engines in the group.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Shard returns the i'th shard engine.
func (g *ShardGroup) Shard(i int) *Engine { return g.engines[i] }

// Lookahead reports the group's conservative lookahead.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// post buffers a cross-shard delivery (Engine.Post's cross-engine arm).
// Called from src's shard goroutine while a window executes.
func (g *ShardGroup) post(src, dst int, t Time, pri uint64, act Action) {
	if t < g.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard post at %v inside the current window (end %v): lookahead exceeds the actual cross-shard latency", t, g.windowEnd))
	}
	g.outbox[src][dst] = append(g.outbox[src][dst], post{t: t, pri: pri, act: act})
}

// applyInboxes merges every buffered post into its destination heap and
// recycles the outbox rows. Application order is deterministic (dst-major,
// src order, append order) but does not influence the trajectory: merged
// events are ordered by (t, pri, seq) and every post's (t, pri) is unique
// — pri encodes the sending rank and its send counter.
func (g *ShardGroup) applyInboxes() {
	for dst, e := range g.engines {
		for src := range g.engines {
			row := g.outbox[src][dst]
			for i := range row {
				p := row[i]
				e.AtActionPri(p.t, p.pri, p.act)
				row[i] = post{}
			}
			g.outbox[src][dst] = row[:0]
		}
	}
}

// runShard executes one shard's window on the calling goroutine,
// capturing a panic (RunUntil re-raises after unwinding the shard's own
// processes) into slot for the barrier to handle deterministically.
func runShard(e *Engine, limit Time, slot *interface{}) {
	defer func() {
		if r := recover(); r != nil {
			*slot = r
		}
	}()
	if _, err := e.RunUntil(limit); err != nil {
		*slot = err
	}
}

// Run executes the group to completion and returns the final virtual time
// (the maximum over shards) — the parallel counterpart of Engine.Run. If
// processes or fibers remain blocked when every queue drains, Run returns
// a DeadlockError aggregating the blocked set across shards. On return
// (or panic) every shard engine is unwound, exactly as Engine.Run
// guarantees for a single engine.
func (g *ShardGroup) Run() (Time, error) {
	if g.deferred {
		panic("sim: ShardGroup.Run on a deferred group whose lookahead was never tightened (TightenLookahead)")
	}
	panics := make([]interface{}, len(g.engines))
	busy := make([]*Engine, 0, len(g.engines))
	for {
		g.applyInboxes()
		gmin := MaxTime
		for _, e := range g.engines {
			if t := e.nextEventTime(); t < gmin {
				gmin = t
			}
		}
		if gmin == MaxTime {
			break
		}
		w := gmin + g.lookahead
		if w < gmin {
			panic(fmt.Sprintf("sim: window end overflows virtual time (G %v, lookahead %v)", gmin, g.lookahead))
		}
		g.windowEnd = w
		busy = busy[:0]
		for _, e := range g.engines {
			if e.nextEventTime() < w {
				busy = append(busy, e)
			}
		}
		if len(busy) == 1 {
			// A lone busy shard needs no barrier: run it inline and skip
			// the goroutine round trip.
			runShard(busy[0], w-1, &panics[busy[0].shard])
		} else {
			var wg sync.WaitGroup
			for _, e := range busy {
				wg.Add(1)
				go func(e *Engine) {
					defer wg.Done()
					runShard(e, w-1, &panics[e.shard])
				}(e)
			}
			wg.Wait()
		}
		for _, r := range panics {
			if r != nil {
				// Unwind the surviving shards before re-raising so no
				// parked rank goroutine outlives the run; re-panic the
				// lowest shard index for a deterministic message when
				// several shards fail in one window.
				g.unwindAll()
				panic(r)
			}
		}
	}
	now := Time(0)
	live := 0
	for _, e := range g.engines {
		if e.now > now {
			now = e.now
		}
		live += e.live
	}
	if live > 0 {
		err := g.deadlockError(now)
		g.unwindAll()
		return now, err
	}
	g.unwindAll()
	return now, nil
}

// unwindAll terminates still-blocked process goroutines on every shard.
func (g *ShardGroup) unwindAll() {
	for _, e := range g.engines {
		e.unwind()
	}
}

// deadlockError aggregates the blocked processes and fibers of every
// shard into one DeadlockError, in the same sorted, capped shape
// Engine.deadlockError produces, so a deadlock reads the same regardless
// of shard count.
func (g *ShardGroup) deadlockError(at Time) error {
	var blocked []string
	for _, e := range g.engines {
		for _, p := range e.procs {
			if p.state == procBlocked {
				blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.blockReason))
			}
		}
		for _, f := range e.fibs {
			if isBlocked, reason := f.blockedOn(); isBlocked {
				blocked = append(blocked, fmt.Sprintf("%s (%s)", f.name, reason))
			}
		}
	}
	sort.Strings(blocked)
	const max = 12
	if len(blocked) > max {
		blocked = append(blocked[:max], fmt.Sprintf("... and %d more", len(blocked)-max))
	}
	return &DeadlockError{Blocked: blocked, At: at}
}
