package sim

import "testing"

// BenchmarkDispatch measures one process resume cycle (event schedule +
// two coroutine handoffs) — the simulator's fundamental cost.
func BenchmarkDispatch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeap measures raw event scheduling without process
// switches.
func BenchmarkEventHeap(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			e.After(Time(n%64+1), tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDebtFastPath measures AddDebt (the no-yield overhead path used
// by message sends).
func BenchmarkDebtFastPath(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.AddDebt(1)
			if i%1024 == 1023 {
				p.FlushDebt()
			}
		}
		p.FlushDebt()
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// reportEventRate attaches the engine's event throughput to the
// benchmark, the simulator's headline capacity number.
func reportEventRate(b *testing.B, e *Engine) {
	b.Helper()
	b.ReportMetric(float64(e.Events())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkAdvanceInline measures the inline-advance fast path: a sole
// runnable process moving the clock with zero goroutine switches and zero
// heap traffic.
func BenchmarkAdvanceInline(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkHandoffPingPong measures the direct process-to-process token
// handoff: two processes advancing in strict alternation, so every event
// is a cross-goroutine switch — the simulator's worst-case dispatch.
func BenchmarkHandoffPingPong(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Advance(Time(i + 1)) // offset so the two strictly interleave
			for n := 0; n < b.N; n++ {
				p.Advance(2)
			}
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkSameTimeCallbacks measures the same-timestamp FIFO ring:
// bursts of callbacks scheduled at the current instant bypass the heap
// entirely.
func BenchmarkSameTimeCallbacks(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		for burst := 0; burst < 63 && n < b.N; burst++ {
			n++
			e.At(e.Now(), func() {})
		}
		if n < b.N {
			n++
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkManyProcsStaggered measures heap-dominated dispatch: many
// processes advancing with co-prime strides, so resumes interleave
// through the event heap like a large lockstep simulation.
func BenchmarkManyProcsStaggered(b *testing.B) {
	const procs = 64
	e := NewEngine(1)
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for n := 0; n < per; n++ {
				p.Advance(Time(97 + i%7))
			}
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}
