package sim

import "testing"

// BenchmarkDispatch measures one process resume cycle (event schedule +
// two coroutine handoffs) — the simulator's fundamental cost.
func BenchmarkDispatch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeap measures raw event scheduling without process
// switches.
func BenchmarkEventHeap(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			e.After(Time(n%64+1), tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDebtFastPath measures AddDebt (the no-yield overhead path used
// by message sends).
func BenchmarkDebtFastPath(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.AddDebt(1)
			if i%1024 == 1023 {
				p.FlushDebt()
			}
		}
		p.FlushDebt()
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
