package sim

import "testing"

// BenchmarkDispatch measures one process resume cycle (event schedule +
// two coroutine handoffs) — the simulator's fundamental cost.
func BenchmarkDispatch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeap measures raw event scheduling without process
// switches.
func BenchmarkEventHeap(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			e.After(Time(n%64+1), tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDebtFastPath measures AddDebt (the no-yield overhead path used
// by message sends).
func BenchmarkDebtFastPath(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.AddDebt(1)
			if i%1024 == 1023 {
				p.FlushDebt()
			}
		}
		p.FlushDebt()
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// reportEventRate attaches the engine's event throughput to the
// benchmark, the simulator's headline capacity number.
func reportEventRate(b *testing.B, e *Engine) {
	b.Helper()
	b.ReportMetric(float64(e.Events())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkAdvanceInline measures the inline-advance fast path: a sole
// runnable process moving the clock with zero goroutine switches and zero
// heap traffic.
func BenchmarkAdvanceInline(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkHandoffPingPong measures the direct process-to-process token
// handoff: two processes advancing in strict alternation, so every event
// is a cross-goroutine switch — the simulator's worst-case dispatch.
func BenchmarkHandoffPingPong(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Advance(Time(i + 1)) // offset so the two strictly interleave
			for n := 0; n < b.N; n++ {
				p.Advance(2)
			}
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkSameTimeCallbacks measures the same-timestamp FIFO ring:
// bursts of callbacks scheduled at the current instant bypass the heap
// entirely.
func BenchmarkSameTimeCallbacks(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		for burst := 0; burst < 63 && n < b.N; burst++ {
			n++
			e.At(e.Now(), func() {})
		}
		if n < b.N {
			n++
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkFiberPingPong measures fiber-to-fiber cross-process dispatch:
// two fibers advancing in strict alternation, so every event is a resume
// of the *other* fiber — the pattern that costs a goroutine switch
// (~600ns) under the Proc representation and a plain method call here.
func BenchmarkFiberPingPong(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 2; i++ {
		i := i
		e.SpawnFiber("f", func(f *Fiber) StepFunc {
			n := 0
			var step StepFunc
			step = func(f *Fiber) StepFunc {
				if n >= b.N {
					return nil
				}
				n++
				return f.Advance(2, step)
			}
			return f.Advance(Time(i+1), step) // offset so the two strictly interleave
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkFiberAdvanceInline measures a sole runnable fiber on the
// inline-advance fast path, the fiber counterpart of
// BenchmarkAdvanceInline.
func BenchmarkFiberAdvanceInline(b *testing.B) {
	e := NewEngine(1)
	e.SpawnFiber("f", func(f *Fiber) StepFunc {
		n := 0
		var step StepFunc
		step = func(f *Fiber) StepFunc {
			if n >= b.N {
				return nil
			}
			n++
			return f.Advance(10, step)
		}
		return step
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkManyFibersStaggered is BenchmarkManyProcsStaggered with fibers:
// heap-dominated dispatch with zero goroutine switches.
func BenchmarkManyFibersStaggered(b *testing.B) {
	const fibers = 64
	e := NewEngine(1)
	per := b.N/fibers + 1
	for i := 0; i < fibers; i++ {
		i := i
		e.SpawnFiber("f", func(f *Fiber) StepFunc {
			n := 0
			var step StepFunc
			step = func(f *Fiber) StepFunc {
				if n >= per {
					return nil
				}
				n++
				return f.Advance(Time(97+i%7), step)
			}
			return step
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}

// BenchmarkBroadcastAllocs guards the collective wake hot path: waking a
// full queue of parked fibers must not allocate beyond the wake events
// themselves (whose ring storage is reused across drains).
func BenchmarkBroadcastAllocs(b *testing.B) {
	const waiters = 32
	e := NewEngine(1)
	var q WaitQueue
	var park func(f *Fiber) StepFunc
	park = func(f *Fiber) StepFunc {
		return q.WaitFiber(f, "bench", park)
	}
	for i := 0; i < waiters; i++ {
		e.SpawnFiber("w", park)
	}
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			q.Broadcast(e)
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.RunUntil(Time(b.N) + 2); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcsStaggered measures heap-dominated dispatch: many
// processes advancing with co-prime strides, so resumes interleave
// through the event heap like a large lockstep simulation.
func BenchmarkManyProcsStaggered(b *testing.B) {
	const procs = 64
	e := NewEngine(1)
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for n := 0; n < per; n++ {
				p.Advance(Time(97 + i%7))
			}
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	reportEventRate(b, e)
}
