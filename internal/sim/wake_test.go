package sim

import "testing"

// TestWakerWakesOnce checks the dedup contract: however many completion
// sources call WakeAt while the target is parked, the target consumes
// exactly one resume event, at the first-scheduled instant.
func TestWakerWakesOnce(t *testing.T) {
	e := NewEngine(1)
	var wk Waker
	wakes := 0
	var wokenAt Time
	e.Spawn("waiter", func(p *Proc) {
		wk.Arm(e, p)
		p.Park("waiting")
		wk.Disarm()
		wakes++
		wokenAt = p.Now()
		// Survive past the instant of the duplicate WakeAt calls: a
		// second (erroneous) resume event would fire while blocked here
		// and corrupt this park.
		p.Advance(50)
	})
	e.At(10, func() {
		wk.WakeAt(12)
		wk.WakeAt(11) // later-scheduled, earlier instant: suppressed
		wk.WakeAt(30)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 1 {
		t.Fatalf("woke %d times, want 1", wakes)
	}
	if wokenAt != 12 {
		t.Fatalf("woke at %v, want the first-scheduled instant 12", wokenAt)
	}
}

// TestWakerFiberParity checks that a fiber woken through a Waker resumes
// at the same instant, with the same engine event count, as a goroutine
// process — the representation-equivalence contract for the direct-wake
// path.
func TestWakerFiberParity(t *testing.T) {
	run := func(fiber bool) (Time, uint64, Time) {
		e := NewEngine(7)
		var wk Waker
		var wokenAt Time
		if fiber {
			e.SpawnFiber("waiter", func(f *Fiber) StepFunc {
				wk.Arm(e, f)
				return f.Park("waiting", func(f *Fiber) StepFunc {
					wk.Disarm()
					wokenAt = f.Now()
					return f.Advance(5, nil)
				})
			})
		} else {
			e.Spawn("waiter", func(p *Proc) {
				wk.Arm(e, p)
				p.Park("waiting")
				wk.Disarm()
				wokenAt = p.Now()
				p.Advance(5)
			})
		}
		e.At(3, func() { wk.WakeAt(9) })
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end, e.Events(), wokenAt
	}
	pEnd, pEvents, pAt := run(false)
	fEnd, fEvents, fAt := run(true)
	if pEnd != fEnd || pEvents != fEvents || pAt != fAt {
		t.Fatalf("proc (end %v events %d woken %v) != fiber (end %v events %d woken %v)",
			pEnd, pEvents, pAt, fEnd, fEvents, fAt)
	}
}

// TestWakerDisarmedIsNoop checks that completions arriving after the
// waiter moved on (disarmed waker) schedule nothing.
func TestWakerDisarmedIsNoop(t *testing.T) {
	e := NewEngine(3)
	var wk Waker
	e.Spawn("waiter", func(p *Proc) {
		wk.Arm(e, p)
		p.Park("waiting")
		wk.Disarm()
		p.Advance(100)
	})
	e.At(5, func() { wk.WakeAt(5) })
	e.At(20, func() { wk.WakeAt(20) }) // after disarm: must be a no-op
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWakerRearmAfterPool exercises the pooling cycle: a waker disarmed
// after one wait is immediately reusable for another target.
func TestWakerRearmAfterPool(t *testing.T) {
	e := NewEngine(9)
	var wk Waker
	order := make([]string, 0, 2)
	spawnWaiter := func(name string, at Time) {
		e.Spawn(name, func(p *Proc) {
			p.AdvanceTo(at)
			wk.Arm(e, p)
			p.Park("waiting")
			wk.Disarm()
			order = append(order, name)
		})
	}
	spawnWaiter("first", 0)
	spawnWaiter("second", 10)
	e.At(5, func() { wk.WakeAt(5) })
	e.At(15, func() { wk.WakeAt(15) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("wake order %v", order)
	}
}
