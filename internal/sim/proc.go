package sim

import (
	"fmt"
	"math/rand"
)

type procState int

const (
	procNew procState = iota
	procRunning
	procBlocked
	procDone
)

// Proc is a simulated process: a goroutine that runs under the engine's
// event loop. Process bodies call Proc methods to consume virtual time and
// to block on simulation conditions; while a process runs, no other
// simulation code runs.
type Proc struct {
	e           *Engine
	name        string
	id          int
	wake        chan struct{}
	state       procState
	blockReason string
	rng         *rand.Rand
	debt        Time
	doneAt      Time // virtual time at which the body returned
	killed      bool // Engine.Kill hit this process; unwind at next yield
}

// Name reports the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// ID reports the engine-unique process id, in spawn order.
func (p *Proc) ID() int { return p.id }

// FinishedAt reports the virtual time at which the process body returned.
// It is meaningful only once the body has finished (after Run returns);
// multi-world setups use it for per-job makespans.
func (p *Proc) FinishedAt() Time { return p.doneAt }

// Done reports whether the process body has finished (returned, unwound,
// or been killed), mirroring Fiber.Done.
func (p *Proc) Done() bool { return p.state == procDone }

// resumeAt schedules the process's resume event (Runnable contract).
func (p *Proc) resumeAt(t Time) { p.e.atProc(t, p) }

// blockedOn reports deadlock-diagnostic state (Runnable contract).
func (p *Proc) blockedOn() (bool, string) {
	return p.state == procBlocked, p.blockReason
}

// engine returns the owning engine (Runnable contract).
func (p *Proc) engine() *Engine { return p.e }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Rand returns a deterministic per-process random source, derived from the
// engine seed and the process id. The source is created lazily so that
// processes that never draw random numbers do not perturb others.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = newRand(p.e.seed, int64(p.id))
	}
	return p.rng
}

// newRand builds the per-process random stream for (seed, id): a
// splitmix64 generator whose state is the mixed seed. The stdlib's
// default source seeds a 607-word lagged-Fibonacci table per process,
// which at thousands of short-lived processes per sweep dominated
// stream-experiment profiles; splitmix64 seeds in O(1), draws in a few
// instructions, and passes the statistical tests that matter for noise
// jitter. Changing the stream derivation was trajectory-breaking and
// rode the TrajectoryVersion 2 bump.
func newRand(seed, id int64) *rand.Rand {
	return rand.New(&splitMix{state: uint64(Mix64(seed, id))})
}

// NewSplitMix returns a splitmix64 rand.Source64 seeded with seed in
// O(1). It is the generator behind every deterministic stream in the
// tree: the engine's per-process streams use it via Proc.Rand/Fiber.Rand,
// and packages that derive streams outside the engine (noise models,
// workload generators) share it so no path pays the stdlib default
// source's 607-word seeding.
func NewSplitMix(seed int64) rand.Source64 {
	return &splitMix{state: uint64(seed)}
}

// splitMix is a splitmix64 rand.Source64.
type splitMix struct{ state uint64 }

func (s *splitMix) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Mix64 combines a seed and a stream id with a splitmix64 finalizer so
// that adjacent ids yield uncorrelated streams. It is the canonical
// stream-derivation mixer: the engine's per-process streams use it, and
// packages that derive streams outside the engine (noise models, workload
// generators, fault campaigns) must use it too, so that every stream in a
// run is a pure function of (seed, stream id).
func Mix64(seed, id int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// yield hands the control token to the event loop and waits to be
// dispatched again. The loop runs on this goroutine (see Engine.schedule):
// if the next runnable event is this process's own resume, yield returns
// without any goroutine switch; otherwise the token moves to the next
// event's goroutine and this one parks. All blocking primitives are built
// on yield.
func (p *Proc) yield(reason string) {
	p.state = procBlocked
	p.blockReason = reason
	p.e.schedule(p)
	if p.e.stopped || p.killed {
		panic(stopSignal{})
	}
	p.state = procRunning
	p.blockReason = ""
}

// Advance consumes d of virtual time (plus any accumulated debt),
// modelling computation or any other busy activity. Negative durations are
// a programming error.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance(%v) with negative duration in %q", d, p.name))
	}
	d += p.debt
	p.debt = 0
	if d == 0 {
		return
	}
	e := p.e
	target := e.now + d
	// Fast path: nothing else is scheduled at or before target, so the
	// engine would pop this process's own resume next — move the clock
	// directly and keep running, skipping the park/dispatch round trip.
	// A killed process still unwinds here: the jump consumes the same
	// clock motion as the queued path, so the two are trajectory-equal.
	if e.canAdvanceInline(target) {
		e.jumpTo(target)
		if p.killed {
			panic(stopSignal{})
		}
		return
	}
	e.atProc(target, p)
	p.yield("advancing")
}

// AdvanceTo consumes virtual time until max(t, now+debt). If the target is
// in the past it only flushes outstanding debt.
func (p *Proc) AdvanceTo(t Time) {
	target := Max(t, p.e.now+p.debt)
	p.debt = 0
	if target > p.e.now {
		if p.e.canAdvanceInline(target) {
			p.e.jumpTo(target)
			if p.killed {
				panic(stopSignal{})
			}
			return
		}
		p.e.atProc(target, p)
		p.yield("advancing")
	}
}

// SettleTo consumes all outstanding debt and advances to t, which the
// caller asserts already accounts for that debt (and any further charges
// it wants folded into a single clock advance). It is the one-yield form
// of FlushDebt-then-AdvanceTo-then-Advance sequences on hot completion
// paths, and the settling half of ParkKeepingDebt.
func (p *Proc) SettleTo(t Time) {
	if t < p.e.now {
		panic(fmt.Sprintf("sim: SettleTo(%v) before now %v in %q", t, p.e.now, p.name))
	}
	p.debt = 0
	if t > p.e.now {
		if p.e.canAdvanceInline(t) {
			p.e.jumpTo(t)
			if p.killed {
				panic(stopSignal{})
			}
			return
		}
		p.e.atProc(t, p)
		p.yield("advancing")
	}
}

// AddDebt records d of CPU time consumed by p without yielding to the
// engine. Debt is a performance fast path for sub-microsecond overheads
// (for example, per-message send overhead): it accumulates until the next
// Advance/AdvanceTo or FlushDebt, at which point it is converted into real
// virtual time. Blocking primitives must call FlushDebt before their first
// condition check.
func (p *Proc) AddDebt(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: AddDebt(%v) negative in %q", d, p.name))
	}
	p.debt += d
}

// Debt reports the accumulated unflushed CPU time.
func (p *Proc) Debt() Time { return p.debt }

// FlushDebt converts accumulated debt into virtual time. It must be called
// before a blocking wait's first condition check, never between the check
// and the park (that would either miss wakeups or double-resume).
func (p *Proc) FlushDebt() {
	if p.debt > 0 {
		p.Advance(0)
	}
}

// park blocks the process until another piece of simulation code calls
// unpark. reason is shown in deadlock reports. Parking with unflushed debt
// is a programming error: the debt would silently vanish from the
// timeline.
func (p *Proc) park(reason string) {
	if p.debt != 0 {
		panic(fmt.Sprintf("sim: %q parked with %v of unflushed debt", p.name, p.debt))
	}
	p.yield(reason)
}

// Park blocks the process until another piece of simulation code wakes it
// with Engine.WakeAt. It is the raw primitive under WaitQueue for callers
// that track their single waiter themselves and can wake it directly.
func (p *Proc) Park(reason string) { p.park(reason) }

// ParkKeepingDebt parks like Park but leaves accumulated debt pending:
// the process's busy window overlaps the blocked period instead of
// preceding it. The caller must fold the debt into a SettleTo target on
// wake — observe nothing earlier than park-time now plus the debt — which
// yields the same resume instant as flushing before the park, one yield
// cheaper.
func (p *Proc) ParkKeepingDebt(reason string) { p.yield(reason) }

// WakeAt schedules r — a Proc or Fiber parked via Park (or a WaitQueue) —
// to resume at virtual time t. Either representation consumes exactly one
// event with the next sequence number, so wake-ups are trajectory-neutral
// across representations.
func (e *Engine) WakeAt(t Time, r Runnable) { r.resumeAt(t) }

// unpark schedules r to resume at the current virtual time. It must be
// called from simulation context (another process or an event callback)
// and r must be parked.
func (e *Engine) unpark(r Runnable) {
	r.resumeAt(e.now)
}

// Spawn starts a child process at the current virtual time. It is a
// convenience wrapper over Engine.Spawn for forking helpers (for example,
// progress threads for nonblocking collectives).
func (p *Proc) Spawn(name string, body func(*Proc)) *Proc {
	return p.e.Spawn(name, body)
}

// WaitQueue is a FIFO list of processes or fibers blocked on a condition.
// The zero value is ready to use. Signal and Broadcast reuse the backing
// array across fill/drain cycles, so steady-state waiting allocates
// nothing.
type WaitQueue struct {
	waiters []Runnable
}

// Wait blocks the calling process until Signal releases it. reason is
// shown in deadlock reports.
func (q *WaitQueue) Wait(p *Proc, reason string) {
	q.waiters = append(q.waiters, p)
	p.park(reason)
}

// WaitFiber parks f on the queue until Signal or Broadcast releases it,
// then continues with next. The fiber counterpart of Wait: it occupies the
// same FIFO position a Proc would, so mixed queues wake in arrival order
// regardless of representation.
func (q *WaitQueue) WaitFiber(f *Fiber, reason string, next StepFunc) StepFunc {
	if f.debt != 0 {
		panic(fmt.Sprintf("sim: fiber %q waited with %v of unflushed debt", f.name, f.debt))
	}
	q.waiters = append(q.waiters, f)
	return f.ParkKeepingDebt(reason, next)
}

// Signal releases the longest-waiting process, if any, and reports whether
// one was released.
func (q *WaitQueue) Signal(e *Engine) bool {
	if len(q.waiters) == 0 {
		return false
	}
	r := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters[len(q.waiters)-1] = nil
	q.waiters = q.waiters[:len(q.waiters)-1]
	e.unpark(r)
	return true
}

// Broadcast releases all waiting processes in FIFO order. The backing
// array is retained (entries cleared) for reuse by later waiters.
func (q *WaitQueue) Broadcast(e *Engine) {
	for i, r := range q.waiters {
		e.unpark(r)
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
}

// Len reports how many processes are waiting.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Remove deletes r from the queue preserving FIFO order and reports
// whether it was present. Failure handling uses it to pull a killed
// runnable out of resource queues so it is never woken post-mortem.
func (q *WaitQueue) Remove(r Runnable) bool {
	for i, w := range q.waiters {
		if w == r {
			copy(q.waiters[i:], q.waiters[i+1:])
			q.waiters[len(q.waiters)-1] = nil
			q.waiters = q.waiters[:len(q.waiters)-1]
			return true
		}
	}
	return false
}

// Completion is a one-shot event that processes can wait on. It is used to
// implement requests (nonblocking operation handles).
type Completion struct {
	done    bool
	at      Time
	waiters WaitQueue
}

// Done reports whether the completion has fired.
func (c *Completion) Done() bool { return c.done }

// DoneAt reports the virtual time at which the completion fired; it is
// meaningful only when Done is true.
func (c *Completion) DoneAt() Time { return c.at }

// Complete fires the completion, releasing all waiters. Completing twice
// is a programming error.
func (c *Completion) Complete(e *Engine) {
	if c.done {
		panic("sim: Completion completed twice")
	}
	c.done = true
	c.at = e.now
	c.waiters.Broadcast(e)
}

// Wait blocks p until the completion fires. Returns immediately if it
// already has.
func (c *Completion) Wait(p *Proc, reason string) {
	p.FlushDebt()
	if c.done {
		return
	}
	c.waiters.Wait(p, reason)
}
