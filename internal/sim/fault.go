package sim

import "fmt"

// FaultWindow is a timed multiplicative slowdown: work performed inside
// [Start, End) progresses Factor times slower than nominal. Windows model
// discrete degradation events (a rank slowdown burst, a congested link)
// layered on top of the steady-state noise model; a campaign compiles to
// per-target window lists consulted by the cost paths.
//
// Window lists must be sorted by Start and non-overlapping — ValidateWindows
// checks the invariant — so that cost integration is a single forward walk
// and a pure function of (start instant, nominal duration, window list).
type FaultWindow struct {
	Start, End Time
	// Factor is the slowdown multiplier inside the window; it must be
	// >= 1 (faults only ever slow things down).
	Factor float64
}

// ValidateWindows checks that ws is sorted by Start, non-overlapping, with
// positive extents and factors >= 1.
func ValidateWindows(ws []FaultWindow) error {
	for i, w := range ws {
		if w.End <= w.Start {
			return fmt.Errorf("sim: fault window %d has non-positive extent [%v, %v)", i, w.Start, w.End)
		}
		if w.Factor < 1 {
			return fmt.Errorf("sim: fault window %d has factor %v < 1", i, w.Factor)
		}
		if i > 0 && w.Start < ws[i-1].End {
			return fmt.Errorf("sim: fault window %d starting %v overlaps previous window ending %v", i, w.Start, ws[i-1].End)
		}
	}
	return nil
}

// StretchThrough reports the wall-clock duration of d of nominal work
// starting at now, integrated through the slowdown windows ws: outside
// every window work progresses at nominal rate, inside a window at
// 1/Factor of it. The result is a pure function of its arguments — no
// random draws — so faulted trajectories stay bit-identical across
// process representations and repeated runs.
func StretchThrough(now, d Time, ws []FaultWindow) Time {
	if d <= 0 || len(ws) == 0 {
		return d
	}
	t := now
	work := d
	for _, w := range ws {
		if w.End <= t {
			continue
		}
		if w.Start > t {
			free := w.Start - t
			if work <= free {
				return t + work - now
			}
			t = w.Start
			work -= free
		}
		span := w.End - t
		capacity := Time(float64(span) / w.Factor)
		if work <= capacity {
			return t + Time(float64(work)*w.Factor) - now
		}
		work -= capacity
		t = w.End
	}
	return t + work - now
}

// CrashEvent is one crash-stop failure in a campaign: the runnable
// standing in for rank Target is killed at At (Engine.Kill) and
// respawned Restart later. Crash schedules must be sorted by (At,
// Target); the mpi layer turns them into deterministic kill and restart
// events at fixed (t, seq) positions (see the failure/recovery contract
// in the package comment).
type CrashEvent struct {
	At      Time
	Target  int
	Restart Time
}

// StripeFault is a timed degradation of one bank stripe: inside
// [Start, End) the stripe transfers at Rate times its nominal throughput.
// Rate 0 is a full outage — a booking straddling the window stalls and
// resumes when it lifts — and 0 < Rate < 1 is a derate (a half-rate
// stripe doubles the occupancy of the overlapping portion of a booking).
//
// Per-stripe fault lists must be sorted by Start and non-overlapping
// (ValidateStripeFaults), mirroring the FaultWindow contract.
type StripeFault struct {
	Start, End Time
	// Rate is the remaining throughput fraction inside the window:
	// 0 <= Rate < 1, with 0 meaning a full outage.
	Rate float64
}

// ValidateStripeFaults checks that fs is sorted by Start, non-overlapping,
// with positive extents and rates in [0, 1).
func ValidateStripeFaults(fs []StripeFault) error {
	for i, f := range fs {
		if f.End <= f.Start {
			return fmt.Errorf("sim: stripe fault %d has non-positive extent [%v, %v)", i, f.Start, f.End)
		}
		if f.Rate < 0 || f.Rate >= 1 {
			return fmt.Errorf("sim: stripe fault %d has rate %v outside [0, 1)", i, f.Rate)
		}
		if i > 0 && f.Start < fs[i-1].End {
			return fmt.Errorf("sim: stripe fault %d starting %v overlaps previous fault ending %v", i, f.Start, fs[i-1].End)
		}
	}
	return nil
}

// stripeFinish reports when a booking of dur nominal transfer time
// starting at st on a stripe carrying faults fs completes: portions
// overlapping a derate window progress at Rate, portions overlapping an
// outage make no progress until the window lifts. Like StretchThrough it
// is a pure function, which is what keeps faulted bank placement
// deterministic.
func stripeFinish(st, dur Time, fs []StripeFault) Time {
	if dur <= 0 || len(fs) == 0 {
		return st + dur
	}
	t := st
	work := dur
	for _, f := range fs {
		if f.End <= t {
			continue
		}
		if f.Start > t {
			free := f.Start - t
			if work <= free {
				return t + work
			}
			t = f.Start
			work -= free
		}
		span := f.End - t
		if f.Rate > 0 {
			capacity := Time(float64(span) * f.Rate)
			if work <= capacity {
				return t + Time(float64(work)/f.Rate)
			}
			work -= capacity
		}
		t = f.End
	}
	return t + work
}
