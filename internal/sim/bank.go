package sim

import "fmt"

// BankPolicy selects how a Bank arbitrates stripe time between jobs.
//
// The bank is a timeline-reservation resource: callers learn their slot
// immediately and never queue. Inter-job arbitration therefore works the
// way a storage gateway's QoS engine does (Lustre's token-bucket NRS
// policies are the production example): an over-share job's reservations
// are paced onto the timeline with gaps, and under-share jobs' requests
// fill those gaps. All policies are deterministic pure functions of the
// reservation call sequence — and, for the work-conserving policies, of
// the interleaved demand-signal sequence (IOBegin/IOEnd) — which the
// engine's (t, seq) event order fixes.
type BankPolicy int

const (
	// BankFCFS grants reservations in pure arrival order on the
	// least-loaded stripe. With a single job this is byte-identical to
	// the historical per-world Striped behavior; it is also the baseline
	// inter-job policy (no isolation: a hog job's booked backlog delays
	// everyone behind it).
	BankFCFS BankPolicy = iota
	// BankFair is equal-share pacing: with k jobs registered, each job's
	// sustained bookings may occupy at most 1/k of the timeline, so a
	// hog's reservations are spread out with idle holes and a light job's
	// requests slot into the holes instead of queueing behind the hog's
	// whole backlog. Shares are static (token-bucket semantics): a job
	// coming off idle gets one unpaced burst, then pacing resumes, and a
	// sustained hog stays paced even while the other jobs underuse their
	// shares — the deliberate, non-work-conserving trade real QoS engines
	// (Lustre's TBF) make for isolation. Per-job weights are ignored
	// (all 1).
	BankFair
	// BankWeighted is BankFair with per-job share weights: a weight-4
	// job is entitled to four times the timeline fraction of a weight-1
	// job. This is the priority policy: priority ranks map to weights.
	BankWeighted
	// BankFairWC is BankFair made work-conserving through demand
	// signalling: jobs bracket their file operations with IOBegin/IOEnd,
	// and a reserving job's entitlement is recomputed per grant as an
	// equal split over the currently-demanding jobs only — idle jobs'
	// unused shares are redistributed instead of left as holes nobody
	// fills. A job reserving while no other job has signalled demand is
	// not paced at all (and its accumulated pacing debt is forgiven), so
	// the bank never leaves a stripe idle while any registered job has
	// queued demand. The isolation guarantee weakens to the classic
	// work-conserving bound: a job whose demand is continuous keeps its
	// full static share, while a job arriving after an idle period can
	// queue behind the grants already booked at its arrival (the
	// in-flight quanta) — never behind pre-reserved future headroom.
	// As under BankFair, weights are ignored.
	BankFairWC
	// BankWeightedWC is BankWeighted made work-conserving the same way:
	// a reserving job's entitlement is its weight over the weights of the
	// currently-demanding jobs, so an idle job's weighted share flows to
	// whoever is asking, proportionally to weight.
	BankWeightedWC
)

// String names the policy as the cosched experiment series do.
func (p BankPolicy) String() string {
	switch p {
	case BankFCFS:
		return "fcfs"
	case BankFair:
		return "fair"
	case BankWeighted:
		return "priority"
	case BankFairWC:
		return "fair-wc"
	case BankWeightedWC:
		return "priority-wc"
	default:
		return fmt.Sprintf("BankPolicy(%d)", int(p))
	}
}

// workConserving reports whether the policy redistributes idle
// entitlement over demanding jobs.
func (p BankPolicy) workConserving() bool {
	return p == BankFairWC || p == BankWeightedWC
}

// weighted reports whether per-job weights participate in the share.
func (p BankPolicy) weighted() bool {
	return p == BankWeighted || p == BankWeightedWC
}

// gap is an unreserved hole in a stripe's timeline, left by pacing an
// over-share job's reservation past the stripe's previous frontier.
type gap struct {
	start, end Time
}

// bankLink is the per-stripe gap list maintained under the fair policies
// (FCFS never creates or fills gaps). Gaps are kept sorted by start and
// non-overlapping; reservation instants only move forward in virtual
// time, so after every Reserve call the surviving gaps lie entirely at
// or after the reservation instant — expired gaps are dropped and a gap
// straddling the instant is trimmed to its usable future part.
type bankLink struct {
	gaps []gap
}

// Bank is a striped-FS bank shared by one or more jobs (worlds): the
// Striped link array plus per-job pacing state and an inter-job
// arbitration policy. A single-job BankFCFS bank behaves exactly like the
// bare Striped it wraps, which is what keeps single-world trajectories
// byte-identical across the extraction.
type Bank struct {
	s      Striped
	glinks []bankLink
	policy BankPolicy

	// svc is each job's virtual service clock: the earliest instant its
	// next reservation may start. It advances by dur/share per grant and
	// rebaselines to the request instant when the job is under its share
	// (idle periods refill its burst credit).
	svc []Time
	// total is each job's lifetime reserved stripe time, for reporting.
	total   []Time
	weights []float64

	// demand is each job's count of in-flight file operations, fed by
	// IOBegin/IOEnd. A job with a positive count has queued I/O demand;
	// the work-conserving policies re-split idle jobs' entitlement over
	// the demanding ones. The static policies never read it, so the
	// signalling is trajectory-neutral for them.
	demand []int
	// demandSince is the instant the job's demand count last rose from
	// zero; demandTime accumulates closed demand intervals for reporting.
	demandSince []Time
	demandTime  []Time

	// sfaults holds each stripe's degradation windows (outages and
	// derates), nil when the bank is fault-free. Faults inflate the
	// occupancy of overlapping bookings (stripeFinish); with no faults
	// every code path below reduces to the historical arithmetic, which
	// is what keeps fault-free trajectories byte-identical.
	sfaults [][]StripeFault

	// lastAt is the latest reservation instant seen, for enforcing the
	// non-decreasing contract on Reserve.
	lastAt Time
	// lastStripe is the stripe index of the most recent grant, exposed to
	// the package tests so the property suite can shadow per-stripe
	// timelines without re-deriving placement.
	lastStripe int

	// group/owner are the sharded-mode attachment (AttachGroup): when
	// group is non-nil, every reservation and demand signal reaches the
	// bank as a window-boundary event on the owner shard's engine, so
	// grant order is a pure function of the (t, pri, seq) event key and
	// never of which shard asked first. Reset clears the attachment.
	group *ShardGroup
	owner int
}

// NewBank creates a bank of stripes links arbitrated between jobs jobs
// under the given policy. Both counts must be positive.
func NewBank(stripes, jobs int, policy BankPolicy) *Bank {
	if jobs <= 0 {
		panic(fmt.Sprintf("sim: Bank needs at least one job, got %d", jobs))
	}
	b := &Bank{
		s:           *NewStriped(stripes),
		policy:      policy,
		svc:         make([]Time, jobs),
		total:       make([]Time, jobs),
		weights:     make([]float64, jobs),
		demand:      make([]int, jobs),
		demandSince: make([]Time, jobs),
		demandTime:  make([]Time, jobs),
	}
	if policy != BankFCFS {
		b.glinks = make([]bankLink, stripes)
	}
	for i := range b.weights {
		b.weights[i] = 1
	}
	return b
}

// SetWeight sets job's share weight for the weighted policies. Weights
// must be positive; the other policies ignore them.
func (b *Bank) SetWeight(job int, w float64) {
	if w <= 0 {
		panic(fmt.Sprintf("sim: Bank weight %v for job %d", w, job))
	}
	b.weights[job] = w
}

// Width reports the number of stripes.
func (b *Bank) Width() int { return b.s.Width() }

// Jobs reports the number of jobs the bank arbitrates between.
func (b *Bank) Jobs() int { return len(b.svc) }

// Policy reports the inter-job arbitration policy.
func (b *Bank) Policy() BankPolicy { return b.policy }

// Busy reports the total reserved stripe time across all links.
func (b *Bank) Busy() Time { return b.s.Busy() }

// JobBusy reports the total stripe time job has reserved over the bank's
// lifetime.
func (b *Bank) JobBusy(job int) Time { return b.total[job] }

// IOBegin records that one of job's processes entered a file operation
// at virtual time at: the job has queued I/O demand until the matching
// IOEnd. Demand is a per-job reference count, so concurrent operations
// from several ranks of one job nest. Signalling is pure bookkeeping —
// it schedules no events and moves no clocks — so it never perturbs
// trajectories; only the work-conserving policies read it when granting.
func (b *Bank) IOBegin(job int, at Time) {
	if b.demand[job] == 0 {
		b.demandSince[job] = at
	}
	b.demand[job]++
}

// IOEnd closes the demand interval opened by the matching IOBegin at
// virtual time at. Ending demand that was never signalled is a
// programming error.
func (b *Bank) IOEnd(job int, at Time) {
	if b.demand[job] <= 0 {
		panic(fmt.Sprintf("sim: Bank IOEnd without matching IOBegin for job %d at %v", job, at))
	}
	b.demand[job]--
	if b.demand[job] == 0 {
		b.demandTime[job] += at - b.demandSince[job]
	}
}

// Demanding reports whether job currently has signalled I/O demand.
func (b *Bank) Demanding(job int) bool { return b.demand[job] > 0 }

// JobDemand reports the cumulative virtual time job has spent with
// signalled I/O demand (closed IOBegin/IOEnd intervals only; an interval
// still open contributes once it closes). It is the per-job demand
// accounting the cluster layer reports alongside JobBusy.
func (b *Bank) JobDemand(job int) Time { return b.demandTime[job] }

// AttachGroup places the bank into sharded mode for the coming run: the
// bank's arbitration state becomes owned by shard owner of g, and callers
// on any shard reach it through the PostReserve/PostIOBegin/PostIOEnd
// event protocol instead of calling Reserve/IOBegin/IOEnd directly. The
// attachment is per-run configuration, like fault windows: Reset drops
// it.
func (b *Bank) AttachGroup(g *ShardGroup, owner int) {
	if g == nil {
		panic("sim: Bank.AttachGroup with nil group")
	}
	if owner < 0 || owner >= g.Shards() {
		panic(fmt.Sprintf("sim: Bank.AttachGroup owner shard %d of %d", owner, g.Shards()))
	}
	b.group = g
	b.owner = owner
}

// Sharded reports whether the bank is attached to a shard group (all
// access must go through the Post* event protocol).
func (b *Bank) Sharded() bool { return b.group != nil }

// Group returns the attached shard group, nil in classic mode.
func (b *Bank) Group() *ShardGroup { return b.group }

// BankReq is one in-flight reservation under the sharded-bank protocol:
// a two-phase event that carries the request to the owner shard and the
// grant back. Phase one fires on the owner's engine one lookahead after
// the request instant — in (t, pri, seq) order, where pri is the
// requesting rank's delivery priority, so grant order is sender program
// order regardless of sharding — and books via Reserve at the owner's
// clock. Phase two fires on the requesting shard another lookahead later
// and wakes the parked requester, which reads the granted slot from
// Start/End. At one worker both phases degenerate to same-engine pri
// events with identical times and keys, which is what makes sharded rows
// byte-identical for every worker count.
type BankReq struct {
	b      *Bank
	src    *Engine
	target Runnable
	job    int
	dur    Time
	pri    uint64
	booked bool
	// Start and End are the granted slot, valid once the requester has
	// been woken.
	Start, End Time
}

// Fire advances the request through its two phases (Action contract).
func (r *BankReq) Fire() {
	own := r.b.group.engines[r.b.owner]
	if !r.booked {
		// On the owner shard: grant at the owner's clock, which is
		// monotone across requests, satisfying Reserve's non-decreasing
		// contract; then send the grant home with the same priority.
		r.Start, r.End = r.b.Reserve(r.job, own.now, r.dur)
		r.booked = true
		own.Post(r.src, own.now+r.b.group.lookahead, r.pri, r)
		return
	}
	// Back on the requesting shard: wake the parked requester at the
	// grant's arrival instant.
	r.src.WakeAt(r.src.now, r.target)
}

// PostReserve books dur of stripe time for job through the sharded-bank
// protocol: the request travels to the owner shard as a boundary event
// carrying pri (the requesting rank's delivery priority) and the grant
// travels back the same way, so the caller resumes two lookaheads after
// src's current instant with the slot in the returned request's
// Start/End. The caller parks target (keeping any debt) immediately
// after posting and settles to End on resume.
func (b *Bank) PostReserve(src *Engine, job int, dur Time, pri uint64, target Runnable) *BankReq {
	r := &BankReq{b: b, src: src, target: target, job: job, dur: dur, pri: pri}
	src.Post(b.group.engines[b.owner], src.now+b.group.lookahead, pri, r)
	return r
}

// bankSignal carries one demand-signal edge (IOBegin or IOEnd) to the
// owner shard under the sharded-bank protocol.
type bankSignal struct {
	b     *Bank
	job   int
	begin bool
}

// Fire applies the edge on the owner shard (Action contract).
func (s *bankSignal) Fire() {
	own := s.b.group.engines[s.b.owner]
	if s.begin {
		s.b.IOBegin(s.job, own.now)
	} else {
		s.b.IOEnd(s.job, own.now)
	}
}

// PostIOBegin is IOBegin under the sharded-bank protocol: the demand edge
// reaches the owner shard one lookahead after src's current instant,
// ordered by pri like every other cross-shard event, so the demand
// sequence the work-conserving policies read is partition-independent.
func (b *Bank) PostIOBegin(src *Engine, job int, pri uint64) {
	b.postSignal(src, job, pri, true)
}

// PostIOEnd is IOEnd under the sharded-bank protocol.
func (b *Bank) PostIOEnd(src *Engine, job int, pri uint64) {
	b.postSignal(src, job, pri, false)
}

func (b *Bank) postSignal(src *Engine, job int, pri uint64, begin bool) {
	src.Post(b.group.engines[b.owner], src.now+b.group.lookahead, pri, &bankSignal{b: b, job: job, begin: begin})
}

// SetStripeFaults installs stripe's degradation windows for the current
// run. The windows must be sorted and non-overlapping
// (ValidateStripeFaults); passing an empty list clears the stripe's
// faults. Fault windows are per-run configuration: Reset drops them, so a
// pooled bank must have them re-applied before reuse.
func (b *Bank) SetStripeFaults(stripe int, fs []StripeFault) {
	if stripe < 0 || stripe >= b.s.Width() {
		panic(fmt.Sprintf("sim: SetStripeFaults on stripe %d of %d", stripe, b.s.Width()))
	}
	if err := ValidateStripeFaults(fs); err != nil {
		panic(err.Error())
	}
	if len(fs) == 0 {
		if b.sfaults != nil {
			b.sfaults[stripe] = nil
		}
		return
	}
	if b.sfaults == nil {
		b.sfaults = make([][]StripeFault, b.s.Width())
	}
	b.sfaults[stripe] = append([]StripeFault(nil), fs...)
}

// Faulted reports whether any stripe currently carries fault windows.
func (b *Bank) Faulted() bool {
	for _, fs := range b.sfaults {
		if len(fs) > 0 {
			return true
		}
	}
	return false
}

// slotEnd reports when a booking of dur starting at st on stripe i
// completes, accounting for the stripe's fault windows. Fault-free
// stripes finish at st+dur exactly.
func (b *Bank) slotEnd(i int, st, dur Time) Time {
	if b.sfaults == nil {
		return st + dur
	}
	return stripeFinish(st, dur, b.sfaults[i])
}

// Reset clears all reservations, pacing, demand and fault state,
// returning the bank to its initial state for reuse across simulation
// runs. Weights are retained; fault windows are not (they are per-run
// campaign state — the owner re-applies them via SetStripeFaults).
func (b *Bank) Reset() {
	b.s.Reset()
	b.sfaults = nil
	for i := range b.glinks {
		b.glinks[i].gaps = b.glinks[i].gaps[:0]
	}
	for i := range b.svc {
		b.svc[i] = 0
		b.total[i] = 0
		b.demand[i] = 0
		b.demandSince[i] = 0
		b.demandTime[i] = 0
	}
	b.lastAt = 0
	b.lastStripe = 0
	// The sharded attachment is per-run configuration like fault
	// windows: a pooled bank must never carry a dead run's shard group
	// (pending BankReq state lives in that group's engines and dies with
	// them).
	b.group = nil
	b.owner = 0
}

// share reports job's static timeline share: equal splits under the fair
// policies, its weight over the weights of every registered job under
// the weighted ones.
func (b *Bank) share(job int) float64 {
	if !b.policy.weighted() {
		return 1 / float64(len(b.svc))
	}
	var sum float64
	for _, w := range b.weights {
		sum += w
	}
	return b.weights[job] / sum
}

// wcShare reports job's dynamic share under the work-conserving
// policies: its weight over the weights of the currently-demanding jobs.
// The reserving job always counts as demanding (it is asking right now,
// whether or not its demand hook fired), so the result is in (0, 1].
// Idle jobs contribute nothing to the denominator — their entitlement is
// re-split over the demanding jobs by weight.
func (b *Bank) wcShare(job int) float64 {
	var sum, mine float64
	for k := range b.svc {
		w := 1.0
		if b.policy.weighted() {
			w = b.weights[k]
		}
		if k == job {
			mine = w
			sum += w
		} else if b.demand[k] > 0 {
			sum += w
		}
	}
	return mine / sum
}

// otherDemand reports whether any job besides job has signalled demand.
func (b *Bank) otherDemand(job int) bool {
	for k, d := range b.demand {
		if k != job && d > 0 {
			return true
		}
	}
	return false
}

// Reserve books dur of stripe time for job no earlier than at, returning
// the granted slot. Reservation instants must be non-decreasing across
// calls (they are: callers reserve at the engine's current virtual
// time); a violating caller panics rather than silently corrupting the
// per-stripe gap lists, whose pruning assumes time moves forward.
//
// Under BankFCFS the request goes straight to the least-loaded stripe,
// identically to Striped.Reserve. Under the fair policies the request may
// not start before the job's virtual service clock — which advances by
// dur/share per grant, so a job sustaining more than its share has its
// bookings paced out with idle holes — and is then placed in the earliest
// hole (or tail) across stripes, so under-share jobs overtake a hog's
// spread-out backlog instead of queueing behind all of it. A job whose
// clock has fallen behind the request instant (it was idle or under its
// share) rebaselines and pays no pacing on its next write.
//
// The work-conserving policies differ in the share used: it is computed
// per grant over the currently-demanding jobs (wcShare), and when no
// other job is demanding the request is not paced at all — the job's
// service clock rebaselines to the request instant, forgiving pacing
// debt accumulated under contention, because holding slots open for
// absent contenders would leave stripes idle against queued demand.
func (b *Bank) Reserve(job int, at, dur Time) (start, end Time) {
	if at < b.lastAt {
		panic(fmt.Sprintf("sim: Bank reservation instants must be non-decreasing: job %d reserves at %v after an earlier reservation at %v", job, at, b.lastAt))
	}
	b.lastAt = at
	if b.policy == BankFCFS || len(b.svc) == 1 {
		if b.sfaults == nil {
			start, end, b.lastStripe = b.s.reserve(at, dur)
			b.total[job] += dur
			return start, end
		}
		start, end = b.reserveFaulted(at, dur)
		b.total[job] += end - start
		return start, end
	}
	if b.svc[job] < at {
		b.svc[job] = at
	}
	var share float64
	switch {
	case !b.policy.workConserving():
		share = b.share(job)
	case b.otherDemand(job):
		share = b.wcShare(job)
	default:
		// Idle-share redistribution, sole-demander case: every other
		// job's entitlement is unused, so it all flows here. Pacing
		// would leave stripes idle that no contender can fill; book
		// at the earliest feasible instant and clear accumulated
		// pacing debt (contention resuming later paces from now, not
		// from past sins).
		b.svc[job] = at
		share = 1
	}
	eff := b.svc[job]
	start, end = b.place(at, eff, dur)
	// The entitlement is a fraction of the aggregate bank (share x width
	// stripes), so on a wide bank a job streaming to a single stripe at a
	// time stays inside its share and is never paced — pacing only bites
	// when the job's parallel demand exceeds its slice of the whole bank.
	// The service clock advances by the nominal duration: a stripe fault
	// inflating a booking's occupancy is the bank's failure, not extra
	// demand, so it does not count against the job's entitlement.
	b.svc[job] = eff + Time(float64(dur)/(share*float64(b.s.Width())))
	b.total[job] += end - start
	return start, end
}

// reserveFaulted is the FCFS/single-job path with stripe faults present:
// least-loaded placement like Striped.reserve, except that each stripe's
// completion is integrated through its fault windows and the stripe
// finishing earliest wins (ties by earlier start, then lowest index) —
// so requests skip a stripe mid-outage whenever a healthy stripe would
// finish sooner. With no faults the completion ordering equals the start
// ordering and the choice matches Striped.reserve exactly.
func (b *Bank) reserveFaulted(at, dur Time) (start, end Time) {
	best := 0
	bestStart := Max(at, b.s.links[0].nextFree)
	bestEnd := b.slotEnd(0, bestStart, dur)
	for i := 1; i < len(b.s.links); i++ {
		st := Max(at, b.s.links[i].nextFree)
		en := b.slotEnd(i, st, dur)
		if en < bestEnd || (en == bestEnd && st < bestStart) {
			best, bestStart, bestEnd = i, st, en
		}
	}
	l := &b.s.links[best]
	l.nextFree = bestEnd
	l.busy += bestEnd - bestStart
	b.lastStripe = best
	return bestStart, bestEnd
}

// place books dur on the stripe completing earliest for a start at or
// after eff — inside a pacing gap when one fits, else at the stripe
// tail. Within a stripe the candidate is the earliest-starting fit (the
// first gap the faulted booking fits in, else the tail); across stripes
// the earliest completion wins, with ties broken by earlier start, then
// lowest index. Completion is integrated through the stripe's fault
// windows (slotEnd), so requests flow around a stripe mid-outage to
// whichever healthy stripe finishes first; with no faults completion
// order equals start order and the selection is byte-identical to the
// historical earliest-start rule.
//
// Before searching, each stripe's gap list is pruned against at (the
// current virtual time): gaps that ended at or before at are dropped,
// and a gap straddling at is trimmed to start at at — no future request
// can start earlier — so the sorted/non-overlapping/never-in-the-past
// invariant holds literally after every call. Trimming never changes
// placement (eff >= at always, so the sub-at part of a gap was already
// unusable); it exists so the invariant is checkable and the lists do
// not carry stale starts.
func (b *Bank) place(at, eff, dur Time) (start, end Time) {
	best := -1
	bestGap := -1
	var bestStart, bestEnd Time
	for i := range b.s.links {
		gl := &b.glinks[i]
		// Expire gaps the clock has passed: no future request can start
		// before at.
		keep := gl.gaps[:0]
		for _, g := range gl.gaps {
			if g.end <= at {
				continue
			}
			if g.start < at {
				g.start = at
			}
			keep = append(keep, g)
		}
		gl.gaps = keep
		st := Max(eff, b.s.links[i].nextFree)
		en := b.slotEnd(i, st, dur)
		gi := -1
		for j, g := range gl.gaps {
			s0 := Max(g.start, eff)
			e0 := b.slotEnd(i, s0, dur)
			if e0 <= g.end && s0 < st {
				st, en, gi = s0, e0, j
				break // gaps are sorted by start; the first fit is earliest
			}
		}
		if best == -1 || en < bestEnd || (en == bestEnd && st < bestStart) {
			best, bestGap, bestStart, bestEnd = i, gi, st, en
		}
	}
	l := &b.s.links[best]
	b.lastStripe = best
	start = bestStart
	end = bestEnd
	if bestGap >= 0 {
		// Split the gap around the booking, keeping nonempty remainders.
		gl := &b.glinks[best]
		g := gl.gaps[bestGap]
		rest := make([]gap, 0, 2)
		if g.start < start {
			rest = append(rest, gap{g.start, start})
		}
		if end < g.end {
			rest = append(rest, gap{end, g.end})
		}
		gl.gaps = append(gl.gaps[:bestGap], append(rest, gl.gaps[bestGap+1:]...)...)
		l.busy += end - start
		return start, end
	}
	// Tail booking: pacing past the frontier leaves a new gap behind it.
	// The gap is clamped to start no earlier than at — a frontier in the
	// past would otherwise donate a hole no future request (whose instant
	// is >= at) could ever use, violating the never-in-the-past invariant
	// until the next prune.
	if gs := Max(l.nextFree, at); start > gs {
		gl := &b.glinks[best]
		gl.gaps = append(gl.gaps, gap{gs, start})
	}
	l.nextFree = end
	l.busy += end - start
	return start, end
}
