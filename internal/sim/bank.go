package sim

import "fmt"

// BankPolicy selects how a Bank arbitrates stripe time between jobs.
//
// The bank is a timeline-reservation resource: callers learn their slot
// immediately and never queue. Inter-job arbitration therefore works the
// way a storage gateway's QoS engine does (Lustre's token-bucket NRS
// policies are the production example): an over-share job's reservations
// are paced onto the timeline with gaps, and under-share jobs' requests
// fill those gaps. All policies are deterministic pure functions of the
// reservation call sequence, which the engine's (t, seq) event order
// fixes.
type BankPolicy int

const (
	// BankFCFS grants reservations in pure arrival order on the
	// least-loaded stripe. With a single job this is byte-identical to
	// the historical per-world Striped behavior; it is also the baseline
	// inter-job policy (no isolation: a hog job's booked backlog delays
	// everyone behind it).
	BankFCFS BankPolicy = iota
	// BankFair is equal-share pacing: with k jobs registered, each job's
	// sustained bookings may occupy at most 1/k of the timeline, so a
	// hog's reservations are spread out with idle holes and a light job's
	// requests slot into the holes instead of queueing behind the hog's
	// whole backlog. Shares are static (token-bucket semantics): a job
	// coming off idle gets one unpaced burst, then pacing resumes, and a
	// sustained hog stays paced even while the other jobs underuse their
	// shares — the deliberate, non-work-conserving trade real QoS engines
	// (Lustre's TBF) make for isolation. Per-job weights are ignored
	// (all 1).
	BankFair
	// BankWeighted is BankFair with per-job share weights: a weight-4
	// job is entitled to four times the timeline fraction of a weight-1
	// job. This is the priority policy: priority ranks map to weights.
	BankWeighted
)

// String names the policy as the cosched experiment series do.
func (p BankPolicy) String() string {
	switch p {
	case BankFCFS:
		return "fcfs"
	case BankFair:
		return "fair"
	case BankWeighted:
		return "priority"
	default:
		return fmt.Sprintf("BankPolicy(%d)", int(p))
	}
}

// gap is an unreserved hole in a stripe's timeline, left by pacing an
// over-share job's reservation past the stripe's previous frontier.
type gap struct {
	start, end Time
}

// bankLink is the per-stripe gap list maintained under the fair policies
// (FCFS never creates or fills gaps). Gaps are kept sorted by start and
// non-overlapping; reservation instants only move forward in virtual
// time, so gaps wholly in the past are pruned as they expire.
type bankLink struct {
	gaps []gap
}

// Bank is a striped-FS bank shared by one or more jobs (worlds): the
// Striped link array plus per-job pacing state and an inter-job
// arbitration policy. A single-job BankFCFS bank behaves exactly like the
// bare Striped it wraps, which is what keeps single-world trajectories
// byte-identical across the extraction.
type Bank struct {
	s      Striped
	glinks []bankLink
	policy BankPolicy

	// svc is each job's virtual service clock: the earliest instant its
	// next reservation may start. It advances by dur/share per grant and
	// rebaselines to the request instant when the job is under its share
	// (idle periods refill its burst credit).
	svc []Time
	// total is each job's lifetime reserved stripe time, for reporting.
	total   []Time
	weights []float64
}

// NewBank creates a bank of stripes links arbitrated between jobs jobs
// under the given policy. Both counts must be positive.
func NewBank(stripes, jobs int, policy BankPolicy) *Bank {
	if jobs <= 0 {
		panic(fmt.Sprintf("sim: Bank needs at least one job, got %d", jobs))
	}
	b := &Bank{
		s:       *NewStriped(stripes),
		policy:  policy,
		svc:     make([]Time, jobs),
		total:   make([]Time, jobs),
		weights: make([]float64, jobs),
	}
	if policy != BankFCFS {
		b.glinks = make([]bankLink, stripes)
	}
	for i := range b.weights {
		b.weights[i] = 1
	}
	return b
}

// SetWeight sets job's share weight for BankWeighted. Weights must be
// positive; the other policies ignore them.
func (b *Bank) SetWeight(job int, w float64) {
	if w <= 0 {
		panic(fmt.Sprintf("sim: Bank weight %v for job %d", w, job))
	}
	b.weights[job] = w
}

// Width reports the number of stripes.
func (b *Bank) Width() int { return b.s.Width() }

// Jobs reports the number of jobs the bank arbitrates between.
func (b *Bank) Jobs() int { return len(b.svc) }

// Policy reports the inter-job arbitration policy.
func (b *Bank) Policy() BankPolicy { return b.policy }

// Busy reports the total reserved stripe time across all links.
func (b *Bank) Busy() Time { return b.s.Busy() }

// JobBusy reports the total stripe time job has reserved over the bank's
// lifetime.
func (b *Bank) JobBusy(job int) Time { return b.total[job] }

// Reset clears all reservations and pacing state, returning the bank to
// its initial state for reuse across simulation runs. Weights are
// retained.
func (b *Bank) Reset() {
	b.s.Reset()
	for i := range b.glinks {
		b.glinks[i].gaps = b.glinks[i].gaps[:0]
	}
	for i := range b.svc {
		b.svc[i] = 0
		b.total[i] = 0
	}
}

// share reports job's static timeline share: equal splits under BankFair,
// its weight over the weights of every registered job under BankWeighted.
func (b *Bank) share(job int) float64 {
	if b.policy != BankWeighted {
		return 1 / float64(len(b.svc))
	}
	var sum float64
	for _, w := range b.weights {
		sum += w
	}
	return b.weights[job] / sum
}

// Reserve books dur of stripe time for job no earlier than at, returning
// the granted slot. Reservation instants must be non-decreasing across
// calls (they are: callers reserve at the engine's current virtual time).
//
// Under BankFCFS the request goes straight to the least-loaded stripe,
// identically to Striped.Reserve. Under the fair policies the request may
// not start before the job's virtual service clock — which advances by
// dur/share per grant, so a job sustaining more than its share has its
// bookings paced out with idle holes — and is then placed in the earliest
// hole (or tail) across stripes, so under-share jobs overtake a hog's
// spread-out backlog instead of queueing behind all of it. A job whose
// clock has fallen behind the request instant (it was idle or under its
// share) rebaselines and pays no pacing on its next write.
func (b *Bank) Reserve(job int, at, dur Time) (start, end Time) {
	if b.policy == BankFCFS || len(b.svc) == 1 {
		start, end = b.s.Reserve(at, dur)
		b.total[job] += dur
		return start, end
	}
	if b.svc[job] < at {
		b.svc[job] = at
	}
	eff := b.svc[job]
	start, end = b.place(at, eff, dur)
	// The entitlement is a fraction of the aggregate bank (share x width
	// stripes), so on a wide bank a job streaming to a single stripe at a
	// time stays inside its share and is never paced — pacing only bites
	// when the job's parallel demand exceeds its slice of the whole bank.
	b.svc[job] = eff + Time(float64(dur)/(b.share(job)*float64(b.s.Width())))
	b.total[job] += dur
	return start, end
}

// place books dur on the stripe offering the earliest start at or after
// eff — inside a pacing gap when one fits, else at the stripe tail —
// pruning gaps that have wholly expired (ended at or before at, the
// current virtual time).
func (b *Bank) place(at, eff, dur Time) (start, end Time) {
	best := -1
	bestGap := -1
	var bestStart Time
	for i := range b.s.links {
		gl := &b.glinks[i]
		// Expire gaps the clock has passed: no future request can start
		// before at.
		keep := gl.gaps[:0]
		for _, g := range gl.gaps {
			if g.end > at {
				keep = append(keep, g)
			}
		}
		gl.gaps = keep
		st := Max(eff, b.s.links[i].nextFree)
		gi := -1
		for j, g := range gl.gaps {
			s0 := Max(g.start, eff)
			if s0+dur <= g.end && s0 < st {
				st, gi = s0, j
				break // gaps are sorted by start; the first fit is earliest
			}
		}
		if best == -1 || st < bestStart {
			best, bestGap, bestStart = i, gi, st
		}
	}
	l := &b.s.links[best]
	start = bestStart
	end = start + dur
	if bestGap >= 0 {
		// Split the gap around the booking, keeping nonempty remainders.
		gl := &b.glinks[best]
		g := gl.gaps[bestGap]
		rest := make([]gap, 0, 2)
		if g.start < start {
			rest = append(rest, gap{g.start, start})
		}
		if end < g.end {
			rest = append(rest, gap{end, g.end})
		}
		gl.gaps = append(gl.gaps[:bestGap], append(rest, gl.gaps[bestGap+1:]...)...)
		l.busy += dur
		return start, end
	}
	// Tail booking: pacing past the frontier leaves a new gap behind it.
	if start > l.nextFree {
		gl := &b.glinks[best]
		gl.gaps = append(gl.gaps, gap{l.nextFree, start})
	}
	l.nextFree = end
	l.busy += dur
	return start, end
}
