package sim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine(1)
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEqualTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcAdvance(t *testing.T) {
	e := NewEngine(1)
	var at1, at2 Time
	e.Spawn("p", func(p *Proc) {
		p.Advance(100)
		at1 = p.Now()
		p.Advance(250)
		at2 = p.Now()
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if at1 != 100 || at2 != 350 || end != 350 {
		t.Fatalf("at1=%v at2=%v end=%v", at1, at2, end)
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		p.Advance(0)
		if p.Now() != 0 {
			t.Errorf("now = %v after Advance(0)", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative Advance did not panic")
			}
		}()
		p.Advance(-1)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		p.AdvanceTo(500)
		if p.Now() != 500 {
			t.Errorf("now = %v, want 500", p.Now())
		}
		p.AdvanceTo(100) // in the past: no-op
		if p.Now() != 500 {
			t.Errorf("now = %v after past AdvanceTo, want 500", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine(7)
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for step := 0; step < 3; step++ {
					p.Advance(Time(10 * (i + 1)))
					log = append(log, fmt.Sprintf("%d@%d", i, p.Now()))
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("log length = %d, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving: %v vs %v", a, b)
		}
	}
}

func TestWaitQueueSignalOrder(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Advance(Time(i + 1)) // deterministic arrival order
			q.Wait(p, "test")
			order = append(order, i)
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		p.Advance(100)
		for q.Signal(p.e) {
			p.Advance(1)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order = %v, want FIFO [0 1 2]", order)
	}
}

func TestWaitQueueBroadcast(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	released := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			q.Wait(p, "test")
			released++
		})
	}
	e.Spawn("b", func(p *Proc) {
		p.Advance(10)
		q.Broadcast(p.e)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 5 {
		t.Fatalf("released = %d, want 5", released)
	}
}

func TestCompletionReleasesWaitersAndLateWaiters(t *testing.T) {
	e := NewEngine(1)
	var c Completion
	var earlyAt, lateAt Time
	e.Spawn("early", func(p *Proc) {
		c.Wait(p, "early")
		earlyAt = p.Now()
	})
	e.Spawn("completer", func(p *Proc) {
		p.Advance(100)
		c.Complete(p.e)
	})
	e.Spawn("late", func(p *Proc) {
		p.Advance(200)
		c.Wait(p, "late") // already done: returns immediately
		lateAt = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if earlyAt != 100 {
		t.Errorf("early waiter released at %v, want 100", earlyAt)
	}
	if lateAt != 200 {
		t.Errorf("late waiter released at %v, want 200", lateAt)
	}
	if !c.Done() || c.DoneAt() != 100 {
		t.Errorf("Done=%v DoneAt=%v", c.Done(), c.DoneAt())
	}
}

func TestCompletionDoubleCompletePanics(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		var c Completion
		c.Complete(p.e)
		defer func() {
			if recover() == nil {
				t.Error("double Complete did not panic")
			}
		}()
		c.Complete(p.e)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	e.Spawn("stuck", func(p *Proc) {
		q.Wait(p, "never signalled")
	})
	_, err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 {
		t.Fatalf("blocked = %v, want one entry", dl.Blocked)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine(1)
	childRan := false
	e.Spawn("parent", func(p *Proc) {
		p.Advance(50)
		p.Spawn("child", func(c *Proc) {
			if c.Now() != 50 {
				t.Errorf("child started at %v, want 50", c.Now())
			}
			c.Advance(25)
			childRan = true
		})
		p.Advance(100)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !childRan || end != 150 {
		t.Fatalf("childRan=%v end=%v", childRan, end)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(100)
			ticks = append(ticks, p.Now())
		}
	})
	now, err := e.RunUntil(350)
	if err != nil {
		t.Fatal(err)
	}
	if now != 350 || len(ticks) != 3 {
		t.Fatalf("now=%v ticks=%v", now, ticks)
	}
	// Continue to the end.
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 10 {
		t.Fatalf("after full run ticks=%d, want 10", len(ticks))
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bomb", func(p *Proc) {
		p.Advance(10)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("proc panic did not propagate out of Run")
		}
	}()
	e.Run() //nolint:errcheck // panics before returning
}

func TestPerProcRandIsDeterministicAndDistinct(t *testing.T) {
	draw := func(seed int64) [2]float64 {
		e := NewEngine(seed)
		var out [2]float64
		e.Spawn("a", func(p *Proc) { out[0] = p.Rand().Float64() })
		e.Spawn("b", func(p *Proc) { out[1] = p.Rand().Float64() })
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	x, y := draw(42), draw(42)
	if x != y {
		t.Fatalf("same seed differs: %v vs %v", x, y)
	}
	if x[0] == x[1] {
		t.Fatalf("distinct procs drew identical values: %v", x)
	}
	z := draw(43)
	if z == x {
		t.Fatalf("different seeds produced identical draws")
	}
}

func TestEventsCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Events() != 5 {
		t.Fatalf("Events = %d, want 5", e.Events())
	}
}

// Property: for any set of non-negative delays, a proc advancing through
// them ends at their sum.
func TestAdvanceSumProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine(1)
		var want Time
		for _, r := range raw {
			want += Time(r)
		}
		var end Time
		e.Spawn("p", func(p *Proc) {
			for _, r := range raw {
				p.Advance(Time(r))
			}
			end = p.Now()
		})
		if _, err := e.Run(); err != nil {
			return false
		}
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: events scheduled at arbitrary times fire in nondecreasing
// time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine(1)
		var fired []Time
		for _, r := range raw {
			d := Time(r)
			e.At(d, func() { fired = append(fired, d) })
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.001, 1.5, 12.25} {
		got := FromSeconds(s).Seconds()
		if diff := got - s; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Max/Min broken")
	}
}
