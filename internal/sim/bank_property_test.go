package sim

import (
	"math/rand"
	"testing"
)

// This file checks Bank against a brute-force timeline reference: the
// reference keeps, per stripe, the plain sorted list of booked intervals
// (no gap lists, no service clocks, no fault integrator state) and
// recomputes feasibility by linear scan. Random multi-job reservation
// programs — interleaved Reserve calls and IOBegin/IOEnd demand signals
// under all five policies, with or without stripe outage/derate windows
// installed — must satisfy, after every call:
//
//   - no grant starts before its request instant, and every grant's
//     occupancy equals the reference's fault integration of the
//     requested length on the granted stripe (exactly the requested
//     length on a healthy stripe);
//   - grants on one stripe never overlap (the reference re-scans the
//     stripe's whole history);
//   - Busy and JobBusy equal the reference's per-bank and per-job sums;
//   - the internal gap lists are sorted, non-overlapping, wholly at or
//     after the latest reservation instant, and lie entirely inside the
//     stripe's free space;
//   - FCFS grants equal the reference's least-loaded frontier placement
//     with the earliest fault-integrated completion (ties earlier start,
//     then lowest stripe), which degenerates to the classic least-loaded
//     frontier rule on a healthy bank;
//   - the work-conserving invariant: a job reserving while no other job
//     has signalled demand completes at the earliest instant the
//     timeline allows — the bank never holds a stripe idle against the
//     only queued demand, and never parks a booking on a faulted stripe
//     when a healthy one would finish it sooner. (Under contention the
//     WC policies pace deliberately, so the bound applies exactly when
//     the demand set says no one else is waiting.)

// refTimeline is the brute-force reference: per-stripe booked intervals
// in grant order, per-stripe fault windows, plus per-job totals.
type refTimeline struct {
	stripes  [][]gap // reusing gap as a plain interval
	faults   [][]StripeFault
	jobBusy  []Time
	bankBusy Time
}

func newRefTimeline(stripes, jobs int) *refTimeline {
	return &refTimeline{
		stripes: make([][]gap, stripes),
		faults:  make([][]StripeFault, stripes),
		jobBusy: make([]Time, jobs),
	}
}

// finish integrates a booking of dur starting at st through stripe i's
// fault windows: full rate outside windows, Rate inside, no progress
// during an outage. It re-derives the walk independently of stripeFinish
// (same truncation points, so healthy and power-of-two rates agree
// exactly).
func (r *refTimeline) finish(i int, st, dur Time) Time {
	t := st
	work := dur
	for _, f := range r.faults[i] {
		if f.End <= t || work <= 0 {
			continue
		}
		if f.Start > t {
			free := f.Start - t
			if work <= free {
				return t + work
			}
			t = f.Start
			work -= free
		}
		if f.Rate > 0 {
			capacity := Time(float64(f.End-t) * f.Rate)
			if work <= capacity {
				return t + Time(float64(work)/f.Rate)
			}
			work -= capacity
		}
		t = f.End
	}
	return t + work
}

// earliestFit reports the earliest s >= at such that the fault-integrated
// booking [s, finish(i, s, dur)) does not overlap any booked interval on
// stripe i, by linear scan over the stripe's whole history. Integration
// is monotone in s, so jumping past an overlapped interval converges on
// the earliest feasible start.
func (r *refTimeline) earliestFit(i int, at, dur Time) Time {
	s := at
	for changed := true; changed; {
		changed = false
		en := r.finish(i, s, dur)
		for _, iv := range r.stripes[i] {
			if s < iv.end && iv.start < en { // overlap: jump past it
				s = iv.end
				changed = true
				break
			}
		}
	}
	return s
}

// bestCompletion is the bank-wide earliest fault-integrated completion:
// the minimum over stripes of finish at that stripe's earliest fit. On a
// healthy bank it is earliest-feasible-start plus dur.
func (r *refTimeline) bestCompletion(at, dur Time) Time {
	best := r.finish(0, r.earliestFit(0, at, dur), dur)
	for i := 1; i < len(r.stripes); i++ {
		if en := r.finish(i, r.earliestFit(i, at, dur), dur); en < best {
			best = en
		}
	}
	return best
}

// frontier reports the stripe's latest booked end (the FCFS frontier).
func (r *refTimeline) frontier(i int) Time {
	var f Time
	for _, iv := range r.stripes[i] {
		if iv.end > f {
			f = iv.end
		}
	}
	return f
}

// fcfsGrant is the least-loaded frontier placement the FCFS/single-job
// path uses: per stripe the candidate starts at max(at, frontier), and
// the earliest fault-integrated completion wins (ties earlier start,
// then lowest index). On a healthy bank completion order equals start
// order and this is Striped.Reserve's historical rule exactly.
func (r *refTimeline) fcfsGrant(at, dur Time) (start, end Time) {
	start = Max(at, r.frontier(0))
	end = r.finish(0, start, dur)
	for i := 1; i < len(r.stripes); i++ {
		st := Max(at, r.frontier(i))
		if en := r.finish(i, st, dur); en < end || (en == end && st < start) {
			start, end = st, en
		}
	}
	return start, end
}

// record books the grant on stripe i after asserting it overlaps nothing
// already there.
func (r *refTimeline) record(t *testing.T, op int, job, i int, start, end Time) {
	t.Helper()
	for _, iv := range r.stripes[i] {
		if start < iv.end && iv.start < end {
			t.Fatalf("op %d: grant [%v,%v) overlaps [%v,%v) on stripe %d", op, start, end, iv.start, iv.end, i)
		}
	}
	r.stripes[i] = append(r.stripes[i], gap{start, end})
	r.jobBusy[job] += end - start
	r.bankBusy += end - start
}

// checkGapLists asserts the bank's internal gap lists are sorted,
// non-overlapping, never in the past relative to at, and inside free
// space.
func checkGapLists(t *testing.T, op int, b *Bank, ref *refTimeline, at Time) {
	t.Helper()
	for i := range b.glinks {
		gaps := b.glinks[i].gaps
		for j, g := range gaps {
			if g.start >= g.end {
				t.Fatalf("op %d stripe %d: empty/inverted gap %v", op, i, g)
			}
			if g.start < at {
				t.Fatalf("op %d stripe %d: gap %v starts before the reservation instant %v", op, i, g, at)
			}
			if j > 0 && gaps[j-1].end > g.start {
				t.Fatalf("op %d stripe %d: gaps %v and %v out of order or overlapping", op, i, gaps[j-1], g)
			}
			for _, iv := range ref.stripes[i] {
				if g.start < iv.end && iv.start < g.end {
					t.Fatalf("op %d stripe %d: gap %v overlaps booked [%v,%v)", op, i, g, iv.start, iv.end)
				}
			}
		}
	}
}

// runBankProgram drives one random program against the reference. With
// faulted set, each stripe gets a random set of outage (Rate 0) and
// derate (Rate 0.5 / 0.25, exact in binary so reference and bank
// arithmetic agree bit for bit) windows installed before the first
// reservation.
func runBankProgram(t *testing.T, policy BankPolicy, stripes, jobs int, seed int64, ops int, faulted bool) {
	t.Helper()
	b := NewBank(stripes, jobs, policy)
	for j := 0; j < jobs; j++ {
		b.SetWeight(j, float64(1+(j*j)%7))
	}
	ref := newRefTimeline(stripes, jobs)
	demand := make([]int, jobs)
	rng := rand.New(rand.NewSource(seed))
	if faulted {
		rates := []float64{0, 0, 0.5, 0.25}
		for i := 0; i < stripes; i++ {
			var fs []StripeFault
			var cursor Time
			for k, n := 0, rng.Intn(4); k < n; k++ {
				cursor += Time(rng.Intn(4000))
				d := Time(rng.Intn(1200) + 50)
				fs = append(fs, StripeFault{Start: cursor, End: cursor + d, Rate: rates[rng.Intn(len(rates))]})
				cursor += d
			}
			if len(fs) > 0 {
				b.SetStripeFaults(i, fs)
				ref.faults[i] = fs
			}
		}
	}
	var at Time
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 2: // demand signal up
			j := rng.Intn(jobs)
			b.IOBegin(j, at)
			demand[j]++
		case k < 4: // demand signal down, when one is open
			j := rng.Intn(jobs)
			if demand[j] > 0 {
				b.IOEnd(j, at)
				demand[j]--
			}
		default:
			at += Time(rng.Intn(400))
			dur := Time(rng.Intn(900) + 1)
			job := rng.Intn(jobs)
			soleDemander := true
			for j := 0; j < jobs; j++ {
				if j != job && demand[j] > 0 {
					soleDemander = false
				}
			}
			wantWCEnd := ref.bestCompletion(at, dur)
			wantFCFSStart, wantFCFSEnd := ref.fcfsGrant(at, dur)
			start, end := b.Reserve(job, at, dur)
			if start < at {
				t.Fatalf("op %d: grant starts at %v before request instant %v", op, start, at)
			}
			if b.lastStripe < 0 || b.lastStripe >= stripes {
				t.Fatalf("op %d: lastStripe %d outside bank width %d", op, b.lastStripe, stripes)
			}
			if want := ref.finish(b.lastStripe, start, dur); end != want {
				t.Fatalf("op %d: grant [%v,%v) on stripe %d, reference integrates %v of work there to %v",
					op, start, end, b.lastStripe, dur, want)
			}
			if (policy == BankFCFS || jobs == 1) && (start != wantFCFSStart || end != wantFCFSEnd) {
				t.Fatalf("op %d: FCFS grant [%v,%v), reference least-loaded frontier [%v,%v)",
					op, start, end, wantFCFSStart, wantFCFSEnd)
			}
			if policy.workConserving() && jobs > 1 && soleDemander && end != wantWCEnd {
				t.Fatalf("op %d: sole demanding job %d granted [%v,%v), but the timeline could finish its %v request by %v — stripe left idle against queued demand",
					op, job, start, end, dur, wantWCEnd)
			}
			ref.record(t, op, job, b.lastStripe, start, end)
			checkGapLists(t, op, b, ref, at)
		}
	}
	if b.Busy() != ref.bankBusy {
		t.Fatalf("Busy %v != reference %v", b.Busy(), ref.bankBusy)
	}
	var sum Time
	for j := 0; j < jobs; j++ {
		if b.JobBusy(j) != ref.jobBusy[j] {
			t.Fatalf("JobBusy(%d) %v != reference %v", j, b.JobBusy(j), ref.jobBusy[j])
		}
		sum += b.JobBusy(j)
	}
	if sum != b.Busy() {
		t.Fatalf("sum of JobBusy %v != Busy %v", sum, b.Busy())
	}
}

var allBankPolicies = []BankPolicy{BankFCFS, BankFair, BankWeighted, BankFairWC, BankWeightedWC}

// TestBankPropertyVsBruteForce sweeps random reservation programs over
// every policy and several bank shapes, healthy and fault-ridden.
func TestBankPropertyVsBruteForce(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		for _, policy := range allBankPolicies {
			for _, shape := range []struct{ stripes, jobs int }{{1, 1}, {1, 2}, {1, 3}, {3, 3}, {4, 2}, {2, 5}} {
				for seed := int64(0); seed < 6; seed++ {
					runBankProgram(t, policy, shape.stripes, shape.jobs, seed*31+int64(policy), 400, faulted)
				}
			}
		}
	}
}

// FuzzBank feeds fuzzer-chosen program shapes through the same checks.
func FuzzBank(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(2), uint8(3), false)
	f.Add(int64(42), uint8(4), uint8(4), uint8(5), true)
	f.Add(int64(-7), uint8(0), uint8(1), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed int64, policy, stripes, jobs uint8, faulted bool) {
		p := allBankPolicies[int(policy)%len(allBankPolicies)]
		s := int(stripes)%5 + 1
		j := int(jobs)%5 + 1
		runBankProgram(t, p, s, j, seed, 300, faulted)
	})
}
