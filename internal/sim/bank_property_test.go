package sim

import (
	"math/rand"
	"testing"
)

// This file checks Bank against a brute-force timeline reference: the
// reference keeps, per stripe, the plain sorted list of booked intervals
// (no gap lists, no service clocks) and recomputes feasibility by linear
// scan. Random multi-job reservation programs — interleaved Reserve
// calls and IOBegin/IOEnd demand signals under all five policies — must
// satisfy, after every call:
//
//   - no grant starts before its request instant, and every grant is
//     exactly the requested length;
//   - grants on one stripe never overlap (the reference re-scans the
//     stripe's whole history);
//   - Busy and JobBusy equal the reference's per-bank and per-job sums;
//   - the internal gap lists are sorted, non-overlapping, wholly at or
//     after the latest reservation instant, and lie entirely inside the
//     stripe's free space;
//   - FCFS grants equal the reference's least-loaded frontier placement;
//   - the work-conserving invariant: a job reserving while no other job
//     has signalled demand receives the earliest feasible start the
//     timeline allows — the bank never holds a stripe idle against the
//     only queued demand. (Under contention the WC policies pace
//     deliberately, so the bound applies exactly when the demand set
//     says no one else is waiting.)

// refTimeline is the brute-force reference: per-stripe booked intervals
// in grant order plus per-job totals.
type refTimeline struct {
	stripes  [][]gap // reusing gap as a plain interval
	jobBusy  []Time
	bankBusy Time
}

func newRefTimeline(stripes, jobs int) *refTimeline {
	return &refTimeline{stripes: make([][]gap, stripes), jobBusy: make([]Time, jobs)}
}

// earliestFit reports the earliest s >= at such that [s, s+dur) does not
// overlap any booked interval on stripe i, by linear scan over the
// stripe's whole history.
func (r *refTimeline) earliestFit(i int, at, dur Time) Time {
	s := at
	for changed := true; changed; {
		changed = false
		for _, iv := range r.stripes[i] {
			if s < iv.end && iv.start < s+dur { // overlap: jump past it
				s = iv.end
				changed = true
			}
		}
	}
	return s
}

// earliestFeasible is the bank-wide earliest fit: the minimum over
// stripes of earliestFit.
func (r *refTimeline) earliestFeasible(at, dur Time) Time {
	best := r.earliestFit(0, at, dur)
	for i := 1; i < len(r.stripes); i++ {
		if s := r.earliestFit(i, at, dur); s < best {
			best = s
		}
	}
	return best
}

// frontier reports the stripe's latest booked end (the FCFS frontier).
func (r *refTimeline) frontier(i int) Time {
	var f Time
	for _, iv := range r.stripes[i] {
		if iv.end > f {
			f = iv.end
		}
	}
	return f
}

// fcfsStart is the least-loaded frontier placement Striped.Reserve uses:
// the earliest max(at, frontier) over stripes, ties to the lowest index.
func (r *refTimeline) fcfsStart(at Time) Time {
	best := Max(at, r.frontier(0))
	for i := 1; i < len(r.stripes); i++ {
		if s := Max(at, r.frontier(i)); s < best {
			best = s
		}
	}
	return best
}

// record books the grant on stripe i after asserting it overlaps nothing
// already there.
func (r *refTimeline) record(t *testing.T, op int, job, i int, start, end Time) {
	t.Helper()
	for _, iv := range r.stripes[i] {
		if start < iv.end && iv.start < end {
			t.Fatalf("op %d: grant [%v,%v) overlaps [%v,%v) on stripe %d", op, start, end, iv.start, iv.end, i)
		}
	}
	r.stripes[i] = append(r.stripes[i], gap{start, end})
	r.jobBusy[job] += end - start
	r.bankBusy += end - start
}

// checkGapLists asserts the bank's internal gap lists are sorted,
// non-overlapping, never in the past relative to at, and inside free
// space.
func checkGapLists(t *testing.T, op int, b *Bank, ref *refTimeline, at Time) {
	t.Helper()
	for i := range b.glinks {
		gaps := b.glinks[i].gaps
		for j, g := range gaps {
			if g.start >= g.end {
				t.Fatalf("op %d stripe %d: empty/inverted gap %v", op, i, g)
			}
			if g.start < at {
				t.Fatalf("op %d stripe %d: gap %v starts before the reservation instant %v", op, i, g, at)
			}
			if j > 0 && gaps[j-1].end > g.start {
				t.Fatalf("op %d stripe %d: gaps %v and %v out of order or overlapping", op, i, gaps[j-1], g)
			}
			for _, iv := range ref.stripes[i] {
				if g.start < iv.end && iv.start < g.end {
					t.Fatalf("op %d stripe %d: gap %v overlaps booked [%v,%v)", op, i, g, iv.start, iv.end)
				}
			}
		}
	}
}

// runBankProgram drives one random program against the reference.
func runBankProgram(t *testing.T, policy BankPolicy, stripes, jobs int, seed int64, ops int) {
	t.Helper()
	b := NewBank(stripes, jobs, policy)
	for j := 0; j < jobs; j++ {
		b.SetWeight(j, float64(1+(j*j)%7))
	}
	ref := newRefTimeline(stripes, jobs)
	demand := make([]int, jobs)
	rng := rand.New(rand.NewSource(seed))
	var at Time
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 2: // demand signal up
			j := rng.Intn(jobs)
			b.IOBegin(j, at)
			demand[j]++
		case k < 4: // demand signal down, when one is open
			j := rng.Intn(jobs)
			if demand[j] > 0 {
				b.IOEnd(j, at)
				demand[j]--
			}
		default:
			at += Time(rng.Intn(400))
			dur := Time(rng.Intn(900) + 1)
			job := rng.Intn(jobs)
			soleDemander := true
			for j := 0; j < jobs; j++ {
				if j != job && demand[j] > 0 {
					soleDemander = false
				}
			}
			wantWC := ref.earliestFeasible(at, dur)
			wantFCFS := ref.fcfsStart(at)
			start, end := b.Reserve(job, at, dur)
			if start < at {
				t.Fatalf("op %d: grant starts at %v before request instant %v", op, start, at)
			}
			if end-start != dur {
				t.Fatalf("op %d: grant [%v,%v) is not %v long", op, start, end, dur)
			}
			if b.lastStripe < 0 || b.lastStripe >= stripes {
				t.Fatalf("op %d: lastStripe %d outside bank width %d", op, b.lastStripe, stripes)
			}
			if (policy == BankFCFS || jobs == 1) && start != wantFCFS {
				t.Fatalf("op %d: FCFS grant at %v, reference least-loaded frontier %v", op, start, wantFCFS)
			}
			if policy.workConserving() && jobs > 1 && soleDemander && start != wantWC {
				t.Fatalf("op %d: sole demanding job %d granted %v, but the timeline could fit its %v request at %v — stripe left idle against queued demand",
					op, job, start, dur, wantWC)
			}
			ref.record(t, op, job, b.lastStripe, start, end)
			checkGapLists(t, op, b, ref, at)
		}
	}
	if b.Busy() != ref.bankBusy {
		t.Fatalf("Busy %v != reference %v", b.Busy(), ref.bankBusy)
	}
	var sum Time
	for j := 0; j < jobs; j++ {
		if b.JobBusy(j) != ref.jobBusy[j] {
			t.Fatalf("JobBusy(%d) %v != reference %v", j, b.JobBusy(j), ref.jobBusy[j])
		}
		sum += b.JobBusy(j)
	}
	if sum != b.Busy() {
		t.Fatalf("sum of JobBusy %v != Busy %v", sum, b.Busy())
	}
}

var allBankPolicies = []BankPolicy{BankFCFS, BankFair, BankWeighted, BankFairWC, BankWeightedWC}

// TestBankPropertyVsBruteForce sweeps random reservation programs over
// every policy and several bank shapes.
func TestBankPropertyVsBruteForce(t *testing.T) {
	for _, policy := range allBankPolicies {
		for _, shape := range []struct{ stripes, jobs int }{{1, 1}, {1, 2}, {1, 3}, {3, 3}, {4, 2}, {2, 5}} {
			for seed := int64(0); seed < 6; seed++ {
				runBankProgram(t, policy, shape.stripes, shape.jobs, seed*31+int64(policy), 400)
			}
		}
	}
}

// FuzzBank feeds fuzzer-chosen program shapes through the same checks.
func FuzzBank(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(2), uint8(3))
	f.Add(int64(42), uint8(4), uint8(4), uint8(5))
	f.Add(int64(-7), uint8(0), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, policy, stripes, jobs uint8) {
		p := allBankPolicies[int(policy)%len(allBankPolicies)]
		s := int(stripes)%5 + 1
		j := int(jobs)%5 + 1
		runBankProgram(t, p, s, j, seed, 300)
	})
}
