// Package sim implements a deterministic, process-oriented discrete-event
// simulator. It is the substrate on which the MPI-like runtime
// (internal/mpi) and everything above it run.
//
// Simulated processes are goroutines that execute one at a time under the
// control of a single event loop, so simulations are fully deterministic:
// the same seed and configuration always produce the same virtual-time
// trajectory, regardless of host scheduling.
//
// # Fast-path invariants
//
// Three fast paths keep the hot loop cheap without changing any
// trajectory (see Engine for details):
//
//   - Direct handoff: control passes straight between process goroutines;
//     there is no event-loop goroutine in the middle. Exactly one
//     goroutine — the token holder — touches engine state at a time.
//   - Same-timestamp ring: events scheduled at the current instant bypass
//     the heap when no heap entry shares that instant, preserving seq
//     (scheduling) order. Invariant: while the ring is non-empty, every
//     heap entry is strictly later than now.
//   - Inline advance: a process may move the clock directly only when
//     nothing else (ring or heap) is scheduled at or before the target
//     and the target does not exceed the run limit, i.e. exactly when the
//     loop's next pop would be that process's own resume.
//
// Equal-time events always fire in scheduling (seq) order, whichever path
// they take; all three fast paths preserve that order, which is what
// keeps optimized runs bit-identical to the naive loop.
//
// # Process representations
//
// Simulated processes come in two interchangeable representations:
// goroutine-backed processes (Proc), whose bodies block naturally, and
// step-function fibers (Fiber), explicit continuation state machines that
// the dispatcher resumes with a plain function call — roughly two orders
// of magnitude cheaper than a goroutine handoff on cross-process
// dispatch. Both schedule resume events through the same heap and ring
// and share the (t, seq) contract, so a faithfully ported body produces
// the same trajectory under either representation.
//
// # Multi-world runs
//
// Several worlds (jobs) may share one engine (mpi.Config.Engine, driven
// by internal/cluster): every world's events schedule through the same
// heap and ring, so one (t, seq) stream orders the whole co-scheduled
// simulation. Cross-world event identity follows from that stream plus
// engine-global process identifiers — Spawn and SpawnFiber number
// processes in spawn order across all worlds, so job start order fixes
// both the identifier space and every derived random stream. Deadlock
// reports name blocked processes with their world prefix ("job0/rank3",
// from mpi.Config.Name), so a report from a 4-job cluster attributes
// each stuck rank to its job.
//
// What counts as a trajectory for a cluster run: the tuple
// (TrajectoryVersion, engine seed, the ordered job list — each job's
// full configuration, representation aside — and the shared bank's
// policy, weights and width) produces exactly one (t, seq) sequence and
// therefore one set of per-job completion times. As for single worlds,
// the process representation (goroutine or fiber), worker counts, and
// world/engine pooling are never part of the trajectory. Bank
// arbitration arithmetic (Bank.Reserve's pacing and placement) is part
// of it: changing that arithmetic is trajectory-breaking for multi-world
// runs and follows the versioning policy below, while single-world runs
// only ever exercise the FCFS path, which is frozen byte-identical to
// the pre-bank Striped behavior.
//
// Demand signalling (Bank.IOBegin/IOEnd, fed by the mpi file-I/O paths)
// is pure bookkeeping: the hooks schedule no events and move no clocks,
// so firing them changes no trajectory, and the signal sequence itself
// is fixed by the (t, seq) order of the file operations that emit it.
// Only the work-conserving policies (BankFairWC, BankWeightedWC) read
// the signal when granting; they are new configurations, not changed
// ones. Their introduction therefore did NOT bump TrajectoryVersion
// (still 2): fcfs/fair/priority multi-world trajectories are
// byte-identical to the pre-signalling build, which
// internal/experiments pins against recorded PR 4 values.
//
// # Fault determinism
//
// Fault injection (FaultWindow compute slowdowns, Bank stripe outage and
// derate windows, and the link degradation windows in internal/netmodel)
// is part of the configuration, not the trajectory machinery: a fault
// campaign is compiled ahead of the run into per-target window lists
// whose every draw derives from (campaign seed, event id) via Mix64, so
// a campaign is a pure function of its plan. During the run, faulted
// cost arithmetic is window-list integration (StretchThrough,
// Bank.slotEnd) with no random draws and no scheduled events of its own
// — the faulted run is exactly as deterministic as a clean one, across
// both process representations and across pool-reused engines and
// banks. With no faults installed, every fault-aware code path reduces
// to the historical arithmetic, so fault-free trajectories are
// byte-identical to pre-fault builds and the feature did NOT bump
// TrajectoryVersion (still 2). Changing the integration arithmetic or
// the faulted placement rules IS trajectory-breaking for runs with
// faults scheduled and follows the versioning policy below.
//
// # Failure and recovery determinism
//
// Crash-stop failure extends the fault contract from degradation to
// death and rebirth. A crash campaign (CrashEvent lists, compiled by
// internal/faults like every other family) is part of the
// configuration: the consuming layer schedules one ordinary engine
// event per crash at its At instant, whose callback calls Engine.Kill
// on the victim and schedules the restart event at At+Restart. Kill
// itself fires no events — a fiber is marked done in place, and a
// goroutine unwinds through the Abort stopSignal machinery before Kill
// returns (or, when the victim is the process currently being
// dispatched, at its next yield) — so the kill occupies exactly the
// (t, seq) position of the crash callback in both representations.
// Stale resume events left behind by the victim are popped and counted
// as fired, identically for procs and fibers. The restart respawns the
// body via Spawn/SpawnFiber, drawing the next shared process id; since
// both representations share one id counter and consume events
// identically up to the crash, the respawned process has the same id,
// stream, and resume positions under either representation.
//
// With no crashes scheduled, none of the failure paths runs — the
// guards are eventless boolean checks — so crash-free trajectories are
// byte-identical to pre-crash builds and the feature did NOT bump
// TrajectoryVersion (still 2). A fixed crash campaign replays
// bit-for-bit across representations, repeated runs, and pooled-engine
// reuse; changing kill/restart event placement, the peer-notification
// order in the mpi layer, or respawn id assignment IS
// trajectory-breaking for runs with crashes scheduled and follows the
// versioning policy below.
//
// # Lossy delivery determinism
//
// The message-fault family extends the contract from degraded links to
// lost and duplicated messages. A lossy campaign (a netmodel.MsgFaults
// verdict table, compiled by internal/faults like every other family)
// is part of the configuration: the consuming layer (internal/mpi's
// reliable-delivery protocol) asks the table for a verdict on each
// transmission and schedules acks, retransmission timers, and
// duplicate deliveries as ordinary engine events. Verdicts are pure
// hashes of (seed, src, dst, seq, attempt) — no generator state, no
// draw order — so the fate of any one transmission is independent of
// every other message in flight and a single (pair, seq) can be
// replayed in isolation.
//
// With no table armed, none of the protocol runs — the guards are
// eventless boolean checks, no sequence numbers are assigned and no
// timers exist — so zero-loss trajectories are byte-identical to
// pre-protocol builds and the feature did NOT bump TrajectoryVersion
// (still 2). A fixed lossy campaign replays bit-for-bit across
// representations, repeated runs, and pooled-engine reuse, with the
// acks and timers part of the schedule like any other event; changing
// the verdict hash derivation, ack event placement, the timeout and
// backoff arithmetic, or the receiver's in-order release rule IS
// trajectory-breaking for runs with a table armed and follows the
// versioning policy below.
//
// # Parallel mode
//
// The conservative parallel mode (ShardGroup) runs several engines as
// one simulation: simulated state is partitioned across shard engines
// (internal/mpi places each rank, with its matcher and pools, on one
// shard), and the group alternates windows of independent shard
// execution with barriers that merge cross-shard event deliveries. The
// window bound is classic conservative lookahead: with L a lower bound
// on the virtual-time latency of every cross-shard interaction (the
// netmodel's minimum link latency, derated by any latency-stretching
// fault windows), events strictly before G+L are safe to execute once
// every event before G has been merged, where G is the global minimum
// pending event time.
//
// Worker-count invariance — byte-identical trajectories for every shard
// count and every placement of ranks onto shards — comes from one
// extension of the heap key: events order by (t, pri, seq), where pri is
// zero for every ordinary event and, for cross-rank deliveries in a
// sharded run, encodes the sending rank and its per-rank send counter.
// Same-instant delivery order at a rank is then a pure function of who
// sent what, never of which shard hosted the sender or which shard's
// window ran first; ordinary same-instant events keep pure seq order
// because their relative creation order within a shard is itself
// placement-independent (ranks are spawned with their world rank as id
// via SpawnID, so random streams and resume identities never depend on
// the partition). Every cross-rank delivery carries a pri in a sharded
// run — including deliveries between ranks that happen to share a shard
// — because placement must not decide which ordering rule applies.
//
// Classic (unsharded) runs schedule nothing with a non-zero pri, so
// their (t, seq) trajectories are byte-identical to pre-parallel builds
// and the feature did NOT bump TrajectoryVersion (still 2). The sharded
// configuration is a new configuration — like a different wake strategy,
// its rows are pinned against each other across worker counts (the
// cross-worker-count tests in internal/experiments), not against the
// classic rows. Changing the pri encoding, the lookahead arithmetic, or
// the barrier merge order IS trajectory-breaking for sharded runs and
// follows the versioning policy below.
//
// # Sharded bank reservations
//
// A Bank shared by several shards (co-scheduled jobs spread across a
// group) extends the same contract to resource arbitration. The bank is
// attached to the group with one owner shard (Bank.AttachGroup), and
// every reservation and demand-signal edge becomes a window-boundary
// event instead of a synchronous call: PostReserve sends the request to
// the owner one lookahead out, the owner books via Reserve at its own
// (monotone) clock and sends the grant back another lookahead out, and
// PostIOBegin/PostIOEnd carry the demand edges the work-conserving
// policies read. Each of these events carries the requesting rank's
// delivery priority — the same (t, pri, seq) sender-program-order
// tie-break as cross-rank message deliveries — so the order in which the
// owner grants (and therefore every pacing decision, gap placement and
// demand split) is a pure function of who asked when, never of which
// shard hosted the asker or which shard's window ran first. At one
// worker the posts degenerate to same-engine pri events with identical
// times and keys, so sharded-bank rows are byte-identical for every
// worker count >= 1.
//
// The sharded bank is its own trajectory family, like the parallel mode
// it rides on: classic runs never attach a bank to a group, reserve
// synchronously with pri-0 trajectories byte-identical to pre-sharding
// builds, and TrajectoryVersion stays 2. A sharded reservation costs two
// lookaheads of virtual latency that the classic path does not pay, so
// sharded-bank rows are pinned against each other across worker counts,
// never against classic rows. Changing the request/grant event placement,
// the priorities they carry, or the owner-clock booking rule IS
// trajectory-breaking for sharded-bank runs and follows the versioning
// policy below.
//
// # Determinism versioning
//
// The simulator's determinism contract is: one (code version, seed,
// configuration) triple produces exactly one virtual-time trajectory —
// the sequence of (t, seq) event firings — and therefore bit-identical
// experiment output. TrajectoryVersion names the code-version component.
//
// A change is TRAJECTORY-BREAKING, and must bump TrajectoryVersion, when
// it alters the (t, seq) sequence any existing program fires: examples
// are reordering the operations a primitive performs (posting a receive
// before instead of after a send), changing wake granularity (moving
// WaitAny from the rank-wide progress queue to per-request waiters
// changed same-instant wake ordering and was the version 1 -> 2 bump),
// changing a collective algorithm, changing how random streams derive
// from seeds, or changing cost arithmetic. A change is NOT breaking when
// it preserves event order exactly: taking a different dispatch path for
// the same events (inline advance, ring versus heap, fiber versus
// goroutine), pooling or reusing memory, or pure API additions.
//
// A bump is recorded by (1) incrementing TrajectoryVersion with a comment
// naming what changed and why, (2) regenerating the checked-in trajectory
// artifacts (BENCH_PR*.json and any golden figure output) in the same
// change, and (3) noting the bump in ROADMAP.md so sweep results from
// different versions are never compared as if equal. Cross-representation
// equivalence is enforced separately by the differential tests in
// internal/experiments, which must pass unconditionally — representation
// is never an excuse for a version bump.
package sim

import "fmt"

// TrajectoryVersion identifies the simulator's trajectory-determinism
// generation: all runs with equal (TrajectoryVersion, seed, config)
// produce bit-identical virtual-time trajectories. Bump it only for
// changes that alter event (t, seq) order for existing programs — see
// the package comment's determinism-versioning policy.
//
// Version 1: the seed trajectory contract (PR 1 event order; PR 2's
// fiber representation reproduces it exactly and did not bump).
//
// Version 2: direct-wake request completion. WaitAny and WaitColl (both
// representations) moved from parking on the rank-wide progress queue to
// per-request/per-collective waiter registration (sim.Waker): a completing
// message resumes exactly the blocked process waiting on that request, at
// the completion instant, with no broadcast event and no re-scan of the
// rank's other waiters. Same-instant wake ordering changed — a waiter is
// now woken by one directly-scheduled resume event instead of riding a
// broadcast chain, so the (t, seq) positions of consumer resumes (and
// everything downstream of them, e.g. shared-file token FIFO order in the
// Fig. 8 stream workloads) moved. The version-1 behavior is retained
// behind mpi's REPRO_WAKE=broadcast switch for same-run A/B measurement
// only.
const TrajectoryVersion = 2

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. Durations are also expressed as Time values.
type Time int64

// Convenient duration units in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime is the largest representable virtual time.
const MaxTime Time = 1<<63 - 1

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
