// Package sim implements a deterministic, process-oriented discrete-event
// simulator. It is the substrate on which the MPI-like runtime
// (internal/mpi) and everything above it run.
//
// Simulated processes are goroutines that execute one at a time under the
// control of a single event loop, so simulations are fully deterministic:
// the same seed and configuration always produce the same virtual-time
// trajectory, regardless of host scheduling.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. Durations are also expressed as Time values.
type Time int64

// Convenient duration units in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime is the largest representable virtual time.
const MaxTime Time = 1<<63 - 1

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
