package sim

// Link models a serial transmission resource (for example, a NIC or a
// file-system stripe) as a timeline reservation: callers reserve
// contiguous slots and the link hands out the earliest available start
// time. Reservations do not block the caller; they are pure bookkeeping
// that the communication layer converts into event times.
type Link struct {
	nextFree Time
	busy     Time // accumulated reserved time, for utilization reporting
}

// Reserve books dur of exclusive link time no earlier than at, returning
// the start and end of the granted slot.
func (l *Link) Reserve(at, dur Time) (start, end Time) {
	start = Max(at, l.nextFree)
	end = start + dur
	l.nextFree = end
	l.busy += dur
	return start, end
}

// NextFree reports when the link next becomes idle.
func (l *Link) NextFree() Time { return l.nextFree }

// Busy reports the total reserved time on this link.
func (l *Link) Busy() Time { return l.busy }

// Striped is a bank of identical serial links with least-loaded placement,
// modelling a striped resource such as a parallel file system with
// multiple storage targets.
type Striped struct {
	links []Link
}

// NewStriped creates a bank of n links. n must be positive.
func NewStriped(n int) *Striped {
	if n <= 0 {
		panic("sim: Striped needs at least one link")
	}
	return &Striped{links: make([]Link, n)}
}

// Width reports the number of links in the bank.
func (s *Striped) Width() int { return len(s.links) }

// Reset clears all reservations, returning the bank to its initial state
// for reuse across simulation runs.
func (s *Striped) Reset() {
	for i := range s.links {
		s.links[i] = Link{}
	}
}

// Reserve books dur on the link that can start earliest (ties broken by
// lowest index, for determinism).
func (s *Striped) Reserve(at, dur Time) (start, end Time) {
	start, end, _ = s.reserve(at, dur)
	return start, end
}

// reserve is Reserve also reporting the chosen link index, for callers
// (Bank) whose tests shadow per-stripe timelines.
func (s *Striped) reserve(at, dur Time) (start, end Time, link int) {
	best := 0
	bestStart := Max(at, s.links[0].nextFree)
	for i := 1; i < len(s.links); i++ {
		st := Max(at, s.links[i].nextFree)
		if st < bestStart {
			best, bestStart = i, st
		}
	}
	start, end = s.links[best].Reserve(at, dur)
	return start, end, best
}

// Busy reports the total reserved time across all links.
func (s *Striped) Busy() Time {
	var total Time
	for i := range s.links {
		total += s.links[i].busy
	}
	return total
}

// Token is a distributed mutual-exclusion resource with FIFO hand-off and
// a fixed per-acquisition cost, used to model shared-file-pointer
// serialization. Unlike Link it blocks the acquirer, which may be either
// process representation.
type Token struct {
	holder  Runnable
	waiters WaitQueue
	grants  uint64
}

// Acquire blocks p until the token is free, then takes it.
func (t *Token) Acquire(p *Proc, reason string) {
	p.FlushDebt()
	for t.holder != nil {
		t.waiters.Wait(p, reason)
	}
	t.holder = p
	t.grants++
}

// FAcquire is Acquire for fibers: it takes the token and continues with
// next, queueing in the same FIFO positions a Proc would.
func (t *Token) FAcquire(f *Fiber, reason string, next StepFunc) StepFunc {
	var loop StepFunc
	loop = func(_ *Fiber) StepFunc {
		if t.holder != nil {
			return t.waiters.WaitFiber(f, reason, loop)
		}
		t.holder = f
		t.grants++
		return next
	}
	return f.FlushDebt(loop)
}

// Release frees the token and wakes the next waiter. Releasing a token the
// caller does not hold is a programming error.
func (t *Token) Release(r Runnable) {
	if t.holder != r {
		panic("sim: Token released by non-holder")
	}
	t.holder = nil
	t.waiters.Signal(r.engine())
}

// Grants reports how many times the token has been acquired.
func (t *Token) Grants() uint64 { return t.grants }

// Evict removes a killed runnable from the token: if r holds the token
// it is released on r's behalf (waking the next waiter); if r is queued
// it is dropped from the FIFO. Failure handling calls this for every
// token a crashed rank might touch so the hand-off chain never wedges
// on — or wakes — a dead process.
func (t *Token) Evict(r Runnable, e *Engine) {
	if t.holder == r {
		t.holder = nil
		t.waiters.Signal(e)
		return
	}
	t.waiters.Remove(r)
}
