package sim

import (
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled occurrence in virtual time: either a process resume
// (proc != nil) or a callback (fn != nil). Events with equal time fire in
// scheduling order (seq), which makes runs deterministic. Events are
// stored by value in the heap to avoid one allocation per event.
type event struct {
	t    Time
	seq  uint64
	proc *Proc
	fn   func()
}

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (t, seq). It avoids container/heap's interface costs on the hottest
// path in the simulator.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with NewEngine.
//
// All simulated code (process bodies and event callbacks) runs under the
// engine's single logical thread of control, so it may freely mutate
// shared simulation state without locking.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	parked chan struct{} // handshake: procs hand control back to the loop
	seed   int64

	procs     []*Proc
	live      int // procs spawned and not yet finished
	nextProc  int
	running   bool
	fired     uint64
	stopped   bool
	panicked  interface{}
	panicProc *Proc
}

// NewEngine returns an engine whose per-process random streams derive from
// seed. Two engines built with the same seed and driven by the same code
// produce identical trajectories.
func NewEngine(seed int64) *Engine {
	return &Engine{
		parked: make(chan struct{}),
		seed:   seed,
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the engine's base seed.
func (e *Engine) Seed() int64 { return e.seed }

// Events reports how many events have fired so far.
func (e *Engine) Events() uint64 { return e.fired }

// At schedules fn to run at virtual time t. Scheduling in the past is a
// programming error and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, fn: fn})
}

// atProc schedules a resume of p at virtual time t without allocating a
// closure.
func (e *Engine) atProc(t Time, p *Proc) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling resume at %v before now %v", t, e.now))
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, proc: p})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Spawn creates a new simulated process executing body. The process starts
// at the current virtual time (or at time 0 if the engine has not started
// running yet). Spawn may be called before Run or from inside running
// simulation code.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		e:     e,
		name:  name,
		id:    e.nextProc,
		wake:  make(chan struct{}),
		state: procNew,
	}
	e.nextProc++
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if _, isStop := r.(stopSignal); !isStop && e.panicked == nil {
					e.panicked = r
					e.panicProc = p
				}
			}
			p.state = procDone
			e.live--
			e.parked <- struct{}{}
		}()
		if !e.stopped {
			body(p)
		}
	}()
	e.atProc(e.now, p)
	return p
}

// stopSignal is panicked inside proc goroutines to unwind them when the
// engine is stopped with procs still blocked.
type stopSignal struct{}

// dispatch transfers control to p until it yields or finishes.
func (e *Engine) dispatch(p *Proc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.wake <- struct{}{}
	<-e.parked
	if e.panicked != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v", e.panicProc.name, e.panicked))
	}
}

// Run executes events until the queue is empty, then returns the final
// virtual time. If processes remain blocked when the queue drains, Run
// returns ErrDeadlock describing them.
func (e *Engine) Run() (Time, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		if ev.t < e.now {
			panic("sim: event heap yielded an event in the past")
		}
		e.now = ev.t
		e.fired++
		if ev.proc != nil {
			e.dispatch(ev.proc)
		} else {
			ev.fn()
		}
	}
	if e.live > 0 {
		err := e.deadlockError()
		e.unwind()
		return e.now, err
	}
	e.unwind()
	return e.now, nil
}

// RunUntil executes events up to and including virtual time limit and
// stops there, leaving remaining events queued.
func (e *Engine) RunUntil(limit Time) (Time, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && e.queue[0].t <= limit {
		ev := e.queue.pop()
		e.now = ev.t
		e.fired++
		if ev.proc != nil {
			e.dispatch(ev.proc)
		} else {
			ev.fn()
		}
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now, nil
}

// unwind terminates any still-blocked process goroutines so they do not
// leak after the simulation ends.
func (e *Engine) unwind() {
	e.stopped = true
	for _, p := range e.procs {
		if p.state == procBlocked || p.state == procNew {
			p.state = procRunning
			p.wake <- struct{}{}
			<-e.parked
		}
	}
	e.panicked = nil
}

// deadlockError builds a descriptive error naming all blocked processes.
func (e *Engine) deadlockError() error {
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.blockReason))
		}
	}
	sort.Strings(blocked)
	const max = 12
	if len(blocked) > max {
		blocked = append(blocked[:max], fmt.Sprintf("... and %d more", len(blocked)-max))
	}
	return &DeadlockError{Blocked: blocked, At: e.now}
}

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	Blocked []string
	At      Time
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es): %s",
		d.At, len(d.Blocked), strings.Join(d.Blocked, "; "))
}
