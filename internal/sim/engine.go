package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// globalEvents accumulates events fired by every engine in the process,
// for throughput reporting (events/sec) across concurrent simulations.
// Engines flush their local counts when Run/RunUntil return.
var globalEvents atomic.Uint64

// GlobalEvents reports the total number of events fired by all engines in
// this process since start (or since the last counter read delta taken by
// the caller). It is safe to call from any goroutine.
func GlobalEvents() uint64 { return globalEvents.Load() }

// flushGlobalEvents publishes this engine's not-yet-reported event count.
func (e *Engine) flushGlobalEvents() {
	if d := e.fired - e.reported; d > 0 {
		globalEvents.Add(d)
		e.reported = e.fired
	}
}

// Action is a schedulable occurrence. Scheduling a pointer-shaped Action
// with AtAction stores it directly in the event (no closure allocation),
// which lets hot callers reuse one long-lived object for many events.
type Action interface {
	Fire()
}

// funcAction adapts a plain callback to Action without allocating: func
// values are pointer-shaped, so the interface conversion is direct.
type funcAction func()

func (f funcAction) Fire() { f() }

// event is a scheduled occurrence in virtual time: either a process resume
// (proc != nil) or an action (act != nil). Events with equal time fire in
// priority then scheduling order (pri, seq), which makes runs
// deterministic. pri is zero for every ordinary event — the classic
// contract is pure (t, seq) order — and non-zero only for cross-rank
// message deliveries under the conservative parallel mode (see
// ShardGroup), where it carries a canonical partition-independent key so
// same-instant delivery order does not depend on how ranks were sharded.
// Events are stored by value in the heap to avoid one allocation per
// event.
type event struct {
	t    Time
	pri  uint64
	seq  uint64
	proc *Proc
	act  Action
}

// eventHeap is a hand-rolled 4-ary min-heap of events ordered by (t, pri,
// seq). It avoids container/heap's interface costs on the hottest path in
// the simulator; the wide fan-out halves the tree depth of the binary
// version, which cuts the sift-down compares and cache misses that
// dominate pop on big event populations.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, smallest) {
				smallest = c
			}
		}
		if !q.less(smallest, i) {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with NewEngine.
//
// All simulated code (process bodies and event callbacks) runs under the
// engine's single logical thread of control, so it may freely mutate
// shared simulation state without locking.
//
// Two fast paths keep the hot loop off the heap and off the goroutine
// handshake:
//
//   - Same-timestamp events: an event scheduled at the current instant
//     while nothing else in the heap shares that instant goes into a FIFO
//     ring (imm) that the loop drains before consulting the heap. The ring
//     preserves scheduling (seq) order, so firing order is identical to
//     the heap path; its backing array is reused across drains, so bursts
//     of immediate events (self-sends, deliveries) allocate nothing.
//     Invariant: whenever imm is non-empty, every heap entry is strictly
//     later than now.
//   - Inline advance: when the running process advances to an instant
//     strictly before everything queued (heap and ring), the engine loop
//     would pop that process's own resume next anyway, so Advance moves
//     the clock directly and keeps running — no event, no park/dispatch
//     round trip. See Engine.canAdvanceInline.
//   - Direct handoff: there is no dedicated event-loop goroutine while the
//     simulation runs. A single logical "token" of control moves between
//     goroutines: whichever goroutine holds it executes simulation code
//     and, on yield, pops and fires subsequent events itself (callbacks
//     run inline; a resume of another process hands the token straight to
//     that process's goroutine). A process-to-process handoff therefore
//     costs one goroutine switch instead of the two a central loop needs,
//     and popping one's own resume costs none. The token returns to the
//     Run goroutine only when the queue drains, the run limit is reached,
//     or a process panics.
type Engine struct {
	now     Time
	queue   eventHeap
	imm     []event // FIFO of events at t == now; see invariant above
	immHead int
	seq     uint64
	limit   Time          // RunUntil bound (MaxTime under Run)
	runWake chan struct{} // token handoff back to the Run goroutine
	seed    int64

	procs     []*Proc
	fibs      []*Fiber
	live      int // procs and fibers spawned and not yet finished
	nextProc  int // shared id counter for both process representations
	running   bool
	fired     uint64
	reported  uint64 // events already added to the global counter
	stopped   bool
	panicked  interface{}
	panicProc *Proc

	// Crash-stop support (Engine.Kill). driving is the proc whose
	// schedule loop currently holds the token (nil on the Run
	// goroutine's drive loop): killing it must not wake it — its own
	// loop notices killed and unwinds in place, consuming no extra
	// events. killing/killWake form the handshake that waits for a
	// non-driving victim's goroutine to finish unwinding before the
	// killer proceeds, so a kill is synchronous and mutates no state
	// concurrently.
	driving  *Proc
	killing  bool
	killWake chan struct{}

	// Conservative parallel mode (parallel.go): engines built by a
	// ShardGroup carry their group and shard index so cross-shard event
	// posts route through the group's window-barrier outboxes. Both are
	// zero for standalone engines.
	group *ShardGroup
	shard int
}

// NewEngine returns an engine whose per-process random streams derive from
// seed. Two engines built with the same seed and driven by the same code
// produce identical trajectories.
func NewEngine(seed int64) *Engine {
	return &Engine{
		runWake:  make(chan struct{}),
		killWake: make(chan struct{}),
		seed:     seed,
	}
}

// Runnable is the scheduling contract shared by the engine's two process
// representations: goroutine-backed processes (Proc) and step-function
// fibers (Fiber). Both are resumed via events ordered by (t, seq) in the
// same heap and same-timestamp ring, so wait queues and wake-ups treat
// them uniformly; only the final dispatch differs (a token handoff for a
// Proc, an inline call for a Fiber). Code that parks either representation
// stores the Runnable and wakes it with Engine.WakeAt.
type Runnable interface {
	// Name reports the spawn name, for deadlock diagnostics.
	Name() string
	// ID reports the engine-unique spawn-order identifier.
	ID() int
	// resumeAt schedules the runnable's resume event at virtual time t.
	resumeAt(t Time)
	// blockedOn reports whether the runnable is blocked awaiting an
	// external wake, and the reason shown in deadlock reports.
	blockedOn() (bool, string)
	// engine returns the owning engine.
	engine() *Engine
}

// Reset returns the engine to its initial state with a new seed, keeping
// the event-heap and ring capacity so that reusing one engine across many
// simulation runs allocates nothing per run. A reset engine behaves
// exactly like a fresh NewEngine(seed): virtual time, sequence numbers and
// event counters restart from zero, so trajectories are independent of
// reuse.
//
// Reset must not be called while the engine is running, and every
// goroutine-backed process must have finished or been unwound (as Run
// guarantees on return); fibers have no stacks and are simply dropped.
func (e *Engine) Reset(seed int64) {
	if e.running {
		panic("sim: Reset called while the engine is running")
	}
	for _, p := range e.procs {
		if p.state != procDone {
			panic(fmt.Sprintf("sim: Reset with process %q still live (after RunUntil?)", p.name))
		}
	}
	e.flushGlobalEvents()
	for i := range e.queue {
		e.queue[i] = event{}
	}
	e.queue = e.queue[:0]
	for i := range e.imm {
		e.imm[i] = event{}
	}
	e.imm = e.imm[:0]
	e.immHead = 0
	for i := range e.procs {
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
	for i := range e.fibs {
		e.fibs[i] = nil
	}
	e.fibs = e.fibs[:0]
	e.now = 0
	e.seq = 0
	e.limit = 0
	e.seed = seed
	e.live = 0
	e.nextProc = 0
	e.fired = 0
	e.reported = 0
	e.stopped = false
	e.panicked = nil
	e.panicProc = nil
	e.driving = nil
	e.killing = false
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the engine's base seed.
func (e *Engine) Seed() int64 { return e.seed }

// Events reports how many events have fired so far.
func (e *Engine) Events() uint64 { return e.fired }

// At schedules fn to run at virtual time t. Scheduling in the past is a
// programming error and panics.
func (e *Engine) At(t Time, fn func()) { e.AtAction(t, funcAction(fn)) }

// AtAction schedules act to fire at virtual time t. Scheduling in the
// past is a programming error and panics.
func (e *Engine) AtAction(t Time, act Action) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	if e.running && t == e.now && (len(e.queue) == 0 || e.queue[0].t > t) {
		e.imm = append(e.imm, event{t: t, seq: e.seq, act: act})
		return
	}
	e.queue.push(event{t: t, seq: e.seq, act: act})
}

// AtActionPri schedules act at virtual time t with an explicit event
// priority: at equal instants, lower pri fires first and seq breaks the
// remaining ties. Ordinary events have pri 0, so a non-zero pri fires
// after every same-instant pri-0 event regardless of scheduling order —
// the property the conservative parallel mode needs to make same-instant
// cross-rank delivery order independent of rank partitioning. t must be
// strictly in the future: pri events never ride the same-timestamp ring,
// so the ring's invariant (heap entries strictly later than now while it
// is non-empty) is preserved without consulting it.
func (e *Engine) AtActionPri(t Time, pri uint64, act Action) {
	if t <= e.now {
		panic(fmt.Sprintf("sim: scheduling pri event at %v not after now %v", t, e.now))
	}
	e.seq++
	e.queue.push(event{t: t, pri: pri, seq: e.seq, act: act})
}

// Post schedules act on dst at virtual time t with priority pri, routing
// through the shard group's window outboxes when dst lives on another
// shard. On the same engine it is AtActionPri. It is the delivery seam of
// the conservative parallel mode: all cross-rank traffic in a sharded run
// goes through Post with a canonical pri so the merged order at equal
// instants is a pure function of (t, pri), never of shard placement or
// barrier arrival order.
func (e *Engine) Post(dst *Engine, t Time, pri uint64, act Action) {
	if dst == e {
		e.AtActionPri(t, pri, act)
		return
	}
	if e.group == nil || dst.group != e.group {
		panic("sim: Post between engines that do not share a ShardGroup")
	}
	e.group.post(e.shard, dst.shard, t, pri, act)
}

// nextEventTime reports the instant of the earliest pending event, or
// MaxTime when nothing is queued. The same-timestamp ring is always empty
// between windows (RunUntil drains it before returning), so the heap top
// is authoritative.
func (e *Engine) nextEventTime() Time {
	if e.immHead < len(e.imm) {
		return e.now
	}
	if len(e.queue) == 0 {
		return MaxTime
	}
	return e.queue[0].t
}

// atProc schedules a resume of p at virtual time t without allocating a
// closure.
func (e *Engine) atProc(t Time, p *Proc) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling resume at %v before now %v", t, e.now))
	}
	e.seq++
	if e.running && t == e.now && (len(e.queue) == 0 || e.queue[0].t > t) {
		e.imm = append(e.imm, event{t: t, seq: e.seq, proc: p})
		return
	}
	e.queue.push(event{t: t, seq: e.seq, proc: p})
}

// canAdvanceInline reports whether the running process may move virtual
// time to target directly without parking: the engine is mid-run, target
// does not exceed the run bound, and nothing else (ring or heap) is
// scheduled at or before target, so the loop's next pop would be that
// process's own resume anyway. Must only be consulted by the process the
// engine is currently dispatching.
func (e *Engine) canAdvanceInline(target Time) bool {
	return e.running && target <= e.limit &&
		e.immHead >= len(e.imm) &&
		(len(e.queue) == 0 || e.queue[0].t > target)
}

// jumpTo is the inline-advance commit: the clock moves and the skipped
// resume event is accounted as fired.
func (e *Engine) jumpTo(target Time) {
	e.now = target
	e.fired++
}

// nextImm pops the front of the same-timestamp ring, recycling the backing
// array once drained. It must only be called when the ring is non-empty.
func (e *Engine) nextImm() event {
	ev := e.imm[e.immHead]
	e.imm[e.immHead] = event{}
	e.immHead++
	if e.immHead == len(e.imm) {
		e.imm = e.imm[:0]
		e.immHead = 0
	}
	return ev
}

// After schedules fn to run d after the current virtual time. Negative
// durations are a programming error and panic naming the duration (rather
// than surfacing later as a confusing scheduling-in-the-past panic), as
// does a duration large enough to overflow virtual time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: After called with negative duration %v", d))
	}
	t := e.now + d
	if t < e.now {
		panic(fmt.Sprintf("sim: After duration %v overflows virtual time (now %v)", d, e.now))
	}
	e.At(t, fn)
}

// Spawn creates a new simulated process executing body. The process starts
// at the current virtual time (or at time 0 if the engine has not started
// running yet). Spawn may be called before Run or from inside running
// simulation code.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	id := e.nextProc
	e.nextProc++
	return e.SpawnID(id, name, body)
}

// SpawnID is Spawn with a caller-chosen process id. Sharded worlds use it
// to give every rank its world rank as id on whichever shard engine hosts
// it, so per-process random streams (seeded from the id) are independent
// of the partitioning; the engine's own id counter is not consumed. The
// caller is responsible for id uniqueness within the engine — see
// SetIDBase for keeping auto-assigned helper ids clear of a reserved
// range.
func (e *Engine) SpawnID(id int, name string, body func(*Proc)) *Proc {
	p := &Proc{
		e:     e,
		name:  name,
		id:    id,
		wake:  make(chan struct{}),
		state: procNew,
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if _, isStop := r.(stopSignal); !isStop && e.panicked == nil {
					e.panicked = r
					e.panicProc = p
				}
			}
			p.state = procDone
			p.doneAt = e.now
			e.live--
			// A goroutine unwound by Kill hands control back to the
			// killer, which still holds the simulation token.
			if e.killing {
				e.killWake <- struct{}{}
				return
			}
			// The goroutine exits holding the token: pass it on. During
			// unwind (or after a panic) it goes straight back to Run;
			// otherwise keep driving the event loop from here.
			if e.stopped || e.panicked != nil {
				e.runWake <- struct{}{}
				return
			}
			e.schedule(nil)
		}()
		if !e.stopped && !p.killed {
			p.state = procRunning
			body(p)
		}
	}()
	e.atProc(e.now, p)
	return p
}

// SetIDBase moves the engine's automatic id counter to at least base, so
// subsequently Spawned processes and fibers take ids >= base. Sharded
// worlds reserve the low range for explicit rank ids (SpawnID) and start
// each shard's helper ids from a disjoint high base.
func (e *Engine) SetIDBase(base int) {
	if e.nextProc < base {
		e.nextProc = base
	}
}

// stopSignal is panicked inside proc goroutines to unwind them when the
// engine is stopped with procs still blocked.
type stopSignal struct{}

// popNext removes and returns the next runnable event: the
// same-timestamp ring first, then the heap, advancing the clock for heap
// events. ok is false when nothing (left) is runnable within the run
// limit.
func (e *Engine) popNext() (event, bool) {
	if e.immHead < len(e.imm) {
		return e.nextImm(), true
	}
	if len(e.queue) == 0 || e.queue[0].t > e.limit {
		return event{}, false
	}
	ev := e.queue.pop()
	if ev.t < e.now {
		panic("sim: event heap yielded an event in the past")
	}
	e.now = ev.t
	return ev, true
}

// schedule drives the event loop on the calling goroutine (the current
// token holder) until self's own resume event is popped (self-resume: no
// goroutine switch) or the token is handed elsewhere. Callback events run
// inline; a resume of another process wakes that process's goroutine and
// parks this one until its own resume is popped by a later token holder.
// When the queue drains or only events beyond the run limit remain, the
// token returns to the Run goroutine.
//
// self == nil means the caller is a finished process goroutine: the loop
// hands the token onward without parking, and the goroutine exits.
func (e *Engine) schedule(self *Proc) {
	e.driving = self
	for {
		// A crash event fired by this loop may have killed the driving
		// process itself: return so yield unwinds it in place — no wake
		// event, identical event consumption to the fiber representation.
		if self != nil && self.killed {
			return
		}
		ev, ok := e.popNext()
		if !ok {
			e.runWake <- struct{}{}
			if self == nil {
				return
			}
			<-self.wake
			return
		}
		e.fired++
		if ev.act != nil {
			ev.act.Fire()
			continue
		}
		q := ev.proc
		if q == self {
			return
		}
		if q.state == procDone {
			continue
		}
		e.driving = q
		q.wake <- struct{}{}
		if self == nil {
			return
		}
		<-self.wake
		return
	}
}

// drive runs the event loop on the Run goroutine until the first handoff
// to a process, then parks until the token returns (queue drained, limit
// reached, or a process panicked). Pure-callback simulations (no
// processes) complete entirely in this loop with zero goroutine switches.
func (e *Engine) drive() {
	e.driving = nil
	for {
		ev, ok := e.popNext()
		if !ok {
			return
		}
		e.fired++
		if ev.act != nil {
			ev.act.Fire()
			continue
		}
		if ev.proc.state == procDone {
			continue
		}
		e.driving = ev.proc
		ev.proc.wake <- struct{}{}
		<-e.runWake
		return
	}
}

// Run executes events until the queue is empty, then returns the final
// virtual time. If processes remain blocked when the queue drains, Run
// returns ErrDeadlock describing them.
func (e *Engine) Run() (Time, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	e.limit = MaxTime
	defer func() {
		e.running = false
		e.flushGlobalEvents()
	}()
	e.drive()
	if e.panicked != nil {
		// Unwind the other, still-parked process goroutines before
		// re-raising: without this a panicking rank body in one job of a
		// multi-world run would leak every parked rank of every other
		// job. unwind captures and clears the panic state, so take the
		// message first.
		msg := fmt.Sprintf("sim: process %q panicked: %v", e.panicProc.name, e.panicked)
		e.unwind()
		panic(msg)
	}
	if e.live > 0 {
		err := e.deadlockError()
		e.unwind()
		return e.now, err
	}
	e.unwind()
	return e.now, nil
}

// RunUntil executes events up to and including virtual time limit and
// stops there, leaving remaining events queued.
func (e *Engine) RunUntil(limit Time) (Time, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: RunUntil called reentrantly")
	}
	e.running = true
	e.limit = limit
	defer func() {
		e.running = false
		e.flushGlobalEvents()
	}()
	e.drive()
	if e.panicked != nil {
		// As in Run: a panicked engine cannot be resumed, so unwind the
		// parked goroutines before re-raising rather than leaking them.
		msg := fmt.Sprintf("sim: process %q panicked: %v", e.panicProc.name, e.panicked)
		e.unwind()
		panic(msg)
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now, nil
}

// Abort terminates every spawned-but-unfinished process and fiber without
// running the simulation: goroutine-backed processes are unwound via the
// stop signal, fibers' pending continuations are dropped. It exists for
// callers that spawn work across several worlds and hit an error before
// Run (a co-scheduled job failing to start must not leak the goroutines
// of the jobs spawned before it). The engine must be Reset before reuse.
func (e *Engine) Abort() {
	if e.running {
		panic("sim: Abort called while the engine is running")
	}
	e.unwind()
}

// Kill terminates one runnable at the current instant — the crash-stop
// primitive under fault campaigns (see the failure/recovery contract in
// the package comment). A fiber is marked done and its pending
// continuation dropped; a goroutine-backed process unwinds through the
// same stopSignal machinery Abort uses, synchronously — Kill returns
// once the victim's goroutine has exited. Killing the process the
// engine is currently dispatching (a rank crashing inside its own event
// window) defers the unwind to its next yield without waking it, so no
// extra event is consumed and both representations observe the kill at
// the same (t, seq) position. Stale resume events of a killed runnable
// are popped and counted as fired, identically for both
// representations. Killing a finished runnable is a no-op. Kill must be
// called from simulation context (an event callback or a process body),
// never from outside a running engine.
func (e *Engine) Kill(r Runnable) {
	switch x := r.(type) {
	case *Fiber:
		if x.done {
			return
		}
		x.done = true
		x.doneAt = e.now
		x.next = nil
		x.parked = false
		e.live--
	case *Proc:
		if x.state == procDone || x.killed {
			return
		}
		x.killed = true
		if x == e.driving {
			// The victim holds (or is being handed) the token: its own
			// schedule loop or next yield notices killed and unwinds in
			// place.
			return
		}
		e.killing = true
		x.wake <- struct{}{}
		<-e.killWake
		e.killing = false
	}
}

// unwind terminates any still-blocked process goroutines so they do not
// leak after the simulation ends. Each woken goroutine unwinds via
// stopSignal and hands the token straight back here. Fibers have no
// goroutine to unwind: their pending continuations are simply dropped.
func (e *Engine) unwind() {
	e.stopped = true
	for _, p := range e.procs {
		if p.state == procBlocked || p.state == procNew {
			p.wake <- struct{}{}
			<-e.runWake
		}
	}
	for _, f := range e.fibs {
		f.next = nil
	}
	e.panicked = nil
}

// deadlockError builds a descriptive error naming all blocked processes
// and fibers.
func (e *Engine) deadlockError() error {
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.blockReason))
		}
	}
	for _, f := range e.fibs {
		if isBlocked, reason := f.blockedOn(); isBlocked {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", f.name, reason))
		}
	}
	sort.Strings(blocked)
	const max = 12
	if len(blocked) > max {
		blocked = append(blocked[:max], fmt.Sprintf("... and %d more", len(blocked)-max))
	}
	return &DeadlockError{Blocked: blocked, At: e.now}
}

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	Blocked []string
	At      Time
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es): %s",
		d.At, len(d.Blocked), strings.Join(d.Blocked, "; "))
}
