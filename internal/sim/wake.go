package sim

import "fmt"

// Waker is the direct-wake primitive under waits that register one parked
// process or fiber on several completion sources at once (the runtime's
// WaitAny and friends). Each source that completes calls WakeAt with its
// completion instant; the first call schedules the target's resume event
// at exactly that instant and every later call is a no-op, so the target
// consumes exactly one wake event however many sources complete while it
// is parked. Compared to parking on a shared WaitQueue, there is no
// broadcast event, no wake of unrelated waiters, and no re-scan loop on
// the wake path.
//
// Wake-instant contract: the target resumes at the instant of the first
// completion to be *scheduled*. Completion instants reaching one waker
// are monotone in scheduling order for every source the runtime registers
// (per-endpoint NIC reservations are granted in arrival order), so this
// is also the earliest completion instant — except when a self-send
// (ready immediately) overtakes an earlier-scheduled in-flight completion,
// in which case the target resumes at the first-scheduled instant and
// observes both completions then. Either way the trajectory is a pure
// function of (t, seq) order, and both process representations consume
// the identical event.
//
// A Waker is armed for one park, disarmed on resume, and is immediately
// reusable (it owns no scheduled events of its own — the single resume
// event belongs to the target). The zero value is ready to arm.
type Waker struct {
	e      *Engine
	target Runnable
	woken  bool
}

// Arm readies the waker to wake target exactly once. The caller parks
// target after registering the armed waker with its completion sources.
func (k *Waker) Arm(e *Engine, target Runnable) {
	if k.target != nil {
		panic(fmt.Sprintf("sim: Waker armed for %q while still armed for %q", target.Name(), k.target.Name()))
	}
	k.e = e
	k.target = target
	k.woken = false
}

// WakeAt schedules the armed target's resume at virtual time t on the
// first call; later calls (further completions racing the resume) are
// no-ops — the woken target observes them when it re-scans. Calling
// WakeAt on a disarmed waker is a no-op.
func (k *Waker) WakeAt(t Time) {
	if k.woken || k.target == nil {
		return
	}
	k.woken = true
	k.target.resumeAt(t)
}

// Disarm detaches the target after it resumed. The waker may be rearmed
// (or pooled) immediately.
func (k *Waker) Disarm() { k.target = nil }
