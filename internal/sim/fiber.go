package sim

import (
	"fmt"
	"math/rand"
)

// StepFunc is one segment of a fiber body: code that runs to the fiber's
// next suspension point (or to the end of the body) and returns the
// continuation to execute next, or nil when the body is finished.
//
// Blocking primitives (Fiber.Advance, Fiber.Park, the fiber variants of
// the mpi wait calls) are continuation-passing: they take the step to run
// after the operation completes and return the value the current step must
// return immediately. When the operation can complete synchronously (for
// example, an inline clock advance), the returned continuation is executed
// right away by the fiber runner, so the fast path costs a function call
// and nothing else.
type StepFunc func(f *Fiber) StepFunc

// Fiber is the engine's second process representation: an explicit
// continuation state machine that the dispatcher resumes with a plain
// function call instead of a goroutine handoff. A cross-process dispatch
// to a fiber therefore costs a method call on the current token holder's
// stack, not a goroutine switch — the difference between ~600ns and a few
// nanoseconds per dispatch on message-dominated workloads.
//
// Fibers and goroutine-backed processes (Proc) schedule through the same
// event heap and same-timestamp ring and share the (t, seq) determinism
// contract: a fiber port of a process body that performs the same sequence
// of simulation operations produces a bit-identical trajectory (the
// differential tests in internal/experiments assert this).
//
// The price is the programming model: fiber bodies cannot block mid-call,
// so every blocking point splits the body into explicit steps (StepFunc).
// A primitive that suspends must have its return value returned from the
// current step immediately; executing further simulation actions after a
// suspension and before returning is a programming error (the work would
// happen before the fiber's resume instant).
type Fiber struct {
	e           *Engine
	name        string
	id          int
	rng         *rand.Rand
	debt        Time
	next        StepFunc // pending continuation while suspended
	susp        bool     // the running step hit a suspension point
	parked      bool     // suspended without a scheduled resume (awaits a wake)
	blockReason string
	done        bool
	doneAt      Time // virtual time at which the body finished
}

// SpawnFiber creates a fiber executing start. Like Spawn, the fiber starts
// at the current virtual time (or time 0 if the engine has not started
// yet), and spawn order determines the identifier that seeds the fiber's
// random stream — a fiber spawned in place of a Proc inherits the same
// stream.
func (e *Engine) SpawnFiber(name string, start StepFunc) *Fiber {
	id := e.nextProc
	e.nextProc++
	return e.SpawnFiberID(id, name, start)
}

// SpawnFiberID is SpawnFiber with a caller-chosen id, the fiber
// counterpart of SpawnID: sharded worlds give each rank its world rank as
// id regardless of which shard engine hosts it, keeping the id-seeded
// random streams independent of the partitioning.
func (e *Engine) SpawnFiberID(id int, name string, start StepFunc) *Fiber {
	f := &Fiber{
		e:    e,
		name: name,
		id:   id,
		next: start,
	}
	e.fibs = append(e.fibs, f)
	e.live++
	e.AtAction(e.now, f)
	return f
}

// Name reports the fiber name given to SpawnFiber.
func (f *Fiber) Name() string { return f.name }

// ID reports the engine-unique identifier, shared with Proc spawn order.
func (f *Fiber) ID() int { return f.id }

// Engine returns the engine this fiber belongs to.
func (f *Fiber) Engine() *Engine { return f.e }

// Now reports the current virtual time.
func (f *Fiber) Now() Time { return f.e.now }

// Done reports whether the fiber body has finished.
func (f *Fiber) Done() bool { return f.done }

// FinishedAt reports the virtual time at which the fiber body finished.
// It is meaningful only once Done reports true; multi-world setups use it
// for per-job makespans.
func (f *Fiber) FinishedAt() Time { return f.doneAt }

// Rand returns the fiber's deterministic random source, derived from the
// engine seed and the fiber id exactly as Proc.Rand derives its stream.
func (f *Fiber) Rand() *rand.Rand {
	if f.rng == nil {
		f.rng = newRand(f.e.seed, int64(f.id))
	}
	return f.rng
}

// resumeAt schedules the fiber's resume event (Runnable contract).
func (f *Fiber) resumeAt(t Time) { f.e.AtAction(t, f) }

// blockedOn reports deadlock-diagnostic state (Runnable contract).
func (f *Fiber) blockedOn() (bool, string) {
	return f.parked && !f.done, f.blockReason
}

// engine returns the owning engine (Runnable contract).
func (f *Fiber) engine() *Engine { return f.e }

// Fire resumes the fiber: it runs steps until one suspends or the body
// finishes. It implements Action so that fiber resumes flow through the
// engine's ordinary event dispatch — inline on the current token holder,
// no goroutine switch. Fire is invoked by the engine; application code
// never calls it.
func (f *Fiber) Fire() {
	if f.done || f.e.stopped {
		return
	}
	f.parked = false
	f.blockReason = ""
	step := f.next
	f.next = nil
	for step != nil {
		step = step(f)
		if f.susp {
			f.susp = false
			f.next = step
			return
		}
	}
	f.done = true
	f.doneAt = f.e.now
	f.e.live--
}

// suspend marks the running step suspended. Exactly one real suspension
// may occur per step: the continuation returned by the suspending
// primitive must be returned from the step before anything else happens.
func (f *Fiber) suspend(parked bool, reason string) {
	if f.susp {
		panic(fmt.Sprintf("sim: fiber %q suspended twice in one step; return the continuation immediately", f.name))
	}
	f.susp = true
	f.parked = parked
	f.blockReason = reason
}

// Advance consumes d of virtual time (plus accumulated debt) and continues
// with next. When nothing else is scheduled at or before the target the
// clock moves inline and next is executed immediately; otherwise the fiber
// suspends until its resume event fires. Mirrors Proc.Advance decision for
// decision, so trajectories are bit-identical across representations.
func (f *Fiber) Advance(d Time, next StepFunc) StepFunc {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance(%v) with negative duration in fiber %q", d, f.name))
	}
	d += f.debt
	f.debt = 0
	if d == 0 {
		return next
	}
	e := f.e
	target := e.now + d
	if e.canAdvanceInline(target) {
		e.jumpTo(target)
		return next
	}
	e.AtAction(target, f)
	f.suspend(false, "advancing")
	return next
}

// AdvanceTo consumes virtual time until max(t, now+debt), mirroring
// Proc.AdvanceTo.
func (f *Fiber) AdvanceTo(t Time, next StepFunc) StepFunc {
	target := Max(t, f.e.now+f.debt)
	f.debt = 0
	if target > f.e.now {
		if f.e.canAdvanceInline(target) {
			f.e.jumpTo(target)
			return next
		}
		f.e.AtAction(target, f)
		f.suspend(false, "advancing")
	}
	return next
}

// SettleTo consumes all outstanding debt and advances to t, which the
// caller asserts already accounts for that debt. The fiber counterpart of
// Proc.SettleTo — the one-yield settling step of blocking waits.
func (f *Fiber) SettleTo(t Time, next StepFunc) StepFunc {
	if t < f.e.now {
		panic(fmt.Sprintf("sim: SettleTo(%v) before now %v in fiber %q", t, f.e.now, f.name))
	}
	f.debt = 0
	if t > f.e.now {
		if f.e.canAdvanceInline(t) {
			f.e.jumpTo(t)
			return next
		}
		f.e.AtAction(t, f)
		f.suspend(false, "advancing")
	}
	return next
}

// AddDebt records d of CPU time consumed without yielding, exactly like
// Proc.AddDebt.
func (f *Fiber) AddDebt(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: AddDebt(%v) negative in fiber %q", d, f.name))
	}
	f.debt += d
}

// Debt reports the accumulated unflushed CPU time.
func (f *Fiber) Debt() Time { return f.debt }

// FlushDebt converts accumulated debt into virtual time and continues with
// next. Like Proc.FlushDebt it must run before a blocking wait's first
// condition check.
func (f *Fiber) FlushDebt(next StepFunc) StepFunc {
	return f.Advance(0, next)
}

// Then returns a step that runs fn — plain bookkeeping that consumes no
// virtual time and never suspends — and continues with *next.
//
// It is the body-level combinator behind the zero-allocation rank bodies:
// a continuation built inside a body's iteration loop allocates a fresh
// closure every pass, so steady-state loops must build their steps once,
// at body setup. Taking next by pointer gives the hoisted step the same
// late binding a closure's variable capture would provide — it can name a
// loop head that is assigned after the combinator is built — so a body
// can lift its whole step graph out of its loops and iterate
// allocation-free:
//
//	var loop sim.StepFunc
//	emit := sim.Then(func() { st.Isend(r, elem) }, &loop)
//	loop = func(*sim.Fiber) sim.StepFunc {
//		if done() {
//			return nil
//		}
//		return r.FCompute(slice, emit) // no per-iteration closure
//	}
func Then(fn func(), next *StepFunc) StepFunc {
	return func(*Fiber) StepFunc {
		fn()
		return *next
	}
}

// Park suspends the fiber until another piece of simulation code wakes it
// with Engine.WakeAt, then continues with next. Parking with unflushed
// debt is a programming error, as for Proc.Park.
func (f *Fiber) Park(reason string, next StepFunc) StepFunc {
	if f.debt != 0 {
		panic(fmt.Sprintf("sim: fiber %q parked with %v of unflushed debt", f.name, f.debt))
	}
	f.suspend(true, reason)
	return next
}

// ParkKeepingDebt parks like Park but leaves accumulated debt pending; the
// waker must fold the debt into the SettleTo target on resume, exactly as
// with Proc.ParkKeepingDebt.
func (f *Fiber) ParkKeepingDebt(reason string, next StepFunc) StepFunc {
	f.suspend(true, reason)
	return next
}
