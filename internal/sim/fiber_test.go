package sim

import (
	"errors"
	"strings"
	"testing"
)

// loopStep builds a self-returning step that advances d per iteration for
// iters iterations, appending the time after each advance to out.
func loopStep(iters int, d Time, out *[]Time) StepFunc {
	n := 0
	var step StepFunc
	step = func(f *Fiber) StepFunc {
		if n >= iters {
			return nil
		}
		n++
		return f.Advance(d, func(f *Fiber) StepFunc {
			*out = append(*out, f.Now())
			return step
		})
	}
	return step
}

// TestFiberMatchesProcTrajectory runs the same two-party alternating
// advance program once with goroutine processes and once with fibers and
// asserts identical trajectories: same per-step times, same final time,
// same event count. This is the representation-equivalence contract in
// miniature.
func TestFiberMatchesProcTrajectory(t *testing.T) {
	const iters = 200
	runProcs := func() ([]Time, Time, uint64) {
		e := NewEngine(7)
		var times []Time
		for i := 0; i < 2; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Advance(Time(i + 1))
				for n := 0; n < iters; n++ {
					p.Advance(2)
					times = append(times, p.Now())
				}
			})
		}
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return times, end, e.Events()
	}
	runFibers := func() ([]Time, Time, uint64) {
		e := NewEngine(7)
		var times []Time
		for i := 0; i < 2; i++ {
			i := i
			e.SpawnFiber("f", func(f *Fiber) StepFunc {
				return f.Advance(Time(i+1), loopStep(iters, 2, &times))
			})
		}
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return times, end, e.Events()
	}
	pt, pend, pev := runProcs()
	ft, fend, fev := runFibers()
	if pend != fend {
		t.Fatalf("final time: procs %v, fibers %v", pend, fend)
	}
	if pev != fev {
		t.Fatalf("event count: procs %d, fibers %d", pev, fev)
	}
	if len(pt) != len(ft) {
		t.Fatalf("step count: procs %d, fibers %d", len(pt), len(ft))
	}
	for i := range pt {
		if pt[i] != ft[i] {
			t.Fatalf("step %d: procs at %v, fibers at %v", i, pt[i], ft[i])
		}
	}
}

// TestFiberParkWake checks the external wake path: a parked fiber resumes
// exactly at the WakeAt instant.
func TestFiberParkWake(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	f := e.SpawnFiber("sleeper", func(f *Fiber) StepFunc {
		return f.Park("waiting for wake", func(f *Fiber) StepFunc {
			woke = f.Now()
			return nil
		})
	})
	e.At(50, func() { e.WakeAt(75, f) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 75 {
		t.Fatalf("fiber woke at %v, want 75", woke)
	}
	if !f.Done() {
		t.Fatal("fiber not done after wake")
	}
}

// TestFiberDeadlockReported checks that a fiber parked forever appears in
// the deadlock error alongside blocked processes.
func TestFiberDeadlockReported(t *testing.T) {
	e := NewEngine(1)
	e.SpawnFiber("stuck-fiber", func(f *Fiber) StepFunc {
		return f.Park("never woken", nil)
	})
	e.Spawn("stuck-proc", func(p *Proc) {
		p.Park("also never woken")
	})
	_, err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "stuck-fiber (never woken)") || !strings.Contains(msg, "stuck-proc (also never woken)") {
		t.Fatalf("deadlock message missing participants: %q", msg)
	}
}

// TestWaitQueueMixedFIFO checks that procs and fibers waiting on one queue
// wake in arrival order across representations.
func TestWaitQueueMixedFIFO(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []string
	e.Spawn("proc-first", func(p *Proc) {
		q.Wait(p, "mixed")
		order = append(order, "proc-first")
	})
	e.SpawnFiber("fiber-second", func(f *Fiber) StepFunc {
		return q.WaitFiber(f, "mixed", func(f *Fiber) StepFunc {
			order = append(order, "fiber-second")
			return nil
		})
	})
	e.Spawn("proc-third", func(p *Proc) {
		p.Advance(1) // ensure it queues after the first two
		q.Wait(p, "mixed")
		order = append(order, "proc-third")
	})
	e.At(10, func() { q.Broadcast(e) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"proc-first", "fiber-second", "proc-third"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestFiberDebtSettle checks ParkKeepingDebt + SettleTo folding: debt
// accumulated before a park is observed in the settle target, mirroring
// the proc-side one-yield wait pattern.
func TestFiberDebtSettle(t *testing.T) {
	e := NewEngine(1)
	var end Time
	f := e.SpawnFiber("debtor", func(f *Fiber) StepFunc {
		f.AddDebt(5)
		floor := f.Now() + f.Debt()
		return f.ParkKeepingDebt("awaiting completion", func(f *Fiber) StepFunc {
			target := f.Now()
			if floor > target {
				target = floor
			}
			return f.SettleTo(target, func(f *Fiber) StepFunc {
				end = f.Now()
				return nil
			})
		})
	})
	e.At(3, func() { e.WakeAt(3, f) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 5 {
		t.Fatalf("settled at %v, want 5 (park-time floor)", end)
	}
}

// TestFiberSpawnMidRun checks spawning fibers from running simulation code.
func TestFiberSpawnMidRun(t *testing.T) {
	e := NewEngine(1)
	var childAt Time
	e.At(10, func() {
		e.SpawnFiber("child", func(f *Fiber) StepFunc {
			return f.Advance(5, func(f *Fiber) StepFunc {
				childAt = f.Now()
				return nil
			})
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 15 {
		t.Fatalf("child finished at %v, want 15", childAt)
	}
}

// TestEngineResetIdenticalTrajectory runs a program, resets the engine and
// runs it again, asserting the second run is bit-identical to a fresh
// engine's.
func TestEngineResetIdenticalTrajectory(t *testing.T) {
	program := func(e *Engine) (Time, uint64, int64) {
		var draws int64
		for i := 0; i < 4; i++ {
			e.SpawnFiber("f", func(f *Fiber) StepFunc {
				n := 0
				var step StepFunc
				step = func(f *Fiber) StepFunc {
					if n >= 10 {
						return nil
					}
					n++
					draws += f.Rand().Int63n(3)
					return f.Advance(Time(1+n%3), step)
				}
				return step
			})
		}
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end, e.Events(), draws
	}
	fresh := NewEngine(42)
	fEnd, fEv, fDraws := program(fresh)

	reused := NewEngine(7)
	program(reused)
	reused.Reset(42)
	rEnd, rEv, rDraws := program(reused)
	if rEnd != fEnd || rEv != fEv || rDraws != fDraws {
		t.Fatalf("reset engine diverged: (%v,%d,%d) vs fresh (%v,%d,%d)",
			rEnd, rEv, rDraws, fEnd, fEv, fDraws)
	}
}

// TestFiberDoubleSuspendPanics checks the one-suspension-per-step guard.
func TestFiberDoubleSuspendPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "suspended twice") {
			t.Fatalf("got %v, want suspended-twice panic", r)
		}
	}()
	e := NewEngine(1)
	e.Spawn("driver", func(p *Proc) { p.Advance(1) }) // force non-inline advances
	e.SpawnFiber("bad", func(f *Fiber) StepFunc {
		f.Advance(5, nil)
		f.Advance(5, nil) // second real suspension in one step
		return nil
	})
	e.Run()
}

// TestBroadcastAllocFree is the allocation guard for the collective wake
// hot path: steady-state Broadcast over parked fibers must not allocate.
func TestBroadcastAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	res := testing.Benchmark(BenchmarkBroadcastAllocs)
	if a := res.AllocsPerOp(); a > 0 {
		t.Errorf("Broadcast hot path allocates %d allocs/op, want 0", a)
	}
}
