package sim

import "testing"

// TestKillParkedProc kills a process blocked on a wait queue: the run
// must complete without a deadlock report and without executing the
// victim's post-park code.
func TestKillParkedProc(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	resumed := false
	victim := e.Spawn("victim", func(p *Proc) {
		q.Wait(p, "test wait")
		resumed = true
	})
	e.At(50, func() {
		q.Remove(victim)
		e.Kill(victim)
	})
	e.Spawn("bystander", func(p *Proc) { p.Advance(100) })
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resumed {
		t.Error("killed process resumed past its park")
	}
	if !victim.Done() {
		t.Error("victim not marked done")
	}
	if end != 100 {
		t.Errorf("end = %v, want 100", end)
	}
}

// TestKillWithStaleWake kills a process that already has a scheduled wake
// event: the stale resume must be popped and counted as fired, advancing
// the clock to its instant, identically to the fiber representation.
func TestKillWithStaleWake(t *testing.T) {
	run := func(fiber bool) (Time, uint64) {
		e := NewEngine(1)
		if fiber {
			var fb *Fiber
			fb = e.SpawnFiber("victim", func(f *Fiber) StepFunc {
				return f.Park("test wait", func(*Fiber) StepFunc {
					t.Error("killed fiber resumed")
					return nil
				})
			})
			e.At(10, func() { e.WakeAt(100, fb) })
			e.At(50, func() { e.Kill(fb) })
		} else {
			var pr *Proc
			pr = e.Spawn("victim", func(p *Proc) {
				p.Park("test wait")
				t.Error("killed process resumed")
			})
			e.At(10, func() { e.WakeAt(100, pr) })
			e.At(50, func() { e.Kill(pr) })
		}
		end, err := e.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return end, e.Events()
	}
	endP, firedP := run(false)
	endF, firedF := run(true)
	if endP != 100 {
		t.Errorf("proc end = %v, want 100 (stale wake must still pop)", endP)
	}
	if endP != endF || firedP != firedF {
		t.Errorf("representations diverge: proc (end %v, %d events) vs fiber (end %v, %d events)",
			endP, firedP, endF, firedF)
	}
}

// TestKillDrivingProcDefersToYield kills the process currently being
// dispatched (a body killing itself from its own event window): the
// unwind happens at the next yield, with no extra event.
func TestKillDrivingProcDefersToYield(t *testing.T) {
	e := NewEngine(1)
	reachedKill := false
	passedYield := false
	var self *Proc
	self = e.Spawn("self-crash", func(p *Proc) {
		p.Advance(10)
		e.Kill(self) // victim == driving: deferred
		reachedKill = true
		p.Advance(10) // unwinds here
		passedYield = true
	})
	e.Spawn("bystander", func(p *Proc) { p.Advance(30) })
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reachedKill {
		t.Error("self-kill did not defer: code after Kill never ran")
	}
	if passedYield {
		t.Error("killed process survived its yield")
	}
	if !self.Done() {
		t.Error("self-killed process not done")
	}
}

// TestKillRespawnSharedIDs kills and respawns across both representations:
// the respawned runnable must draw the same engine-wide id under either,
// which is what keeps restart random streams representation-neutral.
func TestKillRespawnSharedIDs(t *testing.T) {
	run := func(fiber bool) (victimID, bystanderID, respawnID int, end Time) {
		e := NewEngine(1)
		var victim, bystander, respawn Runnable
		if fiber {
			victim = e.SpawnFiber("victim", func(f *Fiber) StepFunc {
				return f.Advance(100, func(*Fiber) StepFunc { return nil })
			})
			bystander = e.SpawnFiber("bystander", func(f *Fiber) StepFunc {
				return f.Advance(200, func(*Fiber) StepFunc { return nil })
			})
		} else {
			victim = e.Spawn("victim", func(p *Proc) { p.Advance(100) })
			bystander = e.Spawn("bystander", func(p *Proc) { p.Advance(200) })
		}
		e.At(50, func() {
			e.Kill(victim)
			e.At(80, func() {
				if fiber {
					respawn = e.SpawnFiber("victim'", func(f *Fiber) StepFunc {
						return f.Advance(40, func(*Fiber) StepFunc { return nil })
					})
				} else {
					respawn = e.Spawn("victim'", func(p *Proc) { p.Advance(40) })
				}
			})
		})
		var err error
		end, err = e.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return victim.ID(), bystander.ID(), respawn.ID(), end
	}
	v1, b1, r1, e1 := run(false)
	v2, b2, r2, e2 := run(true)
	if v1 != v2 || b1 != b2 || r1 != r2 {
		t.Errorf("id assignment diverges: proc (%d,%d,%d) vs fiber (%d,%d,%d)", v1, b1, r1, v2, b2, r2)
	}
	if r1 != 2 {
		t.Errorf("respawn id = %d, want 2 (next shared id)", r1)
	}
	if e1 != e2 {
		t.Errorf("end diverges: %v vs %v", e1, e2)
	}
}

// TestKillFinishedIsNoop kills an already-finished runnable.
func TestKillFinishedIsNoop(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("quick", func(p *Proc) { p.Advance(5) })
	e.At(10, func() { e.Kill(p) })
	e.Spawn("bystander", func(p *Proc) { p.Advance(20) })
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 20 {
		t.Errorf("end = %v, want 20", end)
	}
}

// TestKillTokenHolder kills a process while it holds a resource token:
// Evict hands the token to the next waiter at the kill instant.
func TestKillTokenHolder(t *testing.T) {
	e := NewEngine(1)
	var tok Token
	var acquiredAt Time
	holder := e.Spawn("holder", func(p *Proc) {
		tok.Acquire(p, "token")
		p.Advance(1000) // would hold until 1000
		tok.Release(p)
	})
	e.Spawn("waiter", func(p *Proc) {
		p.Advance(10)
		tok.Acquire(p, "token")
		acquiredAt = p.Now()
		tok.Release(p)
	})
	e.At(50, func() {
		tok.Evict(holder, e)
		e.Kill(holder)
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acquiredAt != 50 {
		t.Errorf("waiter acquired at %v, want 50 (on eviction)", acquiredAt)
	}
}
