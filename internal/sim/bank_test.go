package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestBankFCFSMatchesStriped: the single-job FCFS bank must reproduce the
// bare Striped grant-for-grant — that equivalence is what keeps
// single-world trajectories byte-identical across the bank extraction.
func TestBankFCFSMatchesStriped(t *testing.T) {
	for _, stripes := range []int{1, 3, 16} {
		b := NewBank(stripes, 1, BankFCFS)
		s := NewStriped(stripes)
		rng := rand.New(rand.NewSource(42))
		var at Time
		for i := 0; i < 500; i++ {
			at += Time(rng.Intn(1000))
			dur := Time(rng.Intn(2000) + 1)
			bs, be := b.Reserve(0, at, dur)
			ss, se := s.Reserve(at, dur)
			if bs != ss || be != se {
				t.Fatalf("stripes=%d op %d: bank granted [%v,%v), striped [%v,%v)", stripes, i, bs, be, ss, se)
			}
		}
		if b.Busy() != s.Busy() {
			t.Errorf("stripes=%d: busy %v != %v", stripes, b.Busy(), s.Busy())
		}
	}
}

// TestBankMultiJobFCFSIsArrivalOrder: FCFS with several jobs applies no
// pacing at all — grants match a bare Striped regardless of which job
// asks.
func TestBankMultiJobFCFSIsArrivalOrder(t *testing.T) {
	b := NewBank(4, 3, BankFCFS)
	s := NewStriped(4)
	rng := rand.New(rand.NewSource(7))
	var at Time
	for i := 0; i < 300; i++ {
		at += Time(rng.Intn(500))
		dur := Time(rng.Intn(1500) + 1)
		job := rng.Intn(3)
		bs, be := b.Reserve(job, at, dur)
		ss, se := s.Reserve(at, dur)
		if bs != ss || be != se {
			t.Fatalf("op %d: bank granted [%v,%v), striped [%v,%v)", i, bs, be, ss, se)
		}
	}
}

// TestBankGrantsNeverOverlap: on a single stripe, grants from any mix of
// jobs and policies must never overlap — gap splitting and tail booking
// both have to respect existing reservations.
func TestBankGrantsNeverOverlap(t *testing.T) {
	for _, policy := range []BankPolicy{BankFCFS, BankFair, BankWeighted} {
		b := NewBank(1, 3, policy)
		b.SetWeight(0, 4)
		rng := rand.New(rand.NewSource(int64(policy) + 99))
		type iv struct{ s, e Time }
		var got []iv
		var at Time
		for i := 0; i < 800; i++ {
			at += Time(rng.Intn(300))
			dur := Time(rng.Intn(700) + 1)
			job := rng.Intn(3)
			s, e := b.Reserve(job, at, dur)
			if s < at {
				t.Fatalf("%v op %d: grant starts at %v before request instant %v", policy, i, s, at)
			}
			if e-s != dur {
				t.Fatalf("%v op %d: grant [%v,%v) is not %v long", policy, i, s, e, dur)
			}
			got = append(got, iv{s, e})
		}
		sort.Slice(got, func(i, j int) bool { return got[i].s < got[j].s })
		for i := 1; i < len(got); i++ {
			if got[i].s < got[i-1].e {
				t.Fatalf("%v: grants [%v,%v) and [%v,%v) overlap", policy, got[i-1].s, got[i-1].e, got[i].s, got[i].e)
			}
		}
	}
}

// TestBankFairPacesHogAndFillsGaps: a job sustaining back-to-back demand
// under equal shares is paced to half the timeline, and the other job's
// requests land in the holes — at their request instant, not behind the
// hog's backlog.
func TestBankFairPacesHogAndFillsGaps(t *testing.T) {
	b := NewBank(1, 2, BankFair)
	// Hog books 10 back-to-back units from t=0 without waiting.
	var starts []Time
	for i := 0; i < 10; i++ {
		s, _ := b.Reserve(0, 0, 100)
		starts = append(starts, s)
	}
	// Pacing at share 1/2: bookings land at 0, 200, 400, ...
	for i, s := range starts {
		if want := Time(i * 200); s != want {
			t.Errorf("hog booking %d starts at %v, want %v", i, s, want)
		}
	}
	// The light job's request at t=50 fits the first hole [100,200).
	s, e := b.Reserve(1, 50, 100)
	if s != 100 || e != 200 {
		t.Errorf("light job granted [%v,%v), want [100,200)", s, e)
	}
	// The light job is paced too (svc is now 250), so its next request
	// lands in the first hole at or after its own clock.
	s, _ = b.Reserve(1, 50, 100)
	if s != 300 {
		t.Errorf("second light request granted at %v, want 300 (first hole past svc=250)", s)
	}
	// A request no hole can fit goes to the stripe tail, behind the
	// hog's last booking.
	s, _ = b.Reserve(1, 50, 150)
	if s != 1900 {
		t.Errorf("oversized request granted at %v, want 1900 (stripe tail)", s)
	}
}

// TestBankWeightedShares: weights shift the pacing rate — a weight-3 job
// is paced at 1/4 the rate of... rather, gets 3/4 of the timeline while a
// weight-1 job gets 1/4.
func TestBankWeightedShares(t *testing.T) {
	b := NewBank(1, 2, BankWeighted)
	b.SetWeight(0, 3)
	// Job 0 (share 3/4): svc advances by dur/0.75.
	s0a, _ := b.Reserve(0, 0, 300)
	s0b, _ := b.Reserve(0, 0, 300)
	if s0a != 0 || s0b != 400 {
		t.Errorf("weighted hog booked at %v and %v, want 0 and 400", s0a, s0b)
	}
	// Job 1 (share 1/4): its first request fills the hog's pacing hole
	// [300,400); its clock then reads 400, so the next request goes to
	// the stripe tail (the frontier at 700 is past the clock).
	s1a, _ := b.Reserve(1, 0, 100)
	s1b, _ := b.Reserve(1, 0, 100)
	if s1a != 300 || s1b != 700 {
		t.Errorf("weighted light job booked at %v and %v, want 300 and 700", s1a, s1b)
	}
}

// TestBankIdleRebaseline: a job that was paced far ahead but then goes
// idle rebaselines its service clock — returning demand starts at the
// request instant again (one free burst, token-bucket style).
func TestBankIdleRebaseline(t *testing.T) {
	b := NewBank(1, 2, BankFair)
	for i := 0; i < 5; i++ {
		b.Reserve(0, 0, 100)
	}
	// svc[0] is now 1000; a request at t=2000 (past the clock) pays no
	// pacing debt.
	s, _ := b.Reserve(0, 2000, 100)
	if s != 2000 {
		t.Errorf("rebaselined request granted at %v, want 2000", s)
	}
}

// TestBankReset: a reset bank reproduces a fresh bank's grants exactly.
func TestBankReset(t *testing.T) {
	run := func(b *Bank) []Time {
		var out []Time
		rng := rand.New(rand.NewSource(3))
		var at Time
		for i := 0; i < 200; i++ {
			at += Time(rng.Intn(200))
			s, _ := b.Reserve(rng.Intn(2), at, Time(rng.Intn(400)+1))
			out = append(out, s)
		}
		return out
	}
	b := NewBank(2, 2, BankFair)
	first := run(b)
	b.Reset()
	second := run(b)
	fresh := run(NewBank(2, 2, BankFair))
	for i := range first {
		if first[i] != second[i] || first[i] != fresh[i] {
			t.Fatalf("grant %d: first %v, after reset %v, fresh %v", i, first[i], second[i], fresh[i])
		}
	}
}

// TestBankReserveContractEnforced: Reserve documents that reservation
// instants are non-decreasing across calls; a violating caller must
// panic (naming the job and both instants) instead of silently
// corrupting the gap lists, whose pruning assumes time moves forward.
func TestBankReserveContractEnforced(t *testing.T) {
	b := NewBank(1, 2, BankFair)
	b.Reserve(0, 100, 10)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Reserve with a decreasing instant did not panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"non-decreasing", "job 1", "50ns", "100ns"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q does not mention %q", msg, want)
			}
		}
	}()
	b.Reserve(1, 50, 10)
}

// TestBankGapTrimOnPartialExpiry: a gap straddling the reservation
// instant (start < at < end) must be trimmed to its usable future part,
// not kept whole with a stale start — after every Reserve call the gap
// lists hold only intervals at or after the call's instant.
func TestBankGapTrimOnPartialExpiry(t *testing.T) {
	b := NewBank(1, 2, BankFair)
	// Hog pacing leaves the hole [100,200) behind the frontier.
	b.Reserve(0, 0, 100) // [0,100)
	b.Reserve(0, 0, 100) // [200,300), gap [100,200)
	// A request at t=150 that does not fit the hole's remainder books at
	// the tail; the straddling gap must come out trimmed to [150,200).
	s, _ := b.Reserve(1, 150, 60)
	if s != 300 {
		t.Fatalf("oversized request granted at %v, want 300 (stripe tail)", s)
	}
	gaps := b.glinks[0].gaps
	if len(gaps) != 1 || gaps[0].start != 150 || gaps[0].end != 200 {
		t.Errorf("gap list after straddling prune: %v, want [{150 200}]", gaps)
	}
	for _, g := range gaps {
		if g.start < 150 {
			t.Errorf("gap %v survives with a start before the reservation instant 150", g)
		}
	}
}

// TestBankWCSoleDemanderFullRate: under the work-conserving policies a
// job reserving while no other job has signalled demand is not paced at
// all — back-to-back requests proceed at the full bank rate, where the
// static policy would stretch them to the job's share.
func TestBankWCSoleDemanderFullRate(t *testing.T) {
	wc := NewBank(1, 2, BankFairWC)
	static := NewBank(1, 2, BankFair)
	var at Time
	for i := 0; i < 5; i++ {
		s, e := wc.Reserve(0, at, 100)
		if s != at {
			t.Errorf("wc booking %d starts at %v, want %v (no pacing without contending demand)", i, s, at)
		}
		at = e
	}
	at = 0
	var starts []Time
	for i := 0; i < 5; i++ {
		s, e := static.Reserve(0, at, 100)
		starts = append(starts, s)
		if e > at {
			at = e
		}
	}
	if starts[4] <= 400 {
		t.Errorf("static fair booked the 5th write at %v; expected pacing beyond 400", starts[4])
	}
}

// TestBankWCRedistributesOnDemand: pacing switches on exactly while
// another job signals demand, and the paced job's holes remain fillable
// — including by the hog itself once the contender withdraws.
func TestBankWCRedistributesOnDemand(t *testing.T) {
	b := NewBank(1, 2, BankFairWC)
	b.IOBegin(1, 0)
	if s, _ := b.Reserve(0, 0, 100); s != 0 {
		t.Fatalf("first booking at %v, want 0", s)
	}
	// Job 1 is demanding: job 0 is paced to share 1/2, leaving [100,200).
	if s, _ := b.Reserve(0, 0, 100); s != 200 {
		t.Fatalf("contended booking at %v, want 200 (share 1/2 pacing)", s)
	}
	b.IOEnd(1, 0)
	// Contender gone: the hog's own next request fills the hole it left.
	if s, _ := b.Reserve(0, 0, 100); s != 100 {
		t.Fatalf("post-contention booking at %v, want 100 (fills own hole)", s)
	}
	// Hole consumed; next goes at the frontier, full rate, no new holes.
	if s, _ := b.Reserve(0, 0, 100); s != 300 {
		t.Fatalf("follow-up booking at %v, want 300 (stripe frontier)", s)
	}
}

// TestBankWeightedWCShares: the work-conserving weighted share is
// computed over demanding jobs only — an idle heavyweight contributes
// nothing to the denominator.
func TestBankWeightedWCShares(t *testing.T) {
	b := NewBank(1, 3, BankWeightedWC)
	b.SetWeight(1, 4)
	b.SetWeight(2, 4)
	// Only job 1 (weight 4) demands: job 0's share is 1/(1+4), so its
	// service clock advances by 5x the booked time.
	b.IOBegin(1, 0)
	b.Reserve(0, 0, 100)
	if s, _ := b.Reserve(0, 0, 100); s != 500 {
		t.Errorf("booking under 1/5 share at %v, want 500", s)
	}
	// Job 2 (also weight 4) joins: share drops to 1/9.
	b.IOBegin(2, 0)
	if s, _ := b.Reserve(0, 0, 100); s != 1000 {
		t.Errorf("booking under 1/9 share at %v, want 1000 (svc 500 + 100/(1/9) advance books at prior svc)", s)
	}
}

// TestBankWCDebtForgiveness: pacing debt accumulated under contention is
// forgiven when the contenders withdraw — the returning sole demander
// books from the request instant, not from its inflated service clock.
func TestBankWCDebtForgiveness(t *testing.T) {
	b := NewBank(1, 2, BankFairWC)
	b.IOBegin(1, 0)
	for i := 0; i < 5; i++ {
		b.Reserve(0, 0, 100) // svc[0] inflates to 1000 under share 1/2
	}
	b.IOEnd(1, 0)
	// The static policies would grant no earlier than svc; the WC policy
	// books at the earliest feasible instant instead. The holes at
	// [100,200), [300,400), ... are still open — the earliest is 100.
	if s, _ := b.Reserve(0, 0, 100); s != 100 {
		t.Errorf("sole demander granted at %v, want 100 (earliest hole, debt forgiven)", s)
	}
}

// TestBankDemandAccounting: IOBegin/IOEnd reference-count per job and
// accumulate closed intervals into JobDemand; unmatched IOEnd panics.
func TestBankDemandAccounting(t *testing.T) {
	b := NewBank(2, 2, BankFairWC)
	b.IOBegin(0, 100)
	if !b.Demanding(0) || b.Demanding(1) {
		t.Fatalf("demand flags wrong after IOBegin(0): %v %v", b.Demanding(0), b.Demanding(1))
	}
	b.IOBegin(0, 150) // second rank of the same job: nested
	b.IOEnd(0, 300)
	if !b.Demanding(0) {
		t.Fatal("job 0 stopped demanding while one operation is still open")
	}
	b.IOEnd(0, 400)
	if b.Demanding(0) {
		t.Fatal("job 0 still demanding after both operations ended")
	}
	if got := b.JobDemand(0); got != 300 {
		t.Errorf("JobDemand(0) = %v, want 300 (one closed interval [100,400))", got)
	}
	b.Reset()
	if b.Demanding(0) || b.JobDemand(0) != 0 {
		t.Error("Reset did not clear demand state")
	}
	defer func() {
		if recover() == nil {
			t.Error("IOEnd without IOBegin did not panic")
		}
	}()
	b.IOEnd(1, 500)
}

// TestBankResetDropsFaultsAndDemand: a bank carrying stripe fault
// windows and open demand refcounts repools cleanly. After Reset it is
// grant-for-grant identical to a fresh bank (fault windows are per-run
// campaign state the owner re-applies, open demand is stale), and
// re-applying the same campaign reproduces the faulted grants exactly —
// the reuse guarantee the cluster engine pool relies on.
func TestBankResetDropsFaultsAndDemand(t *testing.T) {
	fs := []StripeFault{{Start: 100, End: 600, Rate: 0}, {Start: 900, End: 1400, Rate: 0.5}}
	run := func(b *Bank, faulted bool) []Time {
		if faulted {
			b.SetStripeFaults(1, fs)
		}
		var out []Time
		rng := rand.New(rand.NewSource(9))
		var at Time
		for i := 0; i < 150; i++ {
			at += Time(rng.Intn(150))
			job := rng.Intn(2)
			if i%17 == 0 {
				// Deliberately left open: Reset must clear the refcount.
				b.IOBegin(job, at)
			}
			s, e := b.Reserve(job, at, Time(rng.Intn(300)+1))
			out = append(out, s, e)
		}
		return out
	}
	equal := func(a, b []Time) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	b := NewBank(2, 2, BankFairWC)
	faulted := run(b, true)
	if !b.Faulted() {
		t.Fatal("bank does not report installed fault windows")
	}
	b.Reset()
	if b.Faulted() {
		t.Fatal("Reset kept fault windows")
	}
	clean := run(b, false)
	if !equal(clean, run(NewBank(2, 2, BankFairWC), false)) {
		t.Fatal("reused bank diverges from a fresh clean bank")
	}
	if equal(faulted, clean) {
		t.Fatal("fault windows changed no grant; the regression test is vacuous")
	}
	b.Reset()
	if !equal(faulted, run(b, true)) {
		t.Fatal("re-applied campaign diverges from the first faulted run")
	}
}
