package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// ParticleField describes how computational particles are loaded over a
// 3-D Cartesian domain decomposition. iPIC3D's GEM magnetic-reconnection
// setup concentrates plasma in a Harris current sheet across the middle of
// the domain, which is what makes the per-process particle counts skewed
// (paper Section IV-D).
type ParticleField struct {
	// Dims are the process-grid dimensions.
	Dims [3]int
	// PerProcMean is the average number of particles per process.
	PerProcMean int64
	// SheetWidth is the Harris sheet half-width as a fraction of the Y
	// extent (density ~ sech^2((y-y0)/w)).
	SheetWidth float64
	// Background is the uniform background density fraction (0..1).
	Background float64
	// Seed drives deterministic per-process jitter.
	Seed int64
}

// DefaultGEM returns a GEM-challenge-shaped loading for the given process
// grid and mean load.
func DefaultGEM(dims [3]int, perProcMean int64, seed int64) ParticleField {
	return ParticleField{
		Dims:        dims,
		PerProcMean: perProcMean,
		SheetWidth:  0.22,
		Background:  0.35,
		Seed:        seed,
	}
}

// Validate reports whether the field is usable.
func (f ParticleField) Validate() error {
	for _, d := range f.Dims {
		if d <= 0 {
			return fmt.Errorf("workload: particle field dims %v", f.Dims)
		}
	}
	if f.PerProcMean <= 0 {
		return fmt.Errorf("workload: PerProcMean %d", f.PerProcMean)
	}
	if f.SheetWidth <= 0 || f.Background < 0 || f.Background > 1 {
		return fmt.Errorf("workload: sheet width %v / background %v", f.SheetWidth, f.Background)
	}
	return nil
}

// density evaluates the unnormalized Harris-sheet density at fractional
// position y in [0,1).
func (f ParticleField) density(y float64) float64 {
	s := 1 / math.Cosh((y-0.5)/f.SheetWidth)
	return f.Background + (1-f.Background)*s*s
}

// Count reports the deterministic particle count of the process at
// coordinates (x, y, z) on the process grid: the Harris profile across Y
// plus a few percent of per-process jitter.
func (f ParticleField) Count(coords [3]int) int64 {
	ny := f.Dims[1]
	y := (float64(coords[1]) + 0.5) / float64(ny)
	// Normalize so that the mean over all processes is PerProcMean.
	var sum float64
	for j := 0; j < ny; j++ {
		sum += f.density((float64(j) + 0.5) / float64(ny))
	}
	mean := sum / float64(ny)
	base := float64(f.PerProcMean) * f.density(y) / mean
	id := int64(coords[0]*f.Dims[1]*f.Dims[2] + coords[1]*f.Dims[2] + coords[2])
	rng := rand.New(sim.NewSplitMix(sim.Mix64(f.Seed, id)))
	jitter := 1 + 0.05*rng.NormFloat64()
	if jitter < 0.5 {
		jitter = 0.5
	}
	n := int64(base * jitter)
	if n < 1 {
		n = 1
	}
	return n
}

// Total sums the particle counts over the whole process grid.
func (f ParticleField) Total() int64 {
	var total int64
	for x := 0; x < f.Dims[0]; x++ {
		for y := 0; y < f.Dims[1]; y++ {
			for z := 0; z < f.Dims[2]; z++ {
				total += f.Count([3]int{x, y, z})
			}
		}
	}
	return total
}

// CoV reports the coefficient of variation of per-process counts — the
// imbalance measure that makes particle operations good decoupling
// candidates (Section II-E, "large execution time variance").
func (f ParticleField) CoV() float64 {
	n := f.Dims[0] * f.Dims[1] * f.Dims[2]
	var sum, sumsq float64
	for x := 0; x < f.Dims[0]; x++ {
		for y := 0; y < f.Dims[1]; y++ {
			for z := 0; z < f.Dims[2]; z++ {
				c := float64(f.Count([3]int{x, y, z}))
				sum += c
				sumsq += c * c
			}
		}
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean
}

// ExitFraction reports the deterministic fraction of a process's particles
// that leave its subdomain per step, given a nominal CFL-like mobility.
// Processes in the high-gradient sheet region shed slightly more.
func (f ParticleField) ExitFraction(coords [3]int, mobility float64) float64 {
	y := (float64(coords[1]) + 0.5) / float64(f.Dims[1])
	grad := math.Abs(f.density(y+0.01) - f.density(y-0.01))
	frac := mobility * (1 + 5*grad)
	if frac > 0.5 {
		frac = 0.5
	}
	return frac
}

// Imbalance builds a vector of n per-process workload multipliers with the
// given coefficient of variation, for synthetic two-operation experiments.
func Imbalance(n int, cov float64, seed int64) []float64 {
	out := make([]float64, n)
	rng := rand.New(sim.NewSplitMix(seed))
	for i := range out {
		v := 1 + cov*rng.NormFloat64()
		if v < 0.1 {
			v = 0.1
		}
		out[i] = v
	}
	return out
}
