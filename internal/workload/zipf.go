// Package workload generates the deterministic synthetic inputs that
// stand in for the paper's datasets: a Zipf-distributed text corpus with
// skewed file sizes (for the Wikipedia/PUMA logs of the MapReduce study)
// and skewed particle distributions (for iPIC3D's GEM challenge setup).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Corpus describes a synthetic log-file collection. Natural language has a
// Zipf word distribution, which is what makes the MapReduce reduce
// operation irregular across processes (paper Section IV-B).
type Corpus struct {
	// Files is the number of log files.
	Files int
	// MinFileBytes and MaxFileBytes bound the per-file size skew (the
	// paper's files range from 256 MB to 1 GB).
	MinFileBytes int64
	MaxFileBytes int64
	// Vocabulary is the number of distinct words.
	Vocabulary int
	// ZipfS is the Zipf exponent (> 1). Natural language is near 1.1.
	ZipfS float64
	// MeanWordLen is the average word length in bytes, spaces included.
	MeanWordLen int
	// Seed drives the deterministic generation.
	Seed int64
}

// DefaultCorpus mirrors the paper's setup shape at a configurable scale:
// file sizes skewed over a 4x range, Zipfian vocabulary.
func DefaultCorpus(files int, meanFileBytes int64, seed int64) Corpus {
	return Corpus{
		Files:        files,
		MinFileBytes: meanFileBytes / 2,
		MaxFileBytes: meanFileBytes * 2,
		Vocabulary:   50_000,
		ZipfS:        1.1,
		MeanWordLen:  6,
		Seed:         seed,
	}
}

// Validate reports whether the corpus parameters are usable.
func (c Corpus) Validate() error {
	if c.Files <= 0 {
		return fmt.Errorf("workload: corpus needs files, got %d", c.Files)
	}
	if c.MinFileBytes <= 0 || c.MaxFileBytes < c.MinFileBytes {
		return fmt.Errorf("workload: bad file size range [%d,%d]", c.MinFileBytes, c.MaxFileBytes)
	}
	if c.Vocabulary <= 0 {
		return fmt.Errorf("workload: empty vocabulary")
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf exponent %v must exceed 1", c.ZipfS)
	}
	if c.MeanWordLen <= 0 {
		return fmt.Errorf("workload: mean word length %d", c.MeanWordLen)
	}
	return nil
}

// FileBytes reports the deterministic size of file i, log-uniformly
// distributed over [MinFileBytes, MaxFileBytes].
func (c Corpus) FileBytes(i int) int64 {
	if i < 0 || i >= c.Files {
		panic(fmt.Sprintf("workload: file %d of %d", i, c.Files))
	}
	rng := rand.New(sim.NewSplitMix(sim.Mix64(c.Seed, int64(i))))
	lo, hi := math.Log(float64(c.MinFileBytes)), math.Log(float64(c.MaxFileBytes))
	return int64(math.Exp(lo + rng.Float64()*(hi-lo)))
}

// TotalBytes sums all file sizes.
func (c Corpus) TotalBytes() int64 {
	var total int64
	for i := 0; i < c.Files; i++ {
		total += c.FileBytes(i)
	}
	return total
}

// WordsIn estimates the number of words in file i.
func (c Corpus) WordsIn(i int) int64 {
	return c.FileBytes(i) / int64(c.MeanWordLen)
}

// Words returns a deterministic pseudo-text sample of n words from file i
// as vocabulary indices (rank 0 is the most frequent word). It is used by
// correctness tests and the real word-count kernels; the at-scale
// simulation uses WordsIn and Histogram instead of materializing text.
func (c Corpus) Words(i, n int) []int {
	rng := rand.New(sim.NewSplitMix(sim.Mix64(c.Seed, int64(i)+1_000_003)))
	z := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Vocabulary-1))
	out := make([]int, n)
	for j := range out {
		out[j] = int(z.Uint64())
	}
	return out
}

// WordString renders vocabulary index v as a word token.
func WordString(v int) string { return fmt.Sprintf("w%06d", v) }

// DistinctEstimate estimates the number of distinct words in a sample of n
// Zipf draws, using the harmonic approximation. It drives the size of the
// intermediate key set in the simulated MapReduce.
func (c Corpus) DistinctEstimate(n int64) int64 {
	if n <= 0 {
		return 0
	}
	// Fraction of vocabulary seen saturates as n grows; a standard
	// coupon-collector-with-skew approximation.
	v := float64(c.Vocabulary)
	est := v * (1 - math.Exp(-float64(n)/v))
	return int64(est)
}
