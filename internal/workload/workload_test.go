package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorpusValidate(t *testing.T) {
	c := DefaultCorpus(100, 1<<20, 1)
	if err := c.Validate(); err != nil {
		t.Fatalf("default corpus invalid: %v", err)
	}
	bad := c
	bad.ZipfS = 1.0
	if bad.Validate() == nil {
		t.Error("zipf s=1 accepted")
	}
	bad = c
	bad.MaxFileBytes = bad.MinFileBytes - 1
	if bad.Validate() == nil {
		t.Error("inverted size range accepted")
	}
}

func TestFileBytesDeterministicAndBounded(t *testing.T) {
	c := DefaultCorpus(200, 1<<20, 42)
	for i := 0; i < c.Files; i++ {
		a, b := c.FileBytes(i), c.FileBytes(i)
		if a != b {
			t.Fatalf("file %d nondeterministic: %d vs %d", i, a, b)
		}
		if a < c.MinFileBytes || a > c.MaxFileBytes {
			t.Fatalf("file %d size %d outside [%d,%d]", i, a, c.MinFileBytes, c.MaxFileBytes)
		}
	}
}

func TestFileSizesVary(t *testing.T) {
	c := DefaultCorpus(100, 1<<20, 7)
	sizes := map[int64]bool{}
	for i := 0; i < c.Files; i++ {
		sizes[c.FileBytes(i)] = true
	}
	if len(sizes) < 90 {
		t.Fatalf("only %d distinct sizes among 100 files", len(sizes))
	}
}

func TestZipfWordsSkewed(t *testing.T) {
	c := DefaultCorpus(10, 1<<20, 3)
	words := c.Words(0, 50_000)
	counts := map[int]int{}
	for _, w := range words {
		counts[w]++
	}
	// Zipf: the most common word should appear far more often than the
	// median word, and low indices should dominate.
	if counts[0] < 100 {
		t.Fatalf("rank-0 word appeared only %d times in 50k draws", counts[0])
	}
	topShare := float64(counts[0]+counts[1]+counts[2]) / 50_000
	if topShare < 0.05 {
		t.Fatalf("top-3 words cover only %.3f of the text", topShare)
	}
}

func TestWordsDeterministic(t *testing.T) {
	c := DefaultCorpus(10, 1<<20, 5)
	a, b := c.Words(3, 100), c.Words(3, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Words nondeterministic")
		}
	}
	other := c.Words(4, 100)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different files produced identical text")
	}
}

func TestDistinctEstimateMonotoneAndBounded(t *testing.T) {
	c := DefaultCorpus(10, 1<<20, 1)
	prev := int64(-1)
	for _, n := range []int64{0, 10, 1000, 100_000, 10_000_000} {
		d := c.DistinctEstimate(n)
		if d < prev {
			t.Fatalf("distinct estimate not monotone at n=%d", n)
		}
		if d > int64(c.Vocabulary) {
			t.Fatalf("distinct estimate %d exceeds vocabulary %d", d, c.Vocabulary)
		}
		prev = d
	}
}

func TestWordString(t *testing.T) {
	if WordString(42) != "w000042" {
		t.Fatalf("WordString(42) = %q", WordString(42))
	}
}

func TestGEMFieldShape(t *testing.T) {
	f := DefaultGEM([3]int{4, 8, 4}, 100_000, 9)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid GEM field: %v", err)
	}
	// The sheet runs across the middle of Y: center processes must hold
	// far more particles than edge processes.
	center := f.Count([3]int{2, 4, 2})
	edge := f.Count([3]int{2, 0, 2})
	if center < 2*edge {
		t.Fatalf("no sheet concentration: center=%d edge=%d", center, edge)
	}
}

func TestGEMMeanApproximatesTarget(t *testing.T) {
	f := DefaultGEM([3]int{4, 8, 4}, 50_000, 11)
	total := f.Total()
	procs := int64(4 * 8 * 4)
	mean := total / procs
	if mean < 45_000 || mean > 55_000 {
		t.Fatalf("mean load %d, want ~50000", mean)
	}
}

func TestGEMCoVPositive(t *testing.T) {
	f := DefaultGEM([3]int{4, 8, 4}, 50_000, 11)
	cov := f.CoV()
	if cov < 0.2 {
		t.Fatalf("GEM loading CoV = %v, expected substantial skew", cov)
	}
	uniform := f
	uniform.Background = 1.0 // kills the sheet
	if u := uniform.CoV(); u > cov/2 {
		t.Fatalf("uniform background CoV %v not much below sheet CoV %v", u, cov)
	}
}

func TestGEMDeterministic(t *testing.T) {
	f := DefaultGEM([3]int{2, 4, 2}, 10_000, 13)
	for x := 0; x < 2; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 2; z++ {
				c := [3]int{x, y, z}
				if f.Count(c) != f.Count(c) {
					t.Fatal("Count nondeterministic")
				}
			}
		}
	}
}

func TestExitFractionBounded(t *testing.T) {
	f := DefaultGEM([3]int{4, 8, 4}, 50_000, 1)
	for y := 0; y < 8; y++ {
		frac := f.ExitFraction([3]int{0, y, 0}, 0.05)
		if frac <= 0 || frac > 0.5 {
			t.Fatalf("exit fraction %v at y=%d out of range", frac, y)
		}
	}
}

func TestImbalanceVector(t *testing.T) {
	v := Imbalance(1000, 0.3, 17)
	var sum, sumsq float64
	for _, x := range v {
		if x < 0.1 {
			t.Fatalf("multiplier %v below floor", x)
		}
		sum += x
		sumsq += x * x
	}
	mean := sum / 1000
	sd := math.Sqrt(sumsq/1000 - mean*mean)
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("imbalance mean %v, want ~1", mean)
	}
	if sd/mean < 0.2 || sd/mean > 0.4 {
		t.Fatalf("imbalance CoV %v, want ~0.3", sd/mean)
	}
}

// Property: particle counts are always positive and deterministic for any
// grid coordinate.
func TestCountPositiveProperty(t *testing.T) {
	f := DefaultGEM([3]int{8, 8, 8}, 10_000, 23)
	prop := func(x, y, z uint8) bool {
		c := [3]int{int(x) % 8, int(y) % 8, int(z) % 8}
		n := f.Count(c)
		return n >= 1 && n == f.Count(c)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
