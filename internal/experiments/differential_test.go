package experiments

import (
	"bytes"
	"testing"
)

// TestFiberRowsBitIdentical is the determinism contract for the
// step-function process representation: every registered experiment —
// the figures, the ablations and the multi-world cosched sweep — run at
// reduced scale with goroutine rank bodies and with fiber rank bodies,
// must produce byte-identical row output. Experiments whose bodies have
// fiber ports (model, the synthetic ablations, fig6, cosched's
// co-scheduled worlds) exercise the fiber runtime end to end; the rest
// guard that the option plumbing alone changes nothing.
func TestFiberRowsBitIdentical(t *testing.T) {
	// Fibers are the suite-wide default (REPRO_FIBERS=1 in CI); this test
	// is the one place the goroutine representation must really run, so
	// neutralize the environment override for the fibers=false half.
	t.Setenv("REPRO_FIBERS", "0")
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			render := func(fibers bool) []byte {
				opts := Options{MaxProcs: 32, Runs: 2, Workers: 2, Fibers: fibers}
				if testing.Short() {
					opts.Runs = 1 // the race-checked CI job runs -short
				}
				rows, err := Registry[name](opts)
				if err != nil {
					t.Fatalf("fibers=%v: %v", fibers, err)
				}
				var buf bytes.Buffer
				if err := FormatCSV(&buf, rows); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			procRows := render(false)
			fiberRows := render(true)
			if !bytes.Equal(procRows, fiberRows) {
				t.Errorf("rows differ between representations\n--- goroutines ---\n%s--- fibers ---\n%s",
					procRows, fiberRows)
			}
		})
	}
}
