package experiments

import (
	"bytes"
	"testing"
)

// TestCoresRowsBitIdentical is the determinism contract for the engine's
// conservative parallel mode at the experiment level: fig8 regenerated
// with 1, 2, 4 and 8 workers — in both process representations — must
// produce byte-identical row output. (Cores >= 1 is its own trajectory
// family: every cross-rank delivery carries the sender's program order
// as a tie-break priority, so the classic Cores == 0 rows are pinned by
// the other suites, not compared here.)
func TestCoresRowsBitIdentical(t *testing.T) {
	t.Setenv("REPRO_FIBERS", "0")
	for _, fibers := range []bool{false, true} {
		render := func(cores int) []byte {
			opts := Options{MaxProcs: 32, Runs: 2, Workers: 2, Fibers: fibers, FibersExplicit: true, Cores: cores}
			if testing.Short() {
				opts.Runs = 1 // the race-checked CI job runs -short
			}
			rows, err := Registry["fig8"](opts)
			if err != nil {
				t.Fatalf("fibers=%v cores=%d: %v", fibers, cores, err)
			}
			var buf bytes.Buffer
			if err := FormatCSV(&buf, rows); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		ref := render(1)
		for _, cores := range []int{2, 4, 8} {
			if got := render(cores); !bytes.Equal(got, ref) {
				t.Errorf("fibers=%v: rows differ between cores=1 and cores=%d\n--- cores=1 ---\n%s--- cores=%d ---\n%s",
					fibers, cores, ref, cores, got)
			}
		}
	}
}
