package experiments

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mpi"
)

// TestCoresRowsBitIdentical is the determinism contract for the engine's
// conservative parallel mode at the experiment level: fig8 regenerated
// with 1, 2, 4 and 8 workers — in both process representations — must
// produce byte-identical row output. (Cores >= 1 is its own trajectory
// family: every cross-rank delivery carries the sender's program order
// as a tie-break priority, so the classic Cores == 0 rows are pinned by
// the other suites, not compared here.)
func TestCoresRowsBitIdentical(t *testing.T) {
	t.Setenv("REPRO_FIBERS", "0")
	for _, fibers := range []bool{false, true} {
		render := func(cores int) []byte {
			opts := Options{MaxProcs: 32, Runs: 2, Workers: 2, Fibers: fibers, FibersExplicit: true, Cores: cores}
			if testing.Short() {
				opts.Runs = 1 // the race-checked CI job runs -short
			}
			rows, err := Registry["fig8"](opts)
			if err != nil {
				t.Fatalf("fibers=%v cores=%d: %v", fibers, cores, err)
			}
			var buf bytes.Buffer
			if err := FormatCSV(&buf, rows); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		ref := render(1)
		for _, cores := range []int{2, 4, 8} {
			if got := render(cores); !bytes.Equal(got, ref) {
				t.Errorf("fibers=%v: rows differ between cores=1 and cores=%d\n--- cores=1 ---\n%s--- cores=%d ---\n%s",
					fibers, cores, ref, cores, got)
			}
		}
	}
}

// TestFigCoresRowsBitIdentical extends the parallel-mode determinism
// contract to the other weak-scaling figures: fig5, fig6 and fig7
// regenerated with 1, 2, 4 and 8 workers — in both process
// representations — must produce byte-identical row output. These
// experiments involve no shared file, so their sharded trajectory family
// coincides with the classic one; the Cores == 0 rendering is held to
// the same bytes to pin that down.
func TestFigCoresRowsBitIdentical(t *testing.T) {
	t.Setenv("REPRO_FIBERS", "0")
	for _, name := range []string{"fig5", "fig6", "fig7"} {
		for _, fibers := range []bool{false, true} {
			render := func(cores int) []byte {
				opts := Options{MaxProcs: 32, Runs: 2, Workers: 2, Fibers: fibers, FibersExplicit: true, Cores: cores}
				if testing.Short() {
					opts.Runs = 1
				}
				rows, err := Registry[name](opts)
				if err != nil {
					t.Fatalf("%s fibers=%v cores=%d: %v", name, fibers, cores, err)
				}
				var buf bytes.Buffer
				if err := FormatCSV(&buf, rows); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			ref := render(1)
			for _, cores := range []int{0, 2, 4, 8} {
				if got := render(cores); !bytes.Equal(got, ref) {
					t.Errorf("%s fibers=%v: rows differ between cores=1 and cores=%d\n--- cores=1 ---\n%s--- cores=%d ---\n%s",
						name, fibers, cores, ref, cores, got)
				}
			}
		}
	}
}

// TestCoschedCoresRowsBitIdentical is the sharded co-scheduling
// determinism contract: the cosched sweep — all five inter-job bank
// policies, with their cross-shard reservation and demand-signal
// traffic — regenerated with 1, 2, 4 and 8 workers in both process
// representations must produce byte-identical row output. (The sharded
// bank spends a lookahead window each way per reservation, so Cores >= 1
// is its own trajectory family; the classic Cores == 0 rows are pinned
// by the cosched golden suite, not compared here.)
func TestCoschedCoresRowsBitIdentical(t *testing.T) {
	t.Setenv("REPRO_FIBERS", "0")
	for _, fibers := range []bool{false, true} {
		render := func(cores int) []byte {
			// CoschedPolicy left empty sweeps all five policies.
			opts := Options{MaxProcs: 32, Runs: 2, Workers: 2, Fibers: fibers, FibersExplicit: true,
				CoschedJobs: 2, Cores: cores}
			if testing.Short() {
				opts.Runs = 1
			}
			rows, err := Registry["cosched"](opts)
			if err != nil {
				t.Fatalf("fibers=%v cores=%d: %v", fibers, cores, err)
			}
			var buf bytes.Buffer
			if err := FormatCSV(&buf, rows); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		ref := render(1)
		for _, cores := range []int{2, 4, 8} {
			if got := render(cores); !bytes.Equal(got, ref) {
				t.Errorf("fibers=%v: cosched rows differ between cores=1 and cores=%d\n--- cores=1 ---\n%s--- cores=%d ---\n%s",
					fibers, cores, ref, cores, got)
			}
		}
	}
}

// TestNonShardableExperimentsRejectCores: every experiment outside the
// Shardable set must reject -cores with the unified CannotShardError
// (naming the feature and the flag to drop) instead of silently ignoring
// it or failing deep inside a run.
func TestNonShardableExperimentsRejectCores(t *testing.T) {
	for name := range Registry {
		if Shardable[name] {
			continue
		}
		_, err := Registry[name](Options{MaxProcs: 32, Runs: 1, Workers: 1, Cores: 2})
		if err == nil {
			t.Errorf("%s: no error with Cores=2", name)
			continue
		}
		var cse *mpi.CannotShardError
		if !errors.As(err, &cse) {
			t.Errorf("%s: error %v is not a CannotShardError", name, err)
			continue
		}
		if cse.Flag != "-cores" {
			t.Errorf("%s: CannotShardError names flag %q, want -cores", name, cse.Flag)
		}
	}
}
