package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// tiny keeps experiment tests fast.
func tiny() Options { return Options{MaxProcs: 64, Runs: 1} }

func TestSweep(t *testing.T) {
	s := sweep(256)
	want := []int{32, 64, 128, 256}
	if len(s) != len(want) {
		t.Fatalf("sweep = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sweep = %v", s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, name := range []string{"fig5", "fig6", "fig7", "fig8",
		"ablation-granularity", "ablation-alpha", "ablation-fcfs", "model",
		"cosched", "recovery", "resilience", "lossy"} {
		if Registry[name] == nil {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(Names()) != len(Registry) {
		t.Error("Names() incomplete")
	}
}

func TestFig5RowsShape(t *testing.T) {
	rows, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x (1 reference + 3 alphas).
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Fatalf("non-positive time in %+v", r)
		}
	}
	// Decoupled must beat the reference at 64 procs.
	var ref, dec float64
	for _, r := range rows {
		if r.Procs == 64 && r.Series == "Reference" {
			ref = r.Seconds
		}
		if r.Procs == 64 && strings.Contains(r.Series, "6.25") {
			dec = r.Seconds
		}
	}
	if dec <= 0 || ref <= dec {
		t.Fatalf("fig5 at 64 procs: ref=%v dec=%v", ref, dec)
	}
}

func TestFig6RowsShape(t *testing.T) {
	rows, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	series := map[string]bool{}
	for _, r := range rows {
		series[r.Series] = true
	}
	for _, want := range []string{"Reference (Blocking)", "Reference (Non-blocking)", "Decoupling"} {
		if !series[want] {
			t.Errorf("missing series %q", want)
		}
	}
}

func TestFig7And8Rows(t *testing.T) {
	rows, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fig7 rows = %d", len(rows))
	}
	rows, err = Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("fig8 rows = %d", len(rows))
	}
}

func TestSyntheticConventionalMatchesEq1(t *testing.T) {
	c := DefaultSynthetic(32)
	c.ImbalanceCoV = 0.0001 // nearly balanced
	got, err := RunSyntheticConventional(c)
	if err != nil {
		t.Fatal(err)
	}
	want := model.Conventional(c.ModelParams())
	ratio := float64(got) / float64(want)
	if ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("conventional measured %v vs Eq1 %v (ratio %.3f)", got, want, ratio)
	}
}

func TestSyntheticDecoupledBeatsConventional(t *testing.T) {
	c := DefaultSynthetic(64)
	conv, err := RunSyntheticConventional(c)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := RunSyntheticDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	if dec >= conv {
		t.Fatalf("decoupled (%v) not faster than conventional (%v)", dec, conv)
	}
}

func TestGranularityAblationHasInteriorOptimum(t *testing.T) {
	rows, err := AblationGranularity(Options{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var meas []Row
	for _, r := range rows {
		if r.Series == "Decoupling" {
			meas = append(meas, r)
		}
	}
	if len(meas) < 5 {
		t.Fatalf("only %d measured points", len(meas))
	}
	best := 0
	for i, r := range meas {
		if r.Seconds < meas[best].Seconds {
			best = i
		}
	}
	if best == 0 || best == len(meas)-1 {
		t.Fatalf("optimum at boundary (index %d of %d): fine grains should pay overhead, coarse grains should lose pipelining", best, len(meas))
	}
}

func TestFCFSAblation(t *testing.T) {
	rows, err := AblationFCFS(Options{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fcfs, fixed float64
	for _, r := range rows {
		switch r.Series {
		case "FCFS (consumer idle)":
			fcfs = r.Seconds
		case "Fixed order (consumer idle)":
			fixed = r.Seconds
		}
	}
	if fcfs <= 0 || fixed < fcfs {
		t.Fatalf("FCFS %.3fs should not exceed fixed order %.3fs", fcfs, fixed)
	}
}

func TestModelValidationAgreement(t *testing.T) {
	rows, err := ModelValidation(Options{MaxProcs: 64, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	bySeries := map[string]map[int]float64{}
	for _, r := range rows {
		if bySeries[r.Series] == nil {
			bySeries[r.Series] = map[int]float64{}
		}
		bySeries[r.Series][r.Procs] = r.Seconds
	}
	for p, measured := range bySeries["Conventional (measured)"] {
		predicted := bySeries["Conventional (Eq1)"][p]
		if ratio := measured / predicted; ratio < 0.8 || ratio > 1.5 {
			t.Errorf("procs=%d conventional measured/Eq1 = %.3f", p, ratio)
		}
	}
	for p, measured := range bySeries["Decoupled (measured)"] {
		predicted := bySeries["Decoupled (Eq4)"][p]
		// Eq4 is deliberately pessimistic (it assumes Op1 always
		// finishes last), so measurement may be faster.
		if ratio := measured / predicted; ratio < 0.3 || ratio > 1.5 {
			t.Errorf("procs=%d decoupled measured/Eq4 = %.3f", p, ratio)
		}
	}
}

func TestFig2Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Reference implementation") ||
		!strings.Contains(out, "Decoupled implementation") {
		t.Fatalf("missing panels:\n%s", out)
	}
	if !strings.Contains(out, "P6") {
		t.Fatal("missing rank rows")
	}
}

func TestFig3Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, panel := range []string{"(a) conventional", "(b) non-blocking", "(c) decoupled"} {
		if !strings.Contains(out, panel) {
			t.Fatalf("missing panel %q:\n%s", panel, out)
		}
	}
}

func TestFormatTableAndCSV(t *testing.T) {
	rows := []Row{{Experiment: "figX", Series: "S", Procs: 32, Seconds: 1.5, StdDev: 0.1, Runs: 3}}
	var buf bytes.Buffer
	if err := FormatTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "figX") {
		t.Fatal("table missing data")
	}
	buf.Reset()
	if err := FormatCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "figX,S,32,0,1.5") {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestRunPointsAggregates(t *testing.T) {
	opts := Options{Runs: 4, Workers: 2, MaxProcs: 32}.withDefaults()
	rows, err := runPoints(opts, []point{{
		row: Row{Experiment: "x", Series: "s"},
		fn:  func(seed int64) (float64, error) { return float64(seed), nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Seconds != 2.5 {
		t.Fatalf("mean = %v", rows[0].Seconds)
	}
	if sd := rows[0].StdDev; sd < 1.2 || sd > 1.4 { // stddev of 1,2,3,4 is ~1.29
		t.Fatalf("stddev = %v", sd)
	}
	if rows[0].Runs != 4 {
		t.Fatalf("runs = %d", rows[0].Runs)
	}
}

// Worker count must not change any reported value: every (point, run)
// sample lands in its own slot and aggregation order is fixed.
func TestRunPointsWorkerCountInvariant(t *testing.T) {
	sweepOnce := func(workers int) []Row {
		opts := Options{Runs: 2, Workers: workers, MaxProcs: 64}
		rows, err := Fig7(opts)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := sweepOnce(1)
	parallel := sweepOnce(4)
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs between 1 and 4 workers:\n%+v\n%+v", i, serial[i], parallel[i])
		}
	}
}

func TestSyntheticValidate(t *testing.T) {
	c := DefaultSynthetic(32)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Alpha = 0
	if c.Validate() == nil {
		t.Fatal("alpha=0 accepted")
	}
	c = DefaultSynthetic(32)
	c.S = 0
	if c.Validate() == nil {
		t.Fatal("S=0 accepted")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	c := DefaultSynthetic(32)
	a, _ := RunSyntheticDecoupled(c)
	b, _ := RunSyntheticDecoupled(c)
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	if a <= 0 || a > 100*sim.Second {
		t.Fatalf("implausible time %v", a)
	}
}
