package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoverySmokeAndDeterminism is the recovery sweep's acceptance
// check: the decoupled variant's best-interval recovery overhead must
// undercut both references — its checkpoints ship to the I/O group off
// the critical path and its per-step memory commits bound the replay,
// while the references re-execute and re-write whole segments — and the
// sweep must replay byte-identically across invocations.
func TestRecoverySmokeAndDeterminism(t *testing.T) {
	opts := Options{Runs: 1, Workers: 2, FibersExplicit: true}
	rows, first := runAndRender(t, "recovery", opts)
	second := renderRows(t, "recovery", opts)
	if !bytes.Equal(first, second) {
		t.Errorf("recovery rows differ between invocations\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	best := map[string]float64{}
	for _, r := range rows {
		switch {
		case strings.HasSuffix(r.Series, "recovery-overhead-best"):
			best[strings.TrimSuffix(r.Series, " recovery-overhead-best")] = r.Seconds
		case strings.HasSuffix(r.Series, "wasted-frac"):
			if r.Seconds < 0 || r.Seconds >= 1 {
				t.Errorf("%s k=%g: wasted fraction %v outside [0,1)", r.Series, r.Param, r.Seconds)
			}
		case strings.HasSuffix(r.Series, "effective-makespan"), strings.HasSuffix(r.Series, "crash-inflation"):
			if r.Seconds <= 0 {
				t.Errorf("%s param=%g: non-positive value %v", r.Series, r.Param, r.Seconds)
			}
		}
	}
	for _, v := range []string{"RefColl", "RefShared", "Decoupling"} {
		if _, ok := best[v]; !ok {
			t.Fatalf("no recovery-overhead-best row for %s (have %v)", v, best)
		}
	}
	if d := best["Decoupling"]; d >= best["RefColl"] || d >= best["RefShared"] {
		t.Errorf("decoupled best overhead %v does not undercut the coupled variants (RefColl %v, RefShared %v)",
			d, best["RefColl"], best["RefShared"])
	}
}

// TestDescriptionsCoverRegistry keeps the -list help in sync with the
// experiment registry.
func TestDescriptionsCoverRegistry(t *testing.T) {
	for name := range Registry {
		if Descriptions[name] == "" {
			t.Errorf("experiment %q has no description", name)
		}
	}
	for name := range Descriptions {
		if Registry[name] == nil {
			t.Errorf("description for unregistered experiment %q", name)
		}
	}
}
