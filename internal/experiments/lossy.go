package experiments

import (
	"fmt"
	"sync"

	"repro/internal/apps/ipic3d"
	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// The lossy experiment sweeps fabric loss rate against the three Fig. 8
// particle-I/O implementations at a fixed scale. Each non-zero rate
// arms the reliable-delivery protocol (ack, virtual-time timeout,
// exponential backoff, retransmit) with a uniform per-transmission drop
// probability and a quarter-rate duplication probability; rate 0 runs
// with Faults == nil — the exact fault-free code path — so the baseline
// is byte-identical to a plain Fig. 8 run. It reports, per variant:
//
//   - one "inflation" row per non-zero rate whose Seconds column carries
//     makespan(rate) / makespan(clean) — how much the retransmission
//     traffic stretches the critical path;
//   - one "retransmits" row per non-zero rate carrying the count of
//     timer-driven re-sends the protocol issued;
//   - one "goodput" row per non-zero rate carrying logical sends over
//     total transmissions, Messages / (Messages + Retransmits);
//   - one "degradation-slope" row carrying the least-squares slope of
//     inflation over loss rate — the variant's marginal cost per unit of
//     loss. Decoupling's slope should not exceed either reference: its
//     producers pace themselves against the ack window and the I/O
//     group's buffering keeps retransmission stalls off the write path,
//     while the synchronous writers serialize every recovered message.
//     All three slopes are near zero at these rates (microsecond-scale
//     retransmissions against second-scale file I/O), so the CI gate
//     compares them with a small absolute tolerance rather than
//     strictly — it catches a variant melting down, not slope noise.
//
// The verdict-stream seeds fold the run seed (sim.Mix64), so repetitions
// see different loss placements while everything stays replayable.

// lossyProcs is the sweep's fixed world size (matching the resilience
// sweep, for comparable rows).
const lossyProcs = 64

// lossyRates are the per-transmission drop probabilities swept per
// variant. Rate 0 is the clean baseline every ratio divides by. The top
// rate stays well below the point where nine attempts (the default
// retry cap) could plausibly all be lost for any message in the run.
var lossyRates = []float64{0, 0.02, 0.05, 0.1}

// lossyOutcome is one (variant, seed) sweep: makespan, retransmit count
// and logical message count per rate.
type lossyOutcome struct {
	makespan    map[float64]float64
	retransmits map[float64]float64
	messages    map[float64]float64
}

// inflation is makespan(rate) over the clean makespan.
func (o lossyOutcome) inflation(rate float64) float64 {
	return slowdownRatio(o.makespan[rate], o.makespan[0])
}

// goodput is the fraction of transmissions that were first sends.
func (o lossyOutcome) goodput(rate float64) float64 {
	total := o.messages[rate] + o.retransmits[rate]
	if total == 0 {
		return 1
	}
	return o.messages[rate] / total
}

// slope is the least-squares slope of inflation over loss rate across
// the whole sweep (the clean point contributes inflation 1 at rate 0).
func (o lossyOutcome) slope() float64 {
	n := float64(len(lossyRates))
	var sx, sy float64
	for _, x := range lossyRates {
		sx += x
		sy += o.inflation(x)
	}
	xbar, ybar := sx/n, sy/n
	var num, den float64
	for _, x := range lossyRates {
		num += (x - xbar) * (o.inflation(x) - ybar)
		den += (x - xbar) * (x - xbar)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// lossyRun measures one variant under every loss rate at one seed. The
// sweep runs classic single-engine mode: the reliable protocol's ack and
// timer machinery is engine-local and RunIO rejects sharded lossy runs.
func lossyRun(v ipic3d.IOVariant, seed int64, fibers bool) (lossyOutcome, error) {
	out := lossyOutcome{
		makespan:    make(map[float64]float64, len(lossyRates)),
		retransmits: make(map[float64]float64, len(lossyRates)),
		messages:    make(map[float64]float64, len(lossyRates)),
	}
	for _, rate := range lossyRates {
		c := ipic3d.DefaultConfig(lossyProcs)
		c.Seed = seed
		c.Fibers = fibers
		if rate > 0 {
			mf := &netmodel.MsgFaults{
				DropSeed: sim.Mix64(0x1055, seed),
				DropRate: rate,
				DupSeed:  sim.Mix64(0xd0b1e, seed),
				DupRate:  rate / 4,
			}
			c.Faults = &faults.Injection{Msg: mf}
		}
		res, err := ipic3d.RunIO(c, v)
		if err != nil {
			return lossyOutcome{}, err
		}
		out.makespan[rate] = res.Time.Seconds()
		out.retransmits[rate] = float64(res.Retransmits)
		out.messages[rate] = float64(res.Messages)
	}
	return out, nil
}

// lossyMemo shares one lossyRun per (variant, seed) between that
// variant's rows — the per-rate ratios and the slope all read the same
// sweep. Same shape and safety argument as resilienceMemo.
type lossyMemo struct {
	compute func(seed int64) (lossyOutcome, error)
	mu      sync.Mutex
	entries map[int64]*lossyEntry
}

type lossyEntry struct {
	once sync.Once
	out  lossyOutcome
	err  error
}

func (m *lossyMemo) get(seed int64) (lossyOutcome, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[int64]*lossyEntry)
	}
	e := m.entries[seed]
	if e == nil {
		e = &lossyEntry{}
		m.entries[seed] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.out, e.err = m.compute(seed) })
	return e.out, e.err
}

// Lossy regenerates the fabric loss-rate sweep: Fig. 8 variant x drop
// probability, with makespan-inflation, retransmit-count, goodput and
// degradation-slope rows. Param carries the loss rate (0 for the slope
// row, which summarizes the whole sweep).
func Lossy(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	variants := []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled}
	var points []point
	for _, v := range variants {
		v := v
		memo := &lossyMemo{compute: func(seed int64) (lossyOutcome, error) {
			return lossyRun(v, seed, opts.Fibers)
		}}
		for _, rate := range lossyRates[1:] {
			rate := rate
			points = append(points, point{
				row: Row{Experiment: "lossy", Series: fmt.Sprintf("%s inflation", v),
					Procs: lossyProcs, Param: rate},
				fn: func(seed int64) (float64, error) {
					out, err := memo.get(seed)
					if err != nil {
						return 0, err
					}
					return out.inflation(rate), nil
				},
			})
			points = append(points, point{
				row: Row{Experiment: "lossy", Series: fmt.Sprintf("%s retransmits", v),
					Procs: lossyProcs, Param: rate},
				fn: func(seed int64) (float64, error) {
					out, err := memo.get(seed)
					if err != nil {
						return 0, err
					}
					return out.retransmits[rate], nil
				},
			})
			points = append(points, point{
				row: Row{Experiment: "lossy", Series: fmt.Sprintf("%s goodput", v),
					Procs: lossyProcs, Param: rate},
				fn: func(seed int64) (float64, error) {
					out, err := memo.get(seed)
					if err != nil {
						return 0, err
					}
					return out.goodput(rate), nil
				},
			})
		}
		points = append(points, point{
			row: Row{Experiment: "lossy", Series: fmt.Sprintf("%s degradation-slope", v),
				Procs: lossyProcs},
			fn: func(seed int64) (float64, error) {
				out, err := memo.get(seed)
				if err != nil {
					return 0, err
				}
				return out.slope(), nil
			},
		})
	}
	return runPoints(opts, points)
}
