package experiments

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestJainDegenerateInputs: an all-zero (or empty) slowdown vector must
// yield a finite fairness index — the formula's 0/0 is defined as 1, the
// all-equal limit — so a degenerate configuration cannot write NaN rows.
func TestJainDegenerateInputs(t *testing.T) {
	for _, xs := range [][]float64{{0, 0, 0}, {0}, nil} {
		if got := jain(xs); math.IsNaN(got) || got != 1 {
			t.Errorf("jain(%v) = %v, want 1", xs, got)
		}
	}
	if got := jain([]float64{2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("jain(equal) = %v, want 1", got)
	}
	if got := jain([]float64{1, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("jain(1,0,0) = %v, want 1/3", got)
	}
}

// TestSlowdownRatioDegenerateBaseline: a zero single-job baseline must
// not produce ±Inf or NaN slowdowns.
func TestSlowdownRatioDegenerateBaseline(t *testing.T) {
	cases := []struct{ shared, alone, want float64 }{
		{0, 0, 1},
		{2.5, 0, 2.5}, // degenerate: reported as the co-scheduled seconds
		{3, 2, 1.5},
	}
	for _, c := range cases {
		got := slowdownRatio(c.shared, c.alone)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("slowdownRatio(%v, %v) = %v, not finite", c.shared, c.alone, got)
		}
		if got != c.want {
			t.Errorf("slowdownRatio(%v, %v) = %v, want %v", c.shared, c.alone, got, c.want)
		}
	}
}

// coschedScenario runs the examples/cosched job mix — one full-save hog
// plus two down-sampled light jobs on a narrow shared bank — under one
// policy and reports per-job completion times.
func coschedScenario(t *testing.T, policy sim.BankPolicy, stripes int, fibers bool) cluster.Result {
	t.Helper()
	cjobs := make([]cluster.Job, 3)
	for i := range cjobs {
		cjobs[i] = coschedJob(i, 1, fibers)
	}
	res, err := cluster.Run(cluster.Config{Jobs: cjobs, Policy: policy, Stripes: stripes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoschedStaticPoliciesByteIdenticalToPR4 pins the fcfs, fair and
// priority trajectories of the cosched hog + 2-lights scenario to the
// per-job completion times recorded from the PR 4 build, for both
// process representations. The work-conserving policies and their
// demand plumbing are additive: the demand hooks are pure bookkeeping,
// so the pre-existing policies must not move by a nanosecond (and
// TrajectoryVersion stays at 2).
func TestCoschedStaticPoliciesByteIdenticalToPR4(t *testing.T) {
	want := map[sim.BankPolicy]map[int][3]sim.Time{
		sim.BankFCFS: {
			1: {3767690819, 3846167571, 3809010547},
			4: {2603231451, 1259593676, 1126918276},
		},
		sim.BankFair: {
			1: {7300235443, 2630435123, 2593278099},
			4: {2603231451, 1259593676, 1126918276},
		},
		sim.BankWeighted: {
			1: {21442742419, 1660241947, 1612776511},
			4: {5532422071, 1259593676, 1126918276},
		},
	}
	for _, fibers := range []bool{false, true} {
		for policy, byStripes := range want {
			for stripes, times := range byStripes {
				res := coschedScenario(t, policy, stripes, fibers)
				for i, w := range times {
					if res.JobTimes[i] != w {
						t.Errorf("fibers=%v %v stripes=%d job %d finished at %d, PR4 recorded %d",
							fibers, policy, stripes, i, res.JobTimes[i], w)
					}
				}
			}
		}
	}
}

// TestCoschedWorkConservingHogTail is the headline acceptance check: in
// the hog + 2-lights scenario on one stripe, once both light jobs
// finish, the hog's remaining I/O proceeds at the full bank rate under
// the work-conserving policies — its makespan lands strictly below the
// static-share policy's, the light jobs keep their static protection
// (their demand is continuous, so their share never shrinks), and the
// hog's tail beyond the last light collapses.
func TestCoschedWorkConservingHogTail(t *testing.T) {
	for _, fibers := range []bool{false, true} {
		for _, pair := range []struct{ static, wc sim.BankPolicy }{
			{sim.BankFair, sim.BankFairWC},
			{sim.BankWeighted, sim.BankWeightedWC},
		} {
			st := coschedScenario(t, pair.static, 1, fibers)
			wc := coschedScenario(t, pair.wc, 1, fibers)
			if wc.JobTimes[0] >= st.JobTimes[0] {
				t.Errorf("fibers=%v: hog makespan %v under %v is not strictly below %v under %v",
					fibers, wc.JobTimes[0], pair.wc, st.JobTimes[0], pair.static)
			}
			for i := 1; i < 3; i++ {
				if wc.JobTimes[i] > st.JobTimes[i] {
					t.Errorf("fibers=%v: light job %d degraded under %v: %v vs %v",
						fibers, i, pair.wc, wc.JobTimes[i], st.JobTimes[i])
				}
			}
			tail := func(r cluster.Result) sim.Time {
				last := sim.Max(r.JobTimes[1], r.JobTimes[2])
				if r.JobTimes[0] <= last {
					return 0
				}
				return r.JobTimes[0] - last
			}
			stTail, wcTail := tail(st), tail(wc)
			if wcTail*2 > stTail {
				t.Errorf("fibers=%v: hog tail %v under %v did not collapse vs %v under %v (want at least 2x shorter)",
					fibers, wcTail, pair.wc, stTail, pair.static)
			}
			// "Full bank rate" quantified against the unthrottled
			// baseline: under FCFS the hog is never paced at all, so its
			// completion time is the floor. The work-conserving hog pays
			// only its share while the lights are present and must land
			// within 1.5x of that floor; the static policies sit at ~1.9x
			// (fair) and ~5.7x (priority) on this scenario because their
			// pacing never relents.
			fcfs := coschedScenario(t, sim.BankFCFS, 1, fibers)
			if limit := fcfs.JobTimes[0] + fcfs.JobTimes[0]/2; wc.JobTimes[0] > limit {
				t.Errorf("fibers=%v: %v hog makespan %v is not within 1.5x of the unthrottled %v — tail not at full rate",
					fibers, pair.wc, wc.JobTimes[0], fcfs.JobTimes[0])
			}
		}
	}
}
