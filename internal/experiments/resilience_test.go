package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// runAndRender runs an experiment returning both its rows and their CSV
// bytes (renderRows in poolreuse_test.go returns the bytes alone).
func runAndRender(t *testing.T, name string, opts Options) ([]Row, []byte) {
	t.Helper()
	rows, err := Registry[name](opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var buf bytes.Buffer
	if err := FormatCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return rows, buf.Bytes()
}

// TestResilienceSmokeAndDeterminism is the resilience campaign's
// acceptance check: under the default campaign the decoupled variant's
// degradation slope must undercut both reference variants — buffered,
// overlapped I/O absorbs stripe and link faults the synchronous writers
// eat on the critical path — and the whole sweep must be byte-identical
// across invocations (campaigns are replayable, pooled engines reset
// cleanly).
func TestResilienceSmokeAndDeterminism(t *testing.T) {
	opts := Options{Runs: 1, Workers: 2, FibersExplicit: true}
	if !testing.Short() {
		opts.Runs = 2
	}
	rows, first := runAndRender(t, "resilience", opts)
	second := renderRows(t, "resilience", opts)
	if !bytes.Equal(first, second) {
		t.Errorf("resilience rows differ between invocations\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	slopes := map[string]float64{}
	for _, r := range rows {
		if strings.HasSuffix(r.Series, "degradation-slope") {
			slopes[strings.TrimSuffix(r.Series, " degradation-slope")] = r.Seconds
		}
		if strings.Contains(r.Series, "inflation") && r.Seconds <= 0 {
			t.Errorf("%s param=%g: non-positive inflation %v", r.Series, r.Param, r.Seconds)
		}
	}
	for _, v := range []string{"RefColl", "RefShared", "Decoupling"} {
		if _, ok := slopes[v]; !ok {
			t.Fatalf("no degradation-slope row for %s (have %v)", v, slopes)
		}
	}
	if d := slopes["Decoupling"]; d >= slopes["RefColl"] || d >= slopes["RefShared"] {
		t.Errorf("decoupled slope %v does not undercut the coupled variants (RefColl %v, RefShared %v)",
			d, slopes["RefColl"], slopes["RefShared"])
	}
}

// coschedFaultSpec is the stripe-only campaign the cosched fault tests
// degrade the shared bank with (rank and link events never reach a
// cluster bank; Plan compiles against zero ranks).
const coschedFaultSpec = "horizon=3s,outages=3,outage-len=800ms,derate-stripes=8,derate-rate=0.25"

// TestCoschedFaultedBankDeterminismAndNeutrality: a faulted cosched
// sweep replays byte-identically, actually perturbs the clean sweep,
// and the "none" spec keeps the sweep on the exact fault-free path.
func TestCoschedFaultedBankDeterminismAndNeutrality(t *testing.T) {
	opts := Options{Runs: 1, Workers: 2, CoschedJobs: 2, FibersExplicit: true}
	clean := renderRows(t, "cosched", opts)
	opts.FaultSpec = "none"
	none := renderRows(t, "cosched", opts)
	if !bytes.Equal(clean, none) {
		t.Errorf("FaultSpec \"none\" moved the sweep\n--- clean ---\n%s--- none ---\n%s", clean, none)
	}
	opts.FaultSpec = coschedFaultSpec
	faulted := renderRows(t, "cosched", opts)
	again := renderRows(t, "cosched", opts)
	if !bytes.Equal(faulted, again) {
		t.Errorf("faulted sweep differs between invocations\n--- first ---\n%s--- second ---\n%s", faulted, again)
	}
	if bytes.Equal(faulted, clean) {
		t.Error("stripe-fault campaign perturbed no cosched row")
	}
}

// TestCoschedFaultedBankLightIsolation: with the shared bank's stripes
// faulted under the hog + lights scenario, the isolation policies must
// still shield the light jobs — on the single contended stripe each
// light's slowdown under fair, priority and their work-conserving
// variants stays at or below its slowdown under FCFS, where the hog's
// backlog and the outages stack up in front of everyone.
func TestCoschedFaultedBankLightIsolation(t *testing.T) {
	opts := Options{Runs: 1, Workers: 2, CoschedJobs: 3, FibersExplicit: true, FaultSpec: coschedFaultSpec}
	rows, _ := runAndRender(t, "cosched", opts)
	// slowdown[policy][job] on the stripes=1 points.
	slowdown := map[string]map[string]float64{}
	for _, r := range rows {
		if r.Param != 1 || !strings.HasSuffix(r.Series, " slowdown") {
			continue
		}
		fields := strings.Fields(r.Series) // "<policy> jobs=3 <job> slowdown"
		if len(fields) != 4 {
			t.Fatalf("unexpected series shape %q", r.Series)
		}
		pol, job := fields[0], fields[2]
		if slowdown[pol] == nil {
			slowdown[pol] = map[string]float64{}
		}
		slowdown[pol][job] = r.Seconds
		if r.Seconds <= 0 {
			t.Errorf("%s stripes=1: non-positive slowdown %v", r.Series, r.Seconds)
		}
	}
	fcfs := slowdown["fcfs"]
	if fcfs == nil {
		t.Fatal("no fcfs slowdown rows found")
	}
	for _, pol := range []string{"fair", "priority", "fair-wc", "priority-wc"} {
		got := slowdown[pol]
		if got == nil {
			t.Fatalf("no %s slowdown rows found", pol)
		}
		for _, job := range []string{"j1", "j2"} {
			if got[job] > fcfs[job] {
				t.Errorf("light %s under %s slowed %v on the faulted stripe, above FCFS's %v — isolation lost",
					job, pol, got[job], fcfs[job])
			}
		}
	}
}
