// Fiber ports of the synthetic rank bodies.
//
// These are the goroutine bodies of synthetic.go rewritten as explicit
// continuation state machines (sim.StepFunc), run with World.RunFibers so
// that a cross-rank dispatch costs a method call instead of a goroutine
// switch. Every simulation operation happens in the same order with the
// same arguments as in the goroutine bodies, so the trajectories — and
// therefore every figure row — are bit-identical across representations
// (TestFiberRowsBitIdentical asserts this for the full experiment
// registry).
package experiments

import (
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
)

// runSyntheticConventionalFibers is RunSyntheticConventional's body in
// fiber form: imbalanced Op0, barrier, Op1, barrier.
func runSyntheticConventionalFibers(c SyntheticConfig, w *mpi.World, factors []float64) (sim.Time, error) {
	var makespan sim.Time
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		return r.FComputeLabeled(sim.Time(float64(c.W0)*factors[r.ID()]), "op0", func(_ *sim.Fiber) sim.StepFunc {
			// Stage boundary: data exchange and synchronization happen at
			// the completion of the operation (Section II-A).
			return world.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
				return r.FComputeLabeled(c.tw1(), "op1", func(_ *sim.Fiber) sim.StepFunc {
					return world.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
						if t := r.Now(); t > makespan {
							makespan = t
						}
						return nil
					})
				})
			})
		})
	})
	if err == nil {
		w.Release()
	}
	return makespan, err
}

// syntheticProducerFibers returns the producer-side step: compute a slice
// of Op0, inject one element, repeat; then terminate the stream. The
// inject continuation is hoisted out of the loop (sim.Then), so the
// steady-state producer allocates nothing per element.
func syntheticProducerFibers(r *mpi.Rank, st *stream.Stream, myW0 sim.Time, elements int64, elemBytes int64, done sim.StepFunc) sim.StepFunc {
	slice := myW0 / sim.Time(elements)
	e := int64(0)
	var loop sim.StepFunc
	inject := sim.Then(func() { st.Isend(r, stream.Element{Bytes: elemBytes}) }, &loop)
	loop = func(_ *sim.Fiber) sim.StepFunc {
		if e >= elements {
			st.Terminate(r)
			return done
		}
		e++
		return r.FComputeLabeled(slice, "op0", inject)
	}
	return loop
}

// runSyntheticDecoupledFibers is RunSyntheticDecoupled's body in fiber
// form.
func runSyntheticDecoupledFibers(c SyntheticConfig, w *mpi.World, producers int, factors []float64) (sim.Time, error) {
	var makespan sim.Time
	perProducer := c.D / int64(producers)
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		role := stream.Producer
		if r.ID() >= producers {
			role = stream.Consumer
		}
		return stream.FCreateChannel(r, world, role, func(ch *stream.Channel) sim.StepFunc {
			st := ch.Attach(r, stream.Options{ElementBytes: c.S, InjectOverhead: c.Overhead})
			finish := func(_ *sim.Fiber) sim.StepFunc {
				return ch.FFree(r, func(_ *sim.Fiber) sim.StepFunc {
					if t := r.Now(); t > makespan {
						makespan = t
					}
					return nil
				})
			}
			if role == stream.Producer {
				// Op0 grows by P/(P - alpha P) on the remaining processes.
				myW0 := sim.Time(float64(c.W0) * factors[r.ID()] * float64(c.Procs) / float64(producers))
				elements := perProducer / c.S
				if elements < 1 {
					elements = 1
				}
				return syntheticProducerFibers(r, st, myW0, elements, c.S, finish)
			}
			rate := c.Op1Rate * c.DecoupledRateGain
			return st.FOperate(r, func(rr *mpi.Rank, e stream.Element, src int, then sim.StepFunc) sim.StepFunc {
				return rr.FComputeLabeled(sim.FromSeconds(float64(e.Bytes)/rate), "op1", then)
			}, func(stream.Stats) sim.StepFunc { return finish })
		})
	})
	if err == nil {
		w.Release()
	}
	return makespan, err
}

// runSyntheticOrderedFibers is runSyntheticOrdered's body in fiber form:
// the straggler ablation with selectable consumption order.
func runSyntheticOrderedFibers(c SyntheticConfig, w *mpi.World, producers int, factors []float64, fixedOrder bool) (sim.Time, error) {
	var maxWait sim.Time
	perProducer := c.D / int64(producers)
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		role := stream.Producer
		if r.ID() >= producers {
			role = stream.Consumer
		}
		return stream.FCreateChannel(r, world, role, func(ch *stream.Channel) sim.StepFunc {
			st := ch.Attach(r, stream.Options{
				ElementBytes:   c.S,
				InjectOverhead: c.Overhead,
				FixedOrder:     fixedOrder,
			})
			finish := func(_ *sim.Fiber) sim.StepFunc {
				return ch.FFree(r, nil)
			}
			if role == stream.Producer {
				myW0 := sim.Time(float64(c.W0) * factors[r.ID()] * float64(c.Procs) / float64(producers))
				elements := perProducer / c.S
				if elements < 1 {
					elements = 1
				}
				return syntheticProducerFibers(r, st, myW0, elements, c.S, finish)
			}
			rate := c.Op1Rate * c.DecoupledRateGain
			return st.FOperate(r, func(rr *mpi.Rank, e stream.Element, src int, then sim.StepFunc) sim.StepFunc {
				return rr.FComputeLabeled(sim.FromSeconds(float64(e.Bytes)/rate), "op1", then)
			}, func(stats stream.Stats) sim.StepFunc {
				if stats.WaitTime > maxWait {
					maxWait = stats.WaitTime
				}
				return finish
			})
		})
	})
	if err == nil {
		w.Release()
	}
	return maxWait, err
}
