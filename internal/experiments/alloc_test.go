package experiments

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// mallocsDuring reports the heap allocations performed by f, with the GC
// disabled so pool contents survive the measurement.
func mallocsDuring(f func()) uint64 {
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestFiberAppBodySteadyStateAllocs pins the pooled app-body closures:
// the synthetic decoupled body (producer inject loop + FOperate consumer
// loop, the Fig. 5/ablation hot path) must allocate only the per-element
// stream payload in steady state, with every continuation hoisted to
// body setup and every runtime object (requests, messages, fiber wait
// states, wakers) pooled. The payload budget is 3 allocations per
// element: the []Element batch slice, its interface boxing as message
// data, and — when the consumer is backlogged, as it is here — the
// message object itself, which enters the unexpected queue and is
// deliberately left to the GC (wildcard side-lists may still reference
// it; see World.freeMessage). Before the continuations were hoisted and
// requests pooled this path cost several further allocations per
// element.
func TestFiberAppBodySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation guards are meaningless under the race detector")
	}
	base := DefaultSynthetic(8)
	base.Fibers = true
	run := func(elements int64) {
		c := base
		c.D = elements * c.S
		if _, err := RunSyntheticDecoupled(c); err != nil {
			t.Fatal(err)
		}
	}
	const short, long = 200, 600
	// Warm the pools past the long run's high-water mark.
	run(long)
	run(long)
	mShort := mallocsDuring(func() { run(short) })
	mLong := mallocsDuring(func() { run(long) })
	perElem := float64(mLong-mShort) / float64(long-short)
	const payloadAllocs = 3 // []Element slice + boxing + queued message
	if perElem > payloadAllocs {
		t.Errorf("decoupled body allocates %.2f allocs/element in steady state, want <= %d (stream payload only)",
			perElem, payloadAllocs)
	}
}
