//go:build !race

package experiments

// raceEnabled reports that the race detector is active: allocation-guard
// tests skip, since the detector adds shadow allocations of its own.
const raceEnabled = false
