package experiments

import (
	"fmt"
	"sync"

	"repro/internal/apps/ipic3d"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// The cosched experiment co-schedules several decoupled iPIC3D particle-
// I/O jobs (Fig. 8's Decoupling variant) on one engine, all contending
// for a shared striped-FS bank, and sweeps jobs x stripes x inter-job
// policy. It reports, per configuration:
//
//   - one row per job whose Seconds column carries the job's slowdown —
//     its co-scheduled completion time over its time alone on the same
//     bank (1.0 = unaffected by the neighbors);
//   - one "fairness" row whose Seconds column carries Jain's fairness
//     index over those slowdowns (1.0 = perfectly even suffering);
//   - one "hog-tail" row whose Seconds column carries how long the hog
//     runs on after the last light job has finished — the long tail a
//     static share sentences a sustained hog to, and the number the
//     work-conserving policies exist to shrink.
//
// Job 0 ("hog") writes its full particle population every step; the
// other jobs are ordinary down-sampled writers. Under FCFS the hog's
// booked backlog delays everyone; fair share caps each job's stripe
// fraction; priority additionally weights the light jobs over the hog;
// the fair-wc/priority-wc variants keep those shares while contenders
// demand but redistribute idle entitlement, so the hog's tail runs at
// the full bank rate once the lights drain.

// coschedPerJobProcs is each job's world size. Fixed (like the ablation
// process counts) so rows are comparable across option settings.
const coschedPerJobProcs = 16

// coschedJobConfig builds job i's application config for one run seed.
// The jobs are deliberately heterogeneous: job 0 is an I/O hog (full
// save, no down-sampling), the rest save a quarter of their particles.
// Every job flushes each step and computes fast, so the bank — not the
// mover — is the contended resource.
func coschedJobConfig(i int, seed int64, fibers bool) ipic3d.Config {
	c := ipic3d.DefaultConfig(coschedPerJobProcs)
	c.Seed = seed*101 + int64(i)
	c.Fibers = fibers
	c.MoveRate = 4e6
	c.BufferSteps = 1
	if i == 0 {
		c.SaveFraction = 1.0
	} else {
		c.SaveFraction = 0.25
	}
	return c
}

// coschedJobName labels job i in row series.
func coschedJobName(i int) string {
	if i == 0 {
		return "hog"
	}
	return fmt.Sprintf("j%d", i)
}

// coschedJob wraps job i as a cluster job. Under the priority policy the
// light jobs outrank the hog 4:1.
func coschedJob(i int, seed int64, fibers bool) cluster.Job {
	c := coschedJobConfig(i, seed, fibers)
	weight := 4.0
	if i == 0 {
		weight = 1.0
	}
	return cluster.Job{
		Name:   coschedJobName(i),
		Weight: weight,
		Start: func(base mpi.Config) (*mpi.World, error) {
			j, err := ipic3d.StartIO(c, ipic3d.IODecoupled, base)
			if err != nil {
				return nil, err
			}
			return j.World(), nil
		},
	}
}

// coschedBaselines caches each job's single-job (idle-bank) completion
// time, keyed by (job, stripes, seed). The baseline is policy- and
// job-count-independent — a single-job bank never paces, whatever the
// policy — so every configuration of the sweep shares one computation
// per key instead of re-running it per policy and per job count.
type coschedBaselines struct {
	fibers bool
	// cores is the cluster's parallel-mode worker count (0 = classic).
	// One baseline set serves one Cosched invocation, so it is fixed for
	// every entry; baselines must run in the same trajectory family as
	// the shared runs they normalize.
	cores   int
	mu      sync.Mutex
	entries map[coschedBaseKey]*coschedBaseEntry
}

type coschedBaseKey struct {
	job, stripes int
	seed         int64
}

type coschedBaseEntry struct {
	once sync.Once
	t    float64
	err  error
}

func (b *coschedBaselines) get(job, stripes int, seed int64) (float64, error) {
	key := coschedBaseKey{job, stripes, seed}
	b.mu.Lock()
	if b.entries == nil {
		b.entries = make(map[coschedBaseKey]*coschedBaseEntry)
	}
	e := b.entries[key]
	if e == nil {
		e = &coschedBaseEntry{}
		b.entries[key] = e
	}
	b.mu.Unlock()
	e.once.Do(func() {
		alone, err := cluster.Run(cluster.Config{
			Jobs:    []cluster.Job{coschedJob(job, seed, b.fibers)},
			Stripes: stripes,
			Seed:    seed,
			Cores:   b.cores,
		})
		if err != nil {
			e.err = err
			return
		}
		e.t = alone.JobTimes[0].Seconds()
	})
	return e.t, e.err
}

// coschedOutcome is one shared run's derived metrics: per-job slowdowns
// and the hog's tail past the last light job.
type coschedOutcome struct {
	slowdowns []float64
	hogTail   float64
}

// slowdownRatio is shared/alone guarded against a degenerate zero
// baseline: a job whose solo run takes zero time is reported as
// slowdown 1 when co-scheduling also leaves it at zero (unaffected),
// and as the co-scheduled seconds themselves otherwise — finite either
// way, so a degenerate configuration cannot write ±Inf into the CSV or
// poison decouplebench -compare.
func slowdownRatio(shared, alone float64) float64 {
	if alone == 0 {
		if shared == 0 {
			return 1
		}
		return shared
	}
	return shared / alone
}

// coschedRun runs the shared cluster, divides each job's completion time
// by its cached single-job baseline on an identical bank, and measures
// the hog's tail (how long job 0 outlives the last light job, >= 0).
// A non-nil fault spec degrades the shared bank's stripes — the
// campaign's stripe events compiled per seed — while the baselines stay
// clean, so the slowdown rows then read "co-scheduling plus faults over
// an idle healthy bank".
func coschedRun(jobs, stripes int, policy sim.BankPolicy, seed int64, base *coschedBaselines, spec *faults.Spec) (coschedOutcome, error) {
	cjobs := make([]cluster.Job, jobs)
	for i := range cjobs {
		cjobs[i] = coschedJob(i, seed, base.fibers)
	}
	var sf [][]sim.StripeFault
	if spec != nil {
		sp := *spec
		sp.Seed = sim.Mix64(spec.Seed, seed)
		inj, err := sp.Plan(0, stripes).Compile(0, stripes)
		if err != nil {
			return coschedOutcome{}, err
		}
		sf = inj.Stripe
	}
	shared, err := cluster.Run(cluster.Config{Jobs: cjobs, Policy: policy, Stripes: stripes, Seed: seed, StripeFaults: sf, Cores: base.cores})
	if err != nil {
		return coschedOutcome{}, err
	}
	out := coschedOutcome{slowdowns: make([]float64, jobs)}
	for i := range out.slowdowns {
		alone, err := base.get(i, stripes, seed)
		if err != nil {
			return coschedOutcome{}, err
		}
		out.slowdowns[i] = slowdownRatio(shared.JobTimes[i].Seconds(), alone)
	}
	// The tail is only meaningful against at least one light job; a
	// single-job sweep (-jobs 1) has no lights to outlive, so its tail
	// is zero rather than the hog's whole runtime.
	if jobs > 1 {
		var lastLight sim.Time
		for i := 1; i < jobs; i++ {
			if t := shared.JobTimes[i]; t > lastLight {
				lastLight = t
			}
		}
		if tail := shared.JobTimes[0] - lastLight; tail > 0 {
			out.hogTail = tail.Seconds()
		}
	}
	return out, nil
}

// coschedMemo shares one coschedRun computation per (configuration,
// seed) between that configuration's jc+2 points — the per-job rows, the
// fairness row and the hog-tail row all read the same outcome, instead
// of each re-running the identical cluster and baselines. Safe under the
// sweep worker pool; results are pure functions of the seed, so which
// worker fills the memo never matters.
type coschedMemo struct {
	compute func(seed int64) (coschedOutcome, error)
	mu      sync.Mutex
	entries map[int64]*coschedEntry
}

type coschedEntry struct {
	once sync.Once
	out  coschedOutcome
	err  error
}

func (m *coschedMemo) get(seed int64) (coschedOutcome, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[int64]*coschedEntry)
	}
	e := m.entries[seed]
	if e == nil {
		e = &coschedEntry{}
		m.entries[seed] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.out, e.err = m.compute(seed) })
	return e.out, e.err
}

// jain is Jain's fairness index over xs: (sum x)^2 / (n * sum x^2),
// 1/n..1, where 1 means perfectly even values. The degenerate inputs —
// an empty slice or all-zero values, where the formula reads 0/0 — are
// defined as 1 (the all-equal limit), so they cannot write NaN into the
// CSV or poison decouplebench -compare.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Cosched regenerates the multi-job co-scheduling sweep: jobs x stripes x
// inter-job bank policy, with per-job slowdown and fairness rows. Procs
// carries the total process count across jobs; Param carries the bank
// width.
func Cosched(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	jobCounts := []int{2, 3}
	if opts.CoschedJobs > 0 {
		jobCounts = []int{opts.CoschedJobs}
	}
	policies := []sim.BankPolicy{sim.BankFCFS, sim.BankFair, sim.BankWeighted, sim.BankFairWC, sim.BankWeightedWC}
	if opts.CoschedPolicy != "" {
		p, err := cluster.ParsePolicy(opts.CoschedPolicy)
		if err != nil {
			return nil, err
		}
		policies = []sim.BankPolicy{p}
	}
	var fspec *faults.Spec
	if opts.FaultSpec != "" {
		sp, err := faults.ParseSpec(opts.FaultSpec)
		if err != nil {
			return nil, err
		}
		// "none" parses to the zero spec; leaving fspec nil keeps the
		// sweep on the exact fault-free code path.
		if sp != (faults.Spec{}) {
			fspec = &sp
		}
	}
	base := &coschedBaselines{fibers: opts.Fibers, cores: opts.Cores}
	var points []point
	for _, jc := range jobCounts {
		for _, stripes := range []int{1, 4} {
			for _, pol := range policies {
				jc, stripes, pol := jc, stripes, pol
				memo := &coschedMemo{compute: func(seed int64) (coschedOutcome, error) {
					return coschedRun(jc, stripes, pol, seed, base, fspec)
				}}
				for j := 0; j < jc; j++ {
					j := j
					points = append(points, point{
						row: Row{Experiment: "cosched",
							Series: fmt.Sprintf("%s jobs=%d %s slowdown", pol, jc, coschedJobName(j)),
							Procs:  jc * coschedPerJobProcs, Param: float64(stripes)},
						fn: func(seed int64) (float64, error) {
							out, err := memo.get(seed)
							if err != nil {
								return 0, err
							}
							return out.slowdowns[j], nil
						},
					})
				}
				points = append(points, point{
					row: Row{Experiment: "cosched",
						Series: fmt.Sprintf("%s jobs=%d fairness", pol, jc),
						Procs:  jc * coschedPerJobProcs, Param: float64(stripes)},
					fn: func(seed int64) (float64, error) {
						out, err := memo.get(seed)
						if err != nil {
							return 0, err
						}
						return jain(out.slowdowns), nil
					},
				})
				points = append(points, point{
					row: Row{Experiment: "cosched",
						Series: fmt.Sprintf("%s jobs=%d hog-tail", pol, jc),
						Procs:  jc * coschedPerJobProcs, Param: float64(stripes)},
					fn: func(seed int64) (float64, error) {
						out, err := memo.get(seed)
						if err != nil {
							return 0, err
						}
						return out.hogTail, nil
					},
				})
			}
		}
	}
	return runPoints(opts, points)
}
