package experiments

import (
	"fmt"
	"sync"

	"repro/internal/apps/ipic3d"
	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// The recovery experiment sweeps checkpoint interval against crash-stop
// intensity for the three Fig. 8 particle-I/O implementations running
// the checkpoint/restart bodies (ipic3d.RunRecovery). The campaign is
// the crash-only projection of Options.FaultSpec: every non-crash family
// is zeroed, and a spec that schedules no crashes gets two so the sweep
// is never vacuous. Crash instants are scattered over the variant's own
// clean makespan at that checkpoint interval, so every configuration
// faces the same per-unit-time hazard.
//
// Per variant it reports:
//
//   - one "effective-makespan" row per checkpoint interval k (Param = k)
//     carrying the crashed makespan in seconds — the Young/Daly trade
//     appears as a minimum over k: tight intervals pay checkpoint cost,
//     loose ones replay more lost work;
//   - one "wasted-frac" row per k carrying the replayed fraction of all
//     mover compute;
//   - one "recovery-overhead" row per k carrying crashed-minus-clean
//     makespan in seconds — absolute, not a ratio, so the decoupled
//     variant's smaller clean makespan does not distort the comparison;
//   - one "crash-inflation" row per non-zero intensity (Param = x) at
//     the middle interval, crashed over clean makespan;
//   - one "recovery-overhead-best" summary row: the overhead at the
//     variant's best interval. Decoupling should undercut both
//     references — its checkpoints ship increments to the I/O group off
//     the critical path, while the references re-write full state
//     synchronously on every segment, replayed ones included.
type recoveryOutcome struct {
	cleanT  map[int]sim.Time    // interval -> clean makespan
	clean   map[int]float64     // interval -> clean makespan, seconds
	crashed map[int]float64     // interval -> crashed makespan, seconds
	wasted  map[int]float64     // interval -> wasted-work fraction
	byX     map[float64]float64 // intensity -> crashed makespan at recoveryMidK
}

// recoveryProcs is the sweep's fixed world size: large enough that the
// decoupled I/O group has four members, small enough for CI.
const recoveryProcs = 64

// recoverySteps lengthens the run so every checkpoint interval divides
// into several segments.
const recoverySteps = 24

// recoveryParticleBytes is the checkpoint record size. A checkpoint
// carries the full phase-space state plus pusher auxiliaries, so it is
// wider than the 64-byte save record of the Fig. 8 output path; the
// larger record also puts the references' synchronous full-state writes
// at a realistic fraction of the makespan.
const recoveryParticleBytes = 256

// recoveryIntervals are the checkpoint intervals (mover steps between
// commits) swept per variant.
var recoveryIntervals = []int{3, 6, 12}

// recoveryMidK is the interval held fixed while intensity sweeps.
const recoveryMidK = 6

// recoveryIntensities are the campaign scale factors; 0 is the clean
// baseline the inflation rows divide by.
var recoveryIntensities = []float64{0, 1, 2}

// overhead is the absolute recovery cost at interval k in seconds.
func (o recoveryOutcome) overhead(k int) float64 {
	return o.crashed[k] - o.clean[k]
}

// bestOverhead is the overhead at the sweep's best interval.
func (o recoveryOutcome) bestOverhead() float64 {
	best := o.overhead(recoveryIntervals[0])
	for _, k := range recoveryIntervals[1:] {
		if d := o.overhead(k); d < best {
			best = d
		}
	}
	return best
}

// crashOnly projects a campaign spec onto its crash family, defaulting
// to two crashes when the spec schedules none.
func crashOnly(spec faults.Spec) faults.Spec {
	sp := spec
	sp.Bursts, sp.Outages, sp.DerateStripes, sp.Flaps = 0, 0, 0, 0
	if sp.Crashes == 0 && sp.CrashMTBF == 0 {
		sp.Crashes = 2
	}
	return sp
}

// recoveryRun measures one variant at one seed: a clean and a crashed
// run per interval, plus the intensity sweep at the middle interval.
// Clean runs use Faults == nil — the exact crash-free code path — so
// the baseline stays byte-identical to a plain checkpointed run.
func recoveryRun(v ipic3d.IOVariant, spec faults.Spec, seed int64, fibers bool) (recoveryOutcome, error) {
	stripes := netmodel.LustreLike().Stripes
	base := crashOnly(spec)
	out := recoveryOutcome{
		cleanT:  make(map[int]sim.Time, len(recoveryIntervals)),
		clean:   make(map[int]float64, len(recoveryIntervals)),
		crashed: make(map[int]float64, len(recoveryIntervals)),
		wasted:  make(map[int]float64, len(recoveryIntervals)),
		byX:     make(map[float64]float64, len(recoveryIntensities)),
	}
	run := func(k int, x float64) (ipic3d.RecoveryResult, error) {
		c := ipic3d.DefaultConfig(recoveryProcs)
		c.Steps = recoverySteps
		c.ParticleBytes = recoveryParticleBytes
		c.Seed = seed
		c.Fibers = fibers
		if x > 0 {
			sp := base.Scale(x)
			sp.Horizon = out.cleanT[k]
			sp.Seed = sim.Mix64(spec.Seed, seed)
			inj, err := sp.Plan(c.Procs, stripes).Compile(c.Procs, stripes)
			if err != nil {
				return ipic3d.RecoveryResult{}, err
			}
			c.Faults = &inj
		}
		return ipic3d.RunRecovery(c, v, k)
	}
	for _, k := range recoveryIntervals {
		res, err := run(k, 0)
		if err != nil {
			return recoveryOutcome{}, err
		}
		out.cleanT[k] = res.Time
		out.clean[k] = res.Time.Seconds()
		res, err = run(k, 1)
		if err != nil {
			return recoveryOutcome{}, err
		}
		out.crashed[k] = res.Time.Seconds()
		out.wasted[k] = res.WastedFraction()
	}
	out.byX[0] = out.clean[recoveryMidK]
	out.byX[1] = out.crashed[recoveryMidK]
	for _, x := range recoveryIntensities {
		if x <= 1 {
			continue
		}
		res, err := run(recoveryMidK, x)
		if err != nil {
			return recoveryOutcome{}, err
		}
		out.byX[x] = res.Time.Seconds()
	}
	return out, nil
}

// recoveryMemo shares one recoveryRun per (variant, seed) between that
// variant's rows; same shape and safety argument as resilienceMemo.
type recoveryMemo struct {
	compute func(seed int64) (recoveryOutcome, error)
	mu      sync.Mutex
	entries map[int64]*recoveryEntry
}

type recoveryEntry struct {
	once sync.Once
	out  recoveryOutcome
	err  error
}

func (m *recoveryMemo) get(seed int64) (recoveryOutcome, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[int64]*recoveryEntry)
	}
	e := m.entries[seed]
	if e == nil {
		e = &recoveryEntry{}
		m.entries[seed] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.out, e.err = m.compute(seed) })
	return e.out, e.err
}

// Recovery regenerates the checkpoint/restart sweep: Fig. 8 variant x
// checkpoint interval x crash intensity, with effective-makespan,
// wasted-work, recovery-overhead and crash-inflation rows. Param
// carries the checkpoint interval on per-interval rows and the
// intensity on inflation rows (0 for the summary row).
func Recovery(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	spec, err := faults.ParseSpec(opts.FaultSpec)
	if err != nil {
		return nil, err
	}
	variants := []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled}
	var points []point
	for _, v := range variants {
		v := v
		memo := &recoveryMemo{compute: func(seed int64) (recoveryOutcome, error) {
			return recoveryRun(v, spec, seed, opts.Fibers)
		}}
		read := func(fn func(recoveryOutcome) float64) func(int64) (float64, error) {
			return func(seed int64) (float64, error) {
				out, err := memo.get(seed)
				if err != nil {
					return 0, err
				}
				return fn(out), nil
			}
		}
		for _, k := range recoveryIntervals {
			k := k
			points = append(points,
				point{
					row: Row{Experiment: "recovery", Series: fmt.Sprintf("%s effective-makespan", v),
						Procs: recoveryProcs, Param: float64(k)},
					fn: read(func(o recoveryOutcome) float64 { return o.crashed[k] }),
				},
				point{
					row: Row{Experiment: "recovery", Series: fmt.Sprintf("%s wasted-frac", v),
						Procs: recoveryProcs, Param: float64(k)},
					fn: read(func(o recoveryOutcome) float64 { return o.wasted[k] }),
				},
				point{
					row: Row{Experiment: "recovery", Series: fmt.Sprintf("%s recovery-overhead", v),
						Procs: recoveryProcs, Param: float64(k)},
					fn: read(func(o recoveryOutcome) float64 { return o.overhead(k) }),
				})
		}
		for _, x := range recoveryIntensities[1:] {
			x := x
			points = append(points, point{
				row: Row{Experiment: "recovery", Series: fmt.Sprintf("%s crash-inflation", v),
					Procs: recoveryProcs, Param: x},
				fn: read(func(o recoveryOutcome) float64 {
					return slowdownRatio(o.byX[x], o.byX[0])
				}),
			})
		}
		points = append(points, point{
			row: Row{Experiment: "recovery", Series: fmt.Sprintf("%s recovery-overhead-best", v),
				Procs: recoveryProcs},
			fn: read(recoveryOutcome.bestOverhead),
		})
	}
	return runPoints(opts, points)
}
