package experiments

import (
	"fmt"
	"sync"

	"repro/internal/apps/ipic3d"
	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// The resilience experiment sweeps fault-campaign intensity against the
// three Fig. 8 particle-I/O implementations at a fixed scale. The base
// campaign (Options.FaultSpec, default faults.DefaultSpec) is scaled by
// each intensity — multiplying burst count, outage duration,
// degraded-stripe count and flap count while leaving per-event severity
// alone — compiled against the machine shape, and injected into an
// otherwise identical run. It reports, per variant:
//
//   - one "inflation" row per non-zero intensity whose Seconds column
//     carries makespan(intensity) / makespan(clean);
//   - one "io-tail-stretch" row per non-zero intensity carrying the same
//     ratio for the I/O tail (the file-system work left on the critical
//     path after the last mover finishes);
//   - one "degradation-slope" row carrying the least-squares slope of
//     inflation over intensity — the variant's marginal cost per unit of
//     campaign. Decoupling's slope should undercut both reference
//     variants: buffered, overlapped I/O absorbs stripe outages and link
//     flaps that the synchronous writers eat on the critical path.
//
// The campaign seed folds the run seed (sim.Mix64), so repetitions see
// different event placements while everything stays replayable.

// resilienceProcs is the sweep's fixed world size. Fixed (like the
// ablation process counts) so rows are comparable across option
// settings; the contended resource is the striped bank, not scale.
const resilienceProcs = 64

// resilienceIntensities are the campaign scale factors swept per
// variant. Intensity 0 is the clean baseline every ratio divides by.
var resilienceIntensities = []float64{0, 1, 2, 4}

// resilienceOutcome is one (variant, seed) sweep: makespan and I/O tail
// in seconds per intensity.
type resilienceOutcome struct {
	makespan map[float64]float64
	tail     map[float64]float64
}

// inflation is makespan(x) over the clean makespan.
func (o resilienceOutcome) inflation(x float64) float64 {
	return slowdownRatio(o.makespan[x], o.makespan[0])
}

// tailStretch is the I/O tail at x over the clean tail.
func (o resilienceOutcome) tailStretch(x float64) float64 {
	return slowdownRatio(o.tail[x], o.tail[0])
}

// slope is the least-squares slope of inflation over intensity across
// the whole sweep (the clean point contributes inflation 1 at x = 0).
func (o resilienceOutcome) slope() float64 {
	n := float64(len(resilienceIntensities))
	var sx, sy float64
	for _, x := range resilienceIntensities {
		sx += x
		sy += o.inflation(x)
	}
	xbar, ybar := sx/n, sy/n
	var num, den float64
	for _, x := range resilienceIntensities {
		num += (x - xbar) * (o.inflation(x) - ybar)
		den += (x - xbar) * (x - xbar)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// resilienceRun measures one variant under every intensity at one seed.
// Intensity 0 runs with Faults == nil — the exact fault-free code path —
// so the baseline is byte-identical to a plain Fig. 8 run.
func resilienceRun(v ipic3d.IOVariant, spec faults.Spec, seed int64, fibers bool) (resilienceOutcome, error) {
	stripes := netmodel.LustreLike().Stripes
	out := resilienceOutcome{
		makespan: make(map[float64]float64, len(resilienceIntensities)),
		tail:     make(map[float64]float64, len(resilienceIntensities)),
	}
	for _, x := range resilienceIntensities {
		c := ipic3d.DefaultConfig(resilienceProcs)
		c.Seed = seed
		c.Fibers = fibers
		if x > 0 {
			sp := spec.Scale(x)
			sp.Seed = sim.Mix64(spec.Seed, seed)
			inj, err := sp.Plan(c.Procs, stripes).Compile(c.Procs, stripes)
			if err != nil {
				return resilienceOutcome{}, err
			}
			c.Faults = &inj
		}
		res, err := ipic3d.RunIO(c, v)
		if err != nil {
			return resilienceOutcome{}, err
		}
		out.makespan[x] = res.Time.Seconds()
		out.tail[x] = res.IOTail.Seconds()
	}
	return out, nil
}

// resilienceMemo shares one resilienceRun per (variant, seed) between
// that variant's rows — the per-intensity ratios and the slope all read
// the same sweep. Same shape and safety argument as coschedMemo.
type resilienceMemo struct {
	compute func(seed int64) (resilienceOutcome, error)
	mu      sync.Mutex
	entries map[int64]*resilienceEntry
}

type resilienceEntry struct {
	once sync.Once
	out  resilienceOutcome
	err  error
}

func (m *resilienceMemo) get(seed int64) (resilienceOutcome, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[int64]*resilienceEntry)
	}
	e := m.entries[seed]
	if e == nil {
		e = &resilienceEntry{}
		m.entries[seed] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.out, e.err = m.compute(seed) })
	return e.out, e.err
}

// Resilience regenerates the fault-campaign intensity sweep: Fig. 8
// variant x campaign intensity, with makespan-inflation, I/O-tail and
// degradation-slope rows. Param carries the intensity (0 for the slope
// row, which summarizes the whole sweep).
func Resilience(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	spec, err := faults.ParseSpec(opts.FaultSpec)
	if err != nil {
		return nil, err
	}
	variants := []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled}
	var points []point
	for _, v := range variants {
		v := v
		memo := &resilienceMemo{compute: func(seed int64) (resilienceOutcome, error) {
			return resilienceRun(v, spec, seed, opts.Fibers)
		}}
		for _, x := range resilienceIntensities[1:] {
			x := x
			points = append(points, point{
				row: Row{Experiment: "resilience", Series: fmt.Sprintf("%s inflation", v),
					Procs: resilienceProcs, Param: x},
				fn: func(seed int64) (float64, error) {
					out, err := memo.get(seed)
					if err != nil {
						return 0, err
					}
					return out.inflation(x), nil
				},
			})
			points = append(points, point{
				row: Row{Experiment: "resilience", Series: fmt.Sprintf("%s io-tail-stretch", v),
					Procs: resilienceProcs, Param: x},
				fn: func(seed int64) (float64, error) {
					out, err := memo.get(seed)
					if err != nil {
						return 0, err
					}
					return out.tailStretch(x), nil
				},
			})
		}
		points = append(points, point{
			row: Row{Experiment: "resilience", Series: fmt.Sprintf("%s degradation-slope", v),
				Procs: resilienceProcs},
			fn: func(seed int64) (float64, error) {
				out, err := memo.get(seed)
				if err != nil {
					return 0, err
				}
				return out.slope(), nil
			},
		})
	}
	return runPoints(opts, points)
}
