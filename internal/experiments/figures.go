package experiments

import (
	"fmt"

	"repro/internal/apps/cg"
	"repro/internal/apps/ipic3d"
	"repro/internal/apps/mapreduce"
)

// Fig5 regenerates the MapReduce weak-scaling figure: the reference
// implementation against the decoupled implementation at the paper's three
// alpha values.
func Fig5(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var rows []Row
	var firstErr error
	for _, p := range sweep(opts.MaxProcs) {
		opts.logf("fig5: procs=%d reference", p)
		mean, sd := measure(opts, func(seed int64) float64 {
			c := mapreduce.DefaultConfig(p)
			c.Seed = seed
			res, err := mapreduce.RunReference(c)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			return res.Time.Seconds()
		})
		rows = append(rows, Row{Experiment: "fig5", Series: "Reference", Procs: p,
			Seconds: mean, StdDev: sd, Runs: opts.Runs})
		for _, alpha := range []float64{0.125, 0.0625, 0.03125} {
			alpha := alpha
			opts.logf("fig5: procs=%d alpha=%.5f", p, alpha)
			mean, sd := measure(opts, func(seed int64) float64 {
				c := mapreduce.DefaultConfig(p)
				c.Seed = seed
				c.Alpha = alpha
				res, err := mapreduce.RunDecoupled(c)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				return res.Time.Seconds()
			})
			rows = append(rows, Row{Experiment: "fig5",
				Series: fmt.Sprintf("Decoupling (alpha=%g%%)", alpha*100),
				Procs:  p, Seconds: mean, StdDev: sd, Runs: opts.Runs})
		}
	}
	return rows, firstErr
}

// Fig6 regenerates the CG weak-scaling figure: blocking and non-blocking
// references against the decoupled halo exchange.
func Fig6(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var rows []Row
	var firstErr error
	variants := []cg.Variant{cg.Blocking, cg.Nonblocking, cg.Decoupled}
	// The paper runs 300 iterations; per-iteration behaviour is
	// stationary, so we run 30 and report x10 (documented in
	// EXPERIMENTS.md).
	const iterScale = 10.0
	for _, p := range sweep(opts.MaxProcs) {
		for _, v := range variants {
			v := v
			opts.logf("fig6: procs=%d %s", p, v)
			mean, sd := measure(opts, func(seed int64) float64 {
				c := cg.DefaultConfig(p)
				c.Seed = seed
				res, err := cg.Run(c, v)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				return res.Time.Seconds() * iterScale
			})
			rows = append(rows, Row{Experiment: "fig6", Series: v.String(), Procs: p,
				Seconds: mean, StdDev: sd * iterScale, Runs: opts.Runs})
		}
	}
	return rows, firstErr
}

// Fig7 regenerates the iPIC3D particle-communication weak-scaling figure.
func Fig7(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var rows []Row
	var firstErr error
	for _, p := range sweep(opts.MaxProcs) {
		opts.logf("fig7: procs=%d reference", p)
		mean, sd := measure(opts, func(seed int64) float64 {
			c := ipic3d.DefaultConfig(p)
			c.Seed = seed
			res, err := ipic3d.RunCommReference(c)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			return res.Time.Seconds()
		})
		rows = append(rows, Row{Experiment: "fig7", Series: "Reference", Procs: p,
			Seconds: mean, StdDev: sd, Runs: opts.Runs})
		opts.logf("fig7: procs=%d decoupling", p)
		mean, sd = measure(opts, func(seed int64) float64 {
			c := ipic3d.DefaultConfig(p)
			c.Seed = seed
			res, err := ipic3d.RunCommDecoupled(c)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			return res.Time.Seconds()
		})
		rows = append(rows, Row{Experiment: "fig7", Series: "Decoupling", Procs: p,
			Seconds: mean, StdDev: sd, Runs: opts.Runs})
	}
	return rows, firstErr
}

// Fig8 regenerates the iPIC3D particle-I/O weak-scaling figure: collective
// and shared-pointer references against the decoupled I/O group.
func Fig8(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var rows []Row
	var firstErr error
	variants := []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled}
	for _, p := range sweep(opts.MaxProcs) {
		for _, v := range variants {
			v := v
			opts.logf("fig8: procs=%d %s", p, v)
			mean, sd := measure(opts, func(seed int64) float64 {
				c := ipic3d.DefaultConfig(p)
				c.Seed = seed
				res, err := ipic3d.RunIO(c, v)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				return res.Time.Seconds()
			})
			rows = append(rows, Row{Experiment: "fig8", Series: v.String(), Procs: p,
				Seconds: mean, StdDev: sd, Runs: opts.Runs})
		}
	}
	return rows, firstErr
}
