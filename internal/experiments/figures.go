package experiments

import (
	"fmt"

	"repro/internal/apps/cg"
	"repro/internal/apps/ipic3d"
	"repro/internal/apps/mapreduce"
)

// Fig5 regenerates the MapReduce weak-scaling figure: the reference
// implementation against the decoupled implementation at the paper's three
// alpha values.
func Fig5(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var points []point
	for _, p := range sweep(opts.MaxProcs) {
		p := p
		points = append(points, point{
			row: Row{Experiment: "fig5", Series: "Reference", Procs: p},
			fn: func(seed int64) (float64, error) {
				c := mapreduce.DefaultConfig(p)
				c.Seed = seed
				c.Fibers = opts.Fibers
				c.Cores = opts.Cores
				res, err := mapreduce.RunReference(c)
				return res.Time.Seconds(), err
			},
		})
		for _, alpha := range []float64{0.125, 0.0625, 0.03125} {
			alpha := alpha
			points = append(points, point{
				row: Row{Experiment: "fig5",
					Series: fmt.Sprintf("Decoupling (alpha=%g%%)", alpha*100),
					Procs:  p},
				fn: func(seed int64) (float64, error) {
					c := mapreduce.DefaultConfig(p)
					c.Seed = seed
					c.Alpha = alpha
					c.Fibers = opts.Fibers
					c.Cores = opts.Cores
					res, err := mapreduce.RunDecoupled(c)
					return res.Time.Seconds(), err
				},
			})
		}
	}
	return runPoints(opts, points)
}

// Fig6 regenerates the CG weak-scaling figure: blocking and non-blocking
// references against the decoupled halo exchange.
func Fig6(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var points []point
	variants := []cg.Variant{cg.Blocking, cg.Nonblocking, cg.Decoupled}
	// The paper runs 300 iterations; per-iteration behaviour is
	// stationary, so we run 30 and report x10 (documented in
	// EXPERIMENTS.md).
	const iterScale = 10.0
	for _, p := range sweep(opts.MaxProcs) {
		for _, v := range variants {
			p, v := p, v
			points = append(points, point{
				row: Row{Experiment: "fig6", Series: v.String(), Procs: p},
				fn: func(seed int64) (float64, error) {
					c := cg.DefaultConfig(p)
					c.Seed = seed
					c.Fibers = opts.Fibers
					c.Cores = opts.Cores
					res, err := cg.Run(c, v)
					return res.Time.Seconds() * iterScale, err
				},
			})
		}
	}
	rows, err := runPoints(opts, points)
	for i := range rows {
		// Matches the original sweep's accounting, which scaled the
		// deviation of already-scaled samples; kept verbatim so
		// regenerated tables stay bit-identical to the seed. Revisit
		// together with a determinism-versioning story.
		rows[i].StdDev *= iterScale
	}
	return rows, err
}

// Fig7 regenerates the iPIC3D particle-communication weak-scaling figure.
func Fig7(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var points []point
	for _, p := range sweep(opts.MaxProcs) {
		p := p
		points = append(points, point{
			row: Row{Experiment: "fig7", Series: "Reference", Procs: p},
			fn: func(seed int64) (float64, error) {
				c := ipic3d.DefaultConfig(p)
				c.Seed = seed
				c.Fibers = opts.Fibers
				c.Cores = opts.Cores
				res, err := ipic3d.RunCommReference(c)
				return res.Time.Seconds(), err
			},
		})
		points = append(points, point{
			row: Row{Experiment: "fig7", Series: "Decoupling", Procs: p},
			fn: func(seed int64) (float64, error) {
				c := ipic3d.DefaultConfig(p)
				c.Seed = seed
				c.Fibers = opts.Fibers
				c.Cores = opts.Cores
				res, err := ipic3d.RunCommDecoupled(c)
				return res.Time.Seconds(), err
			},
		})
	}
	return runPoints(opts, points)
}

// Fig8 regenerates the iPIC3D particle-I/O weak-scaling figure: collective
// and shared-pointer references against the decoupled I/O group.
func Fig8(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	var points []point
	variants := []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled}
	for _, p := range sweep(opts.MaxProcs) {
		for _, v := range variants {
			p, v := p, v
			points = append(points, point{
				row: Row{Experiment: "fig8", Series: v.String(), Procs: p},
				fn: func(seed int64) (float64, error) {
					c := ipic3d.DefaultConfig(p)
					c.Seed = seed
					c.Fibers = opts.Fibers
					c.Cores = opts.Cores
					res, err := ipic3d.RunIO(c, v)
					return res.Time.Seconds(), err
				},
			})
		}
	}
	return runPoints(opts, points)
}
