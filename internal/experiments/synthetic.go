package experiments

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/workload"
)

// SyntheticConfig describes the two-operation application of the paper's
// performance model (Section II-D): Op0 is computation distributed over
// the producer group; Op1 processes a data flow of D bytes and is either
// coupled (conventional, every process runs both) or decoupled onto an
// alpha fraction of processes.
type SyntheticConfig struct {
	// Procs is the total number of processes.
	Procs int
	// Alpha is the decoupled group fraction.
	Alpha float64
	// W0 is Op0's per-process compute time in the conventional model.
	W0 sim.Time
	// D is the total volume flowing into Op1, in bytes.
	D int64
	// S is the stream element granularity in bytes (Eq. 4's S).
	S int64
	// Op1Rate is Op1's processing throughput in bytes per second; the
	// conventional per-process time TW1 is (D/Procs)/Op1Rate.
	Op1Rate float64
	// DecoupledRateGain is how much faster the dedicated group processes
	// Op1 (batching and application-specific optimization — the paper's
	// T'W1 << TW1). 1 means no optimization.
	DecoupledRateGain float64
	// Overhead is the per-element injection overhead (Eq. 4's o).
	Overhead sim.Time
	// ImbalanceCoV spreads W0 across processes.
	ImbalanceCoV float64
	// Fibers selects the step-function process representation for the
	// rank bodies (goroutine-free dispatch; trajectories are bit-identical
	// either way). Ignored when a Tracer is configured.
	Fibers bool
	// Seed, Noise and Tracer as elsewhere.
	Seed   int64
	Noise  netmodel.Noise
	Tracer mpi.Tracer
}

// DefaultSynthetic returns a balanced configuration for the given scale.
func DefaultSynthetic(procs int) SyntheticConfig {
	return SyntheticConfig{
		Procs:             procs,
		Alpha:             0.125,
		W0:                2 * sim.Second,
		D:                 int64(procs) * (8 << 20),
		S:                 64 << 10,
		Op1Rate:           10e6,
		DecoupledRateGain: 2,
		Overhead:          500 * sim.Nanosecond,
		ImbalanceCoV:      0.15,
		Seed:              1,
		Noise:             netmodel.None{},
	}
}

// Validate reports whether the configuration is runnable.
func (c SyntheticConfig) Validate() error {
	if c.Procs < 2 || c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("experiments: bad synthetic group setup (procs=%d alpha=%v)", c.Procs, c.Alpha)
	}
	if c.W0 <= 0 || c.D <= 0 || c.S <= 0 || c.Op1Rate <= 0 {
		return fmt.Errorf("experiments: non-positive synthetic workload")
	}
	if c.DecoupledRateGain < 1 {
		return fmt.Errorf("experiments: DecoupledRateGain %v below 1", c.DecoupledRateGain)
	}
	return nil
}

// tw1 is the conventional per-process Op1 time.
func (c SyntheticConfig) tw1() sim.Time {
	return sim.FromSeconds(float64(c.D) / float64(c.Procs) / c.Op1Rate)
}

// ModelParams translates the configuration into the analytic model's
// parameters, for prediction-vs-measurement comparison.
func (c SyntheticConfig) ModelParams() model.Params {
	tw1 := c.tw1()
	// Expected imbalance: the extreme-value estimate of max-minus-mean
	// over Procs draws with the configured coefficient of variation.
	sigma := float64(c.W0) * c.ImbalanceCoV * math.Sqrt(2*math.Log(float64(c.Procs)))
	return model.Params{
		TW0:    c.W0,
		TW1:    tw1,
		TSigma: sim.Time(sigma),
		Alpha:  c.Alpha,
		D:      c.D,
		S:      c.S,
		DecoupledTW1: func(alpha float64) sim.Time {
			return sim.Time(float64(tw1) / c.DecoupledRateGain)
		},
		Overhead: c.Overhead,
	}
}

// RunSyntheticConventional executes the coupled model: every process
// computes its (imbalanced) share of Op0, synchronizes, then processes its
// share of Op1's data.
func RunSyntheticConventional(c SyntheticConfig) (sim.Time, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	factors := workload.Imbalance(c.Procs, c.ImbalanceCoV, c.Seed+5)
	w := mpi.NewWorld(mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: noiseOrNone(c.Noise), Tracer: c.Tracer})
	if c.Fibers && c.Tracer == nil {
		return runSyntheticConventionalFibers(c, w, factors)
	}
	var makespan sim.Time
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		r.ComputeLabeled(sim.Time(float64(c.W0)*factors[r.ID()]), "op0")
		// Stage boundary: data exchange and synchronization happen at
		// the completion of the operation (Section II-A).
		world.Barrier(r)
		r.ComputeLabeled(c.tw1(), "op1")
		world.Barrier(r)
		if t := r.Now(); t > makespan {
			makespan = t
		}
	})
	if err == nil {
		w.Release()
	}
	return makespan, err
}

// RunSyntheticDecoupled executes the decoupled model: producers compute
// Op0 (proportionally more work on fewer processes) and inject S-byte
// stream elements throughout; consumers apply Op1 to elements first-come-
// first-served.
func RunSyntheticDecoupled(c SyntheticConfig) (sim.Time, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	consumers := int(float64(c.Procs)*c.Alpha + 0.5)
	if consumers < 1 {
		consumers = 1
	}
	producers := c.Procs - consumers
	factors := workload.Imbalance(producers, c.ImbalanceCoV, c.Seed+5)
	w := mpi.NewWorld(mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: noiseOrNone(c.Noise), Tracer: c.Tracer})
	if c.Fibers && c.Tracer == nil {
		return runSyntheticDecoupledFibers(c, w, producers, factors)
	}
	var makespan sim.Time
	perProducer := c.D / int64(producers)
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= producers {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{ElementBytes: c.S, InjectOverhead: c.Overhead})
		if role == stream.Producer {
			// Op0 grows by P/(P - alpha P) on the remaining processes.
			myW0 := sim.Time(float64(c.W0) * factors[r.ID()] * float64(c.Procs) / float64(producers))
			elements := perProducer / c.S
			if elements < 1 {
				elements = 1
			}
			slice := myW0 / sim.Time(elements)
			for e := int64(0); e < elements; e++ {
				r.ComputeLabeled(slice, "op0")
				st.Isend(r, stream.Element{Bytes: c.S})
			}
			st.Terminate(r)
		} else {
			rate := c.Op1Rate * c.DecoupledRateGain
			st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				rr.ComputeLabeled(sim.FromSeconds(float64(e.Bytes)/rate), "op1")
			})
		}
		ch.Free(r)
		if t := r.Now(); t > makespan {
			makespan = t
		}
	})
	if err == nil {
		w.Release()
	}
	return makespan, err
}

func noiseOrNone(n netmodel.Noise) netmodel.Noise {
	if n == nil {
		return netmodel.None{}
	}
	return n
}

// AblationGranularity sweeps the stream element size S on the synthetic
// application, exposing Eq. 4's pipelining-versus-overhead trade-off
// (design choice 1 in DESIGN.md). Param carries S in bytes.
func AblationGranularity(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	procs := 64
	sizes := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	var points []point
	for _, s := range sizes {
		s := s
		points = append(points, point{
			row: Row{Experiment: "ablation-granularity", Series: "Decoupling",
				Procs: procs, Param: float64(s)},
			fn: func(seed int64) (float64, error) {
				c := DefaultSynthetic(procs)
				c.Seed = seed
				c.S = s
				c.Overhead = 20 * sim.Microsecond // pronounced per-element cost
				c.Fibers = opts.Fibers
				t, err := RunSyntheticDecoupled(c)
				return t.Seconds(), err
			},
		})
	}
	measured, err := runPoints(opts, points)
	// Interleave each measured point with its analytic prediction.
	var rows []Row
	for i, s := range sizes {
		rows = append(rows, measured[i])
		c := DefaultSynthetic(procs)
		c.S = s
		c.Overhead = 20 * sim.Microsecond
		rows = append(rows, Row{Experiment: "ablation-granularity", Series: "Eq4 prediction",
			Procs: procs, Param: float64(s),
			Seconds: model.Decoupled(c.ModelParams()).Seconds(), Runs: 1})
	}
	return rows, err
}

// AblationAlpha sweeps the decoupled group fraction on the MapReduce
// application beyond the paper's three values (design choice 2). Param
// carries alpha in percent.
func AblationAlpha(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	procs := 256
	if procs > opts.MaxProcs {
		procs = opts.MaxProcs
	}
	var points []point
	for _, alpha := range []float64{0.015625, 0.03125, 0.0625, 0.125, 0.25} {
		alpha := alpha
		points = append(points, point{
			row: Row{Experiment: "ablation-alpha", Series: "Decoupling",
				Procs: procs, Param: alpha * 100},
			fn: func(seed int64) (float64, error) {
				c := mapreduceConfigForAblation(procs, seed, alpha)
				c.Fibers = opts.Fibers
				return runMapreduceDecoupled(c)
			},
		})
	}
	return runPoints(opts, points)
}

// AblationFCFS compares first-come-first-served consumption against
// fixed-order consumption on the synthetic application with a straggling
// producer (design choice 3: the absorption mechanism itself). The metric
// is the consumer's idle time: with FCFS the consumer processes whatever
// has arrived while the straggler trickles; in fixed order it stalls on
// the straggler with work queued. The makespan is bounded by the
// straggler either way — absorption buys consumer utilization, which is
// what lets a real decoupled group take on extra optimization work.
func AblationFCFS(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	procs := 64
	var points []point
	for _, fixed := range []bool{false, true} {
		fixed := fixed
		series := "FCFS"
		if fixed {
			series = "Fixed order"
		}
		points = append(points, point{
			row: Row{Experiment: "ablation-fcfs", Series: series + " (consumer idle)",
				Procs: procs},
			fn: func(seed int64) (float64, error) {
				wait, err := runSyntheticOrdered(procs, seed, fixed, opts.Fibers)
				return wait.Seconds(), err
			},
		})
	}
	return runPoints(opts, points)
}

// runSyntheticOrdered is RunSyntheticDecoupled with selectable consumption
// order and a deliberate straggler; it returns the maximum consumer idle
// (wait) time.
func runSyntheticOrdered(procs int, seed int64, fixedOrder, fibers bool) (sim.Time, error) {
	c := DefaultSynthetic(procs)
	c.Seed = seed
	c.ImbalanceCoV = 0.3
	// Slow consumers: processing is comparable to the arrival rate, so
	// the queueing discipline matters.
	c.Op1Rate = 0.5e6
	consumers := int(float64(c.Procs)*c.Alpha + 0.5)
	if consumers < 1 {
		consumers = 1
	}
	producers := c.Procs - consumers
	factors := workload.Imbalance(producers, c.ImbalanceCoV, c.Seed+5)
	factors[0] *= 4 // the straggler
	w := mpi.NewWorld(mpi.Config{Procs: c.Procs, Seed: c.Seed})
	if fibers {
		return runSyntheticOrderedFibers(c, w, producers, factors, fixedOrder)
	}
	var maxWait sim.Time
	perProducer := c.D / int64(producers)
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= producers {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{
			ElementBytes:   c.S,
			InjectOverhead: c.Overhead,
			FixedOrder:     fixedOrder,
		})
		if role == stream.Producer {
			myW0 := sim.Time(float64(c.W0) * factors[r.ID()] * float64(c.Procs) / float64(producers))
			elements := perProducer / c.S
			if elements < 1 {
				elements = 1
			}
			slice := myW0 / sim.Time(elements)
			for e := int64(0); e < elements; e++ {
				r.ComputeLabeled(slice, "op0")
				st.Isend(r, stream.Element{Bytes: c.S})
			}
			st.Terminate(r)
		} else {
			rate := c.Op1Rate * c.DecoupledRateGain
			stats := st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				rr.ComputeLabeled(sim.FromSeconds(float64(e.Bytes)/rate), "op1")
			})
			if stats.WaitTime > maxWait {
				maxWait = stats.WaitTime
			}
		}
		ch.Free(r)
	})
	if err == nil {
		w.Release()
	}
	return maxWait, err
}

// ModelValidation compares Eq. 1 and Eq. 4 predictions against simulator
// measurements of the synthetic application across scales.
func ModelValidation(opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	max := opts.MaxProcs
	if max > 512 {
		max = 512
	}
	procs := sweep(max)
	var points []point
	for _, p := range procs {
		p := p
		points = append(points, point{
			row: Row{Experiment: "model", Series: "Conventional (measured)", Procs: p},
			fn: func(seed int64) (float64, error) {
				c := DefaultSynthetic(p)
				c.Seed = seed
				c.Fibers = opts.Fibers
				t, err := RunSyntheticConventional(c)
				return t.Seconds(), err
			},
		})
		points = append(points, point{
			row: Row{Experiment: "model", Series: "Decoupled (measured)", Procs: p},
			fn: func(seed int64) (float64, error) {
				c := DefaultSynthetic(p)
				c.Seed = seed
				c.Fibers = opts.Fibers
				t, err := RunSyntheticDecoupled(c)
				return t.Seconds(), err
			},
		})
	}
	measured, err := runPoints(opts, points)
	var rows []Row
	for i, p := range procs {
		params := DefaultSynthetic(p).ModelParams()
		rows = append(rows,
			measured[2*i],
			Row{Experiment: "model", Series: "Conventional (Eq1)", Procs: p, Seconds: model.Conventional(params).Seconds(), Runs: 1},
			measured[2*i+1],
			Row{Experiment: "model", Series: "Decoupled (Eq4)", Procs: p, Seconds: model.Decoupled(params).Seconds(), Runs: 1},
		)
	}
	return rows, err
}
