// Package experiments regenerates every figure of the paper's evaluation
// (Section IV) plus the ablations called out in DESIGN.md. Each experiment
// returns tabular rows shared by the CLI (cmd/decouplebench) and the
// benchmark harness (bench_test.go).
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"text/tabwriter"
)

// Row is one measured point of an experiment series.
type Row struct {
	// Experiment is the experiment id, e.g. "fig5".
	Experiment string
	// Series is the legend entry, e.g. "Decoupling (alpha=6.25%)".
	Series string
	// Procs is the process count (or the swept parameter's value for
	// ablations; see Param).
	Procs int
	// Param carries the swept non-procs parameter for ablations
	// (element bytes, alpha in percent, ...); 0 otherwise.
	Param float64
	// Seconds is the mean execution time over Runs runs.
	Seconds float64
	// StdDev is the sample standard deviation over Runs runs.
	StdDev float64
	// Runs is the number of repetitions.
	Runs int
}

// Options controls experiment scale and repetition.
type Options struct {
	// MaxProcs caps the weak-scaling sweep (paper: 8,192). The default
	// keeps `go test -bench` affordable; the CLI can raise it.
	MaxProcs int
	// Runs is the number of repetitions per point (paper: 10). Seeds
	// vary per run; the mean and standard deviation are reported.
	Runs int
	// Log, if non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.MaxProcs <= 0 {
		o.MaxProcs = 1024
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	return o
}

// sweep returns the paper's process counts up to max: 32, 64, ..., max.
func sweep(max int) []int {
	var out []int
	for p := 32; p <= max; p *= 2 {
		out = append(out, p)
	}
	return out
}

// logf writes progress if a log sink is configured.
func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// serialize pins the Go runtime to one core for the duration of fn: the
// simulator is inherently serial, and cross-core handoffs only add
// scheduler overhead.
func serialize(fn func()) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

// measure runs fn once per seed and aggregates mean and stddev of the
// returned virtual seconds.
func measure(opts Options, fn func(seed int64) float64) (mean, stddev float64) {
	var samples []float64
	serialize(func() {
		for run := 0; run < opts.Runs; run++ {
			samples = append(samples, fn(int64(run+1)))
		}
	})
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean = sum / float64(len(samples))
	var ss float64
	for _, s := range samples {
		ss += (s - mean) * (s - mean)
	}
	if len(samples) > 1 {
		stddev = math.Sqrt(ss / float64(len(samples)-1))
	}
	return mean, stddev
}

// FormatTable renders rows as an aligned table grouped by experiment and
// series.
func FormatTable(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tseries\tprocs\tparam\tseconds\tstddev\truns")
	for _, r := range rows {
		param := ""
		if r.Param != 0 {
			param = fmt.Sprintf("%g", r.Param)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%.3f\t%.3f\t%d\n",
			r.Experiment, r.Series, r.Procs, param, r.Seconds, r.StdDev, r.Runs)
	}
	return tw.Flush()
}

// FormatCSV renders rows as CSV.
func FormatCSV(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintln(w, "experiment,series,procs,param,seconds,stddev,runs"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%.6f,%.6f,%d\n",
			r.Experiment, r.Series, r.Procs, r.Param, r.Seconds, r.StdDev, r.Runs); err != nil {
			return err
		}
	}
	return nil
}

// Registry maps experiment names to their runners, for the CLI.
var Registry = map[string]func(Options) ([]Row, error){
	"fig5":                 Fig5,
	"fig6":                 Fig6,
	"fig7":                 Fig7,
	"fig8":                 Fig8,
	"ablation-granularity": AblationGranularity,
	"ablation-alpha":       AblationAlpha,
	"ablation-fcfs":        AblationFCFS,
	"model":                ModelValidation,
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
