// Package experiments regenerates every figure of the paper's evaluation
// (Section IV) plus the ablations called out in DESIGN.md. Each experiment
// returns tabular rows shared by the CLI (cmd/decouplebench) and the
// benchmark harness (bench_test.go).
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"text/tabwriter"

	"repro/internal/mpi"
)

// Row is one measured point of an experiment series.
type Row struct {
	// Experiment is the experiment id, e.g. "fig5".
	Experiment string
	// Series is the legend entry, e.g. "Decoupling (alpha=6.25%)".
	Series string
	// Procs is the process count (or the swept parameter's value for
	// ablations; see Param).
	Procs int
	// Param carries the swept non-procs parameter for ablations
	// (element bytes, alpha in percent, ...); 0 otherwise.
	Param float64
	// Seconds is the mean execution time over Runs runs.
	Seconds float64
	// StdDev is the sample standard deviation over Runs runs.
	StdDev float64
	// Runs is the number of repetitions.
	Runs int
}

// Options controls experiment scale and repetition.
type Options struct {
	// MaxProcs caps the weak-scaling sweep (paper: 8,192). The default
	// keeps `go test -bench` affordable; the CLI can raise it.
	MaxProcs int
	// Runs is the number of repetitions per point (paper: 10). Seeds
	// vary per run; the mean and standard deviation are reported.
	Runs int
	// Workers is the number of sweep points simulated concurrently. Each
	// simulation owns its engine, so points are embarrassingly parallel
	// and results are bit-identical to a serial sweep. Zero means the
	// REPRO_WORKERS environment variable, or else one worker per CPU.
	Workers int
	// Fibers selects the goroutine-free (step-function) process
	// representation for the rank bodies. Every figure and ablation body
	// is ported (synthetic, CG, MapReduce, iPIC3D comm and I/O), so the
	// flag switches the whole registry. Trajectories are bit-identical
	// either way; fibers just dispatch faster. False means the
	// REPRO_FIBERS environment variable, unless FibersExplicit is set.
	Fibers bool
	// FibersExplicit marks Fibers as fully resolved by the caller: the
	// REPRO_FIBERS environment variable is not consulted. The CLI folds
	// the environment into its -fibers flag default and sets this, so an
	// explicit -fibers=false wins over REPRO_FIBERS=1.
	FibersExplicit bool
	// Cores, when >= 1, runs each point's simulation in the engine's
	// conservative parallel mode with that many workers (rows are
	// byte-identical for any Cores >= 1; see internal/sim's parallel-mode
	// contract). Zero keeps the classic single-engine mode. The sharded
	// experiments are listed in Shardable (the weak-scaling figures and
	// the co-scheduling contention sweep); the rest — crash recovery,
	// fault campaigns, lossy fabrics, the ablations and the analytic
	// model — reject a Cores >= 1 request with mpi.CannotShardError
	// rather than silently ignoring it.
	Cores int
	// CoschedJobs restricts the cosched experiment to one concurrent-job
	// count (0: sweep the built-in set).
	CoschedJobs int
	// CoschedPolicy restricts the cosched experiment to one inter-job
	// bank policy — "fcfs", "fair" or "priority" (empty: all three).
	CoschedPolicy string
	// FaultSpec is a fault-campaign spec in faults.ParseSpec syntax. The
	// resilience experiment scales it across its intensity sweep (empty
	// means the default campaign); the cosched experiment degrades the
	// shared bank's stripes with it when non-empty, and schedules no
	// faults when empty.
	FaultSpec string
	// Log, if non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.MaxProcs <= 0 {
		o.MaxProcs = 1024
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Workers <= 0 {
		if v, err := strconv.Atoi(os.Getenv("REPRO_WORKERS")); err == nil && v > 0 {
			o.Workers = v
		} else {
			o.Workers = runtime.NumCPU()
		}
	}
	if !o.Fibers && !o.FibersExplicit {
		o.Fibers = EnvFibers(false)
	}
	return o
}

// EnvFibers resolves the REPRO_FIBERS environment variable against a
// default: unset or unparseable values yield def. It is the single
// parser for that variable — the CLI folds it into its -fibers flag
// default (def true) and sets FibersExplicit; the library consults it
// only when Fibers was left false (def false, the compatible default).
func EnvFibers(def bool) bool {
	if v, err := strconv.ParseBool(os.Getenv("REPRO_FIBERS")); err == nil {
		return v
	}
	return def
}

// sweep returns the paper's process counts up to max: 32, 64, ..., max.
func sweep(max int) []int {
	var out []int
	for p := 32; p <= max; p *= 2 {
		out = append(out, p)
	}
	return out
}

// logf writes progress if a log sink is configured.
func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// point is one sweep point: a row template (Experiment, Series, Procs,
// Param) plus the simulation to measure at each seed. Every point of an
// experiment runs independently — one engine, one world per (point, seed)
// — so a sweep parallelizes without changing any result.
type point struct {
	row Row
	fn  func(seed int64) (float64, error)
}

// runPoints measures every point over opts.Runs seeds (seed = run+1, as
// the serial sweep always used) across a pool of opts.Workers goroutines,
// and aggregates mean and sample standard deviation per point. Rows come
// back in point order and every sample lands in its (point, run) slot, so
// the output is bit-identical regardless of worker count or scheduling.
// The first error in (point, run) order is returned, matching the serial
// sweep's first-encountered error.
func runPoints(opts Options, points []point) ([]Row, error) {
	// The sweep trades memory for fewer GC cycles: simulation backlogs
	// keep a large live heap, and the default target (GOGC=100) re-marks
	// it constantly. Restored on return.
	prevGC := debug.SetGCPercent(gcPercent())
	defer debug.SetGCPercent(prevGC)
	if opts.Workers == 1 {
		// A single worker keeps the seed's behavior of pinning the Go
		// runtime to one core: the simulator is inherently serial, and
		// cross-core handoffs only add scheduler overhead.
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
	}

	type slot struct{ pi, run int }
	samples := make([][]float64, len(points))
	errs := make([][]error, len(points))
	for i := range points {
		samples[i] = make([]float64, opts.Runs)
		errs[i] = make([]error, opts.Runs)
	}
	jobs := make(chan slot)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				samples[s.pi][s.run], errs[s.pi][s.run] = points[s.pi].fn(int64(s.run + 1))
			}
		}()
	}
	for pi, p := range points {
		opts.logf("%s: %s procs=%d param=%g", p.row.Experiment, p.row.Series, p.row.Procs, p.row.Param)
		for run := 0; run < opts.Runs; run++ {
			jobs <- slot{pi, run}
		}
	}
	close(jobs)
	wg.Wait()

	rows := make([]Row, len(points))
	var firstErr error
	for pi, p := range points {
		for _, err := range errs[pi] {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		mean, sd := aggregate(samples[pi])
		row := p.row
		row.Seconds, row.StdDev, row.Runs = mean, sd, opts.Runs
		rows[pi] = row
	}
	return rows, firstErr
}

// gcPercent reports the GC target used while sweeps run: REPRO_GOGC if
// set, else 1000. Simulation working sets are bounded by in-flight
// messages, so a high target mostly stops the collector from re-marking
// the backlog; lower REPRO_GOGC for memory-constrained full-scale runs.
func gcPercent() int {
	if v, err := strconv.Atoi(os.Getenv("REPRO_GOGC")); err == nil && v > 0 {
		return v
	}
	return 1000
}

// aggregate returns the mean and sample standard deviation of samples.
func aggregate(samples []float64) (mean, stddev float64) {
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean = sum / float64(len(samples))
	var ss float64
	for _, s := range samples {
		ss += (s - mean) * (s - mean)
	}
	if len(samples) > 1 {
		stddev = math.Sqrt(ss / float64(len(samples)-1))
	}
	return mean, stddev
}

// FormatTable renders rows as an aligned table grouped by experiment and
// series.
func FormatTable(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tseries\tprocs\tparam\tseconds\tstddev\truns")
	for _, r := range rows {
		param := ""
		if r.Param != 0 {
			param = fmt.Sprintf("%g", r.Param)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%.3f\t%.3f\t%d\n",
			r.Experiment, r.Series, r.Procs, param, r.Seconds, r.StdDev, r.Runs)
	}
	return tw.Flush()
}

// FormatCSV renders rows as CSV.
func FormatCSV(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintln(w, "experiment,series,procs,param,seconds,stddev,runs"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%.6f,%.6f,%d\n",
			r.Experiment, r.Series, r.Procs, r.Param, r.Seconds, r.StdDev, r.Runs); err != nil {
			return err
		}
	}
	return nil
}

// Shardable marks the experiments whose simulations run in the
// conservative parallel mode when Options.Cores >= 1: the weak-scaling
// figures (fig5-fig7 spread their rank groups over the workers; fig8's
// decoupled variant spreads its compute group) and the co-scheduling
// contention sweep (whose jobs share a window-safe bank across the
// workers). Every other experiment depends on a classic-only feature —
// crash campaigns, message faults, tracing, or a single-engine
// co-scheduling baseline — and rejects Cores >= 1 with
// mpi.CannotShardError. Keep in sync with Registry.
var Shardable = map[string]bool{
	"fig5":    true,
	"fig6":    true,
	"fig7":    true,
	"fig8":    true,
	"cosched": true,
}

// rejectCores wraps a non-shardable experiment's runner with the uniform
// parallel-mode rejection, so a -cores request fails loudly up front
// instead of being silently ignored (or panicking deep inside a sweep).
func rejectCores(name string, fn func(Options) ([]Row, error)) func(Options) ([]Row, error) {
	return func(opts Options) ([]Row, error) {
		if opts.Cores >= 1 {
			return nil, fmt.Errorf("%s: %w", name, &mpi.CannotShardError{Feature: "the " + name + " experiment", Flag: "-cores"})
		}
		return fn(opts)
	}
}

// Registry maps experiment names to their runners, for the CLI.
var Registry = map[string]func(Options) ([]Row, error){
	"fig5":                 Fig5,
	"fig6":                 Fig6,
	"fig7":                 Fig7,
	"fig8":                 Fig8,
	"ablation-granularity": rejectCores("ablation-granularity", AblationGranularity),
	"ablation-alpha":       rejectCores("ablation-alpha", AblationAlpha),
	"ablation-fcfs":        rejectCores("ablation-fcfs", AblationFCFS),
	"cosched":              Cosched,
	"model":                rejectCores("model", ModelValidation),
	"recovery":             rejectCores("recovery", Recovery),
	"resilience":           rejectCores("resilience", Resilience),
	"lossy":                rejectCores("lossy", Lossy),
}

// Descriptions gives every registered experiment a one-line summary,
// for the CLI's -list output. Keep in sync with Registry.
var Descriptions = map[string]string{
	"fig5":                 "weak-scaling makespan of the three particle-I/O variants (paper Fig. 5)",
	"fig6":                 "communication-kernel scaling without I/O (paper Fig. 6)",
	"fig7":                 "CG and MapReduce proxy-app scaling (paper Fig. 7)",
	"fig8":                 "iPIC3D particle-I/O makespan at scale (paper Fig. 8)",
	"ablation-granularity": "write-granularity sweep for the decoupled I/O group",
	"ablation-alpha":       "I/O-group size (alpha) sweep for the decoupled variant",
	"ablation-fcfs":        "bank arbitration policy ablation (FCFS vs fair vs priority)",
	"cosched":              "co-scheduled multi-job contention on a shared bank",
	"model":                "analytic cost-model validation against simulated makespans",
	"recovery":             "checkpoint interval x crash intensity sweep with restart/replay (wasted work, recovery overhead)",
	"resilience":           "fault-campaign intensity sweep (bursts, outages, stripe derates, link flaps)",
	"lossy":                "fabric loss-rate sweep under the reliable-delivery protocol (ack/timeout/backoff/retransmit)",
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
