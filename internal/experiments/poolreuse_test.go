package experiments

import (
	"bytes"
	"testing"
)

// Pool-reuse guards: worlds (and cluster engines) recycle through
// process-wide pools across sweep points and across experiments, so a
// state leak in World.reset / Engine.Reset / matchIndex.reset would show
// up as an experiment's rows changing depending on what ran before it.
// Each test renders an experiment's rows, pollutes the pools with
// differently-shaped experiments (different world sizes, communicators,
// matching patterns, stream channels), renders again, and requires the
// bytes to be identical to the first (fresh-pool) rendering.

// renderRows renders an experiment's rows at reduced scale.
func renderRows(t *testing.T, name string, opts Options) []byte {
	t.Helper()
	rows, err := Registry[name](opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var buf bytes.Buffer
	if err := FormatCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorldPoolReuseAcrossExperiments: a single-world experiment rendered
// before and after two unrelated experiments churned the world pool must
// not change by a byte.
func TestWorldPoolReuseAcrossExperiments(t *testing.T) {
	opts := Options{MaxProcs: 32, Runs: 2, Workers: 2}
	first := renderRows(t, "fig8", opts)
	// Pollute: different world sizes, collectives, stream channels and
	// matching patterns, released back into the same pools.
	renderRows(t, "model", opts)
	renderRows(t, "fig5", opts)
	again := renderRows(t, "fig8", opts)
	if !bytes.Equal(first, again) {
		t.Errorf("fig8 rows changed after pool churn\n--- before ---\n%s--- after ---\n%s", first, again)
	}
}

// TestClusterPoolReuseAcrossExperiments: the cosched experiment draws
// recycled worlds out of the pool into shared-engine (external) service
// and recycles engines through the cluster pool; its rows must be
// independent of both pools' prior contents — and the single-world
// experiments must be unaffected by cosched having marked pooled worlds
// external.
func TestClusterPoolReuseAcrossExperiments(t *testing.T) {
	opts := Options{MaxProcs: 32, Runs: 2, Workers: 2, CoschedJobs: 2, CoschedPolicy: "fair"}
	cosched := renderRows(t, "cosched", opts)
	fig8 := renderRows(t, "fig8", opts)
	renderRows(t, "model", opts)
	coschedAgain := renderRows(t, "cosched", opts)
	if !bytes.Equal(cosched, coschedAgain) {
		t.Errorf("cosched rows changed after pool churn\n--- before ---\n%s--- after ---\n%s", cosched, coschedAgain)
	}
	fig8Again := renderRows(t, "fig8", opts)
	if !bytes.Equal(fig8, fig8Again) {
		t.Errorf("fig8 rows changed after cosched ran\n--- before ---\n%s--- after ---\n%s", fig8, fig8Again)
	}
}

// TestShardedCoschedPoolReuse: a sharded cosched run builds its worlds
// against a shard group and a group-attached bank, while recycling those
// worlds through the same process-wide pool the classic runs draw from.
// Nothing sharded may survive into later runs (Bank.Reset drops the
// attachment; sharded runs never borrow pooled cluster engines), so
// classic renderings after a sharded run — and a second sharded
// rendering after classic churn — must not change by a byte.
func TestShardedCoschedPoolReuse(t *testing.T) {
	classicOpts := Options{MaxProcs: 32, Runs: 2, Workers: 2, CoschedJobs: 2, CoschedPolicy: "fair"}
	shardedOpts := classicOpts
	shardedOpts.Cores = 4
	classic := renderRows(t, "cosched", classicOpts)
	fig8 := renderRows(t, "fig8", classicOpts)
	sharded := renderRows(t, "cosched", shardedOpts)
	if classicAgain := renderRows(t, "cosched", classicOpts); !bytes.Equal(classic, classicAgain) {
		t.Errorf("classic cosched rows changed after a sharded run\n--- before ---\n%s--- after ---\n%s", classic, classicAgain)
	}
	if fig8Again := renderRows(t, "fig8", classicOpts); !bytes.Equal(fig8, fig8Again) {
		t.Errorf("fig8 rows changed after a sharded cosched run\n--- before ---\n%s--- after ---\n%s", fig8, fig8Again)
	}
	if shardedAgain := renderRows(t, "cosched", shardedOpts); !bytes.Equal(sharded, shardedAgain) {
		t.Errorf("sharded cosched rows changed after classic churn\n--- before ---\n%s--- after ---\n%s", sharded, shardedAgain)
	}
}
