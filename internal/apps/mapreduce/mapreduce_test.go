package mapreduce

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/trace"
)

// quickConfig shrinks the workload so tests run in milliseconds.
func quickConfig(procs int) Config {
	c := DefaultConfig(procs)
	c.MeanFileBytes = 8 << 20
	c.ChunkBytes = 2 << 20
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(32).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(32)
	bad.Procs = 1
	if bad.Validate() == nil {
		t.Error("1 proc accepted")
	}
	bad = DefaultConfig(32)
	bad.Alpha = 1
	if bad.Validate() == nil {
		t.Error("alpha=1 accepted")
	}
	bad = DefaultConfig(32)
	bad.MapRate = 0
	if bad.Validate() == nil {
		t.Error("zero map rate accepted")
	}
}

func TestReferenceRuns(t *testing.T) {
	res, err := RunReference(quickConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.TotalBytes <= 0 || res.Messages <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestDecoupledRuns(t *testing.T) {
	res, err := RunDecoupled(quickConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Elements <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestDecoupledNeedsAlpha(t *testing.T) {
	c := quickConfig(16)
	c.Alpha = 0
	if _, err := RunDecoupled(c); err == nil {
		t.Fatal("alpha=0 decoupled run accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	c := quickConfig(16)
	a, err := RunDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Elements != b.Elements {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	c := quickConfig(16)
	a, _ := RunDecoupled(c)
	c.Seed = 999
	b, _ := RunDecoupled(c)
	if a.Time == b.Time {
		t.Fatal("different seeds produced identical times")
	}
}

func TestElementCountMatchesChunks(t *testing.T) {
	c := quickConfig(16)
	c.Noise = netmodel.None{}
	res, err := RunDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	// Chunks are ceil(share/ChunkBytes) per mapper; the total must be
	// within one chunk per mapper of totalBytes/ChunkBytes.
	approx := res.TotalBytes / c.ChunkBytes
	if res.Elements < approx-16 || res.Elements > approx+16 {
		t.Fatalf("elements = %d, want about %d", res.Elements, approx)
	}
}

// The paper's headline: the decoupled implementation wins, and the gap
// grows with scale (Fig. 5, 2x at 32 procs growing to 4x at 8,192).
func TestDecoupledBeatsReferenceAndGapGrows(t *testing.T) {
	ratio := func(p int) float64 {
		c := DefaultConfig(p)
		ref, err := RunReference(c)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := RunDecoupled(c)
		if err != nil {
			t.Fatal(err)
		}
		return float64(ref.Time) / float64(dec.Time)
	}
	small, large := ratio(32), ratio(256)
	if small < 1.2 {
		t.Fatalf("decoupled not clearly ahead at 32 procs: ratio %.2f", small)
	}
	if large <= small {
		t.Fatalf("gap did not grow with scale: %.2f at 32 vs %.2f at 256", small, large)
	}
}

// Fig. 5's alpha comparison: at scale, alpha=6.25%% beats 12.5%%.
func TestAlphaOrderingAtScale(t *testing.T) {
	c := DefaultConfig(256)
	c.Alpha = 0.0625
	best, err := RunDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Alpha = 0.125
	wide, err := RunDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	if float64(wide.Time) < float64(best.Time)*0.95 {
		t.Fatalf("alpha=12.5%% (%v) clearly beat alpha=6.25%% (%v)", wide.Time, best.Time)
	}
}

func TestTracerReceivesSpans(t *testing.T) {
	c := quickConfig(8)
	var rec trace.Recorder
	c.Tracer = &rec
	if _, err := RunDecoupled(c); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	sawMap, sawReduce := false, false
	for _, s := range rec.Spans() {
		switch s.Label {
		case "map":
			sawMap = true
		case "reduce":
			sawReduce = true
		}
	}
	if !sawMap || !sawReduce {
		t.Fatalf("missing phases in trace: map=%v reduce=%v", sawMap, sawReduce)
	}
}
