// Fiber ports of the MapReduce rank bodies (Fig. 5): the goroutine
// bodies of mapreduce.go as explicit continuation state machines, run
// goroutine-free with World.RunFibers. Operation order matches the
// goroutine bodies exactly, so the regenerated rows are bit-identical
// across representations (asserted by the experiments differential test).
package mapreduce

import (
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
)

// mapFileFibers is mapFile in continuation form: chunk computes
// interleaved with emissions (which themselves never block). The emit
// continuation is hoisted out of the loop, so mapping allocates nothing
// per chunk.
func mapFileFibers(r *mpi.Rank, c Config, bytes int64, emit func(chunkKV int64), done sim.StepFunc) sim.StepFunc {
	off := int64(0)
	chunk := int64(0)
	var loop sim.StepFunc
	emitStep := sim.Then(func() {
		if emit != nil {
			emit(int64(float64(chunk) * c.EmitRatio))
		}
	}, &loop)
	loop = func(_ *sim.Fiber) sim.StepFunc {
		if off >= bytes {
			return done
		}
		chunk = c.ChunkBytes
		if off+chunk > bytes {
			chunk = bytes - off
		}
		off += c.ChunkBytes
		return r.FComputeLabeled(sim.FromSeconds(float64(chunk)/c.MapRate), "map", emitStep)
	}
	return loop
}

// runReferenceFibers is RunReference's body in fiber form.
func runReferenceFibers(c Config, w *mpi.World) (Result, error) {
	corpus := c.corpus()
	finished := make([]sim.Time, c.Procs)
	shares := c.inputShares(c.Procs)
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		return mapFileFibers(r, c, shares[r.ID()], nil, func(_ *sim.Fiber) sim.StepFunc {
			return world.FIallgatherv(r, mpi.Part{Bytes: c.KeyBytesPerProc}, func(kr *mpi.CollRequest) sim.StepFunc {
				return world.FWaitColl(r, kr, func(interface{}) sim.StepFunc {
					return world.FIreduce(r, 0, mpi.Part{Bytes: c.GlobalKeyBytes}, mpi.SumInt64,
						mpi.LinearCost(sim.Time(float64(sim.Second)/c.MergeRate)),
						func(rr *mpi.CollRequest) sim.StepFunc {
							return world.FWaitColl(r, rr, func(interface{}) sim.StepFunc {
								finished[r.ID()] = r.Now()
								return nil
							})
						})
				})
			})
		})
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), TotalBytes: corpus.TotalBytes(), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}

// runDecoupledFibers is RunDecoupled's body in fiber form.
func runDecoupledFibers(c Config, w *mpi.World) (Result, error) {
	corpus := c.corpus()
	finished := make([]sim.Time, c.Procs)
	elems := make([]int64, c.Procs)
	reducers := int(float64(c.Procs)*c.Alpha + 0.5)
	if reducers < 1 {
		reducers = 1
	}
	mappers := c.Procs - reducers
	shares := c.inputShares(mappers)
	masterWorld := mappers
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		role := stream.Producer
		if r.ID() >= mappers {
			role = stream.Consumer
		}
		return stream.FCreateChannel(r, world, role, func(ch *stream.Channel) sim.StepFunc {
			st := ch.Attach(r, stream.Options{
				ElementBytes:   int64(float64(c.ChunkBytes) * c.EmitRatio),
				InjectOverhead: 200 * sim.Nanosecond,
			})
			mergeCost := func(bytes int64) sim.Time {
				return sim.FromSeconds(float64(bytes) / c.StreamMergeRate)
			}
			finish := func(_ *sim.Fiber) sim.StepFunc {
				return ch.FFree(r, func(_ *sim.Fiber) sim.StepFunc {
					finished[r.ID()] = r.Now()
					return nil
				})
			}
			switch {
			case role == stream.Producer:
				pi := ch.ProducerIndex(r)
				shards := ch.Consumers() - 1
				base := 1
				if shards == 0 {
					shards, base = 1, 0
				}
				chunkSeq := pi // stagger shard assignment across mappers
				return mapFileFibers(r, c, shares[pi], func(kv int64) {
					st.IsendTo(r, stream.Element{Bytes: kv}, base+chunkSeq%shards)
					chunkSeq++
				}, func(_ *sim.Fiber) sim.StepFunc {
					st.Terminate(r)
					return finish
				})
			case ch.ConsumerIndex(r) == 0 && ch.Consumers() > 1:
				// Master: drain the (empty) stream to participate in
				// termination, then aggregate reducer updates until every
				// reducer reports done.
				return st.FOperate(r, func(_ *mpi.Rank, _ stream.Element, _ int, then sim.StepFunc) sim.StepFunc {
					return then
				}, func(stream.Stats) sim.StepFunc {
					var updates, expected int64
					done := 0
					upReq := world.Irecv(r, mpi.AnySource, updateTag)
					doneReq := world.Irecv(r, mpi.AnySource, doneTag)
					reqs := make([]*mpi.Request, 2)
					// The drain loop's continuations are hoisted so the
					// master allocates nothing per aggregated update.
					var drain sim.StepFunc
					var onMsg func(int, mpi.Status) sim.StepFunc
					repost := sim.Then(func() {
						upReq = world.Irecv(r, mpi.AnySource, updateTag)
					}, &drain)
					onMsg = func(idx int, stt mpi.Status) sim.StepFunc {
						if idx == 0 {
							updates++
							return r.FComputeLabeled(c.UpdateCost, "master-update", repost)
						}
						expected += stt.Data.(int64)
						done++
						doneReq = world.Irecv(r, mpi.AnySource, doneTag)
						return drain
					}
					drain = func(_ *sim.Fiber) sim.StepFunc {
						if done >= reducers-1 && updates >= expected {
							return finish
						}
						reqs[0], reqs[1] = upReq, doneReq
						return world.FWaitAny(r, reqs, onMsg)
					}
					return drain
				})
			default:
				// Local reducer: merge arrivals on the fly, forwarding an
				// unaggregated update record to the master per element.
				// The post-merge continuation is hoisted (the operator's
				// `then` is threaded through a captured slot), so reducing
				// allocates nothing per element.
				var myUpdates int64
				var mergeThen sim.StepFunc
				merged := sim.Then(func() {
					if ch.Consumers() > 1 {
						world.IsendAndFree(r, masterWorld, updateTag, c.UpdateBytes, nil)
						myUpdates++
					}
				}, &mergeThen)
				return st.FOperate(r, func(rr *mpi.Rank, e stream.Element, src int, then sim.StepFunc) sim.StepFunc {
					mergeThen = then
					return rr.FComputeLabeled(mergeCost(e.Bytes), "reduce", merged)
				}, func(stats stream.Stats) sim.StepFunc {
					elems[r.ID()] = stats.ElementsReceived
					if ch.Consumers() > 1 {
						return world.FSend(r, masterWorld, doneTag, 8, myUpdates, finish)
					}
					return finish
				})
			}
		})
	})
	if err != nil {
		return Result{}, err
	}
	var elements int64
	for _, e := range elems {
		elements += e
	}
	res := Result{
		Time:       maxTime(finished),
		TotalBytes: corpus.TotalBytes(),
		Messages:   w.MessagesSent(),
		Elements:   elements,
	}
	w.Release()
	return res, nil
}
