// Package mapreduce reproduces the paper's MapReduce word-histogram case
// study (Section IV-B) on the simulated runtime.
//
// Reference implementation (after Hoefler et al. [15], as the paper
// describes): every process maps its share of the log files; when all
// processes complete the map, an Iallgatherv builds the global key set and
// an Ireduce aggregates the dense global histogram vector. Three costs
// grow with P: the allgathered key volume (linear in P), the reduce tree
// depth (log P combine+transfer levels on the critical path), and the
// end-of-map synchronization, which charges the slowest mapper's file-size
// skew and noise to everyone.
//
// Decoupled implementation: map and reduce are split onto two groups
// linked by MPI streams. Mappers stream intermediate (key, count) batches
// as soon as a chunk is mapped; reducers merge arrivals first-come-first-
// served. The reduce group is further decoupled into local reducers plus
// one master that aggregates the global result. Following the paper, no
// data aggregation is applied between reducers and master ("we did not
// apply data aggregation to optimize the data flow within the reduce
// group"), so per-element update traffic congests the master as the scale
// grows — the effect the paper observes at 4,096 and 8,192 processes.
package mapreduce

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Tags used on the world communicator by the decoupled implementation.
const (
	updateTag = 7 // reducer -> master incremental updates
	doneTag   = 8 // reducer -> master end-of-updates marker
)

// Config describes one MapReduce experiment run.
type Config struct {
	// Procs is the total number of processes.
	Procs int
	// Alpha is the fraction of processes dedicated to the decoupled
	// reduce (ignored by RunReference). Paper values: 0.125, 0.0625,
	// 0.03125.
	Alpha float64
	// FilesPerProc scales the workload weakly: total files = Procs *
	// FilesPerProc.
	FilesPerProc int
	// MeanFileBytes is the average log-file size (the paper's corpus
	// averages ~360 MB per process with a 256 MB - 1 GB skew).
	MeanFileBytes int64
	// MapRate is the map throughput in input bytes per second (reading
	// plus tokenizing plus hashing).
	MapRate float64
	// MergeRate is the dense-vector merge throughput of the reference
	// reduce, in bytes per second.
	MergeRate float64
	// StreamMergeRate is the hash-histogram merge throughput of the
	// decoupled reducers, in bytes per second (string-keyed hash merging
	// is slower than dense vector addition).
	StreamMergeRate float64
	// KeyBytesPerProc is the per-process intermediate key-set payload
	// exchanged by the reference Iallgatherv.
	KeyBytesPerProc int64
	// GlobalKeyBytes is the dense global histogram vector the reference
	// Ireduce combines at every tree level.
	GlobalKeyBytes int64
	// EmitRatio is intermediate KV bytes emitted per input byte.
	EmitRatio float64
	// ChunkBytes is the map chunk size; the decoupled mapper emits one
	// stream element per chunk (the granularity S of Eq. 4).
	ChunkBytes int64
	// UpdateBytes is the per-element update record a reducer forwards to
	// the master (unaggregated, per the paper).
	UpdateBytes int64
	// UpdateCost is the master's processing cost per update record.
	UpdateCost sim.Time
	// ImbalanceCoV is the coefficient of variation of per-process input
	// shares, modelling the 256 MB - 1 GB file-size skew of the corpus.
	ImbalanceCoV float64
	// Fibers selects the step-function process representation for the
	// rank bodies (goroutine-free dispatch; trajectories are bit-identical
	// either way). Ignored when a Tracer is configured.
	Fibers bool
	// Cores, when >= 1, runs the job in the engine's conservative
	// parallel mode with that many workers. Rows are byte-identical for
	// any Cores >= 1; Cores == 0 keeps the classic single-engine mode.
	// MapReduce does no file I/O, so placement is unconstrained: the
	// reference spreads all ranks evenly, the decoupled run spreads the
	// map and reduce groups each evenly. Incompatible with Tracer, like
	// the underlying mpi.Config.Shards.
	Cores int
	// Seed drives all randomness; Noise is the compute noise model.
	Seed  int64
	Noise netmodel.Noise
	// Tracer optionally records execution spans.
	Tracer mpi.Tracer
}

// DefaultConfig returns paper-shaped parameters for the given scale.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:           procs,
		Alpha:           0.0625,
		FilesPerProc:    4,
		MeanFileBytes:   90 << 20,
		MapRate:         50e6,
		MergeRate:       100e6,
		StreamMergeRate: 14e6,
		KeyBytesPerProc: 16 << 20,
		GlobalKeyBytes:  200 << 20,
		EmitRatio:       0.02,
		ChunkBytes:      8 << 20,
		UpdateBytes:     2 << 10,
		UpdateCost:      20 * sim.Microsecond,
		ImbalanceCoV:    0.25,
		Seed:            1,
		Noise:           netmodel.DefaultCluster(),
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Procs < 2 {
		return fmt.Errorf("mapreduce: need at least 2 procs, got %d", c.Procs)
	}
	if c.Alpha < 0 || c.Alpha >= 1 {
		return fmt.Errorf("mapreduce: alpha %v outside [0,1)", c.Alpha)
	}
	if c.FilesPerProc <= 0 || c.MeanFileBytes <= 0 || c.ChunkBytes <= 0 {
		return fmt.Errorf("mapreduce: non-positive workload parameter")
	}
	if c.MapRate <= 0 || c.MergeRate <= 0 || c.StreamMergeRate <= 0 || c.EmitRatio <= 0 {
		return fmt.Errorf("mapreduce: non-positive rate")
	}
	if c.Cores < 0 {
		return fmt.Errorf("mapreduce: negative core count %d", c.Cores)
	}
	return nil
}

// decoupledPlace spreads the map and reduce groups each evenly over
// cores workers: mapper i goes to worker i*cores/mappers, reducer j (by
// index within the reduce group) to worker j*cores/reducers. No file
// I/O means no pinning constraint; spreading both groups balances map
// compute and stream merging alike.
func decoupledPlace(cores, mappers, reducers int) func(rank int) int {
	return func(rank int) int {
		if rank < mappers {
			return rank * cores / mappers
		}
		return (rank - mappers) * cores / reducers
	}
}

// worldConfig builds the run's mpi configuration, applying the
// parallel-mode worker count (and, for the decoupled run, its group
// placement) when Cores is set.
func (c Config) worldConfig(mappers, reducers int) mpi.Config {
	mc := mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: c.Noise, Tracer: c.Tracer}
	if c.Cores >= 1 {
		mc.Shards = c.Cores
		if reducers > 0 {
			mc.Place = decoupledPlace(c.Cores, mappers, reducers)
		}
	}
	return mc
}

// maxTime folds a per-rank instant slice into its maximum.
func maxTime(ts []sim.Time) sim.Time {
	var m sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Result reports one run's outcome.
type Result struct {
	// Time is the application makespan in virtual time.
	Time sim.Time
	// TotalBytes is the input volume processed.
	TotalBytes int64
	// Messages is the number of point-to-point messages on the network.
	Messages int64
	// Elements is the number of stream elements (decoupled runs only).
	Elements int64
}

// corpus builds the weak-scaled corpus for a config.
func (c Config) corpus() workload.Corpus {
	return workload.DefaultCorpus(c.Procs*c.FilesPerProc, c.MeanFileBytes, c.Seed)
}

// inputShares deals the corpus bytes over n workers with the configured
// per-worker skew (the file-size imbalance of the paper's log corpus).
// The same skew vector applies to the reference and decoupled runs.
func (c Config) inputShares(n int) []int64 {
	// Deal the corpus's realized size, not the nominal mean: the
	// log-uniform file draws make the two differ by several percent at
	// small file counts, and the element accounting (one element per
	// mapped chunk) is checked against the realized total.
	total := c.corpus().TotalBytes()
	factors := workload.Imbalance(n, c.ImbalanceCoV, c.Seed+77)
	var fsum float64
	for _, f := range factors {
		fsum += f
	}
	out := make([]int64, n)
	for i, f := range factors {
		out[i] = int64(float64(total) * f / fsum)
	}
	return out
}

// mapFile charges the map compute for one file in chunk-sized pieces,
// invoking emit after each chunk with the chunk's intermediate KV bytes.
func mapFile(r *mpi.Rank, c Config, bytes int64, emit func(chunkKV int64)) {
	for off := int64(0); off < bytes; off += c.ChunkBytes {
		chunk := c.ChunkBytes
		if off+chunk > bytes {
			chunk = bytes - off
		}
		r.ComputeLabeled(sim.FromSeconds(float64(chunk)/c.MapRate), "map")
		if emit != nil {
			emit(int64(float64(chunk) * c.EmitRatio))
		}
	}
}

// RunReference executes the conventional implementation.
func RunReference(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Cores >= 1 && c.Tracer != nil {
		return Result{}, &mpi.CannotShardError{Feature: "tracing", Flag: "-cores"}
	}
	corpus := c.corpus()
	w := mpi.NewWorld(c.worldConfig(c.Procs, 0))
	if c.Fibers && c.Tracer == nil {
		return runReferenceFibers(c, w)
	}
	// finished[i] is the instant rank i's body ended: rank i writes only
	// slot i, so ranks hosted on different parallel-mode workers never
	// share a word. The makespan folds after the engines stop.
	finished := make([]sim.Time, c.Procs)
	shares := c.inputShares(c.Procs)
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		// Map phase: process my share of the corpus to completion.
		mapFile(r, c, shares[r.ID()], nil)
		// Build the global key set (all P processes participate; the
		// gathered volume grows linearly with P).
		kr := world.Iallgatherv(r, mpi.Part{Bytes: c.KeyBytesPerProc})
		world.WaitColl(r, kr)
		// Aggregate the dense global histogram (log P combine levels on
		// the critical path, each transferring and merging the vector).
		rr := world.Ireduce(r, 0, mpi.Part{Bytes: c.GlobalKeyBytes}, mpi.SumInt64,
			mpi.LinearCost(sim.Time(float64(sim.Second)/c.MergeRate)))
		world.WaitColl(r, rr)
		finished[r.ID()] = r.Now()
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), TotalBytes: corpus.TotalBytes(), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}

// RunDecoupled executes the decoupled implementation with the configured
// alpha.
func RunDecoupled(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Alpha <= 0 {
		return Result{}, fmt.Errorf("mapreduce: decoupled run needs alpha > 0")
	}
	if c.Cores >= 1 && c.Tracer != nil {
		return Result{}, &mpi.CannotShardError{Feature: "tracing", Flag: "-cores"}
	}
	corpus := c.corpus()
	reducers := int(float64(c.Procs)*c.Alpha + 0.5)
	if reducers < 1 {
		reducers = 1
	}
	mappers := c.Procs - reducers
	w := mpi.NewWorld(c.worldConfig(mappers, reducers))
	if c.Fibers && c.Tracer == nil {
		return runDecoupledFibers(c, w)
	}
	finished := make([]sim.Time, c.Procs)
	// elems[i] is rank i's stream-element count (consumers only); like
	// finished it is strictly per-rank, so sharded workers never race.
	elems := make([]int64, c.Procs)
	shares := c.inputShares(mappers)
	// masterWorld is the world rank of the reduce group's master: the
	// first consumer rank.
	masterWorld := mappers
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= mappers {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{
			ElementBytes:   int64(float64(c.ChunkBytes) * c.EmitRatio),
			InjectOverhead: 200 * sim.Nanosecond,
		})
		mergeCost := func(bytes int64) sim.Time {
			return sim.FromSeconds(float64(bytes) / c.StreamMergeRate)
		}
		switch {
		case role == stream.Producer:
			pi := ch.ProducerIndex(r)
			// Shard chunks over the local reducers (consumer indices
			// 1..C-1; the master at index 0 aggregates only). With a
			// single consumer it does double duty.
			shards := ch.Consumers() - 1
			base := 1
			if shards == 0 {
				shards, base = 1, 0
			}
			chunkSeq := pi // stagger shard assignment across mappers
			mapFile(r, c, shares[pi], func(kv int64) {
				st.IsendTo(r, stream.Element{Bytes: kv}, base+chunkSeq%shards)
				chunkSeq++
			})
			st.Terminate(r)
		case ch.ConsumerIndex(r) == 0 && ch.Consumers() > 1:
			// Master: drain the (empty) stream to participate in
			// termination, then aggregate reducer updates until every
			// reducer reports done.
			st.Operate(r, func(*mpi.Rank, stream.Element, int) {})
			var updates, expected int64
			done := 0
			upReq := world.Irecv(r, mpi.AnySource, updateTag)
			doneReq := world.Irecv(r, mpi.AnySource, doneTag)
			for done < reducers-1 || updates < expected {
				idx, stt := world.WaitAny(r, []*mpi.Request{upReq, doneReq})
				if idx == 0 {
					updates++
					r.ComputeLabeled(c.UpdateCost, "master-update")
					upReq = world.Irecv(r, mpi.AnySource, updateTag)
				} else {
					expected += stt.Data.(int64)
					done++
					doneReq = world.Irecv(r, mpi.AnySource, doneTag)
				}
			}
		default:
			// Local reducer: merge arrivals on the fly, forwarding an
			// unaggregated update record to the master per element.
			var myUpdates int64
			stats := st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				rr.ComputeLabeled(mergeCost(e.Bytes), "reduce")
				if ch.Consumers() > 1 {
					world.IsendAndFree(rr, masterWorld, updateTag, c.UpdateBytes, nil)
					myUpdates++
				}
			})
			elems[r.ID()] = stats.ElementsReceived
			if ch.Consumers() > 1 {
				world.Send(r, masterWorld, doneTag, 8, myUpdates)
			}
		}
		ch.Free(r)
		finished[r.ID()] = r.Now()
	})
	if err != nil {
		return Result{}, err
	}
	var elements int64
	for _, e := range elems {
		elements += e
	}
	res := Result{
		Time:       maxTime(finished),
		TotalBytes: corpus.TotalBytes(),
		Messages:   w.MessagesSent(),
		Elements:   elements,
	}
	w.Release()
	return res, nil
}
