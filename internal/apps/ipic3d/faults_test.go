package ipic3d

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// ioVariants is the Fig. 8 sweep order used by the fault tests.
var ioVariants = []IOVariant{IOCollective, IOShared, IODecoupled}

// testCampaign compiles a campaign sized to quickConfig's ~0.1s virtual
// makespan, with every injector family represented.
func testCampaign(t *testing.T, procs int) *faults.Injection {
	t.Helper()
	sp := faults.Spec{
		Seed:    7,
		Horizon: 300 * sim.Millisecond,
		Bursts:  6, BurstLen: 40 * sim.Millisecond, BurstFactor: 10,
		Outages: 2, OutageLen: 80 * sim.Millisecond,
		DerateStripes: 6, DerateRate: 0.25,
		Flaps: 3, FlapLen: 50 * sim.Millisecond, LatencyFactor: 8, BandwidthFactor: 4,
	}
	inj, err := sp.Plan(procs, 16).Compile(procs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Empty() {
		t.Fatal("test campaign compiled to an empty injection")
	}
	return &inj
}

// TestIOFaultsEmptyInjectionNeutral: a compiled empty plan must leave
// every variant's trajectory byte-identical to Faults == nil, in both
// process representations — the contract that lets fault plumbing ride
// in every configuration without moving unfaulted results.
func TestIOFaultsEmptyInjectionNeutral(t *testing.T) {
	for _, fibers := range []bool{false, true} {
		for _, v := range ioVariants {
			c := quickConfig(17)
			c.Fibers = fibers
			base, err := RunIO(c, v)
			if err != nil {
				t.Fatalf("%v fibers=%v: %v", v, fibers, err)
			}
			inj, err := faults.Plan{}.Compile(c.Procs, 16)
			if err != nil {
				t.Fatal(err)
			}
			c.Faults = &inj
			same, err := RunIO(c, v)
			if err != nil {
				t.Fatalf("%v fibers=%v faulted: %v", v, fibers, err)
			}
			if same != base {
				t.Fatalf("%v fibers=%v: empty injection moved the result: %+v vs %+v", v, fibers, same, base)
			}
		}
	}
}

// TestIOFaultsDeterministic: one compiled campaign must produce the
// identical result across both process representations and across
// repeated runs (which reuse pooled worlds/engines) — and must actually
// perturb the clean trajectory, or the determinism claim is vacuous.
func TestIOFaultsDeterministic(t *testing.T) {
	inj := testCampaign(t, 17)
	for _, v := range ioVariants {
		var ref Result
		first := true
		for rep := 0; rep < 2; rep++ {
			for _, fibers := range []bool{false, true} {
				c := quickConfig(17)
				c.Fibers = fibers
				c.Faults = inj
				res, err := RunIO(c, v)
				if err != nil {
					t.Fatalf("%v fibers=%v rep=%d: %v", v, fibers, rep, err)
				}
				if first {
					ref, first = res, false
				} else if res != ref {
					t.Fatalf("%v fibers=%v rep=%d: faulted result diverged: %+v vs %+v", v, fibers, rep, res, ref)
				}
			}
		}
		clean, err := RunIO(quickConfig(17), v)
		if err != nil {
			t.Fatal(err)
		}
		if ref == clean {
			t.Fatalf("%v: campaign perturbed nothing (faulted == clean %+v)", v, clean)
		}
		if ref.Time < clean.Time {
			t.Fatalf("%v: faults shortened the makespan: %v < %v", v, ref.Time, clean.Time)
		}
	}
}

// TestStartIORejectsStripeFaults: stripe faults on a co-scheduled job
// would degrade the shared bank behind the cluster's back; StartIO must
// refuse them (cluster.Config.StripeFaults owns that).
func TestStartIORejectsStripeFaults(t *testing.T) {
	inj := testCampaign(t, 17)
	if inj.Stripe == nil {
		t.Fatal("test campaign has no stripe faults")
	}
	c := quickConfig(17)
	c.Faults = inj
	eng := sim.NewEngine(1)
	defer eng.Abort()
	base := mpi.Config{Engine: eng, Bank: sim.NewBank(4, 1, sim.BankFCFS), FS: netmodel.LustreLike()}
	if _, err := StartIO(c, IODecoupled, base); err == nil {
		t.Fatal("StartIO accepted stripe faults on a shared bank")
	}
}
