package ipic3d

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/workload"
)

// IOVariant selects a particle-I/O implementation (Fig. 8).
type IOVariant int

// The three implementations of Fig. 8.
const (
	// IOCollective is MPI_File_write_all: two-phase collective I/O with
	// a file view recalculated every step (particle counts change).
	IOCollective IOVariant = iota
	// IOShared is MPI_File_write_shared: shared-file-pointer writes
	// whose consistency semantics serialize at scale.
	IOShared
	// IODecoupled streams particles to a dedicated I/O group that
	// buffers aggressively and issues few large writes, overlapped with
	// the computation.
	IODecoupled
)

// String names the variant as the figure legend does.
func (v IOVariant) String() string {
	switch v {
	case IOCollective:
		return "RefColl"
	case IOShared:
		return "RefShared"
	case IODecoupled:
		return "Decoupling"
	default:
		return fmt.Sprintf("IOVariant(%d)", int(v))
	}
}

// validIOVariant rejects values outside the three implementations.
func validIOVariant(v IOVariant) error {
	switch v {
	case IOCollective, IOShared, IODecoupled:
		return nil
	default:
		return fmt.Errorf("ipic3d: unknown IO variant %d", int(v))
	}
}

// RunIO executes the selected particle-I/O implementation.
func RunIO(c Config, v IOVariant) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := validIOVariant(v); err != nil {
		return Result{}, err
	}
	if c.Faults != nil && len(c.Faults.Crash) > 0 {
		// The plain Fig. 8 bodies have no Protect scopes: a crash would
		// kill the job unrecoverably. Crash campaigns go through
		// RunRecovery, whose bodies checkpoint and replay.
		return Result{}, fmt.Errorf("ipic3d: crash campaign on a plain I/O run; use RunRecovery")
	}
	mc := mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: c.Noise, Tracer: c.Tracer}
	if c.Faults != nil {
		if c.Faults.Msg != nil {
			// The reliable-delivery layer posts acks and retransmission
			// timers from arrival callbacks, which the sharded engine and
			// the tracer cannot replay; refuse loudly rather than letting
			// mpi.NewWorld panic deep inside a sweep.
			if c.Cores >= 1 {
				return Result{}, &mpi.CannotShardError{Feature: "message-fault campaigns", Flag: "-cores"}
			}
			if c.Tracer != nil {
				return Result{}, fmt.Errorf("ipic3d: message-fault campaigns do not support tracing")
			}
		}
		mc.RankFaults = c.Faults.Rank
		mc.StripeFaults = c.Faults.Stripe
		mc.LinkFaults = c.Faults.Link
		mc.MsgFaults = c.Faults.Msg
	}
	s := newIORun(c, v)
	if c.Cores >= 1 {
		if c.Tracer != nil {
			return Result{}, &mpi.CannotShardError{Feature: "tracing", Flag: "-cores"}
		}
		mc.Shards, mc.Place = s.placement(c.Cores)
	}
	w := mpi.NewWorld(mc)
	var err error
	if c.Fibers && c.Tracer == nil {
		_, err = w.RunFibers(s.fiberBody())
	} else {
		_, err = w.Run(s.body())
	}
	if err != nil {
		return Result{}, err
	}
	res := s.result(w)
	w.Release()
	return res, nil
}

// saveBytes is the per-step output volume of a rank holding count
// particles.
func (c Config) saveBytes(count int64) int64 {
	return int64(float64(count)*c.SaveFraction) * c.ParticleBytes
}

// ioRun is one particle-I/O job's body state, shared by the goroutine and
// fiber representations and by the single-world (RunIO) and co-scheduled
// (StartIO) drivers. The rank bodies it builds perform exactly the
// operation sequence the pre-extraction closures did, so single-world
// trajectories are unchanged.
type ioRun struct {
	c Config
	v IOVariant

	// computes is the number of ranks holding particles: all of them for
	// the reference variants, Procs minus the I/O group for IODecoupled.
	computes int
	// ioProcs is the decoupled I/O group size (0 for reference variants).
	ioProcs int
	dims    [3]int
	field   workload.ParticleField

	// finished and lastCompute are per-world-rank records: rank i writes
	// only slot i, so ranks hosted on different parallel-mode workers
	// never share a word. finished[i] is the instant rank i's body ended;
	// lastCompute[i] is when it finished its final mover slice. The run's
	// makespan and I/O tail are folded from them after the engines stop.
	// Both representations record at the same virtual instants, so the
	// values are representation-neutral.
	finished    []sim.Time
	lastCompute []sim.Time
	file        *mpi.File
}

// noteCompute records the end of a rank's final mover.
func (s *ioRun) noteCompute(r *mpi.Rank) {
	s.lastCompute[r.ID()] = r.Now()
}

// noteFinish records the end of a rank's body.
func (s *ioRun) noteFinish(r *mpi.Rank) {
	s.finished[r.ID()] = r.Now()
}

// placement maps the job's ranks onto cores workers: the decoupled
// variant spreads its compute group evenly and pins the I/O group to the
// last worker (file I/O is engine-local, so a file's users must share a
// worker); the reference variants write one shared file from every rank,
// which forces the whole job onto a single worker.
func (s *ioRun) placement(cores int) (int, func(rank int) int) {
	if s.v != IODecoupled {
		return 1, nil
	}
	computes := s.computes
	return cores, func(rank int) int {
		if rank >= computes {
			return cores - 1
		}
		return rank * cores / computes
	}
}

// groupPlace maps a co-scheduled job's ranks onto the shards of the
// cluster's shared group. The reference variants write one shared file
// from every rank, so the whole job is pinned to a single shard, chosen
// by job index so different jobs land on different workers. The
// decoupled variant spreads its compute group evenly and pins its I/O
// group to one shard (a file's users must share a worker), with the
// whole layout rotated by job index so the pinned I/O groups — the
// ranks actually contending for the shared bank — do not all pile onto
// one worker.
func (s *ioRun) groupPlace(shards, job int) func(rank int) int {
	if s.v != IODecoupled {
		home := job % shards
		return func(rank int) int { return home }
	}
	computes := s.computes
	return func(rank int) int {
		sh := shards - 1
		if rank < computes {
			sh = rank * shards / computes
		}
		return (sh + job) % shards
	}
}

// newIORun derives the job's particle layout for the chosen variant.
func newIORun(c Config, v IOVariant) *ioRun {
	s := &ioRun{c: c, v: v, finished: make([]sim.Time, c.Procs), lastCompute: make([]sim.Time, c.Procs)}
	if v == IODecoupled {
		s.ioProcs = int(float64(c.Procs)*c.Alpha + 0.5)
		if s.ioProcs < 1 {
			s.ioProcs = 1
		}
		s.computes = c.Procs - s.ioProcs
	} else {
		s.computes = c.Procs
	}
	s.dims = dims3(s.computes)
	s.field = c.field(s.dims, s.computes)
	return s
}

// body returns the goroutine rank body for the job's variant.
func (s *ioRun) body() func(r *mpi.Rank) {
	if s.v == IODecoupled {
		return s.decoupledBody()
	}
	return s.referenceBody()
}

// fiberBody returns the fiber rank body for the job's variant (fiber.go).
func (s *ioRun) fiberBody() mpi.FiberMain {
	if s.v == IODecoupled {
		return s.decoupledFiberBody()
	}
	return s.referenceFiberBody()
}

// result collects the job's outcome once the engine has run.
func (s *ioRun) result(w *mpi.World) Result {
	var makespan, lastCompute sim.Time
	for i := range s.finished {
		if s.finished[i] > makespan {
			makespan = s.finished[i]
		}
		if s.lastCompute[i] > lastCompute {
			lastCompute = s.lastCompute[i]
		}
	}
	tail := makespan - lastCompute
	if tail < 0 {
		tail = 0
	}
	return Result{Time: makespan, Messages: w.MessagesSent(), BytesWritten: s.file.BytesWritten(), IOTail: tail, Retransmits: w.Retransmits()}
}

// relWindow is the decoupled producers' ack window under a lossy fabric:
// a producer pauses once this many stream sends sit unacknowledged, so a
// consumer falling behind on retransmissions exerts backpressure instead
// of letting fire-and-forget bursts pile up unbounded. Two steps' worth
// of bursts keeps the overlap pipeline full at moderate loss rates. On a
// lossless world WaitSendWindow is a no-op, so the pacing leaves
// zero-loss trajectories byte-identical.
const relWindow = 8

// IOJob is a particle-I/O job started on a shared engine for co-scheduled
// multi-world runs (internal/cluster): StartIO spawns the rank bodies but
// does not run the engine.
type IOJob struct {
	run *ioRun
	w   *mpi.World
}

// StartIO builds a world for the Fig. 8 job of variant v attached to the
// shared simulation resources in base (Engine or Group, Bank, Job, Name
// and the cluster-wide FS cost model) and spawns its rank bodies. When
// base carries a shard group (a sharded co-scheduled run), the job's
// ranks are placed onto the group's shards by groupPlace. The caller —
// normally a cluster.Job's Start hook — runs the shared engine or group
// once every job is started; Result is valid after that run completes.
func StartIO(c Config, v IOVariant, base mpi.Config) (*IOJob, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := validIOVariant(v); err != nil {
		return nil, err
	}
	if c.Tracer != nil {
		// Unlike RunIO there is no goroutine fallback to thread spans
		// through here; refuse rather than silently dropping the tracer.
		return nil, fmt.Errorf("ipic3d: tracing is not supported in co-scheduled runs")
	}
	base.Procs = c.Procs
	base.Seed = c.Seed
	base.Noise = c.Noise
	if c.Faults != nil {
		if c.Faults.Stripe != nil {
			// Stripe faults in a co-scheduled run degrade the shared bank,
			// which belongs to the cluster (cluster.Config.StripeFaults).
			return nil, fmt.Errorf("ipic3d: stripe faults on a co-scheduled job; install them on the shared bank via cluster.Config")
		}
		if len(c.Faults.Crash) > 0 {
			return nil, fmt.Errorf("ipic3d: crash campaign on a plain I/O job; use RunRecovery")
		}
		if c.Faults.Msg != nil {
			// Reliable-delivery worlds keep retransmission timers pending
			// on the engine past their bodies' completion; on a shared
			// engine those timers would stretch every co-scheduled job's
			// final time. Lossy campaigns run single-world via RunIO.
			return nil, fmt.Errorf("ipic3d: message-fault campaign on a co-scheduled job; lossy runs go through RunIO")
		}
		base.RankFaults = c.Faults.Rank
		base.LinkFaults = c.Faults.Link
	}
	s := newIORun(c, v)
	if base.Group != nil {
		base.Place = s.groupPlace(base.Group.Shards(), base.Job)
	}
	w := mpi.NewWorld(base)
	if c.Fibers {
		w.StartFibers(s.fiberBody())
	} else {
		w.Start(s.body())
	}
	return &IOJob{run: s, w: w}, nil
}

// World reports the job's world (for per-job makespans via Makespan).
func (j *IOJob) World() *mpi.World { return j.w }

// Result reports the job's outcome; call it only after the shared engine
// has run to completion.
func (j *IOJob) Result() Result { return j.run.result(j.w) }

// referenceBody: every process moves its particles, then saves them with
// the chosen MPI-IO path before the next step.
func (s *ioRun) referenceBody() func(r *mpi.Rank) {
	c, v := s.c, s.v
	return func(r *mpi.Rank) {
		world := r.World()
		cart := mpi.NewCart(world, s.dims[:], true)
		coords := cart.Coords(world.RankOf(r))
		myCount := s.field.Count([3]int{coords[0], coords[1], coords[2]})
		f := world.Open(r, "particles.dat")
		s.file = f
		out := c.saveBytes(myCount)
		for step := 0; step < c.Steps; step++ {
			r.ComputeLabeled(c.moverTime(myCount), "mover")
			if step == c.Steps-1 {
				s.noteCompute(r)
			}
			if v == IOCollective {
				// Two-phase collective write; the embedded allgatherv is
				// the per-step file-view recalculation the paper
				// describes.
				f.WriteAll(r, out)
			} else {
				f.WriteShared(r, out)
			}
		}
		s.noteFinish(r)
	}
}

// decoupledBody: compute ranks stream particle output to the I/O group as
// the mover produces it; the I/O group buffers several steps' arrivals and
// flushes them in large shared writes, overlapping file-system time with
// the computation of subsequent steps.
func (s *ioRun) decoupledBody() func(r *mpi.Rank) {
	c := s.c
	computes, ioProcs := s.computes, s.ioProcs
	return func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= computes {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{})
		if role == stream.Producer {
			g0 := ch.ProducerComm()
			cart := mpi.NewCart(g0, s.dims[:], true)
			coords := cart.Coords(g0.RankOf(r))
			myCount := s.field.Count([3]int{coords[0], coords[1], coords[2]})
			out := c.saveBytes(myCount)
			for step := 0; step < c.Steps; step++ {
				// The mover emits output in bursts through the step.
				for burst := 0; burst < 4; burst++ {
					r.ComputeLabeled(c.moverTime(myCount)/4, "mover")
					if step == c.Steps-1 && burst == 3 {
						s.noteCompute(r)
					}
					st.Isend(r, stream.Element{Bytes: out / 4})
					if r.Reliable() {
						r.WaitSendWindow(relWindow)
					}
				}
			}
			st.Terminate(r)
		} else {
			f := ch.ConsumerComm().Open(r, "particles.dat")
			s.file = f
			// Aggressive buffering: flush one large shared write per
			// BufferSteps steps' worth of my producers' output, while
			// the compute group keeps working.
			perProducerStep := c.saveBytes(c.ParticlesPerProc)
			producersHere := int64((computes + ioProcs - 1) / ioProcs)
			threshold := int64(c.BufferSteps) * perProducerStep * producersHere
			var buffered int64
			st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				buffered += e.Bytes
				if buffered >= threshold {
					f.WriteShared(rr, buffered)
					buffered = 0
				}
			})
			if buffered > 0 {
				f.WriteShared(r, buffered)
			}
		}
		ch.Free(r)
		s.noteFinish(r)
	}
}
