package ipic3d

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
)

// IOVariant selects a particle-I/O implementation (Fig. 8).
type IOVariant int

// The three implementations of Fig. 8.
const (
	// IOCollective is MPI_File_write_all: two-phase collective I/O with
	// a file view recalculated every step (particle counts change).
	IOCollective IOVariant = iota
	// IOShared is MPI_File_write_shared: shared-file-pointer writes
	// whose consistency semantics serialize at scale.
	IOShared
	// IODecoupled streams particles to a dedicated I/O group that
	// buffers aggressively and issues few large writes, overlapped with
	// the computation.
	IODecoupled
)

// String names the variant as the figure legend does.
func (v IOVariant) String() string {
	switch v {
	case IOCollective:
		return "RefColl"
	case IOShared:
		return "RefShared"
	case IODecoupled:
		return "Decoupling"
	default:
		return fmt.Sprintf("IOVariant(%d)", int(v))
	}
}

// RunIO executes the selected particle-I/O implementation.
func RunIO(c Config, v IOVariant) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	switch v {
	case IOCollective, IOShared:
		return runIOReference(c, v)
	case IODecoupled:
		return runIODecoupled(c)
	default:
		return Result{}, fmt.Errorf("ipic3d: unknown IO variant %d", v)
	}
}

// saveBytes is the per-step output volume of a rank holding count
// particles.
func (c Config) saveBytes(count int64) int64 {
	return int64(float64(count)*c.SaveFraction) * c.ParticleBytes
}

// runIOReference: every process moves its particles, then saves them with
// the chosen MPI-IO path before the next step.
func runIOReference(c Config, v IOVariant) (Result, error) {
	w := mpi.NewWorld(mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: c.Noise, Tracer: c.Tracer})
	if c.Fibers && c.Tracer == nil {
		return runIOReferenceFibers(c, v, w)
	}
	dims := dims3(c.Procs)
	field := c.field(dims, c.Procs)
	var makespan sim.Time
	var file *mpi.File
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		cart := mpi.NewCart(world, dims[:], true)
		coords := cart.Coords(world.RankOf(r))
		myCount := field.Count([3]int{coords[0], coords[1], coords[2]})
		f := world.Open(r, "particles.dat")
		file = f
		out := c.saveBytes(myCount)
		for step := 0; step < c.Steps; step++ {
			r.ComputeLabeled(c.moverTime(myCount), "mover")
			if v == IOCollective {
				// Two-phase collective write; the embedded allgatherv is
				// the per-step file-view recalculation the paper
				// describes.
				f.WriteAll(r, out)
			} else {
				f.WriteShared(r, out)
			}
		}
		if t := r.Now(); t > makespan {
			makespan = t
		}
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: makespan, Messages: w.MessagesSent(), BytesWritten: file.BytesWritten()}
	w.Release()
	return res, nil
}

// runIODecoupled: compute ranks stream particle output to the I/O group as
// the mover produces it; the I/O group buffers several steps' arrivals and
// flushes them in large shared writes, overlapping file-system time with
// the computation of subsequent steps.
func runIODecoupled(c Config) (Result, error) {
	w := mpi.NewWorld(mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: c.Noise, Tracer: c.Tracer})
	if c.Fibers && c.Tracer == nil {
		return runIODecoupledFibers(c, w)
	}
	ioProcs := int(float64(c.Procs)*c.Alpha + 0.5)
	if ioProcs < 1 {
		ioProcs = 1
	}
	computes := c.Procs - ioProcs
	dims := dims3(computes)
	field := c.field(dims, computes)
	var makespan sim.Time
	var file *mpi.File
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= computes {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{})
		if role == stream.Producer {
			g0 := ch.ProducerComm()
			cart := mpi.NewCart(g0, dims[:], true)
			coords := cart.Coords(g0.RankOf(r))
			myCount := field.Count([3]int{coords[0], coords[1], coords[2]})
			out := c.saveBytes(myCount)
			for step := 0; step < c.Steps; step++ {
				// The mover emits output in bursts through the step.
				for burst := 0; burst < 4; burst++ {
					r.ComputeLabeled(c.moverTime(myCount)/4, "mover")
					st.Isend(r, stream.Element{Bytes: out / 4})
				}
			}
			st.Terminate(r)
		} else {
			f := ch.ConsumerComm().Open(r, "particles.dat")
			file = f
			// Aggressive buffering: flush one large shared write per
			// BufferSteps steps' worth of my producers' output, while
			// the compute group keeps working.
			perProducerStep := c.saveBytes(c.ParticlesPerProc)
			producersHere := int64((computes + ioProcs - 1) / ioProcs)
			threshold := int64(c.BufferSteps) * perProducerStep * producersHere
			var buffered int64
			st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				buffered += e.Bytes
				if buffered >= threshold {
					f.WriteShared(rr, buffered)
					buffered = 0
				}
			})
			if buffered > 0 {
				f.WriteShared(r, buffered)
			}
		}
		ch.Free(r)
		if t := r.Now(); t > makespan {
			makespan = t
		}
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: makespan, Messages: w.MessagesSent(), BytesWritten: file.BytesWritten()}
	w.Release()
	return res, nil
}
