// Fiber ports of the checkpoint/restart bodies in recovery.go: the same
// operation sequence as the goroutine attempts — Open, mover steps,
// checkpoint write, commit — in continuation form, with the protect
// scope expressed through FProtect/FRebuild/FCheckFailed. Shared-state
// mutations (committed, compute accounting) sit at the same completion
// instants as the goroutine bodies', so crash campaigns replay
// bit-for-bit across representations.
package ipic3d

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// fiberBody returns the fiber rank body for the job's variant.
func (s *recRun) fiberBody() mpi.FiberMain {
	return func(r *mpi.Rank, fib *sim.Fiber) sim.StepFunc {
		var attempt sim.StepFunc
		if s.v == IODecoupled {
			attempt = s.decoupledFiberAttempt(r)
		} else {
			attempt = s.referenceFiberAttempt(r)
		}
		var onFail func(error) sim.StepFunc
		onFail = func(err error) sim.StepFunc {
			rf, ok := err.(*mpi.RankFailedError)
			if !ok {
				panic(err)
			}
			s.failovers++
			s.noteFailure(rf)
			return r.FRebuild(r.FProtect(attempt, onFail))
		}
		start := r.FProtect(attempt, onFail)
		if r.Incarnation() > 0 {
			s.restarts++
			return r.FRebuild(start)
		}
		return start
	}
}

// recFinish records the rank's completion instant — the same point the
// goroutine body reads r.Now() after its Protect loop exits.
func (s *recRun) recFinish(r *mpi.Rank) sim.StepFunc {
	return func(_ *sim.Fiber) sim.StepFunc {
		if t := r.Now(); t > s.makespan {
			s.makespan = t
		}
		return nil
	}
}

// referenceFiberAttempt is referenceAttempt in continuation form.
func (s *recRun) referenceFiberAttempt(r *mpi.Rank) sim.StepFunc {
	c, v := s.c, s.v
	world := r.World()
	cart := mpi.NewCart(world, s.dims[:], true)
	coords := cart.Coords(world.RankOf(r))
	myCount := s.field.Count([3]int{coords[0], coords[1], coords[2]})
	mt := c.moverTime(myCount)
	out := s.ckptBytes(myCount)
	finish := s.recFinish(r)
	return func(_ *sim.Fiber) sim.StepFunc {
		return world.FOpen(r, recCkptFile, func(f *mpi.File) sim.StepFunc {
			s.file = f
			i, to := 0, 0
			var segLoop, stepLoop, write, commit sim.StepFunc
			counted := func(_ *sim.Fiber) sim.StepFunc {
				s.totalCompute += mt
				return stepLoop
			}
			segLoop = func(_ *sim.Fiber) sim.StepFunc {
				if s.committed >= c.Steps {
					return finish
				}
				i = s.committed
				to = s.segEnd(i)
				return stepLoop
			}
			stepLoop = func(_ *sim.Fiber) sim.StepFunc {
				if i >= to {
					return write
				}
				i++
				return r.FComputeLabeled(mt, "mover", counted)
			}
			write = func(_ *sim.Fiber) sim.StepFunc {
				if v == IOCollective {
					return f.FWriteAll(r, out, commit)
				}
				return f.FWriteShared(r, out, commit)
			}
			commit = func(_ *sim.Fiber) sim.StepFunc {
				return world.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
					return r.FCheckFailed(func(_ *sim.Fiber) sim.StepFunc {
						s.committed = to
						s.bankCommitted = to
						return segLoop
					})
				})
			}
			return segLoop
		})
	}
}

// decoupledFiberAttempt is decoupledAttempt in continuation form.
func (s *recRun) decoupledFiberAttempt(r *mpi.Rank) sim.StepFunc {
	c := s.c
	world := r.World()
	color := 0
	if r.ID() >= s.computes {
		color = 1
	}
	return func(_ *sim.Fiber) sim.StepFunc {
		return world.FOpen(r, recCkptFile, func(f *mpi.File) sim.StepFunc {
			s.file = f
			return world.FSplit(r, color, r.ID(), func(group *mpi.Comm) sim.StepFunc {
				finish := func(_ *sim.Fiber) sim.StepFunc {
					return world.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
						return r.FCheckFailed(s.recFinish(r))
					})
				}
				if color == 0 {
					g := group.RankOf(r)
					myCount := s.prodCount(g)
					mt := c.moverTime(myCount)
					out := s.ckptBytes(myCount)
					home := s.ioHome(g)
					local := s.committed
					var stepLoop sim.StepFunc
					counted := func(_ *sim.Fiber) sim.StepFunc {
						s.totalCompute += mt
						local++
						world.IsendAndFree(r, home, recCkptTag, out, local)
						return r.FCheckFailed(stepLoop)
					}
					stepLoop = func(_ *sim.Fiber) sim.StepFunc {
						if local >= c.Steps {
							return finish
						}
						return r.FComputeLabeled(mt, "mover", counted)
					}
					return stepLoop
				}
				acked := make([]int, s.computes)
				for g := range acked {
					acked[g] = s.committed
				}
				mine := func(g int) bool { return s.ioHome(g) == r.ID() }
				next := 0
				outstanding := 0
				flushing := false
				flushG := 0
				var stepLoop, collect, flush sim.StepFunc
				commit := func(_ *sim.Fiber) sim.StepFunc {
					return group.FBarrier(r, func(_ *sim.Fiber) sim.StepFunc {
						return r.FCheckFailed(func(_ *sim.Fiber) sim.StepFunc {
							s.committed = next
							if flushing {
								s.bankCommitted = next
							}
							return stepLoop
						})
					})
				}
				onRecv := func(st mpi.Status) sim.StepFunc {
					prev := acked[st.Source]
					if v, _ := st.Data.(int); v > prev {
						acked[st.Source] = v
					}
					if prev < next && acked[st.Source] >= next {
						outstanding--
					}
					return collect
				}
				stepLoop = func(_ *sim.Fiber) sim.StepFunc {
					if s.committed >= c.Steps {
						return finish
					}
					next = s.committed + 1
					outstanding = 0
					for g := 0; g < s.computes; g++ {
						if mine(g) && acked[g] < next {
							outstanding++
						}
					}
					return collect
				}
				collect = func(f2 *sim.Fiber) sim.StepFunc {
					if outstanding > 0 {
						return world.FRecv(r, mpi.AnySource, recCkptTag, onRecv)
					}
					flushing = next%s.ckptEvery == 0 || next == c.Steps
					flushG = 0
					return flush(f2)
				}
				flush = func(f2 *sim.Fiber) sim.StepFunc {
					if !flushing {
						return commit(f2)
					}
					for flushG < s.computes && !mine(flushG) {
						flushG++
					}
					if flushG >= s.computes {
						return commit(f2)
					}
					g := flushG
					flushG++
					return f.FWriteShared(r, s.ckptBytes(s.prodCount(g)), flush)
				}
				return stepLoop
			})
		})
	}
}
