// Fiber ports of the iPIC3D rank bodies (Figs. 7 and 8): the goroutine
// bodies of comm.go and io.go as explicit continuation state machines,
// run goroutine-free with World.RunFibers. Operation order matches the
// goroutine bodies exactly, so the regenerated rows are bit-identical
// across representations (asserted by the experiments differential test).
package ipic3d

import (
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
)

// runCommReferenceFibers is RunCommReference's body in fiber form.
func runCommReferenceFibers(c Config, w *mpi.World) (Result, error) {
	dims := dims3(c.Procs)
	field := c.field(dims, c.Procs)
	finished := make([]sim.Time, c.Procs)
	totalRounds := 0
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		cart := mpi.NewCart(world, dims[:], true)
		me := world.RankOf(r)
		coords := cart.Coords(me)
		myCount := field.Count([3]int{coords[0], coords[1], coords[2]})
		exitFrac := field.ExitFraction([3]int{coords[0], coords[1], coords[2]}, c.Mobility)
		packTime := func(bytes int64) sim.Time {
			return sim.FromSeconds(float64(bytes) / c.PackRate)
		}
		step := 0
		var outbound, inbound int64
		rounds := 0
		got := 0
		reqs := make([]*mpi.Request, 0, 6)
		// Every continuation of the step/round state machine is built
		// once, here: a closure inside the loops would allocate per round
		// trip (the forwarding rounds are the per-message hot path).
		var stepLoop, roundLoop, recvLoop, agree sim.StepFunc
		var onRecv func(mpi.Status) sim.StepFunc
		var onSent func([]mpi.Status) sim.StepFunc
		var onAgreed func(mpi.Part) sim.StepFunc
		startRound := sim.Then(func() {
			outbound = int64(float64(myCount) * exitFrac)
			rounds = 0
		}, &roundLoop)
		stepLoop = func(_ *sim.Fiber) sim.StepFunc {
			if step >= c.Steps {
				finished[r.ID()] = r.Now()
				return nil
			}
			step++
			// Mover: update particle positions (skewed per-rank load).
			return r.FComputeLabeled(c.moverTime(myCount), "mover", startRound)
		}
		startRecv := sim.Then(func() { got = 0 }, &recvLoop)
		roundLoop = func(_ *sim.Fiber) sim.StepFunc {
			counts := exitCounts(outbound)
			reqs = reqs[:0]
			dir := 0
			inbound = 0
			for dim := 0; dim < 3; dim++ {
				for _, disp := range []int{-1, 1} {
					_, dst := cart.Shift(me, dim, disp)
					bytes := counts[dir] * c.ParticleBytes
					reqs = append(reqs, world.Isend(r, dst, fwdTag, bytes, counts[dir]))
					dir++
				}
			}
			// Packing the outbound buffers costs CPU every round.
			return r.FComputeLabeled(packTime(outbound*c.ParticleBytes), "pack", startRecv)
		}
		onRecv = func(st mpi.Status) sim.StepFunc {
			inbound += st.Data.(int64)
			return recvLoop
		}
		recvLoop = func(_ *sim.Fiber) sim.StepFunc {
			if got < 6 {
				got++
				return world.FRecv(r, mpi.AnySource, fwdTag, onRecv)
			}
			return world.FWaitAll(r, reqs, onSent)
		}
		unpacked := sim.Then(func() {
			rounds++
			// Diagonal movers must continue along another dimension.
			outbound = int64(float64(inbound) * c.ForwardContinue)
		}, &agree)
		onSent = func([]mpi.Status) sim.StepFunc {
			// Unpack and re-sort the arrivals before the next round.
			return r.FComputeLabeled(packTime(inbound*c.ParticleBytes), "unpack", unpacked)
		}
		// Global termination check, paid every round.
		agree = func(_ *sim.Fiber) sim.StepFunc {
			return world.FAllreduce(r, mpi.Part{Bytes: 8, Data: outbound}, mpi.SumInt64, nil, onAgreed)
		}
		onAgreed = func(part mpi.Part) sim.StepFunc {
			if part.Data.(int64) == 0 {
				if me == 0 {
					totalRounds += rounds
				}
				return stepLoop
			}
			return roundLoop
		}
		return stepLoop
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent(), ForwardRounds: totalRounds}
	w.Release()
	return res, nil
}

// runCommDecoupledFibers is RunCommDecoupled's body in fiber form.
func runCommDecoupledFibers(c Config, w *mpi.World) (Result, error) {
	helpers := int(float64(c.Procs)*c.Alpha + 0.5)
	if helpers < 1 {
		helpers = 1
	}
	computes := c.Procs - helpers
	dims := dims3(computes)
	field := c.field(dims, computes)
	finished := make([]sim.Time, c.Procs)
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		role := stream.Producer
		if r.ID() >= computes {
			role = stream.Consumer
		}
		return stream.FCreateChannel(r, world, role, func(ch *stream.Channel) sim.StepFunc {
			st := ch.Attach(r, stream.Options{ElementBytes: c.ParticleBytes})
			finish := func(_ *sim.Fiber) sim.StepFunc {
				return ch.FFree(r, func(_ *sim.Fiber) sim.StepFunc {
					finished[r.ID()] = r.Now()
					return nil
				})
			}
			if role == stream.Producer {
				g0 := ch.ProducerComm()
				cart := mpi.NewCart(g0, dims[:], true)
				me := g0.RankOf(r)
				coords := cart.Coords(me)
				myCount := field.Count([3]int{coords[0], coords[1], coords[2]})
				exitFrac := field.ExitFraction([3]int{coords[0], coords[1], coords[2]}, c.Mobility)
				arrived := 0
				pendingAgg := world.Irecv(r, mpi.AnySource, aggTag)
				step := 0
				var counts [6]int64
				k := 0
				// All continuations are hoisted out of the loops
				// (per-direction emit, aggregate test, drain), so a
				// steady-state sweep step allocates nothing beyond its
				// stream elements and requests.
				var stepLoop, dirLoop, testLoop, drainLoop sim.StepFunc
				var onTest func(bool, mpi.Status) sim.StepFunc
				var onDrained func(mpi.Status) sim.StepFunc
				emit := sim.Then(func() {
					idx := k - 1
					_, dst := cart.Shift(me, idx/2, -1+2*(idx%2))
					bytes := counts[idx] * c.ParticleBytes
					st.IsendTo(r, stream.Element{
						Bytes: bytes,
						Data:  commMsg{dst: dst, step: step},
					}, ch.HomeConsumer(dst))
				}, &dirLoop)
				stepLoop = func(_ *sim.Fiber) sim.StepFunc {
					if step >= c.Steps {
						st.Terminate(r)
						return drainLoop
					}
					counts = exitCounts(int64(float64(myCount) * exitFrac))
					k = 0
					return dirLoop
				}
				dirLoop = func(_ *sim.Fiber) sim.StepFunc {
					if k >= 6 {
						return testLoop
					}
					k++
					return r.FComputeLabeled(c.moverTime(myCount)/6, "mover", emit)
				}
				onTest = func(ok bool, _ mpi.Status) sim.StepFunc {
					if !ok {
						step++
						return stepLoop
					}
					arrived++ // arrivals integrate into the next sweep
					if arrived < c.Steps {
						pendingAgg = world.Irecv(r, mpi.AnySource, aggTag)
					}
					return testLoop
				}
				testLoop = func(_ *sim.Fiber) sim.StepFunc {
					if arrived >= c.Steps {
						step++
						return stepLoop
					}
					return world.FTest(r, pendingAgg, onTest)
				}
				onDrained = func(mpi.Status) sim.StepFunc {
					arrived++
					if arrived < c.Steps {
						pendingAgg = world.Irecv(r, mpi.AnySource, aggTag)
					}
					return drainLoop
				}
				// Drain the remaining aggregates before exiting.
				drainLoop = func(_ *sim.Fiber) sim.StepFunc {
					if arrived >= c.Steps {
						return finish
					}
					return world.FWait(r, pendingAgg, onDrained)
				}
				return stepLoop
			}
			// Communication group: aggregate by destination, forward in
			// one pass once a destination's six batches for a step have
			// arrived.
			type key struct{ dst, step int }
			pending := make(map[key]int)
			volume := make(map[key]int64)
			return st.FOperate(r, func(rr *mpi.Rank, e stream.Element, src int, then sim.StepFunc) sim.StepFunc {
				cm := e.Data.(commMsg)
				k := key{dst: cm.dst, step: cm.step}
				pending[k]++
				volume[k] += e.Bytes
				if pending[k] == 6 {
					world.IsendAndFree(rr, cm.dst, aggTag, volume[k], nil)
					delete(pending, k)
					delete(volume, k)
				}
				return then
			}, func(stream.Stats) sim.StepFunc { return finish })
		})
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}

// referenceFiberBody is referenceBody in fiber form.
func (s *ioRun) referenceFiberBody() mpi.FiberMain {
	c, v := s.c, s.v
	return func(r *mpi.Rank, fib *sim.Fiber) sim.StepFunc {
		world := r.World()
		cart := mpi.NewCart(world, s.dims[:], true)
		coords := cart.Coords(world.RankOf(r))
		myCount := s.field.Count([3]int{coords[0], coords[1], coords[2]})
		return world.FOpen(r, "particles.dat", func(f *mpi.File) sim.StepFunc {
			s.file = f
			out := c.saveBytes(myCount)
			step := 0
			var stepLoop, save sim.StepFunc
			save = func(_ *sim.Fiber) sim.StepFunc {
				// save runs at the mover's completion instant, matching the
				// goroutine body's post-ComputeLabeled recording point.
				if step == c.Steps {
					s.noteCompute(r)
				}
				if v == IOCollective {
					return f.FWriteAll(r, out, stepLoop)
				}
				return f.FWriteShared(r, out, stepLoop)
			}
			stepLoop = func(_ *sim.Fiber) sim.StepFunc {
				if step >= c.Steps {
					s.noteFinish(r)
					return nil
				}
				step++
				return r.FComputeLabeled(c.moverTime(myCount), "mover", save)
			}
			return stepLoop
		})
	}
}

// decoupledFiberBody is decoupledBody in fiber form.
func (s *ioRun) decoupledFiberBody() mpi.FiberMain {
	c := s.c
	computes, ioProcs := s.computes, s.ioProcs
	return func(r *mpi.Rank, fib *sim.Fiber) sim.StepFunc {
		world := r.World()
		role := stream.Producer
		if r.ID() >= computes {
			role = stream.Consumer
		}
		return stream.FCreateChannel(r, world, role, func(ch *stream.Channel) sim.StepFunc {
			st := ch.Attach(r, stream.Options{})
			finish := func(_ *sim.Fiber) sim.StepFunc {
				return ch.FFree(r, func(_ *sim.Fiber) sim.StepFunc {
					s.noteFinish(r)
					return nil
				})
			}
			if role == stream.Producer {
				g0 := ch.ProducerComm()
				cart := mpi.NewCart(g0, s.dims[:], true)
				coords := cart.Coords(g0.RankOf(r))
				myCount := s.field.Count([3]int{coords[0], coords[1], coords[2]})
				out := c.saveBytes(myCount)
				step, burst := 0, 0
				var stepLoop sim.StepFunc
				emit := func(_ *sim.Fiber) sim.StepFunc {
					// Runs at the burst's compute-completion instant; the
					// final burst of the final step is the producer's last
					// mover work, matching the goroutine body's recording.
					if step == c.Steps-1 && burst == 4 {
						s.noteCompute(r)
					}
					st.Isend(r, stream.Element{Bytes: out / 4})
					if r.Reliable() {
						// Mirror the goroutine body's ack window pacing
						// event for event.
						return r.FWaitSendWindow(relWindow, stepLoop)
					}
					return stepLoop
				}
				stepLoop = func(_ *sim.Fiber) sim.StepFunc {
					if step >= c.Steps {
						st.Terminate(r)
						return finish
					}
					// The mover emits output in bursts through the step.
					if burst >= 4 {
						burst = 0
						step++
						return stepLoop
					}
					burst++
					return r.FComputeLabeled(c.moverTime(myCount)/4, "mover", emit)
				}
				return stepLoop
			}
			return ch.ConsumerComm().FOpen(r, "particles.dat", func(f *mpi.File) sim.StepFunc {
				s.file = f
				// Aggressive buffering: flush one large shared write per
				// BufferSteps steps' worth of my producers' output.
				perProducerStep := c.saveBytes(c.ParticlesPerProc)
				producersHere := int64((computes + ioProcs - 1) / ioProcs)
				threshold := int64(c.BufferSteps) * perProducerStep * producersHere
				var buffered int64
				return st.FOperate(r, func(rr *mpi.Rank, e stream.Element, src int, then sim.StepFunc) sim.StepFunc {
					buffered += e.Bytes
					if buffered >= threshold {
						b := buffered
						buffered = 0
						return f.FWriteShared(rr, b, then)
					}
					return then
				}, func(stream.Stats) sim.StepFunc {
					if buffered > 0 {
						return f.FWriteShared(r, buffered, finish)
					}
					return finish
				})
			})
		})
	}
}
