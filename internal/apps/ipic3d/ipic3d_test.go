package ipic3d

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// quickConfig shrinks the workload for fast tests.
func quickConfig(procs int) Config {
	c := DefaultConfig(procs)
	c.ParticlesPerProc = 20_000
	c.Steps = 3
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(32).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Procs = 1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.ParticlesPerProc = 0 },
		func(c *Config) { c.Mobility = 0.9 },
		func(c *Config) { c.ForwardContinue = 1 },
		func(c *Config) { c.SaveFraction = 0 },
		func(c *Config) { c.BufferSteps = 0 },
		func(c *Config) { c.PackRate = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig(32)
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExitCountsPartition(t *testing.T) {
	for _, total := range []int64{0, 1, 99, 1000, 123457} {
		counts := exitCounts(total)
		var sum int64
		for _, c := range counts {
			if c < 0 {
				t.Fatalf("negative direction count for total %d: %v", total, counts)
			}
			sum += c
		}
		if sum != total {
			t.Fatalf("exit counts %v sum to %d, want %d", counts, sum, total)
		}
	}
}

func TestCommReferenceRuns(t *testing.T) {
	res, err := RunCommReference(quickConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Messages <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// Forwarding needs several rounds per step (diagonal movers), within
	// the paper's DimX+DimY+DimZ bound.
	bound := 3 * (4 + 2 + 2) // generous: steps x dims sum
	if res.ForwardRounds < 3 || res.ForwardRounds > bound*3 {
		t.Fatalf("forward rounds = %d", res.ForwardRounds)
	}
}

func TestCommDecoupledRuns(t *testing.T) {
	res, err := RunCommDecoupled(quickConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestCommDeterministic(t *testing.T) {
	c := quickConfig(16)
	a, err := RunCommDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCommDecoupled(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Fatalf("nondeterministic: %v vs %v", a.Time, b.Time)
	}
}

// Fig. 7's shape: the reference's time grows with scale while the
// decoupled implementation stays near constant and wins at scale.
func TestCommDecoupledWinsAtScale(t *testing.T) {
	run := func(p int, dec bool) sim.Time {
		c := DefaultConfig(p)
		c.Steps = 5
		c.ParticlesPerProc = 100_000
		var res Result
		var err error
		if dec {
			res, err = RunCommDecoupled(c)
		} else {
			res, err = RunCommReference(c)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	// Decoupled stays near-constant while the reference drifts upward.
	// Exact per-size ratios wobble with the Cartesian decomposition's
	// sampling of the Harris sheet, so assert the aggregate shape.
	decGrowth := float64(run(512, true)) / float64(run(128, true))
	if decGrowth > 1.1 {
		t.Fatalf("decoupled not flat: growth %.3f from 128 to 512", decGrowth)
	}
	if ref, dec := run(512, false), run(512, true); dec >= ref {
		t.Fatalf("decoupled (%v) not faster than reference (%v) at 512 procs", dec, ref)
	}
}

func TestIOVariantsRun(t *testing.T) {
	for _, v := range []IOVariant{IOCollective, IOShared, IODecoupled} {
		res, err := RunIO(quickConfig(17), v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Time <= 0 || res.BytesWritten <= 0 {
			t.Fatalf("%v: degenerate result %+v", v, res)
		}
	}
}

func TestIOVariantStrings(t *testing.T) {
	if IOCollective.String() != "RefColl" || IOShared.String() != "RefShared" || IODecoupled.String() != "Decoupling" {
		t.Fatal("variant names do not match the figure legend")
	}
}

// All three I/O paths must write the same volume (same workload).
func TestIOVolumesAgree(t *testing.T) {
	c := quickConfig(16)
	coll, err := RunIO(c, IOCollective)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunIO(c, IOShared)
	if err != nil {
		t.Fatal(err)
	}
	if coll.BytesWritten != shared.BytesWritten {
		t.Fatalf("collective wrote %d, shared wrote %d", coll.BytesWritten, shared.BytesWritten)
	}
	// The decoupled path holds the same global population on fewer
	// ranks; its volume must be within the integer-rounding error.
	dec, err := RunIO(c, IODecoupled)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := coll.BytesWritten*90/100, coll.BytesWritten*110/100
	if dec.BytesWritten < lo || dec.BytesWritten > hi {
		t.Fatalf("decoupled volume %d far from reference %d", dec.BytesWritten, coll.BytesWritten)
	}
}

// Fig. 8's shape: shared-pointer I/O degrades fastest, collective I/O
// degrades moderately, decoupled I/O stays near flat.
func TestIOOrderingAtScale(t *testing.T) {
	c := DefaultConfig(512)
	c.Steps = 5
	c.ParticlesPerProc = 100_000
	coll, err := RunIO(c, IOCollective)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunIO(c, IOShared)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := RunIO(c, IODecoupled)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Time >= coll.Time {
		t.Fatalf("decoupled (%v) not faster than collective (%v)", dec.Time, coll.Time)
	}
	if coll.Time >= shared.Time {
		t.Fatalf("collective (%v) not faster than shared (%v)", coll.Time, shared.Time)
	}
}

// Fig. 2: the decoupled trace shows computation and communication
// overlapping, and a shorter makespan, on the paper's 7-rank setup.
func TestFig2TraceShape(t *testing.T) {
	c := quickConfig(7)
	var recRef trace.Recorder
	c.Tracer = &recRef
	ref, err := RunCommReference(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Tracer = nil
	cdec := c
	var recDec trace.Recorder
	cdec.Tracer = &recDec
	dec, err := RunCommDecoupled(cdec)
	if err != nil {
		t.Fatal(err)
	}
	if recRef.Len() == 0 || recDec.Len() == 0 {
		t.Fatal("traces empty")
	}
	_ = ref
	_ = dec
	// The reference trace must contain pack/unpack (comm-phase) spans on
	// every rank; the decoupled compute ranks must not.
	refPack := 0
	for _, s := range recRef.Spans() {
		if s.Label == "pack" || s.Label == "unpack" {
			refPack++
		}
	}
	if refPack == 0 {
		t.Fatal("reference trace has no communication-phase spans")
	}
	for _, s := range recDec.Spans() {
		if s.Label == "pack" || s.Label == "unpack" {
			t.Fatalf("decoupled compute rank shows %s span", s.Label)
		}
	}
}

// TestIOCoresDeterminism pins the parallel-mode contract at the app
// layer: every Fig. 8 variant produces identical results for any worker
// count >= 1, in both process representations.
func TestIOCoresDeterminism(t *testing.T) {
	for _, v := range []IOVariant{IOCollective, IOShared, IODecoupled} {
		for _, fibers := range []bool{false, true} {
			c := quickConfig(32)
			c.Fibers = fibers
			c.Cores = 1
			ref, err := RunIO(c, v)
			if err != nil {
				t.Fatalf("%v fibers=%v cores=1: %v", v, fibers, err)
			}
			for _, cores := range []int{2, 4, 8} {
				c.Cores = cores
				got, err := RunIO(c, v)
				if err != nil {
					t.Fatalf("%v fibers=%v cores=%d: %v", v, fibers, cores, err)
				}
				if got != ref {
					t.Errorf("%v fibers=%v cores=%d: %+v != cores=1 %+v", v, fibers, cores, got, ref)
				}
			}
		}
	}
}
