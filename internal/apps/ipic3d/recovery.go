// Checkpoint-aware iPIC3D bodies: the Fig. 8 particle-I/O variants
// recast as a crash-tolerant iterative application. Every rank runs its
// mover steps inside a Protect scope; every CkptEvery steps the job
// writes a full-state checkpoint through the variant's I/O path and
// commits the step counter to stable storage (the run-owned recRun
// struct, which survives rank respawns). A crash revokes the world
// (ULFM-style, see internal/mpi/failure.go), every survivor unwinds to
// its Protect scope, the victim respawns after the campaign's restart
// cost, and all ranks rebuild and replay from the last committed step —
// the replayed mover work is the run's wasted compute.
//
// The decoupled variant checkpoints the way it saves particles: compute
// ranks ship every step's state to the dedicated I/O group with
// fire-and-forget sends and keep computing. The I/O group is a separate
// fault domain, so its in-memory copy of the absorbed state is itself a
// commit level: the group advances the restart point every step it has
// fully absorbed, and flushes a full-state snapshot to the bank every
// CkptEvery steps. A compute-rank crash replays only the commit lag
// (about a step); an I/O-rank crash takes the memory tier with it and
// falls back to the last bank checkpoint — the trade the recovery
// experiment measures.
package ipic3d

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/workload"
)

// recCkptTag carries checkpoint shipments (and their committed-to step)
// from compute ranks to the decoupled I/O group on the world
// communicator. Distinct from fwdTag/aggTag; collectives tag above
// 1<<24.
const recCkptTag = 13

// recCkptFile is the shared checkpoint file name.
const recCkptFile = "checkpoint.dat"

// RecoveryResult reports one checkpoint/restart run's outcome.
type RecoveryResult struct {
	// Time is the effective makespan: base work plus checkpoint
	// overhead, restart costs and replayed work.
	Time sim.Time
	// TotalCompute is the mover time executed across all ranks and all
	// attempts, replays included.
	TotalCompute sim.Time
	// UsefulCompute is the mover time a crash-free run needs: Steps
	// passes over the particle grid.
	UsefulCompute sim.Time
	// WastedCompute is TotalCompute minus UsefulCompute: mover work
	// redone because a crash rolled the job back to its last checkpoint.
	WastedCompute sim.Time
	// Restarts counts rank respawns (one per delivered crash).
	Restarts int64
	// Failovers counts Protect-scope unwinds across all ranks: every
	// delivered crash fails the whole world once, so this is roughly
	// crashes times live ranks.
	Failovers int64
	// Checkpoints is the number of checkpoint write operations issued.
	Checkpoints int64
	// CheckpointBytes is the checkpoint volume on the file system,
	// replayed checkpoints included.
	CheckpointBytes int64
	// Messages is the point-to-point message count.
	Messages int64
}

// WastedFraction is WastedCompute over TotalCompute (0 for a crash-free
// run).
func (res RecoveryResult) WastedFraction() float64 {
	if res.TotalCompute == 0 {
		return 0
	}
	return float64(res.WastedCompute) / float64(res.TotalCompute)
}

// RunRecovery executes the checkpoint-aware body for the selected I/O
// variant with a checkpoint every ckptEvery steps. It is the only
// ipic3d entry point that accepts a crash-carrying campaign: the plain
// Fig. 8 bodies have no Protect scopes and would die unrecoverably.
func RunRecovery(c Config, v IOVariant, ckptEvery int) (RecoveryResult, error) {
	if err := c.Validate(); err != nil {
		return RecoveryResult{}, err
	}
	if err := validIOVariant(v); err != nil {
		return RecoveryResult{}, err
	}
	if ckptEvery < 1 {
		return RecoveryResult{}, fmt.Errorf("ipic3d: checkpoint interval %d", ckptEvery)
	}
	if c.Tracer != nil {
		// NewWorld rejects tracing under a crash campaign (spans of
		// killed ranks would dangle); refuse uniformly so a crash-free
		// recovery run traces the same as a crashing one would.
		return RecoveryResult{}, fmt.Errorf("ipic3d: tracing is not supported for recovery runs")
	}
	mc := mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: c.Noise}
	if c.Faults != nil {
		mc.RankFaults = c.Faults.Rank
		mc.StripeFaults = c.Faults.Stripe
		mc.LinkFaults = c.Faults.Link
		mc.Crashes = c.Faults.Crash
		mc.MsgFaults = c.Faults.Msg
	}
	w := mpi.NewWorld(mc)
	s := newRecRun(c, v, ckptEvery)
	var err error
	if c.Fibers {
		_, err = w.RunFibers(s.fiberBody())
	} else {
		_, err = w.Run(s.body())
	}
	if err != nil {
		return RecoveryResult{}, err
	}
	res := s.result(w)
	w.Release()
	return res, nil
}

// recRun is one recovery job's state, shared by both representations.
// Everything here is the job's stable storage: rank bodies (and their
// respawned incarnations) read and write it, and committed is the
// globally agreed restart point.
type recRun struct {
	c         Config
	v         IOVariant
	ckptEvery int

	// computes/ioProcs/dims/field: particle layout, as in ioRun.
	computes int
	ioProcs  int
	dims     [3]int
	field    workload.ParticleField

	// committed is the restart point: every rank replays from here after
	// a failure. The reference variants advance it at the barrier closing
	// each checkpoint; the decoupled variant's I/O group advances it for
	// every step fully absorbed into I/O-group memory.
	committed int
	// bankCommitted is the last step whose full-state snapshot reached
	// the bank. For the reference variants it tracks committed; for the
	// decoupled variant it trails it, and is the fallback restart point
	// when an I/O rank — the memory tier — is the crash victim.
	bankCommitted int

	makespan     sim.Time
	totalCompute sim.Time
	restarts     int64
	failovers    int64
	file         *mpi.File
}

// newRecRun derives the particle layout for the chosen variant, exactly
// as newIORun does for the Fig. 8 bodies.
func newRecRun(c Config, v IOVariant, ckptEvery int) *recRun {
	s := &recRun{c: c, v: v, ckptEvery: ckptEvery}
	if v == IODecoupled {
		s.ioProcs = int(float64(c.Procs)*c.Alpha + 0.5)
		if s.ioProcs < 1 {
			s.ioProcs = 1
		}
		s.computes = c.Procs - s.ioProcs
	} else {
		s.computes = c.Procs
	}
	s.dims = dims3(s.computes)
	s.field = c.field(s.dims, s.computes)
	return s
}

// segEnd is the step the next checkpoint commits, from the current
// committed (or locally reached) step.
func (s *recRun) segEnd(from int) int {
	to := from + s.ckptEvery
	if to > s.c.Steps {
		to = s.c.Steps
	}
	return to
}

// ckptBytes is a rank's full-state checkpoint volume.
func (s *recRun) ckptBytes(count int64) int64 {
	return count * s.c.ParticleBytes
}

// ioHome maps a compute rank to the I/O-group world rank that owns its
// checkpoint shipments (decoupled variant).
func (s *recRun) ioHome(g int) int {
	return s.computes + g*s.ioProcs/s.computes
}

// prodCount is producer g's particle count: its grid cell in the same
// row-major order Cart assigns coordinates (last dimension fastest).
func (s *recRun) prodCount(g int) int64 {
	var coord [3]int
	for i := 2; i >= 0; i-- {
		coord[i] = g % s.dims[i]
		g /= s.dims[i]
	}
	return s.field.Count(coord)
}

// noteFailure adjusts the restart point for a delivered crash. The
// decoupled variant's per-step commits live in I/O-group memory: they
// survive a compute-rank crash (a different fault domain) but die with
// an I/O rank, in which case the job falls back to the last bank
// snapshot. Idempotent — every surviving rank reports the same failure.
func (s *recRun) noteFailure(err *mpi.RankFailedError) {
	if s.v == IODecoupled && err.Rank >= s.computes && s.committed > s.bankCommitted {
		s.committed = s.bankCommitted
	}
}

// usefulCompute is the mover time one crash-free pass of all Steps
// needs, summed over the particle grid. The mapping of ranks to grid
// cells cancels out of the sum, so no communicator is needed.
func (s *recRun) usefulCompute() sim.Time {
	var perStep sim.Time
	for x := 0; x < s.dims[0]; x++ {
		for y := 0; y < s.dims[1]; y++ {
			for z := 0; z < s.dims[2]; z++ {
				perStep += s.c.moverTime(s.field.Count([3]int{x, y, z}))
			}
		}
	}
	return sim.Time(s.c.Steps) * perStep
}

// result collects the run's outcome once the engine has run.
func (s *recRun) result(w *mpi.World) RecoveryResult {
	useful := s.usefulCompute()
	return RecoveryResult{
		Time:            s.makespan,
		TotalCompute:    s.totalCompute,
		UsefulCompute:   useful,
		WastedCompute:   s.totalCompute - useful,
		Restarts:        s.restarts,
		Failovers:       s.failovers,
		Checkpoints:     s.file.Ops(),
		CheckpointBytes: s.file.BytesWritten(),
		Messages:        w.MessagesSent(),
	}
}

// body returns the goroutine rank body for the job's variant.
func (s *recRun) body() func(r *mpi.Rank) {
	var attempt func(r *mpi.Rank)
	if s.v == IODecoupled {
		attempt = s.decoupledAttempt
	} else {
		attempt = s.referenceAttempt
	}
	return func(r *mpi.Rank) {
		if r.Incarnation() > 0 {
			// A respawned victim: join the survivors' rebuild rendezvous
			// before replaying from the last checkpoint.
			s.restarts++
			r.Rebuild()
		}
		for {
			err := r.Protect(func() { attempt(r) })
			if err == nil {
				break
			}
			rf, ok := err.(*mpi.RankFailedError)
			if !ok {
				panic(err)
			}
			s.failovers++
			s.noteFailure(rf)
			r.Rebuild()
		}
		if t := r.Now(); t > s.makespan {
			s.makespan = t
		}
	}
}

// referenceAttempt is one protected pass of a coupled variant: mover
// steps, then a full-state checkpoint through WriteAll or WriteShared,
// closed by a commit barrier. Every (re)entry starts with the collective
// Open, which both resolves the shared file and synchronizes the
// attempt across ranks.
func (s *recRun) referenceAttempt(r *mpi.Rank) {
	c, v := s.c, s.v
	world := r.World()
	cart := mpi.NewCart(world, s.dims[:], true)
	coords := cart.Coords(world.RankOf(r))
	myCount := s.field.Count([3]int{coords[0], coords[1], coords[2]})
	mt := c.moverTime(myCount)
	out := s.ckptBytes(myCount)
	f := world.Open(r, recCkptFile)
	s.file = f
	for s.committed < c.Steps {
		to := s.segEnd(s.committed)
		for i := s.committed; i < to; i++ {
			r.ComputeLabeled(mt, "mover")
			s.totalCompute += mt
		}
		if v == IOCollective {
			f.WriteAll(r, out)
		} else {
			f.WriteShared(r, out)
		}
		// The commit barrier: once every rank's state for this segment
		// is written, the step counter moves. A crash before the barrier
		// replays the whole segment; after it, none of it.
		world.Barrier(r)
		r.CheckFailed()
		s.committed = to
		s.bankCommitted = to
	}
}

// decoupledAttempt is one protected pass of the decoupled variant.
// Compute ranks ship every step's state to their home I/O rank with
// fire-and-forget sends and keep computing. I/O ranks absorb one
// shipment per producer per step into memory, agree among themselves,
// and advance the restart point; every CkptEvery steps they also flush
// a full-state snapshot to the bank (one write per producer, so the
// flush pipelines across stripes) and advance the bank commit. The
// closing world barrier holds the job open until the final snapshot is
// durable.
func (s *recRun) decoupledAttempt(r *mpi.Rank) {
	c := s.c
	world := r.World()
	color := 0
	if r.ID() >= s.computes {
		color = 1
	}
	f := world.Open(r, recCkptFile)
	s.file = f
	group := world.Split(r, color, r.ID())
	if color == 0 {
		g := group.RankOf(r)
		myCount := s.prodCount(g)
		mt := c.moverTime(myCount)
		out := s.ckptBytes(myCount)
		home := s.ioHome(g)
		for local := s.committed; local < c.Steps; local++ {
			r.ComputeLabeled(mt, "mover")
			s.totalCompute += mt
			// Fire-and-forget shipment: this step's state plus the step
			// it advances the memory commit to. Commit authority stays
			// with the I/O group — if the world fails before the group
			// absorbs it, replay resumes below local+1 and the send is
			// redone.
			world.IsendAndFree(r, home, recCkptTag, out, local+1)
			r.CheckFailed()
		}
	} else {
		// acked[g] is the highest step producer g has shipped state for;
		// arrival order across producers is free, so a fast producer's
		// future steps are absorbed as they come (buffering is the point
		// of the I/O group).
		acked := make([]int, s.computes)
		for g := range acked {
			acked[g] = s.committed
		}
		mine := func(g int) bool { return s.ioHome(g) == r.ID() }
		for s.committed < c.Steps {
			next := s.committed + 1
			outstanding := 0
			for g := 0; g < s.computes; g++ {
				if mine(g) && acked[g] < next {
					outstanding++
				}
			}
			for outstanding > 0 {
				st := world.Recv(r, mpi.AnySource, recCkptTag)
				prev := acked[st.Source]
				if v, _ := st.Data.(int); v > prev {
					acked[st.Source] = v
				}
				if prev < next && acked[st.Source] >= next {
					outstanding--
				}
			}
			flush := next%s.ckptEvery == 0 || next == c.Steps
			if flush {
				// Periodic durability: the current in-memory snapshot of
				// my producers goes to the bank, one write per producer.
				for g := 0; g < s.computes; g++ {
					if mine(g) {
						f.WriteShared(r, s.ckptBytes(s.prodCount(g)))
					}
				}
			}
			// All I/O ranks have absorbed (and, on flush steps, written)
			// this step before anyone commits it.
			group.Barrier(r)
			r.CheckFailed()
			s.committed = next
			if flush {
				s.bankCommitted = next
			}
		}
	}
	world.Barrier(r)
	r.CheckFailed()
}
