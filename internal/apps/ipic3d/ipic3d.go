// Package ipic3d reproduces the paper's iPIC3D case studies (Section
// IV-D) on the simulated runtime: the particle-communication experiment
// (Fig. 7, plus the Fig. 2 execution traces) and the particle-I/O
// experiment (Fig. 8).
//
// The physics kernels the costs stand for (Boris mover, deposition,
// Harris-sheet loading) are implemented for real in internal/pic; the
// skewed per-process particle loads come from workload.ParticleField,
// which mirrors the GEM magnetic-reconnection challenge setup the paper
// evaluates.
package ipic3d

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes one iPIC3D experiment run.
type Config struct {
	// Procs is the total number of processes.
	Procs int
	// Alpha is the fraction of processes dedicated to the decoupled
	// operation (paper: 6.25%).
	Alpha float64
	// ParticlesPerProc is the mean particle load (the paper's GEM runs
	// use ~2x10^9 particles on 8,192 processes, ~244k per process).
	ParticlesPerProc int64
	// Steps is the number of simulated time steps.
	Steps int
	// MoveRate is mover throughput in particles per second.
	MoveRate float64
	// Mobility is the base fraction of particles exiting a subdomain per
	// step (scaled by the local density gradient).
	Mobility float64
	// PackRate is the throughput of packing/unpacking particle buffers
	// (MPI_Pack of array-of-struct particles), in bytes per second. The
	// reference pays it on both sides of every forwarding round; the
	// decoupled implementation packs once at the source and unpacks once
	// at the destination.
	PackRate float64
	// ParticleBytes is the wire size of one particle record.
	ParticleBytes int64
	// ForwardContinue is the fraction of forwarded particles that must
	// continue to another dimension in the next reference forwarding
	// round (diagonal movers).
	ForwardContinue float64
	// SaveFraction is the fraction of particles written per I/O step
	// (down-sampled output, as production runs do).
	SaveFraction float64
	// BufferSteps is how many steps of arrivals the decoupled I/O group
	// buffers before flushing one large write ("the I/O group ... can
	// dedicate substantial memory for buffering").
	BufferSteps int
	// Fibers selects the step-function process representation for the
	// rank bodies (goroutine-free dispatch; trajectories are bit-identical
	// either way). Ignored when a Tracer is configured.
	Fibers bool
	// Cores, when >= 1, runs the I/O (RunIO) and particle-communication
	// (RunCommReference/RunCommDecoupled) experiments in the engine's
	// conservative parallel mode with that many workers. Rows are
	// byte-identical for any Cores >= 1; Cores == 0 keeps the classic
	// single-engine mode. The reference I/O variants share one file among
	// all ranks, which pins every rank to one worker (no speedup, by
	// construction); the decoupled I/O variant spreads the compute group
	// across workers; the comm experiments touch no files and spread all
	// groups evenly. Incompatible with Tracer and crash campaigns, like
	// the underlying mpi.Config.Shards. Co-scheduled runs (StartIO)
	// ignore it: the cluster's worker count arrives via the shared group
	// in the base configuration (cluster.Config.Cores).
	Cores int
	// Faults, if non-nil, is a compiled fault campaign (rank slowdown
	// bursts, stripe outage/derate windows, link degradation) injected
	// into the run. An empty injection perturbs nothing: the trajectory
	// is byte-identical to Faults == nil.
	Faults *faults.Injection
	// Seed, Noise and Tracer as elsewhere.
	Seed   int64
	Noise  netmodel.Noise
	Tracer mpi.Tracer
}

// DefaultConfig returns paper-shaped parameters for the given scale.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:            procs,
		Alpha:            0.0625,
		ParticlesPerProc: 244_000,
		Steps:            10,
		MoveRate:         0.5e6,
		Mobility:         0.1,
		PackRate:         50e6,
		ParticleBytes:    64,
		ForwardContinue:  0.2,
		SaveFraction:     0.1,
		BufferSteps:      4,
		Seed:             1,
		Noise:            netmodel.DefaultCluster(),
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Procs < 2 {
		return fmt.Errorf("ipic3d: need at least 2 procs, got %d", c.Procs)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("ipic3d: alpha %v outside (0,1)", c.Alpha)
	}
	if c.ParticlesPerProc <= 0 || c.Steps <= 0 || c.MoveRate <= 0 || c.ParticleBytes <= 0 {
		return fmt.Errorf("ipic3d: non-positive workload parameter")
	}
	if c.PackRate <= 0 {
		return fmt.Errorf("ipic3d: non-positive pack rate")
	}
	if c.Mobility <= 0 || c.Mobility > 0.5 {
		return fmt.Errorf("ipic3d: mobility %v outside (0,0.5]", c.Mobility)
	}
	if c.ForwardContinue < 0 || c.ForwardContinue >= 1 {
		return fmt.Errorf("ipic3d: forward-continue %v outside [0,1)", c.ForwardContinue)
	}
	if c.SaveFraction <= 0 || c.SaveFraction > 1 {
		return fmt.Errorf("ipic3d: save fraction %v outside (0,1]", c.SaveFraction)
	}
	if c.BufferSteps <= 0 {
		return fmt.Errorf("ipic3d: buffer steps %d", c.BufferSteps)
	}
	if c.Cores < 0 {
		return fmt.Errorf("ipic3d: negative core count %d", c.Cores)
	}
	return nil
}

// Result reports one run's outcome.
type Result struct {
	// Time is the application makespan.
	Time sim.Time
	// Messages is the point-to-point message count.
	Messages int64
	// BytesWritten is the file-system volume (I/O experiments).
	BytesWritten int64
	// IOTail is the span between the last mover finishing and the
	// makespan (I/O experiments): the file-system work left on the
	// critical path once all computation is done. The resilience sweep
	// reports how fault campaigns stretch it.
	IOTail sim.Time
	// ForwardRounds is the total number of reference forwarding rounds
	// executed (communication experiment).
	ForwardRounds int
	// Retransmits is the number of timer-driven re-sends the reliable
	// delivery layer issued (message-fault campaigns; zero otherwise).
	// Messages counts logical sends only, so goodput is
	// Messages/(Messages+Retransmits).
	Retransmits int64
}

// field builds the GEM-shaped particle loading for compute ranks laid out
// on dims. computes is the number of ranks actually holding particles:
// decoupled runs spread the same global particle population over fewer
// ranks, so the per-rank mean grows by Procs/computes.
func (c Config) field(dims [3]int, computes int) workload.ParticleField {
	mean := c.ParticlesPerProc * int64(c.Procs) / int64(computes)
	return workload.DefaultGEM(dims, mean, c.Seed)
}

// moverTime is the compute time to push n particles.
func (c Config) moverTime(n int64) sim.Time {
	return sim.FromSeconds(float64(n) / c.MoveRate)
}

// exitCounts splits a rank's leavers over the six directions: the X and Y
// dimensions carry most of the drift in the GEM setup.
func exitCounts(total int64) [6]int64 {
	weights := [6]int64{22, 22, 18, 18, 10, 10} // -x +x -y +y -z +z (per cent)
	var out [6]int64
	var used int64
	for d := 0; d < 5; d++ {
		out[d] = total * weights[d] / 100
		used += out[d]
	}
	out[5] = total - used
	return out
}

func dims3(n int) [3]int {
	d := mpi.BalancedDims(n, 3)
	return [3]int{d[0], d[1], d[2]}
}
