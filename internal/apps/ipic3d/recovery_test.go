package ipic3d

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// recTestConfig is a small recovery workload: big enough that a crash
// lands mid-run, small enough for -race CI.
func recTestConfig(fibers bool) Config {
	c := DefaultConfig(8)
	c.Steps = 8
	c.Fibers = fibers
	return c
}

// crashAtThird returns a campaign with one crash a third of the way
// through a run of the given clean makespan.
func crashAtThird(base sim.Time, target int) *faults.Injection {
	return &faults.Injection{Crash: []sim.CrashEvent{
		{At: base / 3, Target: target, Restart: 200 * sim.Microsecond},
	}}
}

// TestRecoveryCleanRun: without crashes the checkpoint-aware bodies
// waste nothing, restart nobody, and write Steps/ckptEvery checkpoints.
func TestRecoveryCleanRun(t *testing.T) {
	for _, v := range []IOVariant{IOCollective, IOShared, IODecoupled} {
		res, err := RunRecovery(recTestConfig(false), v, 3)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.WastedCompute != 0 || res.Restarts != 0 || res.Failovers != 0 {
			t.Errorf("%v: clean run wasted %v, restarts %d, failovers %d",
				v, res.WastedCompute, res.Restarts, res.Failovers)
		}
		if res.TotalCompute != res.UsefulCompute {
			t.Errorf("%v: total %v != useful %v on a clean run", v, res.TotalCompute, res.UsefulCompute)
		}
		if res.Checkpoints == 0 || res.CheckpointBytes == 0 {
			t.Errorf("%v: no checkpoints written (%d ops, %d bytes)", v, res.Checkpoints, res.CheckpointBytes)
		}
	}
}

// TestRecoveryUnderCrash: a mid-run crash must complete with replayed
// (wasted) work, one respawn, and a makespan above the clean run, for
// every variant.
func TestRecoveryUnderCrash(t *testing.T) {
	for _, v := range []IOVariant{IOCollective, IOShared, IODecoupled} {
		clean, err := RunRecovery(recTestConfig(false), v, 3)
		if err != nil {
			t.Fatalf("%v clean: %v", v, err)
		}
		c := recTestConfig(false)
		c.Faults = crashAtThird(clean.Time, 2)
		res, err := RunRecovery(c, v, 3)
		if err != nil {
			t.Fatalf("%v crashed: %v", v, err)
		}
		if res.Restarts != 1 {
			t.Errorf("%v: restarts = %d, want 1", v, res.Restarts)
		}
		if res.Failovers == 0 {
			t.Errorf("%v: no protect-scope failovers recorded", v)
		}
		if res.WastedCompute <= 0 {
			t.Errorf("%v: no wasted compute after a rollback", v)
		}
		if res.Time <= clean.Time {
			t.Errorf("%v: crashed makespan %v not above clean %v", v, res.Time, clean.Time)
		}
		if f := res.WastedFraction(); f <= 0 || f >= 1 {
			t.Errorf("%v: wasted fraction %v outside (0,1)", v, f)
		}
	}
}

// TestRecoveryReplayAcrossRepresentations is the app-level replay
// contract: a fixed crash campaign produces the identical
// RecoveryResult under goroutine bodies, fiber bodies, and pooled
// world reuse, for every variant.
func TestRecoveryReplayAcrossRepresentations(t *testing.T) {
	for _, v := range []IOVariant{IOCollective, IOShared, IODecoupled} {
		clean, err := RunRecovery(recTestConfig(false), v, 3)
		if err != nil {
			t.Fatalf("%v clean: %v", v, err)
		}
		run := func(fibers bool) RecoveryResult {
			c := recTestConfig(fibers)
			c.Faults = crashAtThird(clean.Time, 1)
			res, err := RunRecovery(c, v, 3)
			if err != nil {
				t.Fatalf("%v fibers=%v: %v", v, fibers, err)
			}
			return res
		}
		first := run(false)
		if again := run(false); again != first {
			t.Errorf("%v: pooled-reuse replay diverged:\n%+v\n%+v", v, again, first)
		}
		if fib := run(true); fib != first {
			t.Errorf("%v: fiber replay diverged:\n%+v\n%+v", v, fib, first)
		}
	}
}

// TestRunIORejectsCrashCampaign: the plain Fig. 8 runners must refuse
// crash-carrying campaigns (their bodies cannot recover).
func TestRunIORejectsCrashCampaign(t *testing.T) {
	c := recTestConfig(false)
	c.Faults = crashAtThird(sim.Second, 0)
	if _, err := RunIO(c, IOShared); err == nil {
		t.Error("RunIO accepted a crash campaign")
	}
	if _, err := StartIO(c, IOShared, mpi.Config{}); err == nil {
		t.Error("StartIO accepted a crash campaign")
	}
}
