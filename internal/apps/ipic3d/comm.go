package ipic3d

import (
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Tags for the particle-communication experiment.
const (
	fwdTag = 11 // reference neighbour forwarding
	aggTag = 12 // decoupled comm-group -> compute-rank aggregated arrivals
)

// commPlace spreads a decoupled comm run's two groups each evenly over
// cores workers: compute rank i goes to worker i*cores/computes, helper
// j (by index within the communication group) to worker j*cores/helpers.
// The comm experiment touches no files, so no pinning constraint
// applies.
func commPlace(cores, computes, helpers int) func(rank int) int {
	return func(rank int) int {
		if rank < computes {
			return rank * cores / computes
		}
		return (rank - computes) * cores / helpers
	}
}

// commWorldConfig builds a comm run's mpi configuration, applying the
// parallel-mode worker count (and, for the decoupled run, its group
// placement) when Cores is set.
func (c Config) commWorldConfig(computes, helpers int) mpi.Config {
	mc := mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: c.Noise, Tracer: c.Tracer}
	if c.Cores >= 1 {
		mc.Shards = c.Cores
		if helpers > 0 {
			mc.Place = commPlace(c.Cores, computes, helpers)
		}
	}
	return mc
}

// maxTime folds a per-rank instant slice into its maximum.
func maxTime(ts []sim.Time) sim.Time {
	var m sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// RunCommReference executes the reference particle communication (Fig. 7,
// blue bars): after the mover, every process forwards exiting particles to
// its six direct neighbours; forwarding repeats (diagonal movers travel
// one dimension per round) until a global allreduce finds no particle left
// in flight — the paper's (DimX+DimY+DimZ)-bounded scheme with the
// per-round termination check.
func RunCommReference(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Cores >= 1 && c.Tracer != nil {
		return Result{}, &mpi.CannotShardError{Feature: "tracing", Flag: "-cores"}
	}
	w := mpi.NewWorld(c.commWorldConfig(c.Procs, 0))
	if c.Fibers && c.Tracer == nil {
		return runCommReferenceFibers(c, w)
	}
	dims := dims3(c.Procs)
	field := c.field(dims, c.Procs)
	// finished[i] is the instant rank i's body ended: rank i writes only
	// slot i, so ranks hosted on different parallel-mode workers never
	// share a word. totalRounds is written by rank 0 alone.
	finished := make([]sim.Time, c.Procs)
	totalRounds := 0
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		cart := mpi.NewCart(world, dims[:], true)
		me := world.RankOf(r)
		coords := cart.Coords(me)
		myCount := field.Count([3]int{coords[0], coords[1], coords[2]})
		exitFrac := field.ExitFraction([3]int{coords[0], coords[1], coords[2]}, c.Mobility)
		packTime := func(bytes int64) sim.Time {
			return sim.FromSeconds(float64(bytes) / c.PackRate)
		}
		for step := 0; step < c.Steps; step++ {
			// Mover: update particle positions (skewed per-rank load).
			r.ComputeLabeled(c.moverTime(myCount), "mover")
			// Particles leaving my subdomain this step.
			outbound := int64(float64(myCount) * exitFrac)
			rounds := 0
			for {
				counts := exitCounts(outbound)
				var reqs []*mpi.Request
				dir := 0
				var inbound int64
				for dim := 0; dim < 3; dim++ {
					for _, disp := range []int{-1, 1} {
						_, dst := cart.Shift(me, dim, disp)
						bytes := counts[dir] * c.ParticleBytes
						reqs = append(reqs, world.Isend(r, dst, fwdTag, bytes, counts[dir]))
						dir++
					}
				}
				// Packing the outbound buffers costs CPU every round.
				r.ComputeLabeled(packTime(outbound*c.ParticleBytes), "pack")
				for i := 0; i < 6; i++ {
					st := world.Recv(r, mpi.AnySource, fwdTag)
					inbound += st.Data.(int64)
				}
				world.WaitAll(r, reqs...)
				// Unpack and re-sort the arrivals before the next round.
				r.ComputeLabeled(packTime(inbound*c.ParticleBytes), "unpack")
				rounds++
				// Diagonal movers must continue along another dimension.
				outbound = int64(float64(inbound) * c.ForwardContinue)
				// Global termination check, paid every round.
				part := world.Allreduce(r, mpi.Part{Bytes: 8, Data: outbound}, mpi.SumInt64, nil)
				if part.Data.(int64) == 0 {
					break
				}
			}
			if me == 0 {
				totalRounds += rounds
			}
		}
		finished[r.ID()] = r.Now()
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent(), ForwardRounds: totalRounds}
	w.Release()
	return res, nil
}

// commMsg tags one streamed batch of exiting particles.
type commMsg struct {
	dst  int // destination compute rank (world rank)
	step int
}

// RunCommDecoupled executes the decoupled particle communication (Fig. 7,
// red bars; Fig. 2 bottom trace): compute ranks stream exiting particles
// to the communication group as soon as the mover finds them; the group
// aggregates arrivals by destination first-come-first-served and forwards
// each destination's particles in one pass, so every particle takes at
// most two hops and no global termination check exists.
func RunCommDecoupled(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Cores >= 1 && c.Tracer != nil {
		return Result{}, &mpi.CannotShardError{Feature: "tracing", Flag: "-cores"}
	}
	helpers := int(float64(c.Procs)*c.Alpha + 0.5)
	if helpers < 1 {
		helpers = 1
	}
	computes := c.Procs - helpers
	w := mpi.NewWorld(c.commWorldConfig(computes, helpers))
	if c.Fibers && c.Tracer == nil {
		return runCommDecoupledFibers(c, w)
	}
	dims := dims3(computes)
	field := c.field(dims, computes)
	finished := make([]sim.Time, c.Procs)
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= computes {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{ElementBytes: c.ParticleBytes})
		if role == stream.Producer {
			g0 := ch.ProducerComm()
			cart := mpi.NewCart(g0, dims[:], true)
			me := g0.RankOf(r)
			coords := cart.Coords(me)
			myCount := field.Count([3]int{coords[0], coords[1], coords[2]})
			exitFrac := field.ExitFraction([3]int{coords[0], coords[1], coords[2]}, c.Mobility)
			// The mover emits exiting particles in bursts through the
			// step, not only at its end: split each step's mover into
			// six sub-phases, streaming one direction's leavers after
			// each (the fine-grained flow of Section II-C).
			// Arrivals are consumed opportunistically: the compute rank
			// injects whatever aggregated particles have arrived at each
			// step boundary instead of blocking for them, so no step is
			// coupled to a delayed peer (the dataflow semantics of
			// Section II-B). One aggregate per step is owed in total.
			arrived := 0
			pendingAgg := world.Irecv(r, mpi.AnySource, aggTag)
			for step := 0; step < c.Steps; step++ {
				counts := exitCounts(int64(float64(myCount) * exitFrac))
				dir := 0
				for dim := 0; dim < 3; dim++ {
					for _, disp := range []int{-1, 1} {
						r.ComputeLabeled(c.moverTime(myCount)/6, "mover")
						_, dst := cart.Shift(me, dim, disp)
						bytes := counts[dir] * c.ParticleBytes
						// Packing folds into the mover sweep: exiting
						// particles are appended to the outbound buffer
						// as the mover finds them (application-specific
						// optimization on the decoupled path).
						st.IsendTo(r, stream.Element{
							Bytes: bytes,
							Data:  commMsg{dst: dst, step: step},
						}, ch.HomeConsumer(dst))
						dir++
					}
				}
				for arrived < c.Steps {
					ok, stAgg := world.Test(r, pendingAgg)
					if !ok {
						break
					}
					arrived++
					_ = stAgg // arrivals integrate into the next sweep
					if arrived < c.Steps {
						pendingAgg = world.Irecv(r, mpi.AnySource, aggTag)
					}
				}
			}
			st.Terminate(r)
			// Drain the remaining aggregates before exiting.
			for arrived < c.Steps {
				world.Wait(r, pendingAgg)
				arrived++
				if arrived < c.Steps {
					pendingAgg = world.Irecv(r, mpi.AnySource, aggTag)
				}
			}
		} else {
			// Communication group: aggregate by destination, forward in
			// one pass once a destination's six batches for a step have
			// arrived.
			type key struct{ dst, step int }
			pending := make(map[key]int)
			volume := make(map[key]int64)
			st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				cm := e.Data.(commMsg)
				k := key{dst: cm.dst, step: cm.step}
				pending[k]++
				volume[k] += e.Bytes
				if pending[k] == 6 {
					world.IsendAndFree(rr, cm.dst, aggTag, volume[k], nil)
					delete(pending, k)
					delete(volume, k)
				}
			})
		}
		ch.Free(r)
		finished[r.ID()] = r.Now()
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}
