// Fiber ports of the CG rank bodies: the halo-exchange kernels of cg.go
// rewritten as explicit continuation state machines and run goroutine-
// free with World.RunFibers. Operation order matches the goroutine bodies
// exactly, so Fig. 6 trajectories are bit-identical across
// representations (asserted by TestFiberVariantsBitIdentical and the
// experiments differential test).
package cg

import (
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
)

// runReferenceFibers executes the blocking or nonblocking reference with
// fiber rank bodies.
func runReferenceFibers(c Config, nonblocking bool) (Result, error) {
	w := mpi.NewWorld(c.worldConfig(c.Procs, 0))
	dims := mpi.BalancedDims(c.Procs, 3)
	finished := make([]sim.Time, c.Procs)
	inner, boundary := c.iterCompute()
	face := c.faceBytes()
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		cart := mpi.NewCart(world, dims, true)
		me := world.RankOf(r)
		it := 0
		// Every per-iteration continuation (halo-exchange steps, stencil
		// phases, residual allreduces) is built once here, and the request
		// slice is reused, so steady-state iterations allocate nothing
		// beyond their requests.
		var iter, exch, innerStep, boundStep, residual sim.StepFunc
		var onRecvd func(mpi.Status) sim.StepFunc
		var onHalosDone func([]mpi.Status) sim.StepFunc
		var onDot1 func(mpi.Part) sim.StepFunc
		var onDot2 func(mpi.Part) sim.StepFunc
		reqs := make([]*mpi.Request, 0, 12)
		k := 0
		var exchSrc int
		record := func(_ *sim.Fiber) sim.StepFunc {
			finished[r.ID()] = r.Now()
			return nil
		}
		// Residual aggregation: two global dot products per CG iteration.
		onDot1 = func(mpi.Part) sim.StepFunc {
			return world.FAllreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil, onDot2)
		}
		onDot2 = func(mpi.Part) sim.StepFunc { return iter }
		residual = func(_ *sim.Fiber) sim.StepFunc {
			return world.FAllreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil, onDot1)
		}
		boundStep = func(_ *sim.Fiber) sim.StepFunc {
			return r.FComputeLabeled(boundary, "stencil-boundary", residual)
		}
		onHalosDone = func([]mpi.Status) sim.StepFunc { return boundStep }
		innerStep = func(_ *sim.Fiber) sim.StepFunc {
			return world.FWaitAll(r, reqs, onHalosDone)
		}
		onRecvd = func(mpi.Status) sim.StepFunc { return exch }
		recvStep := func(_ *sim.Fiber) sim.StepFunc {
			return world.FRecv(r, exchSrc, haloTag, onRecvd)
		}
		exch = func(_ *sim.Fiber) sim.StepFunc {
			if k >= 6 {
				return r.FComputeLabeled(inner, "stencil-inner", boundStep)
			}
			dim := k / 2
			disp := -1 + 2*(k%2) // -1 first, then +1, per dimension
			k++
			src, dst := cart.Shift(me, dim, disp)
			exchSrc = src
			return world.FSend(r, dst, haloTag, face, nil, recvStep)
		}
		iter = func(_ *sim.Fiber) sim.StepFunc {
			if it >= c.Iterations {
				return record
			}
			it++
			if nonblocking {
				// Post everything, overlap the inner stencil.
				reqs = reqs[:0]
				for dim := 0; dim < 3; dim++ {
					for _, disp := range []int{-1, 1} {
						_, dst := cart.Shift(me, dim, disp)
						reqs = append(reqs, world.Isend(r, dst, haloTag, face, nil))
						reqs = append(reqs, world.Irecv(r, mpi.AnySource, haloTag))
					}
				}
				return r.FComputeLabeled(inner, "stencil-inner", innerStep)
			}
			// Blocking all-to-all halo exchange: dimension-ordered
			// neighbour coupling after the descriptor scan.
			k = 0
			return r.FComputeLabeled(sim.Time(c.Procs)*c.ScanCostPerRank, "alltoall-scan", exch)
		}
		return iter
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}

// runDecoupledFibers executes the decoupled variant with fiber rank
// bodies: compute ranks stream faces to helpers and receive one
// aggregated message back per iteration.
func runDecoupledFibers(c Config) (Result, error) {
	helpers := int(float64(c.Procs)*c.Alpha + 0.5)
	if helpers < 1 {
		helpers = 1
	}
	computes := c.Procs - helpers
	w := mpi.NewWorld(c.worldConfig(computes, helpers))
	dims := mpi.BalancedDims(computes, 3)
	inner, boundary := c.iterCompute()
	face := c.faceBytes()
	finished := make([]sim.Time, c.Procs)
	const aggTag = 4
	_, err := w.RunFibers(func(r *mpi.Rank, f *sim.Fiber) sim.StepFunc {
		world := r.World()
		role := stream.Producer
		if r.ID() >= computes {
			role = stream.Consumer
		}
		return stream.FCreateChannel(r, world, role, func(ch *stream.Channel) sim.StepFunc {
			st := ch.Attach(r, stream.Options{ElementBytes: face})
			finish := func(_ *sim.Fiber) sim.StepFunc {
				return ch.FFree(r, func(_ *sim.Fiber) sim.StepFunc {
					finished[r.ID()] = r.Now()
					return nil
				})
			}
			if role == stream.Producer {
				g0 := ch.ProducerComm()
				cart := mpi.NewCart(g0, dims, true)
				me := g0.RankOf(r)
				it := 0
				// The per-iteration continuation chain (aggregated
				// receive, boundary stencil, two residual allreduces) is
				// built once, outside the loop.
				var iter, innerStep, boundStep sim.StepFunc
				var onAgg func(mpi.Status) sim.StepFunc
				var onDot1, onDot2 func(mpi.Part) sim.StepFunc
				onDot2 = func(mpi.Part) sim.StepFunc { return iter }
				onDot1 = func(mpi.Part) sim.StepFunc {
					return g0.FAllreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil, onDot2)
				}
				boundStep = func(_ *sim.Fiber) sim.StepFunc {
					// Residual aggregation stays within the compute group.
					return g0.FAllreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil, onDot1)
				}
				onAgg = func(mpi.Status) sim.StepFunc {
					return r.FComputeLabeled(boundary, "stencil-boundary", boundStep)
				}
				innerStep = func(_ *sim.Fiber) sim.StepFunc {
					// One aggregated message replaces six neighbour
					// receives.
					return world.FRecv(r, mpi.AnySource, aggTag, onAgg)
				}
				iter = func(_ *sim.Fiber) sim.StepFunc {
					if it >= c.Iterations {
						st.Terminate(r)
						return finish
					}
					// Stream my six boundary faces to the helpers that own
					// the destination ranks, then overlap the inner stencil.
					for dim := 0; dim < 3; dim++ {
						for _, disp := range []int{-1, 1} {
							_, dst := cart.Shift(me, dim, disp)
							st.IsendTo(r, stream.Element{
								Bytes: face,
								Data:  faceMsg{dst: dst, iter: it},
							}, ch.HomeConsumer(dst))
						}
					}
					it++
					return r.FComputeLabeled(inner, "stencil-inner", innerStep)
				}
				return iter
			}
			// Helper: collect the six faces addressed to each of my
			// compute ranks per iteration; return them as one message.
			type key struct{ dst, iter int }
			pending := make(map[key]int)
			return st.FOperate(r, func(rr *mpi.Rank, e stream.Element, src int, then sim.StepFunc) sim.StepFunc {
				fm := e.Data.(faceMsg)
				k := key{dst: fm.dst, iter: fm.iter}
				pending[k]++
				if pending[k] == 6 {
					delete(pending, k)
					world.IsendAndFree(rr, fm.dst, aggTag, 6*face, nil)
				}
				return then
			}, func(stream.Stats) sim.StepFunc { return finish })
		})
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}
