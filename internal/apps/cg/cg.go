// Package cg reproduces the paper's Conjugate Gradient case study
// (Section IV-C): a CG solver for the Poisson equation on a Cartesian
// uniform grid, weak-scaled at 120^3 points per process, with the halo
// exchange implemented three ways:
//
//   - Blocking: dimension-ordered blocking neighbour exchange. Receive
//     dependencies chain across the process grid, so noise-induced delays
//     cascade (the idle-period propagation of the paper's refs [4][5]) and
//     the per-iteration synchronization grows with scale.
//   - Nonblocking: all twelve halo requests posted at once, inner stencil
//     computed while they fly, boundary computed after WaitAll (Hoefler's
//     NBC-optimized CG, the paper's stronger reference).
//   - Decoupled: boundary faces are streamed to a helper group that
//     aggregates the six neighbour faces per compute rank and returns them
//     in a single message, while the compute group works on the inner
//     stencil (the paper's decoupled implementation, alpha = 6.25%).
//
// The package also contains a real distributed CG (real.go) that solves
// the Poisson equation with actual floating-point payloads through the
// same runtime, verifying that the communication substrate is correct, not
// just costed.
package cg

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Variant selects a halo-exchange implementation.
type Variant int

// The three implementations of Fig. 6.
const (
	Blocking Variant = iota
	Nonblocking
	Decoupled
)

// String names the variant as the figure legend does.
func (v Variant) String() string {
	switch v {
	case Blocking:
		return "Reference (Blocking)"
	case Nonblocking:
		return "Reference (Non-blocking)"
	case Decoupled:
		return "Decoupling"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config describes one CG experiment run.
type Config struct {
	// Procs is the total number of processes.
	Procs int
	// Alpha is the helper-group fraction for the Decoupled variant
	// (paper: 6.25%, one of every 16 processes).
	Alpha float64
	// PointsPerSide is the cubic subdomain edge per compute process
	// (paper: 120).
	PointsPerSide int
	// Iterations is the fixed iteration count (paper: 300). Experiments
	// may run fewer and scale: per-iteration behaviour is stationary.
	Iterations int
	// PointRate is stencil throughput in grid points per second.
	PointRate float64
	// InnerFraction is the fraction of stencil work independent of halo
	// values (overlappable by the nonblocking and decoupled variants).
	InnerFraction float64
	// ScanCostPerRank models the all-to-all implementation of the
	// reference halo exchange (Hoefler et al. [17]): every call walks P
	// send/receive descriptors, zero-byte rounds included. The blocking
	// variant pays it on the critical path; the nonblocking variant's
	// progress engine hides it behind the inner stencil; the decoupled
	// variant replaces the collective entirely.
	ScanCostPerRank sim.Time
	// Fibers selects the step-function process representation for the
	// rank bodies (goroutine-free dispatch; trajectories are bit-identical
	// either way). Ignored when a Tracer is configured.
	Fibers bool
	// Cores, when >= 1, runs the solver in the engine's conservative
	// parallel mode with that many workers. Rows are byte-identical for
	// any Cores >= 1; Cores == 0 keeps the classic single-engine mode.
	// CG does no file I/O, so placement is unconstrained: the reference
	// variants spread all ranks evenly, the decoupled variant spreads
	// the compute and helper groups each evenly. Incompatible with
	// Tracer, like the underlying mpi.Config.Shards.
	Cores int
	// Seed and Noise drive the imbalance injection.
	Seed  int64
	Noise netmodel.Noise
	// Tracer optionally records execution spans.
	Tracer mpi.Tracer
}

// DefaultConfig returns paper-shaped parameters for the given scale.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:           procs,
		Alpha:           0.0625,
		PointsPerSide:   120,
		Iterations:      30,
		PointRate:       20e6,
		InnerFraction:   0.9,
		ScanCostPerRank: 2500 * sim.Nanosecond,
		Seed:            1,
		Noise:           netmodel.DefaultCluster(),
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Procs < 2 {
		return fmt.Errorf("cg: need at least 2 procs, got %d", c.Procs)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("cg: alpha %v outside (0,1)", c.Alpha)
	}
	if c.PointsPerSide <= 0 || c.Iterations <= 0 {
		return fmt.Errorf("cg: non-positive grid or iterations")
	}
	if c.PointRate <= 0 || c.InnerFraction <= 0 || c.InnerFraction >= 1 {
		return fmt.Errorf("cg: bad compute parameters")
	}
	if c.Cores < 0 {
		return fmt.Errorf("cg: negative core count %d", c.Cores)
	}
	return nil
}

// Result reports one run's outcome.
type Result struct {
	// Time is the application makespan.
	Time sim.Time
	// Messages is the total point-to-point message count.
	Messages int64
}

// faceBytes is the payload of one subdomain face.
func (c Config) faceBytes() int64 {
	return int64(c.PointsPerSide) * int64(c.PointsPerSide) * 8
}

// iterCompute returns the (inner, boundary) stencil compute durations.
func (c Config) iterCompute() (inner, boundary sim.Time) {
	points := float64(c.PointsPerSide)
	total := sim.FromSeconds(points * points * points / c.PointRate)
	inner = sim.Time(float64(total) * c.InnerFraction)
	return inner, total - inner
}

// decoupledPlace spreads a decoupled run's two groups each evenly over
// cores workers: compute rank i goes to worker i*cores/computes, helper
// j (by index within the helper group) to worker j*cores/helpers. CG
// touches no files, so no pinning constraint applies; spreading both
// groups balances stencil compute and face aggregation alike.
func decoupledPlace(cores, computes, helpers int) func(rank int) int {
	return func(rank int) int {
		if rank < computes {
			return rank * cores / computes
		}
		return (rank - computes) * cores / helpers
	}
}

// worldConfig builds the run's mpi configuration, applying the
// parallel-mode worker count (and, for the decoupled variant, its group
// placement) when Cores is set.
func (c Config) worldConfig(computes, helpers int) mpi.Config {
	mc := mpi.Config{Procs: c.Procs, Seed: c.Seed, Noise: c.Noise, Tracer: c.Tracer}
	if c.Cores >= 1 {
		mc.Shards = c.Cores
		if helpers > 0 {
			mc.Place = decoupledPlace(c.Cores, computes, helpers)
		}
	}
	return mc
}

// Run executes the selected variant and returns its result.
func Run(c Config, v Variant) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Cores >= 1 && c.Tracer != nil {
		return Result{}, &mpi.CannotShardError{Feature: "tracing", Flag: "-cores"}
	}
	if c.Fibers && c.Tracer == nil {
		switch v {
		case Blocking, Nonblocking:
			return runReferenceFibers(c, v == Nonblocking)
		case Decoupled:
			return runDecoupledFibers(c)
		}
	}
	switch v {
	case Blocking, Nonblocking:
		return runReference(c, v == Nonblocking)
	case Decoupled:
		return runDecoupled(c)
	default:
		return Result{}, fmt.Errorf("cg: unknown variant %d", v)
	}
}

const haloTag = 3

// runReference executes the blocking or nonblocking reference.
func runReference(c Config, nonblocking bool) (Result, error) {
	w := mpi.NewWorld(c.worldConfig(c.Procs, 0))
	dims := mpi.BalancedDims(c.Procs, 3)
	// finished[i] is the instant rank i's body ended: rank i writes only
	// slot i, so ranks hosted on different parallel-mode workers never
	// share a word. The makespan folds after the engines stop.
	finished := make([]sim.Time, c.Procs)
	inner, boundary := c.iterCompute()
	face := c.faceBytes()
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		cart := mpi.NewCart(world, dims, true)
		me := world.RankOf(r)
		for it := 0; it < c.Iterations; it++ {
			if nonblocking {
				// Post everything, overlap the inner stencil. The
				// all-to-all descriptor scan runs on the collective's
				// progress engine and hides behind the stencil.
				var reqs []*mpi.Request
				for dim := 0; dim < 3; dim++ {
					for _, disp := range []int{-1, 1} {
						_, dst := cart.Shift(me, dim, disp)
						reqs = append(reqs, world.Isend(r, dst, haloTag, face, nil))
						reqs = append(reqs, world.Irecv(r, mpi.AnySource, haloTag))
					}
				}
				r.ComputeLabeled(inner, "stencil-inner")
				world.WaitAll(r, reqs...)
				r.ComputeLabeled(boundary, "stencil-boundary")
			} else {
				// Blocking all-to-all halo exchange: the descriptor
				// scan over all P ranks sits on the critical path, and
				// each receive couples this rank to a specific
				// neighbour in dimension order.
				r.ComputeLabeled(sim.Time(c.Procs)*c.ScanCostPerRank, "alltoall-scan")
				for dim := 0; dim < 3; dim++ {
					for _, disp := range []int{-1, 1} {
						src, dst := cart.Shift(me, dim, disp)
						world.Send(r, dst, haloTag, face, nil)
						world.Recv(r, src, haloTag)
					}
				}
				r.ComputeLabeled(inner, "stencil-inner")
				r.ComputeLabeled(boundary, "stencil-boundary")
			}
			// Residual aggregation: two global dot products per CG
			// iteration.
			world.Allreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil)
			world.Allreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil)
		}
		finished[r.ID()] = r.Now()
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}

// maxTime folds a per-rank instant slice into its maximum.
func maxTime(ts []sim.Time) sim.Time {
	var m sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// faceMsg is one streamed boundary face.
type faceMsg struct {
	dst  int // destination compute rank (world rank)
	iter int
}

// runDecoupled executes the decoupled variant: compute ranks stream faces
// to helpers; helpers aggregate the six neighbour faces per compute rank
// per iteration and return them in one message.
func runDecoupled(c Config) (Result, error) {
	helpers := int(float64(c.Procs)*c.Alpha + 0.5)
	if helpers < 1 {
		helpers = 1
	}
	computes := c.Procs - helpers
	w := mpi.NewWorld(c.worldConfig(computes, helpers))
	dims := mpi.BalancedDims(computes, 3)
	inner, boundary := c.iterCompute()
	face := c.faceBytes()
	finished := make([]sim.Time, c.Procs)
	const aggTag = 4
	_, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= computes {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{ElementBytes: face})
		if role == stream.Producer {
			// Compute ranks occupy world ranks 0..computes-1, so the
			// producer index equals the world rank and the Cartesian
			// topology lives on the producer communicator.
			g0 := ch.ProducerComm()
			cart := mpi.NewCart(g0, dims, true)
			me := g0.RankOf(r)
			for it := 0; it < c.Iterations; it++ {
				// Stream my six boundary faces to the helpers that own
				// the destination ranks, then overlap the inner
				// stencil.
				for dim := 0; dim < 3; dim++ {
					for _, disp := range []int{-1, 1} {
						_, dst := cart.Shift(me, dim, disp)
						st.IsendTo(r, stream.Element{
							Bytes: face,
							Data:  faceMsg{dst: dst, iter: it},
						}, ch.HomeConsumer(dst))
					}
				}
				r.ComputeLabeled(inner, "stencil-inner")
				// One aggregated message replaces six neighbour
				// receives (the paper's optimization in group G1).
				world.Recv(r, mpi.AnySource, aggTag)
				r.ComputeLabeled(boundary, "stencil-boundary")
				// Residual aggregation stays within the compute group.
				g0.Allreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil)
				g0.Allreduce(r, mpi.Part{Bytes: 8}, mpi.SumFloat64, nil)
			}
			st.Terminate(r)
		} else {
			// Helper: collect the six faces addressed to each of my
			// compute ranks per iteration; return them as one message.
			type key struct{ dst, iter int }
			pending := make(map[key]int)
			st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				fm := e.Data.(faceMsg)
				k := key{dst: fm.dst, iter: fm.iter}
				pending[k]++
				if pending[k] == 6 {
					delete(pending, k)
					world.IsendAndFree(rr, fm.dst, aggTag, 6*face, nil)
				}
			})
		}
		ch.Free(r)
		finished[r.ID()] = r.Now()
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Time: maxTime(finished), Messages: w.MessagesSent()}
	w.Release()
	return res, nil
}
