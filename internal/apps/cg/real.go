package cg

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// RealConfig describes a real (payload-carrying) distributed CG solve of
// the Poisson problem -Laplacian(x) = b with homogeneous Dirichlet
// boundaries on an N^3 grid, decomposed over a 3-D process grid. It
// exists to verify the runtime end to end: the same communicators,
// point-to-point matching and collectives used by the costed experiments
// here carry actual floating-point faces and reduce actual dot products.
type RealConfig struct {
	// Procs is the number of ranks; N is the global grid edge. N must be
	// divisible by each process-grid dimension.
	Procs int
	N     int
	// MaxIter bounds the iteration count; Tol is the convergence
	// threshold on the residual norm.
	MaxIter int
	Tol     float64
	Seed    int64
}

// RealResult reports a real solve.
type RealResult struct {
	// Iterations actually executed.
	Iterations int
	// Residual is the final residual norm ||b - Ax||.
	Residual float64
	// Solution is the gathered global solution grid, indexed
	// [i*N*N + j*N + k]. Only filled when Gather was requested.
	Solution []float64
}

// rhs is the manufactured source term: a smooth, asymmetric function.
func rhs(i, j, k, n int) float64 {
	x := (float64(i) + 0.5) / float64(n)
	y := (float64(j) + 0.5) / float64(n)
	z := (float64(k) + 0.5) / float64(n)
	return math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y) * (z + 0.25)
}

// SolveReal runs the distributed CG and returns the result, including the
// gathered solution (rank order deterministic).
func SolveReal(c RealConfig) (RealResult, error) {
	if c.Procs <= 0 || c.N <= 0 {
		return RealResult{}, fmt.Errorf("cg: bad real config %+v", c)
	}
	dims := mpi.BalancedDims(c.Procs, 3)
	for _, d := range dims {
		if c.N%d != 0 {
			return RealResult{}, fmt.Errorf("cg: N=%d not divisible by process grid %v", c.N, dims)
		}
	}
	w := mpi.NewWorld(mpi.Config{Procs: c.Procs, Seed: c.Seed})
	var out RealResult
	var solveErr error
	if _, err := w.Run(func(r *mpi.Rank) {
		res, err := realRank(r, c, dims)
		if err != nil {
			solveErr = err
			return
		}
		if r.ID() == 0 {
			out = res
		}
	}); err != nil {
		return RealResult{}, err
	}
	if solveErr != nil {
		return RealResult{}, solveErr
	}
	return out, nil
}

// subgrid is one rank's block with one ghost layer on each side.
type subgrid struct {
	nx, ny, nz int // interior extent
	gx, gy, gz int // ghosted extent (n+2)
	data       []float64
}

func newSubgrid(nx, ny, nz int) *subgrid {
	g := &subgrid{nx: nx, ny: ny, nz: nz, gx: nx + 2, gy: ny + 2, gz: nz + 2}
	g.data = make([]float64, g.gx*g.gy*g.gz)
	return g
}

// at indexes ghosted coordinates (0..n+1 per axis).
func (g *subgrid) at(i, j, k int) int { return (i*g.gy+j)*g.gz + k }

// face extracts the boundary plane for direction (dim, disp) into a fresh
// slice, in deterministic (row-major) order.
func (g *subgrid) face(dim, disp int) []float64 {
	var out []float64
	idx := func(i, j, k int) { out = append(out, g.data[g.at(i, j, k)]) }
	g.walkFace(dim, disp, false, idx)
	return out
}

// setGhost writes a received neighbour face into the ghost plane for
// direction (dim, disp).
func (g *subgrid) setGhost(dim, disp int, vals []float64) {
	n := 0
	g.walkFace(dim, disp, true, func(i, j, k int) {
		g.data[g.at(i, j, k)] = vals[n]
		n++
	})
}

// walkFace visits the interior boundary plane (ghost=false) or the ghost
// plane (ghost=true) for direction (dim, disp), in row-major order.
func (g *subgrid) walkFace(dim, disp int, ghost bool, visit func(i, j, k int)) {
	lim := [3]int{g.nx, g.ny, g.nz}
	// Fixed coordinate along dim.
	var fixed int
	if disp < 0 {
		fixed = 1
		if ghost {
			fixed = 0
		}
	} else {
		fixed = lim[dim]
		if ghost {
			fixed = lim[dim] + 1
		}
	}
	var a, b int // the two free axes
	switch dim {
	case 0:
		a, b = 1, 2
	case 1:
		a, b = 0, 2
	default:
		a, b = 0, 1
	}
	coord := [3]int{}
	coord[dim] = fixed
	for u := 1; u <= lim[a]; u++ {
		for v := 1; v <= lim[b]; v++ {
			coord[a], coord[b] = u, v
			visit(coord[0], coord[1], coord[2])
		}
	}
}

// realRank is the per-rank solver body.
func realRank(r *mpi.Rank, c RealConfig, dims []int) (RealResult, error) {
	world := r.World()
	cart := mpi.NewCart(world, dims, false) // Dirichlet: no wraparound
	me := world.RankOf(r)
	coords := cart.Coords(me)
	nx, ny, nz := c.N/dims[0], c.N/dims[1], c.N/dims[2]
	ox, oy, oz := coords[0]*nx, coords[1]*ny, coords[2]*nz

	p := newSubgrid(nx, ny, nz)
	interior := nx * ny * nz
	x := make([]float64, interior)
	res := make([]float64, interior)
	ap := make([]float64, interior)
	b := make([]float64, interior)
	li := func(i, j, k int) int { return ((i-1)*ny+(j-1))*nz + (k - 1) }
	for i := 1; i <= nx; i++ {
		for j := 1; j <= ny; j++ {
			for k := 1; k <= nz; k++ {
				b[li(i, j, k)] = rhs(ox+i-1, oy+j-1, oz+k-1, c.N)
			}
		}
	}

	// x0 = 0, r = b, p = r.
	copy(res, b)
	for i := 1; i <= nx; i++ {
		for j := 1; j <= ny; j++ {
			for k := 1; k <= nz; k++ {
				p.data[p.at(i, j, k)] = res[li(i, j, k)]
			}
		}
	}
	dot := func(a, bb []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * bb[i]
		}
		part := world.Allreduce(r, mpi.Part{Bytes: 8, Data: s}, mpi.SumFloat64, nil)
		return part.Data.(float64)
	}
	rr := dot(res, res)

	iters := 0
	for iters < c.MaxIter && math.Sqrt(rr) > c.Tol {
		exchangeHalo(r, cart, me, p)
		// Ap = A p with the 7-point stencil; exterior ghosts are zero
		// (Dirichlet) because they are never written.
		for i := 1; i <= nx; i++ {
			for j := 1; j <= ny; j++ {
				for k := 1; k <= nz; k++ {
					center := p.data[p.at(i, j, k)]
					sum := p.data[p.at(i-1, j, k)] + p.data[p.at(i+1, j, k)] +
						p.data[p.at(i, j-1, k)] + p.data[p.at(i, j+1, k)] +
						p.data[p.at(i, j, k-1)] + p.data[p.at(i, j, k+1)]
					ap[li(i, j, k)] = 6*center - sum
				}
			}
		}
		var pap float64
		for i := 1; i <= nx; i++ {
			for j := 1; j <= ny; j++ {
				for k := 1; k <= nz; k++ {
					pap += p.data[p.at(i, j, k)] * ap[li(i, j, k)]
				}
			}
		}
		part := world.Allreduce(r, mpi.Part{Bytes: 8, Data: pap}, mpi.SumFloat64, nil)
		pap = part.Data.(float64)
		alpha := rr / pap
		for i := 1; i <= nx; i++ {
			for j := 1; j <= ny; j++ {
				for k := 1; k <= nz; k++ {
					idx := li(i, j, k)
					x[idx] += alpha * p.data[p.at(i, j, k)]
					res[idx] -= alpha * ap[idx]
				}
			}
		}
		rr2 := dot(res, res)
		beta := rr2 / rr
		for i := 1; i <= nx; i++ {
			for j := 1; j <= ny; j++ {
				for k := 1; k <= nz; k++ {
					gi := p.at(i, j, k)
					p.data[gi] = res[li(i, j, k)] + beta*p.data[gi]
				}
			}
		}
		rr = rr2
		iters++
	}

	// Gather the solution at rank 0 in rank order for verification.
	parts := world.Gatherv(r, 0, mpi.Part{Bytes: int64(8 * interior), Data: append([]float64(nil), x...)})
	result := RealResult{Iterations: iters, Residual: math.Sqrt(rr)}
	if me == 0 {
		global := make([]float64, c.N*c.N*c.N)
		for rank, part := range parts {
			vals := part.Data.([]float64)
			rc := cart.Coords(rank)
			rx, ry, rz := rc[0]*nx, rc[1]*ny, rc[2]*nz
			n := 0
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					for k := 0; k < nz; k++ {
						global[((rx+i)*c.N+(ry+j))*c.N+(rz+k)] = vals[n]
						n++
					}
				}
			}
		}
		result.Solution = global
	}
	return result, nil
}

// realHaloTag spaces the six direction tags.
const realHaloTag = 100

// exchangeHalo swaps the six faces of p with the Cartesian neighbours,
// carrying real data. Missing neighbours (domain boundary) leave the ghost
// plane untouched (zero: the Dirichlet condition).
func exchangeHalo(r *mpi.Rank, cart *mpi.Cart, me int, p *subgrid) {
	world := cart.Comm
	var sends, recvs []*mpi.Request
	type pendingRecv struct {
		req  *mpi.Request
		dim  int
		disp int
	}
	var pend []pendingRecv
	for dim := 0; dim < 3; dim++ {
		for _, disp := range []int{-1, 1} {
			src, dst := cart.Shift(me, dim, disp)
			// The face I send in direction disp fills the neighbour's
			// ghost on its -disp side; tag by (dim, disp) so the
			// receiver knows the plane.
			tag := realHaloTag + dim*2
			if disp > 0 {
				tag++
			}
			if dst >= 0 {
				vals := p.face(dim, disp)
				sends = append(sends, world.Isend(r, dst, tag, int64(8*len(vals)), vals))
			}
			if src >= 0 {
				req := world.Irecv(r, src, tag)
				recvs = append(recvs, req)
				pend = append(pend, pendingRecv{req: req, dim: dim, disp: -disp})
			}
		}
	}
	for _, pr := range pend {
		st := world.Wait(r, pr.req)
		p.setGhost(pr.dim, pr.disp, st.Data.([]float64))
	}
	world.WaitAll(r, sends...)
	_ = recvs
}
