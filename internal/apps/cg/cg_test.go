package cg

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// quickConfig shrinks the CG experiment for fast tests.
func quickConfig(procs int) Config {
	c := DefaultConfig(procs)
	c.PointsPerSide = 24
	c.Iterations = 5
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(32).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig(32)
	bad.Alpha = 0
	if bad.Validate() == nil {
		t.Error("alpha=0 accepted")
	}
	bad = DefaultConfig(32)
	bad.InnerFraction = 1
	if bad.Validate() == nil {
		t.Error("inner fraction 1 accepted")
	}
}

func TestVariantStrings(t *testing.T) {
	if Blocking.String() == "" || Nonblocking.String() == "" || Decoupled.String() == "" {
		t.Fatal("missing variant names")
	}
}

func TestAllVariantsRun(t *testing.T) {
	for _, v := range []Variant{Blocking, Nonblocking, Decoupled} {
		res, err := Run(quickConfig(18), v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Time <= 0 || res.Messages <= 0 {
			t.Fatalf("%v: degenerate result %+v", v, res)
		}
	}
}

func TestDeterministic(t *testing.T) {
	c := quickConfig(18)
	a, err := Run(c, Decoupled)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, Decoupled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Fatalf("nondeterministic: %v vs %v", a.Time, b.Time)
	}
}

// Fig. 6's shape: blocking degrades with scale while nonblocking and
// decoupling stay nearly flat and close to each other.
func TestBlockingDegradesOthersFlat(t *testing.T) {
	run := func(p int, v Variant) sim.Time {
		c := DefaultConfig(p)
		c.Iterations = 10
		c.PointsPerSide = 48
		res, err := Run(c, v)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	const small, large = 32, 256
	blkGrowth := float64(run(large, Blocking)) / float64(run(small, Blocking))
	decGrowth := float64(run(large, Decoupled)) / float64(run(small, Decoupled))
	if blkGrowth <= decGrowth {
		t.Fatalf("blocking growth %.3f not worse than decoupled growth %.3f", blkGrowth, decGrowth)
	}
	// Decoupling matches nonblocking within a few percent (the paper's
	// "same efficiency as the MPI non-blocking operations").
	nbc, dec := run(large, Nonblocking), run(large, Decoupled)
	ratio := float64(dec) / float64(nbc)
	if ratio > 1.05 || ratio < 0.9 {
		t.Fatalf("decoupled/nonblocking ratio %.3f outside [0.9, 1.05]", ratio)
	}
	// And blocking is the worst at scale.
	if blk := run(large, Blocking); blk <= dec {
		t.Fatalf("blocking (%v) not slower than decoupled (%v) at %d procs", blk, dec, large)
	}
}

func TestTracerSeesPhases(t *testing.T) {
	c := quickConfig(18)
	var rec trace.Recorder
	c.Tracer = &rec
	if _, err := Run(c, Nonblocking); err != nil {
		t.Fatal(err)
	}
	saw := map[string]bool{}
	for _, s := range rec.Spans() {
		saw[s.Label] = true
	}
	if !saw["stencil-inner"] || !saw["stencil-boundary"] {
		t.Fatalf("missing stencil spans: %v", saw)
	}
}

func TestSolveRealConverges(t *testing.T) {
	res, err := SolveReal(RealConfig{Procs: 8, N: 16, MaxIter: 500, Tol: 1e-8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-8 {
		t.Fatalf("did not converge: residual %v after %d iters", res.Residual, res.Iterations)
	}
	if res.Iterations <= 0 || res.Iterations >= 500 {
		t.Fatalf("suspicious iteration count %d", res.Iterations)
	}
}

// The decisive substrate test: an 8-rank distributed solve through the
// simulated MPI must produce the same solution as a single-rank solve.
func TestDistributedMatchesSerial(t *testing.T) {
	serial, err := SolveReal(RealConfig{Procs: 1, N: 12, MaxIter: 800, Tol: 1e-10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SolveReal(RealConfig{Procs: 8, N: 12, MaxIter: 800, Tol: 1e-10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Solution) != len(parallel.Solution) {
		t.Fatalf("solution sizes differ: %d vs %d", len(serial.Solution), len(parallel.Solution))
	}
	var maxDiff, norm float64
	for i := range serial.Solution {
		d := math.Abs(serial.Solution[i] - parallel.Solution[i])
		if d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(serial.Solution[i]); a > norm {
			norm = a
		}
	}
	if maxDiff > 1e-6*norm {
		t.Fatalf("solutions diverge: max diff %v vs norm %v", maxDiff, norm)
	}
}

func TestSolveRealNonCubicDecomposition(t *testing.T) {
	// 6 ranks factor as 3x2x1: exercises unequal dims.
	res, err := SolveReal(RealConfig{Procs: 6, N: 12, MaxIter: 500, Tol: 1e-8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-8 {
		t.Fatalf("3x2x1 decomposition did not converge: %v", res.Residual)
	}
}

func TestSolveRealRejectsBadGrid(t *testing.T) {
	if _, err := SolveReal(RealConfig{Procs: 8, N: 15, MaxIter: 10, Tol: 1e-3}); err == nil {
		t.Fatal("indivisible grid accepted")
	}
}
