package core

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
)

// Recommendation is the advisor's end-to-end output: which operations to
// decouple, onto what fraction of processes, and the predicted benefit
// under the paper's performance model.
type Recommendation struct {
	// Decouple lists the operations worth moving to a dedicated group,
	// most suitable first.
	Decouple []Suitability
	// Keep lists the operations that should stay on the main group.
	Keep []string
	// Plan is a ready-to-materialize two-group plan (nil when nothing is
	// worth decoupling).
	Plan *Plan
	// Alpha is the recommended dedicated-group fraction.
	Alpha float64
	// PredictedSpeedup is Tc/Td under Eq. 4 for the aggregate workload.
	PredictedSpeedup float64
}

// RecommendConfig tunes the plan builder.
type RecommendConfig struct {
	// Advise configures the category thresholds.
	Advise AdviseConfig
	// MinScore is the suitability score an operation needs to be
	// decoupled (default 2: at least two of the paper's five
	// categories).
	MinScore int
	// Alphas are the candidate group fractions (default: the paper's
	// 3.125%..25% range).
	Alphas []float64
	// StreamVolume estimates the bytes that will flow between the
	// groups; Granularity the element size; Overhead the per-element
	// cost. Used for the Eq. 4 prediction.
	StreamVolume int64
	Granularity  int64
	Overhead     sim.Time
}

func (c RecommendConfig) withDefaults() RecommendConfig {
	if c.MinScore <= 0 {
		c.MinScore = 2
	}
	if len(c.Alphas) == 0 {
		c.Alphas = []float64{0.03125, 0.0625, 0.125, 0.25}
	}
	if c.StreamVolume <= 0 {
		c.StreamVolume = 1 << 30
	}
	if c.Granularity <= 0 {
		c.Granularity = 64 << 10
	}
	if c.Overhead <= 0 {
		c.Overhead = 200 * sim.Nanosecond
	}
	return c
}

// Recommend scores every operation against Section II-E, splits them into
// keep/decouple sets, picks the Eq. 4-optimal group fraction, and returns
// a materializable plan. It is the programmatic form of the paper's
// "guideline to select operations that can benefit from decoupling".
func Recommend(ops []Operation, cfg RecommendConfig) Recommendation {
	cfg = cfg.withDefaults()
	var rec Recommendation
	var keepTime, moveTime sim.Time
	var maxVariance float64
	for _, op := range ops {
		s := Advise(op, cfg.Advise)
		if s.Score >= cfg.MinScore {
			rec.Decouple = append(rec.Decouple, s)
			moveTime += op.Workload
		} else {
			rec.Keep = append(rec.Keep, op.Name)
			keepTime += op.Workload
			if op.Variance > maxVariance {
				maxVariance = op.Variance
			}
		}
	}
	sort.Slice(rec.Decouple, func(i, j int) bool {
		if rec.Decouple[i].Score != rec.Decouple[j].Score {
			return rec.Decouple[i].Score > rec.Decouple[j].Score
		}
		return rec.Decouple[i].Op < rec.Decouple[j].Op
	})
	sort.Strings(rec.Keep)
	if len(rec.Decouple) == 0 || keepTime <= 0 {
		return rec
	}

	// Operations selected for their complexity growth get cheaper on a
	// small group: with cost growing linearly in the process count, the
	// total work of the operation shrinks by alpha when it moves from P
	// to alpha*P processes (Section II-D: "its complexity decreases when
	// moving to a smaller number of processes").
	complexityDriven := false
	for _, s := range rec.Decouple {
		for _, cat := range s.Categories {
			if cat == CategoryHighComplexity {
				complexityDriven = true
			}
		}
	}
	params := model.Params{
		TW0:      keepTime,
		TW1:      moveTime,
		TSigma:   sim.Time(float64(keepTime) * maxVariance),
		Alpha:    cfg.Alphas[0],
		D:        cfg.StreamVolume,
		S:        cfg.Granularity,
		Overhead: cfg.Overhead,
	}
	if complexityDriven {
		params.DecoupledTW1 = func(alpha float64) sim.Time {
			return sim.Time(float64(moveTime) * alpha)
		}
	}
	alpha, _ := model.OptimalAlpha(params, cfg.Alphas)
	params.Alpha = alpha
	rec.Alpha = alpha
	rec.PredictedSpeedup = model.Speedup(params)

	plan := &Plan{
		Groups: []Group{
			{Name: "main", Fraction: 1 - alpha},
			{Name: "decoupled", Fraction: alpha},
		},
		Assign: map[string]string{},
	}
	for _, name := range rec.Keep {
		plan.Assign[name] = "main"
	}
	for _, s := range rec.Decouple {
		plan.Assign[s.Op] = "decoupled"
	}
	rec.Plan = plan
	return rec
}

// Describe renders the recommendation as human-readable lines.
func (rec Recommendation) Describe() []string {
	var out []string
	if len(rec.Decouple) == 0 {
		return []string{"no operation matches enough of the paper's five categories; keep the conventional structure"}
	}
	for _, s := range rec.Decouple {
		line := fmt.Sprintf("decouple %q (score %d):", s.Op, s.Score)
		for _, cat := range s.Categories {
			line += "\n  - " + cat.String()
		}
		out = append(out, line)
	}
	out = append(out, fmt.Sprintf("recommended group fraction alpha = %g", rec.Alpha))
	out = append(out, fmt.Sprintf("predicted speedup (Eq. 4): %.2fx", rec.PredictedSpeedup))
	return out
}
