package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// paperOps models the iPIC3D operation mix of Section IV-D.
func paperOps() []Operation {
	return []Operation{
		{
			Name:     "field-solver",
			Workload: 100 * sim.Millisecond,
			Variance: 0.02, // grid operations are regular and static
		},
		{
			Name:     "particle-mover",
			Workload: 400 * sim.Millisecond,
			Variance: 0.1,
		},
		{
			Name:             "particle-communication",
			Workload:         80 * sim.Millisecond,
			Variance:         0.6,                                       // skewed particle distribution
			ComplexityGrowth: func(p int) float64 { return float64(p) }, // O(P^2) pairwise / forwarding steps
			ContinuousFlow:   true,
		},
		{
			Name:                 "particle-io",
			Workload:             120 * sim.Millisecond,
			Variance:             0.5,
			ComplexityGrowth:     func(p int) float64 { return float64(p) },
			ContinuousFlow:       true,
			WantsSpecialHardware: true, // burst buffers / I/O nodes
		},
	}
}

func TestRecommendSelectsThePaperOperations(t *testing.T) {
	rec := Recommend(paperOps(), RecommendConfig{})
	if len(rec.Decouple) != 2 {
		t.Fatalf("decouple set = %+v, want particle-communication and particle-io", rec.Decouple)
	}
	names := map[string]bool{}
	for _, s := range rec.Decouple {
		names[s.Op] = true
	}
	if !names["particle-communication"] || !names["particle-io"] {
		t.Fatalf("wrong operations selected: %v", names)
	}
	// I/O matches more categories, so it sorts first.
	if rec.Decouple[0].Op != "particle-io" {
		t.Fatalf("ordering by score broken: %+v", rec.Decouple)
	}
	if len(rec.Keep) != 2 {
		t.Fatalf("keep set = %v", rec.Keep)
	}
}

func TestRecommendProducesValidPlan(t *testing.T) {
	ops := paperOps()
	rec := Recommend(ops, RecommendConfig{})
	if rec.Plan == nil {
		t.Fatal("no plan produced")
	}
	if err := rec.Plan.Validate(ops); err != nil {
		t.Fatalf("recommended plan invalid: %v", err)
	}
	if rec.Alpha <= 0 || rec.Alpha >= 1 {
		t.Fatalf("alpha = %v", rec.Alpha)
	}
	if rec.PredictedSpeedup <= 1 {
		t.Fatalf("predicted speedup %v should exceed 1 for this mix", rec.PredictedSpeedup)
	}
	sizes, err := rec.Plan.GroupSizes(256)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0]+sizes[1] != 256 {
		t.Fatalf("sizes %v", sizes)
	}
}

func TestRecommendNothingSuitable(t *testing.T) {
	ops := []Operation{
		{Name: "stencil", Workload: sim.Second, Variance: 0.01},
		{Name: "dots", Workload: 100 * sim.Millisecond, Variance: 0.02},
	}
	rec := Recommend(ops, RecommendConfig{})
	if len(rec.Decouple) != 0 || rec.Plan != nil {
		t.Fatalf("regular mix should not be decoupled: %+v", rec)
	}
	lines := rec.Describe()
	if len(lines) != 1 || !strings.Contains(lines[0], "conventional") {
		t.Fatalf("describe = %v", lines)
	}
}

func TestRecommendDescribe(t *testing.T) {
	rec := Recommend(paperOps(), RecommendConfig{})
	text := strings.Join(rec.Describe(), "\n")
	for _, want := range []string{"particle-io", "particle-communication", "alpha", "speedup"} {
		if !strings.Contains(text, want) {
			t.Fatalf("describe missing %q:\n%s", want, text)
		}
	}
}

func TestRecommendMinScore(t *testing.T) {
	ops := paperOps()
	rec := Recommend(ops, RecommendConfig{MinScore: 4})
	// Only particle-io matches four categories.
	if len(rec.Decouple) != 1 || rec.Decouple[0].Op != "particle-io" {
		t.Fatalf("min-score filter broken: %+v", rec.Decouple)
	}
}
