package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestAdviseMatchesPaperExamples(t *testing.T) {
	// The paper's reduce operation: high complexity at scale, continuous
	// intermediate output.
	reduce := Operation{
		Name:             "reduce",
		Workload:         50 * sim.Millisecond,
		Variance:         0.4,
		ComplexityGrowth: func(p int) float64 { return math.Sqrt(float64(p)) },
		ContinuousFlow:   true,
	}
	s := Advise(reduce, AdviseConfig{})
	if !s.Suitable() || s.Score < 3 {
		t.Fatalf("reduce suitability = %+v, want >= 3 categories", s)
	}
	// A regular, scale-independent compute kernel should not qualify.
	kernel := Operation{Name: "stencil", Workload: 100 * sim.Millisecond, Variance: 0.01}
	if s := Advise(kernel, AdviseConfig{}); s.Suitable() {
		t.Fatalf("regular kernel scored %+v, want unsuitable", s)
	}
}

func TestAdviseIndividualCategories(t *testing.T) {
	cases := []struct {
		op   Operation
		want Category
	}{
		{Operation{Name: "a", Orthogonal: true}, CategoryOrthogonal},
		{Operation{Name: "b", ComplexityGrowth: func(p int) float64 { return float64(p) }}, CategoryHighComplexity},
		{Operation{Name: "c", Variance: 0.5}, CategoryHighVariance},
		{Operation{Name: "d", ContinuousFlow: true}, CategoryContinuousFlow},
		{Operation{Name: "e", WantsSpecialHardware: true}, CategorySpecialHardware},
	}
	for _, c := range cases {
		s := Advise(c.op, AdviseConfig{})
		if s.Score != 1 || s.Categories[0] != c.want {
			t.Errorf("op %s: got %+v, want single category %v", c.op.Name, s, c.want)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for c := CategoryOrthogonal; c <= CategorySpecialHardware; c++ {
		if c.String() == "" || c.String()[0] == 'C' && len(c.String()) < 12 {
			t.Errorf("category %d has poor name %q", c, c.String())
		}
	}
}

func twoGroupPlan(alpha float64) *Plan {
	return &Plan{
		Groups: []Group{
			{Name: "compute", Fraction: 1 - alpha},
			{Name: "service", Fraction: alpha},
		},
		Assign: map[string]string{"mover": "compute", "reduce": "service"},
	}
}

func TestPlanValidate(t *testing.T) {
	ops := []Operation{{Name: "mover"}, {Name: "reduce"}}
	if err := twoGroupPlan(0.0625).Validate(ops); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := twoGroupPlan(0.0625)
	bad.Groups[1].Fraction = 0.5 // sums to 1.4375
	if bad.Validate(ops) == nil {
		t.Error("fraction sum != 1 accepted")
	}
	bad = twoGroupPlan(0.0625)
	delete(bad.Assign, "mover")
	if bad.Validate(ops) == nil {
		t.Error("unmapped operation accepted")
	}
	bad = twoGroupPlan(0.0625)
	bad.Assign["mover"] = "nonexistent"
	if bad.Validate(ops) == nil {
		t.Error("unknown group accepted")
	}
	empty := &Plan{}
	if empty.Validate(nil) == nil {
		t.Error("empty plan accepted")
	}
}

func TestGroupSizesCoverExactly(t *testing.T) {
	plan := twoGroupPlan(0.0625)
	for _, p := range []int{2, 16, 17, 100, 8192} {
		sizes, err := plan.GroupSizes(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if sizes[0]+sizes[1] != p {
			t.Fatalf("p=%d sizes %v do not cover", p, sizes)
		}
		if sizes[0] < 1 || sizes[1] < 1 {
			t.Fatalf("p=%d empty group: %v", p, sizes)
		}
	}
	if _, err := plan.GroupSizes(1); err == nil {
		t.Error("1 process over 2 groups accepted")
	}
}

// Property: group sizes always cover procs exactly with no empty group.
func TestGroupSizesProperty(t *testing.T) {
	f := func(procsRaw uint16, fracRaw uint8) bool {
		procs := int(procsRaw)%4096 + 2
		alpha := (float64(fracRaw%31) + 1) / 64 // 1/64 .. 31/64
		sizes, err := twoGroupPlan(alpha).GroupSizes(procs)
		if err != nil {
			return false
		}
		return sizes[0]+sizes[1] == procs && sizes[0] >= 1 && sizes[1] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeSplitsWorld(t *testing.T) {
	plan := twoGroupPlan(0.25)
	w := mpi.NewWorld(mpi.Config{Procs: 16, Seed: 1})
	groupOf := make([]string, 16)
	commSize := make([]int, 16)
	if _, err := w.Run(func(r *mpi.Rank) {
		a, err := plan.Materialize(r, r.World())
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		groupOf[r.ID()] = a.GroupName
		commSize[r.ID()] = a.Comm.Size()
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if groupOf[i] != "compute" || commSize[i] != 12 {
			t.Fatalf("rank %d: group=%s size=%d, want compute/12", i, groupOf[i], commSize[i])
		}
	}
	for i := 12; i < 16; i++ {
		if groupOf[i] != "service" || commSize[i] != 4 {
			t.Fatalf("rank %d: group=%s size=%d, want service/4", i, groupOf[i], commSize[i])
		}
	}
}

func TestOperationsOf(t *testing.T) {
	plan := &Plan{
		Groups: []Group{{Name: "g", Fraction: 1}},
		Assign: map[string]string{"z-op": "g", "a-op": "g", "other": "h"},
	}
	ops := plan.OperationsOf("g")
	if len(ops) != 2 || ops[0] != "a-op" || ops[1] != "z-op" {
		t.Fatalf("OperationsOf = %v", ops)
	}
}
