// Package core implements the paper's decoupling strategy at the level the
// application programmer uses it (Section II): describing operations,
// scoring their suitability for decoupling against the five categories of
// Section II-E, forming groups of processes, mapping operations onto
// groups, and materializing the mapping as communicators plus stream
// channels.
package core

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Operation describes one of an application's distinct stages (Op1..OpN in
// Section II-C) through the characteristics that matter for decoupling.
type Operation struct {
	// Name identifies the operation, e.g. "particle-communication".
	Name string
	// Workload is the conventional per-process time of the operation.
	Workload sim.Time
	// Variance is the coefficient of variation of the operation's
	// execution time across processes (0 = perfectly regular).
	Variance float64
	// ComplexityGrowth reports the relative cost factor of the operation
	// when executed by p processes, normalized so that growth(p0) = 1 at
	// the reference scale. Nil means scale-independent.
	ComplexityGrowth func(p int) float64
	// ContinuousFlow reports whether the operation generates data flow
	// throughout execution (rather than bursts at stage boundaries).
	ContinuousFlow bool
	// Orthogonal reports whether the operation has little data
	// dependency on the others (can run on separate data).
	Orthogonal bool
	// WantsSpecialHardware reports whether the operation benefits from a
	// special-purpose computing unit (large-memory nodes, burst buffers,
	// I/O nodes).
	WantsSpecialHardware bool
}

// Category is one of the paper's five classes of operations suitable for
// decoupling (Section II-E).
type Category int

// The five categories, in the paper's order.
const (
	CategoryOrthogonal Category = iota + 1
	CategoryHighComplexity
	CategoryHighVariance
	CategoryContinuousFlow
	CategorySpecialHardware
)

// String names the category as the paper describes it.
func (c Category) String() string {
	switch c {
	case CategoryOrthogonal:
		return "orthogonal operations with little data dependency"
	case CategoryHighComplexity:
		return "operations with high complexity on large numbers of processes"
	case CategoryHighVariance:
		return "operations with large execution time variance"
	case CategoryContinuousFlow:
		return "operations that continuously generate data flow"
	case CategorySpecialHardware:
		return "operations that benefit from special-purpose computing units"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Suitability is the advisor's verdict for one operation.
type Suitability struct {
	Op         string
	Categories []Category
	// Score is the number of matching categories (0-5).
	Score int
}

// Suitable reports whether the operation matches at least one category.
func (s Suitability) Suitable() bool { return s.Score > 0 }

// AdviseConfig tunes the advisor's thresholds.
type AdviseConfig struct {
	// VarianceThreshold is the CoV above which an operation counts as
	// high-variance. Default 0.25.
	VarianceThreshold float64
	// GrowthScale and GrowthThreshold classify complexity growth: the
	// operation is high-complexity if growth(GrowthScale) exceeds
	// GrowthThreshold. Defaults: 8x the reference scale, 2x cost.
	GrowthScale     int
	GrowthThreshold float64
}

func (c AdviseConfig) withDefaults() AdviseConfig {
	if c.VarianceThreshold <= 0 {
		c.VarianceThreshold = 0.25
	}
	if c.GrowthScale <= 0 {
		c.GrowthScale = 8
	}
	if c.GrowthThreshold <= 0 {
		c.GrowthThreshold = 2
	}
	return c
}

// Advise scores an operation against the five categories of Section II-E.
func Advise(op Operation, cfg AdviseConfig) Suitability {
	cfg = cfg.withDefaults()
	var cats []Category
	if op.Orthogonal {
		cats = append(cats, CategoryOrthogonal)
	}
	if op.ComplexityGrowth != nil && op.ComplexityGrowth(cfg.GrowthScale) > cfg.GrowthThreshold {
		cats = append(cats, CategoryHighComplexity)
	}
	if op.Variance > cfg.VarianceThreshold {
		cats = append(cats, CategoryHighVariance)
	}
	if op.ContinuousFlow {
		cats = append(cats, CategoryContinuousFlow)
	}
	if op.WantsSpecialHardware {
		cats = append(cats, CategorySpecialHardware)
	}
	return Suitability{Op: op.Name, Categories: cats, Score: len(cats)}
}

// Group is a named set of processes taking a fraction of the job.
type Group struct {
	Name string
	// Fraction of the total processes assigned to this group. All
	// fractions in a plan must sum to 1.
	Fraction float64
}

// Plan maps every operation to exactly one group (Section II-C: "all
// operations being mapped to exactly one group").
type Plan struct {
	Groups []Group
	// Assign maps operation name -> group name.
	Assign map[string]string
}

// Validate checks the plan's structural invariants.
func (p *Plan) Validate(ops []Operation) error {
	if len(p.Groups) == 0 {
		return fmt.Errorf("core: plan has no groups")
	}
	seen := map[string]bool{}
	sum := 0.0
	for _, g := range p.Groups {
		if g.Name == "" {
			return fmt.Errorf("core: unnamed group")
		}
		if seen[g.Name] {
			return fmt.Errorf("core: duplicate group %q", g.Name)
		}
		seen[g.Name] = true
		if g.Fraction <= 0 || g.Fraction > 1 {
			return fmt.Errorf("core: group %q fraction %v outside (0,1]", g.Name, g.Fraction)
		}
		sum += g.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("core: group fractions sum to %v, want 1", sum)
	}
	for _, op := range ops {
		g, ok := p.Assign[op.Name]
		if !ok {
			return fmt.Errorf("core: operation %q not mapped to any group", op.Name)
		}
		if !seen[g] {
			return fmt.Errorf("core: operation %q mapped to unknown group %q", op.Name, g)
		}
	}
	return nil
}

// GroupSizes divides p processes among the plan's groups proportionally,
// guaranteeing at least one process per group and exact coverage of p.
func (p *Plan) GroupSizes(procs int) ([]int, error) {
	if procs < len(p.Groups) {
		return nil, fmt.Errorf("core: %d processes cannot cover %d groups", procs, len(p.Groups))
	}
	sizes := make([]int, len(p.Groups))
	assigned := 0
	for i, g := range p.Groups {
		sizes[i] = int(g.Fraction * float64(procs))
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Adjust the largest group to absorb rounding.
	largest := 0
	for i := range sizes {
		if sizes[i] > sizes[largest] {
			largest = i
		}
	}
	sizes[largest] += procs - assigned
	if sizes[largest] < 1 {
		return nil, fmt.Errorf("core: fractions leave no room for group %q", p.Groups[largest].Name)
	}
	return sizes, nil
}

// Assignment is a materialized plan on a running world: which group the
// calling rank belongs to and the group communicators.
type Assignment struct {
	// GroupName of the calling rank.
	GroupName string
	// GroupIndex of the calling rank within Plan.Groups.
	GroupIndex int
	// Comm is the calling rank's group communicator.
	Comm *mpi.Comm
	// Sizes are the process counts per group, in plan order.
	Sizes []int
}

// Materialize splits parent according to the plan. Collective: every
// member of parent must call it. Ranks are assigned to groups in
// contiguous blocks, in plan order.
func (p *Plan) Materialize(r *mpi.Rank, parent *mpi.Comm) (*Assignment, error) {
	sizes, err := p.GroupSizes(parent.Size())
	if err != nil {
		return nil, err
	}
	me := parent.RankOf(r)
	idx, base := -1, 0
	for i, sz := range sizes {
		if me < base+sz {
			idx = i
			break
		}
		base += sz
	}
	comm := parent.Split(r, idx, me)
	return &Assignment{
		GroupName:  p.Groups[idx].Name,
		GroupIndex: idx,
		Comm:       comm,
		Sizes:      sizes,
	}, nil
}

// OperationsOf lists the operations the plan assigns to the given group,
// sorted by name for determinism.
func (p *Plan) OperationsOf(group string) []string {
	var out []string
	for op, g := range p.Assign {
		if g == group {
			out = append(out, op)
		}
	}
	sort.Strings(out)
	return out
}
