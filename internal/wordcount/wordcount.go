// Package wordcount implements the real map/reduce kernels of the paper's
// MapReduce case study (Section IV-B): tokenizing text into words,
// emitting (word, 1) pairs, combining partial histograms, and sharding
// keys over reducers. The at-scale simulation costs these kernels with the
// runtime's compute model; correctness tests run them for real.
package wordcount

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens, treating any
// non-letter, non-digit rune as a separator.
func Tokenize(text string) []string {
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return words
}

// Map emits the word histogram of one input chunk — the (w, 1) pairs of
// the paper, pre-combined per chunk as real MapReduce implementations do.
func Map(words []string) map[string]int64 {
	out := make(map[string]int64)
	for _, w := range words {
		out[w]++
	}
	return out
}

// Combine merges src into dst (dst is mutated and returned; a nil dst is
// allocated).
func Combine(dst, src map[string]int64) map[string]int64 {
	if dst == nil {
		dst = make(map[string]int64, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

// Shard assigns a word to one of n reducers by hash. It is the explicit
// stream-routing function of the decoupled implementation.
func Shard(word string, n int) int {
	if n <= 0 {
		panic("wordcount: Shard over no reducers")
	}
	return int(fnv1a(word) % uint64(n))
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Pair is one histogram entry.
type Pair struct {
	Word  string
	Count int64
}

// Top returns the n most frequent entries, ties broken alphabetically —
// the "word histogram" final answer of the case study.
func Top(hist map[string]int64, n int) []Pair {
	pairs := make([]Pair, 0, len(hist))
	for w, c := range hist {
		pairs = append(pairs, Pair{Word: w, Count: c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Count != pairs[j].Count {
			return pairs[i].Count > pairs[j].Count
		}
		return pairs[i].Word < pairs[j].Word
	})
	if n > len(pairs) {
		n = len(pairs)
	}
	return pairs[:n]
}

// Total sums all counts in a histogram.
func Total(hist map[string]int64) int64 {
	var total int64
	for _, c := range hist {
		total += c
	}
	return total
}
