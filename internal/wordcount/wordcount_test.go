package wordcount

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! go-go GO 3rd")
	want := []string{"hello", "world", "go", "go", "go", "3rd"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestTokenizeEmptyAndSeparators(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty text gave %v", got)
	}
	if got := Tokenize("...!!!   \n\t"); len(got) != 0 {
		t.Fatalf("separators gave %v", got)
	}
}

func TestMapCounts(t *testing.T) {
	hist := Map([]string{"a", "b", "a", "a"})
	if hist["a"] != 3 || hist["b"] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestCombine(t *testing.T) {
	a := map[string]int64{"x": 1, "y": 2}
	b := map[string]int64{"y": 3, "z": 4}
	got := Combine(a, b)
	if got["x"] != 1 || got["y"] != 5 || got["z"] != 4 {
		t.Fatalf("combined = %v", got)
	}
	if got2 := Combine(nil, b); got2["z"] != 4 {
		t.Fatalf("nil dst combine = %v", got2)
	}
}

func TestShardStableAndInRange(t *testing.T) {
	words := []string{"the", "of", "and", "quantum", "plasma"}
	for _, w := range words {
		s := Shard(w, 7)
		if s < 0 || s >= 7 {
			t.Fatalf("shard(%q) = %d out of range", w, s)
		}
		if s != Shard(w, 7) {
			t.Fatalf("shard(%q) unstable", w)
		}
	}
}

func TestShardDistributes(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		counts[Shard(fmt.Sprintf("word%d", i), 8)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received nothing: %v", s, counts)
		}
	}
}

func TestTopOrdering(t *testing.T) {
	hist := map[string]int64{"b": 5, "a": 5, "c": 9, "d": 1}
	top := Top(hist, 3)
	if top[0].Word != "c" || top[1].Word != "a" || top[2].Word != "b" {
		t.Fatalf("top = %v", top)
	}
	if len(Top(hist, 100)) != 4 {
		t.Fatal("Top should clamp to histogram size")
	}
}

func TestTotal(t *testing.T) {
	if Total(map[string]int64{"a": 2, "b": 3}) != 5 {
		t.Fatal("Total broken")
	}
}

// Property: combining the per-chunk maps of any split of a word list
// equals mapping the whole list at once.
func TestMapCombineAssociativityProperty(t *testing.T) {
	f := func(raw []uint8, cut uint8) bool {
		words := make([]string, len(raw))
		for i, r := range raw {
			words[i] = string(rune('a' + r%5))
		}
		k := 0
		if len(words) > 0 {
			k = int(cut) % (len(words) + 1)
		}
		whole := Map(words)
		split := Combine(Map(words[:k]), Map(words[k:]))
		if len(whole) != len(split) {
			return false
		}
		for w, c := range whole {
			if split[w] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sharding partitions any histogram exactly (every word goes to
// exactly one shard, totals preserved).
func TestShardPartitionProperty(t *testing.T) {
	f := func(raw []uint16, nShards uint8) bool {
		n := int(nShards)%9 + 1
		hist := make(map[string]int64)
		for _, r := range raw {
			hist[string(rune('a'+r%26))+string(rune('a'+(r/26)%26))]++
		}
		shards := make([]map[string]int64, n)
		for w, c := range hist {
			s := Shard(w, n)
			if shards[s] == nil {
				shards[s] = make(map[string]int64)
			}
			shards[s][w] += c
		}
		var merged map[string]int64
		for _, sh := range shards {
			merged = Combine(merged, sh)
		}
		if int64(len(merged)) != int64(len(hist)) {
			return false
		}
		for w, c := range hist {
			if merged[w] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
