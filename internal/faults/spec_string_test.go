package faults

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestStringRoundTrip: ParseSpec(s.String()) == s for representative
// specs, including the special renderings and the crash fields.
func TestStringRoundTrip(t *testing.T) {
	def := DefaultSpec()
	crashy := def
	crashy.Crashes = 3
	crashy.RestartCost = 100 * sim.Millisecond
	mtbf := def
	mtbf.CrashMTBF = 750 * sim.Millisecond
	lossy := def
	lossy.DropRate = 0.25
	lossy.Drops = 4
	lossy.DupRate = 0.0625
	custom := Spec{
		Seed: 42, Horizon: 2 * sim.Second,
		Bursts: 1, BurstLen: 10 * sim.Millisecond, BurstFactor: 3,
		DerateStripes: 2, DerateRate: 0.5,
		Crashes: 5, RestartCost: sim.Second,
		DropRate: 0.1, Drops: 2, DupRate: 0.05,
	}
	cases := []struct {
		name string
		spec Spec
		want string // rendered form, "" to skip the exact-text check
	}{
		{"zero", Spec{}, "none"},
		{"default", def, "default"},
		{"scaled", def.Scale(2), ""},
		{"crashes", crashy, "crashes=3,restart-cost=100ms"},
		{"mtbf", mtbf, "crash-mtbf=750ms"},
		{"lossy", lossy, "drop-rate=0.25,drops=4,dup-rate=0.0625"},
		{"custom", custom, ""},
	}
	for _, c := range cases {
		text := c.spec.String()
		if c.want != "" && text != c.want {
			t.Errorf("%s: String() = %q, want %q", c.name, text, c.want)
		}
		back, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("%s: ParseSpec(%q): %v", c.name, text, err)
		}
		if back != c.spec {
			t.Errorf("%s: round trip through %q lost fields:\n got %+v\nwant %+v", c.name, text, back, c.spec)
		}
	}
}

// TestUnknownKeyListsValidKeys: the error for a bad key teaches the
// grammar.
func TestUnknownKeyListsValidKeys(t *testing.T) {
	_, err := ParseSpec("crashse=2")
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	for _, key := range SpecKeys() {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("unknown-key error %q does not mention %q", err, key)
		}
	}
}

// TestParseSpecRejects: negative counts/factors/durations and repeated
// keys are refused, and every error names the offending key so the
// operator can find it in a long campaign string.
func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		text string
		key  string // the key the error must name
	}{
		{"bursts=-1", "bursts"},
		{"outages=-3", "outages"},
		{"derate-stripes=-2", "derate-stripes"},
		{"flaps=-1", "flaps"},
		{"crashes=-5", "crashes"},
		{"burst-factor=-2", "burst-factor"},
		{"derate-rate=-0.5", "derate-rate"},
		{"lat-factor=-1", "lat-factor"},
		{"bw-factor=-0.1", "bw-factor"},
		{"horizon=-1s", "horizon"},
		{"burst-len=-200ms", "burst-len"},
		{"outage-len=-1ns", "outage-len"},
		{"derate-len=-4ms", "derate-len"},
		{"flap-len=-250ms", "flap-len"},
		{"crash-mtbf=-1ms", "crash-mtbf"},
		{"restart-cost=-100ms", "restart-cost"},
		{"bursts=16,bursts=2", "bursts"},
		{"seed=1,bursts=4,seed=2", "seed"},
		{"crashes=3, crashes=3", "crashes"}, // even an agreeing repeat
		{"drops=-2", "drops"},
		{"drop-rate=-0.1", "drop-rate"},
		{"dup-rate=-1", "dup-rate"},
		{"drop-rate=1.5", "drop-rate"}, // probabilities cap at 1
		{"dup-rate=2", "dup-rate"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.text)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", c.text)
			continue
		}
		if !strings.Contains(err.Error(), `"`+c.key+`"`) {
			t.Errorf("ParseSpec(%q) error %q does not name key %q", c.text, err, c.key)
		}
	}
	// A negative seed is the one legitimate negative: it is an RNG stream
	// label, not a magnitude.
	if s, err := ParseSpec("seed=-7"); err != nil || s.Seed != -7 {
		t.Errorf("ParseSpec(seed=-7) = %+v, %v; want Seed -7", s, err)
	}
}

// TestCrashPlanDeterministic: equal specs yield equal crash schedules,
// and both the uniform and MTBF generators stay inside the horizon.
func TestCrashPlanDeterministic(t *testing.T) {
	for _, mtbf := range []sim.Time{0, 300 * sim.Millisecond} {
		s := DefaultSpec()
		s.Crashes = 4
		s.CrashMTBF = mtbf
		a := s.Plan(64, 16)
		b := s.Plan(64, 16)
		var crashes int
		for i, e := range a.Events {
			if e != b.Events[i] {
				t.Fatalf("mtbf=%v: plans diverge at event %d: %+v vs %+v", mtbf, i, e, b.Events[i])
			}
			if e.Kind != RankCrash {
				continue
			}
			crashes++
			if e.At < 0 || e.At >= s.Horizon {
				t.Errorf("mtbf=%v: crash at %v outside horizon %v", mtbf, e.At, s.Horizon)
			}
			if e.Target < 0 || e.Target >= 64 {
				t.Errorf("mtbf=%v: crash target %d out of range", mtbf, e.Target)
			}
			if e.Duration != s.RestartCost {
				t.Errorf("mtbf=%v: crash restart %v, want %v", mtbf, e.Duration, s.RestartCost)
			}
		}
		if crashes == 0 {
			t.Errorf("mtbf=%v: no crash events planned", mtbf)
		}
	}
}

// TestCrashFamilyIndependent: adding crashes moves no other family's
// events, and the other families never move the crashes.
func TestCrashFamilyIndependent(t *testing.T) {
	base := DefaultSpec()
	withCrashes := base
	withCrashes.Crashes = 3
	strip := func(p Plan, kind Kind, keep bool) []Event {
		var out []Event
		for _, e := range p.Events {
			if (e.Kind == kind) == keep {
				out = append(out, e)
			}
		}
		return out
	}
	a := strip(base.Plan(64, 16), RankCrash, false)
	b := strip(withCrashes.Plan(64, 16), RankCrash, false)
	if len(a) != len(b) {
		t.Fatalf("crash family changed other families' event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("crash family moved event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	quiet := Spec{Seed: base.Seed, Horizon: base.Horizon, Crashes: 3, RestartCost: base.RestartCost}
	onlyCrashes := strip(quiet.Plan(64, 16), RankCrash, true)
	fullCrashes := strip(withCrashes.Plan(64, 16), RankCrash, true)
	if len(onlyCrashes) != len(fullCrashes) {
		t.Fatalf("other families changed crash count: %d vs %d", len(onlyCrashes), len(fullCrashes))
	}
	for i := range onlyCrashes {
		if onlyCrashes[i] != fullCrashes[i] {
			t.Errorf("other families moved crash %d: %+v vs %+v", i, onlyCrashes[i], fullCrashes[i])
		}
	}
}

// TestScaleCrashes: Scale multiplies the crash count and divides the
// MTBF, leaving RestartCost alone.
func TestScaleCrashes(t *testing.T) {
	s := DefaultSpec()
	s.Crashes = 2
	s.CrashMTBF = sim.Second
	x := s.Scale(2)
	if x.Crashes != 4 {
		t.Errorf("Scale(2).Crashes = %d, want 4", x.Crashes)
	}
	if x.CrashMTBF != 500*sim.Millisecond {
		t.Errorf("Scale(2).CrashMTBF = %v, want 500ms", x.CrashMTBF)
	}
	if x.RestartCost != s.RestartCost {
		t.Errorf("Scale changed RestartCost: %v vs %v", x.RestartCost, s.RestartCost)
	}
	z := s.Scale(0)
	if z.Crashes != 0 || z.CrashMTBF != 0 {
		t.Errorf("Scale(0) kept crashes: %+v", z)
	}
}

// FuzzParseSpec: no input crashes the parser, and every accepted spec
// survives a String round trip.
func FuzzParseSpec(f *testing.F) {
	f.Add("default")
	f.Add("none")
	f.Add("bursts=16,burst-factor=20,outage-len=1s")
	f.Add("crashes=3,restart-cost=100ms")
	f.Add("crash-mtbf=250ms,seed=9")
	f.Add("crashes=x")
	f.Add("horizon=2s,derate-stripes=8,derate-rate=0.1")
	f.Add("bursts=-1")
	f.Add("burst-factor=-2,derate-rate=-0.5")
	f.Add("restart-cost=-100ms")
	f.Add("bursts=16,bursts=2")
	f.Add("seed=-7,crashes=0")
	f.Add("drop-rate=0.25,drops=4,dup-rate=0.0625")
	f.Add("drop-rate=1.5")
	f.Add("drops=-2,dup-rate=0.5")
	f.Add("crashes=2,drop-rate=0.1,seed=3")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", s.String(), text, err)
		}
		if back != s {
			t.Fatalf("round trip of %q: %+v != %+v", text, back, s)
		}
	})
}
