// Package faults turns failure campaigns into deterministic, replayable
// event schedules. A Plan is an ordered list of timed fault events in
// five injector families — rank compute-slowdown bursts, file-system
// stripe outages/derates, link latency/bandwidth degradation,
// crash-stop rank failures with restart, and message loss/duplication —
// that compiles into the per-target schedules the runtime layers consume
// (mpi.Config.RankFaults/StripeFaults/LinkFaults/Crashes/MsgFaults,
// sim.Bank stripe faults, netmodel.LinkFaults, netmodel.MsgFaults).
//
// Every random draw in campaign generation derives from a
// (seed, event-id) stream via sim.Mix64, so a campaign is a pure
// function of its Spec: the same spec always yields the same plan, and
// a compiled plan injected into a run perturbs the trajectory
// deterministically — byte-identical across process representations and
// repeated runs (see the fault-determinism contract in the internal/sim
// package comment).
package faults

import (
	"fmt"
	"sort"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Kind identifies an injector family.
type Kind int

const (
	// RankBurst is a windowed multiplicative slowdown of one rank's
	// compute operations (Factor >= 1), layered on top of the noise
	// model.
	RankBurst Kind = iota
	// StripeOutage takes one file-system stripe fully offline for the
	// window: bookings straddling it stall until it lifts, and placement
	// flows around the stripe when a healthy one finishes sooner.
	StripeOutage
	// StripeDerate degrades one stripe to Factor times its nominal
	// throughput (0 < Factor < 1) for the window.
	StripeDerate
	// LinkLatency multiplies the wire latency of messages entering
	// flight inside the window (Factor >= 1).
	LinkLatency
	// LinkBandwidth multiplies the NIC serialization time of messages
	// injected inside the window (Factor >= 1).
	LinkBandwidth
	// RankCrash kills one rank at At (crash-stop) and restarts it after
	// Duration (the restart cost). Factor is ignored. Crash events
	// compile to sim.CrashEvent lists consumed by mpi.Config.Crashes.
	RankCrash
	// MsgDropRate loses each message transmission independently with
	// probability Factor. Seq carries the verdict-stream seed: per-message
	// decisions are pure hashes of (seed, src, dst, sendSeq, attempt)
	// evaluated at send time by netmodel.MsgFaults, so the event itself is
	// the whole family — no per-message draws at plan time. At/Duration
	// are informational (the campaign horizon); loss applies to every
	// transmission while the injection is armed.
	MsgDropRate
	// MsgDupRate duplicates each delivered transmission independently
	// with probability Factor, same verdict-stream shape as MsgDropRate.
	MsgDupRate
	// MsgDrop loses one specific transmission: the first attempt of send
	// sequence Seq on the Target -> Peer rank pair. A planned coupon
	// rather than a probability, for campaigns that need a named loss.
	MsgDrop
)

// String names the kind for logs and error messages.
func (k Kind) String() string {
	switch k {
	case RankBurst:
		return "rank-burst"
	case StripeOutage:
		return "stripe-outage"
	case StripeDerate:
		return "stripe-derate"
	case LinkLatency:
		return "link-latency"
	case LinkBandwidth:
		return "link-bandwidth"
	case RankCrash:
		return "rank-crash"
	case MsgDropRate:
		return "msg-drop-rate"
	case MsgDupRate:
		return "msg-dup-rate"
	case MsgDrop:
		return "msg-drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timed fault: Kind decides the injector family, Target the
// rank or stripe index (ignored for the link kinds), and Factor the
// slowdown multiplier (RankBurst, LinkLatency, LinkBandwidth), the
// remaining throughput fraction (StripeDerate; StripeOutage ignores it),
// or the loss/duplication probability (MsgDropRate, MsgDupRate). The
// message kinds also use Peer (MsgDrop: destination rank) and Seq
// (MsgDrop: the send sequence to lose; rate kinds: the verdict-stream
// seed); both are zero for every other kind.
type Event struct {
	Kind     Kind
	At       sim.Time
	Duration sim.Time
	Target   int
	Factor   float64
	Peer     int
	Seq      uint64
}

// Plan is an ordered fault-event schedule. The zero Plan schedules
// nothing and compiles to an empty Injection.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules no events.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Validate checks every event's shape (non-negative start, positive
// duration, factor in the kind's legal range, non-negative target).
func (p Plan) Validate() error {
	for i, e := range p.Events {
		// Crash durations are restart costs and may be zero (instant
		// respawn), and the message kinds are not windows at all (a
		// coupon names one transmission; a rate's duration is
		// informational); every windowed kind needs a positive duration.
		zeroOK := e.Kind == RankCrash || e.Kind == MsgDrop || e.Kind == MsgDropRate || e.Kind == MsgDupRate
		if e.At < 0 || e.Duration < 0 || (e.Duration == 0 && !zeroOK) {
			return fmt.Errorf("faults: event %d (%v) has window [%v, +%v)", i, e.Kind, e.At, e.Duration)
		}
		switch e.Kind {
		case RankBurst, LinkLatency, LinkBandwidth:
			if e.Factor < 1 {
				return fmt.Errorf("faults: event %d (%v) factor %v < 1", i, e.Kind, e.Factor)
			}
		case StripeDerate:
			if e.Factor <= 0 || e.Factor >= 1 {
				return fmt.Errorf("faults: event %d (%v) rate %v outside (0, 1)", i, e.Kind, e.Factor)
			}
		case StripeOutage, RankCrash:
			// no factor
		case MsgDropRate, MsgDupRate:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("faults: event %d (%v) probability %v outside (0, 1]", i, e.Kind, e.Factor)
			}
		case MsgDrop:
			if e.Peer < 0 {
				return fmt.Errorf("faults: event %d (%v) peer %d", i, e.Kind, e.Peer)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Kind != LinkLatency && e.Kind != LinkBandwidth && e.Target < 0 {
			return fmt.Errorf("faults: event %d (%v) targets %d", i, e.Kind, e.Target)
		}
	}
	return nil
}

// Injection is a compiled plan: the per-target window lists the runtime
// layers consume directly. All lists are sorted and non-overlapping.
type Injection struct {
	// Rank holds per-rank compute slowdown windows (mpi.Config.RankFaults).
	Rank [][]sim.FaultWindow
	// Stripe holds per-stripe outage/derate windows
	// (mpi.Config.StripeFaults or cluster.Config.StripeFaults).
	Stripe [][]sim.StripeFault
	// Link holds the network degradation windows (mpi.Config.LinkFaults);
	// nil when the plan schedules no link events.
	Link *netmodel.LinkFaults
	// Crash holds the crash-stop schedule (mpi.Config.Crashes), sorted
	// by (At, Target); nil when the plan schedules no crashes.
	Crash []sim.CrashEvent
	// Msg holds the message loss/duplication verdict table
	// (mpi.Config.MsgFaults); nil when the plan schedules no message
	// faults, which keeps the reliable-delivery protocol disarmed.
	Msg *netmodel.MsgFaults
}

// Empty reports whether the injection perturbs nothing.
func (inj *Injection) Empty() bool {
	for _, ws := range inj.Rank {
		if len(ws) > 0 {
			return false
		}
	}
	for _, fs := range inj.Stripe {
		if len(fs) > 0 {
			return false
		}
	}
	if len(inj.Crash) > 0 {
		return false
	}
	if !inj.Msg.Empty() {
		return false
	}
	return inj.Link.Empty()
}

// window is the kind-neutral normalization currency.
type window struct {
	start, end sim.Time
	factor     float64
}

// normalize sorts ws by start and resolves overlaps with
// earlier-event-wins semantics: a window starting inside an earlier one
// is clipped to begin at the earlier window's end, and dropped if
// nothing remains. The result satisfies the sorted/non-overlapping
// contract of sim.ValidateWindows.
func normalize(ws []window) []window {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].start != ws[j].start {
			return ws[i].start < ws[j].start
		}
		return ws[i].end < ws[j].end
	})
	out := ws[:0]
	for _, w := range ws {
		if len(out) > 0 && w.start < out[len(out)-1].end {
			w.start = out[len(out)-1].end
		}
		if w.end <= w.start {
			continue
		}
		out = append(out, w)
	}
	return out
}

// Compile resolves the plan against a machine shape: events targeting
// ranks or stripes outside [0, ranks) / [0, stripes) are dropped, and
// overlapping windows on one target are resolved earlier-event-wins.
// Compilation is pure: the same (plan, ranks, stripes) always yields
// the same injection.
func (p Plan) Compile(ranks, stripes int) (Injection, error) {
	if err := p.Validate(); err != nil {
		return Injection{}, err
	}
	rankWs := make(map[int][]window)
	stripeWs := make(map[int][]window)
	var latWs, bwWs []window
	var crashes []sim.CrashEvent
	var msg *netmodel.MsgFaults
	ensureMsg := func() *netmodel.MsgFaults {
		if msg == nil {
			msg = &netmodel.MsgFaults{}
		}
		return msg
	}
	for _, e := range p.Events {
		w := window{e.At, e.At + e.Duration, e.Factor}
		switch e.Kind {
		case RankBurst:
			if e.Target < ranks {
				rankWs[e.Target] = append(rankWs[e.Target], w)
			}
		case StripeOutage:
			if e.Target < stripes {
				w.factor = 0
				stripeWs[e.Target] = append(stripeWs[e.Target], w)
			}
		case StripeDerate:
			if e.Target < stripes {
				stripeWs[e.Target] = append(stripeWs[e.Target], w)
			}
		case LinkLatency:
			latWs = append(latWs, w)
		case LinkBandwidth:
			bwWs = append(bwWs, w)
		case RankCrash:
			if e.Target < ranks {
				crashes = append(crashes, sim.CrashEvent{At: e.At, Target: e.Target, Restart: e.Duration})
			}
		case MsgDropRate:
			m := ensureMsg()
			m.DropRate = e.Factor
			m.DropSeed = int64(e.Seq)
		case MsgDupRate:
			m := ensureMsg()
			m.DupRate = e.Factor
			m.DupSeed = int64(e.Seq)
		case MsgDrop:
			if e.Target < ranks && e.Peer < ranks {
				m := ensureMsg()
				if m.Drops == nil {
					m.Drops = make(map[netmodel.MsgDropKey]bool)
				}
				m.Drops[netmodel.MsgDropKey{Src: e.Target, Dst: e.Peer, Seq: e.Seq}] = true
			}
		}
	}
	var inj Injection
	if len(rankWs) > 0 {
		inj.Rank = make([][]sim.FaultWindow, ranks)
		for t, ws := range rankWs {
			for _, w := range normalize(ws) {
				inj.Rank[t] = append(inj.Rank[t], sim.FaultWindow{Start: w.start, End: w.end, Factor: w.factor})
			}
		}
	}
	if len(stripeWs) > 0 {
		inj.Stripe = make([][]sim.StripeFault, stripes)
		for t, ws := range stripeWs {
			for _, w := range normalize(ws) {
				inj.Stripe[t] = append(inj.Stripe[t], sim.StripeFault{Start: w.start, End: w.end, Rate: w.factor})
			}
		}
	}
	if len(latWs) > 0 || len(bwWs) > 0 {
		lf := &netmodel.LinkFaults{}
		for _, w := range normalize(latWs) {
			lf.Latency = append(lf.Latency, sim.FaultWindow{Start: w.start, End: w.end, Factor: w.factor})
		}
		for _, w := range normalize(bwWs) {
			lf.Bandwidth = append(lf.Bandwidth, sim.FaultWindow{Start: w.start, End: w.end, Factor: w.factor})
		}
		inj.Link = lf
	}
	if len(crashes) > 0 {
		sort.Slice(crashes, func(i, j int) bool {
			if crashes[i].At != crashes[j].At {
				return crashes[i].At < crashes[j].At
			}
			return crashes[i].Target < crashes[j].Target
		})
		inj.Crash = crashes
	}
	if !msg.Empty() {
		inj.Msg = msg
	}
	return inj, nil
}
