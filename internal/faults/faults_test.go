package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestPlanPure: equal specs must materialize byte-identical plans — the
// replayability contract every campaign rests on.
func TestPlanPure(t *testing.T) {
	s := DefaultSpec()
	a := s.Plan(64, 16)
	b := s.Plan(64, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal specs produced different plans")
	}
	if a.Empty() {
		t.Fatal("default campaign is empty")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("default campaign invalid: %v", err)
	}
}

// eventsOfKind filters a plan by injector family.
func eventsOfKind(p Plan, k Kind) []Event {
	var out []Event
	for _, e := range p.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestFamilyStreamsIndependent: adding events of one family must not
// move any other family's events — each event draws from its own
// (seed, family-base + index) stream.
func TestFamilyStreamsIndependent(t *testing.T) {
	base := DefaultSpec()
	grown := base
	grown.Bursts += 4
	grown.Flaps += 2
	p0, p1 := base.Plan(64, 16), grown.Plan(64, 16)
	for _, k := range []Kind{StripeOutage, StripeDerate} {
		if !reflect.DeepEqual(eventsOfKind(p0, k), eventsOfKind(p1, k)) {
			t.Fatalf("%v events moved when bursts/flaps were added", k)
		}
	}
	if !reflect.DeepEqual(eventsOfKind(p0, RankBurst), eventsOfKind(p1, RankBurst)[:base.Bursts]) {
		t.Fatal("existing burst events moved when more bursts were added")
	}
}

// TestScale: the intensity axes multiply, the severity knobs do not, and
// intensity 0 yields an empty plan.
func TestScale(t *testing.T) {
	s := DefaultSpec()
	d := s.Scale(2)
	if d.Bursts != 2*s.Bursts || d.OutageLen != 2*s.OutageLen ||
		d.DerateStripes != 2*s.DerateStripes || d.Flaps != 2*s.Flaps {
		t.Fatalf("Scale(2) did not double the intensity axes: %+v", d)
	}
	if d.BurstFactor != s.BurstFactor || d.DerateRate != s.DerateRate || d.BurstLen != s.BurstLen {
		t.Fatalf("Scale(2) moved a severity knob: %+v", d)
	}
	if !s.Scale(0).Plan(64, 16).Empty() {
		t.Fatal("Scale(0) plan is not empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative scale did not panic")
		}
	}()
	s.Scale(-1)
}

// TestCompileNormalizesOverlaps: overlapping windows on one target
// resolve earlier-event-wins, and every compiled list satisfies the
// sorted/non-overlapping contract the runtime integrators assume.
func TestCompileNormalizesOverlaps(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: RankBurst, At: 100, Duration: 100, Target: 3, Factor: 4},
		{Kind: RankBurst, At: 150, Duration: 100, Target: 3, Factor: 8},
		{Kind: RankBurst, At: 120, Duration: 30, Target: 3, Factor: 2}, // swallowed
	}}
	inj, err := p.Compile(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.FaultWindow{{Start: 100, End: 200, Factor: 4}, {Start: 200, End: 250, Factor: 8}}
	if !reflect.DeepEqual(inj.Rank[3], want) {
		t.Fatalf("normalized windows %+v, want %+v", inj.Rank[3], want)
	}
	if err := sim.ValidateWindows(inj.Rank[3]); err != nil {
		t.Fatal(err)
	}
}

// TestCompileContracts: the default campaign's compiled lists all pass
// their consumers' validators, outages carry rate 0, and out-of-range
// targets are dropped rather than compiled.
func TestCompileContracts(t *testing.T) {
	inj, err := DefaultSpec().Plan(64, 16).Compile(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	for r, ws := range inj.Rank {
		if err := sim.ValidateWindows(ws); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	var sawOutage bool
	for s, fs := range inj.Stripe {
		if err := sim.ValidateStripeFaults(fs); err != nil {
			t.Fatalf("stripe %d: %v", s, err)
		}
		for _, f := range fs {
			if f.Rate == 0 {
				sawOutage = true
			}
		}
	}
	if !sawOutage {
		t.Fatal("no outage window compiled to rate 0")
	}
	if inj.Link == nil {
		t.Fatal("no link faults compiled")
	} else if err := inj.Link.Validate(); err != nil {
		t.Fatal(err)
	}

	narrow, err := DefaultSpec().Plan(64, 16).Compile(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow.Rank) > 2 || len(narrow.Stripe) > 1 {
		t.Fatalf("out-of-range targets survived compilation: %d ranks, %d stripes", len(narrow.Rank), len(narrow.Stripe))
	}
}

// TestValidateRejects: malformed events are refused with their index.
func TestValidateRejects(t *testing.T) {
	bad := []Event{
		{Kind: RankBurst, At: 0, Duration: 0, Factor: 2},
		{Kind: RankBurst, At: -1, Duration: 10, Factor: 2},
		{Kind: RankBurst, At: 0, Duration: 10, Factor: 0.5},
		{Kind: StripeDerate, At: 0, Duration: 10, Factor: 1},
		{Kind: StripeDerate, At: 0, Duration: 10, Factor: 0},
		{Kind: LinkLatency, At: 0, Duration: 10, Factor: 0.9},
		{Kind: StripeOutage, At: 0, Duration: 10, Target: -1},
		{Kind: Kind(99), At: 0, Duration: 10},
	}
	for i, e := range bad {
		if (Plan{Events: []Event{e}}).Validate() == nil {
			t.Errorf("case %d: invalid event %+v accepted", i, e)
		}
	}
	if _, err := (Plan{Events: bad[:1]}).Compile(4, 4); err == nil {
		t.Error("Compile accepted an invalid plan")
	}
}

// TestParseSpec: the compact CLI syntax round-trips, the literals parse,
// and malformed input is refused.
func TestParseSpec(t *testing.T) {
	if s, err := ParseSpec(""); err != nil || s != DefaultSpec() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	if s, err := ParseSpec("default"); err != nil || s != DefaultSpec() {
		t.Fatalf("default spec: %+v, %v", s, err)
	}
	if s, err := ParseSpec("none"); err != nil || s != (Spec{}) {
		t.Fatalf("none spec: %+v, %v", s, err)
	}
	s, err := ParseSpec("seed=7, bursts=16, burst-len=500ms, derate-rate=0.5, lat-factor=3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.Bursts != 16 || s.BurstLen != 500*sim.Millisecond || s.DerateRate != 0.5 || s.LatencyFactor != 3 {
		t.Fatalf("overrides not applied: %+v", s)
	}
	if s.Outages != DefaultSpec().Outages {
		t.Fatalf("untouched field moved: %+v", s)
	}
	for _, bad := range []string{"bursts", "bursts=x", "unknown=1", "horizon=12"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestInjectionEmpty: emptiness is what the neutrality pin keys on.
func TestInjectionEmpty(t *testing.T) {
	inj, err := (Plan{}).Compile(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Empty() {
		t.Fatal("zero plan compiled non-empty")
	}
	full, err := DefaultSpec().Plan(8, 8).Compile(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if full.Empty() {
		t.Fatal("default campaign compiled empty")
	}
}
