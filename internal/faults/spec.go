package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Spec parameterizes a generated campaign: how many events of each
// family to scatter over the horizon, how long and how severe each one
// is. A Spec is declarative — Plan materializes it into a concrete
// event schedule, with every draw derived from (Seed, event id) via
// sim.Mix64, so equal specs always produce equal plans.
type Spec struct {
	// Seed drives every draw in campaign generation. It is independent
	// of the simulation seed: one campaign can be replayed against many
	// run seeds and vice versa.
	Seed int64
	// Horizon is the virtual-time span [0, Horizon) events are scattered
	// over.
	Horizon sim.Time

	// Bursts rank slowdown bursts of BurstLen, each slowing its target
	// rank's compute by BurstFactor.
	Bursts      int
	BurstLen    sim.Time
	BurstFactor float64

	// Outages full stripe outages of OutageLen.
	Outages   int
	OutageLen sim.Time

	// DerateStripes stripes degraded to DerateRate of nominal throughput
	// for DerateLen (0 means the whole horizon).
	DerateStripes int
	DerateLen     sim.Time
	DerateRate    float64

	// Flaps link degradation windows of FlapLen, multiplying wire
	// latency by LatencyFactor and NIC serialization by BandwidthFactor.
	Flaps           int
	FlapLen         sim.Time
	LatencyFactor   float64
	BandwidthFactor float64

	// Crashes crash-stop rank failures scattered uniformly over the
	// horizon, each killing one uniformly drawn rank and restarting it
	// after RestartCost. When CrashMTBF is positive it takes precedence:
	// crash instants are drawn as exponential inter-arrivals with that
	// mean until the horizon is exhausted, the memoryless model the
	// Young/Daly checkpoint-interval analysis assumes.
	Crashes     int
	CrashMTBF   sim.Time
	RestartCost sim.Time

	// DropRate / DupRate lose or duplicate each network message
	// transmission independently with the given probability; Drops plans
	// that many targeted single-message losses (one specific (src, dst,
	// sequence) transmission each). Any non-zero knob arms the reliable
	// delivery protocol in internal/mpi (acks, virtual-time retransmission
	// timeouts); all three default to zero so the fabric stays lossless
	// unless a campaign asks otherwise.
	DropRate float64
	Drops    int
	DupRate  float64
}

// DefaultSpec is the reference campaign the resilience experiment and
// the CI smoke job scale: a handful of each fault family over a
// four-virtual-second horizon.
func DefaultSpec() Spec {
	return Spec{
		Seed:            1,
		Horizon:         4 * sim.Second,
		Bursts:          8,
		BurstLen:        200 * sim.Millisecond,
		BurstFactor:     10,
		Outages:         2,
		OutageLen:       400 * sim.Millisecond,
		DerateStripes:   4,
		DerateRate:      0.25,
		Flaps:           4,
		FlapLen:         250 * sim.Millisecond,
		LatencyFactor:   8,
		BandwidthFactor: 4,
		// Crash-stop failures are opt-in (Crashes stays 0 so the default
		// campaign — and every trajectory pinned against it — is
		// unchanged); RestartCost is the severity knob a crashing
		// campaign inherits.
		RestartCost: 250 * sim.Millisecond,
	}
}

// Scale returns the spec with its intensity axes — burst count, outage
// duration, degraded-stripe count, flap count — multiplied by x.
// Scale(0) yields a spec whose Plan is empty; severity knobs (factors,
// rates, burst/flap lengths) are left alone so a sweep varies how much
// degradation happens, not what one event looks like.
func (s Spec) Scale(x float64) Spec {
	if x < 0 {
		panic(fmt.Sprintf("faults: Scale(%v) negative", x))
	}
	s.Bursts = int(float64(s.Bursts) * x)
	s.OutageLen = sim.Time(float64(s.OutageLen) * x)
	s.DerateStripes = int(float64(s.DerateStripes) * x)
	s.Flaps = int(float64(s.Flaps) * x)
	s.Crashes = int(float64(s.Crashes) * x)
	s.Drops = int(float64(s.Drops) * x)
	// Loss/duplication probabilities scale with intensity but saturate at
	// certain loss; Scale(0) must yield an empty (lossless) plan.
	s.DropRate = min(s.DropRate*x, 1)
	s.DupRate = min(s.DupRate*x, 1)
	// Higher intensity means more frequent crashes, so the mean time
	// between failures divides; RestartCost is a severity knob and stays.
	if s.CrashMTBF > 0 {
		if x == 0 {
			s.CrashMTBF = 0
		} else {
			s.CrashMTBF = sim.Time(float64(s.CrashMTBF) / x)
		}
	}
	if x == 0 {
		s.Outages = 0
	}
	return s
}

// Stream id bases keep each family's draws independent of the other
// families' event counts: adding bursts never moves an outage.
const (
	burstStreamBase  = 0 << 20
	outageStreamBase = 1 << 20
	derateStreamBase = 2 << 20
	flapStreamBase   = 3 << 20
	crashStreamBase  = 4 << 20
	msgStreamBase    = 5 << 20
)

// eventRand is the (seed, event-id) stream: every event draws its start
// and target from its own generator, so campaigns replay exactly and
// event k is unaffected by how many events precede it.
func eventRand(seed int64, id int64) *rand.Rand {
	return rand.New(sim.NewSplitMix(sim.Mix64(seed, id)))
}

// startIn draws a window start leaving room for length within the
// horizon.
func startIn(rng *rand.Rand, horizon, length sim.Time) (sim.Time, sim.Time) {
	if length > horizon {
		length = horizon
	}
	room := int64(horizon - length)
	var at sim.Time
	if room > 0 {
		at = sim.Time(rng.Int63n(room + 1))
	}
	return at, length
}

// Plan materializes the campaign for a machine of the given shape.
// Targets are drawn uniformly (derated stripes as a prefix of a drawn
// permutation, so DerateStripes counts distinct stripes); events landing
// on the same target may overlap and are resolved earlier-wins at
// Compile time.
func (s Spec) Plan(ranks, stripes int) Plan {
	var p Plan
	if s.Horizon <= 0 {
		return p
	}
	for k := 0; k < s.Bursts && ranks > 0; k++ {
		rng := eventRand(s.Seed, burstStreamBase+int64(k))
		at, length := startIn(rng, s.Horizon, s.BurstLen)
		p.Events = append(p.Events, Event{
			Kind: RankBurst, At: at, Duration: length,
			Target: rng.Intn(ranks), Factor: s.BurstFactor,
		})
	}
	for k := 0; k < s.Outages && stripes > 0 && s.OutageLen > 0; k++ {
		rng := eventRand(s.Seed, outageStreamBase+int64(k))
		at, length := startIn(rng, s.Horizon, s.OutageLen)
		p.Events = append(p.Events, Event{
			Kind: StripeOutage, At: at, Duration: length,
			Target: rng.Intn(stripes),
		})
	}
	if n := s.DerateStripes; n > 0 && stripes > 0 {
		if n > stripes {
			n = stripes
		}
		rng := eventRand(s.Seed, derateStreamBase)
		perm := rng.Perm(stripes)
		for k := 0; k < n; k++ {
			length := s.DerateLen
			if length <= 0 {
				length = s.Horizon
			}
			at, length := startIn(rng, s.Horizon, length)
			p.Events = append(p.Events, Event{
				Kind: StripeDerate, At: at, Duration: length,
				Target: perm[k], Factor: s.DerateRate,
			})
		}
	}
	for k := 0; k < s.Flaps; k++ {
		rng := eventRand(s.Seed, flapStreamBase+int64(k))
		at, length := startIn(rng, s.Horizon, s.FlapLen)
		if s.LatencyFactor > 1 {
			p.Events = append(p.Events, Event{
				Kind: LinkLatency, At: at, Duration: length, Factor: s.LatencyFactor,
			})
		}
		if s.BandwidthFactor > 1 {
			p.Events = append(p.Events, Event{
				Kind: LinkBandwidth, At: at, Duration: length, Factor: s.BandwidthFactor,
			})
		}
	}
	if ranks > 0 {
		if s.CrashMTBF > 0 {
			// Memoryless arrivals: event k's stream draws the gap since
			// the previous crash and the victim rank. The running sum
			// makes later events depend on earlier gaps — within the
			// family only, which is the contract (families never move
			// each other).
			var t sim.Time
			for k := 0; ; k++ {
				rng := eventRand(s.Seed, crashStreamBase+int64(k))
				t += sim.Time(rng.ExpFloat64() * float64(s.CrashMTBF))
				if t >= s.Horizon || t < 0 {
					break
				}
				p.Events = append(p.Events, Event{
					Kind: RankCrash, At: t, Duration: s.RestartCost,
					Target: rng.Intn(ranks),
				})
			}
		} else {
			for k := 0; k < s.Crashes; k++ {
				rng := eventRand(s.Seed, crashStreamBase+int64(k))
				at, _ := startIn(rng, s.Horizon, 0)
				p.Events = append(p.Events, Event{
					Kind: RankCrash, At: at, Duration: s.RestartCost,
					Target: rng.Intn(ranks),
				})
			}
		}
	}
	// Message family: losses and duplications. The rate kinds carry the
	// verdict-stream seed in Seq — per-transmission decisions are then
	// pure hashes of (seed, src, dst, sendSeq, attempt) made at send time
	// in netmodel, with no draws here — so the family adds at most two
	// events regardless of traffic volume and never moves another
	// family's stream. Targeted drops are coupon events: each plans the
	// loss of one specific (src, dst, sendSeq) first transmission.
	if s.DropRate > 0 {
		p.Events = append(p.Events, Event{
			Kind: MsgDropRate, Duration: s.Horizon, Factor: s.DropRate,
			Seq: uint64(sim.Mix64(s.Seed, msgStreamBase)),
		})
	}
	if s.DupRate > 0 {
		p.Events = append(p.Events, Event{
			Kind: MsgDupRate, Duration: s.Horizon, Factor: s.DupRate,
			Seq: uint64(sim.Mix64(s.Seed, msgStreamBase+1)),
		})
	}
	for k := 0; k < s.Drops && ranks > 1; k++ {
		rng := eventRand(s.Seed, msgStreamBase+2+int64(k))
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		if dst == src {
			// Self-sends bypass the fabric; nudge to a real link.
			dst = (dst + 1) % ranks
		}
		p.Events = append(p.Events, Event{
			Kind: MsgDrop, Target: src, Peer: dst, Seq: uint64(rng.Int63n(64)),
		})
	}
	return p
}

// specKeys lists every key ParseSpec accepts, in canonical order; String
// emits overrides in this order and unknown-key errors quote the list.
var specKeys = []string{
	"seed", "horizon",
	"bursts", "burst-len", "burst-factor",
	"outages", "outage-len",
	"derate-stripes", "derate-len", "derate-rate",
	"flaps", "flap-len", "lat-factor", "bw-factor",
	"crashes", "crash-mtbf", "restart-cost",
	"drop-rate", "drops", "dup-rate",
}

// SpecKeys returns the keys ParseSpec accepts, in canonical order, for
// help text and error messages.
func SpecKeys() []string {
	return append([]string(nil), specKeys...)
}

// String renders the spec in the compact syntax ParseSpec reads, as the
// minimal override list against DefaultSpec: ParseSpec(s.String()) == s
// for every spec. The zero spec renders as "none" and the default as
// "default".
func (s Spec) String() string {
	if s == (Spec{}) {
		return "none"
	}
	def := DefaultSpec()
	if s == def {
		return "default"
	}
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	num := func(key string, v, dv int) {
		if v != dv {
			add(key, strconv.Itoa(v))
		}
	}
	dur := func(key string, v, dv sim.Time) {
		if v != dv {
			add(key, time.Duration(v).String())
		}
	}
	flt := func(key string, v, dv float64) {
		if v != dv {
			add(key, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	if s.Seed != def.Seed {
		add("seed", strconv.FormatInt(s.Seed, 10))
	}
	dur("horizon", s.Horizon, def.Horizon)
	num("bursts", s.Bursts, def.Bursts)
	dur("burst-len", s.BurstLen, def.BurstLen)
	flt("burst-factor", s.BurstFactor, def.BurstFactor)
	num("outages", s.Outages, def.Outages)
	dur("outage-len", s.OutageLen, def.OutageLen)
	num("derate-stripes", s.DerateStripes, def.DerateStripes)
	dur("derate-len", s.DerateLen, def.DerateLen)
	flt("derate-rate", s.DerateRate, def.DerateRate)
	num("flaps", s.Flaps, def.Flaps)
	dur("flap-len", s.FlapLen, def.FlapLen)
	flt("lat-factor", s.LatencyFactor, def.LatencyFactor)
	flt("bw-factor", s.BandwidthFactor, def.BandwidthFactor)
	num("crashes", s.Crashes, def.Crashes)
	dur("crash-mtbf", s.CrashMTBF, def.CrashMTBF)
	dur("restart-cost", s.RestartCost, def.RestartCost)
	flt("drop-rate", s.DropRate, def.DropRate)
	num("drops", s.Drops, def.Drops)
	flt("dup-rate", s.DupRate, def.DupRate)
	return strings.Join(parts, ",")
}

// ParseSpec parses the compact campaign syntax of decouplebench's
// -faults flag: a comma-separated key=value list overriding DefaultSpec
// field by field, e.g.
//
//	bursts=16,burst-factor=20,outage-len=1s,derate-stripes=8,seed=7
//
// The literal "default" (or an empty string) is DefaultSpec unchanged;
// "none" is the zero Spec, whose plan is empty. Durations use Go
// duration syntax ("200ms"), interpreted as virtual time.
//
// Each key may appear at most once, and counts, factors and durations
// must be non-negative (only "seed" may be negative); violations are
// errors naming the offending key rather than silently-planned nonsense.
func ParseSpec(text string) (Spec, error) {
	s := DefaultSpec()
	text = strings.TrimSpace(text)
	switch text {
	case "", "default":
		return s, nil
	case "none":
		return Spec{}, nil
	}
	seen := make(map[string]bool, 8)
	for _, kv := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: bad spec element %q (want key=value)", kv)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "horizon":
			s.Horizon, err = parseDuration(val)
		case "bursts":
			s.Bursts, err = parseCount(val)
		case "burst-len":
			s.BurstLen, err = parseDuration(val)
		case "burst-factor":
			s.BurstFactor, err = parseFactor(val)
		case "outages":
			s.Outages, err = parseCount(val)
		case "outage-len":
			s.OutageLen, err = parseDuration(val)
		case "derate-stripes":
			s.DerateStripes, err = parseCount(val)
		case "derate-len":
			s.DerateLen, err = parseDuration(val)
		case "derate-rate":
			s.DerateRate, err = parseFactor(val)
		case "flaps":
			s.Flaps, err = parseCount(val)
		case "flap-len":
			s.FlapLen, err = parseDuration(val)
		case "lat-factor":
			s.LatencyFactor, err = parseFactor(val)
		case "bw-factor":
			s.BandwidthFactor, err = parseFactor(val)
		case "crashes":
			s.Crashes, err = parseCount(val)
		case "crash-mtbf":
			s.CrashMTBF, err = parseDuration(val)
		case "restart-cost":
			s.RestartCost, err = parseDuration(val)
		case "drop-rate":
			s.DropRate, err = parseProb(val)
		case "drops":
			s.Drops, err = parseCount(val)
		case "dup-rate":
			s.DupRate, err = parseProb(val)
		default:
			return Spec{}, fmt.Errorf("faults: unknown spec key %q (valid keys: %s)", key, strings.Join(specKeys, ", "))
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faults: bad value for %q: %v", key, err)
		}
		// A repeated key is almost always an edited-in-place campaign where
		// the old override was meant to go; last-wins would silently run a
		// different campaign than the one the operator thinks they asked for.
		if seen[key] {
			return Spec{}, fmt.Errorf("faults: duplicate spec key %q", key)
		}
		seen[key] = true
	}
	return s, nil
}

// parseCount reads a non-negative event count. Campaign generation treats
// counts as loop bounds, so a negative would silently plan nothing; refuse
// it instead.
func parseCount(val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("count %d is negative", n)
	}
	return n, nil
}

// parseFactor reads a non-negative severity factor or rate. Negative
// slowdowns/rates have no physical reading (Plan would emit them into
// events Compile rejects much later, far from the flag that caused them).
func parseFactor(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 {
		return 0, fmt.Errorf("factor %v is negative", f)
	}
	return f, nil
}

// parseProb reads a probability. Loss and duplication knobs are
// per-transmission probabilities, so values above 1 are as nonsensical as
// negative ones.
func parseProb(val string) (float64, error) {
	f, err := parseFactor(val)
	if err != nil {
		return 0, err
	}
	if f > 1 {
		return 0, fmt.Errorf("probability %v exceeds 1", f)
	}
	return f, nil
}

// parseDuration reads a Go duration literal as non-negative virtual time.
func parseDuration(val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %v is negative", d)
	}
	return sim.Time(d.Nanoseconds()), nil
}
