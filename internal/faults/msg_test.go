package faults

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// TestMsgFamilyIndependent: arming the message family moves no other
// family's events, and the other families never move the message events.
func TestMsgFamilyIndependent(t *testing.T) {
	isMsg := func(k Kind) bool {
		return k == MsgDropRate || k == MsgDupRate || k == MsgDrop
	}
	base := DefaultSpec()
	withMsg := base
	withMsg.DropRate = 0.2
	withMsg.DupRate = 0.05
	withMsg.Drops = 3
	strip := func(p Plan, keep bool) []Event {
		var out []Event
		for _, e := range p.Events {
			if isMsg(e.Kind) == keep {
				out = append(out, e)
			}
		}
		return out
	}
	a := strip(base.Plan(64, 16), false)
	b := strip(withMsg.Plan(64, 16), false)
	if len(a) != len(b) {
		t.Fatalf("message family changed other families' event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("message family moved event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	quiet := Spec{Seed: base.Seed, Horizon: base.Horizon,
		DropRate: withMsg.DropRate, DupRate: withMsg.DupRate, Drops: withMsg.Drops}
	onlyMsg := strip(quiet.Plan(64, 16), true)
	fullMsg := strip(withMsg.Plan(64, 16), true)
	if len(onlyMsg) != len(fullMsg) {
		t.Fatalf("other families changed message event count: %d vs %d", len(onlyMsg), len(fullMsg))
	}
	for i := range onlyMsg {
		if onlyMsg[i] != fullMsg[i] {
			t.Errorf("other families moved message event %d: %+v vs %+v", i, onlyMsg[i], fullMsg[i])
		}
	}
	if len(onlyMsg) != 2+withMsg.Drops {
		t.Errorf("message family planned %d events, want %d (2 rate events + %d coupons)",
			len(onlyMsg), 2+withMsg.Drops, withMsg.Drops)
	}
}

// TestMsgCompile: the planned message events compile into one verdict
// table with the rate seeds and planned-drop coupons in place.
func TestMsgCompile(t *testing.T) {
	s := Spec{Seed: 7, Horizon: sim.Second, DropRate: 0.3, DupRate: 0.1, Drops: 2}
	inj, err := s.Plan(16, 4).Compile(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := inj.Msg
	if m == nil {
		t.Fatal("no message-fault table compiled")
	}
	if m.DropRate != 0.3 || m.DupRate != 0.1 {
		t.Errorf("rates %v/%v, want 0.3/0.1", m.DropRate, m.DupRate)
	}
	if m.DropSeed == 0 || m.DupSeed == 0 || m.DropSeed == m.DupSeed {
		t.Errorf("verdict streams not independently seeded: %d vs %d", m.DropSeed, m.DupSeed)
	}
	if len(m.Drops) != 2 {
		t.Errorf("%d coupons, want 2", len(m.Drops))
	}
	for k := range m.Drops {
		if k.Src == k.Dst || k.Src < 0 || k.Src >= 16 || k.Dst < 0 || k.Dst >= 16 {
			t.Errorf("coupon %+v targets an invalid pair", k)
		}
	}
	if inj.Empty() {
		t.Error("injection with a message table reports empty")
	}

	// An empty campaign compiles no table at all: zero-loss runs must see
	// a nil MsgFaults (the protocol-off fast path).
	clean, err := Spec{Seed: 7, Horizon: sim.Second}.Plan(16, 4).Compile(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Msg != nil {
		t.Errorf("empty campaign compiled a message table: %+v", clean.Msg)
	}
}

// TestMsgEventValidate: malformed message events are refused with the
// probability range named.
func TestMsgEventValidate(t *testing.T) {
	bad := []Event{
		{Kind: MsgDropRate, Factor: 0},
		{Kind: MsgDropRate, Factor: 1.5},
		{Kind: MsgDupRate, Factor: -0.1},
		{Kind: MsgDrop, Target: 1, Peer: -1},
	}
	for _, e := range bad {
		p := Plan{Events: []Event{e}}
		if _, err := p.Compile(8, 4); err == nil {
			t.Errorf("event %+v accepted", e)
		}
	}
}

// TestMsgScale: Scale multiplies the coupon count and the rates, capping
// probabilities at 1.
func TestMsgScale(t *testing.T) {
	s := Spec{Seed: 1, Horizon: sim.Second, DropRate: 0.4, DupRate: 0.3, Drops: 2}
	x := s.Scale(3)
	if x.Drops != 6 {
		t.Errorf("Scale(3).Drops = %d, want 6", x.Drops)
	}
	if x.DropRate != 1 {
		t.Errorf("Scale(3).DropRate = %v, want capped 1", x.DropRate)
	}
	if x.DupRate != 0.9 && (x.DupRate < 0.899 || x.DupRate > 0.901) {
		t.Errorf("Scale(3).DupRate = %v, want 0.9", x.DupRate)
	}
	z := s.Scale(0)
	if z.Drops != 0 || z.DropRate != 0 || z.DupRate != 0 {
		t.Errorf("Scale(0) kept message faults: %+v", z)
	}
}

// TestVerdictPurity: verdicts are pure functions of (table, src, dst,
// seq, attempt) — planned coupons match attempt 0 only, rate decisions
// are stable across calls, and a nil table always delivers.
func TestVerdictPurity(t *testing.T) {
	m := &netmodel.MsgFaults{
		DropSeed: 11, DropRate: 0.5,
		DupSeed: 13, DupRate: 0.25,
		Drops: map[netmodel.MsgDropKey]bool{{Src: 1, Dst: 2, Seq: 5}: true},
	}
	if v := m.Verdict(1, 2, 5, 0); v != netmodel.VerdictDrop {
		t.Errorf("coupon ignored on attempt 0: %v", v)
	}
	if v := m.Verdict(1, 2, 5, 1); v == netmodel.VerdictDrop &&
		m.Verdict(1, 2, 5, 1) != m.Verdict(1, 2, 5, 1) {
		t.Error("retransmission verdict unstable")
	}
	for src := 0; src < 4; src++ {
		for seq := uint64(0); seq < 16; seq++ {
			for attempt := 0; attempt < 3; attempt++ {
				a := m.Verdict(src, src+1, seq, attempt)
				b := m.Verdict(src, src+1, seq, attempt)
				if a != b {
					t.Fatalf("verdict(%d,%d,%d,%d) unstable: %v vs %v", src, src+1, seq, attempt, a, b)
				}
			}
		}
	}
	var nilTable *netmodel.MsgFaults
	if v := nilTable.Verdict(0, 1, 0, 0); v != netmodel.VerdictDeliver {
		t.Errorf("nil table verdict %v, want deliver", v)
	}
	if !nilTable.Empty() {
		t.Error("nil table not empty")
	}
}
