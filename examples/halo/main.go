// Halo demonstrates the CG case study: first a real distributed Poisson
// solve through the simulated MPI runtime (actual floating-point halo
// faces and dot products), verified against a single-rank solve; then a
// miniature Fig. 6 comparing the blocking, non-blocking and decoupled
// halo-exchange implementations at simulated scale.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/apps/cg"
)

func main() {
	// Real solve: 8 ranks on a 16^3 grid.
	parallel, err := cg.SolveReal(cg.RealConfig{Procs: 8, N: 16, MaxIter: 600, Tol: 1e-9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	serial, err := cg.SolveReal(cg.RealConfig{Procs: 1, N: 16, MaxIter: 600, Tol: 1e-9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range serial.Solution {
		if d := math.Abs(serial.Solution[i] - parallel.Solution[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("real distributed CG: converged in %d iterations, residual %.2e\n",
		parallel.Iterations, parallel.Residual)
	fmt.Printf("max deviation from the serial solution: %.2e\n\n", maxDiff)

	// Miniature Fig. 6.
	fmt.Println("miniature Fig. 6 (weak scaling, 120^3 points/proc, 30 iterations):")
	for _, p := range []int{32, 128, 512} {
		cfg := cg.DefaultConfig(p)
		var times []string
		for _, v := range []cg.Variant{cg.Blocking, cg.Nonblocking, cg.Decoupled} {
			res, err := cg.Run(cfg, v)
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, fmt.Sprintf("%s=%6.2fs", v, res.Time.Seconds()))
		}
		fmt.Printf("  procs=%4d  %s  %s  %s\n", p, times[0], times[1], times[2])
	}
}
