// Lossy walks the message-fault family end to end: a campaign spec with
// drop-rate / drops / dup-rate keys compiles into a verdict table, a
// two-rank world shows the reliable-delivery protocol (ack,
// virtual-time timeout, exponential backoff, retransmit) recovering a
// planned drop, and the three Fig. 8 particle-I/O implementations run
// under increasing loss. Verdicts are pure hashes of (seed, src, dst,
// seq, attempt) — no generator state — so every row replays
// bit-for-bit, and any cell can be re-run in isolation.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/ipic3d"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

const procs = 64

func main() {
	// 1. A lossy campaign in spec syntax: a 10% uniform drop rate, three
	// planned drop coupons on named (src, dst, seq) triples, and a small
	// duplication rate. Like every family, it round-trips through the
	// canonical string.
	spec, err := faults.ParseSpec("drop-rate=0.1,drops=3,dup-rate=0.02")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign %q (seed %d)\n", spec.String(), spec.Seed)
	inj, err := spec.Plan(procs, 1).Compile(procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: drop-rate=%g dup-rate=%g coupons=%d\n\n",
		inj.Msg.DropRate, inj.Msg.DupRate, len(inj.Msg.Drops))

	// 2. The protocol in miniature: drop the first transmission of the
	// 0->1 pair by coupon. The receive still completes — one
	// retransmission, timed by the virtual-clock ack timeout.
	mf := &netmodel.MsgFaults{
		Drops: map[netmodel.MsgDropKey]bool{{Src: 0, Dst: 1, Seq: 0}: true},
	}
	w := mpi.NewWorld(mpi.Config{Procs: 2, Seed: 1, MsgFaults: mf})
	var recvAt sim.Time
	if _, err := w.Run(func(r *mpi.Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(r, 1, 1, 4096, nil)
		} else {
			c.Recv(r, 0, 1)
			recvAt = r.Now()
		}
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned drop of (0->1, seq 0): delivered at %v after %d retransmit(s)\n\n",
		recvAt, w.Retransmits())

	// 3. The Fig. 8 variants under increasing loss. Makespans barely move
	// — microsecond retransmissions against second-scale file I/O — but
	// the retransmit and goodput columns show the protocol working, and
	// the decoupled producers pace themselves against the ack window.
	for _, v := range []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled} {
		fmt.Printf("%s:\n  %-10s %12s %12s %10s\n", v, "drop-rate", "makespan", "retransmits", "goodput")
		for _, rate := range []float64{0, 0.02, 0.1} {
			c := ipic3d.DefaultConfig(procs)
			if rate > 0 {
				c.Faults = &faults.Injection{Msg: &netmodel.MsgFaults{
					DropSeed: sim.Mix64(spec.Seed, 1), DropRate: rate,
					DupSeed: sim.Mix64(spec.Seed, 2), DupRate: rate / 4,
				}}
			}
			res, err := ipic3d.RunIO(c, v)
			if err != nil {
				log.Fatal(err)
			}
			goodput := 1.0
			if total := res.Messages + res.Retransmits; total > 0 {
				goodput = float64(res.Messages) / float64(total)
			}
			fmt.Printf("  %-10g %12v %12d %9.4f\n", rate, res.Time, res.Retransmits, goodput)
		}
		fmt.Println()
	}
}
