// Resilience walks a deterministic fault-injection campaign: the default
// spec (rank slowdown bursts, stripe outages and derates, link flaps) is
// scaled across intensities and injected into the three Fig. 8
// particle-I/O implementations. Everything is replayable — the campaign
// is a pure function of (spec, seed), and a compiled plan perturbs the
// trajectory identically across process representations and repeated
// runs — so any cell of the table can be re-run in isolation and lands
// on the same nanosecond.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/ipic3d"
	"repro/internal/faults"
	"repro/internal/netmodel"
)

const procs = 64

func main() {
	spec := faults.DefaultSpec()
	stripes := netmodel.LustreLike().Stripes
	intensities := []float64{0, 1, 2, 4}

	plan := spec.Plan(procs, stripes)
	perKind := map[faults.Kind]int{}
	for _, e := range plan.Events {
		perKind[e.Kind]++
	}
	fmt.Printf("default campaign over a %v horizon (seed %d), compiled for %d ranks x %d stripes:\n",
		spec.Horizon, spec.Seed, procs, stripes)
	for _, k := range []faults.Kind{faults.RankBurst, faults.StripeOutage, faults.StripeDerate, faults.LinkLatency, faults.LinkBandwidth} {
		fmt.Printf("  %-15s %d events\n", k, perKind[k])
	}
	fmt.Printf("first events: ")
	for i, e := range plan.Events {
		if i == 3 {
			break
		}
		fmt.Printf("%v@%v+%v ", e.Kind, e.At, e.Duration)
	}
	fmt.Println("...")

	for _, v := range []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled} {
		fmt.Printf("\n%s:\n  %-10s %12s %12s %10s\n", v, "intensity", "makespan", "io-tail", "inflation")
		var clean float64
		for _, x := range intensities {
			c := ipic3d.DefaultConfig(procs)
			if x > 0 {
				inj, err := spec.Scale(x).Plan(c.Procs, stripes).Compile(c.Procs, stripes)
				if err != nil {
					log.Fatal(err)
				}
				c.Faults = &inj
			}
			res, err := ipic3d.RunIO(c, v)
			if err != nil {
				log.Fatal(err)
			}
			if x == 0 {
				clean = res.Time.Seconds()
			}
			fmt.Printf("  %-10g %12v %12v %9.3fx\n", x, res.Time, res.IOTail, res.Time.Seconds()/clean)
		}
	}
}
