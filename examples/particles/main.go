// Particles demonstrates the iPIC3D case study: real Boris-pusher physics
// from the PIC substrate (gyro motion in a Harris sheet, with subdomain
// exits feeding the particle-communication operation), then the Fig. 2
// traces contrasting the reference and decoupled particle communication on
// seven processes, and a miniature Fig. 7/8 scaling comparison.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/apps/ipic3d"
	"repro/internal/experiments"
	"repro/internal/pic"
)

func main() {
	// Real physics: push particles through a Harris-sheet field and
	// count subdomain exits, the events the communication operation
	// carries.
	dom := pic.Domain{Lo: pic.Vec3{}, Hi: pic.Vec3{X: 1, Y: 1, Z: 1}}
	parts := pic.LoadHarris(dom, 5000, 0.22, 0.35, 0.4, 11)
	field := pic.HarrisField{B0: 2, Y0: 0.5, W: 0.22}
	e0 := 0.0
	for _, p := range parts {
		e0 += pic.KineticEnergy(p)
	}
	var exited int
	for step := 0; step < 20; step++ {
		var leave []pic.Particle
		parts, leave = pic.MoveAll(parts, field, 0.002, dom)
		exited += len(leave)
		// Re-inject leavers on the opposite side (periodic domain), as
		// the communication operation would after delivery.
		for _, p := range leave {
			p.Pos.X = wrap(p.Pos.X)
			p.Pos.Y = wrap(p.Pos.Y)
			p.Pos.Z = wrap(p.Pos.Z)
			parts = append(parts, p)
		}
	}
	e1 := 0.0
	for _, p := range parts {
		e1 += pic.KineticEnergy(p)
	}
	fmt.Printf("Boris pusher: %d particles, %d subdomain exits over 20 steps\n", len(parts), exited)
	fmt.Printf("kinetic energy drift in pure B field: %.2e (relative)\n\n", (e1-e0)/e0)

	// Fig. 2: the execution traces.
	if err := experiments.Fig2(os.Stdout, 88); err != nil {
		log.Fatal(err)
	}

	// Miniature Fig. 7 and Fig. 8.
	fmt.Println("\nminiature Fig. 7 (particle communication):")
	for _, p := range []int{32, 128, 512} {
		cfg := ipic3d.DefaultConfig(p)
		ref, err := ipic3d.RunCommReference(cfg)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := ipic3d.RunCommDecoupled(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  procs=%4d reference=%6.2fs decoupled=%6.2fs\n",
			p, ref.Time.Seconds(), dec.Time.Seconds())
	}
	fmt.Println("\nminiature Fig. 8 (particle I/O):")
	for _, p := range []int{32, 128, 512} {
		cfg := ipic3d.DefaultConfig(p)
		var times []string
		for _, v := range []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled} {
			res, err := ipic3d.RunIO(cfg, v)
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, fmt.Sprintf("%s=%6.2fs", v, res.Time.Seconds()))
		}
		fmt.Printf("  procs=%4d  %s %s %s\n", p, times[0], times[1], times[2])
	}
}

// wrap maps a coordinate back into [0,1).
func wrap(x float64) float64 {
	for x < 0 {
		x++
	}
	for x >= 1 {
		x--
	}
	return x
}
