// Quickstart mirrors the paper's Listing 1: an application with a
// calculation operation and a workload-analysis operation (min/max/median
// of per-process workloads, normally three MPI reductions). The analysis
// is decoupled onto a small group of processes; the calculation group
// streams workload updates whenever its load changes, and the analysis
// group processes them on the fly.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stream"
)

const (
	procs     = 16
	analysts  = 1 // one of sixteen processes analyses workloads
	timesteps = 8
)

func main() {
	w := mpi.NewWorld(mpi.Config{Procs: procs, Seed: 42})

	var analyses int
	end, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		// Step 1: establish the communication channel between the
		// calculation group and the analysis group.
		role := stream.Producer
		if r.ID() >= procs-analysts {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		// Steps 2-3: define the stream element (a workload report) and
		// attach the stream.
		st := ch.Attach(r, stream.Options{ElementBytes: 8})

		if role == stream.Producer {
			// Calculation group: compute, and stream workload changes.
			workload := 100.0 + float64(r.ID())
			for step := 0; step < timesteps; step++ {
				r.Compute(10 * sim.Millisecond) // Calculation()
				workload *= 1.0 + 0.01*float64(r.ID()%5)
				st.Isend(r, stream.Element{Data: workload}) // hasWorkloadChanges
			}
			st.Terminate(r)
		} else {
			// Analysis group: min/max/median over arrived reports, on
			// the fly, first-come-first-served.
			var loads []float64
			st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				loads = append(loads, e.Data.(float64))
				rr.Compute(100 * sim.Microsecond) // analyze_workload()
			})
			sort.Float64s(loads)
			analyses = len(loads)
			fmt.Printf("analysis group: %d reports, min=%.1f median=%.1f max=%.1f\n",
				len(loads), loads[0], loads[len(loads)/2], loads[len(loads)-1])
		}
		ch.Free(r)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d processes for %v of virtual time; %d workload reports analysed\n",
		procs, end, analyses)
}
